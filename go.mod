module tinman

go 1.22
