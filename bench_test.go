// Package tinman_test hosts the paper-reproduction benchmarks: one
// testing.B benchmark per table and figure of the TinMan evaluation (§6).
//
// Virtual-time results (login latency, battery) are attached as custom
// benchmark metrics, since the interesting number is simulated seconds per
// login rather than host nanoseconds:
//
//	go test -bench=. -benchmem
//
// regenerates everything; see EXPERIMENTS.md for paper-vs-measured values.
package tinman_test

import (
	"testing"
	"time"

	"tinman/internal/apps"
	"tinman/internal/bench"
	"tinman/internal/netsim"
	"tinman/internal/taint"
)

// --- Figure 13: Caffeinemark under the three tainting configurations ---

func BenchmarkFig13_Caffeinemark(b *testing.B) {
	for _, k := range bench.Kernels {
		for _, pol := range bench.Fig13Policies {
			b.Run(k.Name+"/"+pol.Name(), func(b *testing.B) {
				machine, err := bench.NewCaffeineVM(pol)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := bench.RunKernel(machine, k); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := bench.RunKernel(machine, k); err != nil {
						b.Fatal(err)
					}
					// Keep the DSM dirty set from accumulating across
					// iterations; it is not part of the measured work.
					b.StopTimer()
					machine.Heap.ClearDirty()
					b.StartTimer()
				}
				b.ReportMetric(float64(k.Arg)*float64(b.N)/b.Elapsed().Seconds(), "score")
			})
		}
	}
}

// BenchmarkFig13_ReferenceInterpreter reruns the Caffeinemark kernels on
// the reference interpreter (no link-time resolution, inline caches, frame
// pooling reuse still applies per thread but every symbol resolves through
// the original map lookups). The delta against BenchmarkFig13_Caffeinemark
// under the same policy is the measured value of interpreter linking.
func BenchmarkFig13_ReferenceInterpreter(b *testing.B) {
	for _, k := range bench.Kernels {
		b.Run(k.Name+"/off", func(b *testing.B) {
			machine, err := bench.NewReferenceCaffeineVM(taint.Off)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := bench.RunKernel(machine, k); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bench.RunKernel(machine, k); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				machine.Heap.ClearDirty()
				b.StartTimer()
			}
			b.ReportMetric(float64(k.Arg)*float64(b.N)/b.Elapsed().Seconds(), "score")
		})
	}
}

// loginBench runs one app's login under one configuration, reporting
// virtual seconds per login.
func loginBench(b *testing.B, profile netsim.Profile, app string, tinman bool, seed int64) {
	b.Helper()
	var virtual time.Duration
	for i := 0; i < b.N; i++ {
		env, err := apps.NewLoginEnv(apps.EnvConfig{Profile: profile, TinMan: tinman, Seed: seed + int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := env.Login(app)
		if err != nil {
			b.Fatal(err)
		}
		virtual += rep.Total
	}
	b.ReportMetric(virtual.Seconds()/float64(b.N), "vsec/login")
}

// --- Figure 14: login latency over Wi-Fi ---

func BenchmarkFig14_LoginWiFi(b *testing.B) {
	for _, spec := range apps.LoginApps {
		b.Run(spec.Name+"/baseline", func(b *testing.B) { loginBench(b, netsim.WiFi, spec.Name, false, 100) })
		b.Run(spec.Name+"/tinman", func(b *testing.B) { loginBench(b, netsim.WiFi, spec.Name, true, 100) })
	}
}

// --- Figure 15: login latency over 3G ---

func BenchmarkFig15_Login3G(b *testing.B) {
	for _, spec := range apps.LoginApps {
		b.Run(spec.Name+"/baseline", func(b *testing.B) { loginBench(b, netsim.ThreeG, spec.Name, false, 200) })
		b.Run(spec.Name+"/tinman", func(b *testing.B) { loginBench(b, netsim.ThreeG, spec.Name, true, 200) })
	}
}

// --- Table 3: offload accounting ---

func BenchmarkTable3_OffloadAccounting(b *testing.B) {
	for _, spec := range apps.LoginApps {
		b.Run(spec.Name, func(b *testing.B) {
			var calls, syncs, init, dirty float64
			for i := 0; i < b.N; i++ {
				env, err := apps.NewLoginEnv(apps.EnvConfig{Profile: netsim.WiFi, TinMan: true, Seed: 300 + int64(i)})
				if err != nil {
					b.Fatal(err)
				}
				rep, err := env.Login(spec.Name)
				if err != nil {
					b.Fatal(err)
				}
				calls += float64(rep.NodeCalls)
				syncs += float64(rep.Syncs)
				init += float64(rep.InitBytes) / 1024
				dirty += float64(rep.DirtyBytes) / 1024
			}
			n := float64(b.N)
			b.ReportMetric(calls/n, "off-calls")
			b.ReportMetric(syncs/n, "syncs")
			b.ReportMetric(init/n, "initKB")
			b.ReportMetric(dirty/n, "dirtyKB")
		})
	}
}

// --- Figure 16: battery under login stress ---

func BenchmarkFig16_BatteryLoginStress(b *testing.B) {
	// Each iteration runs a shortened (5 virtual minutes) stress pair; the
	// reported metric is TinMan's extra drain in percentage points.
	for i := 0; i < b.N; i++ {
		curves, err := bench.LoginStress(5*time.Minute, 10*time.Second, 400+int64(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(curves[0].Final(), "android-final-%")
		b.ReportMetric(curves[1].Final(), "tinman-final-%")
		b.ReportMetric(curves[0].Final()-curves[1].Final(), "extra-drain-pp")
	}
}

// --- Figure 17: battery with client tainting only ---

func BenchmarkFig17_BatteryTainting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, err := bench.TaintingBattery(10*time.Minute, 10*time.Second, 500+int64(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(curves[0].Final(), "android-final-%")
		b.ReportMetric(curves[1].Final(), "tainting-final-%")
	}
}

// --- Ablations beyond the paper's figures ---

// BenchmarkAblation_ClientPolicy compares the device running asymmetric
// versus full tainting end to end (the paper argues asymmetric keeps login
// latency lower; Fig 13 shows the microbenchmark side).
func BenchmarkAblation_ClientPolicy(b *testing.B) {
	for _, pol := range []taint.Policy{taint.Asymmetric, taint.Full} {
		b.Run(pol.Name(), func(b *testing.B) {
			var virtual time.Duration
			for i := 0; i < b.N; i++ {
				env, err := apps.NewLoginEnv(apps.EnvConfig{
					Profile: netsim.WiFi, TinMan: true, Seed: 600 + int64(i), DevicePolicy: pol,
				})
				if err != nil {
					b.Fatal(err)
				}
				rep, err := env.Login("paypal")
				if err != nil {
					b.Fatal(err)
				}
				virtual += rep.Total
			}
			b.ReportMetric(virtual.Seconds()/float64(b.N), "vsec/login")
		})
	}
}

// BenchmarkAblation_SyncMode quantifies dirty tracking against the naive
// full-heap sync (dsm.SyncMode): steady-state wire bytes per login.
func BenchmarkAblation_SyncMode(b *testing.B) {
	// Two consecutive logins: the second is the steady state where dirty
	// tracking pays off.
	var steady float64
	for i := 0; i < b.N; i++ {
		env, err := apps.NewLoginEnv(apps.EnvConfig{Profile: netsim.WiFi, TinMan: true, Seed: 800 + int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := env.Login("paypal"); err != nil {
			b.Fatal(err)
		}
		first := env.Apps["paypal"].Report.DirtyBytes
		if _, err := env.Login("paypal"); err != nil {
			b.Fatal(err)
		}
		steady += float64(env.Apps["paypal"].Report.DirtyBytes - first)
	}
	b.ReportMetric(steady/float64(b.N)/1024, "steadyKB/login")
}

// BenchmarkAblation_CorIDSync measures the DSM wire volume with the
// cor-ID-only sync (TinMan's rule) by reporting bytes per login; the
// placeholder-sized payloads stand in for what full-value sync would ship.
func BenchmarkAblation_CorIDSync(b *testing.B) {
	var initKB, dirtyKB float64
	for i := 0; i < b.N; i++ {
		env, err := apps.NewLoginEnv(apps.EnvConfig{Profile: netsim.WiFi, TinMan: true, Seed: 700 + int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := env.Login("paypal")
		if err != nil {
			b.Fatal(err)
		}
		initKB += float64(rep.InitBytes) / 1024
		dirtyKB += float64(rep.DirtyBytes) / 1024
	}
	b.ReportMetric(initKB/float64(b.N), "initKB")
	b.ReportMetric(dirtyKB/float64(b.N), "dirtyKB")
}
