# TinMan build and test entry points.
#
#   make build        compile everything
#   make vet          static checks
#   make test         full test suite
#   make check        formatting + vet + build + test, the pre-commit gate
#   make race         race-detector pass over the concurrent subsystems
#   make bench-smoke  quick node-throughput benchmark (not a full eval run)

GO ?= go
GOFMT ?= gofmt

.PHONY: all build vet test check race bench-smoke clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The one command CI and contributors run before pushing: fails on any
# unformatted file, vet finding, build error, or test failure.
check:
	@unformatted="$$($(GOFMT) -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...

# The node service plus the transports that drive it concurrently get a
# dedicated -race pass (multi-device service tests live in internal/node).
race:
	$(GO) test -race -count=1 ./internal/node/ ./internal/nodeproto/ ./internal/policy/ ./internal/audit/

# A short throughput sample of the trusted-node service — enough to spot a
# regression, not a measurement (see EXPERIMENTS.md for the real recipe).
bench-smoke:
	$(GO) test -run xxx -bench 'BenchmarkNodeThroughput' -benchtime 5000x ./internal/nodeproto/

clean:
	$(GO) clean ./...
