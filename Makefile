# TinMan build and test entry points.
#
#   make build        compile everything
#   make vet          static checks
#   make test         full test suite
#   make check        formatting + vet + build + test + chaos + bench-smoke,
#                     the pre-commit gate
#   make race         race-detector pass over the concurrent subsystems
#   make chaos        deterministic fault-injection suite under -race
#   make obs-smoke    observability gate: traced login with valid exports,
#                     zero-alloc disabled path, Fig 13 hook-cost guard
#   make bench-smoke  one iteration of every benchmark (a does-it-run gate,
#                     not a measurement)
#   make bench-json   append a machine-readable Caffeinemark run to
#                     BENCH_vm.json (LABEL=... names the run)

GO ?= go
GOFMT ?= gofmt
LABEL ?= $(shell git log -1 --format=%h 2>/dev/null || echo manual)

.PHONY: all build vet test check race chaos obs-smoke bench-smoke bench-json clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The one command CI and contributors run before pushing: fails on any
# unformatted file, vet finding, build error, or test failure.
check:
	@unformatted="$$($(GOFMT) -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(MAKE) chaos
	$(MAKE) obs-smoke
	$(MAKE) bench-smoke

# The node service plus the transports that drive it concurrently get a
# dedicated -race pass (multi-device service tests live in internal/node).
race:
	$(GO) test -race -count=1 ./internal/node/ ./internal/nodeproto/ ./internal/policy/ ./internal/audit/ ./internal/fault/ ./internal/netsim/ ./internal/core/ ./internal/obs/

# Observability gate: one fully traced Wi-Fi login must attribute >= 90% of
# its wall time with valid JSON-lines/Chrome exports and no cor plaintext;
# the disabled path must stay allocation-free; the interpreter hook wrapper
# must stay under the 2% Fig 13 budget.
obs-smoke:
	$(GO) test -count=1 -run 'TestObsSmoke' ./internal/bench/
	$(GO) test -count=1 -run 'TestObsZeroAllocDisabled|TestRedaction' ./internal/obs/
	$(GO) test -count=1 -run 'TestFig13TracingGuard' ./internal/bench/

# Deterministic fault-injection suite (see EXPERIMENTS.md "Chaos suite"):
# scripted partitions, node crash/restart, flapping 3G and slow-node
# scenarios, all on the virtual clock, run under the race detector.
chaos:
	$(GO) test -race -count=1 -run 'Chaos|Fault|Replay|Reconnect|Breaker|Shutdown|Pool' ./internal/core/ ./internal/netsim/ ./internal/nodeproto/ ./internal/node/ ./internal/fault/

# One iteration of every benchmark in the tree: catches benchmarks that
# stopped compiling or panic, without pretending to measure anything (see
# EXPERIMENTS.md for real measurement recipes).
bench-smoke:
	$(GO) test -run NONE -bench . -benchtime 1x ./...

# Machine-readable Caffeinemark run appended to BENCH_vm.json: per-kernel
# ns/op and allocs/op under every tainting policy plus the unlinked
# reference interpreter.
bench-json:
	$(GO) run ./cmd/tinman-bench -json BENCH_vm.json -label "$(LABEL)"

clean:
	$(GO) clean ./...
