# TinMan build and test entry points.
#
#   make build        compile everything
#   make vet          static checks
#   make test         full test suite
#   make race         race-detector pass over the concurrent subsystems
#   make bench-smoke  quick node-throughput benchmark (not a full eval run)

GO ?= go

.PHONY: all build vet test race bench-smoke clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The nodeproto/policy/audit packages carry the pipelined protocol and the
# sharded hot-path state; they get a dedicated -race pass.
race:
	$(GO) test -race -count=1 ./internal/nodeproto/ ./internal/policy/ ./internal/audit/

# A short throughput sample of the trusted-node service — enough to spot a
# regression, not a measurement (see EXPERIMENTS.md for the real recipe).
bench-smoke:
	$(GO) test -run xxx -bench 'BenchmarkNodeThroughput' -benchtime 5000x ./internal/nodeproto/

clean:
	$(GO) clean ./...
