# TinMan build and test entry points.
#
#   make build        compile everything
#   make vet          static checks
#   make test         full test suite
#   make check        formatting + vet + build + test + differential +
#                     chaos + bench-smoke, the pre-commit gate
#   make differential interpreter equivalence gate: analyzed (taint
#                     pre-analysis fast path) vs instrumented vs reference
#   make race         race-detector pass over the concurrent subsystems
#   make chaos        deterministic fault-injection suite under -race
#   make crash-chaos  storage-engine kill-and-recover suite: exhaustive
#                     crash-point sweeps over the WAL + snapshot engine and
#                     the durable node/fleet stack on the torn-write crash
#                     FS (no cor loss, no audit Seq gap, no plaintext on
#                     disk), under -race
#   make fleet-smoke  trusted-node fleet gate: placement, drain/rebalance
#                     handoff, crash failover, wire-level routing + merged
#                     audit, all under -race
#   make guardrail    leak-guardrail gate: a full loadgen run's exporter
#                     output (spans, trace, metrics, audit) swept for every
#                     fingerprinted secret — must find the seeded canary
#                     and nothing else
#   make obs-smoke    observability gate: traced login with valid exports,
#                     zero-alloc disabled path, Fig 13 hook-cost guard
#   make bench-smoke  one iteration of every benchmark (a does-it-run gate,
#                     not a measurement)
#   make bench-json   append a machine-readable Caffeinemark run to
#                     BENCH_vm.json (LABEL=... names the run)
#   make bench-offload
#                     append a warm-vs-cold offload latency run (trigger to
#                     first node instruction per login app) to
#                     BENCH_offload.json; its one-iteration smoke rides
#                     `make check` via bench-smoke (BenchmarkOffload) and
#                     the TestOffloadShape gate in the test suite
#   make bench-store  append a storage-engine run (WAL append throughput vs
#                     the in-memory sharded log, recovery time vs log size)
#                     to BENCH_store.json

GO ?= go
GOFMT ?= gofmt
LABEL ?= $(shell git log -1 --format=%h 2>/dev/null || echo manual)

.PHONY: all build vet test check differential race chaos crash-chaos fleet-smoke obs-smoke guardrail bench-smoke bench-json bench-offload bench-store clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The one command CI and contributors run before pushing: fails on any
# unformatted file, vet finding, build error, or test failure.
check:
	@unformatted="$$($(GOFMT) -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(MAKE) differential
	$(MAKE) chaos
	$(MAKE) crash-chaos
	$(MAKE) fleet-smoke
	$(MAKE) obs-smoke
	$(MAKE) guardrail
	$(MAKE) bench-smoke

# The node service plus the transports that drive it concurrently get a
# dedicated -race pass (multi-device service tests live in internal/node);
# internal/vm rides along since the two-loop interpreter and scheduler
# juggle shared frames and inline caches, and internal/dsm + internal/apps
# because the speculative warm-up capture/apply protocol and its login
# driver run concurrently with foreground execution.
race:
	$(GO) test -race -count=1 ./internal/node/ ./internal/nodeproto/ ./internal/fleet/ ./internal/policy/ ./internal/audit/ ./internal/fault/ ./internal/netsim/ ./internal/core/ ./internal/obs/ ./internal/vm/ ./internal/dsm/ ./internal/apps/ ./internal/store/ ./internal/ctl/...

# Interpreter equivalence gate: the analyzed interpreter (taint
# pre-analysis fast path), the fully instrumented linked interpreter, and
# the reference interpreter must produce bit-identical results, tags,
# counters and migration stops over every kernel and login app under every
# policy (internal/bench/differential_test.go), plus the vm-level deopt
# coverage tests.
differential:
	$(GO) test -count=1 -run 'TestDifferential' ./internal/bench/
	$(GO) test -count=1 -run 'TestTaintflow|TestFastPath' ./internal/vm/

# Observability gate: one fully traced Wi-Fi login must attribute >= 90% of
# its wall time with valid JSON-lines/Chrome exports and no cor plaintext;
# the disabled path must stay allocation-free; the interpreter hook wrapper
# must stay under the 2% Fig 13 budget.
obs-smoke:
	$(GO) test -count=1 -run 'TestObsSmoke' ./internal/bench/
	$(GO) test -count=1 -run 'TestObsZeroAllocDisabled|TestRedaction' ./internal/obs/
	$(GO) test -count=1 -run 'TestFig13TracingGuard' ./internal/bench/

# Deterministic fault-injection suite (see EXPERIMENTS.md "Chaos suite"):
# scripted partitions, node crash/restart, flapping 3G and slow-node
# scenarios, all on the virtual clock, run under the race detector.
chaos:
	$(GO) test -race -count=1 -run 'Chaos|Fault|Replay|Reconnect|Breaker|Shutdown|Pool' ./internal/core/ ./internal/netsim/ ./internal/nodeproto/ ./internal/node/ ./internal/fault/ ./internal/fleet/

# Storage-engine crash gate: every store chaos sweep (kill at every
# filesystem operation, crash during snapshot, double-crash during
# recovery, recovered-state equivalence) plus the durable node, fleet
# failover and full-world restart suites. The invariants: acknowledged
# records survive, audit Seq stays gap-free, recovery is idempotent, and
# cor plaintext never appears in WAL or snapshot bytes.
crash-chaos:
	$(GO) test -race -count=1 ./internal/store/
	$(GO) test -race -count=1 -run 'TestDurable' ./internal/node/ ./internal/fleet/ ./internal/core/

# Fleet gate: deterministic placement, drain/rebalance via shard handoff,
# crash failover on the audit watermark, and the wire layer's ownership
# gate + redirect + merged per-device audit stream.
fleet-smoke:
	$(GO) test -race -count=1 ./internal/fleet/
	$(GO) test -race -count=1 -run 'TestFleetWire|TestWireHandoff' ./internal/nodeproto/
	$(GO) test -race -count=1 -run 'TestShard|TestHandoff' ./internal/node/ ./internal/core/
	$(GO) test -count=1 ./cmd/tinman-audit/

# Leak-guardrail gate: fingerprint the benchmark cor's plaintext and all
# four TLS session keys, drive a full loadgen run against an instrumented
# node, and sweep every exporter surface. The clean run must report zero
# findings; the deliberately seeded canary span must be caught (a silent
# scanner would make the zero indistinguishable from blindness).
guardrail:
	$(GO) test -count=1 -run 'TestGuardrailLoadgen' ./internal/ctl/guardrail/
	$(GO) test -count=1 -run 'TestSweeperCanary|TestScanner' ./internal/ctl/guardrail/

# One iteration of every benchmark in the tree: catches benchmarks that
# stopped compiling or panic, without pretending to measure anything (see
# EXPERIMENTS.md for real measurement recipes).
bench-smoke:
	$(GO) test -run NONE -bench . -benchtime 1x ./...

# Machine-readable Caffeinemark run appended to BENCH_vm.json: per-kernel
# ns/op and allocs/op under every tainting policy plus the unlinked
# reference interpreter. ANALYZE=off|on|both selects the taint
# pre-analysis mode; the default appends a before/after pair so the
# trajectory always records what partial instrumentation bought.
ANALYZE ?= both
bench-json:
ifeq ($(ANALYZE),both)
	$(GO) run ./cmd/tinman-bench -json BENCH_vm.json -analyze=off -label "$(LABEL) analyze=off"
	$(GO) run ./cmd/tinman-bench -json BENCH_vm.json -analyze=on -label "$(LABEL) analyze=on"
else
	$(GO) run ./cmd/tinman-bench -json BENCH_vm.json -analyze=$(ANALYZE) -label "$(LABEL) analyze=$(ANALYZE)"
endif

# Warm-vs-cold speculative offload run appended to BENCH_offload.json:
# per login app, trigger-to-first-node-instruction latency and trigger-time
# sync bytes with warm-up disabled versus enabled, plus the background
# stream's volume and the admission hit/miss counters.
bench-offload:
	$(GO) run ./cmd/tinman-bench -offload BENCH_offload.json -label "$(LABEL)"

# Storage-engine run appended to BENCH_store.json: WAL append throughput
# (serial, group-commit, pipelined) against the in-memory sharded audit
# log, and recovery time vs log size with and without snapshots.
bench-store:
	$(GO) run ./cmd/tinman-bench -store BENCH_store.json -label "$(LABEL)"

clean:
	$(GO) clean ./...
