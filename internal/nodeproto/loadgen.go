package nodeproto

import (
	"context"
	"crypto/rand"
	"crypto/rsa"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"tinman/internal/fleet"
	"tinman/internal/node"
	"tinman/internal/tlssim"
)

// seedClient reproduces the repo's pre-pipelining client behavior byte
// for byte: one mutex-guarded request in flight per connection,
// unbuffered writes (4-byte header and JSON body in separate syscalls),
// reads straight off the conn. It is the baseline the pipelined client is
// measured against; it speaks the same wire format (Seq omitted), which
// the server still serves.
type seedClient struct {
	mu   sync.Mutex
	conn net.Conn
}

func dialSeed(addr string, timeout time.Duration) (*seedClient, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &seedClient{conn: conn}, nil
}

func (c *seedClient) Close() error { return c.conn.Close() }

func (c *seedClient) do(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := c.conn.Write(hdr[:]); err != nil {
		return nil, err
	}
	if _, err := c.conn.Write(body); err != nil {
		return nil, err
	}
	var resp Response
	if err := seedReadMessage(c.conn, &resp); err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("nodeproto: %s", resp.Error)
	}
	return &resp, nil
}

// seedReadMessage is the seed's ReadMessage: allocate a body buffer per
// message and decode with json.Unmarshal (which scans the input twice).
// The pipelined stack's pooled single-scan ReadMessage replaced it; the
// baseline keeps the original so the comparison measures the whole seed
// client, not just its framing.
func seedReadMessage(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxMessage {
		return fmt.Errorf("nodeproto: implausible message length %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("nodeproto: unmarshal: %v", err)
	}
	return nil
}

func (c *seedClient) catalog() error {
	_, err := c.do(&Request{Op: OpCatalog})
	return err
}

func (c *seedClient) reseal(corID string, state json.RawMessage, appHash, deviceID, domain string) error {
	_, err := c.do(&Request{Op: OpReseal, CorID: corID, State: state,
		AppHash: appHash, DeviceID: deviceID, Domain: domain})
	return err
}

// ThroughputOptions configures one RunThroughput drive against a node.
type ThroughputOptions struct {
	// Workers is the number of concurrent device loops (default 8).
	Workers int
	// Conns is the connection-pool size the workers share (default 1: all
	// workers pipeline onto a single connection).
	Conns int
	// Mode selects the client stack: "pipelined" (default) demuxes many
	// in-flight requests per connection; "serial" runs the same stack but
	// one request at a time (SetSerial); "seed" is a faithful replica of
	// the pre-pipelining client — one mutex-guarded round trip per
	// connection with unbuffered I/O — the baseline the pipelined client
	// is measured against.
	Mode string
	// Requests is the total number of requests to issue (both ops
	// counted). Zero means run for Duration instead.
	Requests int
	// Duration bounds the run when Requests is 0 (default 2s).
	Duration time.Duration
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
	// ResealEvery issues one reseal per this many requests, the rest being
	// catalog fetches (default 2: alternating catalog/reseal, the shape of
	// a login flow's node traffic). 0 disables reseals.
	ResealEvery int
}

// ThroughputResult is one RunThroughput measurement. Requests counts
// successful requests; Errors counts failed ones (each attempt counts
// exactly once in one of the two).
type ThroughputResult struct {
	Requests  int
	Errors    int
	Elapsed   time.Duration
	ReqPerSec float64
	P50       time.Duration
	P99       time.Duration
	// FirstErr samples the first failure for diagnosis; the run itself
	// continues past errors and reports them in the rate.
	FirstErr error
}

// ErrorRate returns failed requests as a fraction of all attempts.
func (r ThroughputResult) ErrorRate() float64 {
	total := r.Requests + r.Errors
	if total == 0 {
		return 0
	}
	return float64(r.Errors) / float64(total)
}

func (r ThroughputResult) String() string {
	s := fmt.Sprintf("%d requests in %v: %.0f req/s, p50 %v, p99 %v, errors %d (%.2f%%)",
		r.Requests, r.Elapsed.Round(time.Millisecond), r.ReqPerSec,
		r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond),
		r.Errors, 100*r.ErrorRate())
	if r.FirstErr != nil {
		s += fmt.Sprintf(" (first: %v)", r.FirstErr)
	}
	return s
}

// benchCor is the cor the load loop reseals.
const benchCor = "bench-pw"

// PrepareThroughputServer registers the cor and session state the load
// loop needs on srv, returning the marshaled device session state to pass
// in ThroughputOptions — callers running against an in-process server use
// this once before RunThroughput.
func PrepareThroughputServer(srv *Server) (json.RawMessage, error) {
	if srv.Cors.Get(benchCor) == nil {
		if _, err := srv.Cors.Register(benchCor, "hunter2-benchmark!", "throughput cor", "bench.example"); err != nil {
			return nil, err
		}
		srv.Policy.SetWhitelist(benchCor, []string{"bench.example"})
	}
	key, err := rsa.GenerateKey(rand.Reader, 1024)
	if err != nil {
		return nil, err
	}
	device, _, _, err := tlssim.Handshake(
		tlssim.ClientConfig{MinVersion: tlssim.TLS11},
		tlssim.ServerConfig{Key: key})
	if err != nil {
		return nil, err
	}
	return json.Marshal(device.Export())
}

// RunThroughput drives addr with opts.Workers concurrent catalog+reseal
// loops and reports req/s plus latency percentiles. state is the
// marshaled device session state from PrepareThroughputServer.
func RunThroughput(addr string, state json.RawMessage, opts ThroughputOptions) (ThroughputResult, error) {
	if opts.Workers <= 0 {
		opts.Workers = 8
	}
	if opts.Conns <= 0 {
		opts.Conns = 1
	}
	if opts.Duration <= 0 {
		opts.Duration = 2 * time.Second
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	if opts.ResealEvery < 0 {
		opts.ResealEvery = 0
	} else if opts.ResealEvery == 0 {
		opts.ResealEvery = 2
	}

	// issue is the per-worker request entry point, abstracting over the
	// three client stacks.
	type issuer struct {
		catalog func() error
		reseal  func(corID string, state json.RawMessage, appHash, deviceID, domain string) error
	}
	var (
		issuers []issuer
		cleanup func()
	)
	switch opts.Mode {
	case "", "pipelined", "serial":
		pool, err := DialPool(addr, opts.Conns, opts.DialTimeout)
		if err != nil {
			return ThroughputResult{}, err
		}
		cleanup = func() { pool.Close() }
		for i := 0; i < pool.Size(); i++ {
			c := pool.slots[i]
			if opts.Mode == "serial" {
				c.SetSerial(true)
			}
			issuers = append(issuers, issuer{
				catalog: func() error { _, err := c.Catalog(); return err },
				reseal: func(corID string, state json.RawMessage, appHash, deviceID, domain string) error {
					_, err := c.ResealRaw(corID, state, appHash, deviceID, domain, "", 0)
					return err
				},
			})
		}
	case "seed":
		var conns []*seedClient
		cleanup = func() {
			for _, c := range conns {
				c.Close()
			}
		}
		for i := 0; i < opts.Conns; i++ {
			c, err := dialSeed(addr, opts.DialTimeout)
			if err != nil {
				cleanup()
				return ThroughputResult{}, err
			}
			conns = append(conns, c)
			issuers = append(issuers, issuer{catalog: c.catalog, reseal: c.reseal})
		}
	default:
		return ThroughputResult{}, fmt.Errorf("nodeproto: unknown throughput mode %q", opts.Mode)
	}
	defer cleanup()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		errCount int
		lats     = make([][]time.Duration, opts.Workers)
		deadline = time.Now().Add(opts.Duration)
		// quota hands out request slots when a fixed count is requested.
		quota = make(chan struct{}, opts.Requests)
	)
	for i := 0; i < opts.Requests; i++ {
		quota <- struct{}{}
	}
	close(quota)

	start := time.Now()
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			is := issuers[w%len(issuers)]
			dev := fmt.Sprintf("bench-dev-%d", w)
			mine := make([]time.Duration, 0, 1024)
			for n := 0; ; n++ {
				if opts.Requests > 0 {
					if _, ok := <-quota; !ok {
						break
					}
				} else if time.Now().After(deadline) {
					break
				}
				t0 := time.Now()
				var err error
				if opts.ResealEvery > 0 && n%opts.ResealEvery == 0 {
					err = is.reseal(benchCor, state, "bench-app", dev, "bench.example")
				} else {
					err = is.catalog()
				}
				if err != nil {
					// Count the failure and keep driving: a load generator
					// that dies on the first error (and silently discards
					// every latency its worker had collected) hides exactly
					// the degraded behavior it exists to measure.
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errCount++
					mu.Unlock()
					continue
				}
				mine = append(mine, time.Since(t0))
			}
			lats[w] = mine
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res := ThroughputResult{
		Requests: len(all),
		Errors:   errCount,
		Elapsed:  elapsed,
		FirstErr: firstErr,
	}
	if elapsed > 0 {
		res.ReqPerSec = float64(len(all)) / elapsed.Seconds()
	}
	if len(all) > 0 {
		res.P50 = all[len(all)/2]
		res.P99 = all[len(all)*99/100]
	}
	return res, nil
}

// StartThroughputServer boots a quiet in-process node on a loopback
// listener, primed for the throughput workload. It returns the address,
// the marshaled device session state, and a shutdown func.
func StartThroughputServer() (addr string, state json.RawMessage, shutdown func(), err error) {
	srv, addr, state, shutdown, err := NewThroughputServer()
	_ = srv
	return addr, state, shutdown, err
}

// NewThroughputServer is StartThroughputServer exposing the *Server as
// well, so callers can install observability (SetObs) and dump its metrics
// after the drive — tinman-bench's -metrics path.
func NewThroughputServer() (srv *Server, addr string, state json.RawMessage, shutdown func(), err error) {
	srv = NewServer()
	state, err = PrepareThroughputServer(srv)
	if err != nil {
		return nil, "", nil, nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", nil, nil, err
	}
	go srv.Serve(l)
	return srv, l.Addr().String(), state, func() { srv.Close() }, nil
}

// --- fleet throughput ---

// StartFleetThroughput boots an n-member fleet, one wire server per member
// (each gated by the shared fleet placement), primed with the throughput
// cor replicated fleet-wide. It returns the fleet (for drain/rebalance
// drives), the member address map for DialFleet, the marshaled device
// session state, and a shutdown func.
func StartFleetThroughput(n int) (f *fleet.Fleet, members map[string]string, state json.RawMessage, shutdown func(), err error) {
	if n <= 0 {
		n = 3
	}
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("node-%d", i+1)
	}
	f, err = fleet.New(fleet.Config{MemberIDs: ids, NodeOptions: node.Options{}})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	if err = f.RegisterCor(context.Background(), benchCor, "hunter2-benchmark!", "throughput cor", "bench.example"); err != nil {
		return nil, nil, nil, nil, err
	}
	key, err := rsa.GenerateKey(rand.Reader, 1024)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	device, _, _, err := tlssim.Handshake(
		tlssim.ClientConfig{MinVersion: tlssim.TLS11},
		tlssim.ServerConfig{Key: key})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	state, err = json.Marshal(device.Export())
	if err != nil {
		return nil, nil, nil, nil, err
	}

	members = make(map[string]string, n)
	var servers []*Server
	closeAll := func() {
		for _, s := range servers {
			s.Close()
		}
	}
	for _, id := range ids {
		svc, serr := f.MemberService(id)
		if serr != nil {
			closeAll()
			return nil, nil, nil, nil, serr
		}
		srv := NewServerWith(svc)
		srv.SetPlacement(id, f)
		srv.SetControlPlane(f)
		l, lerr := net.Listen("tcp", "127.0.0.1:0")
		if lerr != nil {
			closeAll()
			return nil, nil, nil, nil, lerr
		}
		go srv.Serve(l)
		servers = append(servers, srv)
		members[id] = l.Addr().String()
	}
	return f, members, state, closeAll, nil
}

// FleetThroughputResult is one RunFleetThroughput measurement: the fleet-
// wide aggregate plus a per-member breakdown attributed to whichever node
// actually served each request.
type FleetThroughputResult struct {
	Total   ThroughputResult
	PerNode map[string]ThroughputResult
	// Warm, when attached (FleetWarmStats), adds each member's speculative
	// warm-up counters to the per-node columns: warm-path hits/misses and
	// the mean migration-arrival-to-first-instruction resume latency.
	Warm map[string]node.WarmStats
}

func (r FleetThroughputResult) String() string {
	s := "total: " + r.Total.String()
	ids := make([]string, 0, len(r.PerNode))
	for id := range r.PerNode {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		nr := r.PerNode[id]
		s += fmt.Sprintf("\n%-10s %7d req, p50 %v, p99 %v, errors %d",
			id, nr.Requests, nr.P50.Round(time.Microsecond), nr.P99.Round(time.Microsecond), nr.Errors)
		if ws, ok := r.Warm[id]; ok {
			s += ", " + formatWarm(ws)
		}
	}
	return s
}

// formatWarm renders one member's warm-up counters for the loadgen tables.
func formatWarm(ws node.WarmStats) string {
	rate := 0.0
	if total := ws.Hits + ws.Misses; total > 0 {
		rate = 100 * float64(ws.Hits) / float64(total)
	}
	return fmt.Sprintf("warm %d/%d (%.0f%% hit), resume %v",
		ws.Hits, ws.Misses, rate, time.Duration(ws.AvgResumeNs).Round(time.Microsecond))
}

// FleetWarmStats snapshots every member's warm-up counters for attachment
// to a FleetThroughputResult.
func FleetWarmStats(f *fleet.Fleet) map[string]node.WarmStats {
	out := make(map[string]node.WarmStats, len(f.Members()))
	for _, id := range f.Members() {
		if svc, err := f.MemberService(id); err == nil {
			out[id] = svc.WarmStats()
		}
	}
	return out
}

// RunFleetThroughput drives the fleet's device-keyed reseal path: each
// worker is one device, routed by the fleet client to its owning member
// (following redirects), with every latency sample attributed to the
// member that served it. state comes from StartFleetThroughput.
func RunFleetThroughput(members map[string]string, state json.RawMessage, opts ThroughputOptions) (FleetThroughputResult, error) {
	if opts.Workers <= 0 {
		opts.Workers = 8
	}
	if opts.Duration <= 0 {
		opts.Duration = 2 * time.Second
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	fc := DialFleet(members, opts.DialTimeout, ReconnectConfig{RequestTimeout: opts.DialTimeout})
	defer fc.Close()

	type sample struct {
		member string
		lat    time.Duration
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		errCount int
		samples  = make([][]sample, opts.Workers)
		deadline = time.Now().Add(opts.Duration)
		quota    = make(chan struct{}, opts.Requests)
	)
	for i := 0; i < opts.Requests; i++ {
		quota <- struct{}{}
	}
	close(quota)

	ctx := context.Background()
	start := time.Now()
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dev := fmt.Sprintf("bench-dev-%d", w)
			mine := make([]sample, 0, 1024)
			for {
				if opts.Requests > 0 {
					if _, ok := <-quota; !ok {
						break
					}
				} else if time.Now().After(deadline) {
					break
				}
				t0 := time.Now()
				_, member, err := fc.Reseal(ctx, benchCor, state, "bench-app", dev, "bench.example", "", 0)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errCount++
					mu.Unlock()
					continue
				}
				mine = append(mine, sample{member: member, lat: time.Since(t0)})
			}
			samples[w] = mine
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	perNode := map[string][]time.Duration{}
	var all []time.Duration
	for _, s := range samples {
		for _, smp := range s {
			perNode[smp.member] = append(perNode[smp.member], smp.lat)
			all = append(all, smp.lat)
		}
	}
	summarize := func(lats []time.Duration) ThroughputResult {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		r := ThroughputResult{Requests: len(lats), Elapsed: elapsed}
		if elapsed > 0 {
			r.ReqPerSec = float64(len(lats)) / elapsed.Seconds()
		}
		if len(lats) > 0 {
			r.P50 = lats[len(lats)/2]
			r.P99 = lats[len(lats)*99/100]
		}
		return r
	}
	res := FleetThroughputResult{PerNode: make(map[string]ThroughputResult, len(perNode))}
	for id, lats := range perNode {
		res.PerNode[id] = summarize(lats)
	}
	res.Total = summarize(all)
	res.Total.Errors = errCount
	res.Total.FirstErr = firstErr
	return res, nil
}
