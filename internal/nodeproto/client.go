package nodeproto

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tinman/internal/node"
	"tinman/internal/policy"
	"tinman/internal/tlssim"
)

// connBufSize sizes the buffered reader/writer on each connection; large
// enough that a full pipeline batch moves in one syscall.
const connBufSize = 64 << 10

// apps256 is the sha256-hex helper shared by server derivations.
func apps256(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

// DenialError is returned when the node's policy engine refused the
// operation. It is extractable with errors.As so callers can branch on
// policy denials without string matching.
type DenialError struct {
	// Reason is the machine-readable policy reason (policy.Reason.String()).
	Reason string
	// Message is the node's full error text.
	Message string
}

func (e *DenialError) Error() string {
	return fmt.Sprintf("nodeproto: denied (%s): %s", e.Reason, e.Message)
}

// Is maps a wire denial onto the node package's sentinels, so
// errors.Is(err, node.ErrDenied) — or node.ErrRevoked, node.ErrMalware —
// behaves identically whether the denial happened in-process or over TCP.
func (e *DenialError) Is(target error) bool {
	if target == node.ErrDenied {
		return true
	}
	if r, ok := policy.ReasonFromString(e.Reason); ok {
		return target == node.SentinelForReason(r)
	}
	return false
}

// IsDenied reports whether err is a policy denial and returns it.
func IsDenied(err error) (*DenialError, bool) {
	var d *DenialError
	if errors.As(err, &d) {
		return d, true
	}
	return nil, false
}

// errClosed is the terminal error after Close.
var errClosed = errors.New("nodeproto: client closed")

// result resolves one in-flight request.
type result struct {
	resp *Response
	err  error
}

// pendingWrite is one request queued for the writer goroutine.
type pendingWrite struct {
	req *Request
	seq uint64
}

// Client talks to a trusted-node server over one TCP connection. Methods
// are safe for concurrent use. Requests are pipelined: a writer goroutine
// streams frames onto the connection, a reader goroutine demultiplexes
// responses to per-Seq waiters, so many calls can be in flight at once on
// the single connection.
//
// SetSerial(true) restores the seed's behavior — one request on the wire
// at a time — which the throughput benchmark uses as its baseline.
type Client struct {
	conn net.Conn
	bw   *bufio.Writer // owned by the writer goroutine
	br   *bufio.Reader // owned by the reader goroutine
	seq  atomic.Uint64

	sendq   chan pendingWrite
	closing chan struct{}

	mu       sync.Mutex // guards waiters, fifo, err, isClosed
	waiters  map[uint64]chan result
	fifo     []uint64 // outstanding seqs in send order, for Seq==0 servers
	err      error    // terminal transport error
	isClosed bool

	// serialMu serializes whole round trips when serial mode is on.
	serial   atomic.Bool
	serialMu sync.Mutex
}

// Dial connects to the node at addr.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("nodeproto: dialing %s: %v", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an existing connection (tests use net.Pipe).
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:    conn,
		bw:      bufio.NewWriterSize(conn, connBufSize),
		br:      bufio.NewReaderSize(conn, connBufSize),
		sendq:   make(chan pendingWrite, 64),
		closing: make(chan struct{}),
		waiters: make(map[uint64]chan result),
	}
	go c.writer()
	go c.reader()
	return c
}

// SetSerial toggles one-request-at-a-time mode: each round trip holds an
// exclusive lock from send to receive, exactly like the pre-pipelining
// client.
func (c *Client) SetSerial(on bool) { c.serial.Store(on) }

// Close closes the connection and fails any in-flight requests.
func (c *Client) Close() error {
	c.mu.Lock()
	already := c.isClosed
	c.isClosed = true
	c.mu.Unlock()
	if already {
		return nil
	}
	close(c.closing)
	err := c.conn.Close()
	c.failAll(errClosed)
	return err
}

// writer drains sendq onto the buffered connection, flushing only when
// the queue runs dry: under load a whole batch of pipelined frames leaves
// in one syscall. After a transport failure it keeps draining, failing
// each queued request, so senders never block on a dead connection.
func (c *Client) writer() {
	var dead error
	write := func(pw pendingWrite) {
		if dead != nil {
			c.resolve(pw.seq, result{err: dead})
			return
		}
		if err := WriteMessage(c.bw, pw.req); err != nil {
			dead = err
			c.resolve(pw.seq, result{err: err})
			c.failAll(err)
			c.conn.Close()
		}
	}
	for {
		select {
		case <-c.closing:
			return
		case pw := <-c.sendq:
			write(pw)
			// Drain whatever else is queued before paying for a flush. The
			// Gosched between passes lets producer goroutines that are
			// about to enqueue (common on few cores) actually do so, so a
			// whole pipeline batch leaves in one syscall.
			for pass := 0; pass < 2; pass++ {
			drain:
				for {
					select {
					case pw := <-c.sendq:
						write(pw)
					default:
						break drain
					}
				}
				if pass == 0 {
					runtime.Gosched()
				}
			}
			if dead == nil {
				if err := c.bw.Flush(); err != nil {
					dead = err
					c.failAll(err)
					c.conn.Close()
				}
			}
		}
	}
}

// reader demultiplexes responses to waiters by Seq. A Seq of 0 (legacy
// server) resolves the oldest outstanding request — legacy servers answer
// strictly in order, so FIFO matching is exact.
func (c *Client) reader() {
	for {
		resp := new(Response)
		if err := ReadMessage(c.br, resp); err != nil {
			c.mu.Lock()
			closed := c.isClosed
			c.mu.Unlock()
			if closed {
				err = errClosed
			}
			c.failAll(err)
			return
		}
		c.mu.Lock()
		seq := resp.Seq
		if seq == 0 && len(c.fifo) > 0 {
			seq = c.fifo[0]
		}
		ch := c.takeWaiterLocked(seq)
		c.mu.Unlock()
		if ch != nil {
			ch <- result{resp: resp}
		}
	}
}

// takeWaiterLocked removes and returns the waiter for seq, if any.
func (c *Client) takeWaiterLocked(seq uint64) chan result {
	ch := c.waiters[seq]
	if ch == nil {
		return nil
	}
	delete(c.waiters, seq)
	for i, s := range c.fifo {
		if s == seq {
			c.fifo = append(c.fifo[:i], c.fifo[i+1:]...)
			break
		}
	}
	return ch
}

// resolve fails (or answers) a single in-flight request.
func (c *Client) resolve(seq uint64, r result) {
	c.mu.Lock()
	if r.err != nil && c.err == nil {
		c.err = r.err
	}
	ch := c.takeWaiterLocked(seq)
	c.mu.Unlock()
	if ch != nil {
		ch <- r
	}
}

// failAll resolves every waiter with a transport error.
func (c *Client) failAll(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	waiters := c.waiters
	c.waiters = make(map[uint64]chan result)
	c.fifo = nil
	c.mu.Unlock()
	for _, ch := range waiters {
		ch <- result{err: err}
	}
}

// waiterPool recycles the one-shot result channels roundTrip waits on.
// A waiter receives exactly one message — takeWaiterLocked removes it
// from the map, so whichever goroutine took it is the only sender — which
// means a channel is drained and reusable once roundTrip reads from it.
var waiterPool = sync.Pool{New: func() any { return make(chan result, 1) }}

// roundTrip sends one request and waits for its correlated response. A
// cancelled or expired ctx abandons the wait promptly: the waiter is
// detached so a late server response is simply discarded by the reader,
// and the connection stays usable for subsequent requests.
func (c *Client) roundTrip(ctx context.Context, req *Request) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	seq := c.seq.Add(1)
	req.Seq = seq
	ch := waiterPool.Get().(chan result)

	c.mu.Lock()
	if c.isClosed || c.err != nil {
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = errClosed
		}
		return nil, err
	}
	c.waiters[seq] = ch
	c.fifo = append(c.fifo, seq)
	c.mu.Unlock()

	select {
	case c.sendq <- pendingWrite{req: req, seq: seq}:
	case <-c.closing:
		c.resolve(seq, result{err: errClosed})
	case <-ctx.Done():
		c.abandon(seq, ch)
		return nil, ctx.Err()
	}

	select {
	case r := <-ch:
		waiterPool.Put(ch)
		if r.err != nil {
			return nil, r.err
		}
		return r.resp, nil
	case <-ctx.Done():
		c.abandon(seq, ch)
		return nil, ctx.Err()
	}
}

// abandon detaches a cancelled request's waiter. If the waiter is still
// registered, no resolver can reach it anymore once it is removed under
// the lock; otherwise a resolver already owns the channel and will send
// exactly one result, which is drained so the channel can be pooled.
func (c *Client) abandon(seq uint64, ch chan result) {
	c.mu.Lock()
	still := c.waiters[seq] != nil
	if still {
		c.takeWaiterLocked(seq)
	}
	c.mu.Unlock()
	if !still {
		<-ch
	}
	waiterPool.Put(ch)
}

// do performs one round trip and maps protocol-level failures to errors.
// On failure the response is never returned: callers get (nil, err), with
// policy refusals wrapped in an errors.As-able *DenialError.
func (c *Client) do(ctx context.Context, req *Request) (*Response, error) {
	if c.serial.Load() {
		c.serialMu.Lock()
		defer c.serialMu.Unlock()
	}
	resp, err := c.roundTrip(ctx, req)
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		if resp.Denial != "" {
			return nil, &DenialError{Reason: resp.Denial, Message: resp.Error}
		}
		return nil, fmt.Errorf("nodeproto: %s", resp.Error)
	}
	return resp, nil
}

// Ping checks liveness.
func (c *Client) Ping() error { return c.PingContext(context.Background()) }

// PingContext checks liveness, honoring ctx cancellation/deadline.
func (c *Client) PingContext(ctx context.Context) error {
	_, err := c.do(ctx, &Request{Op: OpPing})
	return err
}

// Register initializes a cor (run from a safe environment, §2.3).
func (c *Client) Register(id, plaintext, description string, whitelist ...string) error {
	return c.RegisterContext(context.Background(), id, plaintext, description, whitelist...)
}

// RegisterContext is Register with a caller-supplied context.
func (c *Client) RegisterContext(ctx context.Context, id, plaintext, description string, whitelist ...string) error {
	_, err := c.do(ctx, &Request{Op: OpRegister, CorID: id, Plaintext: plaintext, Description: description, Whitelist: whitelist})
	return err
}

// Generate mints a fresh random cor of length n on the node ("Generate New
// Password", §5.4); the plaintext never reaches the client.
func (c *Client) Generate(id, description string, n int, whitelist ...string) error {
	_, err := c.do(context.Background(), &Request{Op: OpGenerate, CorID: id, Description: description, Length: n, Whitelist: whitelist})
	return err
}

// Catalog fetches the device view.
func (c *Client) Catalog() ([]CatalogEntry, error) {
	return c.CatalogContext(context.Background())
}

// CatalogContext is Catalog with a caller-supplied context.
func (c *Client) CatalogContext(ctx context.Context) ([]CatalogEntry, error) {
	resp, err := c.do(ctx, &Request{Op: OpCatalog})
	if err != nil {
		return nil, err
	}
	return resp.Catalog, nil
}

// Bind restricts a cor to an app hash.
func (c *Client) Bind(corID, appHash string) error {
	_, err := c.do(context.Background(), &Request{Op: OpBind, CorID: corID, AppHash: appHash})
	return err
}

// Revoke cuts off a device.
func (c *Client) Revoke(deviceID string) error {
	_, err := c.do(context.Background(), &Request{Op: OpRevoke, DeviceID: deviceID})
	return err
}

// Restore re-enables a device.
func (c *Client) Restore(deviceID string) error {
	_, err := c.do(context.Background(), &Request{Op: OpRestore, DeviceID: deviceID})
	return err
}

// Derive registers a node-computed derivation of an existing cor (currently
// "sha256-hex").
func (c *Client) Derive(parentID, newID, derivation string) error {
	_, err := c.do(context.Background(), &Request{Op: OpDerive, ParentID: parentID, CorID: newID, Description: derivation})
	return err
}

// Reseal performs payload replacement: the node reseals the cor plaintext
// under the provided session state. recordLen is the length of the
// placeholder-bearing record the device produced (0 skips the check).
func (c *Client) Reseal(corID string, state *tlssim.State, appHash, deviceID, domain, targetIP string, recordLen int) ([]byte, error) {
	st, err := json.Marshal(state)
	if err != nil {
		return nil, err
	}
	return c.ResealRaw(corID, st, appHash, deviceID, domain, targetIP, recordLen)
}

// ResealRaw is Reseal with a pre-marshaled session state; hot loops (the
// throughput harness) reuse one marshaled state across calls.
func (c *Client) ResealRaw(corID string, state json.RawMessage, appHash, deviceID, domain, targetIP string, recordLen int) ([]byte, error) {
	return c.ResealRawContext(context.Background(), corID, state, appHash, deviceID, domain, targetIP, recordLen)
}

// ResealRawContext is ResealRaw with a caller-supplied context.
func (c *Client) ResealRawContext(ctx context.Context, corID string, state json.RawMessage, appHash, deviceID, domain, targetIP string, recordLen int) ([]byte, error) {
	resp, err := c.do(ctx, &Request{
		Op: OpReseal, CorID: corID, State: state,
		AppHash: appHash, DeviceID: deviceID, Domain: domain, TargetIP: targetIP,
		RecordLen: recordLen,
	})
	if err != nil {
		return nil, err
	}
	return resp.Record, nil
}

// AuditLog fetches audit entries, optionally filtered.
func (c *Client) AuditLog(corID, deviceID string) ([]AuditEntry, error) {
	resp, err := c.do(context.Background(), &Request{Op: OpAudit, CorID: corID, DeviceID: deviceID})
	if err != nil {
		return nil, err
	}
	return resp.Audit, nil
}

// Pool is a fixed-size set of pipelined connections to one node. Callers
// pick a connection per call (round robin), spreading in-flight load so a
// single connection's writer/reader pair is not the bottleneck.
type Pool struct {
	clients []*Client
	next    atomic.Uint64
}

// DialPool opens size connections to addr.
func DialPool(addr string, size int, timeout time.Duration) (*Pool, error) {
	if size <= 0 {
		size = 1
	}
	p := &Pool{clients: make([]*Client, 0, size)}
	for i := 0; i < size; i++ {
		c, err := Dial(addr, timeout)
		if err != nil {
			p.Close()
			return nil, err
		}
		p.clients = append(p.clients, c)
	}
	return p, nil
}

// Client returns the next connection round robin. The returned client is
// shared; do not Close it — Close the pool.
func (p *Pool) Client() *Client {
	return p.clients[p.next.Add(1)%uint64(len(p.clients))]
}

// Size returns the number of pooled connections.
func (p *Pool) Size() int { return len(p.clients) }

// Close closes every pooled connection, returning the first error.
func (p *Pool) Close() error {
	var first error
	for _, c := range p.clients {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
