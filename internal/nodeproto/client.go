package nodeproto

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"tinman/internal/tlssim"
)

// apps256 is the sha256-hex helper shared by server derivations.
func apps256(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

// Client talks to a trusted-node server over one TCP connection. Methods
// are safe for concurrent use (requests serialize on the connection).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
}

// Dial connects to the node at addr.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("nodeproto: dialing %s: %v", addr, err)
	}
	return &Client{conn: conn}, nil
}

// NewClient wraps an existing connection (tests use net.Pipe).
func NewClient(conn net.Conn) *Client { return &Client{conn: conn} }

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// do performs one round trip.
func (c *Client) do(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := WriteMessage(c.conn, req); err != nil {
		return nil, err
	}
	var resp Response
	if err := ReadMessage(c.conn, &resp); err != nil {
		return nil, err
	}
	if !resp.OK {
		if resp.Denial != "" {
			return &resp, fmt.Errorf("nodeproto: denied (%s): %s", resp.Denial, resp.Error)
		}
		return &resp, fmt.Errorf("nodeproto: %s", resp.Error)
	}
	return &resp, nil
}

// Ping checks liveness.
func (c *Client) Ping() error {
	_, err := c.do(&Request{Op: OpPing})
	return err
}

// Register initializes a cor (run from a safe environment, §2.3).
func (c *Client) Register(id, plaintext, description string, whitelist ...string) error {
	_, err := c.do(&Request{Op: OpRegister, CorID: id, Plaintext: plaintext, Description: description, Whitelist: whitelist})
	return err
}

// Generate mints a fresh random cor of length n on the node ("Generate New
// Password", §5.4); the plaintext never reaches the client.
func (c *Client) Generate(id, description string, n int, whitelist ...string) error {
	_, err := c.do(&Request{Op: OpGenerate, CorID: id, Description: description, Length: n, Whitelist: whitelist})
	return err
}

// Catalog fetches the device view.
func (c *Client) Catalog() ([]CatalogEntry, error) {
	resp, err := c.do(&Request{Op: OpCatalog})
	if err != nil {
		return nil, err
	}
	return resp.Catalog, nil
}

// Bind restricts a cor to an app hash.
func (c *Client) Bind(corID, appHash string) error {
	_, err := c.do(&Request{Op: OpBind, CorID: corID, AppHash: appHash})
	return err
}

// Revoke cuts off a device.
func (c *Client) Revoke(deviceID string) error {
	_, err := c.do(&Request{Op: OpRevoke, DeviceID: deviceID})
	return err
}

// Restore re-enables a device.
func (c *Client) Restore(deviceID string) error {
	_, err := c.do(&Request{Op: OpRestore, DeviceID: deviceID})
	return err
}

// Derive registers a node-computed derivation of an existing cor (currently
// "sha256-hex").
func (c *Client) Derive(parentID, newID, derivation string) error {
	_, err := c.do(&Request{Op: OpDerive, ParentID: parentID, CorID: newID, Description: derivation})
	return err
}

// Reseal performs payload replacement: the node reseals the cor plaintext
// under the provided session state. recordLen is the length of the
// placeholder-bearing record the device produced (0 skips the check).
func (c *Client) Reseal(corID string, state *tlssim.State, appHash, deviceID, domain, targetIP string, recordLen int) ([]byte, error) {
	st, err := json.Marshal(state)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(&Request{
		Op: OpReseal, CorID: corID, State: st,
		AppHash: appHash, DeviceID: deviceID, Domain: domain, TargetIP: targetIP,
		RecordLen: recordLen,
	})
	if err != nil {
		return nil, err
	}
	return resp.Record, nil
}

// AuditLog fetches audit entries, optionally filtered.
func (c *Client) AuditLog(corID, deviceID string) ([]AuditEntry, error) {
	resp, err := c.do(&Request{Op: OpAudit, CorID: corID, DeviceID: deviceID})
	if err != nil {
		return nil, err
	}
	return resp.Audit, nil
}
