package nodeproto

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tinman/internal/node"
	"tinman/internal/obs"
	"tinman/internal/policy"
	"tinman/internal/tlssim"
)

// connBufSize sizes the buffered reader/writer on each connection; large
// enough that a full pipeline batch moves in one syscall.
const connBufSize = 64 << 10

// apps256 is the sha256-hex helper shared by server derivations.
func apps256(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

// DenialError is returned when the node's policy engine refused the
// operation. It is extractable with errors.As so callers can branch on
// policy denials without string matching.
type DenialError struct {
	// Reason is the machine-readable policy reason (policy.Reason.String()).
	Reason string
	// Code is the stable numeric reason (policy.Reason.Code()), decoded from
	// the wire when the server sent one; -1 against a pre-code server, in
	// which case Reason's text is the only signal.
	Code int
	// Message is the node's full error text.
	Message string
}

func (e *DenialError) Error() string {
	return fmt.Sprintf("nodeproto: denied (%s): %s", e.Reason, e.Message)
}

// Is maps a wire denial onto the node package's sentinels, so
// errors.Is(err, node.ErrDenied) — or node.ErrRevoked, node.ErrMalware —
// behaves identically whether the denial happened in-process or over TCP.
// The numeric code resolves the reason in O(1); the text scan survives only
// as the fallback for pre-code servers.
func (e *DenialError) Is(target error) bool {
	if target == node.ErrDenied {
		return true
	}
	if r, ok := policy.ReasonFromCode(e.Code); ok {
		return target == node.SentinelForReason(r)
	}
	if r, ok := policy.ReasonFromString(e.Reason); ok {
		return target == node.SentinelForReason(r)
	}
	return false
}

// IsDenied reports whether err is a policy denial and returns it.
func IsDenied(err error) (*DenialError, bool) {
	var d *DenialError
	if errors.As(err, &d) {
		return d, true
	}
	return nil, false
}

// NotOwnerError is returned when a fleet member refused a device-keyed
// request because the device's shard is owned by another member. Owner is
// the redirect hint: resend the identical request (same ReqID, so the
// at-most-once window still applies) to that member.
type NotOwnerError struct {
	Owner   string
	Message string
}

func (e *NotOwnerError) Error() string {
	return fmt.Sprintf("nodeproto: not owner (try %s): %s", e.Owner, e.Message)
}

// Is maps the wire refusal onto node.ErrNotOwner, matching the in-process
// error surface.
func (e *NotOwnerError) Is(target error) bool { return target == node.ErrNotOwner }

// RedirectOwner extracts the redirect hint from a not-owner refusal.
func RedirectOwner(err error) (string, bool) {
	var n *NotOwnerError
	if errors.As(err, &n) {
		return n.Owner, true
	}
	return "", false
}

// errClosed is the terminal error after Close.
var errClosed = errors.New("nodeproto: client closed")

// result resolves one in-flight request.
type result struct {
	resp *Response
	err  error
}

// waiter is one in-flight request: its result channel plus whether the
// request's bytes reached the wire, which decides how a transport failure
// is reported (ErrAmbiguous vs ErrNeverSent).
type waiter struct {
	ch   chan result
	sent bool
}

// pendingWrite is one request queued for the writer goroutine.
type pendingWrite struct {
	req *Request
	seq uint64
}

// Client talks to a trusted-node server over one TCP connection. Methods
// are safe for concurrent use. Requests are pipelined: a writer goroutine
// streams frames onto the connection, a reader goroutine demultiplexes
// responses to per-Seq waiters, so many calls can be in flight at once on
// the single connection.
//
// SetSerial(true) restores the seed's behavior — one request on the wire
// at a time — which the throughput benchmark uses as its baseline.
type Client struct {
	conn net.Conn
	bw   *bufio.Writer // owned by the writer goroutine
	br   *bufio.Reader // owned by the reader goroutine
	seq  atomic.Uint64

	sendq   chan pendingWrite
	closing chan struct{}

	mu       sync.Mutex // guards waiters, fifo, err, isClosed
	waiters  map[uint64]*waiter
	fifo     []uint64 // outstanding seqs in send order, for Seq==0 servers
	err      error    // terminal transport error
	isClosed bool

	// serialMu serializes whole round trips when serial mode is on.
	serial   atomic.Bool
	serialMu sync.Mutex

	// cm holds the collectors installed by SetMetrics (nil-safe when unset).
	cm clientMetrics
}

// clientMetrics caches the client-side collectors.
type clientMetrics struct {
	inflight *obs.Gauge
	requests *obs.Counter
	errors   *obs.Counter
	latency  *obs.Histogram
}

// SetMetrics installs request metrics on this client. Tracing needs no
// setter: do() picks the caller's span out of the context and stamps its
// IDs onto the wire request.
func (c *Client) SetMetrics(m *obs.Metrics) {
	if m == nil {
		c.cm = clientMetrics{}
		return
	}
	c.cm = clientMetrics{
		inflight: m.Gauge("tinman_client_inflight_requests"),
		requests: m.Counter("tinman_client_requests_total"),
		errors:   m.Counter("tinman_client_request_errors_total"),
		latency:  m.Histogram("tinman_client_request_seconds"),
	}
}

// Dial connects to the node at addr.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("nodeproto: dialing %s: %v", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an existing connection (tests use net.Pipe).
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:    conn,
		bw:      bufio.NewWriterSize(conn, connBufSize),
		br:      bufio.NewReaderSize(conn, connBufSize),
		sendq:   make(chan pendingWrite, 64),
		closing: make(chan struct{}),
		waiters: make(map[uint64]*waiter),
	}
	go c.writer()
	go c.reader()
	return c
}

// SetSerial toggles one-request-at-a-time mode: each round trip holds an
// exclusive lock from send to receive, exactly like the pre-pipelining
// client.
func (c *Client) SetSerial(on bool) { c.serial.Store(on) }

// Err returns the connection's terminal transport error: nil while it is
// usable, the first fatal error (or a closed marker) afterwards. A client
// with a non-nil Err never recovers; reconnect layers replace it.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	if c.isClosed {
		return errClosed
	}
	return nil
}

// Alive reports whether the connection has hit no terminal transport
// error. Note the lag inherent to TCP: a peer that vanished without a FIN
// or RST stays Alive until a write or read against it actually fails.
func (c *Client) Alive() bool { return c.Err() == nil }

// Close closes the connection and fails any in-flight requests.
func (c *Client) Close() error {
	c.mu.Lock()
	already := c.isClosed
	c.isClosed = true
	c.mu.Unlock()
	if already {
		return nil
	}
	close(c.closing)
	err := c.conn.Close()
	c.failAll(errClosed)
	return err
}

// writer drains sendq onto the buffered connection, flushing only when
// the queue runs dry: under load a whole batch of pipelined frames leaves
// in one syscall. After a transport failure it keeps draining, failing
// each queued request, so senders never block on a dead connection.
func (c *Client) writer() {
	var dead error
	write := func(pw pendingWrite) {
		if dead != nil {
			c.resolve(pw.seq, result{err: transportErr(false, dead)})
			return
		}
		// Mark before writing: once any bytes may have left, a failure on
		// this request is ambiguous — the node may have executed it.
		c.markSent(pw.seq)
		if err := WriteMessage(c.bw, pw.req); err != nil {
			dead = err
			c.resolve(pw.seq, result{err: transportErr(true, err)})
			c.failAll(err)
			c.conn.Close()
		}
	}
	for {
		select {
		case <-c.closing:
			return
		case pw := <-c.sendq:
			write(pw)
			// Drain whatever else is queued before paying for a flush. The
			// Gosched between passes lets producer goroutines that are
			// about to enqueue (common on few cores) actually do so, so a
			// whole pipeline batch leaves in one syscall.
			for pass := 0; pass < 2; pass++ {
			drain:
				for {
					select {
					case pw := <-c.sendq:
						write(pw)
					default:
						break drain
					}
				}
				if pass == 0 {
					runtime.Gosched()
				}
			}
			if dead == nil {
				if err := c.bw.Flush(); err != nil {
					dead = err
					c.failAll(err)
					c.conn.Close()
				}
			}
		}
	}
}

// reader demultiplexes responses to waiters by Seq. A Seq of 0 (legacy
// server) resolves the oldest outstanding request — legacy servers answer
// strictly in order, so FIFO matching is exact.
func (c *Client) reader() {
	for {
		resp := new(Response)
		if err := ReadMessage(c.br, resp); err != nil {
			c.mu.Lock()
			closed := c.isClosed
			c.mu.Unlock()
			if closed {
				err = errClosed
			}
			c.failAll(err)
			return
		}
		c.mu.Lock()
		seq := resp.Seq
		if seq == 0 && len(c.fifo) > 0 {
			seq = c.fifo[0]
		}
		w := c.takeWaiterLocked(seq)
		c.mu.Unlock()
		if w != nil {
			w.ch <- result{resp: resp}
		}
	}
}

// takeWaiterLocked removes and returns the waiter for seq, if any.
func (c *Client) takeWaiterLocked(seq uint64) *waiter {
	w := c.waiters[seq]
	if w == nil {
		return nil
	}
	delete(c.waiters, seq)
	for i, s := range c.fifo {
		if s == seq {
			c.fifo = append(c.fifo[:i], c.fifo[i+1:]...)
			break
		}
	}
	return w
}

// markSent flags seq's waiter as on-the-wire, so a later transport failure
// reports it as ErrAmbiguous instead of ErrNeverSent.
func (c *Client) markSent(seq uint64) {
	c.mu.Lock()
	if w := c.waiters[seq]; w != nil {
		w.sent = true
	}
	c.mu.Unlock()
}

// resolve fails (or answers) a single in-flight request.
func (c *Client) resolve(seq uint64, r result) {
	c.mu.Lock()
	w := c.takeWaiterLocked(seq)
	c.mu.Unlock()
	if w != nil {
		w.ch <- r
	}
}

// failAll resolves every waiter with a transport error, classified per
// waiter: requests already on the wire fail ambiguous, queued ones fail
// never-sent. Reading w.sent without the lock is safe because the map swap
// below makes later markSent calls miss these waiters entirely.
func (c *Client) failAll(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	waiters := c.waiters
	c.waiters = make(map[uint64]*waiter)
	c.fifo = nil
	c.mu.Unlock()
	for _, w := range waiters {
		w.ch <- result{err: transportErr(w.sent, err)}
	}
}

// waiterPool recycles the one-shot result channels roundTrip waits on.
// A waiter receives exactly one message — takeWaiterLocked removes it
// from the map, so whichever goroutine took it is the only sender — which
// means a channel is drained and reusable once roundTrip reads from it.
var waiterPool = sync.Pool{New: func() any { return make(chan result, 1) }}

// roundTrip sends one request and waits for its correlated response. A
// cancelled or expired ctx abandons the wait promptly: the waiter is
// detached so a late server response is simply discarded by the reader,
// and the connection stays usable for subsequent requests.
func (c *Client) roundTrip(ctx context.Context, req *Request) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	seq := c.seq.Add(1)
	req.Seq = seq
	w := &waiter{ch: waiterPool.Get().(chan result)}

	c.mu.Lock()
	if c.isClosed || c.err != nil {
		err := c.err
		c.mu.Unlock()
		waiterPool.Put(w.ch)
		if err == nil {
			err = errClosed
		}
		// The request was refused before queueing: provably never sent.
		return nil, transportErr(false, err)
	}
	c.waiters[seq] = w
	c.fifo = append(c.fifo, seq)
	c.mu.Unlock()

	select {
	case c.sendq <- pendingWrite{req: req, seq: seq}:
	case <-c.closing:
		c.resolve(seq, result{err: transportErr(false, errClosed)})
	case <-ctx.Done():
		c.abandon(seq, w)
		return nil, ctx.Err()
	}

	select {
	case r := <-w.ch:
		waiterPool.Put(w.ch)
		if r.err != nil {
			return nil, r.err
		}
		return r.resp, nil
	case <-ctx.Done():
		c.abandon(seq, w)
		return nil, ctx.Err()
	}
}

// abandon detaches a cancelled request's waiter. If the waiter is still
// registered, no resolver can reach it anymore once it is removed under
// the lock; otherwise a resolver already owns the channel and will send
// exactly one result, which is drained so the channel can be pooled.
func (c *Client) abandon(seq uint64, w *waiter) {
	c.mu.Lock()
	still := c.waiters[seq] != nil
	if still {
		c.takeWaiterLocked(seq)
	}
	c.mu.Unlock()
	if !still {
		<-w.ch
	}
	waiterPool.Put(w.ch)
}

// do performs one round trip and maps protocol-level failures to errors.
// On failure the response is never returned: callers get (nil, err), with
// policy refusals wrapped in an errors.As-able *DenialError.
//
// do is also the client's instrumentation point: when the caller's context
// carries a span, the round trip becomes a control_rpc child whose IDs are
// stamped onto the wire request (joining the node's span to the trace), and
// SetMetrics collectors record in-flight/latency/errors.
func (c *Client) do(ctx context.Context, req *Request) (*Response, error) {
	if c.serial.Load() {
		c.serialMu.Lock()
		defer c.serialMu.Unlock()
	}
	var rpc *obs.Span
	if parent := obs.SpanFromContext(ctx); parent != nil {
		rpc = parent.Child(obs.PhaseControlRPC, obs.OpName(string(req.Op)))
		req.TraceID = rpc.Trace().Hex()
		req.SpanID = rpc.ID().Hex()
	}
	c.cm.requests.Inc()
	c.cm.inflight.Inc()
	start := time.Now()
	resp, err := c.roundTrip(ctx, req)
	if err == nil && !resp.OK {
		switch {
		case resp.Denial != "":
			err = &DenialError{Reason: resp.Denial, Code: resp.DenialCode - 1, Message: resp.Error}
		case resp.Owner != "":
			err = &NotOwnerError{Owner: resp.Owner, Message: resp.Error}
		default:
			err = fmt.Errorf("nodeproto: %s", resp.Error)
		}
	}
	c.cm.latency.Observe(time.Since(start))
	c.cm.inflight.Dec()
	if err != nil {
		c.cm.errors.Inc()
		rpc.Add(obs.Err(classifyErr(err)))
		rpc.End()
		return nil, err
	}
	rpc.End()
	return resp, nil
}

// classifyErr maps a client-visible failure onto the obs error-class
// vocabulary (classes, never error text, reach the exporters).
func classifyErr(err error) obs.ErrClass {
	switch {
	case errors.Is(err, node.ErrDenied):
		return obs.ErrDenied
	case errors.Is(err, context.DeadlineExceeded):
		return obs.ErrTimeout
	case errors.Is(err, context.Canceled):
		return obs.ErrTimeout
	case errors.Is(err, ErrAmbiguous), errors.Is(err, ErrNeverSent):
		return obs.ErrTransport
	default:
		return obs.ErrInternal
	}
}

// Ping checks liveness.
func (c *Client) Ping() error { return c.PingContext(context.Background()) }

// PingContext checks liveness, honoring ctx cancellation/deadline.
func (c *Client) PingContext(ctx context.Context) error {
	_, err := c.do(ctx, &Request{Op: OpPing})
	return err
}

// Register initializes a cor (run from a safe environment, §2.3).
func (c *Client) Register(id, plaintext, description string, whitelist ...string) error {
	return c.RegisterContext(context.Background(), id, plaintext, description, whitelist...)
}

// RegisterContext is Register with a caller-supplied context.
func (c *Client) RegisterContext(ctx context.Context, id, plaintext, description string, whitelist ...string) error {
	_, err := c.do(ctx, &Request{Op: OpRegister, CorID: id, Plaintext: plaintext, Description: description, Whitelist: whitelist})
	return err
}

// Generate mints a fresh random cor of length n on the node ("Generate New
// Password", §5.4); the plaintext never reaches the client.
func (c *Client) Generate(id, description string, n int, whitelist ...string) error {
	_, err := c.do(context.Background(), &Request{Op: OpGenerate, CorID: id, Description: description, Length: n, Whitelist: whitelist})
	return err
}

// Catalog fetches the device view.
func (c *Client) Catalog() ([]CatalogEntry, error) {
	return c.CatalogContext(context.Background())
}

// CatalogContext is Catalog with a caller-supplied context.
func (c *Client) CatalogContext(ctx context.Context) ([]CatalogEntry, error) {
	resp, err := c.do(ctx, &Request{Op: OpCatalog})
	if err != nil {
		return nil, err
	}
	return resp.Catalog, nil
}

// Bind restricts a cor to an app hash.
func (c *Client) Bind(corID, appHash string) error {
	_, err := c.do(context.Background(), &Request{Op: OpBind, CorID: corID, AppHash: appHash})
	return err
}

// Revoke cuts off a device.
func (c *Client) Revoke(deviceID string) error {
	_, err := c.do(context.Background(), &Request{Op: OpRevoke, DeviceID: deviceID})
	return err
}

// Restore re-enables a device.
func (c *Client) Restore(deviceID string) error {
	_, err := c.do(context.Background(), &Request{Op: OpRestore, DeviceID: deviceID})
	return err
}

// Derive registers a node-computed derivation of an existing cor (currently
// "sha256-hex").
func (c *Client) Derive(parentID, newID, derivation string) error {
	_, err := c.do(context.Background(), &Request{Op: OpDerive, ParentID: parentID, CorID: newID, Description: derivation})
	return err
}

// Reseal performs payload replacement: the node reseals the cor plaintext
// under the provided session state. recordLen is the length of the
// placeholder-bearing record the device produced (0 skips the check).
func (c *Client) Reseal(corID string, state *tlssim.State, appHash, deviceID, domain, targetIP string, recordLen int) ([]byte, error) {
	st, err := json.Marshal(state)
	if err != nil {
		return nil, err
	}
	return c.ResealRaw(corID, st, appHash, deviceID, domain, targetIP, recordLen)
}

// ResealRaw is Reseal with a pre-marshaled session state; hot loops (the
// throughput harness) reuse one marshaled state across calls.
func (c *Client) ResealRaw(corID string, state json.RawMessage, appHash, deviceID, domain, targetIP string, recordLen int) ([]byte, error) {
	return c.ResealRawContext(context.Background(), corID, state, appHash, deviceID, domain, targetIP, recordLen)
}

// ResealRawContext is ResealRaw with a caller-supplied context.
func (c *Client) ResealRawContext(ctx context.Context, corID string, state json.RawMessage, appHash, deviceID, domain, targetIP string, recordLen int) ([]byte, error) {
	resp, err := c.do(ctx, &Request{
		Op: OpReseal, CorID: corID, State: state,
		AppHash: appHash, DeviceID: deviceID, Domain: domain, TargetIP: targetIP,
		RecordLen: recordLen,
	})
	if err != nil {
		return nil, err
	}
	return resp.Record, nil
}

// AuditLog fetches audit entries, optionally filtered.
func (c *Client) AuditLog(corID, deviceID string) ([]AuditEntry, error) {
	resp, err := c.do(context.Background(), &Request{Op: OpAudit, CorID: corID, DeviceID: deviceID})
	if err != nil {
		return nil, err
	}
	return resp.Audit, nil
}

// WhoOwns asks which fleet member owns the device's shard.
func (c *Client) WhoOwns(ctx context.Context, deviceID string) (string, error) {
	resp, err := c.do(ctx, &Request{Op: OpWhoOwns, DeviceID: deviceID})
	if err != nil {
		return "", err
	}
	return resp.Owner, nil
}

// HandoffExport detaches the device's shard from this node and returns its
// marshaled export — half of a node-to-node shard move. The export carries
// cor plaintext; only the fleet control plane calls this.
func (c *Client) HandoffExport(ctx context.Context, deviceID string) (json.RawMessage, error) {
	resp, err := c.do(ctx, &Request{Op: OpHandoffExport, DeviceID: deviceID})
	if err != nil {
		return nil, err
	}
	return resp.Shard, nil
}

// HandoffImport attaches a shard export (from another node's
// HandoffExport) onto this node.
func (c *Client) HandoffImport(ctx context.Context, shard json.RawMessage) error {
	_, err := c.do(ctx, &Request{Op: OpHandoffImport, Shard: shard})
	return err
}

// InstallPolicy pushes a policy snapshot for validate-then-swap hot
// reload. Against a fleet-fronting node the push propagates to every
// member. Returns the stamp the node (or fleet) now runs.
func (c *Client) InstallPolicy(ctx context.Context, snap *policy.Snapshot) (version uint64, hash string, err error) {
	raw, err := json.Marshal(snap)
	if err != nil {
		return 0, "", err
	}
	resp, err := c.do(ctx, &Request{Op: OpPolicyInstall, Policy: raw})
	if err != nil {
		return 0, "", err
	}
	return resp.PolicyVersion, resp.PolicyHash, nil
}

// PolicyVersion reports the policy stamp the node currently runs.
func (c *Client) PolicyVersion(ctx context.Context) (version uint64, hash string, err error) {
	resp, err := c.do(ctx, &Request{Op: OpPolicyVersion})
	if err != nil {
		return 0, "", err
	}
	return resp.PolicyVersion, resp.PolicyHash, nil
}

// SetClass reclassifies a cor's sensitivity ("public", "sensitive",
// "server-only"); fleet-fronting nodes replicate it to every member.
func (c *Client) SetClass(ctx context.Context, corID, class string) error {
	_, err := c.do(ctx, &Request{Op: OpSetClass, CorID: corID, Class: class})
	return err
}

// Pool is a fixed-size set of pipelined connections to one node. Callers
// pick a connection per call (round robin), spreading in-flight load so a
// single connection's writer/reader pair is not the bottleneck.
//
// The pool is liveness-aware: Client skips slots whose connection has hit
// a terminal transport error and kicks off a background redial for each,
// so one dead connection degrades capacity instead of failing a fixed
// fraction of calls forever.
type Pool struct {
	dial func() (*Client, error)
	next atomic.Uint64

	mu      sync.Mutex
	slots   []*Client
	dialing []bool
	closed  bool
}

// NewPool opens size connections using dial; the same dial reconnects dead
// slots later.
func NewPool(dial func() (*Client, error), size int) (*Pool, error) {
	if size <= 0 {
		size = 1
	}
	p := &Pool{dial: dial, slots: make([]*Client, size), dialing: make([]bool, size)}
	for i := range p.slots {
		c, err := dial()
		if err != nil {
			p.Close()
			return nil, err
		}
		p.slots[i] = c
	}
	return p, nil
}

// DialPool opens size connections to addr.
func DialPool(addr string, size int, timeout time.Duration) (*Pool, error) {
	return NewPool(func() (*Client, error) { return Dial(addr, timeout) }, size)
}

// Client returns the next live connection, scanning round robin past dead
// slots (each scheduled for a background redial). If every slot is dead it
// tries one synchronous dial so a recovered node is picked up immediately;
// failing that, it returns a dead client — never nil — whose calls fail
// fast with a classified transport error. The returned client is shared;
// do not Close it — Close the pool.
func (p *Pool) Client() *Client {
	start := p.next.Add(1)
	p.mu.Lock()
	n := uint64(len(p.slots))
	if p.closed {
		c := p.slots[start%n]
		p.mu.Unlock()
		return c
	}
	var firstDead *Client
	for i := uint64(0); i < n; i++ {
		idx := int((start + i) % n)
		c := p.slots[idx]
		if c.Alive() {
			p.mu.Unlock()
			return c
		}
		if firstDead == nil {
			firstDead = c
		}
		p.redialLocked(idx)
	}
	p.mu.Unlock()

	// Every slot is dead. One synchronous attempt, outside the lock so a
	// slow dial does not serialize other callers.
	if c, err := p.dial(); err == nil {
		idx := int(start % n)
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			c.Close()
			return firstDead
		}
		old := p.slots[idx]
		if old.Alive() {
			// A background redial revived the slot first; its connection
			// must stay installed, or it would close ours out from under
			// the caller when it lands.
			p.mu.Unlock()
			c.Close()
			return old
		}
		p.slots[idx] = c
		p.mu.Unlock()
		old.Close()
		return c
	}
	return firstDead
}

// redialLocked starts a background replacement dial for slot idx, at most
// one at a time per slot. The replacement only lands if the slot is still
// dead when the dial completes: a synchronous dial may have revived it in
// the meantime, and closing that connection would yank it from a caller
// already using it.
func (p *Pool) redialLocked(idx int) {
	if p.dialing[idx] || p.closed {
		return
	}
	p.dialing[idx] = true
	go func() {
		c, err := p.dial()
		p.mu.Lock()
		p.dialing[idx] = false
		if err != nil || p.closed || p.slots[idx].Alive() {
			p.mu.Unlock()
			if c != nil {
				c.Close()
			}
			return
		}
		old := p.slots[idx]
		p.slots[idx] = c
		p.mu.Unlock()
		old.Close()
	}()
}

// Size returns the number of pooled connections.
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.slots)
}

// Close closes every pooled connection, returning the first error.
func (p *Pool) Close() error {
	p.mu.Lock()
	p.closed = true
	slots := append([]*Client(nil), p.slots...)
	p.mu.Unlock()
	var first error
	for _, c := range slots {
		if c == nil {
			continue
		}
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
