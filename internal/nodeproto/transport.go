package nodeproto

import (
	"errors"
	"fmt"
)

// Transport failures are classified by whether the request could have
// reached the node, because that decides what a retry layer may do:
//
//   - never sent: the request provably did not leave this client. Retrying
//     is always safe, even for non-idempotent operations.
//   - ambiguous: bytes may have reached the node before the failure, so
//     the operation may have executed. A blind retry could double-execute;
//     a retry under the same Request.ReqID is safe because the server's
//     replay window deduplicates it.
//
// Both sentinels (and the underlying cause) are reachable through
// errors.Is/As on any error a Client method returns for a transport
// failure.
var (
	// ErrNeverSent marks a request that never reached the wire.
	ErrNeverSent = errors.New("nodeproto: request never sent")
	// ErrAmbiguous marks a request that may have executed on the node.
	ErrAmbiguous = errors.New("nodeproto: request may have executed")
)

// TransportError is the concrete error for a failed round trip: the
// classification plus the underlying transport cause.
type TransportError struct {
	// Ambiguous is true when the request may have reached the node.
	Ambiguous bool
	// Cause is the underlying connection error.
	Cause error
}

func (e *TransportError) Error() string {
	if e.Ambiguous {
		return fmt.Sprintf("nodeproto: transport failed after send (request may have executed): %v", e.Cause)
	}
	return fmt.Sprintf("nodeproto: transport failed before send: %v", e.Cause)
}

// Unwrap exposes the classification sentinel and the cause to errors.Is/As.
func (e *TransportError) Unwrap() []error {
	sentinel := ErrNeverSent
	if e.Ambiguous {
		sentinel = ErrAmbiguous
	}
	return []error{sentinel, e.Cause}
}

// transportErr wraps cause with a send classification. It is idempotent:
// an already-classified error passes through unchanged, so layered failure
// paths (per-request resolve, then failAll) cannot re-wrap and flip the
// classification.
func transportErr(sent bool, cause error) error {
	var te *TransportError
	if errors.As(cause, &te) {
		return cause
	}
	return &TransportError{Ambiguous: sent, Cause: cause}
}
