package nodeproto

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tinman/internal/fault"
	"tinman/internal/node"
	"tinman/internal/obs"
	"tinman/internal/tlssim"
)

// Reconnect defaults; override via ReconnectConfig.
const (
	DefaultRequestTimeout    = 10 * time.Second
	DefaultMaxAttempts       = 4
	DefaultHeartbeatInterval = 15 * time.Second
)

// clientIDSeq disambiguates ReconnectClients created in one process; the
// nanosecond component disambiguates across processes, which is enough for
// a dedup window keyed per request.
var clientIDSeq atomic.Uint64

// ReconnectConfig tunes a ReconnectClient. The zero value of every field
// takes a sensible default, except Dial, which is required (DialReconnect
// fills it from an address).
type ReconnectConfig struct {
	// Dial opens a fresh connection to the node.
	Dial func() (*Client, error)
	// RequestTimeout bounds each individual attempt (default 10s).
	RequestTimeout time.Duration
	// MaxAttempts caps tries per logical request (default 4).
	MaxAttempts int
	// Backoff paces retries; the zero value takes the fault defaults.
	Backoff fault.Backoff
	// Breaker configures the circuit breaker that turns repeated channel
	// failures into fast local refusals (cor-degraded mode).
	Breaker fault.BreakerConfig
	// Heartbeat is the liveness-probe interval. Probes detect a dead
	// connection while the caller is idle and — breaker permitting — redial
	// so recovery does not wait for user traffic. 0 uses the default;
	// negative disables the prober.
	Heartbeat time.Duration
	// ClientID prefixes the request IDs minted for at-most-once replay;
	// empty generates a process-unique value.
	ClientID string
	// Metrics, when set, counts breaker state transitions
	// (tinman_breaker_transitions_total{to=...}), gauges the current state,
	// and counts reconnects. It also installs Breaker.OnTransition unless
	// the caller already set one.
	Metrics *obs.Metrics
}

// ReconnectClient wraps Client with the fault tolerance a mobile device
// needs on a flaky link to its trusted node (§5.4 availability):
//
//   - transparent reconnect: a dead connection is replaced on the next
//     request (or by the heartbeat prober), with capped exponential
//     backoff between attempts;
//   - safe retry: every non-idempotent request is tagged with a unique
//     ReqID, so replaying after an ambiguous failure cannot double-execute
//     — the server's replay window returns the recorded outcome;
//   - circuit breaking: after consecutive channel failures the breaker
//     opens and calls fail fast with node.ErrNodeUnavailable instead of
//     hanging a user-facing operation on timeouts; a half-open probe
//     closes it again once the node answers.
//
// Methods are safe for concurrent use.
type ReconnectClient struct {
	cfg     ReconnectConfig
	breaker *fault.Breaker
	reqSeq  atomic.Uint64
	// idNonce makes minted ReqIDs unique across client instances even when
	// the caller supplies a stable ClientID (a device identity). The
	// server-side replay window outlives client processes — it travels with
	// the device's shard — so a fresh run re-minting "<id>-1" would be
	// served the previous run's recorded responses.
	idNonce string

	// reconnects counts connections established, the first included.
	reconnects atomic.Uint64
	// reconnectCtr mirrors reconnects into the metrics registry (nil-safe).
	reconnectCtr *obs.Counter

	mu     sync.Mutex
	cur    *Client
	closed bool

	hbStop chan struct{}
	hbDone chan struct{}
}

// NewReconnectClient builds a reconnecting client; it does not dial until
// the first request (or heartbeat), so it can be created while the node is
// still down.
func NewReconnectClient(cfg ReconnectConfig) *ReconnectClient {
	if cfg.Dial == nil {
		panic("nodeproto: ReconnectConfig.Dial is required")
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = DefaultMaxAttempts
	}
	if cfg.Heartbeat == 0 {
		cfg.Heartbeat = DefaultHeartbeatInterval
	}
	if cfg.ClientID == "" {
		cfg.ClientID = fmt.Sprintf("rc%d-%d", clientIDSeq.Add(1), time.Now().UnixNano())
	}
	if m := cfg.Metrics; m != nil && cfg.Breaker.OnTransition == nil {
		transitions := map[fault.BreakerState]*obs.Counter{}
		for _, st := range []fault.BreakerState{fault.BreakerClosed, fault.BreakerOpen, fault.BreakerHalfOpen} {
			transitions[st] = m.Counter(fmt.Sprintf(`tinman_breaker_transitions_total{to=%q}`, st))
		}
		stateGauge := m.Gauge("tinman_breaker_state")
		cfg.Breaker.OnTransition = func(_, to fault.BreakerState) {
			transitions[to].Inc()
			stateGauge.Set(int64(to))
		}
	}
	rc := &ReconnectClient{
		cfg:          cfg,
		breaker:      fault.NewBreaker(cfg.Breaker),
		reconnectCtr: cfg.Metrics.Counter("tinman_reconnects_total"),
		idNonce:      fmt.Sprintf("%d.%d", clientIDSeq.Add(1), time.Now().UnixNano()),
	}
	if cfg.Heartbeat > 0 {
		rc.hbStop = make(chan struct{})
		rc.hbDone = make(chan struct{})
		go rc.heartbeat()
	}
	return rc
}

// DialReconnect builds a reconnecting client for the node at addr. Unlike
// Dial it cannot fail: connectivity is established lazily and repaired
// continuously.
func DialReconnect(addr string, timeout time.Duration, cfg ReconnectConfig) *ReconnectClient {
	if cfg.Dial == nil {
		cfg.Dial = func() (*Client, error) { return Dial(addr, timeout) }
	}
	return NewReconnectClient(cfg)
}

// Close stops the prober and closes the current connection.
func (rc *ReconnectClient) Close() error {
	rc.mu.Lock()
	if rc.closed {
		rc.mu.Unlock()
		return nil
	}
	rc.closed = true
	c := rc.cur
	rc.cur = nil
	rc.mu.Unlock()
	if rc.hbStop != nil {
		close(rc.hbStop)
		<-rc.hbDone
	}
	if c != nil {
		return c.Close()
	}
	return nil
}

// Reconnects returns how many connections have been established over the
// client's lifetime (the initial dial counts as the first).
func (rc *ReconnectClient) Reconnects() uint64 { return rc.reconnects.Load() }

// BreakerState exposes the circuit breaker's state for monitoring and
// degraded-mode checks.
func (rc *ReconnectClient) BreakerState() fault.BreakerState { return rc.breaker.State() }

// client returns a live connection, dialing a replacement if the current
// one is dead or absent.
func (rc *ReconnectClient) client() (*Client, error) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.closed {
		return nil, errClosed
	}
	if rc.cur != nil && rc.cur.Alive() {
		return rc.cur, nil
	}
	if rc.cur != nil {
		rc.cur.Close()
		rc.cur = nil
	}
	c, err := rc.cfg.Dial()
	if err != nil {
		return nil, err
	}
	rc.cur = c
	rc.reconnects.Add(1)
	rc.reconnectCtr.Inc()
	return c, nil
}

// invalidate discards a connection observed failing, unless a concurrent
// caller already replaced it.
func (rc *ReconnectClient) invalidate(c *Client) {
	rc.mu.Lock()
	if rc.cur == c {
		rc.cur = nil
	}
	rc.mu.Unlock()
	c.Close()
}

// heartbeat probes liveness every cfg.Heartbeat: a ping over the current
// connection, or — when there is none and the breaker permits — a dial
// probe, so an idle device notices recovery without user traffic.
func (rc *ReconnectClient) heartbeat() {
	defer close(rc.hbDone)
	t := time.NewTicker(rc.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-rc.hbStop:
			return
		case <-t.C:
			rc.probe()
		}
	}
}

func (rc *ReconnectClient) probe() {
	rc.mu.Lock()
	c := rc.cur
	closed := rc.closed
	alive := c != nil && c.Alive()
	rc.mu.Unlock()
	if closed {
		return
	}
	if !alive {
		if !rc.breaker.Allow() {
			return
		}
		nc, err := rc.client()
		if err != nil {
			rc.breaker.Failure()
			return
		}
		c = nc
	}
	timeout := rc.cfg.RequestTimeout
	if timeout > rc.cfg.Heartbeat {
		timeout = rc.cfg.Heartbeat
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	err := c.PingContext(ctx)
	cancel()
	if err != nil {
		rc.breaker.Failure()
		rc.invalidate(c)
		return
	}
	rc.breaker.Success()
}

// do runs one logical request to completion: at most MaxAttempts tries,
// backoff-paced, each on a (possibly fresh) connection under its own
// deadline. Retrying is safe for every failure class it retries: requests
// that never reached the wire trivially, ambiguous ones because the minted
// ReqID makes the server deduplicate the replay. Caller cancellation and
// node-level answers (denials, bad requests) are returned immediately.
func (rc *ReconnectClient) do(ctx context.Context, req *Request) (*Response, error) {
	if mutating(req.Op) && req.ReqID == "" {
		req.ReqID = fmt.Sprintf("%s-%s-%d", rc.cfg.ClientID, rc.idNonce, rc.reqSeq.Add(1))
	}
	var lastErr error
	for attempt := 0; attempt < rc.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, rc.cfg.Backoff.Delay(attempt-1)); err != nil {
				return nil, err
			}
		}
		if !rc.breaker.Allow() {
			break
		}
		c, err := rc.client()
		if err != nil {
			if errors.Is(err, errClosed) {
				return nil, err
			}
			rc.breaker.Failure()
			lastErr = err
			continue
		}
		attemptCtx, cancel := context.WithTimeout(ctx, rc.cfg.RequestTimeout)
		// Each attempt sends a private copy: an abandoned earlier attempt
		// may still be queued in a dying connection's writer, which must
		// not observe this attempt's Seq stamping.
		r := *req
		resp, err := c.do(attemptCtx, &r)
		cancel()
		if err == nil {
			rc.breaker.Success()
			return resp, nil
		}
		if ctx.Err() != nil {
			// The caller gave up; that is not evidence against the node.
			return nil, ctx.Err()
		}
		var te *TransportError
		if !errors.As(err, &te) && !errors.Is(err, context.DeadlineExceeded) {
			// The node answered with a protocol-level refusal (denial, bad
			// request): the channel itself is healthy.
			rc.breaker.Success()
			return nil, err
		}
		rc.breaker.Failure()
		rc.invalidate(c)
		lastErr = err
	}
	if lastErr == nil {
		return nil, fmt.Errorf("%w: circuit breaker open (state %s)",
			node.ErrNodeUnavailable, rc.breaker.State())
	}
	return nil, fmt.Errorf("%w: giving up after %d attempts: %w",
		node.ErrNodeUnavailable, rc.cfg.MaxAttempts, lastErr)
}

// sleepCtx waits d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Do runs one raw request through the reconnect/retry/breaker machinery.
// If the request is mutating and carries no ReqID, one is minted onto it —
// and stays on the caller's Request, so resending the same Request to a
// different member (a fleet redirect after a not-owner refusal or a crash)
// dedups in the shard's replay window instead of double-executing.
func (rc *ReconnectClient) Do(ctx context.Context, req *Request) (*Response, error) {
	return rc.do(ctx, req)
}

// The method set mirrors Client's, so a ReconnectClient drops in wherever
// a Client is used directly.

// Ping checks liveness.
func (rc *ReconnectClient) Ping() error { return rc.PingContext(context.Background()) }

// PingContext checks liveness, honoring ctx cancellation/deadline.
func (rc *ReconnectClient) PingContext(ctx context.Context) error {
	_, err := rc.do(ctx, &Request{Op: OpPing})
	return err
}

// Register initializes a cor (run from a safe environment, §2.3).
func (rc *ReconnectClient) Register(id, plaintext, description string, whitelist ...string) error {
	return rc.RegisterContext(context.Background(), id, plaintext, description, whitelist...)
}

// RegisterContext is Register with a caller-supplied context.
func (rc *ReconnectClient) RegisterContext(ctx context.Context, id, plaintext, description string, whitelist ...string) error {
	_, err := rc.do(ctx, &Request{Op: OpRegister, CorID: id, Plaintext: plaintext, Description: description, Whitelist: whitelist})
	return err
}

// Generate mints a fresh random cor of length n on the node.
func (rc *ReconnectClient) Generate(id, description string, n int, whitelist ...string) error {
	_, err := rc.do(context.Background(), &Request{Op: OpGenerate, CorID: id, Description: description, Length: n, Whitelist: whitelist})
	return err
}

// Catalog fetches the device view.
func (rc *ReconnectClient) Catalog() ([]CatalogEntry, error) {
	return rc.CatalogContext(context.Background())
}

// CatalogContext is Catalog with a caller-supplied context.
func (rc *ReconnectClient) CatalogContext(ctx context.Context) ([]CatalogEntry, error) {
	resp, err := rc.do(ctx, &Request{Op: OpCatalog})
	if err != nil {
		return nil, err
	}
	return resp.Catalog, nil
}

// Bind restricts a cor to an app hash.
func (rc *ReconnectClient) Bind(corID, appHash string) error {
	_, err := rc.do(context.Background(), &Request{Op: OpBind, CorID: corID, AppHash: appHash})
	return err
}

// Revoke cuts off a device.
func (rc *ReconnectClient) Revoke(deviceID string) error {
	_, err := rc.do(context.Background(), &Request{Op: OpRevoke, DeviceID: deviceID})
	return err
}

// Restore re-enables a device.
func (rc *ReconnectClient) Restore(deviceID string) error {
	_, err := rc.do(context.Background(), &Request{Op: OpRestore, DeviceID: deviceID})
	return err
}

// Derive registers a node-computed derivation of an existing cor.
func (rc *ReconnectClient) Derive(parentID, newID, derivation string) error {
	_, err := rc.do(context.Background(), &Request{Op: OpDerive, ParentID: parentID, CorID: newID, Description: derivation})
	return err
}

// Reseal performs payload replacement under a fault-tolerant channel.
func (rc *ReconnectClient) Reseal(corID string, state *tlssim.State, appHash, deviceID, domain, targetIP string, recordLen int) ([]byte, error) {
	st, err := json.Marshal(state)
	if err != nil {
		return nil, err
	}
	return rc.ResealRawContext(context.Background(), corID, st, appHash, deviceID, domain, targetIP, recordLen)
}

// ResealRawContext is Reseal with a pre-marshaled session state and a
// caller-supplied context.
func (rc *ReconnectClient) ResealRawContext(ctx context.Context, corID string, state json.RawMessage, appHash, deviceID, domain, targetIP string, recordLen int) ([]byte, error) {
	resp, err := rc.do(ctx, &Request{
		Op: OpReseal, CorID: corID, State: state,
		AppHash: appHash, DeviceID: deviceID, Domain: domain, TargetIP: targetIP,
		RecordLen: recordLen,
	})
	if err != nil {
		return nil, err
	}
	return resp.Record, nil
}

// AuditLog fetches audit entries, optionally filtered.
func (rc *ReconnectClient) AuditLog(corID, deviceID string) ([]AuditEntry, error) {
	resp, err := rc.do(context.Background(), &Request{Op: OpAudit, CorID: corID, DeviceID: deviceID})
	if err != nil {
		return nil, err
	}
	return resp.Audit, nil
}
