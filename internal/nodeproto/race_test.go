package nodeproto

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestConcurrentMixedOpsRace hammers one server with 8 concurrent clients
// doing mixed register/bind/catalog/reseal/audit traffic while the main
// goroutine revokes and restores a device mid-run. Run under -race this
// exercises every server lock (policy RWMutex, sharded audit, cor store,
// pipelined conn handling); afterwards it asserts the audit log lost
// nothing: one entry per reseal attempt and a gap-free monotonic Seq.
func TestConcurrentMixedOpsRace(t *testing.T) {
	srv := NewServer()
	state, err := PrepareThroughputServer(srv)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()
	addr := l.Addr().String()

	const (
		workers = 8
		iters   = 25
	)
	var (
		reseals  atomic.Int64
		wg       sync.WaitGroup
		errsMu   sync.Mutex
		firstErr error
	)
	report := func(err error) {
		errsMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errsMu.Unlock()
	}
	halfway := make(chan struct{})
	var halfOnce sync.Once

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr, 5*time.Second)
			if err != nil {
				report(err)
				return
			}
			defer c.Close()
			corID := fmt.Sprintf("race-cor-%d", w)
			if err := c.Register(corID, "secret-race", "race cor", "bench.example"); err != nil {
				report(err)
				return
			}
			if err := c.Bind(corID, "race-app"); err != nil {
				report(err)
				return
			}
			// Two workers share each device ID so the mid-run revocation
			// hits several clients at once.
			dev := fmt.Sprintf("race-dev-%d", w%4)
			for i := 0; i < iters; i++ {
				if i == iters/2 {
					halfOnce.Do(func() { close(halfway) })
				}
				if _, err := c.Catalog(); err != nil {
					report(err)
					return
				}
				reseals.Add(1)
				if _, err := c.ResealRaw(benchCor, state, "bench-app", dev, "bench.example", "", 0); err != nil {
					// Policy denials (the racing revocation) are expected;
					// anything else fails the test.
					if _, denied := IsDenied(err); !denied {
						report(err)
						return
					}
				}
				if i%5 == 4 {
					if _, err := c.AuditLog("", dev); err != nil {
						report(err)
						return
					}
				}
			}
		}(w)
	}

	// Mid-run: revoke one shared device, let denials accumulate, restore.
	<-halfway
	admin, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	if err := admin.Revoke("race-dev-1"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	if err := admin.Restore("race-dev-1"); err != nil {
		t.Fatal(err)
	}

	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}

	// Every reseal attempt — allowed or denied — appends exactly one audit
	// entry; nothing else in this workload appends. The sharded log must
	// have lost none: count matches and Seq is 1..n with no gaps.
	entries := srv.Audit.Entries()
	want := int(reseals.Load())
	if len(entries) != want {
		t.Fatalf("audit entries = %d, want %d (one per reseal)", len(entries), want)
	}
	for i, e := range entries {
		if e.Seq != uint64(i+1) {
			t.Fatalf("audit seq gap: entries[%d].Seq = %d, want %d", i, e.Seq, i+1)
		}
	}
}
