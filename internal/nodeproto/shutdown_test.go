package nodeproto

import (
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// These tests pin the shutdown/failure classification contract: a caller
// must be able to tell "this request may have executed on the node" from
// "this request provably never left", because only the former needs the
// ReqID replay machinery and only the latter is trivially safe to retry.

// readOneFrame consumes one length-prefixed message from the fake server.
func readOneFrame(t *testing.T, conn net.Conn) {
	t.Helper()
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		t.Fatalf("reading frame header: %v", err)
	}
	body := make([]byte, binary.BigEndian.Uint32(hdr[:]))
	if _, err := io.ReadFull(conn, body); err != nil {
		t.Fatalf("reading frame body: %v", err)
	}
}

func TestShutdownAmbiguousAfterSend(t *testing.T) {
	cli, srv := net.Pipe()
	c := NewClient(cli)
	defer c.Close()

	done := make(chan error, 1)
	go func() {
		_, err := c.do(context.Background(), &Request{Op: OpPing})
		done <- err
	}()
	// The server reads the whole request — so it provably reached the wire
	// — then drops the connection without replying.
	readOneFrame(t, srv)
	srv.Close()

	err := <-done
	if !errors.Is(err, ErrAmbiguous) {
		t.Fatalf("err = %v, want ErrAmbiguous", err)
	}
	if errors.Is(err, ErrNeverSent) {
		t.Fatal("a sent request was classified never-sent")
	}
	var te *TransportError
	if !errors.As(err, &te) || !te.Ambiguous || te.Cause == nil {
		t.Fatalf("err = %#v, want an ambiguous TransportError with a cause", err)
	}
}

func TestShutdownNeverSentOnDeadConnection(t *testing.T) {
	cli, srv := net.Pipe()
	c := NewClient(cli)
	defer c.Close()

	srv.Close()
	deadline := time.Now().Add(5 * time.Second)
	for c.Alive() {
		if time.Now().After(deadline) {
			t.Fatal("client never noticed the dead connection")
		}
		time.Sleep(time.Millisecond)
	}

	_, err := c.do(context.Background(), &Request{Op: OpPing})
	if !errors.Is(err, ErrNeverSent) {
		t.Fatalf("err = %v, want ErrNeverSent", err)
	}
	if errors.Is(err, ErrAmbiguous) {
		t.Fatal("an unsent request was classified ambiguous")
	}
}

func TestShutdownNeverSentAfterClose(t *testing.T) {
	cli, srv := net.Pipe()
	defer srv.Close()
	c := NewClient(cli)
	c.Close()

	_, err := c.do(context.Background(), &Request{Op: OpPing})
	if !errors.Is(err, ErrNeverSent) {
		t.Fatalf("err after Close = %v, want ErrNeverSent", err)
	}
}

// TestShutdownConcurrentWaiters hammers a connection with concurrent
// requests the server never answers, then kills it: every waiter must
// resolve promptly with a classified TransportError — no hangs, no
// misclassification — and the whole dance must be race-clean.
func TestShutdownConcurrentWaiters(t *testing.T) {
	cli, srv := net.Pipe()
	c := NewClient(cli)
	defer c.Close()
	go io.Copy(io.Discard, srv) // swallow requests, never reply

	const workers = 16
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.do(context.Background(), &Request{Op: OpPing})
		}(i)
	}
	time.Sleep(50 * time.Millisecond) // let the batch reach the wire
	srv.Close()

	finished := make(chan struct{})
	go func() { wg.Wait(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(5 * time.Second):
		t.Fatal("waiters hung after connection loss")
	}
	for i, err := range errs {
		var te *TransportError
		if !errors.As(err, &te) {
			t.Fatalf("waiter %d: err = %v, want a TransportError", i, err)
		}
		// Each waiter is classified one way or the other, never both.
		if errors.Is(err, ErrAmbiguous) == errors.Is(err, ErrNeverSent) {
			t.Fatalf("waiter %d: ambiguous/never-sent classification inconsistent: %v", i, err)
		}
	}
}
