// Package nodeproto implements TinMan's trusted-node service over a real
// network: a JSON request/response protocol carrying the operations a
// device needs from the node — cor registration and catalog, app binding,
// policy administration, audit queries, and the heart of the SSL/TCP
// offload path: resealing a marked record with cor plaintext under an
// injected session state (§3.2–§3.4).
//
// The in-process simulation (internal/core) exercises the full system
// including device-side tainting; this package is the deployable
// counterpart for the trusted-node half, served by cmd/tinman-node and
// consumed by cmd/tinman-device.
//
// # Pipelining and compatibility
//
// Every message carries a Seq correlation ID so a single connection can
// hold many requests in flight: the server echoes Req.Seq into Resp.Seq
// and may answer out of order. Compatibility is by construction rather
// than by version negotiation:
//
//   - Old client, new server: a pre-Seq client sends Seq == 0 and keeps at
//     most one request outstanding; the server echoes 0 back (omitted on
//     the wire via omitempty) and the lone round trip works unchanged.
//   - New client, old server: a pre-Seq server replies in order with
//     Seq == 0; the client falls back to FIFO matching for Seq == 0
//     responses (see Client), which is exactly the old server's order.
package nodeproto

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"tinman/internal/fastjson"
)

// Op names a protocol operation.
type Op string

// Protocol operations.
const (
	OpRegister Op = "register" // admin: initialize a cor (safe environment)
	OpGenerate Op = "generate" // admin: mint a fresh random cor
	OpCatalog  Op = "catalog"  // device view: descriptions + placeholders
	OpBind     Op = "bind"     // admin: bind an app hash to a cor
	OpRevoke   Op = "revoke"   // revoke a device (stolen phone)
	OpRestore  Op = "restore"  // restore a device
	OpReseal   Op = "reseal"   // payload replacement: reseal a record with cor
	OpDerive   Op = "derive"   // register a derived cor (hash of a password)
	OpAudit    Op = "audit"    // query the audit log
	OpPing     Op = "ping"     // liveness

	// Fleet routing and handoff (served by a node running behind a fleet
	// router; a standalone node answers who_owns with itself and serves
	// handoffs directly).
	OpWhoOwns       Op = "who_owns"       // which member owns a device's shard
	OpHandoffExport Op = "handoff_export" // detach + export a device shard
	OpHandoffImport Op = "handoff_import" // import a device shard export

	// OpDSMWarmup ships one background warm-up chunk of the speculative
	// pre-migration pipeline (dsm/warmup.go). Low priority by construction:
	// chunks are idempotent-safe (the ordered-epoch protocol drops anything
	// stale, falling back to the cold path), so clients fire them without
	// retry budgets and never block foreground requests on them.
	OpDSMWarmup Op = "dsm_warmup"

	// Control plane (internal/ctl): versioned policy administration. A node
	// wired to a fleet control plane fans these out to every member, exactly
	// like OpRevoke/OpRestore.
	OpPolicyInstall Op = "policy_install" // admin: install a policy snapshot (hot swap)
	OpPolicyVersion Op = "policy_version" // read-only: current policy version + hash
	OpSetClass      Op = "set_class"      // admin: reclassify a cor's sensitivity
)

// Request is the envelope every client message uses. Unused fields stay
// empty; the node validates per-op.
type Request struct {
	Op Op `json:"op"`
	// Seq correlates the response on a pipelined connection; the server
	// echoes it verbatim. 0 means a legacy one-at-a-time client.
	Seq uint64 `json:"seq,omitempty"`
	// ReqID, when set on a non-idempotent op, makes it at-most-once: the
	// server records the first execution's result in a replay window keyed
	// by this ID and answers duplicates from the record. Retry layers set
	// it so an ambiguous transport failure — request sent, no reply — can
	// be replayed without double-executing. Empty disables dedup (legacy).
	ReqID string `json:"req_id,omitempty"`
	// Cor identity and content.
	CorID       string   `json:"cor_id,omitempty"`
	Plaintext   string   `json:"plaintext,omitempty"`
	Description string   `json:"description,omitempty"`
	Whitelist   []string `json:"whitelist,omitempty"`
	Length      int      `json:"length,omitempty"`
	ParentID    string   `json:"parent_id,omitempty"`
	// Caller identity.
	AppHash  string `json:"app_hash,omitempty"`
	DeviceID string `json:"device_id,omitempty"`
	// Reseal parameters.
	State     json.RawMessage `json:"state,omitempty"`
	Domain    string          `json:"domain,omitempty"`
	TargetIP  string          `json:"target_ip,omitempty"`
	RecordLen int             `json:"record_len,omitempty"`
	// TraceID/SpanID propagate the caller's obs span (hex, zero-padded) so
	// node-side spans join the device's trace. Empty when tracing is off;
	// old servers ignore the extra keys and old clients never send them.
	TraceID string `json:"trace_id,omitempty"`
	SpanID  string `json:"span_id,omitempty"`
	// Shard carries a marshaled node.ShardExport for OpHandoffImport. It
	// travels only between trusted nodes (the export holds cor plaintext);
	// device-facing clients never set it.
	Shard json.RawMessage `json:"shard,omitempty"`
	// App names the installed app an OpDSMWarmup chunk belongs to (the
	// device half of the AppKey; DeviceID is the other half).
	App string `json:"app,omitempty"`
	// Chunk is the encoded dsm.WarmupChunk for OpDSMWarmup. Like a
	// migration, it carries cor IDs only — never plaintext.
	Chunk []byte `json:"chunk,omitempty"`
	// Class is the cor sensitivity class ("public", "sensitive",
	// "server-only") for OpRegister/OpGenerate/OpSetClass. Empty keeps the
	// default (sensitive).
	Class string `json:"class,omitempty"`
	// Policy carries a marshaled policy.Snapshot for OpPolicyInstall.
	Policy json.RawMessage `json:"policy,omitempty"`
}

// CatalogEntry is the device-visible cor metadata.
type CatalogEntry struct {
	ID          string `json:"id"`
	Placeholder string `json:"placeholder"`
	Description string `json:"description"`
	Bit         int    `json:"bit"`
	// Class is the cor's sensitivity class; empty means the default
	// (sensitive) on entries from pre-class servers.
	Class string `json:"class,omitempty"`
}

// AuditEntry mirrors audit.Entry for the wire.
type AuditEntry struct {
	Seq     uint64 `json:"seq"`
	Time    string `json:"time"`
	AppHash string `json:"app_hash"`
	CorID   string `json:"cor_id"`
	Device  string `json:"device"`
	Domain  string `json:"domain"`
	Outcome string `json:"outcome"`
	Detail  string `json:"detail"`
	// DeviceSeq is the per-device sequence minted by the owning shard; it
	// orders one device's entries across node handoffs (0 on old entries
	// and non-device entries).
	DeviceSeq uint64 `json:"device_seq,omitempty"`
	// PolicyVersion/PolicyHash identify the policy snapshot the entry's
	// decision was checked against (0/"" on pre-versioning entries).
	PolicyVersion uint64 `json:"policy_version,omitempty"`
	PolicyHash    string `json:"policy_hash,omitempty"`
}

// Response is the node's reply envelope.
type Response struct {
	OK bool `json:"ok"`
	// Seq echoes the request's correlation ID.
	Seq   uint64 `json:"seq,omitempty"`
	Error string `json:"error,omitempty"`
	// Denial is set (with Error) when policy refused the operation; it
	// carries the machine-readable reason.
	Denial string `json:"denial,omitempty"`
	// DenialCode is the stable numeric form of Denial: policy.Reason.Code()
	// biased by +1 so 0 means "absent" (a pre-code server). Clients prefer
	// it over scanning the text; the text stays for humans.
	DenialCode int `json:"denial_code,omitempty"`
	// PolicyVersion/PolicyHash answer OpPolicyVersion and acknowledge
	// OpPolicyInstall with the stamp the engine now runs.
	PolicyVersion uint64 `json:"policy_version,omitempty"`
	PolicyHash    string `json:"policy_hash,omitempty"`
	// Catalog for OpCatalog.
	Catalog []CatalogEntry `json:"catalog,omitempty"`
	// Record is the resealed wire record for OpReseal.
	Record []byte `json:"record,omitempty"`
	// CorID echoes the affected cor (register/generate/derive).
	CorID string `json:"cor_id,omitempty"`
	// Audit entries for OpAudit.
	Audit []AuditEntry `json:"audit,omitempty"`
	// Owner names the member that owns the device's shard: the answer to
	// OpWhoOwns, and the redirect hint on a not-owner refusal — the client
	// resends the identical request (same ReqID) to that member.
	Owner string `json:"owner,omitempty"`
	// Shard is the marshaled node.ShardExport answering OpHandoffExport.
	Shard json.RawMessage `json:"shard,omitempty"`
}

// maxMessage bounds a single protocol message.
const maxMessage = 16 << 20

// maxPooled bounds the buffers kept in the pools; larger one-off messages
// (a big catalog, a long audit query) are allocated and dropped rather
// than pinning memory.
const maxPooled = 1 << 20

// writeBufPool recycles the marshal buffers WriteMessage frames into so a
// busy node does not allocate per request.
var writeBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// readBufPool recycles the body buffers ReadMessage decodes from.
// json.Unmarshal copies everything it stores (including json.RawMessage
// and []byte fields), so the buffer can be reused immediately after.
var readBufPool = sync.Pool{New: func() any {
	b := make([]byte, 4096)
	return &b
}}

// WriteMessage frames and writes one JSON message. The 4-byte length
// header and the body leave in a single Write, so a bufio.Writer or a raw
// conn both see one contiguous frame.
func WriteMessage(w io.Writer, v any) error {
	buf := writeBufPool.Get().(*bytes.Buffer)
	defer func() {
		if buf.Cap() <= maxPooled {
			buf.Reset()
			writeBufPool.Put(buf)
		}
	}()
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 0}) // header placeholder, patched below
	enc := json.NewEncoder(buf)
	if err := enc.Encode(v); err != nil {
		return fmt.Errorf("nodeproto: marshal: %v", err)
	}
	frame := buf.Bytes()
	body := len(frame) - 4
	if body > maxMessage {
		return fmt.Errorf("nodeproto: message of %d bytes exceeds limit", body)
	}
	binary.BigEndian.PutUint32(frame[:4], uint32(body))
	_, err := w.Write(frame)
	return err
}

// ReadMessage reads one framed JSON message into v.
func ReadMessage(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxMessage {
		return fmt.Errorf("nodeproto: implausible message length %d", n)
	}
	bp := readBufPool.Get().(*[]byte)
	if cap(*bp) < int(n) {
		*bp = make([]byte, n)
	}
	body := (*bp)[:n]
	defer func() {
		if cap(*bp) <= maxPooled {
			readBufPool.Put(bp)
		}
	}()
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	// Protocol envelopes take the schema-specialized fast path (codec.go);
	// anything it does not fully understand — and any other type — goes
	// through the general single-scan decoder. The target is zeroed before
	// falling back so a partially-filled fast-path attempt cannot leak.
	switch t := v.(type) {
	case *Request:
		if decodeRequest(body, t) {
			return nil
		}
		*t = Request{}
	case *Response:
		if decodeResponse(body, t) {
			return nil
		}
		*t = Response{}
	}
	if err := fastjson.Unmarshal(body, v); err != nil {
		return fmt.Errorf("nodeproto: unmarshal: %v", err)
	}
	return nil
}
