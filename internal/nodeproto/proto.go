// Package nodeproto implements TinMan's trusted-node service over a real
// network: a JSON request/response protocol carrying the operations a
// device needs from the node — cor registration and catalog, app binding,
// policy administration, audit queries, and the heart of the SSL/TCP
// offload path: resealing a marked record with cor plaintext under an
// injected session state (§3.2–§3.4).
//
// The in-process simulation (internal/core) exercises the full system
// including device-side tainting; this package is the deployable
// counterpart for the trusted-node half, served by cmd/tinman-node and
// consumed by cmd/tinman-device.
package nodeproto

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// Op names a protocol operation.
type Op string

// Protocol operations.
const (
	OpRegister Op = "register" // admin: initialize a cor (safe environment)
	OpGenerate Op = "generate" // admin: mint a fresh random cor
	OpCatalog  Op = "catalog"  // device view: descriptions + placeholders
	OpBind     Op = "bind"     // admin: bind an app hash to a cor
	OpRevoke   Op = "revoke"   // revoke a device (stolen phone)
	OpRestore  Op = "restore"  // restore a device
	OpReseal   Op = "reseal"   // payload replacement: reseal a record with cor
	OpDerive   Op = "derive"   // register a derived cor (hash of a password)
	OpAudit    Op = "audit"    // query the audit log
	OpPing     Op = "ping"     // liveness
)

// Request is the envelope every client message uses. Unused fields stay
// empty; the node validates per-op.
type Request struct {
	Op Op `json:"op"`
	// Cor identity and content.
	CorID       string   `json:"cor_id,omitempty"`
	Plaintext   string   `json:"plaintext,omitempty"`
	Description string   `json:"description,omitempty"`
	Whitelist   []string `json:"whitelist,omitempty"`
	Length      int      `json:"length,omitempty"`
	ParentID    string   `json:"parent_id,omitempty"`
	// Caller identity.
	AppHash  string `json:"app_hash,omitempty"`
	DeviceID string `json:"device_id,omitempty"`
	// Reseal parameters.
	State     json.RawMessage `json:"state,omitempty"`
	Domain    string          `json:"domain,omitempty"`
	TargetIP  string          `json:"target_ip,omitempty"`
	RecordLen int             `json:"record_len,omitempty"`
}

// CatalogEntry is the device-visible cor metadata.
type CatalogEntry struct {
	ID          string `json:"id"`
	Placeholder string `json:"placeholder"`
	Description string `json:"description"`
	Bit         int    `json:"bit"`
}

// AuditEntry mirrors audit.Entry for the wire.
type AuditEntry struct {
	Seq     uint64 `json:"seq"`
	Time    string `json:"time"`
	AppHash string `json:"app_hash"`
	CorID   string `json:"cor_id"`
	Device  string `json:"device"`
	Domain  string `json:"domain"`
	Outcome string `json:"outcome"`
	Detail  string `json:"detail"`
}

// Response is the node's reply envelope.
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Denial is set (with Error) when policy refused the operation; it
	// carries the machine-readable reason.
	Denial string `json:"denial,omitempty"`
	// Catalog for OpCatalog.
	Catalog []CatalogEntry `json:"catalog,omitempty"`
	// Record is the resealed wire record for OpReseal.
	Record []byte `json:"record,omitempty"`
	// CorID echoes the affected cor (register/generate/derive).
	CorID string `json:"cor_id,omitempty"`
	// Audit entries for OpAudit.
	Audit []AuditEntry `json:"audit,omitempty"`
}

// maxMessage bounds a single protocol message.
const maxMessage = 16 << 20

// WriteMessage frames and writes one JSON message.
func WriteMessage(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("nodeproto: marshal: %v", err)
	}
	if len(body) > maxMessage {
		return fmt.Errorf("nodeproto: message of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// ReadMessage reads one framed JSON message into v.
func ReadMessage(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxMessage {
		return fmt.Errorf("nodeproto: implausible message length %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("nodeproto: unmarshal: %v", err)
	}
	return nil
}
