package nodeproto

import (
	"context"
	"net"
	"testing"
	"time"

	"tinman/internal/audit"
)

// TestFleetWire drives the full wire-level fleet path: a 3-member fleet
// behind real TCP servers, a fleet client following not-owner redirects,
// at-most-once reseals across a drain, and a merged per-device audit
// stream ordered by the sequence that travels with the shard.
func TestFleetWire(t *testing.T) {
	ctx := context.Background()
	f, members, state, shutdown, err := StartFleetThroughput(3)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	fc := DialFleet(members, time.Second, ReconnectConfig{RequestTimeout: 5 * time.Second, Heartbeat: -1})
	defer fc.Close()

	// Devices route to their fleet owner over the wire, whichever member
	// the client contacted first.
	devs := []string{"wire-dev-a", "wire-dev-b", "wire-dev-c", "wire-dev-d", "wire-dev-e"}
	for _, dev := range devs {
		rec, member, rerr := fc.Reseal(ctx, benchCor, state, "bench-app", dev, "bench.example", "", 0)
		if rerr != nil {
			t.Fatalf("reseal %s: %v", dev, rerr)
		}
		if len(rec) == 0 {
			t.Fatalf("reseal %s: empty record", dev)
		}
		owner, oerr := f.Owner(dev)
		if oerr != nil {
			t.Fatal(oerr)
		}
		if member != owner {
			t.Fatalf("device %s served by %s, fleet owner is %s", dev, member, owner)
		}
	}

	// A request sent straight to a non-owner member is refused with the
	// owner in the redirect hint, not silently served.
	dev := devs[0]
	owner, _ := f.Owner(dev)
	nonOwner := ""
	for _, id := range fc.Members() {
		if id != owner {
			nonOwner = id
			break
		}
	}
	req := &Request{Op: OpReseal, CorID: benchCor, State: state,
		AppHash: "bench-app", DeviceID: dev, Domain: "bench.example",
		ReqID: "wire-req-1"}
	rc, _ := fc.Member(nonOwner)
	if _, err := rc.Do(ctx, req); err == nil {
		t.Fatal("non-owner served a device-keyed request")
	} else if got, ok := RedirectOwner(err); !ok || got != owner {
		t.Fatalf("expected redirect to %s, got %v", owner, err)
	}

	// The identical request (same ReqID) lands on the owner; a replay of it
	// dedups in the shard's window — the device's audit history must not
	// grow on the second send.
	rcOwner, _ := fc.Member(owner)
	if _, err := rcOwner.Do(ctx, req); err != nil {
		t.Fatalf("reseal on owner: %v", err)
	}
	svcOwner, _ := f.MemberService(owner)
	before := len(svcOwner.Audit.Find(audit.Query{DeviceID: dev}))
	if _, err := rcOwner.Do(ctx, req); err != nil {
		t.Fatalf("replayed reseal: %v", err)
	}
	if after := len(svcOwner.Audit.Find(audit.Query{DeviceID: dev})); after != before {
		t.Fatalf("replayed request re-executed: %d audit entries, was %d", after, before)
	}

	// Drain the owner: the shard (and its replay window) moves, the next
	// send of the same ReqID redirects to the new owner and still dedups.
	if _, err := f.Drain(ctx, owner); err != nil {
		t.Fatal(err)
	}
	resp, served, err := fc.doDevice(ctx, dev, req)
	if err != nil || !resp.OK {
		t.Fatalf("reseal after drain: %v", err)
	}
	if served == owner {
		t.Fatalf("drained member %s still serving", owner)
	}
	svcNew, _ := f.MemberService(served)
	total := 0
	for _, id := range fc.Members() {
		svc, _ := f.MemberService(id)
		total += len(svc.Audit.Find(audit.Query{DeviceID: dev}))
	}
	if total != before {
		t.Fatalf("replayed request re-executed across drain: %d audit entries fleet-wide, was %d", total, before)
	}
	if len(svcNew.Devices()) == 0 {
		t.Fatalf("new owner %s hosts no shards after drain", served)
	}

	// Fresh traffic for the device serves on the new owner and the merged
	// wire audit stream is gap-free in per-device order.
	if _, _, err := fc.Reseal(ctx, benchCor, state, "bench-app", dev, "bench.example", "", 0); err != nil {
		t.Fatalf("fresh reseal after drain: %v", err)
	}
	entries, err := fc.AuditLog(ctx, "", dev)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 2 {
		t.Fatalf("expected merged audit history, got %d entries", len(entries))
	}
	for i, e := range entries {
		if e.DeviceSeq != uint64(i+1) {
			t.Fatalf("merged wire audit stream has a gap at %d: %+v", i, entries)
		}
	}

	// who_owns over the wire answers the fleet's routing, from any member.
	got, err := fc.WhoOwns(ctx, dev)
	if err != nil {
		t.Fatal(err)
	}
	if want, _ := f.Owner(dev); got != want {
		t.Fatalf("WhoOwns = %s, fleet says %s", got, want)
	}
}

// TestWireHandoffExportImport moves a device shard between two standalone
// servers purely over the wire: export on one node, import on the other,
// with the per-device audit sequence continuing on the importer.
func TestWireHandoffExportImport(t *testing.T) {
	ctx := context.Background()
	newNode := func() (*Server, *Client) {
		t.Helper()
		srv := NewServer()
		if _, err := srv.Cors.Register(benchCor, "hunter2-benchmark!", "cor", "bench.example"); err != nil {
			t.Fatal(err)
		}
		srv.Policy.SetWhitelist(benchCor, []string{"bench.example"})
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(l)
		t.Cleanup(func() { srv.Close() })
		c, err := Dial(l.Addr().String(), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return srv, c
	}
	srvA, cA := newNode()
	srvB, cB := newNode()

	state, err := PrepareThroughputServer(srvA)
	if err != nil {
		t.Fatal(err)
	}

	const dev = "handoff-dev"
	for i := 0; i < 2; i++ {
		if _, err := cA.ResealRawContext(ctx, benchCor, state, "bench-app", dev, "bench.example", "", 0); err != nil {
			t.Fatalf("reseal %d on A: %v", i, err)
		}
	}
	onA := srvA.Svc.Audit.Find(audit.Query{DeviceID: dev})
	if len(onA) == 0 {
		t.Fatal("no audit history on A")
	}
	maxSeq := onA[len(onA)-1].DeviceSeq

	raw, err := cA.HandoffExport(ctx, dev)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 {
		t.Fatal("empty shard export")
	}
	if _, ok := srvA.Svc.Shard(dev); ok {
		t.Fatal("shard still attached on A after export")
	}
	if err := cB.HandoffImport(ctx, raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := srvB.Svc.Shard(dev); !ok {
		t.Fatal("shard not attached on B after import")
	}

	// The sequence continues where the exporter stopped.
	if _, err := cB.ResealRawContext(ctx, benchCor, state, "bench-app", dev, "bench.example", "", 0); err != nil {
		t.Fatalf("reseal on B after import: %v", err)
	}
	onB := srvB.Svc.Audit.Find(audit.Query{DeviceID: dev})
	if len(onB) == 0 {
		t.Fatal("no audit history on B")
	}
	if got := onB[len(onB)-1].DeviceSeq; got != maxSeq+1 {
		t.Fatalf("DeviceSeq after import = %d, want %d", got, maxSeq+1)
	}

	// A double import is refused rather than forking the shard.
	if err := cB.HandoffImport(ctx, raw); err == nil {
		t.Fatal("importing over an existing shard succeeded")
	}
}
