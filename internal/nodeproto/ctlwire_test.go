package nodeproto

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"tinman/internal/node"
	"tinman/internal/policy"
)

// dialMembers opens one client per fleet member, keyed by member ID.
func dialMembers(t *testing.T, members map[string]string) map[string]*Client {
	t.Helper()
	out := make(map[string]*Client, len(members))
	for id, addr := range members {
		c, err := Dial(addr, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		out[id] = c
	}
	return out
}

// TestWireRevocationPropagates is the wire half of the revocation
// guarantee: OpRevoke sent to ONE member's server fans out through the
// control plane, so the stolen device's reseals are denied by whichever
// member owns its shard — and the denial carries the stable numeric code.
func TestWireRevocationPropagates(t *testing.T) {
	ctx := context.Background()
	f, members, state, shutdown, err := StartFleetThroughput(3)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	clients := dialMembers(t, members)

	const dev = "ctl-dev-stolen"
	owner, err := f.Owner(dev)
	if err != nil {
		t.Fatal(err)
	}
	// Pick a member that is NOT the device's owner to push the revocation
	// at — propagation, not local effect, is what is under test.
	pushAt := ""
	for id := range clients {
		if id != owner {
			pushAt = id
			break
		}
	}
	if err := clients[pushAt].Revoke(dev); err != nil {
		t.Fatal(err)
	}

	// Every member's engine denies the device.
	for _, id := range f.Members() {
		svc, _ := f.MemberService(id)
		if err := svc.Policy.Check(policy.Access{CorID: benchCor, DeviceID: dev}); err == nil {
			t.Fatalf("member %s does not deny the revoked device", id)
		}
	}

	// A reseal at the owner is denied over the wire with the numeric code.
	_, err = clients[owner].ResealRawContext(ctx, benchCor, state, "bench-app", dev, "bench.example", "", 0)
	d, ok := IsDenied(err)
	if !ok {
		t.Fatalf("reseal for revoked device = %v, want denial", err)
	}
	if !errors.Is(err, node.ErrRevoked) {
		t.Fatalf("denial does not map to node.ErrRevoked: %v", err)
	}
	if want := policy.ReasonRevoked.Code(); d.Code != want {
		t.Fatalf("wire denial code = %d, want %d", d.Code, want)
	}

	// Restore pushed at yet another member re-enables the device everywhere.
	if err := clients[pushAt].Restore(dev); err != nil {
		t.Fatal(err)
	}
	if _, err := clients[owner].ResealRawContext(ctx, benchCor, state, "bench-app", dev, "bench.example", "", 0); err != nil {
		t.Fatalf("reseal after restore: %v", err)
	}
}

// TestWirePolicyInstallPropagates pushes a snapshot through one member's
// wire server and checks every member answers OpPolicyVersion with the
// identical stamp.
func TestWirePolicyInstallPropagates(t *testing.T) {
	ctx := context.Background()
	_, members, _, shutdown, err := StartFleetThroughput(3)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	clients := dialMembers(t, members)

	snap := &policy.Snapshot{
		Whitelist: map[string][]string{benchCor: {"bench.example"}},
		Revoked:   []string{"ctl-dev-x"},
	}
	var pushClient *Client
	for _, c := range clients {
		pushClient = c
		break
	}
	ver, hash, err := pushClient.InstallPolicy(ctx, snap)
	if err != nil {
		t.Fatal(err)
	}
	if ver == 0 || hash == "" {
		t.Fatalf("install returned empty stamp: v%d %q", ver, hash)
	}
	for id, c := range clients {
		gotVer, gotHash, err := c.PolicyVersion(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if gotVer != ver || gotHash != hash {
			t.Fatalf("member %s at v%d %s, push assigned v%d %s", id, gotVer, gotHash, ver, hash)
		}
	}
}

// TestWireClassRoundTrip registers a cor with a class over the wire and
// checks the catalog carries it, then reclassifies via OpSetClass.
func TestWireClassRoundTrip(t *testing.T) {
	ctx := context.Background()
	srv := NewServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()
	c, err := Dial(l.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.do(ctx, &Request{Op: OpRegister, CorID: "pw", Plaintext: "hunter2!",
		Description: "pw", Class: "server-only"}); err != nil {
		t.Fatal(err)
	}
	classOf := func(id string) string {
		t.Helper()
		entries, err := c.Catalog()
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.ID == id {
				return e.Class
			}
		}
		t.Fatalf("cor %s not in catalog", id)
		return ""
	}
	if got := classOf("pw"); got != "server-only" {
		t.Fatalf("registered class = %q, want server-only", got)
	}
	if err := c.SetClass(ctx, "pw", "sensitive"); err != nil {
		t.Fatal(err)
	}
	if got := classOf("pw"); got != "sensitive" {
		t.Fatalf("reclassified to %q, want sensitive", got)
	}
	if err := c.SetClass(ctx, "pw", "bogus"); err == nil {
		t.Fatal("unknown class accepted")
	}
}
