package nodeproto

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"tinman/internal/fault"
	"tinman/internal/node"
)

// startServer serves svc (nil means a fresh service) on a loopback
// listener and returns it with its address. A positive readTimeout makes
// the server drop idle connections quickly, which restart tests rely on so
// Close does not wait out the default five-minute idle window.
func startServer(t *testing.T, svc *node.Service, readTimeout time.Duration) (*Server, string) {
	t.Helper()
	var s *Server
	if svc != nil {
		s = NewServerWith(svc)
	} else {
		s = NewServer()
	}
	if readTimeout > 0 {
		s.ReadTimeout = readTimeout
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(func() { s.Close() })
	return s, l.Addr().String()
}

// waitFor polls cond for up to 5s; failing that, the test dies with msg.
func waitFor(t *testing.T, msg string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRequestIDDedup pins the at-most-once contract at the wire level: the
// same ReqID replays the recorded response instead of re-executing, while
// a fresh ReqID executes for real.
func TestRequestIDDedup(t *testing.T) {
	c, _ := testServer(t)
	req := &Request{Op: OpRegister, ReqID: "dup-1", CorID: "cc", Plaintext: "4111", Description: "card"}
	if _, err := c.do(t.Context(), req); err != nil {
		t.Fatal(err)
	}
	// The replay must return the original's success, not a duplicate-cor
	// error: the server recognizes the ID and does not re-execute.
	if _, err := c.do(t.Context(), req); err != nil {
		t.Fatalf("replayed request re-executed: %v", err)
	}
	cat, err := c.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	if len(cat) != 1 {
		t.Fatalf("catalog has %d cors after replay, want 1", len(cat))
	}
	// Same operation under a fresh ID is a genuine duplicate registration.
	fresh := &Request{Op: OpRegister, ReqID: "dup-2", CorID: "cc", Plaintext: "4111", Description: "card"}
	if _, err := c.do(t.Context(), fresh); err == nil {
		t.Fatal("fresh ReqID should have re-executed and failed as a duplicate cor")
	}
}

// TestReqIDsUniqueAcrossClientInstances pins that two client instances
// with the same stable ClientID (a device identity survives app restarts)
// never mint colliding ReqIDs: the server-side replay window outlives
// client processes — it travels with the device's shard — and a collision
// would serve the new run the old run's recorded responses.
func TestReqIDsUniqueAcrossClientInstances(t *testing.T) {
	_, addr := startServer(t, nil, 0)
	mint := func() string {
		rc := DialReconnect(addr, time.Second, ReconnectConfig{
			ClientID: "galaxy-nexus-1", Heartbeat: -1,
		})
		defer rc.Close()
		req := &Request{Op: OpRegister, CorID: "pw-" + t.Name(), Plaintext: "secret12", Description: "d"}
		rc.do(t.Context(), req) // second instance fails (duplicate cor); the minted ID is the point
		return req.ReqID
	}
	first, second := mint(), mint()
	if first == "" || second == "" {
		t.Fatalf("no ReqID minted: %q, %q", first, second)
	}
	if first == second {
		t.Fatalf("two client instances minted the same ReqID %q", first)
	}
}

// TestReconnectAcrossServerRestart kills the node's TCP server mid-life
// and brings a new one up (same service state, new port): the reconnect
// client must carry a request across the gap without manual intervention.
func TestReconnectAcrossServerRestart(t *testing.T) {
	svc := node.New(node.Options{})
	s1, addr1 := startServer(t, svc, 100*time.Millisecond)

	var addr atomic.Value
	addr.Store(addr1)
	rc := NewReconnectClient(ReconnectConfig{
		Dial:           func() (*Client, error) { return Dial(addr.Load().(string), time.Second) },
		RequestTimeout: 2 * time.Second,
		Backoff:        fault.Backoff{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond},
		Heartbeat:      -1, // no prober: the test drives every request
	})
	defer rc.Close()

	if err := rc.Register("bank-pw", "hunter2!", "bank password"); err != nil {
		t.Fatal(err)
	}
	if rc.Reconnects() != 1 {
		t.Fatalf("Reconnects = %d after first use, want 1", rc.Reconnects())
	}

	// Restart: the old server (and its connections) go away entirely.
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	_, addr2 := startServer(t, svc, 0)
	addr.Store(addr2)

	cat, err := rc.Catalog()
	if err != nil {
		t.Fatalf("catalog across restart: %v", err)
	}
	if len(cat) != 1 || cat[0].ID != "bank-pw" {
		t.Fatalf("catalog after restart = %+v", cat)
	}
	if rc.Reconnects() < 2 {
		t.Fatalf("Reconnects = %d after restart, want >= 2", rc.Reconnects())
	}
	if rc.BreakerState() != fault.BreakerClosed {
		t.Fatalf("breaker %s after successful recovery, want closed", rc.BreakerState())
	}
	// The vault survived (same service): a re-register is a duplicate.
	if err := rc.Register("bank-pw", "x", ""); err == nil {
		t.Fatal("duplicate register accepted after restart")
	}
}

// TestBreakerFastFailAndRecovery drives the breaker through its lifecycle:
// consecutive dial failures open it, open-state calls fail fast without
// touching the network, and after the cooldown a half-open probe closes it.
func TestBreakerFastFailAndRecovery(t *testing.T) {
	_, addr := startServer(t, nil, 0)
	var (
		down  atomic.Bool
		dials atomic.Int64
		now   atomic.Int64 // virtual breaker clock, ns
	)
	down.Store(true)
	rc := NewReconnectClient(ReconnectConfig{
		Dial: func() (*Client, error) {
			dials.Add(1)
			if down.Load() {
				return nil, errors.New("synthetic: node unreachable")
			}
			return Dial(addr, time.Second)
		},
		RequestTimeout: time.Second,
		MaxAttempts:    1,
		Breaker: fault.BreakerConfig{
			Threshold: 2,
			Cooldown:  time.Second,
			Now:       func() time.Duration { return time.Duration(now.Load()) },
		},
		Heartbeat: -1,
	})
	defer rc.Close()

	for i := 0; i < 2; i++ {
		if err := rc.Ping(); !errors.Is(err, node.ErrNodeUnavailable) {
			t.Fatalf("ping %d = %v, want ErrNodeUnavailable", i, err)
		}
	}
	if rc.BreakerState() != fault.BreakerOpen {
		t.Fatalf("breaker %s after %d failures, want open", rc.BreakerState(), 2)
	}

	// Open breaker: calls are refused locally, no dial attempts (no retry
	// storm against a dead node).
	before := dials.Load()
	for i := 0; i < 5; i++ {
		if err := rc.Ping(); !errors.Is(err, node.ErrNodeUnavailable) {
			t.Fatalf("fast-fail ping = %v, want ErrNodeUnavailable", err)
		}
	}
	if d := dials.Load() - before; d != 0 {
		t.Fatalf("open breaker still dialed %d times", d)
	}

	// Node recovers; after the cooldown one half-open probe closes the
	// breaker and traffic flows again.
	down.Store(false)
	now.Store(int64(2 * time.Second))
	if err := rc.Ping(); err != nil {
		t.Fatalf("ping after recovery: %v", err)
	}
	if rc.BreakerState() != fault.BreakerClosed {
		t.Fatalf("breaker %s after successful probe, want closed", rc.BreakerState())
	}
}

// TestPoolSkipsDeadConnection is the regression test for the round-robin
// pool handing out dead connections: with one pooled connection killed,
// every subsequent checkout must still reach the node, and the dead slot
// must be replaced in the background.
func TestPoolSkipsDeadConnection(t *testing.T) {
	_, addr := startServer(t, nil, 0)
	p, err := DialPool(addr, 3, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })

	victim := p.slots[1]
	victim.conn.Close()
	waitFor(t, "killed connection never observed dead", func() bool { return !victim.Alive() })
	for i := 0; i < 30; i++ {
		if err := p.Client().Ping(); err != nil {
			t.Fatalf("checkout %d returned a dead connection: %v", i, err)
		}
	}
	waitFor(t, "dead slot never replaced by background redial", func() bool {
		p.mu.Lock()
		defer p.mu.Unlock()
		return p.slots[1] != victim && p.slots[1].Alive()
	})
}

// TestPoolAllDeadRecovery kills every pooled connection: the next checkout
// must dial synchronously and succeed while the node is up, and once the
// node is truly gone, checkouts return a (non-nil) dead client whose calls
// fail fast with a classified transport error.
func TestPoolAllDeadRecovery(t *testing.T) {
	s, addr := startServer(t, nil, 200*time.Millisecond)
	p, err := DialPool(addr, 2, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })

	kill := func() {
		p.mu.Lock()
		slots := append([]*Client(nil), p.slots...)
		p.mu.Unlock()
		for _, c := range slots {
			c.conn.Close()
		}
		waitFor(t, "killed connections never observed dead", func() bool {
			for _, c := range slots {
				if c.Alive() {
					return false
				}
			}
			return true
		})
	}

	kill()
	c := p.Client()
	if c == nil {
		t.Fatal("Client returned nil")
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("synchronous redial after total connection loss failed: %v", err)
	}

	// Node goes away for real: no live client exists, but checkouts still
	// return promptly and fail with a typed transport error, not a hang.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	kill()
	c = p.Client()
	if c == nil {
		t.Fatal("Client returned nil with node down")
	}
	err = c.Ping()
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("ping against dead pool = %v, want a TransportError", err)
	}
}
