package nodeproto

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"tinman/internal/node"
)

// TestContextPreCancelled: a dead context never reaches the wire, and the
// connection stays usable for the next caller.
func TestContextPreCancelled(t *testing.T) {
	c, _ := testServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.PingContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("PingContext = %v, want context.Canceled", err)
	}
	if _, err := c.CatalogContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("CatalogContext = %v, want context.Canceled", err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("connection unusable after cancelled call: %v", err)
	}
}

// slowServer accepts one connection and answers requests in order, stalling
// on the first one so a client deadline can expire mid-flight.
func slowServer(t *testing.T, firstDelay time.Duration) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		first := true
		for {
			var req Request
			if err := ReadMessage(conn, &req); err != nil {
				return
			}
			if first {
				first = false
				time.Sleep(firstDelay)
			}
			if err := WriteMessage(conn, &Response{OK: true, Seq: req.Seq}); err != nil {
				return
			}
		}
	}()
	return l.Addr().String()
}

// TestContextDeadlineMidFlight: a deadline that expires while the request is
// on the wire returns promptly, the late response is discarded, and the
// connection keeps working.
func TestContextDeadlineMidFlight(t *testing.T) {
	addr := slowServer(t, 300*time.Millisecond)
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = c.PingContext(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("PingContext = %v, want context.DeadlineExceeded", err)
	}
	if waited := time.Since(start); waited > 200*time.Millisecond {
		t.Fatalf("cancelled call blocked %v; should return at the deadline", waited)
	}
	// The stalled response for the first request is still in flight; the
	// next request must get its own reply, not the stale one.
	if err := c.Ping(); err != nil {
		t.Fatalf("connection unusable after deadline: %v", err)
	}
}

// TestWireDenialSentinels: a policy denial that crossed the wire still
// matches the node package's typed sentinels on the client side.
func TestWireDenialSentinels(t *testing.T) {
	c, _ := testServer(t)
	if err := c.Register("pw", "secret99", "", "good.com"); err != nil {
		t.Fatal(err)
	}
	if err := c.Revoke("dev1"); err != nil {
		t.Fatal(err)
	}
	device, _ := establishSession(t)
	_, err := c.Reseal("pw", device.Export(), "app", "dev1", "good.com", "", 0)
	if err == nil {
		t.Fatal("revoked device reseal accepted")
	}
	if !errors.Is(err, node.ErrDenied) {
		t.Fatalf("err = %v, does not match node.ErrDenied", err)
	}
	if !errors.Is(err, node.ErrRevoked) {
		t.Fatalf("err = %v, does not match node.ErrRevoked", err)
	}
	var de *DenialError
	if !errors.As(err, &de) || de.Reason != "device access revoked" {
		t.Fatalf("denial = %+v", err)
	}
}
