package nodeproto

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tinman/internal/audit"
	"tinman/internal/cor"
	"tinman/internal/malware"
	"tinman/internal/node"
	"tinman/internal/obs"
	"tinman/internal/policy"
)

// Default per-connection limits; override the Server fields before Serve.
const (
	DefaultReadTimeout  = 5 * time.Minute
	DefaultWriteTimeout = time.Minute
	DefaultMaxInflight  = 64
)

// Server exposes the trusted-node service behind a real TCP listener. The
// domain logic — vault, policy, reseal, audit — lives in node.Service;
// this type only frames, dispatches and correlates. It is safe for
// concurrent connections, and each connection is pipelined: requests are
// handled concurrently (bounded by MaxInflight) and answered as they
// finish, correlated by Request.Seq.
type Server struct {
	// Svc is the transport-agnostic service every request dispatches into.
	Svc *node.Service

	// Cors, Policy, Audit and Malware alias the service's components so
	// administration (cmd/tinman-node, tests) can reach them directly.
	Cors    *cor.Store
	Policy  *policy.Engine
	Audit   *audit.Log
	Malware *malware.DB

	// Replays is the at-most-once window for requests carrying a ReqID: a
	// replayed ID returns the recorded response instead of re-executing,
	// so a client may safely resend after an ambiguous transport failure.
	// NewServerWith installs a default; nil disables dedup.
	Replays *node.ReplayCache

	// Logf receives operational messages; nil silences them.
	Logf func(format string, args ...any)

	// ReadTimeout bounds the idle wait for the next request on a
	// connection; WriteTimeout bounds each response write. Zero values use
	// the defaults. Set before Serve.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	// MaxInflight caps concurrently-handled requests per connection
	// (0 means DefaultMaxInflight).
	MaxInflight int

	// selfID and placement are installed by SetPlacement when this server
	// is one member of a fleet: device-keyed operations for shards owned by
	// another member are refused with a redirect hint instead of silently
	// forking the device's state onto two nodes. Nil placement (standalone
	// node) disables the gate.
	selfID    string
	placement Placement

	// ctl is installed by SetControlPlane when this server fronts a fleet:
	// control-plane mutations (revoke/restore, policy installs, class
	// changes) fan out to every member instead of mutating only the local
	// service. Nil (standalone node) applies them locally.
	ctl ControlPlane

	mu       sync.Mutex
	listener net.Listener
	wg       sync.WaitGroup
	closed   chan struct{}

	catalog atomic.Pointer[catalogCache]

	// obs/metrics are installed by SetObs; nil means disabled (every obs
	// call below is nil-safe).
	obs *obs.Tracer
	sm  serverMetrics
}

// serverMetrics caches the server's collectors so the per-request cost is
// atomic updates, not registry lookups.
type serverMetrics struct {
	inflight *obs.Gauge
	replays  *obs.Counter
	errors   *obs.Counter
	requests map[Op]*obs.Counter
	latency  map[Op]*obs.Histogram
}

// SetObs installs a tracer and metrics registry; call before Serve. Each
// request becomes a node_op span joined to the client's trace when the
// request carries TraceID/SpanID, and updates in-flight, per-op latency,
// error and replay-hit collectors.
func (s *Server) SetObs(tr *obs.Tracer, m *obs.Metrics) {
	s.obs = tr
	if m == nil {
		s.sm = serverMetrics{}
		return
	}
	sm := serverMetrics{
		inflight: m.Gauge("tinman_node_inflight_requests"),
		replays:  m.Counter("tinman_node_replay_hits_total"),
		errors:   m.Counter("tinman_node_request_errors_total"),
		requests: make(map[Op]*obs.Counter),
		latency:  make(map[Op]*obs.Histogram),
	}
	for _, op := range []Op{OpRegister, OpGenerate, OpCatalog, OpBind, OpRevoke,
		OpRestore, OpReseal, OpDerive, OpAudit, OpPing,
		OpWhoOwns, OpHandoffExport, OpHandoffImport, OpDSMWarmup,
		OpPolicyInstall, OpPolicyVersion, OpSetClass} {
		sm.requests[op] = m.Counter(fmt.Sprintf(`tinman_node_requests_total{op=%q}`, op))
		sm.latency[op] = m.Histogram(fmt.Sprintf(`tinman_node_request_seconds{op=%q}`, op))
	}
	s.sm = sm
}

// Placement answers which fleet member owns a device's shard right now.
// fleet.Fleet satisfies it; a wire deployment shares one Placement across
// its member servers.
type Placement interface {
	Owner(deviceID string) (string, error)
}

// placementAccepter is the richer gate fleet.Fleet also implements: Accept
// resolves ownership with assignment semantics (failover bookkeeping, audit
// watermark floor on the new owner's shard), which a read-only Owner lookup
// cannot do. The server prefers it when available.
type placementAccepter interface {
	Accept(deviceID, selfID string) (accept bool, owner string, err error)
}

// SetPlacement registers this server as fleet member selfID routing through
// p. Call before Serve. Device-keyed requests (reseals) for devices owned
// elsewhere are refused with Response.Owner naming the right member, and
// OpWhoOwns answers from p.
func (s *Server) SetPlacement(selfID string, p Placement) {
	s.selfID = selfID
	s.placement = p
}

// ControlPlane propagates control-plane mutations fleet-wide: a revocation
// or policy install arriving at any member must take effect on all of them.
// fleet.Fleet satisfies it.
type ControlPlane interface {
	InstallPolicy(ctx context.Context, snap *policy.Snapshot) (policy.Stamp, error)
	Revoke(deviceID string) error
	Restore(deviceID string) error
	SetCorClass(ctx context.Context, corID string, class cor.Class) error
}

// SetControlPlane routes OpRevoke/OpRestore/OpPolicyInstall/OpSetClass
// through cp instead of the local service. Call before Serve.
func (s *Server) SetControlPlane(cp ControlPlane) {
	s.ctl = cp
}

// NewServer assembles a trusted-node server over a fresh service (with the
// default seeded malware DB).
func NewServer() *Server {
	return NewServerWith(node.New(node.Options{}))
}

// NewServerWith serves an existing service instance — this is how several
// transports share one trusted-node brain.
func NewServerWith(svc *node.Service) *Server {
	return &Server{
		Svc:     svc,
		Cors:    svc.Cors,
		Policy:  svc.Policy,
		Audit:   svc.Audit,
		Malware: svc.Malware,
		Replays: node.NewReplayCache(node.ReplayCacheConfig{}),
		closed:  make(chan struct{}),
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// Serve accepts connections on l until Close.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return nil
			default:
				return err
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// Addr returns the bound listener address, or "" before Serve.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// ListenAndServe listens on addr and serves.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.logf("tinman-node: listening on %s", l.Addr())
	return s.Serve(l)
}

// Close stops the listener and waits for in-flight connections.
func (s *Server) Close() error {
	s.mu.Lock()
	l := s.listener
	select {
	case <-s.closed:
	default:
		close(s.closed)
	}
	s.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	s.wg.Wait()
	return err
}

// handleConn pipelines one connection: a read loop pulls framed requests
// and hands each to a bounded worker goroutine; workers write their
// response (tagged with the request's Seq) under a shared write lock as
// soon as they finish, possibly out of order. Legacy clients that keep one
// request outstanding observe the old strictly-serial behavior.
//
// Every handler runs under a connection-scoped context, cancelled when the
// connection goes away or the server closes, so service calls observe
// cancellation the same way an in-process caller's context does.
func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	readTimeout := s.ReadTimeout
	if readTimeout == 0 {
		readTimeout = DefaultReadTimeout
	}
	writeTimeout := s.WriteTimeout
	if writeTimeout == 0 {
		writeTimeout = DefaultWriteTimeout
	}
	inflight := s.MaxInflight
	if inflight <= 0 {
		inflight = DefaultMaxInflight
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		select {
		case <-s.closed:
			cancel()
			// Unblock the read loop: without this an idle connection
			// would hold Close for a full read-timeout window.
			conn.SetReadDeadline(time.Now())
		case <-ctx.Done():
		}
	}()

	br := bufio.NewReaderSize(conn, connBufSize)
	bw := bufio.NewWriterSize(conn, connBufSize)
	var (
		workers  sync.WaitGroup
		reqq     = make(chan *Request, inflight)
		respq    = make(chan *Response, inflight)
		respDone = make(chan struct{})
	)

	// A fixed pool of handler workers (bounded by MaxInflight) processes
	// requests concurrently and possibly out of order; Seq correlation
	// lets the client reassemble. A pool, not goroutine-per-request,
	// keeps warm stacks across requests on a busy connection.
	nworkers := inflight
	if nworkers > 16 {
		nworkers = 16
	}
	for i := 0; i < nworkers; i++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for req := range reqq {
				resp := s.dispatch(ctx, req)
				resp.Seq = req.Seq
				respq <- resp
			}
		}()
	}

	// The response writer drains respq and flushes only when the queue
	// runs dry — with a Gosched between passes so handler goroutines that
	// are about to respond get to enqueue first, letting a whole batch of
	// pipelined responses leave in one syscall. On write failure it closes
	// the conn (unblocking the read loop) and keeps draining so handlers
	// never block.
	go func() {
		defer close(respDone)
		var dead bool
		write := func(resp *Response) {
			if dead {
				return
			}
			err := conn.SetWriteDeadline(time.Now().Add(writeTimeout))
			if err == nil {
				err = WriteMessage(bw, resp)
			}
			if err != nil {
				s.logf("tinman-node: %s: write: %v", conn.RemoteAddr(), err)
				dead = true
				conn.Close()
			}
		}
		for resp := range respq {
			write(resp)
			for pass := 0; pass < 2; pass++ {
			drain:
				for {
					select {
					case more, ok := <-respq:
						if !ok {
							break drain
						}
						write(more)
					default:
						break drain
					}
				}
				if pass == 0 {
					runtime.Gosched()
				}
			}
			if !dead {
				if err := bw.Flush(); err != nil {
					s.logf("tinman-node: %s: flush: %v", conn.RemoteAddr(), err)
					dead = true
					conn.Close()
				}
			}
		}
	}()
	defer func() {
		close(reqq)
		workers.Wait()
		close(respq)
		<-respDone
	}()

	for {
		if err := conn.SetReadDeadline(time.Now().Add(readTimeout)); err != nil {
			s.logf("tinman-node: %s: set read deadline: %v", conn.RemoteAddr(), err)
			return
		}
		req := new(Request)
		if err := ReadMessage(br, req); err != nil {
			if !errors.Is(err, io.EOF) {
				s.logf("tinman-node: %s: read: %v", conn.RemoteAddr(), err)
			}
			return
		}
		// Cheap read-only ops skip the worker handoff: two channel hops and
		// a goroutine wakeup cost more than serving a cached catalog. They
		// still go through dispatch so instrumentation sees every request
		// (dispatch never consults the replay window for them).
		if req.Op == OpCatalog || req.Op == OpPing {
			resp := s.dispatch(ctx, req)
			resp.Seq = req.Seq
			respq <- resp
			continue
		}
		reqq <- req
	}
}

// mutating reports whether an op has side effects that must not run twice
// when a client replays it: registrations and derived-ID minting, policy
// changes, and reseals (which append audit entries and consume rate-limit
// budget). Ping and the catalog/audit reads are naturally idempotent, so
// replaying them fresh is cheaper than caching their (large) responses.
// Warm-up chunks skip the window too: the dsm epoch protocol already makes
// duplicates and reorderings safe (a stale chunk drops the warm state and
// the offload falls back cold), and caching megabyte chunks would bloat the
// replay window for no correctness gain.
func mutating(op Op) bool {
	switch op {
	case OpPing, OpCatalog, OpAudit, OpWhoOwns, OpDSMWarmup, OpPolicyVersion:
		return false
	}
	return true
}

// dispatch routes one request through the replay window when the client
// tagged a non-idempotent op with a ReqID, otherwise straight to handle.
// The stored response is copied before the caller stamps Seq onto it: two
// replays of one ID may race on different connections, and each needs its
// own Seq.
//
// dispatch is also the server's single instrumentation point: every request
// (including the read-loop fast path) becomes a node_op span — joined to
// the device's trace when the request carries TraceID/SpanID — and updates
// the in-flight/latency/error/replay collectors. With SetObs unset all of
// this is nil-safe no-ops.
func (s *Server) dispatch(ctx context.Context, req *Request) *Response {
	s.sm.inflight.Inc()
	s.sm.requests[req.Op].Inc()
	var span *obs.Span
	start := s.obs.Now()
	if s.obs.Enabled() {
		span = s.obs.StartRemote(obs.PhaseNodeOp, obs.ParseTraceID(req.TraceID),
			obs.ParseSpanID(req.SpanID), obs.OpName(string(req.Op)))
		ctx = obs.ContextWithSpan(ctx, span)
	}

	var resp *Response
	if r := s.ownershipGate(req); r != nil {
		// Refused before the replay window sees it: a not-owner answer must
		// not be recorded under the ReqID, or the redirected retry's result
		// could never land in a window that moves with the shard.
		resp = r
	} else if req.ReqID == "" || !mutating(req.Op) {
		resp = s.handle(ctx, req)
	} else if req.Op == OpReseal && req.DeviceID != "" {
		// Device-keyed mutations dedup in the device shard's own window, so
		// at-most-once survives a drain: the window is exported with the
		// shard and the replayed ID answers from the record on the new
		// owner. A record that crossed a handoff comes back as raw JSON.
		v, replayed := s.Svc.ReplayDo(req.DeviceID, req.ReqID, func() any {
			return s.handle(context.WithoutCancel(ctx), req)
		})
		if replayed {
			s.sm.replays.Inc()
			if span != nil {
				span.Add(obs.Note("replay"))
			}
		}
		if raw, ok := node.ReplayedRaw(v); ok {
			r := new(Response)
			if err := json.Unmarshal(raw, r); err != nil {
				r = fail("replayed record undecodable: %v", err)
			}
			resp = r
		} else {
			r := *(v.(*Response))
			resp = &r
		}
	} else if s.Replays == nil {
		resp = s.handle(ctx, req)
	} else {
		v, replayed := s.Replays.Do(req.ReqID, func() any {
			// Detach from the connection's lifetime: if this conn dies
			// mid-execution, the real outcome is still recorded, so the
			// client's replay on a fresh conn gets it instead of a cached
			// "context canceled".
			return s.handle(context.WithoutCancel(ctx), req)
		})
		if replayed {
			s.sm.replays.Inc()
			if span != nil {
				span.Add(obs.Note("replay"))
			}
		}
		r := *(v.(*Response))
		resp = &r
	}

	if !resp.OK {
		s.sm.errors.Inc()
		if span != nil {
			if resp.Denial != "" {
				span.Add(obs.Err(obs.ErrDenied), obs.Reason(resp.Denial))
			} else {
				span.Add(obs.Err(obs.ErrInternal))
			}
		}
	}
	span.End()
	s.sm.latency[req.Op].Observe(s.obs.Now() - start)
	s.sm.inflight.Dec()
	return resp
}

// ownershipGate refuses device-keyed data-path requests for devices whose
// shard lives on another fleet member, naming that member in the refusal so
// the client can follow the redirect with the identical request. Admin ops
// (revoke, bind…) are replicated fleet-wide and pass; handoff ops target a
// specific member by design and pass; a standalone server (no placement)
// gates nothing.
func (s *Server) ownershipGate(req *Request) *Response {
	if s.placement == nil || req.Op != OpReseal || req.DeviceID == "" {
		return nil
	}
	var (
		owner string
		err   error
	)
	if acc, ok := s.placement.(placementAccepter); ok {
		var accept bool
		accept, owner, err = acc.Accept(req.DeviceID, s.selfID)
		if err == nil && accept {
			return nil
		}
	} else {
		owner, err = s.placement.Owner(req.DeviceID)
	}
	if err != nil {
		return errResponse(err)
	}
	if owner != s.selfID {
		return &Response{
			OK:    false,
			Error: fmt.Sprintf("%v: device %s is owned by %s", node.ErrNotOwner, req.DeviceID, owner),
			Owner: owner,
		}
	}
	return nil
}

// handle dispatches one request into the service.
func (s *Server) handle(ctx context.Context, req *Request) *Response {
	switch req.Op {
	case OpPing:
		return &Response{OK: true}
	case OpRegister:
		rec, err := s.Svc.RegisterCor(ctx, req.CorID, req.Plaintext, req.Description, req.Whitelist...)
		if err != nil {
			return errResponse(err)
		}
		if err := s.applyClass(ctx, rec.ID, req.Class); err != nil {
			return errResponse(err)
		}
		s.logf("tinman-node: registered cor %s (%d bytes)", rec.ID, len(rec.Plaintext))
		return &Response{OK: true, CorID: rec.ID}
	case OpGenerate:
		if req.Length <= 0 {
			return fail("generate requires a positive length")
		}
		rec, err := s.Svc.GenerateCor(ctx, req.CorID, req.Description, req.Length, req.Whitelist...)
		if err != nil {
			return errResponse(err)
		}
		if err := s.applyClass(ctx, rec.ID, req.Class); err != nil {
			return errResponse(err)
		}
		return &Response{OK: true, CorID: rec.ID}
	case OpCatalog:
		return s.handleCatalog(ctx)
	case OpBind:
		if req.CorID == "" || req.AppHash == "" {
			return fail("bind requires cor_id and app_hash")
		}
		if err := s.Svc.BindApp(req.CorID, req.AppHash); err != nil {
			return errResponse(err)
		}
		return &Response{OK: true, CorID: req.CorID}
	case OpRevoke:
		if req.DeviceID == "" {
			return fail("revoke requires device_id")
		}
		revoke := s.Svc.Revoke
		if s.ctl != nil {
			revoke = s.ctl.Revoke
		}
		if err := revoke(req.DeviceID); err != nil {
			return errResponse(err)
		}
		return &Response{OK: true}
	case OpRestore:
		if req.DeviceID == "" {
			return fail("restore requires device_id")
		}
		restore := s.Svc.Restore
		if s.ctl != nil {
			restore = s.ctl.Restore
		}
		if err := restore(req.DeviceID); err != nil {
			return errResponse(err)
		}
		return &Response{OK: true}
	case OpDerive:
		if req.ParentID == "" || req.CorID == "" {
			return fail("derive requires parent_id and cor_id")
		}
		rec, err := s.Svc.DeriveNamed(ctx, req.ParentID, req.CorID, req.Description)
		if err != nil {
			return errResponse(err)
		}
		return &Response{OK: true, CorID: rec.ID}
	case OpReseal:
		rec, err := s.Svc.Reseal(ctx, node.ResealRequest{
			CorID: req.CorID, AppHash: req.AppHash, DeviceID: req.DeviceID,
			Domain: req.Domain, TargetIP: req.TargetIP,
			State: req.State, RecordLen: req.RecordLen,
		})
		if err != nil {
			return errResponse(err)
		}
		s.logf("tinman-node: resealed %dB record for cor %s -> %s", len(rec), req.CorID, req.Domain)
		return &Response{OK: true, Record: rec}
	case OpAudit:
		entries, err := s.Svc.AuditQuery(ctx, audit.Query{CorID: req.CorID, DeviceID: req.DeviceID})
		if err != nil {
			return errResponse(err)
		}
		out := make([]AuditEntry, len(entries))
		for i, e := range entries {
			out[i] = AuditEntry{
				Seq: e.Seq, Time: e.Time.Format(time.RFC3339), AppHash: e.AppHash,
				CorID: e.CorID, Device: e.DeviceID, Domain: e.Domain,
				Outcome: e.Outcome.String(), Detail: e.Detail,
				DeviceSeq:     e.DeviceSeq,
				PolicyVersion: e.PolicyVersion, PolicyHash: e.PolicyHash,
			}
		}
		return &Response{OK: true, Audit: out}
	case OpWhoOwns:
		if req.DeviceID == "" {
			return fail("who_owns requires device_id")
		}
		if s.placement == nil {
			// Standalone node: every shard lives here.
			return &Response{OK: true, Owner: s.selfID}
		}
		owner, err := s.placement.Owner(req.DeviceID)
		if err != nil {
			return errResponse(err)
		}
		return &Response{OK: true, Owner: owner}
	case OpHandoffExport:
		if req.DeviceID == "" {
			return fail("handoff_export requires device_id")
		}
		exp, err := s.Svc.DetachShard(req.DeviceID)
		if err != nil {
			return errResponse(err)
		}
		raw, err := exp.Encode()
		if err != nil {
			return errResponse(err)
		}
		return &Response{OK: true, Shard: raw}
	case OpHandoffImport:
		if len(req.Shard) == 0 {
			return fail("handoff_import requires shard")
		}
		exp, err := node.DecodeShardExport(req.Shard)
		if err != nil {
			return errResponse(err)
		}
		if err := s.Svc.ImportShard(ctx, exp); err != nil {
			return errResponse(err)
		}
		return &Response{OK: true}
	case OpDSMWarmup:
		if req.DeviceID == "" || req.App == "" {
			return fail("dsm_warmup requires device_id and app")
		}
		if len(req.Chunk) == 0 {
			return fail("dsm_warmup requires chunk")
		}
		if err := s.Svc.WarmupChunk(ctx, req.DeviceID, req.App, req.Chunk); err != nil {
			return errResponse(err)
		}
		return &Response{OK: true}
	case OpPolicyInstall:
		if len(req.Policy) == 0 {
			return fail("policy_install requires policy")
		}
		snap := new(policy.Snapshot)
		if err := json.Unmarshal(req.Policy, snap); err != nil {
			return fail("policy_install: undecodable snapshot: %v", err)
		}
		install := s.Svc.InstallPolicy
		if s.ctl != nil {
			install = s.ctl.InstallPolicy
		}
		stamp, err := install(ctx, snap)
		if err != nil {
			return errResponse(err)
		}
		return &Response{OK: true, PolicyVersion: stamp.Version, PolicyHash: stamp.Hash}
	case OpPolicyVersion:
		stamp := s.Policy.Stamp()
		return &Response{OK: true, PolicyVersion: stamp.Version, PolicyHash: stamp.Hash}
	case OpSetClass:
		if req.CorID == "" {
			return fail("set_class requires cor_id")
		}
		class, err := cor.ParseClass(req.Class)
		if err != nil {
			return errResponse(err)
		}
		setClass := s.Svc.SetCorClass
		if s.ctl != nil {
			setClass = s.ctl.SetCorClass
		}
		if err := setClass(ctx, req.CorID, class); err != nil {
			return errResponse(err)
		}
		return &Response{OK: true, CorID: req.CorID}
	default:
		return fail("unknown op %q", string(req.Op))
	}
}

func fail(format string, args ...any) *Response {
	return &Response{OK: false, Error: fmt.Sprintf(format, args...)}
}

// applyClass tags a freshly registered cor with the request's sensitivity
// class. Registration through the wire server is local to this member, so
// the class stays local too (fleet replication of registrations happens at
// the fleet layer, which carries the class with it).
func (s *Server) applyClass(ctx context.Context, corID, class string) error {
	if class == "" {
		return nil
	}
	c, err := cor.ParseClass(class)
	if err != nil {
		return err
	}
	return s.Svc.SetCorClass(ctx, corID, c)
}

// errResponse converts a service error into the wire envelope: policy
// refusals carry the machine-readable reason in Denial; everything else is
// a plain error string, byte-identical to the service's message.
func errResponse(err error) *Response {
	var d *policy.Denial
	if errors.As(err, &d) {
		return &Response{OK: false, Error: d.Error(), Denial: d.Reason.String(),
			DenialCode: d.Reason.Code() + 1}
	}
	return &Response{OK: false, Error: err.Error()}
}

// catalogCache pairs a DeviceViews snapshot with its wire conversion.
// cor.Store returns the identical snapshot slice until the catalog
// changes, so pointer identity of the first element is a valid cache key.
type catalogCache struct {
	views   []cor.DeviceView
	entries []CatalogEntry
}

func (s *Server) handleCatalog(ctx context.Context) *Response {
	views, err := s.Svc.Catalog(ctx)
	if err != nil {
		return errResponse(err)
	}
	if c := s.catalog.Load(); c != nil && len(c.views) == len(views) &&
		(len(views) == 0 || &c.views[0] == &views[0]) {
		return &Response{OK: true, Catalog: c.entries}
	}
	out := make([]CatalogEntry, len(views))
	for i, v := range views {
		out[i] = CatalogEntry{ID: v.ID, Placeholder: v.Placeholder,
			Description: v.Description, Bit: v.Bit, Class: string(v.Class)}
	}
	s.catalog.Store(&catalogCache{views: views, entries: out})
	return &Response{OK: true, Catalog: out}
}
