package nodeproto

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"hash/maphash"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tinman/internal/audit"
	"tinman/internal/cor"
	"tinman/internal/malware"
	"tinman/internal/policy"
	"tinman/internal/tlssim"
)

// Default per-connection limits; override the Server fields before Serve.
const (
	DefaultReadTimeout  = 5 * time.Minute
	DefaultWriteTimeout = time.Minute
	DefaultMaxInflight  = 64
)

// Server is the trusted-node service: the cor vault, the policy engine and
// the reseal (payload replacement) endpoint behind a real TCP listener. It
// is safe for concurrent connections, and each connection is pipelined:
// requests are handled concurrently (bounded by MaxInflight) and answered
// as they finish, correlated by Request.Seq.
type Server struct {
	Cors    *cor.Store
	Policy  *policy.Engine
	Audit   *audit.Log
	Malware *malware.DB

	// Logf receives operational messages; nil silences them.
	Logf func(format string, args ...any)

	// ReadTimeout bounds the idle wait for the next request on a
	// connection; WriteTimeout bounds each response write. Zero values use
	// the defaults. Set before Serve.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	// MaxInflight caps concurrently-handled requests per connection
	// (0 means DefaultMaxInflight).
	MaxInflight int

	mu       sync.Mutex
	listener net.Listener
	wg       sync.WaitGroup
	closed   chan struct{}

	states  stateCache
	catalog atomic.Pointer[catalogCache]
}

// stateCache memoizes parsed session states. A device re-sends the
// identical exported state for every record it offloads on a connection
// (§3.4), so without the cache the node re-parses the same
// multi-kilobyte blob on every reseal. Entries are keyed by a hash of the
// raw bytes with full byte equality checked on hit — a hash collision can
// evict, never confuse states. tlssim.Resume copies all key material out
// of a State, so a cached *State is shared read-only across reseals.
type stateCache struct {
	mu sync.Mutex
	m  map[uint64]stateEntry
}

type stateEntry struct {
	raw []byte
	st  *tlssim.State
}

// stateCacheMax bounds the cache; when full it is cleared rather than
// tracking recency — one miss per distinct state per generation is cheap,
// an eviction policy on this path is not.
const stateCacheMax = 256

var stateHashSeed = maphash.MakeSeed()

func (c *stateCache) get(raw []byte) (*tlssim.State, bool) {
	h := maphash.Bytes(stateHashSeed, raw)
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[h]
	if !ok || !bytes.Equal(e.raw, raw) {
		return nil, false
	}
	return e.st, true
}

func (c *stateCache) put(raw []byte, st *tlssim.State) {
	h := maphash.Bytes(stateHashSeed, raw)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil || len(c.m) >= stateCacheMax {
		c.m = make(map[uint64]stateEntry)
	}
	c.m[h] = stateEntry{raw: append([]byte(nil), raw...), st: st}
}

// NewServer assembles a trusted-node service with a seeded malware DB.
func NewServer() *Server {
	s := &Server{
		Cors:    cor.NewStore(),
		Policy:  policy.NewEngine(nil),
		Audit:   audit.NewLog(nil),
		Malware: malware.NewDB(),
		closed:  make(chan struct{}),
	}
	s.Malware.SeedSynthetic(1000)
	s.Policy.SetMalwareCheck(s.Malware.Contains)
	return s
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// Serve accepts connections on l until Close.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return nil
			default:
				return err
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// Addr returns the bound listener address, or "" before Serve.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// ListenAndServe listens on addr and serves.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.logf("tinman-node: listening on %s", l.Addr())
	return s.Serve(l)
}

// Close stops the listener and waits for in-flight connections.
func (s *Server) Close() error {
	s.mu.Lock()
	l := s.listener
	select {
	case <-s.closed:
	default:
		close(s.closed)
	}
	s.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	s.wg.Wait()
	return err
}

// handleConn pipelines one connection: a read loop pulls framed requests
// and hands each to a bounded worker goroutine; workers write their
// response (tagged with the request's Seq) under a shared write lock as
// soon as they finish, possibly out of order. Legacy clients that keep one
// request outstanding observe the old strictly-serial behavior.
func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	readTimeout := s.ReadTimeout
	if readTimeout == 0 {
		readTimeout = DefaultReadTimeout
	}
	writeTimeout := s.WriteTimeout
	if writeTimeout == 0 {
		writeTimeout = DefaultWriteTimeout
	}
	inflight := s.MaxInflight
	if inflight <= 0 {
		inflight = DefaultMaxInflight
	}

	br := bufio.NewReaderSize(conn, connBufSize)
	bw := bufio.NewWriterSize(conn, connBufSize)
	var (
		workers  sync.WaitGroup
		reqq     = make(chan *Request, inflight)
		respq    = make(chan *Response, inflight)
		respDone = make(chan struct{})
	)

	// A fixed pool of handler workers (bounded by MaxInflight) processes
	// requests concurrently and possibly out of order; Seq correlation
	// lets the client reassemble. A pool, not goroutine-per-request,
	// keeps warm stacks across requests on a busy connection.
	nworkers := inflight
	if nworkers > 16 {
		nworkers = 16
	}
	for i := 0; i < nworkers; i++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for req := range reqq {
				resp := s.handle(req)
				resp.Seq = req.Seq
				respq <- resp
			}
		}()
	}

	// The response writer drains respq and flushes only when the queue
	// runs dry — with a Gosched between passes so handler goroutines that
	// are about to respond get to enqueue first, letting a whole batch of
	// pipelined responses leave in one syscall. On write failure it closes
	// the conn (unblocking the read loop) and keeps draining so handlers
	// never block.
	go func() {
		defer close(respDone)
		var dead bool
		write := func(resp *Response) {
			if dead {
				return
			}
			err := conn.SetWriteDeadline(time.Now().Add(writeTimeout))
			if err == nil {
				err = WriteMessage(bw, resp)
			}
			if err != nil {
				s.logf("tinman-node: %s: write: %v", conn.RemoteAddr(), err)
				dead = true
				conn.Close()
			}
		}
		for resp := range respq {
			write(resp)
			for pass := 0; pass < 2; pass++ {
			drain:
				for {
					select {
					case more, ok := <-respq:
						if !ok {
							break drain
						}
						write(more)
					default:
						break drain
					}
				}
				if pass == 0 {
					runtime.Gosched()
				}
			}
			if !dead {
				if err := bw.Flush(); err != nil {
					s.logf("tinman-node: %s: flush: %v", conn.RemoteAddr(), err)
					dead = true
					conn.Close()
				}
			}
		}
	}()
	defer func() {
		close(reqq)
		workers.Wait()
		close(respq)
		<-respDone
	}()

	for {
		if err := conn.SetReadDeadline(time.Now().Add(readTimeout)); err != nil {
			s.logf("tinman-node: %s: set read deadline: %v", conn.RemoteAddr(), err)
			return
		}
		req := new(Request)
		if err := ReadMessage(br, req); err != nil {
			if !errors.Is(err, io.EOF) {
				s.logf("tinman-node: %s: read: %v", conn.RemoteAddr(), err)
			}
			return
		}
		// Cheap read-only ops skip the worker handoff: two channel hops and
		// a goroutine wakeup cost more than serving a cached catalog.
		if req.Op == OpCatalog || req.Op == OpPing {
			resp := s.handle(req)
			resp.Seq = req.Seq
			respq <- resp
			continue
		}
		reqq <- req
	}
}

// handle dispatches one request.
func (s *Server) handle(req *Request) *Response {
	switch req.Op {
	case OpPing:
		return &Response{OK: true}
	case OpRegister:
		return s.handleRegister(req)
	case OpGenerate:
		return s.handleGenerate(req)
	case OpCatalog:
		return s.handleCatalog(req)
	case OpBind:
		if req.CorID == "" || req.AppHash == "" {
			return fail("bind requires cor_id and app_hash")
		}
		s.Policy.BindApp(req.CorID, req.AppHash)
		return &Response{OK: true, CorID: req.CorID}
	case OpRevoke:
		if req.DeviceID == "" {
			return fail("revoke requires device_id")
		}
		s.Policy.Revoke(req.DeviceID)
		return &Response{OK: true}
	case OpRestore:
		if req.DeviceID == "" {
			return fail("restore requires device_id")
		}
		s.Policy.Restore(req.DeviceID)
		return &Response{OK: true}
	case OpDerive:
		return s.handleDerive(req)
	case OpReseal:
		return s.handleReseal(req)
	case OpAudit:
		return s.handleAudit(req)
	default:
		return fail("unknown op %q", string(req.Op))
	}
}

func fail(format string, args ...any) *Response {
	return &Response{OK: false, Error: fmt.Sprintf(format, args...)}
}

func deny(d *policy.Denial) *Response {
	return &Response{OK: false, Error: d.Error(), Denial: d.Reason.String()}
}

func (s *Server) handleRegister(req *Request) *Response {
	rec, err := s.Cors.Register(req.CorID, req.Plaintext, req.Description, req.Whitelist...)
	if err != nil {
		return fail("%v", err)
	}
	if req.Whitelist != nil {
		s.Policy.SetWhitelist(rec.ID, req.Whitelist)
	}
	s.logf("tinman-node: registered cor %s (%d bytes)", rec.ID, len(rec.Plaintext))
	return &Response{OK: true, CorID: rec.ID}
}

func (s *Server) handleGenerate(req *Request) *Response {
	if req.Length <= 0 {
		return fail("generate requires a positive length")
	}
	rec, err := s.Cors.GenerateNew(req.CorID, req.Description, req.Length, req.Whitelist...)
	if err != nil {
		return fail("%v", err)
	}
	if req.Whitelist != nil {
		s.Policy.SetWhitelist(rec.ID, req.Whitelist)
	}
	return &Response{OK: true, CorID: rec.ID}
}

// catalogCache pairs a DeviceViews snapshot with its wire conversion.
// cor.Store returns the identical snapshot slice until the catalog
// changes, so pointer identity of the first element is a valid cache key.
type catalogCache struct {
	views   []cor.DeviceView
	entries []CatalogEntry
}

func (s *Server) handleCatalog(*Request) *Response {
	views := s.Cors.DeviceViews()
	if c := s.catalog.Load(); c != nil && len(c.views) == len(views) &&
		(len(views) == 0 || &c.views[0] == &views[0]) {
		return &Response{OK: true, Catalog: c.entries}
	}
	out := make([]CatalogEntry, len(views))
	for i, v := range views {
		out[i] = CatalogEntry{ID: v.ID, Placeholder: v.Placeholder, Description: v.Description, Bit: v.Bit}
	}
	s.catalog.Store(&catalogCache{views: views, entries: out})
	return &Response{OK: true, Catalog: out}
}

func (s *Server) handleDerive(req *Request) *Response {
	if req.ParentID == "" || req.CorID == "" {
		return fail("derive requires parent_id and cor_id")
	}
	// The derived plaintext is computed on the node from the parent — the
	// device never supplies secret content (e.g. the sha256-hex hash used
	// for web login, §4.1).
	parent := s.Cors.Get(req.ParentID)
	if parent == nil {
		return fail("unknown parent cor %q", req.ParentID)
	}
	var content string
	switch req.Description {
	case "", "sha256-hex":
		content = apphashOf(parent.Plaintext)
	default:
		return fail("unknown derivation %q", req.Description)
	}
	rec, err := s.Cors.Derive(req.ParentID, req.CorID, content)
	if err != nil {
		return fail("%v", err)
	}
	return &Response{OK: true, CorID: rec.ID}
}

// handleReseal is payload replacement over the wire: given the device's
// exported session state and a cor, produce the record the trusted node
// sends on the device's behalf. The caller supplies record_len (the length
// of the placeholder-bearing record it would have sent) so the node can
// verify TCP sequence consistency.
func (s *Server) handleReseal(req *Request) *Response {
	rec := s.Cors.Get(req.CorID)
	if rec == nil {
		return fail("unknown cor %q", req.CorID)
	}
	checkID := rec.ID
	if parent := s.Cors.ByBit(rec.Bit); parent != nil {
		checkID = parent.ID
	}
	acc := policy.Access{
		CorID:    checkID,
		AppHash:  req.AppHash,
		DeviceID: req.DeviceID,
		Send:     true,
		Domain:   req.Domain,
		IP:       req.TargetIP,
	}
	if err := s.Policy.Check(acc); err != nil {
		if d, ok := policy.IsDenial(err); ok {
			s.Audit.Append(req.AppHash, checkID, req.DeviceID, req.Domain, audit.OutcomeDenied, d.Error())
			return deny(d)
		}
		return fail("%v", err)
	}
	st, ok := s.states.get(req.State)
	if !ok {
		var err error
		st, err = tlssim.UnmarshalState(req.State)
		if err != nil {
			return fail("bad session state: %v", err)
		}
		s.states.put(req.State, st)
	}
	if st.Version <= tlssim.TLS10 {
		s.Audit.Append(req.AppHash, checkID, req.DeviceID, req.Domain, audit.OutcomeDenied, "TLS1.0 session refused")
		return fail("refusing %v session: implicit-IV state sync leaks plaintext (fig 7)", st.Version)
	}
	sess, err := tlssim.Resume(st, nil)
	if err != nil {
		return fail("resuming session: %v", err)
	}
	out, err := sess.Seal(tlssim.TypeApplicationData, []byte(rec.Plaintext))
	if err != nil {
		return fail("sealing: %v", err)
	}
	if req.RecordLen > 0 && len(out) != req.RecordLen {
		return fail("resealed record %dB != placeholder record %dB (would desynchronize TCP)", len(out), req.RecordLen)
	}
	s.Audit.Append(req.AppHash, checkID, req.DeviceID, req.Domain, audit.OutcomeAllowed, "record resealed")
	s.logf("tinman-node: resealed %dB record for cor %s -> %s", len(out), req.CorID, req.Domain)
	return &Response{OK: true, Record: out}
}

func (s *Server) handleAudit(req *Request) *Response {
	entries := s.Audit.Find(audit.Query{CorID: req.CorID, DeviceID: req.DeviceID})
	out := make([]AuditEntry, len(entries))
	for i, e := range entries {
		out[i] = AuditEntry{
			Seq: e.Seq, Time: e.Time.Format(time.RFC3339), AppHash: e.AppHash,
			CorID: e.CorID, Device: e.DeviceID, Domain: e.Domain,
			Outcome: e.Outcome.String(), Detail: e.Detail,
		}
	}
	return &Response{OK: true, Audit: out}
}

// apphashOf is the standard sha256-hex derivation.
func apphashOf(s string) string {
	return apps256(s)
}
