package nodeproto

import (
	"sort"
	"testing"
	"time"
)

// BenchmarkNodeThroughput drives a live loopback-TCP node with 8 parallel
// device loops doing the catalog+reseal mix and reports req/s plus latency
// percentiles as benchmark metrics:
//
//	go test -bench NodeThroughput -benchtime 2000x ./internal/nodeproto/
//
// Sub-benchmarks compare the seed's client (serial: one request on the
// wire at a time) against the pipelined single connection and a pipelined
// 4-connection pool.
func BenchmarkNodeThroughput(b *testing.B) {
	addr, state, shutdown, err := StartThroughputServer()
	if err != nil {
		b.Fatal(err)
	}
	defer shutdown()

	modes := []struct {
		name string
		opts ThroughputOptions
	}{
		{"seed", ThroughputOptions{Workers: 8, Conns: 1, Mode: "seed"}},
		{"serial", ThroughputOptions{Workers: 8, Conns: 1, Mode: "serial"}},
		{"pipelined", ThroughputOptions{Workers: 8, Conns: 1, Mode: "pipelined"}},
		{"pooled", ThroughputOptions{Workers: 8, Conns: 4, Mode: "pipelined"}},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			opts := m.opts
			opts.Requests = b.N
			b.ResetTimer()
			res, err := RunThroughput(addr, state, opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.ReqPerSec, "req/s")
			b.ReportMetric(float64(res.P50.Microseconds()), "p50-µs")
			b.ReportMetric(float64(res.P99.Microseconds()), "p99-µs")
			b.ReportMetric(0, "ns/op") // wall time is the req/s metric; per-op ns is misleading with parallel workers
		})
	}
}

// TestPipelinedFasterThanSeed is the acceptance check behind the
// benchmark: on the same workload the pipelined client must clear at
// least 2× the seed client's throughput (one mutex-guarded request per
// connection at a time, unbuffered I/O). Run with a fixed request count
// so the comparison is load-for-load.
func TestPipelinedFasterThanSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput comparison skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing assertion skipped under the race detector's instrumentation")
	}
	addr, state, shutdown, err := StartThroughputServer()
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	// Interleave three rounds of each mode and compare medians: a single
	// round is ~60–150ms of wall time, short enough that a GC cycle or
	// scheduler hiccup shifts it ±20% in either direction, and the median
	// discards one outlier round per mode.
	const requests = 4000
	const rounds = 3
	var seedRates, pipedRates []float64
	for i := 0; i < rounds; i++ {
		seed, err := RunThroughput(addr, state, ThroughputOptions{Workers: 8, Conns: 1, Mode: "seed", Requests: requests})
		if err != nil {
			t.Fatal(err)
		}
		piped, err := RunThroughput(addr, state, ThroughputOptions{Workers: 8, Conns: 1, Mode: "pipelined", Requests: requests})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("round %d seed:      %v", i, seed)
		t.Logf("round %d pipelined: %v", i, piped)
		if seed.Requests != requests || piped.Requests != requests {
			t.Fatalf("lost requests: seed %d, pipelined %d, want %d", seed.Requests, piped.Requests, requests)
		}
		seedRates = append(seedRates, seed.ReqPerSec)
		pipedRates = append(pipedRates, piped.ReqPerSec)
	}
	median := func(v []float64) float64 {
		s := append([]float64(nil), v...)
		sort.Float64s(s)
		return s[len(s)/2]
	}
	seedMed, pipedMed := median(seedRates), median(pipedRates)
	t.Logf("median seed %.0f req/s, median pipelined %.0f req/s (%.2fx)", seedMed, pipedMed, pipedMed/seedMed)
	if pipedMed < 2*seedMed {
		t.Fatalf("pipelined %.0f req/s < 2x seed %.0f req/s", pipedMed, seedMed)
	}
}

// BenchmarkResealLatency measures single-request reseal latency over
// loopback TCP (no pipelining, one worker) — the per-call cost a single
// device sees.
func BenchmarkResealLatency(b *testing.B) {
	addr, state, shutdown, err := StartThroughputServer()
	if err != nil {
		b.Fatal(err)
	}
	defer shutdown()
	c, err := Dial(addr, 5*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.ResealRaw(benchCor, state, "bench-app", "bench-dev", "bench.example", "", 0); err != nil {
			b.Fatal(err)
		}
	}
}
