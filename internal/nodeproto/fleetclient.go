package nodeproto

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"tinman/internal/node"
)

// FleetClient routes device-keyed operations across the members of a
// trusted-node fleet over the wire. Each member gets its own
// ReconnectClient (own breaker, own redial loop); device requests follow
// the fleet's ownership:
//
//   - the client remembers which member last served each device and sends
//     there first;
//   - a not-owner refusal carries the owning member in Response.Owner, and
//     the identical request — same ReqID — is resent there, so the replay
//     window that moved with the shard still dedups it;
//   - an unreachable member makes the client try the remaining members,
//     whose fleet router fails the device over on first contact.
type FleetClient struct {
	mu      sync.Mutex
	members map[string]*ReconnectClient
	order   []string
	route   map[string]string // deviceID -> member last known to own it
}

// DialFleet builds a fleet client over the member address map (member ID →
// addr). cfg is a per-member template: its Dial is replaced per member;
// its ClientID, when set, is suffixed per member so minted ReqIDs stay
// unique. Like DialReconnect it cannot fail — connectivity is lazy.
func DialFleet(members map[string]string, timeout time.Duration, cfg ReconnectConfig) *FleetClient {
	fc := &FleetClient{
		members: make(map[string]*ReconnectClient, len(members)),
		route:   make(map[string]string),
	}
	for id := range members {
		fc.order = append(fc.order, id)
	}
	sort.Strings(fc.order)
	for _, id := range fc.order {
		addr := members[id]
		mcfg := cfg
		mcfg.Dial = func() (*Client, error) { return Dial(addr, timeout) }
		if mcfg.ClientID != "" {
			mcfg.ClientID = mcfg.ClientID + "-" + id
		}
		fc.members[id] = NewReconnectClient(mcfg)
	}
	return fc
}

// Members lists member IDs in sorted order.
func (fc *FleetClient) Members() []string {
	return append([]string(nil), fc.order...)
}

// Member exposes one member's reconnecting client (handoff drivers, tests).
func (fc *FleetClient) Member(id string) (*ReconnectClient, bool) {
	rc, ok := fc.members[id]
	return rc, ok
}

// Close closes every member client, returning the first error.
func (fc *FleetClient) Close() error {
	var first error
	for _, id := range fc.order {
		if err := fc.members[id].Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// RouteOf reports the member that last served the device ("" if the device
// has not been routed yet).
func (fc *FleetClient) RouteOf(deviceID string) string {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.route[deviceID]
}

func (fc *FleetClient) setRoute(deviceID, member string) {
	fc.mu.Lock()
	fc.route[deviceID] = member
	fc.mu.Unlock()
}

// firstTarget picks where to send a device's request: the cached route, or
// the first configured member (whose router answers with a redirect or a
// failover if it is not the owner).
func (fc *FleetClient) firstTarget(deviceID string) string {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if m, ok := fc.route[deviceID]; ok {
		return m
	}
	return fc.order[0]
}

// doDevice runs one device-keyed request to completion across the fleet,
// following not-owner redirects and falling past unreachable members. It
// returns the response and the member that served it. The request object
// is reused across hops on purpose: the first member's ReconnectClient
// mints the ReqID onto it, and every subsequent hop carries that same ID.
func (fc *FleetClient) doDevice(ctx context.Context, deviceID string, req *Request) (*Response, string, error) {
	if len(fc.order) == 0 {
		return nil, "", errors.New("nodeproto: fleet client has no members")
	}
	target := fc.firstTarget(deviceID)
	tried := map[string]bool{}
	var lastErr error
	// Hop budget: every member once via unavailability fallback, plus a
	// redirect per member for stale-route chains.
	for hop := 0; hop < 2*len(fc.order); hop++ {
		rc, ok := fc.members[target]
		if !ok {
			return nil, "", fmt.Errorf("nodeproto: fleet redirect to unknown member %q", target)
		}
		resp, err := rc.Do(ctx, req)
		if err == nil {
			fc.setRoute(deviceID, target)
			return resp, target, nil
		}
		lastErr = err
		if owner, redirected := RedirectOwner(err); redirected && owner != target {
			fc.setRoute(deviceID, owner)
			target = owner
			continue
		}
		if errors.Is(err, node.ErrNodeUnavailable) {
			// This member is unreachable; any other member's router will
			// fail the device over to a healthy owner on first contact.
			tried[target] = true
			next := ""
			for _, id := range fc.order {
				if !tried[id] {
					next = id
					break
				}
			}
			if next == "" {
				return nil, "", err
			}
			target = next
			continue
		}
		return nil, "", err
	}
	return nil, "", fmt.Errorf("nodeproto: fleet routing did not converge: %w", lastErr)
}

// Reseal performs payload replacement against whichever member owns the
// device, returning the resealed record and the member that served it.
func (fc *FleetClient) Reseal(ctx context.Context, corID string, state json.RawMessage, appHash, deviceID, domain, targetIP string, recordLen int) ([]byte, string, error) {
	resp, member, err := fc.doDevice(ctx, deviceID, &Request{
		Op: OpReseal, CorID: corID, State: state,
		AppHash: appHash, DeviceID: deviceID, Domain: domain, TargetIP: targetIP,
		RecordLen: recordLen,
	})
	if err != nil {
		return nil, member, err
	}
	return resp.Record, member, nil
}

// WhoOwns asks the fleet which member owns the device's shard, preferring
// the cached route's member as the oracle and falling back across members.
func (fc *FleetClient) WhoOwns(ctx context.Context, deviceID string) (string, error) {
	var lastErr error
	start := fc.firstTarget(deviceID)
	ids := append([]string{start}, fc.order...)
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			continue
		}
		seen[id] = true
		owner, err := fc.members[id].Do(ctx, &Request{Op: OpWhoOwns, DeviceID: deviceID})
		if err == nil {
			return owner.Owner, nil
		}
		lastErr = err
		if !errors.Is(err, node.ErrNodeUnavailable) {
			return "", err
		}
	}
	return "", lastErr
}

// Catalog fetches the device view from any reachable member (the catalog
// is replicated fleet-wide by the control plane).
func (fc *FleetClient) Catalog(ctx context.Context) ([]CatalogEntry, error) {
	var lastErr error
	for _, id := range fc.order {
		resp, err := fc.members[id].Do(ctx, &Request{Op: OpCatalog})
		if err == nil {
			return resp.Catalog, nil
		}
		lastErr = err
		if !errors.Is(err, node.ErrNodeUnavailable) {
			return nil, err
		}
	}
	return nil, lastErr
}

// AuditLog queries every reachable member and merges the entries: filtered
// by device, the merged stream is ordered by the per-device sequence that
// travels with the shard, so one device's history reads in true order even
// though it spans several nodes' logs.
func (fc *FleetClient) AuditLog(ctx context.Context, corID, deviceID string) ([]AuditEntry, error) {
	var (
		all     []AuditEntry
		reached int
		lastErr error
	)
	for _, id := range fc.order {
		resp, err := fc.members[id].Do(ctx, &Request{Op: OpAudit, CorID: corID, DeviceID: deviceID})
		if err != nil {
			lastErr = err
			if !errors.Is(err, node.ErrNodeUnavailable) {
				return nil, err
			}
			continue
		}
		reached++
		all = append(all, resp.Audit...)
	}
	if reached == 0 {
		return nil, lastErr
	}
	sort.SliceStable(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Device == b.Device && a.DeviceSeq != b.DeviceSeq {
			return a.DeviceSeq < b.DeviceSeq
		}
		return a.Time < b.Time
	})
	return all, nil
}
