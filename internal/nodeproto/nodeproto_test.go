package nodeproto

import (
	"context"
	"crypto/rand"
	"crypto/rsa"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"tinman/internal/tlssim"
)

// testServer starts a server on a loopback listener and returns a connected
// client plus the server for direct inspection.
func testServer(t *testing.T) (*Client, *Server) {
	t.Helper()
	s := NewServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(func() { s.Close() })
	c, err := Dial(l.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, s
}

func TestPing(t *testing.T) {
	c, _ := testServer(t)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterAndCatalog(t *testing.T) {
	c, _ := testServer(t)
	if err := c.Register("bank-pw", "hunter2!", "bank password", "bank.com"); err != nil {
		t.Fatal(err)
	}
	cat, err := c.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	if len(cat) != 1 || cat[0].ID != "bank-pw" {
		t.Fatalf("catalog = %+v", cat)
	}
	if cat[0].Placeholder == "hunter2!" || len(cat[0].Placeholder) != 8 {
		t.Fatalf("placeholder = %q", cat[0].Placeholder)
	}
	// Duplicate registration fails cleanly.
	if err := c.Register("bank-pw", "x", ""); err == nil {
		t.Fatal("duplicate register accepted")
	}
}

func TestGenerateKeepsPlaintextOnNode(t *testing.T) {
	c, s := testServer(t)
	if err := c.Generate("gen-pw", "generated", 20, "site.com"); err != nil {
		t.Fatal(err)
	}
	cat, err := c.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	if len(cat) != 1 || len(cat[0].Placeholder) != 20 {
		t.Fatalf("catalog = %+v", cat)
	}
	rec := s.Cors.Get("gen-pw")
	if rec == nil || len(rec.Plaintext) != 20 || rec.Plaintext == cat[0].Placeholder {
		t.Fatal("generated plaintext wrong on node")
	}
}

func TestDeriveSha256(t *testing.T) {
	c, s := testServer(t)
	if err := c.Register("pw", "secret-password", ""); err != nil {
		t.Fatal(err)
	}
	if err := c.Derive("pw", "pw-hash", "sha256-hex"); err != nil {
		t.Fatal(err)
	}
	rec := s.Cors.Get("pw-hash")
	if rec == nil || rec.Plaintext != apps256("secret-password") {
		t.Fatalf("derived = %+v", rec)
	}
	if err := c.Derive("nope", "x", ""); err == nil {
		t.Fatal("derive from unknown parent accepted")
	}
	if err := c.Derive("pw", "pw-hash2", "rot13"); err == nil {
		t.Fatal("unknown derivation accepted")
	}
}

// establishSession builds a client/server TLS session pair for reseal tests.
func establishSession(t *testing.T) (*tlssim.Session, *tlssim.Session) {
	t.Helper()
	key, err := rsa.GenerateKey(rand.Reader, 1024)
	if err != nil {
		t.Fatal(err)
	}
	cs, ss, _, err := tlssim.Handshake(tlssim.ClientConfig{MinVersion: tlssim.TLS11}, tlssim.ServerConfig{Key: key})
	if err != nil {
		t.Fatal(err)
	}
	return cs, ss
}

func TestResealEndToEnd(t *testing.T) {
	c, _ := testServer(t)
	if err := c.Register("cc", "4111111111111111", "credit card", "shop.com"); err != nil {
		t.Fatal(err)
	}
	device, origin := establishSession(t)

	// The device computes the placeholder-bearing record only to learn its
	// length, then asks the node for the real one. Probing on a resumed
	// copy leaves the device's own session state untouched.
	cat, _ := c.Catalog()
	probe, err := tlssim.Resume(device.Export(), nil)
	if err != nil {
		t.Fatal(err)
	}
	probeRec, err := probe.Seal(tlssim.TypeMarkedCor, []byte(cat[0].Placeholder))
	if err != nil {
		t.Fatal(err)
	}

	rec, err := c.Reseal("cc", device.Export(), "apphash", "dev1", "shop.com", "203.0.113.5", len(probeRec))
	if err != nil {
		t.Fatal(err)
	}
	// The origin opens the node-sealed record as if the device had sent it.
	typ, plaintext, _, err := origin.Open(rec)
	if err != nil || typ != tlssim.TypeApplicationData {
		t.Fatalf("origin open: %v %v", err, typ)
	}
	if string(plaintext) != "4111111111111111" {
		t.Fatalf("origin saw %q", plaintext)
	}

	// Audit recorded the reseal.
	entries, err := c.AuditLog("", "dev1")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Outcome != "allowed" {
		t.Fatalf("audit = %+v", entries)
	}
}

func TestResealPolicyDenials(t *testing.T) {
	c, _ := testServer(t)
	if err := c.Register("pw", "secret99", "", "good.com"); err != nil {
		t.Fatal(err)
	}
	if err := c.Bind("pw", "official-app"); err != nil {
		t.Fatal(err)
	}
	device, _ := establishSession(t)

	// Wrong app hash.
	_, err := c.Reseal("pw", device.Export(), "evil-app", "dev1", "good.com", "", 0)
	if err == nil || !strings.Contains(err.Error(), "app not bound") {
		t.Fatalf("err = %v", err)
	}
	// Wrong domain.
	_, err = c.Reseal("pw", device.Export(), "official-app", "dev1", "evil.com", "", 0)
	if err == nil || !strings.Contains(err.Error(), "whitelist") {
		t.Fatalf("err = %v", err)
	}
	// Revoked device.
	if err := c.Revoke("dev1"); err != nil {
		t.Fatal(err)
	}
	_, err = c.Reseal("pw", device.Export(), "official-app", "dev1", "good.com", "", 0)
	if err == nil || !strings.Contains(err.Error(), "revoked") {
		t.Fatalf("err = %v", err)
	}
	if err := c.Restore("dev1"); err != nil {
		t.Fatal(err)
	}
	if _, err = c.Reseal("pw", device.Export(), "official-app", "dev1", "good.com", "", 0); err != nil {
		t.Fatalf("post-restore reseal: %v", err)
	}
	// Denials were audited.
	entries, _ := c.AuditLog("pw", "")
	denied := 0
	for _, e := range entries {
		if e.Outcome == "denied" {
			denied++
		}
	}
	if denied != 3 {
		t.Fatalf("denied audit entries = %d, want 3", denied)
	}
}

func TestResealRefusesTLS10(t *testing.T) {
	c, _ := testServer(t)
	if err := c.Register("pw", "secret99", ""); err != nil {
		t.Fatal(err)
	}
	key, _ := rsa.GenerateKey(rand.Reader, 1024)
	dev, _, _, err := tlssim.Handshake(
		tlssim.ClientConfig{MaxVersion: tlssim.TLS10, Suites: []tlssim.Suite{tlssim.SuiteAESCBCSHA256}},
		tlssim.ServerConfig{MaxVersion: tlssim.TLS10, Key: key})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Reseal("pw", dev.Export(), "", "", "", "", 0)
	if err == nil || !strings.Contains(err.Error(), "implicit-IV") {
		t.Fatalf("err = %v, want TLS1.0 refusal", err)
	}
}

func TestResealLengthGuard(t *testing.T) {
	c, _ := testServer(t)
	if err := c.Register("pw", "secret99", ""); err != nil {
		t.Fatal(err)
	}
	device, _ := establishSession(t)
	_, err := c.Reseal("pw", device.Export(), "", "", "", "", 7)
	if err == nil || !strings.Contains(err.Error(), "desynchronize") {
		t.Fatalf("err = %v, want length guard", err)
	}
}

func TestUnknownOpAndCor(t *testing.T) {
	c, _ := testServer(t)
	device, _ := establishSession(t)
	if _, err := c.Reseal("nope", device.Export(), "", "", "", "", 0); err == nil {
		t.Fatal("unknown cor accepted")
	}
	if _, err := c.do(context.Background(), &Request{Op: "frobnicate"}); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestConcurrentClients(t *testing.T) {
	c, s := testServer(t)
	_ = c
	var addr string
	for i := 0; i < 100 && addr == ""; i++ {
		addr = s.Addr()
		time.Sleep(time.Millisecond)
	}
	if addr == "" {
		t.Fatal("server never bound")
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl, err := Dial(addr, time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for j := 0; j < 10; j++ {
				if err := cl.Ping(); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestMessageFraming(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go func() {
		WriteMessage(a, &Request{Op: OpPing, CorID: "x"})
	}()
	var req Request
	if err := ReadMessage(b, &req); err != nil {
		t.Fatal(err)
	}
	if req.Op != OpPing || req.CorID != "x" {
		t.Fatalf("req = %+v", req)
	}
}
