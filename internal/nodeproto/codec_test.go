package nodeproto

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// requestCases covers every Request field plus shapes that must force the
// fallback (escaped strings, HTML-escaped runes, unknown keys).
var requestCases = []Request{
	{},
	{Op: OpPing},
	{Op: OpCatalog, Seq: 7},
	{Op: OpRegister, CorID: "pw", Plaintext: "hunter2", Description: "the password", Whitelist: []string{"a.example", "b.example"}},
	{Op: OpGenerate, CorID: "tok", Length: 32, Whitelist: []string{}},
	{Op: OpBind, CorID: "pw", AppHash: "deadbeef"},
	{Op: OpRevoke, DeviceID: "phone-1"},
	{Op: OpDerive, CorID: "pw-web", ParentID: "pw", Description: "derived"},
	{Op: OpReseal, Seq: 1 << 40, CorID: "pw", AppHash: "abc", DeviceID: "phone-1",
		State:  json.RawMessage(`{"version":771,"out":{"seq":3,"key":"qg=="}}`),
		Domain: "login.example", TargetIP: "10.0.0.1", RecordLen: 64},
	{Op: OpAudit, CorID: "pw", DeviceID: "phone-1"},
	// Escapes and non-ASCII: the fast path must reject these and the
	// fallback must still produce the right answer.
	{Op: OpRegister, CorID: "q", Plaintext: "line1\nline2 \"quoted\""},
	{Op: OpRegister, CorID: "q", Description: "naïve café — ключ"},
	{Op: OpRegister, CorID: "q", Description: "a<b&c>d"},
	{Op: OpReseal, CorID: "pw", State: json.RawMessage(`"opaque-string-state"`)},
	{Op: OpReseal, CorID: "pw", State: json.RawMessage(`[1,2,{"x":"]"}]`)},
	{Op: OpRegister, CorID: "pw", Plaintext: "hunter2", Class: "server-only"},
	{Op: OpSetClass, CorID: "pw", Class: "public"},
	{Op: OpPolicyInstall, Policy: json.RawMessage(`{"version":7,"revoked":["dev-1"],"rates":{"pw":{"max":3,"per":1000000000}}}`)},
	{Op: OpPolicyVersion, Seq: 9},
}

var responseCases = []Response{
	{},
	{OK: true},
	{OK: true, Seq: 42, CorID: "pw"},
	{OK: false, Error: "unknown cor \"x\"", Denial: "whitelist"},
	{OK: true, Record: []byte{0x17, 0x03, 0x03, 0x00, 0xff, 0x01}},
	{OK: true, Catalog: []CatalogEntry{}},
	{OK: true, Catalog: []CatalogEntry{
		{ID: "pw", Placeholder: "\x00PLACEHOLDER\x00", Description: "password", Bit: 3},
		{ID: "tok", Placeholder: "p2", Description: "token", Bit: 0},
	}},
	{OK: true, Audit: []AuditEntry{
		{Seq: 1, Time: "2015-04-21T10:00:00Z", AppHash: "h", CorID: "pw", Device: "d", Domain: "x.example", Outcome: "allowed", Detail: "record resealed"},
	}},
	{OK: false, Error: "denied: device revoked", Denial: "revoked", DenialCode: 3},
	{OK: true, PolicyVersion: 12, PolicyHash: "abcdef012345"},
	{OK: true, Catalog: []CatalogEntry{{ID: "pw", Placeholder: "p", Description: "d", Bit: 1, Class: "server-only"}}},
	{OK: true, Audit: []AuditEntry{
		{Seq: 2, Time: "2015-04-21T10:00:01Z", Outcome: "denied", Detail: "revoked",
			DeviceSeq: 4, PolicyVersion: 12, PolicyHash: "abcdef012345"},
	}},
}

// TestCodecMatchesStdlib round-trips every case through WriteMessage →
// ReadMessage and checks the result matches a pure encoding/json decode of
// the same frame. This pins the fast path (or its fallback) to stdlib
// semantics.
func TestCodecMatchesStdlib(t *testing.T) {
	for i, rc := range requestCases {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, &rc); err != nil {
			t.Fatalf("case %d: write: %v", i, err)
		}
		frame := buf.Bytes()
		var got Request
		if err := ReadMessage(bytes.NewReader(frame), &got); err != nil {
			t.Fatalf("case %d: read: %v", i, err)
		}
		var want Request
		if err := json.Unmarshal(frame[4:], &want); err != nil {
			t.Fatalf("case %d: stdlib: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("request case %d:\n got %#v\nwant %#v", i, got, want)
		}
	}
	for i, rc := range responseCases {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, &rc); err != nil {
			t.Fatalf("case %d: write: %v", i, err)
		}
		frame := buf.Bytes()
		var got Response
		if err := ReadMessage(bytes.NewReader(frame), &got); err != nil {
			t.Fatalf("case %d: read: %v", i, err)
		}
		var want Response
		if err := json.Unmarshal(frame[4:], &want); err != nil {
			t.Fatalf("case %d: stdlib: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("response case %d:\n got %#v\nwant %#v", i, got, want)
		}
	}
}

// TestCodecForeignShapes feeds hand-written JSON a legacy or third-party
// peer might produce — reordered keys, extra whitespace, unknown fields,
// escaped strings, null values — and checks ReadMessage agrees with
// stdlib on all of them.
func TestCodecForeignShapes(t *testing.T) {
	cases := []string{
		`{}`,
		`{ "op" : "ping" }`,
		"{\n\t\"seq\": 3,\n\t\"op\": \"catalog\"\n}",
		`{"op":"reseal","state":null,"cor_id":"pw"}`,
		`{"op":"reseal","state": {"a": [1, "]}", true]} ,"domain":"d.example"}`,
		`{"unknown_field":123,"op":"ping"}`,
		`{"op":"regi\u0073ter","cor_id":"pw"}`,
		`{"op":"catalog","seq":18446744073709551615}`,
		`{"whitelist":["a","b","c"],"op":"register"}`,
	}
	for i, body := range cases {
		var got Request
		if err := readFramed(t, body, &got); err != nil {
			t.Fatalf("case %d: read: %v", i, err)
		}
		var want Request
		if err := json.Unmarshal([]byte(body), &want); err != nil {
			t.Fatalf("case %d: stdlib: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("case %d (%s):\n got %#v\nwant %#v", i, body, got, want)
		}
	}

	respCases := []string{
		`{"ok":true,"seq":1}`,
		`{"seq":1,"ok":true,"record":"AQID"}`,
		`{"ok":false,"error":"denied: \"pw\" not bound"}`,
		`{"ok":true,"catalog":[{"bit":1,"id":"pw","placeholder":"p","description":"d"}]}`,
		`{"ok":true,"catalog":null}`,
		`{"ok":true,"extra":"ignored"}`,
	}
	for i, body := range respCases {
		var got Response
		if err := readFramed(t, body, &got); err != nil {
			t.Fatalf("resp case %d: read: %v", i, err)
		}
		var want Response
		if err := json.Unmarshal([]byte(body), &want); err != nil {
			t.Fatalf("resp case %d: stdlib: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("resp case %d (%s):\n got %#v\nwant %#v", i, body, got, want)
		}
	}
}

func readFramed(t *testing.T, body string, v any) error {
	t.Helper()
	var buf bytes.Buffer
	buf.Write([]byte{byte(len(body) >> 24), byte(len(body) >> 16), byte(len(body) >> 8), byte(len(body))})
	buf.WriteString(body)
	return ReadMessage(&buf, v)
}

// TestCodecRejectsGarbage checks malformed bodies still error through the
// fallback instead of being half-accepted by the fast path.
func TestCodecRejectsGarbage(t *testing.T) {
	for _, body := range []string{
		`{"op":"ping"`,
		`{"op":}`,
		`{"op":"ping"}{"op":"ping"}`,
		`[1,2,3]`,
		`not json`,
	} {
		var req Request
		if err := readFramed(t, body, &req); err == nil {
			t.Errorf("body %q: expected error, got %#v", body, req)
		}
	}
}
