package nodeproto

import (
	"encoding/base64"
	"encoding/json"

	"tinman/internal/fastjson"
)

// Schema-specialized decoders for the two protocol envelopes. Reflection
// through encoding/json is the node's single largest CPU cost at
// pipelined rates, and the messages are small, fixed-shape objects — a
// hand-rolled scan decodes them in one pass with no reflection.
//
// The decoders are fast paths, not replacements: they handle exactly the
// JSON this package's own marshaler emits (no escapes, no unknown keys,
// std-alphabet base64) and report false for everything else, in which
// case ReadMessage zeroes the target and re-decodes the untouched body
// with the full decoder. A legacy or third-party peer is therefore at
// worst slow, never misread.

// decodeRequest fast-decodes a Request body; false means fall back.
func decodeRequest(body []byte, req *Request) bool {
	s := fastjson.Scanner{Data: body}
	if !s.Consume('{') {
		return false
	}
	if !s.Consume('}') {
		for {
			key, ok := s.StrBytes()
			if !ok || !s.Consume(':') {
				return false
			}
			switch string(key) {
			case "op":
				v, ok := s.StrBytes()
				if !ok {
					return false
				}
				req.Op = Op(v)
			case "seq":
				v, ok := s.UInt()
				if !ok {
					return false
				}
				req.Seq = v
			case "req_id":
				if !decodeString(&s, &req.ReqID) {
					return false
				}
			case "cor_id":
				if !decodeString(&s, &req.CorID) {
					return false
				}
			case "plaintext":
				if !decodeString(&s, &req.Plaintext) {
					return false
				}
			case "description":
				if !decodeString(&s, &req.Description) {
					return false
				}
			case "parent_id":
				if !decodeString(&s, &req.ParentID) {
					return false
				}
			case "app_hash":
				if !decodeString(&s, &req.AppHash) {
					return false
				}
			case "device_id":
				if !decodeString(&s, &req.DeviceID) {
					return false
				}
			case "domain":
				if !decodeString(&s, &req.Domain) {
					return false
				}
			case "target_ip":
				if !decodeString(&s, &req.TargetIP) {
					return false
				}
			case "whitelist":
				if !decodeStrings(&s, &req.Whitelist) {
					return false
				}
			case "length":
				v, ok := s.Int()
				if !ok {
					return false
				}
				req.Length = v
			case "record_len":
				v, ok := s.Int()
				if !ok {
					return false
				}
				req.RecordLen = v
			case "trace_id":
				if !decodeString(&s, &req.TraceID) {
					return false
				}
			case "span_id":
				if !decodeString(&s, &req.SpanID) {
					return false
				}
			case "state":
				// Captured verbatim; copied because the body buffer is pooled.
				s.WS()
				start := s.Pos
				if !s.SkipValue() {
					return false
				}
				req.State = append(json.RawMessage(nil), s.Data[start:s.Pos]...)
			case "shard":
				s.WS()
				start := s.Pos
				if !s.SkipValue() {
					return false
				}
				req.Shard = append(json.RawMessage(nil), s.Data[start:s.Pos]...)
			case "app":
				if !decodeString(&s, &req.App) {
					return false
				}
			case "class":
				if !decodeString(&s, &req.Class) {
					return false
				}
			case "policy":
				s.WS()
				start := s.Pos
				if !s.SkipValue() {
					return false
				}
				req.Policy = append(json.RawMessage(nil), s.Data[start:s.Pos]...)
			case "chunk":
				b64, ok := s.StrBytes()
				if !ok {
					return false
				}
				out := make([]byte, base64.StdEncoding.DecodedLen(len(b64)))
				n, err := base64.StdEncoding.Decode(out, b64)
				if err != nil {
					return false
				}
				req.Chunk = out[:n]
			default:
				return false
			}
			if s.Consume(',') {
				continue
			}
			if s.Consume('}') {
				break
			}
			return false
		}
	}
	return s.End()
}

// decodeResponse fast-decodes a Response body; false means fall back.
func decodeResponse(body []byte, resp *Response) bool {
	s := fastjson.Scanner{Data: body}
	if !s.Consume('{') {
		return false
	}
	if !s.Consume('}') {
		for {
			key, ok := s.StrBytes()
			if !ok || !s.Consume(':') {
				return false
			}
			switch string(key) {
			case "ok":
				v, ok := s.Bool()
				if !ok {
					return false
				}
				resp.OK = v
			case "seq":
				v, ok := s.UInt()
				if !ok {
					return false
				}
				resp.Seq = v
			case "error":
				if !decodeString(&s, &resp.Error) {
					return false
				}
			case "denial":
				if !decodeString(&s, &resp.Denial) {
					return false
				}
			case "denial_code":
				v, ok := s.Int()
				if !ok {
					return false
				}
				resp.DenialCode = v
			case "policy_version":
				v, ok := s.UInt()
				if !ok {
					return false
				}
				resp.PolicyVersion = v
			case "policy_hash":
				if !decodeString(&s, &resp.PolicyHash) {
					return false
				}
			case "cor_id":
				if !decodeString(&s, &resp.CorID) {
					return false
				}
			case "owner":
				if !decodeString(&s, &resp.Owner) {
					return false
				}
			case "shard":
				s.WS()
				start := s.Pos
				if !s.SkipValue() {
					return false
				}
				resp.Shard = append(json.RawMessage(nil), s.Data[start:s.Pos]...)
			case "record":
				b64, ok := s.StrBytes()
				if !ok {
					return false
				}
				out := make([]byte, base64.StdEncoding.DecodedLen(len(b64)))
				n, err := base64.StdEncoding.Decode(out, b64)
				if err != nil {
					return false
				}
				resp.Record = out[:n]
			case "catalog":
				if !s.Consume('[') {
					return false
				}
				if !s.Consume(']') {
					for {
						var e CatalogEntry
						if !decodeCatalogEntry(&s, &e) {
							return false
						}
						resp.Catalog = append(resp.Catalog, e)
						if s.Consume(',') {
							continue
						}
						if s.Consume(']') {
							break
						}
						return false
					}
				}
			case "audit":
				if !s.Consume('[') {
					return false
				}
				if !s.Consume(']') {
					for {
						var e AuditEntry
						if !decodeAuditEntry(&s, &e) {
							return false
						}
						resp.Audit = append(resp.Audit, e)
						if s.Consume(',') {
							continue
						}
						if s.Consume(']') {
							break
						}
						return false
					}
				}
			default:
				return false
			}
			if s.Consume(',') {
				continue
			}
			if s.Consume('}') {
				break
			}
			return false
		}
	}
	return s.End()
}

func decodeCatalogEntry(s *fastjson.Scanner, e *CatalogEntry) bool {
	if !s.Consume('{') {
		return false
	}
	if s.Consume('}') {
		return true
	}
	for {
		key, ok := s.StrBytes()
		if !ok || !s.Consume(':') {
			return false
		}
		switch string(key) {
		case "id":
			if !decodeString(s, &e.ID) {
				return false
			}
		case "placeholder":
			if !decodeString(s, &e.Placeholder) {
				return false
			}
		case "description":
			if !decodeString(s, &e.Description) {
				return false
			}
		case "bit":
			v, ok := s.Int()
			if !ok {
				return false
			}
			e.Bit = v
		case "class":
			if !decodeString(s, &e.Class) {
				return false
			}
		default:
			return false
		}
		if s.Consume(',') {
			continue
		}
		return s.Consume('}')
	}
}

func decodeAuditEntry(s *fastjson.Scanner, e *AuditEntry) bool {
	if !s.Consume('{') {
		return false
	}
	if s.Consume('}') {
		return true
	}
	for {
		key, ok := s.StrBytes()
		if !ok || !s.Consume(':') {
			return false
		}
		switch string(key) {
		case "seq":
			v, ok := s.UInt()
			if !ok {
				return false
			}
			e.Seq = v
		case "time":
			if !decodeString(s, &e.Time) {
				return false
			}
		case "app_hash":
			if !decodeString(s, &e.AppHash) {
				return false
			}
		case "cor_id":
			if !decodeString(s, &e.CorID) {
				return false
			}
		case "device":
			if !decodeString(s, &e.Device) {
				return false
			}
		case "domain":
			if !decodeString(s, &e.Domain) {
				return false
			}
		case "outcome":
			if !decodeString(s, &e.Outcome) {
				return false
			}
		case "detail":
			if !decodeString(s, &e.Detail) {
				return false
			}
		case "device_seq":
			v, ok := s.UInt()
			if !ok {
				return false
			}
			e.DeviceSeq = v
		case "policy_version":
			v, ok := s.UInt()
			if !ok {
				return false
			}
			e.PolicyVersion = v
		case "policy_hash":
			if !decodeString(s, &e.PolicyHash) {
				return false
			}
		default:
			return false
		}
		if s.Consume(',') {
			continue
		}
		return s.Consume('}')
	}
}

func decodeString(s *fastjson.Scanner, dst *string) bool {
	v, ok := s.Str()
	if !ok {
		return false
	}
	*dst = v
	return true
}

func decodeStrings(s *fastjson.Scanner, dst *[]string) bool {
	if !s.Consume('[') {
		return false
	}
	if s.Consume(']') {
		*dst = []string{}
		return true
	}
	for {
		v, ok := s.Str()
		if !ok {
			return false
		}
		*dst = append(*dst, v)
		if s.Consume(',') {
			continue
		}
		return s.Consume(']')
	}
}
