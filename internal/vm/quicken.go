package vm

// quicken builds the fast-path instruction stream for a fast-eligible
// method: a copy of its linked code (so the fused stream inherits the
// link-time resolved operands and owns its own inline-cache slots) with
// the hottest adjacent pairs rewritten into fused superinstructions.
//
// A fused op replaces the FIRST instruction of its pair; the second stays
// in place at its own pc. That keeps the pc↔instruction mapping of the
// original code: a branch into the middle of a pair, a migrate stop, or a
// tracked-loop resume all land on a real (unfused) instruction. The fused
// execution writes every intermediate register effect of its constituents,
// so running the pair as one dispatch or as two singles is
// state-identical; each fused op counts as two executed instructions, and
// the fast loop single-steps the originals when the remaining instruction
// budget cannot fit a whole pair (StopLimit exactness).
//
// Only patterns with no additional failure modes are fused: a const+div
// pair with a zero immediate divisor stays unfused, so every fused arith
// either cannot fault or faults at the same sub-pc as the unfused pair.
func quicken(m *Method) []Instr {
	code := append([]Instr(nil), m.Code...)
	n := len(code)
	used := make([]bool, n) // instruction already consumed by a fusion

	for pc := 0; pc+1 < n; pc++ {
		if used[pc] || used[pc+1] {
			continue
		}
		a, b := &code[pc], &code[pc+1]
		switch {
		// const rK, Imm ; intop rD, rX, rY   →  fConstArith
		case a.Op == OpConst && isIntArith(b.Op):
			if (b.Op == OpDiv || b.Op == OpRem) && divisorMayBeZero(a, b) {
				continue
			}
			code[pc] = Instr{
				Op: fConstArith, A: a.A, Imm: a.Imm,
				B: b.A, C: b.B, Imm3: int64(b.C), Imm2: int64(b.Op),
			}
			used[pc], used[pc+1] = true, true

		// constf rK, F ; floatop rD, rX, rY  →  fConstFArith
		case a.Op == OpConstF && isFloatArith(b.Op):
			code[pc] = Instr{
				Op: fConstFArith, A: a.A, F: a.F,
				B: b.A, C: b.B, Imm3: int64(b.C), Imm2: int64(b.Op),
			}
			used[pc], used[pc+1] = true, true

		// intop rD, rX, rY ; goto L          →  fArithGoto (loop back edge)
		case isIntArith(a.Op) && a.Op != OpDiv && a.Op != OpRem && b.Op == OpGoto:
			code[pc] = Instr{
				Op: fArithGoto, A: a.A, B: a.B, C: a.C,
				Imm2: int64(a.Op), Imm: b.Imm,
			}
			used[pc], used[pc+1] = true, true

		// const rK, Imm ; aput rK, rArr, rIx →  fConstAPut
		case a.Op == OpConst && b.Op == OpAPut && b.A == a.A:
			code[pc] = Instr{
				Op: fConstAPut, A: a.A, Imm2: a.Imm, B: b.B, C: b.C,
			}
			used[pc], used[pc+1] = true, true

		// aget rD, rArr, rIx ; ifnz/ifz rD, L → fAGetBranch
		case a.Op == OpAGet && (b.Op == OpIfNz || b.Op == OpIfZ) && b.B == a.A:
			nz := int64(0)
			if b.Op == OpIfNz {
				nz = 1
			}
			code[pc] = Instr{
				Op: fAGetBranch, A: a.A, B: a.B, C: a.C,
				Imm: b.Imm, Imm2: nz,
			}
			used[pc], used[pc+1] = true, true
		}
	}
	return code
}

func isIntArith(op Op) bool {
	switch op {
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr, OpCmp:
		return true
	}
	return false
}

func isFloatArith(op Op) bool {
	switch op {
	case OpAddF, OpSubF, OpMulF, OpDivF, OpCmpF:
		return true
	}
	return false
}

// divisorMayBeZero reports whether the divisor operand of the arith half
// of a const+div/rem pair could be zero: either it is not the const
// register (runtime value), or the const itself is zero.
func divisorMayBeZero(cst, arith *Instr) bool {
	if arith.C != cst.A {
		return true // divisor is a runtime register
	}
	return cst.Imm == 0
}
