package vm_test

import (
	"strings"
	"testing"

	"tinman/internal/taint"
	"tinman/internal/vm"
	"tinman/internal/vm/asm"
)

const schedSrc = `
class S
  field n
  method count 2 8           ; (shared, iterations): lock-protected adds
    const r2, 0
  loop:
    ifge r2, r1, done
    monenter r0
    iget r3, r0, n
    const r4, 1
    add r3, r3, r4
    iput r3, r0, n
    monexit r0
    add r2, r2, r4
    goto loop
  done:
    iget r5, r0, n
    return r5
  end
  method spin 1 6
    const r1, 0
    const r2, 1
  loop:
    ifge r1, r0, done
    add r1, r1, r2
    goto loop
  done:
    return r1
  end
  method holdForever 1 3
    monenter r0
  loop:
    goto loop
  end
end`

func schedVM(t *testing.T) (*vm.VM, *vm.Program) {
	t.Helper()
	prog, err := asm.Assemble("s", schedSrc)
	if err != nil {
		t.Fatal(err)
	}
	return vm.New(vm.Config{Program: prog, Heap: vm.NewHeap(1, 2), Policy: taint.Off}), prog
}

func TestSchedulerInterleavesThreads(t *testing.T) {
	machine, prog := schedVM(t)
	s := vm.NewScheduler(machine)
	s.Quantum = 100

	a, err := s.Spawn(prog.Method("S", "spin"), vm.IntVal(5000))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Spawn(prog.Method("S", "spin"), vm.IntVal(5000))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if a.State != vm.ThreadFinished || b.State != vm.ThreadFinished {
		t.Fatalf("states: %v %v", a.State, b.State)
	}
	if a.Result.Int != 5000 || b.Result.Int != 5000 {
		t.Fatalf("results: %v %v", a.Result, b.Result)
	}
	// With a 100-instruction quantum, two 5000-iteration loops must have
	// interleaved over many slices.
	if s.Slices < 20 {
		t.Fatalf("slices = %d, want many", s.Slices)
	}
}

func TestSchedulerMonitorMutualExclusion(t *testing.T) {
	machine, prog := schedVM(t)
	s := vm.NewScheduler(machine)
	s.Quantum = 7 // tiny quantum: slices frequently land inside the critical section

	shared := machine.Heap.Alloc(prog.Class("S"))
	shared.Fields[0] = vm.IntVal(0)

	const iters = 500
	t1, _ := s.Spawn(prog.Method("S", "count"), vm.RefVal(shared), vm.IntVal(iters))
	t2, _ := s.Spawn(prog.Method("S", "count"), vm.RefVal(shared), vm.IntVal(iters))
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if t1.Err != nil || t2.Err != nil {
		t.Fatalf("errors: %v %v", t1.Err, t2.Err)
	}
	if got := shared.Fields[0].Int; got != 2*iters {
		t.Fatalf("counter = %d, want %d (mutual exclusion violated or lost updates)", got, 2*iters)
	}
}

func TestSchedulerDeadlockDetected(t *testing.T) {
	machine, prog := schedVM(t)
	s := vm.NewScheduler(machine)
	s.Quantum = 50

	lock := machine.Heap.Alloc(prog.Class("S"))
	// holder grabs the lock and spins forever; waiter blocks on it. Since
	// the holder never finishes, RunAll never returns — so drive steps
	// manually until the waiter blocks, then starve the holder by checking
	// the deadlock detector on a scheduler with only blocked threads.
	holder, _ := s.Spawn(prog.Method("S", "holdForever"), vm.RefVal(lock))
	_ = holder
	waiter, _ := s.Spawn(prog.Method("S", "count"), vm.RefVal(lock), vm.IntVal(1))
	for i := 0; i < 10; i++ {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if waiter.State != vm.ThreadBlocked {
		t.Fatalf("waiter state = %v, want blocked", waiter.State)
	}

	// A scheduler whose only threads are blocked reports the deadlock.
	machine2, prog2 := schedVM(t)
	s2 := vm.NewScheduler(machine2)
	lock2 := machine2.Heap.Alloc(prog2.Class("S"))
	h2, _ := s2.Spawn(prog2.Method("S", "holdForever"), vm.RefVal(lock2))
	w2, _ := s2.Spawn(prog2.Method("S", "count"), vm.RefVal(lock2), vm.IntVal(1))
	s2.Quantum = 10
	// Let h2 take the lock, then let w2 block, then finish h2 artificially.
	s2.Step() // h2 runs, acquires, spins
	s2.Step() // w2 runs, blocks
	if w2.State != vm.ThreadBlocked {
		t.Fatalf("w2 = %v", w2.State)
	}
	h2.State = vm.ThreadFinished // simulate the holder dying without release
	_, err := s2.Step()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

func TestSchedulerMigratedThreadParks(t *testing.T) {
	// A tainted read with a migrating hook parks the thread for the
	// offloading engine to collect.
	src := `
class T
  method touch 1 4
    const r1, 0
    charat r2, r0, r1
    return r2
  end
end`
	prog, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	machine := vm.New(vm.Config{Program: prog, Heap: vm.NewHeap(1, 2), Policy: taint.Asymmetric})
	machine.Hooks.OnTaintedAccess = func(tag taint.Tag, ev taint.Event) bool { return true }
	s := vm.NewScheduler(machine)
	secret := machine.NewTaintedString("secret", taint.Bit(0))
	th, _ := s.Spawn(prog.Method("T", "touch"), vm.RefVal(secret))
	if _, err := s.Step(); err != nil {
		t.Fatal(err)
	}
	if th.State != vm.ThreadMigrated || th.MigrateReason != vm.StopMigrateTaint {
		t.Fatalf("state=%v reason=%v", th.State, th.MigrateReason)
	}
	if err := s.RunAll(); err == nil || !strings.Contains(err.Error(), "parked") {
		t.Fatalf("err = %v, want parked stall", err)
	}
}

func TestSchedulerDetachRestoresHooks(t *testing.T) {
	machine, _ := schedVM(t)
	called := false
	machine.Hooks.OnMonitorEnter = func(o *vm.Object) bool { called = true; return false }
	s := vm.NewScheduler(machine)
	s.Detach()
	obj := machine.Heap.Alloc(machine.ArrayClass())
	if machine.Hooks.OnMonitorEnter(obj) {
		t.Fatal("restored hook misbehaved")
	}
	if !called {
		t.Fatal("original hook not restored")
	}
}

func TestThreadStateStrings(t *testing.T) {
	for _, st := range []vm.ThreadState{vm.ThreadRunnable, vm.ThreadBlocked, vm.ThreadMigrated, vm.ThreadFinished, vm.ThreadState(9)} {
		if st.String() == "" {
			t.Fatal("empty state name")
		}
	}
}
