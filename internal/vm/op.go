package vm

import "fmt"

// Op is a VM opcode. The instruction set is register-based like Dalvik's:
// three register operands (A is usually the destination), an integer
// immediate, a float immediate, and up to two symbol operands.
type Op uint8

const (
	OpNop Op = iota

	// Constants and moves.
	OpConst    // A <- Imm
	OpConstF   // A <- F
	OpConstStr // A <- new String(Sym)
	OpMove     // A <- B (stack-to-stack)

	// Integer arithmetic and bitwise ops: A <- B op C (stack-to-stack).
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpNeg // A <- -B
	OpNot // A <- ^B

	// Float arithmetic: A <- B op C.
	OpAddF
	OpSubF
	OpMulF
	OpDivF
	OpNegF

	// Conversions.
	OpI2F // A <- float(B)
	OpF2I // A <- int(B)

	// Comparison: A <- -1/0/1.
	OpCmp
	OpCmpF

	// Branches: compare B with C (or zero) and jump to Imm.
	OpIfEq
	OpIfNe
	OpIfLt
	OpIfLe
	OpIfGt
	OpIfGe
	OpIfZ  // if B == 0 goto Imm (also: if B is null)
	OpIfNz // if B != 0 goto Imm
	OpGoto // goto Imm

	// Objects and arrays.
	OpNew     // A <- new Sym (class)
	OpNewArr  // A <- new array of length reg B
	OpArrLen  // A <- len(B)
	OpAGet    // A <- B[C] (heap-to-stack)
	OpAPut    // B[C] <- A (stack-to-heap)
	OpIGet    // A <- B.Sym (heap-to-stack)
	OpIPut    // B.Sym <- A (stack-to-heap)
	OpClone   // A <- shallow clone of B (heap-to-heap)
	OpArrCopy // copy min(len) elements from B into A (heap-to-heap)

	// Strings. Strings are immutable heap objects tainted at object
	// granularity.
	OpStrCat   // A <- concat(B, C) (heap-to-heap; unions taints: a derived cor)
	OpStrLen   // A <- len(B) (heap-to-stack)
	OpCharAt   // A <- B[C] (heap-to-stack)
	OpStrEq    // A <- B == C (heap-to-stack on both)
	OpIndexOf  // A <- index of first occurrence of C in B, or -1
	OpSubstr   // A <- B[C:Imm], Imm < 0 meaning "to end" (heap-to-heap)
	OpIntToStr // A <- decimal string of B (stack-to-heap)
	OpStrToInt // A <- integer parsed from B (heap-to-stack)
	OpHash     // A <- hex(sha256(B)) (heap-to-heap; derived value keeps taint)

	// Calls.
	OpInvoke  // A <- Sym2.Sym(Args...) static dispatch
	OpInvokeV // A <- (Args[0]).Sym(Args...) virtual dispatch on receiver class
	OpReturn  // return B
	OpRetVoid // return null

	// Synchronization (happens-before edges for the DSM, §2.4).
	OpMonEnter // lock object B
	OpMonExit  // unlock object B

	// Native bridge.
	OpNative // A <- native Sym(Args...)

	// Taint intrinsics (used by the framework and tests, not by apps).
	OpTaintSet // taint object B with tag bit Imm
	OpTaintGet // A <- tag bits of B as int

	OpHalt // stop the thread, result null

	numOps
)

// Fused superinstructions live in a high opcode range disjoint from the
// architectural set. They exist only in a method's quickened fast-path copy
// (Method.fastCode, built by quicken.go for analysis-proven taint-free
// code): never in Method.Code, never hashed, serialized, assembled, or
// verified. Each fuses two adjacent architectural instructions into one
// dispatch; the original instructions stay in place at their pcs, so a
// branch into the middle of a pair — or the tracked loop resuming there —
// executes the unfused form. All fused ops count as two instructions.
const (
	// fConstArith fuses `const rA, Imm` + an integer/compare op
	// (Op(Imm2)) writing r(B) from r(C) op r(Imm3).
	fConstArith Op = 200 + iota
	// fConstFArith fuses `constf rA, F` + a float op (Op(Imm2)) writing
	// r(B) from r(C) op r(Imm3).
	fConstFArith
	// fArithGoto fuses an integer/compare op (Op(Imm2)) writing rA from
	// rB op rC, + `goto Imm` — the back edge of every counted loop.
	fArithGoto
	// fConstAPut fuses `const rA, Imm2` + `aput rA, rB, rC`.
	fConstAPut
	// fAGetBranch fuses `aget rA, rB, rC` + `ifnz/ifz rA, Imm`
	// (Imm2 = 1 for ifnz, 0 for ifz).
	fAGetBranch
)

var fusedNames = map[Op]string{
	fConstArith: "const+arith", fConstFArith: "constf+arithf",
	fArithGoto: "arith+goto", fConstAPut: "const+aput",
	fAGetBranch: "aget+branch",
}

var opNames = [...]string{
	OpNop: "nop", OpConst: "const", OpConstF: "constf", OpConstStr: "conststr",
	OpMove: "move",
	OpAdd:  "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpNeg: "neg", OpNot: "not",
	OpAddF: "addf", OpSubF: "subf", OpMulF: "mulf", OpDivF: "divf", OpNegF: "negf",
	OpI2F: "i2f", OpF2I: "f2i", OpCmp: "cmp", OpCmpF: "cmpf",
	OpIfEq: "ifeq", OpIfNe: "ifne", OpIfLt: "iflt", OpIfLe: "ifle",
	OpIfGt: "ifgt", OpIfGe: "ifge", OpIfZ: "ifz", OpIfNz: "ifnz", OpGoto: "goto",
	OpNew: "new", OpNewArr: "newarr", OpArrLen: "arrlen",
	OpAGet: "aget", OpAPut: "aput", OpIGet: "iget", OpIPut: "iput",
	OpClone: "clone", OpArrCopy: "arrcopy",
	OpStrCat: "strcat", OpStrLen: "strlen", OpCharAt: "charat", OpStrEq: "streq",
	OpIndexOf: "indexof", OpSubstr: "substr", OpIntToStr: "intostr", OpStrToInt: "strtoint",
	OpHash:   "hash",
	OpInvoke: "invoke", OpInvokeV: "invokev", OpReturn: "return", OpRetVoid: "retvoid",
	OpMonEnter: "monenter", OpMonExit: "monexit",
	OpNative:   "native",
	OpTaintSet: "taintset", OpTaintGet: "taintget",
	OpHalt: "halt",
}

// String returns the mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	if n, ok := fusedNames[o]; ok {
		return n
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// OpByName resolves a mnemonic; the assembler uses it.
func OpByName(name string) (Op, bool) {
	op, ok := opsByName[name]
	return op, ok
}

var opsByName = func() map[string]Op {
	m := make(map[string]Op, int(numOps))
	for i := Op(0); i < numOps; i++ {
		if opNames[i] != "" {
			m[opNames[i]] = i
		}
	}
	return m
}()

// Instr is a decoded instruction.
type Instr struct {
	Op   Op
	A    int     // destination register (or operand, per op)
	B    int     // source register
	C    int     // source register
	Imm  int64   // integer immediate / branch target
	F    float64 // float immediate
	Sym  string  // field / method / native / string-literal symbol
	Sym2 string  // class symbol for invoke
	Args []int   // argument registers for invoke/native

	// Imm2 and Imm3 carry the extra operands of fused superinstructions
	// (the second op's opcode, a register index, or an immediate — see the
	// fused-op constants). Architectural instructions leave them zero.
	Imm2 int64
	Imm3 int64

	// Resolved operands: link-time pre-resolution (Program.Link) plus
	// per-site monomorphic inline caches filled in by the interpreter.
	// Derived state only — never serialized, hashed, or disassembled; the
	// symbolic operands above stay authoritative, and every consumer falls
	// back to them on a cache miss. A VM created with Config.SlowPath
	// ignores these fields entirely (the reference interpreter the
	// differential-equivalence tests compare against).
	//
	// Keying: icClass/icSlot and icClass/icMethod cache per-receiver-class
	// resolution (iget/iput/invokev) and are valid program-wide; icMethod
	// alone is the statically linked invoke target; icVM keys the per-VM
	// caches (icNative, icStr), since natives are registered per VM and
	// interned strings live in a VM's heap. Linked code with warm caches is
	// written to during execution, so a Program must not be executed from
	// multiple goroutines concurrently (the repo never does: each endpoint
	// assembles its own Program and serializes per-app execution).
	icClass  *Class     // receiver class key (iget/iput/invokev); target class (new)
	icSlot   int        // field slot under icClass (iget/iput)
	icMethod *Method    // invokev target under icClass; static invoke target
	icNative *NativeDef // native target, valid while icVM matches
	icStr    *Object    // interned conststr object, valid while icVM matches
	icVM     *VM        // owner of icNative/icStr
}

// String renders the instruction in assembler syntax.
func (in Instr) String() string {
	switch in.Op {
	case OpNop, OpRetVoid, OpHalt:
		return in.Op.String()
	case OpConst:
		return fmt.Sprintf("const r%d, %d", in.A, in.Imm)
	case OpConstF:
		return fmt.Sprintf("constf r%d, %g", in.A, in.F)
	case OpConstStr:
		return fmt.Sprintf("conststr r%d, %q", in.A, in.Sym)
	case OpMove, OpNeg, OpNot, OpNegF, OpI2F, OpF2I, OpArrLen, OpStrLen,
		OpClone, OpIntToStr, OpStrToInt, OpHash, OpNewArr:
		return fmt.Sprintf("%s r%d, r%d", in.Op, in.A, in.B)
	case OpIfZ, OpIfNz:
		return fmt.Sprintf("%s r%d, @%d", in.Op, in.B, in.Imm)
	case OpGoto:
		return fmt.Sprintf("goto @%d", in.Imm)
	case OpIfEq, OpIfNe, OpIfLt, OpIfLe, OpIfGt, OpIfGe:
		return fmt.Sprintf("%s r%d, r%d, @%d", in.Op, in.B, in.C, in.Imm)
	case OpNew:
		return fmt.Sprintf("new r%d, %s", in.A, in.Sym)
	case OpIGet:
		return fmt.Sprintf("iget r%d, r%d.%s", in.A, in.B, in.Sym)
	case OpIPut:
		return fmt.Sprintf("iput r%d.%s, r%d", in.B, in.Sym, in.A)
	case OpInvoke, OpInvokeV:
		return fmt.Sprintf("%s r%d, %s.%s, %v", in.Op, in.A, in.Sym2, in.Sym, in.Args)
	case OpNative:
		return fmt.Sprintf("native r%d, %s, %v", in.A, in.Sym, in.Args)
	case OpReturn:
		return fmt.Sprintf("return r%d", in.B)
	case OpMonEnter, OpMonExit:
		return fmt.Sprintf("%s r%d", in.Op, in.B)
	case OpTaintSet:
		return fmt.Sprintf("taintset r%d, %d", in.B, in.Imm)
	case OpSubstr:
		return fmt.Sprintf("substr r%d, r%d, r%d, %d", in.A, in.B, in.C, in.Imm)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.A, in.B, in.C)
	}
}
