package vm_test

import (
	"testing"

	"tinman/internal/taint"
	"tinman/internal/vm"
	"tinman/internal/vm/asm"
)

// fig10Src reproduces the paper's Figure 10: taint flows heap→stack via
// charAt, stack→stack via a register move, and stack→heap via an iput.
const fig10Src = `
class Fig10
  field data
  method propagate 2 8     ; r0 = passwd (tainted string), r1 = s (object)
    const r2, 0
    charat r3, r0, r2      ; c = passwd.charAt(0)   heap->stack
    move r4, r3            ; d = c                  stack->stack
    iput r4, r1, data      ; s.data = d             stack->heap
    iget r5, r1, data
    return r5
  end
end`

func fig10Setup(t *testing.T, policy taint.Policy, hook func(taint.Tag, taint.Event) bool) (*vm.VM, *vm.Thread) {
	t.Helper()
	prog, err := asm.Assemble("fig10", fig10Src)
	if err != nil {
		t.Fatal(err)
	}
	v := vm.New(vm.Config{Program: prog, Heap: vm.NewHeap(1, 2), Policy: policy, CollectStats: true})
	v.Hooks.OnTaintedAccess = hook
	passwd := v.NewTaintedString("hunter2", taint.Bit(0))
	holder := v.Heap.Alloc(prog.Class("Fig10"))
	th, err := v.NewThread(prog.Method("Fig10", "propagate"), vm.RefVal(passwd), vm.RefVal(holder))
	if err != nil {
		t.Fatal(err)
	}
	return v, th
}

func TestFullPolicyPropagatesFig10Chain(t *testing.T) {
	// The trusted node's configuration: no offload hook, full propagation.
	v, th := fig10Setup(t, taint.Full, nil)
	stop, err := th.Run()
	if err != nil || stop != vm.StopDone {
		t.Fatalf("stop=%v err=%v", stop, err)
	}
	if !th.Result.Tag.Has(taint.Bit(0)) {
		t.Fatal("taint lost along heap->stack->stack->heap->stack chain under Full policy")
	}
	c := &v.Counters
	if c.ByEvent[taint.HeapToStack] == 0 || c.ByEvent[taint.StackToStack] == 0 || c.ByEvent[taint.StackToHeap] == 0 {
		t.Fatalf("expected all classes counted, got %v", c)
	}
}

func TestAsymmetricPolicyTriggersOffloadAtHeapToStack(t *testing.T) {
	// The device's configuration: tainted heap→stack fires the hook before
	// the datum lands in a register.
	var gotTag taint.Tag
	var gotEv taint.Event
	_, th := fig10Setup(t, taint.Asymmetric, func(tag taint.Tag, ev taint.Event) bool {
		gotTag, gotEv = tag, ev
		return true
	})
	stop, err := th.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stop != vm.StopMigrateTaint {
		t.Fatalf("stop = %v, want migrate-taint", stop)
	}
	if !gotTag.Has(taint.Bit(0)) || gotEv != taint.HeapToStack {
		t.Fatalf("hook saw tag=%v ev=%v", gotTag, gotEv)
	}
	// PC must still point at the charat so the trusted node re-executes it.
	f := th.Top()
	if f.Method.Code[f.PC].Op != vm.OpCharAt {
		t.Fatalf("stopped at %v, want charat", f.Method.Code[f.PC].Op)
	}
	// No tainted datum may be present in any register: the defining
	// guarantee — plaintext-derived data never reaches the device stack.
	for _, fr := range th.Frames {
		for i, r := range fr.Regs {
			if r.Kind != vm.KindRef && !fr.Tag(i).Empty() {
				t.Fatalf("tainted primitive in r%d after migrate stop", i)
			}
		}
	}
}

func TestOffPolicyDropsTaint(t *testing.T) {
	_, th := fig10Setup(t, taint.Off, nil)
	stop, err := th.Run()
	if err != nil || stop != vm.StopDone {
		t.Fatalf("stop=%v err=%v", stop, err)
	}
	if !th.Result.Tag.Empty() {
		t.Fatal("Off policy must not propagate taint")
	}
}

// fig11Src reproduces Figure 11: concatenating a tainted password into an
// HTTP request is a heap→heap combination producing a derived cor.
const fig11Src = `
class Fig11
  method send 2 8          ; r0 = user, r1 = passwd (tainted)
    conststr r2, "username="
    strcat r3, r2, r0
    conststr r4, "&passwd="
    strcat r5, r3, r4
    strcat r6, r5, r1      ; tainted concat: derived cor (migrate point)
    return r6
  end
end`

func TestTaintedConcatCreatesDerivedCor(t *testing.T) {
	prog, err := asm.Assemble("fig11", fig11Src)
	if err != nil {
		t.Fatal(err)
	}
	// Trusted-node side: propagate and verify the derived string carries
	// the union of taints.
	v := vm.New(vm.Config{Program: prog, Heap: vm.NewHeap(2, 2), Policy: taint.Full})
	user := v.NewString("alice")
	passwd := v.NewTaintedString("hunter2", taint.Bit(3))
	th, _ := v.NewThread(prog.Method("Fig11", "send"), vm.RefVal(user), vm.RefVal(passwd))
	stop, err := th.Run()
	if err != nil || stop != vm.StopDone {
		t.Fatalf("stop=%v err=%v", stop, err)
	}
	res := th.Result.Ref
	if res.Str != "username=alice&passwd=hunter2" {
		t.Fatalf("request = %q", res.Str)
	}
	if !res.Tag.Has(taint.Bit(3)) {
		t.Fatal("derived request string lost the cor taint")
	}
}

func TestTaintedConcatTriggersOffloadOnDevice(t *testing.T) {
	prog, _ := asm.Assemble("fig11", fig11Src)
	v := vm.New(vm.Config{Program: prog, Heap: vm.NewHeap(1, 2), Policy: taint.Asymmetric})
	triggered := 0
	v.Hooks.OnTaintedAccess = func(tag taint.Tag, ev taint.Event) bool {
		triggered++
		if ev != taint.HeapToHeap {
			t.Fatalf("trigger event = %v, want heap-to-heap", ev)
		}
		return true
	}
	user := v.NewString("alice")
	passwd := v.NewTaintedString("PLACEHOLDER", taint.Bit(3))
	th, _ := v.NewThread(prog.Method("Fig11", "send"), vm.RefVal(user), vm.RefVal(passwd))
	stop, err := th.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stop != vm.StopMigrateTaint || triggered != 1 {
		t.Fatalf("stop=%v triggered=%d, want migrate-taint once", stop, triggered)
	}
	// Untainted concats before the trigger must not fire the hook.
	f := th.Top()
	if f.Method.Code[f.PC].Op != vm.OpStrCat {
		t.Fatalf("stopped at %v", f.Method.Code[f.PC].Op)
	}
}

func TestReferenceCopyDoesNotPropagate(t *testing.T) {
	// §3.5: "a reference of a tainted object is not tainted itself" —
	// copying a reference is not a taint event and must not trigger.
	src := `
class R
  field slot
  method go 2 6            ; r0 = holder, r1 = tainted string
    iput r1, r0, slot      ; store reference (stack->heap of a ref)
    iget r2, r0, slot      ; load reference back (heap->stack of a ref)
    move r3, r2            ; copy reference
    return r3
  end
end`
	prog, _ := asm.Assemble("r", src)
	v := vm.New(vm.Config{Program: prog, Heap: vm.NewHeap(1, 2), Policy: taint.Asymmetric})
	fired := false
	v.Hooks.OnTaintedAccess = func(tag taint.Tag, ev taint.Event) bool { fired = true; return true }
	holder := v.Heap.Alloc(prog.Class("R"))
	secret := v.NewTaintedString("xyz", taint.Bit(1))
	th, _ := v.NewThread(prog.Method("R", "go"), vm.RefVal(holder), vm.RefVal(secret))
	stop, err := th.Run()
	if err != nil || stop != vm.StopDone {
		t.Fatalf("stop=%v err=%v", stop, err)
	}
	if fired {
		t.Fatal("reference copies must not trigger offloading")
	}
	// The returned reference still points at the tainted object: object
	// granularity is preserved.
	if got := th.Result.Ref; got == nil || !got.Tag.Has(taint.Bit(1)) {
		t.Fatalf("object tag lost: %v", th.Result)
	}
}

func TestCharAtOnTaintedStringTriggers(t *testing.T) {
	// Reading *content* of the tainted string (vs. its reference) triggers.
	src := `
class R
  method go 1 4
    const r1, 0
    charat r2, r0, r1
    return r2
  end
end`
	prog, _ := asm.Assemble("r", src)
	v := vm.New(vm.Config{Program: prog, Heap: vm.NewHeap(1, 2), Policy: taint.Asymmetric})
	v.Hooks.OnTaintedAccess = func(tag taint.Tag, ev taint.Event) bool { return true }
	secret := v.NewTaintedString("xyz", taint.Bit(1))
	th, _ := v.NewThread(prog.Method("R", "go"), vm.RefVal(secret))
	stop, err := th.Run()
	if err != nil || stop != vm.StopMigrateTaint {
		t.Fatalf("stop=%v err=%v, want migrate-taint", stop, err)
	}
}

func TestHashPreservesTaint(t *testing.T) {
	// §4.1: "the tainting mechanism on the trusted node ensures that the
	// hash value is a new cor."
	src := `
class H
  method go 1 3
    hash r1, r0
    return r1
  end
end`
	prog, _ := asm.Assemble("h", src)
	v := vm.New(vm.Config{Program: prog, Heap: vm.NewHeap(2, 2), Policy: taint.Full})
	secret := v.NewTaintedString("pw", taint.Bit(7))
	th, _ := v.NewThread(prog.Method("H", "go"), vm.RefVal(secret))
	if _, err := th.Run(); err != nil {
		t.Fatal(err)
	}
	if !th.Result.Ref.Tag.Has(taint.Bit(7)) {
		t.Fatal("hash of a cor must itself be tainted (derived cor)")
	}
}

func TestCloneTriggersAndPropagates(t *testing.T) {
	src := `
class C
  method go 1 3
    clone r1, r0
    return r1
  end
end`
	prog, _ := asm.Assemble("c", src)

	// Node side: clone of tainted string keeps the tag.
	v := vm.New(vm.Config{Program: prog, Heap: vm.NewHeap(2, 2), Policy: taint.Full})
	secret := v.NewTaintedString("pw", taint.Bit(2))
	th, _ := v.NewThread(prog.Method("C", "go"), vm.RefVal(secret))
	if _, err := th.Run(); err != nil {
		t.Fatal(err)
	}
	if !th.Result.Ref.Tag.Has(taint.Bit(2)) {
		t.Fatal("clone lost object taint under Full policy")
	}

	// Device side: clone of a tainted object triggers offload.
	vd := vm.New(vm.Config{Program: prog, Heap: vm.NewHeap(1, 2), Policy: taint.Asymmetric})
	vd.Hooks.OnTaintedAccess = func(tag taint.Tag, ev taint.Event) bool { return ev == taint.HeapToHeap }
	sd := vd.NewTaintedString("PLACEHOLDER", taint.Bit(2))
	thd, _ := vd.NewThread(prog.Method("C", "go"), vm.RefVal(sd))
	stop, err := thd.Run()
	if err != nil || stop != vm.StopMigrateTaint {
		t.Fatalf("device clone: stop=%v err=%v", stop, err)
	}
}

func TestCorIdleWindowStopsNode(t *testing.T) {
	// The trusted node migrates the thread back after a cor-idle stretch.
	src := `
class C
  method go 1 6
    const r1, 0
    charat r2, r0, r1      ; touch the cor once
    const r3, 0
    const r4, 100000
  loop:
    ifge r3, r4, done
    const r5, 1
    add r3, r3, r5
    goto loop
  done:
    return r3
  end
end`
	prog, _ := asm.Assemble("c", src)
	v := vm.New(vm.Config{Program: prog, Heap: vm.NewHeap(2, 2), Policy: taint.Full, CorIdleWindow: 500})
	secret := v.NewTaintedString("pw", taint.Bit(0))
	th, _ := v.NewThread(prog.Method("C", "go"), vm.RefVal(secret))
	stop, err := th.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stop != vm.StopMigrateIdle {
		t.Fatalf("stop = %v, want migrate-idle", stop)
	}
	// Resuming runs another window's worth before stopping again.
	stop, err = th.Run()
	if err != nil || stop != vm.StopMigrateIdle {
		t.Fatalf("resume stop = %v err=%v", stop, err)
	}
}

func TestSubstringOfTaintedStaysTainted(t *testing.T) {
	src := `
class S
  method go 1 4
    const r1, 0
    substr r2, r0, r1, 3
    return r2
  end
end`
	prog, _ := asm.Assemble("s", src)
	v := vm.New(vm.Config{Program: prog, Heap: vm.NewHeap(2, 2), Policy: taint.Full})
	secret := v.NewTaintedString("secret", taint.Bit(4))
	th, _ := v.NewThread(prog.Method("S", "go"), vm.RefVal(secret))
	if _, err := th.Run(); err != nil {
		t.Fatal(err)
	}
	if th.Result.Ref.Str != "sec" || !th.Result.Ref.Tag.Has(taint.Bit(4)) {
		t.Fatalf("substr = %q tag=%v", th.Result.Ref.Str, th.Result.Ref.Tag)
	}
}

func TestStackToStackDominatesInComputeKernels(t *testing.T) {
	// The observation motivating asymmetric tainting: stack-to-stack events
	// dominate typical compute, so skipping them saves the most.
	src := `
class K
  method go 0 6
    const r0, 0
    const r1, 0
    const r2, 10000
  loop:
    ifge r1, r2, done
    add r0, r0, r1
    const r3, 1
    add r1, r1, r3
    goto loop
  done:
    return r0
  end
end`
	prog, _ := asm.Assemble("k", src)
	v := vm.New(vm.Config{Program: prog, Heap: vm.NewHeap(1, 2), Policy: taint.Full, CollectStats: true})
	th, _ := v.NewThread(prog.Method("K", "go"))
	if _, err := th.Run(); err != nil {
		t.Fatal(err)
	}
	c := &v.Counters
	s2s := c.ByEvent[taint.StackToStack]
	others := c.ByEvent[taint.HeapToHeap] + c.ByEvent[taint.HeapToStack] + c.ByEvent[taint.StackToHeap]
	if s2s <= others*10 {
		t.Fatalf("expected stack-to-stack to dominate: s2s=%d others=%d", s2s, others)
	}
}
