// Package vm implements a register-based mini virtual machine in the mold of
// Dalvik: a heap of class instances, arrays and strings, and per-frame
// registers holding primitive values or references. It is the substrate on
// which TinMan's asymmetric taint tracking (internal/taint) and COMET-style
// offloading (internal/dsm) operate.
//
// The VM deliberately mirrors the structural property the paper's
// optimization relies on (§3.5): data can only be computed on after moving
// from the heap into a register (heap→stack), so instrumenting that single
// boundary suffices to intercept every first touch of tainted data.
package vm

import (
	"fmt"

	"tinman/internal/taint"
)

// Kind discriminates the representation of a Value.
type Kind uint8

const (
	// KindInvalid is the zero Value; reading one is a VM bug in the program.
	KindInvalid Kind = iota
	// KindInt is a 64-bit integer (also used for booleans and chars).
	KindInt
	// KindFloat is a 64-bit float.
	KindFloat
	// KindRef is a reference to a heap object (possibly nil).
	KindRef
)

func (k Kind) String() string {
	switch k {
	case KindInvalid:
		return "invalid"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindRef:
		return "ref"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is a register or field slot. Like Dalvik registers extended by
// TaintDroid, every slot carries a taint tag adjacent to its datum.
type Value struct {
	Kind  Kind
	Int   int64
	Float float64
	Ref   *Object
	Tag   taint.Tag
}

// IntVal constructs an integer value.
func IntVal(i int64) Value { return Value{Kind: KindInt, Int: i} }

// FloatVal constructs a float value.
func FloatVal(f float64) Value { return Value{Kind: KindFloat, Float: f} }

// RefVal constructs a reference value. A nil object is the VM's null.
func RefVal(o *Object) Value { return Value{Kind: KindRef, Ref: o} }

// NullVal is the null reference.
func NullVal() Value { return Value{Kind: KindRef} }

// IsNull reports whether v is a nil reference.
func (v Value) IsNull() bool { return v.Kind == KindRef && v.Ref == nil }

// Tainted reports whether the value carries any taint, including (for
// references) the referenced object's own tag. Note the paper's subtlety: a
// *copy of a reference* to a tainted object is itself untainted — the object
// carries the tag — so plain reference moves never propagate taint (§3.5).
func (v Value) Tainted() bool { return !v.Tag.Empty() }

// EffectiveTag returns the taint observable when the value's datum is read:
// the slot tag, unioned with the object tag when dereferencing a string or
// array whose content is tainted at object granularity.
func (v Value) EffectiveTag() taint.Tag {
	t := v.Tag
	if v.Kind == KindRef && v.Ref != nil {
		t = t.Union(v.Ref.Tag)
	}
	return t
}

// String renders the value for diagnostics.
func (v Value) String() string {
	switch v.Kind {
	case KindInt:
		return fmt.Sprintf("int(%d)%s", v.Int, tagSuffix(v.Tag))
	case KindFloat:
		return fmt.Sprintf("float(%g)%s", v.Float, tagSuffix(v.Tag))
	case KindRef:
		if v.Ref == nil {
			return "null"
		}
		return fmt.Sprintf("ref(#%d %s)%s", v.Ref.ID, v.Ref.Class.Name, tagSuffix(v.Tag))
	}
	return "invalid"
}

func tagSuffix(t taint.Tag) string {
	if t.Empty() {
		return ""
	}
	return "!" + t.String()
}
