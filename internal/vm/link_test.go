package vm

import (
	"testing"

	"tinman/internal/taint"
)

// linkFixture builds, by hand, a program exercising every cached site kind:
// static invokes, virtual dispatch, field access with conflicting slot
// layouts, conststr, new, and a native call.
func linkFixture() *Program {
	p := NewProgram("linkfix")

	// Two classes declaring a field of the same name at different slots, so
	// a shared accessor's inline cache must re-key when the receiver class
	// changes.
	a := NewClass("A", "x", "y")
	b := NewClass("B", "y")
	a.AddMethod(&Method{Name: "tagof", NArgs: 1, NRegs: 3, Code: []Instr{
		{Op: OpConst, A: 1, Imm: 10},
		{Op: OpReturn, B: 1},
	}})
	b.AddMethod(&Method{Name: "tagof", NArgs: 1, NRegs: 3, Code: []Instr{
		{Op: OpConst, A: 1, Imm: 20},
		{Op: OpReturn, B: 1},
	}})
	p.AddClass(a)
	p.AddClass(b)

	driver := NewClass("Driver")
	// getY(recv) -> recv.y
	driver.AddMethod(&Method{Name: "getY", NArgs: 1, NRegs: 3, Code: []Instr{
		{Op: OpIGet, A: 1, B: 0, Sym: "y"},
		{Op: OpReturn, B: 1},
	}})
	// setY(recv, v) -> recv.y = v
	driver.AddMethod(&Method{Name: "setY", NArgs: 2, NRegs: 3, Code: []Instr{
		{Op: OpIPut, A: 1, B: 0, Sym: "y"},
		{Op: OpRetVoid},
	}})
	// virt(recv) -> recv.tagof()
	driver.AddMethod(&Method{Name: "virt", NArgs: 1, NRegs: 3, Code: []Instr{
		{Op: OpInvokeV, A: 1, Sym: "tagof", Args: []int{0}},
		{Op: OpReturn, B: 1},
	}})
	// lit() -> "hello"
	driver.AddMethod(&Method{Name: "lit", NArgs: 0, NRegs: 2, Code: []Instr{
		{Op: OpConstStr, A: 1, Sym: "hello"},
		{Op: OpReturn, B: 1},
	}})
	// mk() -> new A
	driver.AddMethod(&Method{Name: "mk", NArgs: 0, NRegs: 2, Code: []Instr{
		{Op: OpNew, A: 1, Sym: "A"},
		{Op: OpReturn, B: 1},
	}})
	// mkstr() -> new java/lang/String (a built-in: must stay symbolic)
	driver.AddMethod(&Method{Name: "mkstr", NArgs: 0, NRegs: 2, Code: []Instr{
		{Op: OpNew, A: 1, Sym: "java/lang/String"},
		{Op: OpReturn, B: 1},
	}})
	// call() -> Driver.lit() via static invoke
	driver.AddMethod(&Method{Name: "call", NArgs: 0, NRegs: 2, Code: []Instr{
		{Op: OpInvoke, A: 1, Sym: "lit", Sym2: "Driver", Args: nil},
		{Op: OpReturn, B: 1},
	}})
	// ping() -> native echo()
	driver.AddMethod(&Method{Name: "ping", NArgs: 0, NRegs: 2, Code: []Instr{
		{Op: OpNative, A: 1, Sym: "echo"},
		{Op: OpReturn, B: 1},
	}})
	p.AddClass(driver)
	p.Seal()
	return p
}

// TestLinkIsInvisible pins that linking changes nothing observable about a
// program: same hash, same disassembly, and idempotent.
func TestLinkIsInvisible(t *testing.T) {
	p := linkFixture()
	hashBefore := p.Hash()
	disBefore := p.Disassemble()
	if p.Linked() {
		t.Fatal("program linked before Link")
	}
	p.Link()
	if !p.Linked() {
		t.Fatal("Linked() false after Link")
	}
	p.Link() // idempotent
	if got := p.Hash(); got != hashBefore {
		t.Errorf("Link changed the program hash: %s -> %s", hashBefore, got)
	}
	if got := p.Disassemble(); got != disBefore {
		t.Errorf("Link changed the disassembly:\nbefore:\n%s\nafter:\n%s", disBefore, got)
	}
}

// TestLinkResolvesStaticOperands checks the link-time side: static invoke
// targets and program-class new operands resolve; built-in classes stay
// symbolic (they are per-VM objects).
func TestLinkResolvesStaticOperands(t *testing.T) {
	p := linkFixture()
	p.Link()
	call := p.Method("Driver", "call")
	if got, want := call.Code[0].icMethod, p.Method("Driver", "lit"); got != want {
		t.Errorf("invoke target not linked: got %v, want %v", got, want)
	}
	mk := p.Method("Driver", "mk")
	if got, want := mk.Code[0].icClass, p.Class("A"); got != want {
		t.Errorf("new operand not linked: got %v, want %v", got, want)
	}
	mkstr := p.Method("Driver", "mkstr")
	if got := mkstr.Code[0].icClass; got != nil {
		t.Errorf("built-in new operand must stay symbolic, got %v", got)
	}
}

func runMethod(t *testing.T, v *VM, class, method string, args ...Value) Value {
	t.Helper()
	th, err := v.NewThread(v.Program.Method(class, method), args...)
	if err != nil {
		t.Fatal(err)
	}
	stop, err := th.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stop != StopDone {
		t.Fatalf("stop = %v", stop)
	}
	return th.Result
}

func newLinkVM(t *testing.T, p *Program, policy taint.Policy) *VM {
	t.Helper()
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	return New(Config{Program: p, Heap: NewHeap(1, 2), Policy: policy})
}

// TestInlineCachePolymorphicField drives one field site with receivers whose
// layouts put the same field name at different slots: the cache must re-key,
// never serve a stale slot.
func TestInlineCachePolymorphicField(t *testing.T) {
	p := linkFixture()
	v := newLinkVM(t, p, taint.Full)
	oa := v.Heap.Alloc(p.Class("A")) // y at slot 1
	ob := v.Heap.Alloc(p.Class("B")) // y at slot 0
	oa.Fields[0] = IntVal(91)        // A.x — the stale-slot canary
	oa.Fields[1] = IntVal(11)        // A.y
	ob.Fields[0] = IntVal(22)        // B.y

	// Alternate receivers so every call after the first is a cache miss.
	for i := 0; i < 3; i++ {
		if got := runMethod(t, v, "Driver", "getY", RefVal(oa)).Int; got != 11 {
			t.Fatalf("round %d: A.y = %d, want 11", i, got)
		}
		if got := runMethod(t, v, "Driver", "getY", RefVal(ob)).Int; got != 22 {
			t.Fatalf("round %d: B.y = %d, want 22", i, got)
		}
	}
	// Same for the write site.
	runMethod(t, v, "Driver", "setY", RefVal(oa), IntVal(110))
	runMethod(t, v, "Driver", "setY", RefVal(ob), IntVal(220))
	if oa.Fields[1].Int != 110 || oa.Fields[0].Int != 91 {
		t.Errorf("A after setY: x=%d y=%d, want x=91 y=110", oa.Fields[0].Int, oa.Fields[1].Int)
	}
	if ob.Fields[0].Int != 220 {
		t.Errorf("B.y after setY = %d, want 220", ob.Fields[0].Int)
	}
}

// TestInlineCacheVirtualDispatch alternates receiver classes on one invokev
// site.
func TestInlineCacheVirtualDispatch(t *testing.T) {
	p := linkFixture()
	v := newLinkVM(t, p, taint.Off)
	oa := v.Heap.Alloc(p.Class("A"))
	ob := v.Heap.Alloc(p.Class("B"))
	for i := 0; i < 3; i++ {
		if got := runMethod(t, v, "Driver", "virt", RefVal(oa)).Int; got != 10 {
			t.Fatalf("round %d: A.tagof = %d, want 10", i, got)
		}
		if got := runMethod(t, v, "Driver", "virt", RefVal(ob)).Int; got != 20 {
			t.Fatalf("round %d: B.tagof = %d, want 20", i, got)
		}
	}
}

// TestConstStrCopyOnTaint pins the interning contract: the site reuses one
// untainted object, but once that object is tainted (a taintset, a DSM
// sync-back) the site must hand out a fresh untainted copy, never the
// tainted one.
func TestConstStrCopyOnTaint(t *testing.T) {
	p := linkFixture()
	v := newLinkVM(t, p, taint.Full)

	first := runMethod(t, v, "Driver", "lit").Ref
	if first == nil || first.Str != "hello" || first.Tag != taint.None {
		t.Fatalf("first lit() = %+v", first)
	}
	second := runMethod(t, v, "Driver", "lit").Ref
	if second != first {
		t.Fatalf("untainted literal not reused: %p vs %p", second, first)
	}

	// Taint the interned object behind the VM's back.
	first.Tag = taint.Bit(2)
	third := runMethod(t, v, "Driver", "lit").Ref
	if third == first {
		t.Fatal("site returned the tainted interned object")
	}
	if third.Str != "hello" || third.Tag != taint.None {
		t.Fatalf("copy-on-taint produced %+v", third)
	}
	// The fresh copy becomes the new interned object.
	if fourth := runMethod(t, v, "Driver", "lit").Ref; fourth != third {
		t.Fatalf("fresh literal not re-interned: %p vs %p", fourth, third)
	}
}

// TestPerVMCaches runs one linked program on two VMs with different native
// tables and heaps: the per-VM cache entries (natives, interned literals)
// must never leak across VM instances.
func TestPerVMCaches(t *testing.T) {
	p := linkFixture()
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	mk := func(reply string) *VM {
		v := New(Config{Program: p, Heap: NewHeap(1, 2), Policy: taint.Off})
		v.RegisterNative(&NativeDef{Name: "echo", Fn: func(th *Thread, args []Value) (Value, error) {
			return RefVal(th.VM.NewString(reply)), nil
		}})
		return v
	}
	v1, v2 := mk("one"), mk("two")
	for i := 0; i < 2; i++ {
		if got := runMethod(t, v1, "Driver", "ping").Ref.Str; got != "one" {
			t.Fatalf("round %d: vm1 ping = %q", i, got)
		}
		if got := runMethod(t, v2, "Driver", "ping").Ref.Str; got != "two" {
			t.Fatalf("round %d: vm2 ping = %q", i, got)
		}
		lit1 := runMethod(t, v1, "Driver", "lit").Ref
		lit2 := runMethod(t, v2, "Driver", "lit").Ref
		if lit1 == lit2 {
			t.Fatalf("round %d: interned literal shared across VMs", i)
		}
		if v1.Heap.Get(lit2.ID) == lit2 || v2.Heap.Get(lit1.ID) == lit1 {
			t.Fatalf("round %d: literal installed in the wrong heap", i)
		}
	}
}

// TestFramePoolZeroing pins the pooled-frame contract: a reused frame reads
// exactly like a fresh one — registers int(0), shadow tags None — even when
// the previous occupant left residue.
func TestFramePoolZeroing(t *testing.T) {
	p := NewProgram("pool")
	c := NewClass("C")
	// dirty() leaves residue behind: a tainted register (r1, via move from
	// the tainted argument) and a non-zero value (r2).
	c.AddMethod(&Method{Name: "dirty", NArgs: 1, NRegs: 4, Code: []Instr{
		{Op: OpMove, A: 1, B: 0},
		{Op: OpConst, A: 2, Imm: 98},
		{Op: OpHash, A: 3, B: 0},
		{Op: OpRetVoid},
	}})
	// clean() returns r1 + r2 without ever writing them: must be 0.
	c.AddMethod(&Method{Name: "clean", NArgs: 0, NRegs: 4, Code: []Instr{
		{Op: OpAdd, A: 3, B: 1, C: 2},
		{Op: OpReturn, B: 3},
	}})
	c.AddMethod(&Method{Name: "main", NArgs: 1, NRegs: 4, Code: []Instr{
		{Op: OpInvoke, A: 1, Sym: "dirty", Sym2: "C", Args: []int{0}},
		{Op: OpInvoke, A: 2, Sym: "clean", Sym2: "C", Args: nil},
		{Op: OpReturn, B: 2},
	}})
	p.AddClass(c)
	p.Seal()

	for _, pol := range []taint.Policy{taint.Off, taint.Full} {
		v := newLinkVM(t, p, pol)
		arg := RefVal(v.NewTaintedString("secret", taint.Bit(1)))
		arg.Tag = taint.Bit(1)
		res := runMethod(t, v, "C", "main", arg)
		if res.Int != 0 {
			t.Errorf("%s: reused frame leaked register residue: %d", pol.Name(), res.Int)
		}
		if res.Tag != taint.None {
			t.Errorf("%s: reused frame leaked tag residue: %v", pol.Name(), res.Tag)
		}
	}
}
