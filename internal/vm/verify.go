package vm

import (
	"fmt"
)

// VerifyError reports a static verification failure.
type VerifyError struct {
	Method string
	PC     int
	Msg    string
}

func (e *VerifyError) Error() string {
	return fmt.Sprintf("vm: verify: %s@%d: %s", e.Method, e.PC, e.Msg)
}

// Verify statically checks every method of a sealed program: register
// operands within the frame, branch targets in range, invoke arity against
// statically resolvable targets, and a terminated final instruction. The
// trusted node verifies programs at install time — running unverifiable
// migrated code would be an easy way to crash the vault's VM.
func (p *Program) Verify() error {
	for _, c := range p.Classes() {
		for _, m := range c.Methods {
			if err := p.verifyMethod(m); err != nil {
				return err
			}
		}
	}
	// A verified program is about to be executed: pre-resolve its static
	// operands so the interpreter's fast paths apply (see link.go), then run
	// the taint pre-analysis so provably taint-free code gets the
	// uninstrumented fast-path loop (see taintflow.go).
	p.Link()
	p.Analyze()
	return nil
}

func (p *Program) verifyMethod(m *Method) error {
	name := m.FullName()
	fail := func(pc int, format string, args ...any) error {
		return &VerifyError{Method: name, PC: pc, Msg: fmt.Sprintf(format, args...)}
	}
	if len(m.Code) == 0 {
		return fail(0, "empty body")
	}
	if m.NArgs > m.NRegs {
		return fail(0, "%d args exceed %d registers", m.NArgs, m.NRegs)
	}

	checkReg := func(pc, r int) error {
		if r < 0 || r >= m.NRegs {
			return fail(pc, "register r%d out of range [0,%d)", r, m.NRegs)
		}
		return nil
	}
	checkBranch := func(pc int, target int64) error {
		if target < 0 || target >= int64(len(m.Code)) {
			return fail(pc, "branch target %d out of range [0,%d)", target, len(m.Code))
		}
		return nil
	}

	for pc := range m.Code {
		in := &m.Code[pc]
		var regs []int
		var branch bool

		switch in.Op {
		case OpNop, OpRetVoid, OpHalt:
		case OpConst, OpConstF, OpConstStr:
			regs = []int{in.A}
		case OpMove, OpNeg, OpNot, OpNegF, OpI2F, OpF2I, OpNewArr, OpArrLen,
			OpClone, OpArrCopy, OpStrLen, OpIntToStr, OpStrToInt, OpHash, OpTaintGet:
			regs = []int{in.A, in.B}
		case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl,
			OpShr, OpAddF, OpSubF, OpMulF, OpDivF, OpCmp, OpCmpF, OpAGet,
			OpAPut, OpStrCat, OpCharAt, OpStrEq, OpIndexOf:
			regs = []int{in.A, in.B, in.C}
		case OpSubstr:
			regs = []int{in.A, in.B, in.C}
		case OpIfEq, OpIfNe, OpIfLt, OpIfLe, OpIfGt, OpIfGe:
			regs = []int{in.B, in.C}
			branch = true
		case OpIfZ, OpIfNz:
			regs = []int{in.B}
			branch = true
		case OpGoto:
			branch = true
		case OpNew:
			regs = []int{in.A}
			if in.Sym == "" {
				return fail(pc, "new without class symbol")
			}
		case OpIGet, OpIPut:
			regs = []int{in.A, in.B}
			if in.Sym == "" {
				return fail(pc, "%v without field symbol", in.Op)
			}
		case OpInvoke:
			regs = append([]int{in.A}, in.Args...)
			if in.Sym == "" || in.Sym2 == "" {
				return fail(pc, "invoke without target symbol")
			}
			// Static targets are resolvable now; arity must match.
			if target := p.Method(in.Sym2, in.Sym); target != nil {
				if len(in.Args) != target.NArgs {
					return fail(pc, "invoke %s.%s with %d args, target takes %d",
						in.Sym2, in.Sym, len(in.Args), target.NArgs)
				}
			} else {
				return fail(pc, "invoke of unknown method %s.%s", in.Sym2, in.Sym)
			}
		case OpInvokeV:
			regs = append([]int{in.A}, in.Args...)
			if in.Sym == "" {
				return fail(pc, "invokev without method symbol")
			}
			if len(in.Args) == 0 {
				return fail(pc, "invokev without receiver")
			}
		case OpNative:
			regs = append([]int{in.A}, in.Args...)
			if in.Sym == "" {
				return fail(pc, "native without symbol")
			}
		case OpReturn, OpMonEnter, OpMonExit, OpTaintSet:
			regs = []int{in.B}
		default:
			return fail(pc, "unknown opcode %d", uint8(in.Op))
		}

		for _, r := range regs {
			if err := checkReg(pc, r); err != nil {
				return err
			}
		}
		if branch {
			if err := checkBranch(pc, in.Imm); err != nil {
				return err
			}
		}
	}

	// The final instruction must not fall off the end of the method.
	last := m.Code[len(m.Code)-1]
	switch last.Op {
	case OpReturn, OpRetVoid, OpHalt, OpGoto:
	default:
		return fail(len(m.Code)-1, "method may fall off its end (last op %v)", last.Op)
	}
	return nil
}
