package vm

// Link pre-resolves instruction operands that are static properties of the
// program, so the interpreter's hot loop never repeats the lookup:
//
//   - invoke targets (Class.method) become direct *Method pointers;
//   - new operands become direct *Class pointers (program classes only —
//     the built-in string/array classes are per-VM and stay symbolic).
//
// Operands that depend on runtime state — the receiver class of an
// iget/iput/invokev, the VM-registered native table, the heap-interned
// conststr object — are instead resolved by per-site monomorphic inline
// caches that the interpreter fills in on first execution (see interp.go).
//
// Link runs once per method at load time: Verify calls it after a program
// passes, so every assembled program is linked, and it is idempotent. It is
// purely an acceleration: an unlinked program executes identically through
// the symbolic fallback paths, which is what the differential-equivalence
// tests pin (vm.Config.SlowPath forces those paths).
func (p *Program) Link() {
	if p.linked {
		return
	}
	p.linked = true
	for _, c := range p.classes {
		for _, m := range c.Methods {
			p.linkMethod(m)
		}
	}
}

// Linked reports whether Link has run.
func (p *Program) Linked() bool { return p.linked }

func (p *Program) linkMethod(m *Method) {
	for i := range m.Code {
		in := &m.Code[i]
		switch in.Op {
		case OpInvoke:
			// Verify guarantees static targets resolve; tolerate absence
			// here so Link stays safe on unverified programs.
			in.icMethod = p.Method(in.Sym2, in.Sym)
		case OpNew:
			in.icClass = p.Class(in.Sym)
		}
	}
}
