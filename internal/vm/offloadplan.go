package vm

import "sort"

// This file derives per-program *offload plans* from the taint pre-analysis
// (taintflow.go): the static answer to "where can a tainted cor first be
// observed, and what heap state would a migration from that site need?".
// The DSM warm-up driver (internal/core) uses the plan to decide whether
// speculatively pre-shipping the initial snapshot can pay off — a program
// with no taint-observing sites never triggers an offload, so warming it is
// pure waste.
//
// Like the analysis itself, the plan is advisory: it gates when speculation
// starts, never what the migration contains. Correctness of the warm path is
// carried entirely by the dsm epoch protocol (internal/dsm/warmup.go).

// OffloadEntry describes one boundary entry point: a method from which a
// taint-triggered migration can originate.
type OffloadEntry struct {
	Class  string
	Method string
	// Verdict is the method's analysis verdict: VerdictTracked methods
	// statically observe taint; VerdictBoundary methods contain guard sites
	// where externally introduced taint (framework cor loads, DSM sync)
	// deoptimizes into tracked execution.
	Verdict Verdict
	// TriggerPCs lists the instruction indices where taint can first be
	// observed — TaintedAt sites for tracked methods, GuardAt sites for
	// boundary methods — in ascending order.
	TriggerPCs []int
	// RootClasses names the classes whose instances a migration from this
	// site may need: every class instantiated or called into by code
	// reachable from this method, in sorted order.
	RootClasses []string
}

// OffloadPlan is the program-wide speculation plan.
type OffloadPlan struct {
	// HeapMayTaint mirrors Analysis.HeapMayTaint: when set, any heap read
	// can observe taint, so plans are necessarily coarse.
	HeapMayTaint bool
	// Entries lists the boundary entry points, sorted by class.method name.
	Entries []OffloadEntry
}

// Speculative reports whether the warm-up driver should bother: a program
// with no entry can never fire a taint trigger.
func (p *OffloadPlan) Speculative() bool { return p != nil && len(p.Entries) > 0 }

// OffloadPlan computes the program's offload plan, running the taint
// pre-analysis first if needed.
func (p *Program) OffloadPlan() *OffloadPlan {
	a := p.Analyze()
	plan := &OffloadPlan{HeapMayTaint: a.HeapMayTaint}
	for _, m := range p.allMethods() {
		flow := a.Flow(m)
		if flow == nil || flow.Verdict == VerdictFast || flow.Verdict == VerdictUnknown {
			continue
		}
		entry := OffloadEntry{Class: m.Class.Name, Method: m.Name, Verdict: flow.Verdict}
		site := flow.TaintedAt
		if flow.Verdict == VerdictBoundary {
			site = flow.GuardAt
		}
		for pc, hit := range site {
			if hit {
				entry.TriggerPCs = append(entry.TriggerPCs, pc)
			}
		}
		if len(entry.TriggerPCs) == 0 {
			continue
		}
		entry.RootClasses = p.reachableClasses(m)
		plan.Entries = append(plan.Entries, entry)
	}
	return plan
}

// reachableClasses walks the call graph from m and collects every class the
// reachable code instantiates, allocates arrays of, or dispatches into —
// the object roots a migration starting in m may reference.
func (p *Program) reachableClasses(root *Method) []string {
	seenM := map[*Method]bool{}
	classes := map[string]bool{root.Class.Name: true}
	stack := []*Method{root}
	for len(stack) > 0 {
		m := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seenM[m] {
			continue
		}
		seenM[m] = true
		classes[m.Class.Name] = true
		for i := range m.Code {
			in := &m.Code[i]
			switch in.Op {
			case OpNew, OpNewArr:
				if in.Sym != "" {
					classes[in.Sym] = true
				}
			case OpInvoke:
				if t := p.Method(in.Sym2, in.Sym); t != nil {
					stack = append(stack, t)
				}
			case OpInvokeV:
				// Receivers are untyped statically: join over every
				// same-name method, like the analysis does.
				for _, c := range p.Classes() {
					if t := c.Methods[in.Sym]; t != nil {
						stack = append(stack, t)
					}
				}
			}
		}
	}
	out := make([]string, 0, len(classes))
	for c := range classes {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
