package vm

import (
	"fmt"
	"sort"

	"tinman/internal/taint"
)

// Object is a heap entity: a class instance, an array, or a string. Strings
// and arrays taint at object granularity; instance fields taint per slot.
type Object struct {
	// ID is the DSM-wide identity: the device and the trusted node allocate
	// from disjoint ID spaces so an object keeps one ID on both heaps.
	ID    uint64
	Class *Class
	// Fields are the instance slots (class objects only).
	Fields []Value
	// Elems are the array slots (arrays only).
	Elems []Value
	// Str is the string payload (strings only).
	Str string
	// IsArr / IsStr discriminate the shape. Plain instances have both false.
	IsArr bool
	IsStr bool
	// Tag is the object-granularity taint (strings, arrays, and cor
	// containers).
	Tag taint.Tag
	// FieldTags and ElemTags are the TaintDroid-style shadow tag stores for
	// instance fields and array elements. They are nil until a tracking
	// policy writes a non-empty tag, so the untainted baseline never pays
	// for them.
	FieldTags []taint.Tag
	ElemTags  []taint.Tag
	// CorID, when non-empty, marks this object as a cor carrier: the DSM
	// never serializes its payload, only the cor ID (§3.1). On the device
	// the payload is the placeholder; on the trusted node, the plaintext.
	CorID string
	// Version increments on every mutation; the DSM uses it for dirty-field
	// accounting.
	Version uint64
}

// FieldByName reads a field via its name; it is a convenience for natives
// and tests (bytecode uses resolved indices). The returned value carries the
// field's shadow tag.
func (o *Object) FieldByName(name string) (Value, bool) {
	ix := o.Class.FieldIndex(name)
	if ix < 0 {
		return Value{}, false
	}
	v := o.Fields[ix]
	v.Tag = o.FieldTag(ix)
	return v, true
}

// FieldTag reads the shadow tag of field i (None when untracked).
func (o *Object) FieldTag(i int) taint.Tag {
	if o.FieldTags == nil {
		return taint.None
	}
	return o.FieldTags[i]
}

// SetFieldTag writes a field's shadow tag, allocating the store on first
// non-empty write.
func (o *Object) SetFieldTag(i int, t taint.Tag) {
	if o.FieldTags == nil {
		if t.Empty() {
			return
		}
		o.FieldTags = make([]taint.Tag, len(o.Fields))
	}
	o.FieldTags[i] = t
}

// ElemTag reads the shadow tag of array element i.
func (o *Object) ElemTag(i int) taint.Tag {
	if o.ElemTags == nil {
		return taint.None
	}
	return o.ElemTags[i]
}

// SetElemTag writes an element's shadow tag, allocating the store on first
// non-empty write.
func (o *Object) SetElemTag(i int, t taint.Tag) {
	if o.ElemTags == nil {
		if t.Empty() {
			return
		}
		o.ElemTags = make([]taint.Tag, len(o.Elems))
	}
	o.ElemTags[i] = t
}

// WireSize estimates the serialized size in bytes of the object for DSM
// accounting: headers plus payload.
func (o *Object) WireSize() int {
	n := 24 // id, class ref, shape, tag
	switch {
	case o.IsStr:
		n += len(o.Str)
	case o.IsArr:
		n += 12 * len(o.Elems)
	default:
		n += 12 * len(o.Fields)
	}
	return n
}

// Heap is one endpoint's object store with dirty tracking for the DSM.
type Heap struct {
	objects map[uint64]*Object
	nextID  uint64
	step    uint64
	dirty   map[uint64]struct{}
	// lastDirty short-circuits MarkDirty for consecutive writes to the same
	// object (the aput-in-a-loop pattern): the map insert is skipped once
	// the object is known-dirty. Reset whenever the dirty set is cleared.
	lastDirty *Object
	// Allocs counts allocations for stats.
	Allocs uint64
}

// NewHeap creates a heap whose allocation IDs start at base and advance by
// step. The device uses (1, 2) — odd IDs — and the trusted node (2, 2) —
// even IDs — so migrated threads can allocate on either side without
// colliding.
func NewHeap(base, step uint64) *Heap {
	if step == 0 {
		panic("vm: heap ID step must be positive")
	}
	return &Heap{
		objects: make(map[uint64]*Object),
		nextID:  base,
		step:    step,
		dirty:   make(map[uint64]struct{}),
	}
}

// Alloc creates an instance of class c with zeroed (null/0) fields.
func (h *Heap) Alloc(c *Class) *Object {
	o := &Object{ID: h.takeID(), Class: c, Fields: make([]Value, len(c.Fields))}
	for i := range o.Fields {
		o.Fields[i] = NullVal()
	}
	h.install(o)
	return o
}

// AllocArray creates an array of n null slots.
func (h *Heap) AllocArray(c *Class, n int) *Object {
	if n < 0 {
		n = 0
	}
	o := &Object{ID: h.takeID(), Class: c, IsArr: true, Elems: make([]Value, n)}
	for i := range o.Elems {
		o.Elems[i] = IntVal(0)
	}
	h.install(o)
	return o
}

// AllocString creates a string object with the given content and tag.
func (h *Heap) AllocString(c *Class, s string, tag taint.Tag) *Object {
	o := &Object{ID: h.takeID(), Class: c, IsStr: true, Str: s, Tag: tag}
	h.install(o)
	return o
}

// Adopt installs an object created elsewhere (DSM sync) preserving its ID.
// An existing object with the same ID is replaced.
func (h *Heap) Adopt(o *Object) {
	if o.ID == 0 {
		panic("vm: adopting object without ID")
	}
	h.objects[o.ID] = o
}

// Get returns the object with the given ID, or nil.
func (h *Heap) Get(id uint64) *Object { return h.objects[id] }

// Len returns the number of live objects.
func (h *Heap) Len() int { return len(h.objects) }

// Objects returns all objects ordered by ID (stable for serialization).
func (h *Heap) Objects() []*Object {
	out := make([]*Object, 0, len(h.objects))
	for _, o := range h.objects {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// MarkDirty records a mutation for the DSM. The VM calls it on every heap
// write; natives that mutate objects must call it too.
func (h *Heap) MarkDirty(o *Object) {
	o.Version++
	if h.lastDirty == o {
		return
	}
	h.dirty[o.ID] = struct{}{}
	h.lastDirty = o
}

// DirtyObjects returns the mutated-since-last-clear objects ordered by ID.
func (h *Heap) DirtyObjects() []*Object {
	out := make([]*Object, 0, len(h.dirty))
	for id := range h.dirty {
		if o := h.objects[id]; o != nil {
			out = append(out, o)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ClearDirty resets dirty tracking after a sync.
func (h *Heap) ClearDirty() {
	h.dirty = make(map[uint64]struct{})
	h.lastDirty = nil
}

// DirtyCount returns the number of dirty objects.
func (h *Heap) DirtyCount() int { return len(h.dirty) }

// WireSize estimates the serialized size of the whole heap (the initial DSM
// sync, Table 3 "Off. Init").
func (h *Heap) WireSize() int {
	n := 0
	for _, o := range h.objects {
		n += o.WireSize()
	}
	return n
}

func (h *Heap) takeID() uint64 {
	id := h.nextID
	h.nextID += h.step
	return id
}

func (h *Heap) install(o *Object) {
	if _, dup := h.objects[o.ID]; dup {
		panic(fmt.Sprintf("vm: duplicate heap ID %d", o.ID))
	}
	h.objects[o.ID] = o
	h.Allocs++
	h.dirty[o.ID] = struct{}{}
	h.lastDirty = o
}
