package vm_test

import (
	"strings"
	"testing"

	"tinman/internal/taint"
	"tinman/internal/vm"
	"tinman/internal/vm/asm"
)

// cleanSrc contains no in-program taint source: the heap bit stays clear,
// so heap-reading methods classify as boundary rather than tracked.
const cleanSrc = `
class C
  method pure 1 4
    const r1, 2
    mul r2, r0, r1
    return r2
  end
  method reader 1 4
    const r1, 0
    aget r2, r0, r1
    return r2
  end
  method callspure 1 3
    invoke r1, C.pure, r0
    return r1
  end
  method mixed 1 6
    const r1, 1
    add r2, r0, r1
    ifz r2, load
    return r2
  load:
    const r3, 0
    aget r4, r0, r3
    return r4
  end
end`

// taintingSrc stores taint from program code: the heap bit is set, so
// every heap reader classifies as tracked.
const taintingSrc = `
class T
  method marker 1 2
    taintset r0, 2
    return r0
  end
  method reader 1 4
    const r1, 0
    aget r2, r0, r1
    return r2
  end
  method callsmarker 1 3
    invoke r1, T.marker, r0
    return r1
  end
end`

func analyzed(t *testing.T, name, src string) *vm.Program {
	t.Helper()
	prog, err := asm.Assemble(name, src)
	if err != nil {
		t.Fatal(err)
	}
	if !prog.Analyzed() {
		t.Fatal("assembled program is not analyzed")
	}
	return prog
}

func TestTaintflowVerdicts(t *testing.T) {
	clean := analyzed(t, "clean", cleanSrc)
	if a := clean.Analysis(); a.HeapMayTaint {
		t.Error("clean program: HeapMayTaint = true, want false")
	}
	wantClean := map[string]vm.Verdict{
		"pure":      vm.VerdictFast,
		"reader":    vm.VerdictBoundary, // aget guards against external taint
		"callspure": vm.VerdictFast,     // calling fast code needs no guard
		"mixed":     vm.VerdictBoundary,
	}
	for name, want := range wantClean {
		m := clean.Method("C", name)
		if got := m.Verdict(); got != want {
			t.Errorf("clean %s: verdict %v, want %v", name, got, want)
		}
	}

	tainting := analyzed(t, "tainting", taintingSrc)
	if a := tainting.Analysis(); !a.HeapMayTaint {
		t.Error("tainting program: HeapMayTaint = false, want true")
	}
	wantTaint := map[string]vm.Verdict{
		"marker":      vm.VerdictTracked, // manipulates taint directly
		"reader":      vm.VerdictTracked, // heap bit set: reads may carry taint
		"callsmarker": vm.VerdictBoundary,
	}
	for name, want := range wantTaint {
		m := tainting.Method("T", name)
		if got := m.Verdict(); got != want {
			t.Errorf("tainting %s: verdict %v, want %v", name, got, want)
		}
	}
}

func TestTaintflowRegionsCoverMethod(t *testing.T) {
	for _, src := range []string{cleanSrc, taintingSrc} {
		prog := analyzed(t, "prog", src)
		a := prog.Analysis()
		for _, c := range prog.Classes() {
			for _, m := range c.Methods {
				flow := a.Flow(m)
				if flow == nil {
					t.Fatalf("%s: no flow", m.FullName())
				}
				// Regions tile [0, len(Code)) without gaps or overlaps, and
				// no two adjacent regions share a verdict (else they would
				// have been coalesced).
				at := 0
				for i, r := range flow.Regions {
					if r.Start != at || r.End <= r.Start {
						t.Fatalf("%s: region %d = [%d,%d), want start %d", m.FullName(), i, r.Start, r.End, at)
					}
					if i > 0 && flow.Regions[i-1].Verdict == r.Verdict {
						t.Errorf("%s: regions %d and %d share verdict %v", m.FullName(), i-1, i, r.Verdict)
					}
					at = r.End
				}
				if at != len(m.Code) {
					t.Fatalf("%s: regions end at %d, code length %d", m.FullName(), at, len(m.Code))
				}
			}
		}
	}

	// mixed has a fast arithmetic block and a guarded load block.
	prog := analyzed(t, "clean", cleanSrc)
	flow := prog.Analysis().Flow(prog.Method("C", "mixed"))
	var seen []vm.Verdict
	for _, r := range flow.Regions {
		seen = append(seen, r.Verdict)
	}
	if len(seen) < 2 {
		t.Fatalf("mixed: want >= 2 regions, got %v", seen)
	}
	hasFast, hasBoundary := false, false
	for _, v := range seen {
		hasFast = hasFast || v == vm.VerdictFast
		hasBoundary = hasBoundary || v == vm.VerdictBoundary
	}
	if !hasFast || !hasBoundary {
		t.Errorf("mixed regions = %v, want both fast and boundary", seen)
	}
}

func TestDisassembleVerdictAnnotations(t *testing.T) {
	prog := analyzed(t, "clean", cleanSrc)
	out := prog.Disassemble()
	for _, want := range []string{
		"; taintflow: fast",
		"; taintflow: boundary",
		"; region 0..3: fast",     // mixed's arithmetic prefix
		"; region 4..6: boundary", // mixed's guarded load block
	} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
	// Uniform methods carry no region lines — the header says it all.
	if got := strings.Count(out, "; region"); got != 2 {
		t.Errorf("disassembly has %d region lines, want 2 (mixed only):\n%s", got, out)
	}
	// Annotated output still round-trips through the assembler.
	back, err := asm.Assemble("clean", out)
	if err != nil {
		t.Fatalf("annotated disassembly does not re-assemble: %v", err)
	}
	if back.Hash() != prog.Hash() {
		t.Error("annotated disassembly round-trips to a different program")
	}

	tracked := analyzed(t, "tainting", taintingSrc).Disassemble()
	if !strings.Contains(tracked, "; taintflow: tracked") {
		t.Errorf("tainting disassembly missing tracked verdict:\n%s", tracked)
	}
}

// twoVMs builds a fast-path VM and a NoFastPath control on the same
// program and policy, both with stats so outcome comparison covers the
// propagation counters.
func twoVMs(prog *vm.Program, policy taint.Policy) (fast, control *vm.VM) {
	mk := func(noFast bool) *vm.VM {
		return vm.New(vm.Config{
			Program:      prog,
			Heap:         vm.NewHeap(1, 2),
			Policy:       policy,
			CollectStats: true,
			NoFastPath:   noFast,
		})
	}
	return mk(false), mk(true)
}

// checkSame asserts the observable outcome of two runs is bit-identical.
func checkSame(t *testing.T, what string, fast, control *vm.VM, fr, cr vm.Value) {
	t.Helper()
	if fr.Kind != cr.Kind || fr.Int != cr.Int || fr.Ref != cr.Ref && (fr.Ref == nil || cr.Ref == nil || fr.Ref.Str != cr.Ref.Str) {
		t.Errorf("%s: results diverge: %+v vs %+v", what, fr, cr)
	}
	if fr.Tag != cr.Tag {
		t.Errorf("%s: result tags diverge: %v vs %v", what, fr.Tag, cr.Tag)
	}
	if fast.Instrs != control.Instrs {
		t.Errorf("%s: instruction counts diverge: %d vs %d", what, fast.Instrs, control.Instrs)
	}
	if fast.Calls != control.Calls {
		t.Errorf("%s: call counts diverge: %d vs %d", what, fast.Calls, control.Calls)
	}
	if fast.Counters != control.Counters {
		t.Errorf("%s: counters diverge: %v vs %v", what, fast.Counters, control.Counters)
	}
}

// TestFastPathNativeTaintDeopt covers guard channel 2: taint appears
// mid-method as a native-call result. The frame enters the fast loop
// (verdict boundary), the native completes, and the frame must deoptimize
// with the result tag intact.
func TestFastPathNativeTaintDeopt(t *testing.T) {
	const src = `
class N
  method login 1 6
    const r1, 10
    add r2, r0, r1
    native r3, getsecret
    add r4, r3, r2
    return r4
  end
end`
	prog := analyzed(t, "n", src)
	if got := prog.Method("N", "login").Verdict(); got != vm.VerdictBoundary {
		t.Fatalf("login verdict %v, want boundary (native result is guarded, not tracked)", got)
	}
	secret := &vm.NativeDef{
		Name: "getsecret",
		Fn: func(th *vm.Thread, args []vm.Value) (vm.Value, error) {
			r := vm.IntVal(41)
			r.Tag = taint.Bit(1)
			return r, nil
		},
	}
	fast, control := twoVMs(prog, taint.Full)
	fast.RegisterNative(secret)
	control.RegisterNative(secret)

	run := func(machine *vm.VM) vm.Value {
		th, err := machine.NewThread(prog.Method("N", "login"), vm.IntVal(7))
		if err != nil {
			t.Fatal(err)
		}
		stop, err := th.Run()
		if err != nil || stop != vm.StopDone {
			t.Fatalf("stop=%v err=%v", stop, err)
		}
		return th.Result
	}
	fr, cr := run(fast), run(control)
	checkSame(t, "native-taint", fast, control, fr, cr)
	if fr.Tag.Empty() {
		t.Error("tainted native result lost its tag through the fast path")
	}
	if fast.FastInstrs == 0 {
		t.Error("fast path never engaged")
	}
	if fast.FastInstrs >= fast.Instrs {
		t.Errorf("no deopt visible: FastInstrs %d, Instrs %d", fast.FastInstrs, fast.Instrs)
	}
}

// TestFastPathCrossThreadFieldTaint covers guard channel 1 with taint that
// is invisible to the static analysis: a field of a shared object becomes
// tainted mid-run while reader threads are interleaving under the
// scheduler. (Any *in-program* taint store flips the readers' verdict to
// tracked — TestTaintflowVerdicts — so a running fast frame can only ever
// trip this guard on externally introduced taint: framework cor loads,
// cross-thread stores, DSM sync. The test injects it the way the framework
// does, between scheduler quanta.)
func TestFastPathCrossThreadFieldTaint(t *testing.T) {
	const src = `
class S
  field secret
  method mk 0 2
    new r0, S
    return r0
  end
  method read 2 8
    const r2, 0
    const r3, 1
  loop:
    ifge r2, r1, done
    iget r4, r0, secret
    add r5, r5, r4
    add r2, r2, r3
    goto loop
  done:
    return r5
  end
end`
	prog := analyzed(t, "s", src)
	if got := prog.Method("S", "read").Verdict(); got != vm.VerdictBoundary {
		t.Fatalf("read verdict %v, want boundary", got)
	}

	run := func(machine *vm.VM) vm.Value {
		mk, err := machine.NewThread(prog.Method("S", "mk"))
		if err != nil {
			t.Fatal(err)
		}
		if stop, err := mk.Run(); err != nil || stop != vm.StopDone {
			t.Fatalf("mk: stop=%v err=%v", stop, err)
		}
		shared := mk.Result.Ref

		s := vm.NewScheduler(machine)
		s.Quantum = 50
		a, err := s.Spawn(prog.Method("S", "read"), vm.RefVal(shared), vm.IntVal(300))
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.Spawn(prog.Method("S", "read"), vm.RefVal(shared), vm.IntVal(300))
		if err != nil {
			t.Fatal(err)
		}
		// Let both readers run a few quanta on the fast path, then taint
		// the shared field and drain the schedule. The step count is fixed,
		// so both VMs see the taint land at the identical point.
		for i := 0; i < 6; i++ {
			if _, err := s.Step(); err != nil {
				t.Fatal(err)
			}
		}
		shared.SetFieldTag(0, taint.Bit(2))
		for {
			more, err := s.Step()
			if err != nil {
				t.Fatal(err)
			}
			if !more {
				break
			}
		}
		if a.State != vm.ThreadFinished || b.State != vm.ThreadFinished {
			t.Fatalf("states: %v %v", a.State, b.State)
		}
		if a.Result.Tag != b.Result.Tag {
			t.Fatalf("reader tags diverge: %v vs %v", a.Result.Tag, b.Result.Tag)
		}
		return a.Result
	}

	fast, control := twoVMs(prog, taint.Full)
	fr, cr := run(fast), run(control)
	checkSame(t, "cross-thread", fast, control, fr, cr)
	if fr.Tag.Empty() {
		t.Error("cross-thread field taint was lost: reader result is untainted")
	}
	if fast.FastInstrs == 0 {
		t.Error("fast path never engaged")
	}
	if fast.FastInstrs >= fast.Instrs {
		t.Errorf("no deopt visible: FastInstrs %d, Instrs %d", fast.FastInstrs, fast.Instrs)
	}
}

// TestFastPathTaintedEntryArgs covers guard channel 4: a fast-eligible
// method invoked with a tainted argument must run tracked from the start.
func TestFastPathTaintedEntryArgs(t *testing.T) {
	prog := analyzed(t, "clean", cleanSrc)
	fast, control := twoVMs(prog, taint.Full)
	run := func(machine *vm.VM) vm.Value {
		arg := vm.IntVal(21)
		arg.Tag = taint.Bit(3)
		th, err := machine.NewThread(prog.Method("C", "pure"), arg)
		if err != nil {
			t.Fatal(err)
		}
		if stop, err := th.Run(); err != nil || stop != vm.StopDone {
			t.Fatalf("stop=%v err=%v", stop, err)
		}
		return th.Result
	}
	fr, cr := run(fast), run(control)
	checkSame(t, "tainted-entry", fast, control, fr, cr)
	if fr.Tag.Empty() {
		t.Error("tainted argument lost its tag")
	}
	if fast.FastInstrs != 0 {
		t.Errorf("fast path ran %d instructions of a tainted frame", fast.FastInstrs)
	}
}

// TestFastPathBudgetWithFusedOps pins StopLimit exactness: the quickened
// stream executes fused superinstructions (two instructions per dispatch),
// but a Run bounded by MaxInstrs must stop after exactly the same
// instruction count as the unanalyzed interpreter, every quantum, even
// when the budget boundary lands inside a fused pair.
func TestFastPathBudgetWithFusedOps(t *testing.T) {
	const src = `
class B
  method loop 1 6
    const r1, 0
    const r2, 0
  head:
    ifge r2, r0, done
    const r3, 3
    add r1, r1, r3
    const r4, 1
    add r2, r2, r4
    goto head
  done:
    return r1
  end
end`
	prog := analyzed(t, "b", src)
	m := prog.Method("B", "loop")
	if m.Verdict() != vm.VerdictFast {
		t.Fatalf("loop verdict %v, want fast", m.Verdict())
	}

	for _, quantum := range []uint64{1, 2, 3, 7, 50} {
		fast, control := twoVMs(prog, taint.Off)
		run := func(machine *vm.VM) (vm.Value, int) {
			th, err := machine.NewThread(m, vm.IntVal(100))
			if err != nil {
				t.Fatal(err)
			}
			th.MaxInstrs = quantum
			quanta := 0
			for {
				stop, err := th.Run()
				if err != nil {
					t.Fatal(err)
				}
				quanta++
				if stop == vm.StopDone {
					return th.Result, quanta
				}
				if stop != vm.StopLimit {
					t.Fatalf("stop = %v", stop)
				}
			}
		}
		fr, fq := run(fast)
		cr, cq := run(control)
		checkSame(t, "budget", fast, control, fr, cr)
		if fq != cq {
			t.Errorf("quantum %d: fast finished in %d quanta, control in %d", quantum, fq, cq)
		}
		if fast.FastInstrs != fast.Instrs {
			t.Errorf("quantum %d: FastInstrs %d != Instrs %d for an all-fast program",
				quantum, fast.FastInstrs, fast.Instrs)
		}
	}
}
