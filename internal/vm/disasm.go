package vm

import (
	"fmt"
	"sort"
	"strings"
)

// Disassemble renders a program back into the assembler's source syntax.
// The output round-trips through the assembler (modulo label names, which
// come back as L<pc>), which the asm tests verify. On an analyzed program
// (see taintflow.go) every method is annotated with its taint pre-analysis
// verdict, and methods whose verdict varies across basic blocks carry
// per-region comments; the assembler strips comments, so annotated output
// still round-trips.
func (p *Program) Disassemble() string {
	var b strings.Builder
	for _, c := range p.Classes() {
		fmt.Fprintf(&b, "class %s\n", c.Name)
		for _, f := range c.Fields {
			fmt.Fprintf(&b, "  field %s\n", f)
		}
		names := make([]string, 0, len(c.Methods))
		for n := range c.Methods {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			m := c.Methods[n]
			disasmMethod(&b, m, p.analysis.Flow(m))
		}
		b.WriteString("end\n")
	}
	return b.String()
}

func disasmMethod(b *strings.Builder, m *Method, flow *MethodFlow) {
	fmt.Fprintf(b, "  method %s %d %d\n", m.Name, m.NArgs, m.NRegs)
	if flow != nil {
		fmt.Fprintf(b, "    ; taintflow: %s\n", flow.Verdict)
	}

	// Region comments only earn their lines when the verdict varies within
	// the method; a uniform method is fully described by its header.
	regionAt := map[int]Region{}
	if flow != nil && len(flow.Regions) > 1 {
		for _, r := range flow.Regions {
			regionAt[r.Start] = r
		}
	}

	// Collect branch targets so the output carries labels.
	targets := map[int64]bool{}
	for _, in := range m.Code {
		if isBranch(in.Op) {
			targets[in.Imm] = true
		}
	}
	label := func(pc int64) string { return fmt.Sprintf("L%d", pc) }

	for pc, in := range m.Code {
		if targets[int64(pc)] {
			fmt.Fprintf(b, "  %s:\n", label(int64(pc)))
		}
		if r, ok := regionAt[pc]; ok {
			fmt.Fprintf(b, "    ; region %d..%d: %s\n", r.Start, r.End-1, r.Verdict)
		}
		fmt.Fprintf(b, "    %s\n", disasmInstr(in, label))
	}
	b.WriteString("  end\n")
}

func isBranch(op Op) bool {
	switch op {
	case OpIfEq, OpIfNe, OpIfLt, OpIfLe, OpIfGt, OpIfGe, OpIfZ, OpIfNz, OpGoto:
		return true
	}
	return false
}

// disasmInstr renders one instruction in assembler syntax (as opposed to
// Instr.String, which is a diagnostic form).
func disasmInstr(in Instr, label func(int64) string) string {
	switch in.Op {
	case OpNop, OpRetVoid, OpHalt:
		return in.Op.String()
	case OpConst:
		return fmt.Sprintf("const r%d, %d", in.A, in.Imm)
	case OpConstF:
		return fmt.Sprintf("constf r%d, %g", in.A, in.F)
	case OpConstStr:
		return fmt.Sprintf("conststr r%d, %q", in.A, in.Sym)
	case OpMove, OpNeg, OpNot, OpNegF, OpI2F, OpF2I, OpNewArr, OpArrLen,
		OpClone, OpArrCopy, OpStrLen, OpIntToStr, OpStrToInt, OpHash, OpTaintGet:
		return fmt.Sprintf("%s r%d, r%d", in.Op, in.A, in.B)
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpAddF, OpSubF, OpMulF, OpDivF, OpCmp, OpCmpF, OpAGet, OpAPut,
		OpStrCat, OpCharAt, OpStrEq, OpIndexOf:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.A, in.B, in.C)
	case OpSubstr:
		return fmt.Sprintf("substr r%d, r%d, r%d, %d", in.A, in.B, in.C, in.Imm)
	case OpIfEq, OpIfNe, OpIfLt, OpIfLe, OpIfGt, OpIfGe:
		return fmt.Sprintf("%s r%d, r%d, %s", in.Op, in.B, in.C, label(in.Imm))
	case OpIfZ, OpIfNz:
		return fmt.Sprintf("%s r%d, %s", in.Op, in.B, label(in.Imm))
	case OpGoto:
		return fmt.Sprintf("goto %s", label(in.Imm))
	case OpNew:
		return fmt.Sprintf("new r%d, %s", in.A, in.Sym)
	case OpIGet, OpIPut:
		return fmt.Sprintf("%s r%d, r%d, %s", in.Op, in.A, in.B, in.Sym)
	case OpInvoke:
		return fmt.Sprintf("invoke r%d, %s.%s%s", in.A, in.Sym2, in.Sym, regList(in.Args))
	case OpInvokeV:
		return fmt.Sprintf("invokev r%d, %s%s", in.A, in.Sym, regList(in.Args))
	case OpNative:
		return fmt.Sprintf("native r%d, %s%s", in.A, in.Sym, regList(in.Args))
	case OpReturn:
		return fmt.Sprintf("return r%d", in.B)
	case OpMonEnter, OpMonExit:
		return fmt.Sprintf("%s r%d", in.Op, in.B)
	case OpTaintSet:
		return fmt.Sprintf("taintset r%d, %d", in.B, in.Imm)
	default:
		return fmt.Sprintf("; unknown op %d", uint8(in.Op))
	}
}

func regList(args []int) string {
	var b strings.Builder
	for _, r := range args {
		fmt.Fprintf(&b, ", r%d", r)
	}
	return b.String()
}
