package vm

import (
	"crypto/sha256"
	"encoding/hex"
	"strconv"
	"strings"

	"tinman/internal/taint"
)

// runFast is the uninstrumented fast-path dispatch loop of the partial
// instrumentation scheme (taintflow.go). It runs frames whose fastOK flag
// is set: born in an analysis-approved method with entirely clean argument
// tags. Its operating invariant is that every register shadow tag of the
// running frame is None, so it performs
//
//   - no shadow-tag reads or writes (tag slots exist under a tracking
//     policy but provably stay zero),
//   - no per-instruction policy checks,
//   - no cor-idle accounting (vm.fastEnabled excludes that configuration),
//
// and executes the method's quickened instruction stream (Method.fastCode,
// see quicken.go) with fused superinstructions for the hottest pairs.
//
// Taint can enter a running fast frame through exactly four channels, and
// each carries a guard that deoptimizes the frame to the tracked loop
// before the tainted value is consumed:
//
//  1. heap reads (aget/iget/string ops): the observed heap-side tag is
//     checked; non-empty → deoptFast un-counts the instruction and the
//     tracked loop re-executes it with full instrumentation (counters,
//     idle reset, OnTaintedAccess, migrate stop — bit-identical to having
//     run tracked from the start);
//  2. native-call results: natives are impure and cannot be re-executed,
//     so the call completes, the result tag is stored, and the frame
//     deoptimizes at the next pc;
//  3. return values of tracked callees: handled by the tracked loop's
//     return handoff (interp.go), which deoptimizes the caller instead of
//     handing back;
//  4. entry arguments: checked when the frame is born (NewThread, the two
//     loops' invoke paths).
//
// External tainting — NewTaintedString, a cross-thread taintset through
// the scheduler, DSM sync — lands in the heap or in new frames, which is
// exactly what those guards watch; the static verdicts are profitability,
// the guards are correctness.
//
// Where the tracked loop counts propagation events (CollectStats), this
// loop replicates the counts exactly: a clean heap read still counts
// HeapToStack, a clean derived string still counts HeapToHeap, and the
// stack classes count per the same policy gates — the differential harness
// pins all of it. Deoptimization un-counts the guarded instruction first,
// so the tracked re-execution counts it exactly once.
func (t *Thread) runFast(budget uint64) (StopReason, bool, uint64, error) {
	v := t.VM
	max := budget
	if len(t.Frames) == 0 {
		return StopDone, false, 0, nil
	}

	var executed, flushed uint64
	tracking := v.tracking
	stats := v.CollectStats
	s2h, h2h := v.trackS2H, v.trackH2H
	obs := tracking || stats || v.Hooks.OnTaintedAccess != nil
	countS2S := v.trackS2S && stats
	countS2H := s2h && stats

	f := t.Frames[len(t.Frames)-1]
	pc := f.PC
	fcode := f.Method.fastCode
	if fcode == nil {
		fcode = f.Method.Code
	}
	ocode := f.Method.Code
	regs := f.Regs

	for {
		if pc < 0 || pc >= len(fcode) {
			return t.failAt(f, pc, executed-flushed, "pc out of range (len=%d)", len(fcode))
		}
		if executed >= max {
			f.PC = pc
			v.Instrs += executed - flushed
			v.FastInstrs += executed - flushed
			return StopLimit, false, executed, nil
		}
		in := &fcode[pc]
		if in.Op >= fConstArith && executed+2 > max {
			// Not enough budget left for a whole fused pair: single-step
			// the original instruction at this pc so StopLimit lands on
			// exactly the same instruction as the tracked loop would.
			in = &ocode[pc]
		}
		executed++
		npc := pc + 1

		switch in.Op {
		case OpNop:

		case OpConst:
			regs[in.A] = IntVal(in.Imm)
		case OpConstF:
			regs[in.A] = FloatVal(in.F)
		case OpConstStr:
			// Same per-site interning as the tracked loop (copy-on-taint
			// literals); the fast stream owns its cache slots.
			var o *Object
			if in.icVM == v {
				if c := in.icStr; c != nil && c.Tag == taint.None && c.CorID == "" {
					o = c
				}
			}
			if o == nil {
				o = v.NewString(in.Sym)
				in.icVM = v
				in.icStr = o
			}
			regs[in.A] = RefVal(o)

		case OpMove:
			regs[in.A] = regs[in.B]
			if countS2S {
				v.Counters.Add(taint.StackToStack)
			}

		case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr, OpCmp:
			b, c := regs[in.B].Int, regs[in.C].Int
			if (in.Op == OpDiv || in.Op == OpRem) && c == 0 {
				return t.failAt(f, pc, executed-flushed, "division by zero")
			}
			regs[in.A] = IntVal(intArith(in.Op, b, c))
			if countS2S {
				v.Counters.Add(taint.StackToStack)
			}

		case OpNeg, OpNot:
			r := -regs[in.B].Int
			if in.Op == OpNot {
				r = ^regs[in.B].Int
			}
			regs[in.A] = IntVal(r)
			if countS2S {
				v.Counters.Add(taint.StackToStack)
			}

		case OpAddF, OpSubF, OpMulF, OpDivF, OpCmpF:
			regs[in.A] = floatArith(in.Op, regs[in.B].Float, regs[in.C].Float)
			if countS2S {
				v.Counters.Add(taint.StackToStack)
			}

		case OpNegF:
			regs[in.A] = FloatVal(-regs[in.B].Float)
		case OpI2F:
			regs[in.A] = FloatVal(float64(regs[in.B].Int))
		case OpF2I:
			regs[in.A] = IntVal(int64(regs[in.B].Float))

		case OpIfEq:
			if regs[in.B].Int == regs[in.C].Int {
				npc = int(in.Imm)
			}
		case OpIfNe:
			if regs[in.B].Int != regs[in.C].Int {
				npc = int(in.Imm)
			}
		case OpIfLt:
			if regs[in.B].Int < regs[in.C].Int {
				npc = int(in.Imm)
			}
		case OpIfLe:
			if regs[in.B].Int <= regs[in.C].Int {
				npc = int(in.Imm)
			}
		case OpIfGt:
			if regs[in.B].Int > regs[in.C].Int {
				npc = int(in.Imm)
			}
		case OpIfGe:
			if regs[in.B].Int >= regs[in.C].Int {
				npc = int(in.Imm)
			}
		case OpIfZ:
			b := regs[in.B]
			if (b.Kind == KindRef && b.Ref == nil) || (b.Kind != KindRef && b.Int == 0) {
				npc = int(in.Imm)
			}
		case OpIfNz:
			b := regs[in.B]
			if (b.Kind == KindRef && b.Ref != nil) || (b.Kind != KindRef && b.Int != 0) {
				npc = int(in.Imm)
			}
		case OpGoto:
			npc = int(in.Imm)

		case OpNew:
			c := in.icClass
			if c == nil {
				c = v.ClassByName(in.Sym)
				if c == nil {
					return t.failAt(f, pc, executed-flushed, "unknown class %s", in.Sym)
				}
				if c != v.stringClass && c != v.arrayClass {
					in.icClass = c
				}
			}
			regs[in.A] = RefVal(v.Heap.Alloc(c))

		case OpNewArr:
			n := regs[in.B].Int
			if n < 0 || n > 1<<24 {
				return t.failAt(f, pc, executed-flushed, "bad array length %d", n)
			}
			regs[in.A] = RefVal(v.Heap.AllocArray(v.arrayClass, int(n)))

		case OpArrLen:
			o := regs[in.B].Ref
			if o == nil {
				return t.failAt(f, pc, executed-flushed, "arrlen of null")
			}
			regs[in.A] = IntVal(int64(len(o.Elems)))

		case OpAGet:
			o := regs[in.B].Ref
			if o == nil {
				return t.failAt(f, pc, executed-flushed, "aget from null")
			}
			ix := regs[in.C].Int
			if ix < 0 || ix >= int64(len(o.Elems)) {
				return t.failAt(f, pc, executed-flushed, "array index %d out of range [0,%d)", ix, len(o.Elems))
			}
			if obs {
				if tag := o.ElemTag(int(ix)).Union(o.Tag); !tag.Empty() {
					executed--
					return t.deoptFast(f, pc, executed-flushed, executed)
				}
				if stats {
					v.Counters.Add(taint.HeapToStack)
				}
			}
			regs[in.A] = o.Elems[ix]

		case OpAPut:
			o := regs[in.B].Ref
			if o == nil {
				return t.failAt(f, pc, executed-flushed, "aput to null")
			}
			ix := regs[in.C].Int
			if ix < 0 || ix >= int64(len(o.Elems)) {
				return t.failAt(f, pc, executed-flushed, "array index %d out of range [0,%d)", ix, len(o.Elems))
			}
			o.Elems[ix] = regs[in.A]
			if s2h {
				// The stored register is clean by invariant, but the slot's
				// old tag must still be cleared, exactly as tracked does.
				o.SetElemTag(int(ix), taint.None)
				if countS2H {
					v.Counters.Add(taint.StackToHeap)
				}
			}
			v.Heap.MarkDirty(o)

		case OpIGet:
			o := regs[in.B].Ref
			if o == nil {
				return t.failAt(f, pc, executed-flushed, "iget %s from null", in.Sym)
			}
			var fi int
			if in.icClass == o.Class {
				fi = in.icSlot
			} else {
				fi = o.Class.FieldIndex(in.Sym)
				if fi < 0 {
					return t.failAt(f, pc, executed-flushed, "class %s has no field %s", o.Class.Name, in.Sym)
				}
				in.icClass = o.Class
				in.icSlot = fi
			}
			if obs {
				if tag := o.FieldTag(fi); !tag.Empty() {
					executed--
					return t.deoptFast(f, pc, executed-flushed, executed)
				}
				if stats {
					v.Counters.Add(taint.HeapToStack)
				}
			}
			regs[in.A] = o.Fields[fi]

		case OpIPut:
			o := regs[in.B].Ref
			if o == nil {
				return t.failAt(f, pc, executed-flushed, "iput %s to null", in.Sym)
			}
			var fi int
			if in.icClass == o.Class {
				fi = in.icSlot
			} else {
				fi = o.Class.FieldIndex(in.Sym)
				if fi < 0 {
					return t.failAt(f, pc, executed-flushed, "class %s has no field %s", o.Class.Name, in.Sym)
				}
				in.icClass = o.Class
				in.icSlot = fi
			}
			o.Fields[fi] = regs[in.A]
			if s2h {
				o.SetFieldTag(fi, taint.None)
				if countS2H {
					v.Counters.Add(taint.StackToHeap)
				}
			}
			v.Heap.MarkDirty(o)

		case OpClone:
			src := regs[in.B].Ref
			if src == nil {
				return t.failAt(f, pc, executed-flushed, "clone of null")
			}
			// Combined tag depends only on the source, so the guard runs
			// before any allocation: a deopt re-executes from scratch.
			tag := src.Tag
			if h2h {
				if src.IsArr {
					for _, et := range src.ElemTags {
						tag = tag.Union(et)
					}
				} else if !src.IsStr {
					for _, ft := range src.FieldTags {
						tag = tag.Union(ft)
					}
				}
			}
			if obs {
				if !tag.Empty() {
					executed--
					return t.deoptFast(f, pc, executed-flushed, executed)
				}
				if stats {
					v.Counters.Add(taint.HeapToHeap)
				}
			}
			var dst *Object
			switch {
			case src.IsStr:
				dst = v.Heap.AllocString(src.Class, src.Str, taint.None)
			case src.IsArr:
				dst = v.Heap.AllocArray(src.Class, len(src.Elems))
				copy(dst.Elems, src.Elems)
				if h2h && src.ElemTags != nil {
					dst.ElemTags = append([]taint.Tag(nil), src.ElemTags...)
				}
			default:
				dst = v.Heap.Alloc(src.Class)
				copy(dst.Fields, src.Fields)
				if h2h && src.FieldTags != nil {
					dst.FieldTags = append([]taint.Tag(nil), src.FieldTags...)
				}
			}
			if h2h {
				dst.Tag = tag // empty here; preserves the tracked write
				dst.CorID = src.CorID
			}
			regs[in.A] = RefVal(dst)

		case OpArrCopy:
			dst, src := regs[in.A].Ref, regs[in.B].Ref
			if dst == nil || src == nil {
				return t.failAt(f, pc, executed-flushed, "arrcopy with null")
			}
			n := len(src.Elems)
			if len(dst.Elems) < n {
				n = len(dst.Elems)
			}
			tag := src.Tag
			if h2h {
				for i := 0; i < n; i++ {
					tag = tag.Union(src.ElemTag(i))
				}
			}
			if obs && !tag.Empty() {
				executed--
				return t.deoptFast(f, pc, executed-flushed, executed)
			}
			copy(dst.Elems, src.Elems[:n])
			if h2h {
				for i := 0; i < n; i++ {
					dst.SetElemTag(i, src.ElemTag(i))
				}
				if stats {
					v.Counters.Add(taint.HeapToHeap)
				}
			}
			if obs && stats {
				v.Counters.Add(taint.HeapToHeap)
			}
			v.Heap.MarkDirty(dst)

		case OpStrCat:
			b, c := regs[in.B], regs[in.C]
			if b.Ref == nil || c.Ref == nil {
				return t.failAt(f, pc, executed-flushed, "strcat with null")
			}
			if obs {
				if tag := b.Ref.Tag.Union(c.Ref.Tag); !tag.Empty() {
					executed--
					return t.deoptFast(f, pc, executed-flushed, executed)
				}
				if stats {
					v.Counters.Add(taint.HeapToHeap)
				}
			}
			// Both operands proven clean: the instrumented byte-by-byte
			// copy (§6.1) is unnecessary — this is the Dalvik string fast
			// path the analysis re-enables.
			regs[in.A] = RefVal(v.Heap.AllocString(v.stringClass, b.Ref.Str+c.Ref.Str, taint.None))

		case OpStrLen:
			o := regs[in.B].Ref
			if o == nil {
				return t.failAt(f, pc, executed-flushed, "strlen of null")
			}
			if obs {
				if !o.Tag.Empty() {
					executed--
					return t.deoptFast(f, pc, executed-flushed, executed)
				}
				if stats {
					v.Counters.Add(taint.HeapToStack)
				}
			}
			regs[in.A] = IntVal(int64(len(o.Str)))

		case OpCharAt:
			o := regs[in.B].Ref
			if o == nil {
				return t.failAt(f, pc, executed-flushed, "charat of null")
			}
			ix := regs[in.C].Int
			if ix < 0 || ix >= int64(len(o.Str)) {
				return t.failAt(f, pc, executed-flushed, "string index %d out of range [0,%d)", ix, len(o.Str))
			}
			if obs {
				if !o.Tag.Empty() {
					executed--
					return t.deoptFast(f, pc, executed-flushed, executed)
				}
				if stats {
					v.Counters.Add(taint.HeapToStack)
				}
			}
			regs[in.A] = IntVal(int64(o.Str[ix]))

		case OpStrEq:
			b, c := regs[in.B].Ref, regs[in.C].Ref
			if b == nil || c == nil {
				return t.failAt(f, pc, executed-flushed, "streq with null")
			}
			if obs {
				if tag := b.Tag.Union(c.Tag); !tag.Empty() {
					executed--
					return t.deoptFast(f, pc, executed-flushed, executed)
				}
				if stats {
					v.Counters.Add(taint.HeapToStack)
				}
			}
			var r int64
			if b.Str == c.Str {
				r = 1
			}
			regs[in.A] = IntVal(r)

		case OpIndexOf:
			b, c := regs[in.B].Ref, regs[in.C].Ref
			if b == nil || c == nil {
				return t.failAt(f, pc, executed-flushed, "indexof with null")
			}
			if obs {
				if tag := b.Tag.Union(c.Tag); !tag.Empty() {
					executed--
					return t.deoptFast(f, pc, executed-flushed, executed)
				}
				if stats {
					v.Counters.Add(taint.HeapToStack)
				}
			}
			regs[in.A] = IntVal(int64(strings.Index(b.Str, c.Str)))

		case OpSubstr:
			o := regs[in.B].Ref
			if o == nil {
				return t.failAt(f, pc, executed-flushed, "substr of null")
			}
			start := regs[in.C].Int
			end := in.Imm
			if end < 0 || end > int64(len(o.Str)) {
				end = int64(len(o.Str))
			}
			if start < 0 || start > end {
				return t.failAt(f, pc, executed-flushed, "substr bounds [%d,%d) of %d", start, end, len(o.Str))
			}
			if obs {
				if !o.Tag.Empty() {
					executed--
					return t.deoptFast(f, pc, executed-flushed, executed)
				}
				if stats {
					v.Counters.Add(taint.HeapToHeap)
				}
			}
			regs[in.A] = RefVal(v.Heap.AllocString(v.stringClass, o.Str[start:end], taint.None))

		case OpIntToStr:
			if countS2H {
				v.Counters.Add(taint.StackToHeap)
			}
			regs[in.A] = RefVal(v.Heap.AllocString(v.stringClass, strconv.FormatInt(regs[in.B].Int, 10), taint.None))

		case OpStrToInt:
			o := regs[in.B].Ref
			if o == nil {
				return t.failAt(f, pc, executed-flushed, "strtoint of null")
			}
			if obs {
				if !o.Tag.Empty() {
					executed--
					return t.deoptFast(f, pc, executed-flushed, executed)
				}
				if stats {
					v.Counters.Add(taint.HeapToStack)
				}
			}
			n, err := strconv.ParseInt(strings.TrimSpace(o.Str), 10, 64)
			if err != nil {
				n = 0
			}
			regs[in.A] = IntVal(n)

		case OpHash:
			o := regs[in.B].Ref
			if o == nil {
				return t.failAt(f, pc, executed-flushed, "hash of null")
			}
			if obs {
				if !o.Tag.Empty() {
					executed--
					return t.deoptFast(f, pc, executed-flushed, executed)
				}
				if stats {
					v.Counters.Add(taint.HeapToHeap)
				}
			}
			sum := sha256.Sum256([]byte(o.Str))
			regs[in.A] = RefVal(v.Heap.AllocString(v.stringClass, hex.EncodeToString(sum[:]), taint.None))

		case OpInvoke, OpInvokeV:
			var m *Method
			if in.Op == OpInvoke {
				m = in.icMethod
				if m == nil {
					m = v.Program.Method(in.Sym2, in.Sym)
					if m == nil {
						return t.failAt(f, pc, executed-flushed, "unknown method %s.%s", in.Sym2, in.Sym)
					}
					in.icMethod = m
				}
			} else {
				if len(in.Args) == 0 {
					return t.failAt(f, pc, executed-flushed, "invokev with no receiver")
				}
				recv := regs[in.Args[0]].Ref
				if recv == nil {
					return t.failAt(f, pc, executed-flushed, "invokev %s on null", in.Sym)
				}
				if in.icClass == recv.Class {
					m = in.icMethod
				} else {
					m = recv.Class.Methods[in.Sym]
					if m == nil {
						return t.failAt(f, pc, executed-flushed, "class %s has no method %s", recv.Class.Name, in.Sym)
					}
					in.icClass = recv.Class
					in.icMethod = m
				}
			}
			if len(in.Args) != m.NArgs {
				return t.failAt(f, pc, executed-flushed, "%s takes %d args, got %d", m.FullName(), m.NArgs, len(in.Args))
			}
			if len(t.Frames) >= maxFrames {
				return t.failAt(f, pc, executed-flushed, "stack overflow (%d frames)", maxFrames)
			}
			v.Calls++
			if v.Hooks.OnInvoke != nil {
				f.PC = pc
				v.Instrs += executed - flushed
				v.FastInstrs += executed - flushed
				flushed = executed
				v.Hooks.OnInvoke(m)
			}
			nf := t.getFrame(m, tracking)
			for i, r := range in.Args {
				nf.Regs[i] = regs[r]
			}
			// Argument shadow tags are all None by the fast invariant, and
			// getFrame hands out zeroed tag slices — nothing to copy.
			nf.RetReg = in.A
			f.PC = npc
			t.Frames = append(t.Frames, nf)
			if m.verdict.FastEligible() {
				// Fast → fast: stay in this loop.
				nf.fastOK = true
				f = nf
				pc = 0
				fcode = m.fastCode
				if fcode == nil {
					fcode = m.Code
				}
				ocode = m.Code
				regs = nf.Regs
				continue
			}
			// Callee is tracked code: hand the pushed frame to the tracked
			// loop; this frame resumes fast when it returns clean.
			v.Instrs += executed - flushed
			v.FastInstrs += executed - flushed
			return 0, true, executed, nil

		case OpReturn, OpRetVoid:
			ret := NullVal()
			if in.Op == OpReturn {
				ret = regs[in.B]
			}
			t.Frames = t.Frames[:len(t.Frames)-1]
			if len(t.Frames) == 0 {
				ret.Tag = taint.None // the fast frame's shadow tag is None
				t.Result = ret
				t.putFrame(f)
				v.Instrs += executed - flushed
				v.FastInstrs += executed - flushed
				return StopDone, false, executed, nil
			}
			done := f
			f = t.Frames[len(t.Frames)-1]
			pc = f.PC
			regs = f.Regs
			regs[done.RetReg] = ret
			if f.Tags != nil {
				f.Tags[done.RetReg] = taint.None
			}
			t.putFrame(done)
			if f.fastOK && !f.deopted {
				fcode = f.Method.fastCode
				if fcode == nil {
					fcode = f.Method.Code
				}
				ocode = f.Method.Code
				continue
			}
			// Returning into tracked code: hand back.
			f.PC = pc
			v.Instrs += executed - flushed
			v.FastInstrs += executed - flushed
			return 0, true, executed, nil

		case OpMonEnter:
			o := regs[in.B].Ref
			if o == nil {
				return t.failAt(f, pc, executed-flushed, "monenter on null")
			}
			if v.Hooks.OnMonitorEnter != nil {
				f.PC = pc
				v.Instrs += executed - flushed
				v.FastInstrs += executed - flushed
				flushed = executed
				if v.Hooks.OnMonitorEnter(o) {
					return StopMigrateLock, false, executed, nil
				}
			}
		case OpMonExit:
			o := regs[in.B].Ref
			if o == nil {
				return t.failAt(f, pc, executed-flushed, "monexit on null")
			}
			if v.Hooks.OnMonitorExit != nil {
				f.PC = pc
				v.Instrs += executed - flushed
				v.FastInstrs += executed - flushed
				flushed = executed
				v.Hooks.OnMonitorExit(o)
			}

		case OpNative:
			def := in.icNative
			if in.icVM != v {
				def = nil
			}
			if def == nil {
				def = v.natives[in.Sym]
				if def == nil {
					return t.failAt(f, pc, executed-flushed, "unknown native %s", in.Sym)
				}
				in.icVM = v
				in.icNative = def
			}
			f.PC = pc
			v.Instrs += executed - flushed
			v.FastInstrs += executed - flushed
			flushed = executed
			if v.Hooks.NativeGate != nil && v.Hooks.NativeGate(def) {
				return StopMigrateNative, false, executed, nil
			}
			var args []Value
			if n := len(in.Args); cap(t.nativeArgs) >= n {
				args = t.nativeArgs[:n]
			} else {
				args = make([]Value, n)
				t.nativeArgs = args
			}
			for i, r := range in.Args {
				args[i] = regs[r]
				args[i].Tag = taint.None // fast frames carry no register taint
			}
			res, err := def.Fn(t, args)
			if err != nil {
				return t.failAt(f, pc, 0, "native %s: %v", in.Sym, err)
			}
			regs[in.A] = res
			if tracking {
				if f.Tags != nil {
					f.Tags[in.A] = res.Tag
				}
				if !res.Tag.Empty() {
					// Guard 2: the native returned taint. The call is done
					// (natives are impure — no re-execution), the tag is
					// stored; the frame continues on the tracked loop.
					f.deopted = true
					f.PC = npc
					return 0, true, executed, nil
				}
			}

		case OpTaintGet:
			o := regs[in.B].Ref
			if o == nil {
				return t.failAt(f, pc, executed-flushed, "taintget on null")
			}
			regs[in.A] = IntVal(int64(o.Tag))

		case OpHalt:
			t.Frames = t.Frames[:0]
			t.Result = NullVal()
			f.PC = pc
			v.Instrs += executed - flushed
			v.FastInstrs += executed - flushed
			return StopDone, false, executed, nil

		// ---- fused superinstructions (quicken.go); each counts as two ----

		case fConstArith:
			regs[in.A] = IntVal(in.Imm)
			x, y := regs[in.C].Int, regs[int(in.Imm3)].Int
			op2 := Op(in.Imm2)
			if (op2 == OpDiv || op2 == OpRem) && y == 0 {
				// Unreachable by construction (quicken skips zero-immediate
				// divisors), kept for exactness: fail at the arith sub-pc.
				executed++
				return t.failAt(f, pc+1, executed-flushed, "division by zero")
			}
			regs[in.B] = IntVal(intArith(op2, x, y))
			executed++
			if countS2S {
				v.Counters.Add(taint.StackToStack)
			}
			npc = pc + 2

		case fConstFArith:
			regs[in.A] = FloatVal(in.F)
			regs[in.B] = floatArith(Op(in.Imm2), regs[in.C].Float, regs[int(in.Imm3)].Float)
			executed++
			if countS2S {
				v.Counters.Add(taint.StackToStack)
			}
			npc = pc + 2

		case fArithGoto:
			regs[in.A] = IntVal(intArith(Op(in.Imm2), regs[in.B].Int, regs[in.C].Int))
			executed++
			if countS2S {
				v.Counters.Add(taint.StackToStack)
			}
			npc = int(in.Imm)

		case fConstAPut:
			regs[in.A] = IntVal(in.Imm2)
			executed++
			o := regs[in.B].Ref
			if o == nil {
				return t.failAt(f, pc+1, executed-flushed, "aput to null")
			}
			ix := regs[in.C].Int
			if ix < 0 || ix >= int64(len(o.Elems)) {
				return t.failAt(f, pc+1, executed-flushed, "array index %d out of range [0,%d)", ix, len(o.Elems))
			}
			o.Elems[ix] = regs[in.A]
			if s2h {
				o.SetElemTag(int(ix), taint.None)
				if countS2H {
					v.Counters.Add(taint.StackToHeap)
				}
			}
			v.Heap.MarkDirty(o)
			npc = pc + 2

		case fAGetBranch:
			o := regs[in.B].Ref
			if o == nil {
				return t.failAt(f, pc, executed-flushed, "aget from null")
			}
			ix := regs[in.C].Int
			if ix < 0 || ix >= int64(len(o.Elems)) {
				return t.failAt(f, pc, executed-flushed, "array index %d out of range [0,%d)", ix, len(o.Elems))
			}
			if obs {
				if tag := o.ElemTag(int(ix)).Union(o.Tag); !tag.Empty() {
					executed--
					return t.deoptFast(f, pc, executed-flushed, executed)
				}
				if stats {
					v.Counters.Add(taint.HeapToStack)
				}
			}
			val := o.Elems[ix]
			regs[in.A] = val
			executed++
			taken := (val.Kind == KindRef && val.Ref != nil) || (val.Kind != KindRef && val.Int != 0)
			if in.Imm2 == 0 {
				taken = !taken
			}
			if taken {
				npc = int(in.Imm)
			} else {
				npc = pc + 2
			}

		default:
			// Anything else (taintset, future opcodes): deoptimize before
			// executing — the tracked loop handles it. Analysis verdicts
			// keep this path cold; it is the safety net, not the policy.
			executed--
			return t.deoptFast(f, pc, executed-flushed, executed)
		}

		pc = npc
	}
}

// deoptFast permanently downgrades f to the tracked loop. The caller has
// already un-counted the guarded instruction, so the tracked re-execution
// counts it — and performs its side effects — exactly once.
func (t *Thread) deoptFast(f *Frame, pc int, pending, consumed uint64) (StopReason, bool, uint64, error) {
	f.deopted = true
	f.PC = pc
	t.VM.Instrs += pending
	t.VM.FastInstrs += pending
	return 0, true, consumed, nil
}

// intArith evaluates an integer/compare opcode. Division by zero must be
// rejected by the caller.
func intArith(op Op, b, c int64) int64 {
	switch op {
	case OpAdd:
		return b + c
	case OpSub:
		return b - c
	case OpMul:
		return b * c
	case OpDiv:
		return b / c
	case OpRem:
		return b % c
	case OpAnd:
		return b & c
	case OpOr:
		return b | c
	case OpXor:
		return b ^ c
	case OpShl:
		return b << uint(c&63)
	case OpShr:
		return b >> uint(c&63)
	case OpCmp:
		switch {
		case b < c:
			return -1
		case b > c:
			return 1
		}
	}
	return 0
}

// floatArith evaluates a float opcode (cmpf yields an int value).
func floatArith(op Op, b, c float64) Value {
	switch op {
	case OpAddF:
		return FloatVal(b + c)
	case OpSubF:
		return FloatVal(b - c)
	case OpMulF:
		return FloatVal(b * c)
	case OpDivF:
		return FloatVal(b / c)
	case OpCmpF:
		var r int64
		switch {
		case b < c:
			r = -1
		case b > c:
			r = 1
		}
		return IntVal(r)
	}
	return IntVal(0)
}
