package vm

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// Class describes an object layout and its methods, analogous to a class in
// a dex file.
type Class struct {
	Name    string
	Fields  []string
	fieldIx map[string]int
	Methods map[string]*Method
}

// NewClass creates a class with the given instance fields.
func NewClass(name string, fields ...string) *Class {
	c := &Class{
		Name:    name,
		Fields:  append([]string(nil), fields...),
		fieldIx: make(map[string]int, len(fields)),
		Methods: make(map[string]*Method),
	}
	for i, f := range fields {
		if _, dup := c.fieldIx[f]; dup {
			panic(fmt.Sprintf("vm: class %s declares field %s twice", name, f))
		}
		c.fieldIx[f] = i
	}
	return c
}

// FieldIndex returns the slot index of the named field, or -1.
func (c *Class) FieldIndex(name string) int {
	if i, ok := c.fieldIx[name]; ok {
		return i
	}
	return -1
}

// AddMethod attaches a method to the class; it returns the method for
// chaining.
func (c *Class) AddMethod(m *Method) *Method {
	if _, dup := c.Methods[m.Name]; dup {
		panic(fmt.Sprintf("vm: class %s declares method %s twice", c.Name, m.Name))
	}
	m.Class = c
	c.Methods[m.Name] = m
	return m
}

// Method is a unit of executable code: either bytecode (Code) or a native
// implementation registered at runtime by name.
type Method struct {
	Class *Class
	Name  string
	// NArgs arguments arrive in registers [0, NArgs).
	NArgs int
	// NRegs is the total register count of a frame.
	NRegs int
	Code  []Instr

	// verdict and fastCode are derived state computed by Program.Analyze
	// (see taintflow.go): the static taint-flow classification and — for
	// fast-eligible methods — the quickened instruction stream the
	// uninstrumented fast-path loop executes. Like the inline caches, they
	// are never serialized, hashed, or disassembled as code; Code stays
	// authoritative.
	verdict  Verdict
	fastCode []Instr
}

// FullName returns "Class.method".
func (m *Method) FullName() string { return m.Class.Name + "." + m.Name }

// Verdict returns the method's static taint-flow classification
// (VerdictUnknown until the owning program is analyzed).
func (m *Method) Verdict() Verdict { return m.verdict }

// Program is the loaded application: the analogue of a dex file. Programs
// are immutable once sealed and are loaded identically on the device and the
// trusted node (the dex transfer at warm-up, §6.2).
type Program struct {
	Name    string
	classes map[string]*Class
	sealed  bool
	linked  bool
	hash    string
	// analysis is the taint pre-analysis result (taintflow.go), nil until
	// Analyze runs.
	analysis *Analysis
}

// NewProgram creates an empty program.
func NewProgram(name string) *Program {
	return &Program{Name: name, classes: make(map[string]*Class)}
}

// AddClass registers a class. It panics on duplicates or after sealing.
func (p *Program) AddClass(c *Class) *Class {
	if p.sealed {
		panic("vm: program sealed")
	}
	if _, dup := p.classes[c.Name]; dup {
		panic(fmt.Sprintf("vm: program already has class %s", c.Name))
	}
	p.classes[c.Name] = c
	return c
}

// Class looks up a class by name.
func (p *Program) Class(name string) *Class { return p.classes[name] }

// Classes returns all classes sorted by name.
func (p *Program) Classes() []*Class {
	out := make([]*Class, 0, len(p.classes))
	for _, c := range p.classes {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Method resolves "Class.method"; it returns nil if absent.
func (p *Program) Method(class, method string) *Method {
	c := p.classes[class]
	if c == nil {
		return nil
	}
	return c.Methods[method]
}

// Seal freezes the program and computes its dex hash.
func (p *Program) Seal() {
	if p.sealed {
		return
	}
	p.sealed = true
	p.hash = p.computeHash()
}

// Hash returns the program's content hash — the analogue of the dex-file
// hash the trusted node uses for app↔cor binding (§3.4). The program must be
// sealed first.
func (p *Program) Hash() string {
	if !p.sealed {
		panic("vm: Hash called before Seal")
	}
	return p.hash
}

// CodeSize returns the total number of instructions across all methods; the
// warm-up transfer cost is proportional to it.
func (p *Program) CodeSize() int {
	n := 0
	for _, c := range p.classes {
		for _, m := range c.Methods {
			n += len(m.Code)
		}
	}
	return n
}

func (p *Program) computeHash() string {
	// The hash covers code and layout only — not the install name — so a
	// renamed copy of known malware still matches the hash database (§3.4).
	h := sha256.New()
	for _, c := range p.Classes() {
		fmt.Fprintf(h, "class %s fields %s\n", c.Name, strings.Join(c.Fields, ","))
		names := make([]string, 0, len(c.Methods))
		for n := range c.Methods {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			m := c.Methods[n]
			fmt.Fprintf(h, "method %s args %d regs %d\n", n, m.NArgs, m.NRegs)
			for _, in := range m.Code {
				fmt.Fprintf(h, "%s\n", in.String())
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
