package vm

import (
	"fmt"
	"sort"
)

// This file implements the static taint pre-analysis behind TinMan's
// partial instrumentation: a verify/link-time dataflow pass that proves
// which methods and regions of a program can never carry a tainted value
// through their registers, so the interpreter can run them on an
// uninstrumented fast-path loop (interp_fast.go) and fall back to the
// tracked loop at region boundaries.
//
// The analysis is a whole-program fixpoint over the linked call graph:
//
//   - per-method, flow-sensitive register taint (one bit per register,
//     merged at control-flow joins);
//   - per-method summaries: which argument positions may receive taint
//     from program-internal call sites, and whether the return value may
//     be tainted;
//   - one conservative heap bit: once program code can store a
//     possibly-tainted value into the heap (a tainted aput/iput/intostr/
//     strcat/substr/hash store, taintset, or any native call — natives may
//     taint arbitrary objects), every heap read in the program is assumed
//     to possibly yield taint.
//
// The lattice per register is the two-point chain clean ⊑ tainted; the
// per-method state is its pointwise product, and summaries/heap bit only
// grow, so the fixpoint terminates. Everything unknown over-approximates:
// unresolvable call targets taint their result, invokev joins over every
// same-name method in the program.
//
// Crucially, the verdicts are a *profitability* classification, not the
// soundness argument. Soundness comes from the runtime guards of the
// fast-path loop: taint can only enter a fast frame through a heap read, a
// native-call result, a callee's return value, or the entry arguments —
// and each of those carries a cheap tag check that deoptimizes the frame
// to the tracked loop before the tainted value is consumed. The analysis
// therefore treats those guarded sources as clean (the guard, not the
// lattice, covers them) and exists so that code which statically *handles*
// taint — taintset users, heap readers in a program that stores taint —
// never enters the fast loop and thrashes its guards, while provably
// taint-free code runs with zero per-instruction instrumentation.

// Verdict classifies a method (or a region within one) for the two-loop
// interpreter.
type Verdict uint8

const (
	// VerdictUnknown means the program was never analyzed; the interpreter
	// treats it as tracked.
	VerdictUnknown Verdict = iota
	// VerdictFast code cannot observe taint and contains no potential
	// deoptimization site: no heap reads, no natives, no calls into
	// tracked code. It runs uninstrumented end to end.
	VerdictFast
	// VerdictBoundary code cannot itself carry taint in registers, but it
	// contains guarded sites (heap reads, native results, calls into
	// tracked code) where execution may deoptimize or hand off to the
	// tracked loop.
	VerdictBoundary
	// VerdictTracked code may carry tainted values in its registers per
	// the static over-approximation; it always runs on the tracked loop.
	VerdictTracked
)

var verdictNames = [...]string{
	VerdictUnknown: "unknown", VerdictFast: "fast",
	VerdictBoundary: "boundary", VerdictTracked: "tracked",
}

func (v Verdict) String() string {
	if int(v) < len(verdictNames) {
		return verdictNames[v]
	}
	return fmt.Sprintf("Verdict(%d)", uint8(v))
}

// FastEligible reports whether code with this verdict may run on the
// uninstrumented fast-path loop.
func (v Verdict) FastEligible() bool { return v == VerdictFast || v == VerdictBoundary }

// Region is a maximal run of basic blocks sharing one verdict, for
// inspection and disassembly. Start is inclusive, End exclusive.
type Region struct {
	Start, End int
	Verdict    Verdict
}

// MethodFlow is the per-method analysis result.
type MethodFlow struct {
	Method  *Method
	Verdict Verdict
	// Regions covers [0, len(Code)) without gaps.
	Regions []Region
	// TaintedAt[pc] reports that a possibly-tainted value can flow through
	// the instruction's observed operands (or that it manipulates taint
	// directly, like taintset).
	TaintedAt []bool
	// GuardAt[pc] marks potential deoptimization sites of the fast loop:
	// taint-observing heap reads, native calls, and calls whose target set
	// includes tracked or unresolvable code.
	GuardAt []bool
	// ArgTaint[i] reports that argument i may be tainted at some
	// program-internal call site (external callers are guarded at frame
	// entry instead).
	ArgTaint []bool
	// ReturnsTaint reports that the method may return a tainted value.
	ReturnsTaint bool
}

// Analysis is the program-wide result of the taint pre-analysis.
type Analysis struct {
	// HeapMayTaint reports that program code can store taint into the heap
	// (or call natives, which may); when false, every heap read in the
	// program is statically clean and guard trips can only come from
	// external tainting (framework cor loads, cross-thread stores, DSM
	// sync) — exactly what the runtime guards catch.
	HeapMayTaint bool

	flows map[*Method]*MethodFlow
}

// Flow returns the analysis result for m, or nil.
func (a *Analysis) Flow(m *Method) *MethodFlow {
	if a == nil {
		return nil
	}
	return a.flows[m]
}

// Analysis returns the program's taint pre-analysis, or nil if Analyze has
// not run.
func (p *Program) Analysis() *Analysis { return p.analysis }

// Analyzed reports whether the taint pre-analysis has run.
func (p *Program) Analyzed() bool { return p.analysis != nil }

// Analyze runs the static taint pre-analysis and quickens fast-eligible
// methods (see quicken.go). Verify calls it after linking, so every
// assembled program is analyzed; it is idempotent. Like Link, it is purely
// an acceleration: vm.Config.NoFastPath ignores its results entirely, and
// the differential harness pins that behavior is bit-identical either way.
func (p *Program) Analyze() *Analysis {
	if p.analysis != nil {
		return p.analysis
	}
	p.Link()
	methods := p.allMethods()
	byName := make(map[string][]*Method)
	for _, m := range methods {
		byName[m.Name] = append(byName[m.Name], m)
	}

	st := &flowState{
		program:  p,
		byName:   byName,
		argTaint: make(map[*Method][]bool, len(methods)),
		retTaint: make(map[*Method]bool, len(methods)),
	}
	for _, m := range methods {
		st.argTaint[m] = make([]bool, m.NArgs)
	}

	// Interprocedural fixpoint: method summaries and the heap bit only
	// grow, so iteration terminates.
	for changed := true; changed; {
		changed = false
		for _, m := range methods {
			if st.scanMethod(m, nil) {
				changed = true
			}
		}
	}

	// Final pass under the stable assumptions: record per-pc taint facts.
	a := &Analysis{HeapMayTaint: st.heapMayTaint, flows: make(map[*Method]*MethodFlow, len(methods))}
	for _, m := range methods {
		flow := &MethodFlow{
			Method:       m,
			TaintedAt:    make([]bool, len(m.Code)),
			GuardAt:      make([]bool, len(m.Code)),
			ArgTaint:     st.argTaint[m],
			ReturnsTaint: st.retTaint[m],
		}
		st.scanMethod(m, flow)
		a.flows[m] = flow
	}

	// Verdicts. Tracked-ness depends only on the taint facts, so it is
	// assigned first; guard sites (which include calls into tracked code)
	// then decide Fast vs Boundary for the rest.
	for _, m := range methods {
		m.verdict = VerdictFast
		for _, t := range a.flows[m].TaintedAt {
			if t {
				m.verdict = VerdictTracked
				break
			}
		}
	}
	for _, m := range methods {
		flow := a.flows[m]
		for pc := range m.Code {
			in := &m.Code[pc]
			guard := false
			switch in.Op {
			case OpAGet, OpIGet, OpStrLen, OpCharAt, OpStrEq, OpIndexOf,
				OpStrToInt, OpClone, OpArrCopy, OpStrCat, OpSubstr, OpHash:
				// Taint-observing heap ops: may deoptimize on externally
				// introduced taint even when the static heap bit is clear.
				guard = true
			case OpNative:
				guard = true // result tag is checked after the call
			case OpInvoke, OpInvokeV:
				for _, target := range st.callTargets(in) {
					if target == nil || !target.verdict.FastEligible() {
						guard = true
					}
				}
			}
			if guard {
				flow.GuardAt[pc] = true
				if m.verdict == VerdictFast {
					m.verdict = VerdictBoundary
				}
			}
		}
	}
	for _, m := range methods {
		flow := a.flows[m]
		flow.Verdict = m.verdict
		flow.Regions = buildRegions(m, flow)
		if m.verdict.FastEligible() {
			m.fastCode = quicken(m)
		}
	}

	p.analysis = a
	return a
}

// allMethods returns every method sorted by full name (deterministic
// fixpoint order).
func (p *Program) allMethods() []*Method {
	var out []*Method
	for _, c := range p.classes {
		for _, m := range c.Methods {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FullName() < out[j].FullName() })
	return out
}

// flowState carries the interprocedural fixpoint state.
type flowState struct {
	program      *Program
	byName       map[string][]*Method
	argTaint     map[*Method][]bool
	retTaint     map[*Method]bool
	heapMayTaint bool
}

// callTargets resolves the possible targets of a call site: the linked
// static target for invoke, every same-name method for invokev (receivers
// are untyped statically). A nil entry means an unresolvable target.
func (s *flowState) callTargets(in *Instr) []*Method {
	if in.Op == OpInvoke {
		return []*Method{s.program.Method(in.Sym2, in.Sym)}
	}
	targets := s.byName[in.Sym]
	if len(targets) == 0 {
		return []*Method{nil}
	}
	return targets
}

// scanMethod runs the flow-sensitive register analysis over m under the
// current interprocedural assumptions. It reports whether any summary (a
// callee's argument taint, m's return taint, or the heap bit) grew. When
// flow is non-nil it additionally records per-pc facts.
//
// The transfer functions mirror the tracked interpreter's tag sources
// exactly (interp.go): aget/iget observe only heap-side tags, while
// strlen/charat/strtoint/strcat/substr/hash also fold in the operand
// register's shadow tag, and streq/indexof observe only the two object
// tags. Guarded sources — heap reads with a clean heap bit, native-call
// results — produce clean, per the file comment.
func (s *flowState) scanMethod(m *Method, flow *MethodFlow) bool {
	n := len(m.Code)
	if n == 0 {
		return false
	}
	changed := false
	taintHeap := func() {
		if !s.heapMayTaint {
			s.heapMayTaint = true
			changed = true
		}
	}
	taintArg := func(callee *Method, i int) {
		if i < len(s.argTaint[callee]) && !s.argTaint[callee][i] {
			s.argTaint[callee][i] = true
			changed = true
		}
	}

	// in[pc] is the register state at instruction entry; nil = unreached.
	in := make([][]bool, n)
	entry := make([]bool, m.NRegs)
	copy(entry, s.argTaint[m][:min(m.NArgs, m.NRegs)])
	in[0] = entry

	work := []int{0}
	merge := func(pc int, state []bool) {
		if pc < 0 || pc >= n {
			return // verify rejects these; stay robust on unverified code
		}
		if in[pc] == nil {
			in[pc] = append([]bool(nil), state...)
			work = append(work, pc)
			return
		}
		grew := false
		for i, t := range state {
			if t && !in[pc][i] {
				in[pc][i] = true
				grew = true
			}
		}
		if grew {
			work = append(work, pc)
		}
	}

	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		st := append([]bool(nil), in[pc]...)
		ins := &m.Code[pc]
		reg := func(r int) bool { return r >= 0 && r < len(st) && st[r] }
		set := func(r int, t bool) {
			if r >= 0 && r < len(st) {
				st[r] = t
			}
		}
		tainted := false // a possibly-tainted value is observed here
		next := true     // fall through to pc+1

		switch ins.Op {
		case OpNop, OpMonEnter, OpMonExit:

		case OpConst, OpConstF, OpConstStr, OpNew, OpNewArr, OpArrLen:
			// arrlen never observes taint (see interp.go); dest is clean.
			set(ins.A, false)

		case OpMove, OpNeg, OpNot, OpNegF, OpI2F, OpF2I:
			tainted = reg(ins.B)
			set(ins.A, tainted)

		case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl,
			OpShr, OpCmp, OpAddF, OpSubF, OpMulF, OpDivF, OpCmpF:
			tainted = reg(ins.B) || reg(ins.C)
			set(ins.A, tainted)

		case OpIfEq, OpIfNe, OpIfLt, OpIfLe, OpIfGt, OpIfGe:
			tainted = reg(ins.B) || reg(ins.C)
			merge(int(ins.Imm), st)
		case OpIfZ, OpIfNz:
			tainted = reg(ins.B)
			merge(int(ins.Imm), st)
		case OpGoto:
			merge(int(ins.Imm), st)
			next = false

		case OpAGet, OpIGet:
			// Observed tag is purely heap-side (elem/field/object tags).
			tainted = s.heapMayTaint
			set(ins.A, tainted)

		case OpStrEq, OpIndexOf:
			tainted = s.heapMayTaint // the two object tags
			set(ins.A, tainted)

		case OpStrLen, OpCharAt, OpStrToInt:
			tainted = s.heapMayTaint || reg(ins.B) // object tag ∪ register tag
			set(ins.A, tainted)

		case OpAPut, OpIPut:
			tainted = reg(ins.A)
			if tainted {
				taintHeap()
			}

		case OpClone, OpArrCopy:
			// Heap-to-heap at object granularity; the register result (for
			// clone) carries no tag, and the copied taint is already covered
			// by the heap bit.
			tainted = s.heapMayTaint
			if ins.Op == OpClone {
				set(ins.A, false)
			}

		case OpStrCat:
			tainted = s.heapMayTaint || reg(ins.B) || reg(ins.C)
			if tainted {
				taintHeap() // the derived string carries the union
			}
			set(ins.A, false)

		case OpSubstr, OpHash:
			tainted = s.heapMayTaint || reg(ins.B)
			if tainted {
				taintHeap()
			}
			set(ins.A, false)

		case OpIntToStr:
			tainted = reg(ins.B)
			if tainted {
				taintHeap() // allocates a heap string tagged from the register
			}
			set(ins.A, false)

		case OpInvoke, OpInvokeV:
			ret := false
			for _, target := range s.callTargets(ins) {
				if target == nil {
					ret = true
					continue
				}
				for i, r := range ins.Args {
					if reg(r) {
						tainted = true
						taintArg(target, i)
					}
				}
				if s.retTaint[target] {
					ret = true
				}
			}
			set(ins.A, ret)

		case OpNative:
			// Natives may taint arbitrary heap objects; their result tag is
			// runtime-guarded, so the dest register stays clean here.
			taintHeap()
			for _, r := range ins.Args {
				if reg(r) {
					tainted = true
				}
			}
			set(ins.A, false)

		case OpReturn:
			tainted = reg(ins.B)
			if tainted && !s.retTaint[m] {
				s.retTaint[m] = true
				changed = true
			}
			next = false
		case OpRetVoid, OpHalt:
			next = false

		case OpTaintSet:
			tainted = true // manipulates taint directly
			taintHeap()
		case OpTaintGet:
			set(ins.A, false) // tag bits read as a plain int
		}

		if flow != nil && tainted {
			flow.TaintedAt[pc] = true
		}
		if next {
			merge(pc+1, st)
		}
	}
	return changed
}

// buildRegions splits the method into basic blocks and coalesces adjacent
// blocks with the same verdict. Block verdict: tracked if any instruction
// observes taint, boundary if any is a guard site, fast otherwise.
func buildRegions(m *Method, flow *MethodFlow) []Region {
	n := len(m.Code)
	if n == 0 {
		return nil
	}
	leader := make([]bool, n)
	leader[0] = true
	for pc := range m.Code {
		switch in := &m.Code[pc]; in.Op {
		case OpIfEq, OpIfNe, OpIfLt, OpIfLe, OpIfGt, OpIfGe, OpIfZ, OpIfNz, OpGoto:
			if t := int(in.Imm); t >= 0 && t < n {
				leader[t] = true
			}
			if pc+1 < n {
				leader[pc+1] = true
			}
		case OpReturn, OpRetVoid, OpHalt:
			if pc+1 < n {
				leader[pc+1] = true
			}
		}
	}
	var regions []Region
	blockVerdict := func(start, end int) Verdict {
		v := VerdictFast
		for pc := start; pc < end; pc++ {
			if flow.TaintedAt[pc] {
				return VerdictTracked
			}
			if flow.GuardAt[pc] {
				v = VerdictBoundary
			}
		}
		return v
	}
	start := 0
	for pc := 1; pc <= n; pc++ {
		if pc == n || leader[pc] {
			v := blockVerdict(start, pc)
			if len(regions) > 0 && regions[len(regions)-1].Verdict == v {
				regions[len(regions)-1].End = pc
			} else {
				regions = append(regions, Region{Start: start, End: pc, Verdict: v})
			}
			start = pc
		}
	}
	return regions
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
