package vm

import (
	"fmt"

	"tinman/internal/taint"
)

// StopReason says why Thread.Run returned.
type StopReason uint8

const (
	// StopDone means the outermost method returned; Thread.Result is set.
	StopDone StopReason = iota
	// StopMigrateTaint means a tainted placeholder was touched (heap→stack
	// or tainted heap→heap) and the hook requested migration to the trusted
	// node (§3.1). The PC points at the triggering instruction so the other
	// endpoint re-executes it.
	StopMigrateTaint
	// StopMigrateNative means the next instruction is a native call this
	// endpoint must not run (non-offloadable I/O on the trusted node).
	StopMigrateNative
	// StopMigrateLock means the thread needs a monitor owned by the other
	// endpoint (the happens-before case in Table 3's github row).
	StopMigrateLock
	// StopMigrateIdle means no cor was accessed for the configured window;
	// the trusted node sends the thread home (§3.1 case 1).
	StopMigrateIdle
	// StopLimit means the Run instruction budget was exhausted.
	StopLimit
)

var stopNames = [...]string{
	StopDone: "done", StopMigrateTaint: "migrate-taint",
	StopMigrateNative: "migrate-native", StopMigrateLock: "migrate-lock",
	StopMigrateIdle: "migrate-idle", StopLimit: "limit",
}

func (s StopReason) String() string {
	if int(s) < len(stopNames) {
		return stopNames[s]
	}
	return fmt.Sprintf("StopReason(%d)", uint8(s))
}

// IsMigrate reports whether the stop requests a thread migration.
func (s StopReason) IsMigrate() bool {
	return s == StopMigrateTaint || s == StopMigrateNative || s == StopMigrateLock || s == StopMigrateIdle
}

// NativeFunc is a Go implementation of a native method. Natives receive the
// thread (for heap access) and the argument values. The args slice is only
// valid for the duration of the call — the interpreter reuses its backing
// array across native calls — so implementations that need the values later
// must copy them out.
type NativeFunc func(t *Thread, args []Value) (Value, error)

// NativeDef registers a native method. Offloadable natives may run on either
// endpoint; non-offloadable ones (I/O, sensors) pin execution to the device,
// or — for the SSL send path — hand off to TinMan's session-injection
// machinery.
type NativeDef struct {
	Name        string
	Offloadable bool
	Fn          NativeFunc
}

// Hooks let the offloading engine observe and steer execution. All hooks are
// optional; a nil hook never migrates.
type Hooks struct {
	// OnTaintedAccess fires when tainted data is read heap→stack or combined
	// heap→heap. Returning true stops the thread with StopMigrateTaint.
	OnTaintedAccess func(tag taint.Tag, ev taint.Event) bool
	// OnMonitorEnter fires on monenter. Returning true stops the thread
	// with StopMigrateLock (the lock lives on the other endpoint).
	OnMonitorEnter func(o *Object) bool
	// OnMonitorExit fires on monexit, letting the offload engine release
	// the lock in its endpoint-pair lock table.
	OnMonitorExit func(o *Object)
	// NativeGate fires before a native call. Returning true stops the
	// thread with StopMigrateNative.
	NativeGate func(def *NativeDef) bool
	// OnInvoke fires on every method invocation (profilers attach here).
	OnInvoke func(m *Method)
	// OnRunStats fires once per Thread.Run with the instruction and call
	// deltas of that burst and the stop reason. It hangs off the single-exit
	// Run wrapper, not the dispatch loop, so when unset the interpreter pays
	// one nil check per Run — nothing per instruction (the Fig 13 guard
	// pins this).
	OnRunStats func(instrs, calls uint64, stop StopReason)
}

// Config assembles a VM.
type Config struct {
	Program *Program
	Heap    *Heap
	Policy  taint.Policy
	// CollectStats enables per-class propagation counters (small overhead;
	// benchmarks measuring tainting cost leave it off).
	CollectStats bool
	// CorIdleWindow, when positive, stops the thread with StopMigrateIdle
	// after that many instructions without a tainted access. The trusted
	// node sets it; the device leaves it zero.
	CorIdleWindow uint64
	// SlowPath disables link-time resolution and inline caches, forcing the
	// interpreter through the symbolic lookup paths on every instruction.
	// It exists for the differential-equivalence tests, which pin that the
	// linked fast paths preserve results, taint tags, counters, and offload
	// triggers exactly; production VMs leave it false.
	SlowPath bool
	// NoFastPath disables the static-analysis fast path (taintflow.go +
	// interp_fast.go): every frame runs on the tracked loop as before the
	// analysis existed. The differential harness compares NoFastPath
	// against the default to pin that partial instrumentation is
	// behavior-preserving; `tinman-bench -analyze=off` measures it.
	NoFastPath bool
}

// VM executes programs over a heap under a taint policy. A VM is one
// endpoint's execution engine; TinMan pairs a device VM with a trusted-node
// VM over the DSM.
type VM struct {
	Program *Program
	Heap    *Heap
	Policy  taint.Policy
	Hooks   Hooks

	// Counters tallies propagation classes when CollectStats is set.
	Counters     taint.Counters
	CollectStats bool

	// Instrs counts executed instructions (the compute-cost model input);
	// Calls counts method invocations (Table 3's offloaded-code metric).
	Instrs uint64
	Calls  uint64
	// FastInstrs counts the subset of Instrs executed by the uninstrumented
	// fast-path loop — the partial-instrumentation engagement metric
	// (always ≤ Instrs; zero with NoFastPath or an unanalyzed program).
	FastInstrs uint64

	corIdleWindow uint64
	sinceTainted  uint64

	natives map[string]*NativeDef

	stringClass *Class
	arrayClass  *Class

	trackH2H, trackH2S, trackS2S, trackS2H bool
	// tracking is true for any policy other than Off: frames then carry
	// shadow tag arrays (the TaintDroid design of storing taints adjacent
	// to registers), which is where tainting's runtime cost comes from.
	tracking bool
	// slowPath mirrors Config.SlowPath (reference interpreter).
	slowPath bool
	// fastEnabled gates the uninstrumented fast-path loop: the program must
	// be analyzed, and neither SlowPath nor NoFastPath set. The trusted
	// node's cor-idle window needs a per-instruction check the fast loop
	// deliberately lacks, so it also disables it.
	fastEnabled bool
}

// New creates a VM. The program must be sealed.
func New(cfg Config) *VM {
	if cfg.Program == nil {
		panic("vm: nil program")
	}
	if cfg.Heap == nil {
		panic("vm: nil heap")
	}
	v := &VM{
		Program:       cfg.Program,
		Heap:          cfg.Heap,
		Policy:        cfg.Policy,
		CollectStats:  cfg.CollectStats,
		corIdleWindow: cfg.CorIdleWindow,
		slowPath:      cfg.SlowPath,
		natives:       make(map[string]*NativeDef),
		trackH2H:      cfg.Policy.Tracks(taint.HeapToHeap),
		trackH2S:      cfg.Policy.Tracks(taint.HeapToStack),
		trackS2S:      cfg.Policy.Tracks(taint.StackToStack),
		trackS2H:      cfg.Policy.Tracks(taint.StackToHeap),
	}
	v.tracking = v.trackH2H || v.trackH2S || v.trackS2S || v.trackS2H
	v.fastEnabled = !cfg.SlowPath && !cfg.NoFastPath && cfg.CorIdleWindow == 0 &&
		cfg.Program.Analyzed()
	// Built-in classes exist on every VM so both endpoints resolve them
	// identically during DSM sync.
	v.stringClass = NewClass("java/lang/String")
	v.arrayClass = NewClass("java/lang/Array")
	return v
}

// Tracking reports whether any propagation class is instrumented (false
// only for the Off baseline).
func (v *VM) Tracking() bool { return v.tracking }

// StringClass returns the built-in string class.
func (v *VM) StringClass() *Class { return v.stringClass }

// ArrayClass returns the built-in array class.
func (v *VM) ArrayClass() *Class { return v.arrayClass }

// ClassByName resolves built-ins first, then program classes.
func (v *VM) ClassByName(name string) *Class {
	switch name {
	case v.stringClass.Name:
		return v.stringClass
	case v.arrayClass.Name:
		return v.arrayClass
	}
	return v.Program.Class(name)
}

// RegisterNative installs a native method implementation.
func (v *VM) RegisterNative(def *NativeDef) {
	if def.Fn == nil {
		panic(fmt.Sprintf("vm: native %s has no implementation", def.Name))
	}
	if _, dup := v.natives[def.Name]; dup {
		panic(fmt.Sprintf("vm: native %s registered twice", def.Name))
	}
	v.natives[def.Name] = def
}

// Native returns a registered native, or nil.
func (v *VM) Native(name string) *NativeDef { return v.natives[name] }

// NewString allocates an untainted string object.
func (v *VM) NewString(s string) *Object {
	return v.Heap.AllocString(v.stringClass, s, taint.None)
}

// NewTaintedString allocates a string carrying the given tag — this is how
// the framework materializes cor placeholders on the device and cor
// plaintext on the trusted node.
func (v *VM) NewTaintedString(s string, tag taint.Tag) *Object {
	return v.Heap.AllocString(v.stringClass, s, tag)
}

// ResetIdle restarts the cor-idle window (called after migration).
func (v *VM) ResetIdle() { v.sinceTainted = 0 }

// Frame is one activation record. Under a tracking policy, Tags is the
// shadow taint store parallel to Regs (nil under the Off policy — the
// untainted baseline touches no taint memory at all).
type Frame struct {
	Method *Method
	PC     int
	Regs   []Value
	Tags   []taint.Tag
	// RetReg is the caller register that receives this frame's return value.
	RetReg int

	// fastOK marks a frame born taint-free in a fast-eligible method: the
	// interpreter may run it on the uninstrumented fast-path loop, whose
	// invariant is that every register shadow tag of such a frame is None.
	// deopted is set the first time taint reaches the frame (a guard trip,
	// a tainted return value); the frame then runs on the tracked loop for
	// the rest of its life. Frames rebuilt by the DSM or rebound across
	// endpoints leave both false — conservatively tracked.
	fastOK  bool
	deopted bool
}

// Tag returns register i's shadow tag (None when untracked).
func (f *Frame) Tag(i int) taint.Tag {
	if f.Tags == nil {
		return taint.None
	}
	return f.Tags[i]
}

// Thread is a logical thread: a stack of frames bound to a VM. After a
// migration the same Thread object continues on the other endpoint's VM
// (the DSM rebinds it).
type Thread struct {
	VM     *VM
	Frames []*Frame
	Result Value
	// MaxInstrs bounds a single Run call as a runaway guard; 0 means the
	// default of 500M instructions.
	MaxInstrs uint64

	// framePool recycles frames popped by returns so a call-heavy workload
	// allocates each frame shape once per thread instead of once per call
	// (regs and tag slices are re-sliced and zeroed on reuse). Popped
	// frames are unreachable from the DSM — migration captures only the
	// live stack — which is what makes the recycling safe.
	framePool []*Frame
	// nativeArgs is the reusable argument buffer for native calls (see
	// NativeFunc on its lifetime).
	nativeArgs []Value
}

// NewThread prepares a thread that will execute method with the given
// arguments.
func (v *VM) NewThread(m *Method, args ...Value) (*Thread, error) {
	if m == nil {
		return nil, fmt.Errorf("vm: nil method")
	}
	if len(args) != m.NArgs {
		return nil, fmt.Errorf("vm: %s takes %d args, got %d", m.FullName(), m.NArgs, len(args))
	}
	f := newFrame(m, v.tracking)
	copy(f.Regs, args)
	// Value.Tag is meaningful at API boundaries: seed the shadow store from
	// the incoming arguments.
	if v.tracking {
		for i, a := range args {
			f.Tags[i] = a.Tag
		}
	}
	// Entry guard of the fast path: externally supplied taint (a cor
	// placeholder argument, a tainted password) forces the tracked loop no
	// matter what the static analysis proved.
	if v.fastEnabled && m.verdict.FastEligible() {
		clean := true
		for _, a := range args {
			if !a.Tag.Empty() {
				clean = false
				break
			}
		}
		f.fastOK = clean
	}
	return &Thread{VM: v, Frames: []*Frame{f}}, nil
}

func newFrame(m *Method, tracking bool) *Frame {
	regs := make([]Value, m.NRegs)
	for i := range regs {
		regs[i] = IntVal(0)
	}
	f := &Frame{Method: m, Regs: regs}
	if tracking {
		f.Tags = make([]taint.Tag, m.NRegs)
	}
	return f
}

// getFrame produces a zeroed frame for m, reusing a pooled frame when one
// is available. Reuse reproduces newFrame exactly: registers read as int(0)
// and shadow tags (under a tracking policy) as None.
func (t *Thread) getFrame(m *Method, tracking bool) *Frame {
	n := len(t.framePool)
	if n == 0 {
		return newFrame(m, tracking)
	}
	f := t.framePool[n-1]
	t.framePool[n-1] = nil
	t.framePool = t.framePool[:n-1]
	f.Method = m
	f.PC = 0
	f.RetReg = 0
	f.fastOK = false
	f.deopted = false
	if cap(f.Regs) >= m.NRegs {
		f.Regs = f.Regs[:m.NRegs]
	} else {
		f.Regs = make([]Value, m.NRegs)
	}
	zero := IntVal(0)
	for i := range f.Regs {
		f.Regs[i] = zero
	}
	if !tracking {
		f.Tags = nil
	} else if cap(f.Tags) >= m.NRegs {
		f.Tags = f.Tags[:m.NRegs]
		for i := range f.Tags {
			f.Tags[i] = taint.None
		}
	} else {
		f.Tags = make([]taint.Tag, m.NRegs)
	}
	return f
}

// putFrame returns a popped frame to the pool. Only the interpreter calls
// it, and only for frames no longer on the stack.
func (t *Thread) putFrame(f *Frame) {
	f.Method = nil
	t.framePool = append(t.framePool, f)
}

// Run executes until the thread finishes, migrates, or exhausts its budget
// (see interp.go for the dispatch loop). The wrapper is the interpreter's
// single exit: it reports each burst's instruction/call deltas through the
// optional Hooks.OnRunStats without touching the ~50 early returns inside
// the loop.
func (t *Thread) Run() (StopReason, error) {
	hook := t.VM.Hooks.OnRunStats
	if hook == nil {
		return t.run()
	}
	i0, c0 := t.VM.Instrs, t.VM.Calls
	stop, err := t.run()
	hook(t.VM.Instrs-i0, t.VM.Calls-c0, stop)
	return stop, err
}

// Depth returns the current frame-stack depth.
func (t *Thread) Depth() int { return len(t.Frames) }

// Top returns the innermost frame, or nil if the thread finished.
func (t *Thread) Top() *Frame {
	if len(t.Frames) == 0 {
		return nil
	}
	return t.Frames[len(t.Frames)-1]
}

// Rebind moves the thread to another VM (after DSM migration). Frame
// methods are re-resolved against the target VM's program by name, since
// Method pointers are endpoint-local.
func (t *Thread) Rebind(v *VM) error {
	for _, f := range t.Frames {
		m := v.Program.Method(f.Method.Class.Name, f.Method.Name)
		if m == nil {
			return fmt.Errorf("vm: rebind: method %s not found in target program", f.Method.FullName())
		}
		f.Method = m
		// A migrated-in frame may carry taint the source endpoint tracked;
		// run it on the tracked loop (the target program's analysis proves
		// nothing about this frame's current register state).
		f.fastOK = false
		f.deopted = false
	}
	t.VM = v
	return nil
}

// errAt decorates runtime errors with source position.
func errAt(f *Frame, format string, args ...any) error {
	return fmt.Errorf("vm: %s@%d: %s", f.Method.FullName(), f.PC, fmt.Sprintf(format, args...))
}
