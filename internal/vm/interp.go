package vm

import (
	"crypto/sha256"
	"encoding/hex"
	"strconv"
	"strings"

	"tinman/internal/taint"
)

// maxFrames bounds recursion depth.
const maxFrames = 1024

// defaultMaxInstrs bounds a single Run call.
const defaultMaxInstrs = 500_000_000

// Run executes the thread until it finishes, requests migration, or errors.
// On a migrate stop the PC of the top frame still points at the instruction
// that triggered the stop, so the peer endpoint re-executes it.
//
// Taint bookkeeping follows the TaintDroid design the paper builds on:
// every register has a shadow tag slot (Frame.Tags) and every heap slot a
// shadow tag (Object.FieldTags/ElemTags). A policy pays for exactly the
// propagation classes it tracks — the Off baseline touches no tag memory,
// the Asymmetric device skips the stack-involved classes, and the Full
// trusted node propagates everything. This is where Fig 13's measured
// overhead differences come from.
func (t *Thread) Run() (StopReason, error) {
	v := t.VM
	max := t.MaxInstrs
	if max == 0 {
		max = defaultMaxInstrs
	}
	var executed uint64
	tracking := v.tracking
	// observe is false only for the untainted baseline with no hooks: then
	// heap reads skip taint observation entirely.
	observe := tracking || v.CollectStats || v.Hooks.OnTaintedAccess != nil

	for len(t.Frames) > 0 {
		f := t.Frames[len(t.Frames)-1]
		if f.PC < 0 || f.PC >= len(f.Method.Code) {
			return StopDone, errAt(f, "pc out of range (len=%d)", len(f.Method.Code))
		}
		in := &f.Method.Code[f.PC]

		if executed >= max {
			return StopLimit, nil
		}
		executed++
		v.Instrs++

		// cor-idle window (§3.1 migrate-back case 1), trusted node only.
		if v.corIdleWindow > 0 {
			v.sinceTainted++
			if v.sinceTainted > v.corIdleWindow {
				v.sinceTainted = 0
				return StopMigrateIdle, nil
			}
		}

		regs := f.Regs
		tags := f.Tags
		npc := f.PC + 1

		switch in.Op {
		case OpNop:

		case OpConst:
			regs[in.A] = IntVal(in.Imm)
			if v.trackS2S {
				tags[in.A] = taint.None
			}
		case OpConstF:
			regs[in.A] = FloatVal(in.F)
			if v.trackS2S {
				tags[in.A] = taint.None
			}
		case OpConstStr:
			regs[in.A] = RefVal(v.NewString(in.Sym))
			if v.trackS2S {
				tags[in.A] = taint.None
			}

		case OpMove:
			regs[in.A] = regs[in.B]
			if v.trackS2S {
				tags[in.A] = tags[in.B]
				if v.CollectStats {
					v.Counters.Add(taint.StackToStack)
				}
			}

		case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr, OpCmp:
			b, c := regs[in.B].Int, regs[in.C].Int
			var r int64
			switch in.Op {
			case OpAdd:
				r = b + c
			case OpSub:
				r = b - c
			case OpMul:
				r = b * c
			case OpDiv:
				if c == 0 {
					return StopDone, errAt(f, "division by zero")
				}
				r = b / c
			case OpRem:
				if c == 0 {
					return StopDone, errAt(f, "division by zero")
				}
				r = b % c
			case OpAnd:
				r = b & c
			case OpOr:
				r = b | c
			case OpXor:
				r = b ^ c
			case OpShl:
				r = b << uint(c&63)
			case OpShr:
				r = b >> uint(c&63)
			case OpCmp:
				switch {
				case b < c:
					r = -1
				case b > c:
					r = 1
				}
			}
			regs[in.A] = IntVal(r)
			if v.trackS2S {
				tags[in.A] = tags[in.B].Union(tags[in.C])
				if v.CollectStats {
					v.Counters.Add(taint.StackToStack)
				}
			}

		case OpNeg, OpNot:
			r := -regs[in.B].Int
			if in.Op == OpNot {
				r = ^regs[in.B].Int
			}
			regs[in.A] = IntVal(r)
			if v.trackS2S {
				tags[in.A] = tags[in.B]
				if v.CollectStats {
					v.Counters.Add(taint.StackToStack)
				}
			}

		case OpAddF, OpSubF, OpMulF, OpDivF, OpCmpF:
			b, c := regs[in.B].Float, regs[in.C].Float
			var res Value
			switch in.Op {
			case OpAddF:
				res = FloatVal(b + c)
			case OpSubF:
				res = FloatVal(b - c)
			case OpMulF:
				res = FloatVal(b * c)
			case OpDivF:
				res = FloatVal(b / c)
			case OpCmpF:
				var r int64
				switch {
				case b < c:
					r = -1
				case b > c:
					r = 1
				}
				res = IntVal(r)
			}
			regs[in.A] = res
			if v.trackS2S {
				tags[in.A] = tags[in.B].Union(tags[in.C])
				if v.CollectStats {
					v.Counters.Add(taint.StackToStack)
				}
			}

		case OpNegF:
			regs[in.A] = FloatVal(-regs[in.B].Float)
			if v.trackS2S {
				tags[in.A] = tags[in.B]
			}

		case OpI2F:
			regs[in.A] = FloatVal(float64(regs[in.B].Int))
			if v.trackS2S {
				tags[in.A] = tags[in.B]
			}
		case OpF2I:
			regs[in.A] = IntVal(int64(regs[in.B].Float))
			if v.trackS2S {
				tags[in.A] = tags[in.B]
			}

		case OpIfEq:
			if regs[in.B].Int == regs[in.C].Int {
				npc = int(in.Imm)
			}
		case OpIfNe:
			if regs[in.B].Int != regs[in.C].Int {
				npc = int(in.Imm)
			}
		case OpIfLt:
			if regs[in.B].Int < regs[in.C].Int {
				npc = int(in.Imm)
			}
		case OpIfLe:
			if regs[in.B].Int <= regs[in.C].Int {
				npc = int(in.Imm)
			}
		case OpIfGt:
			if regs[in.B].Int > regs[in.C].Int {
				npc = int(in.Imm)
			}
		case OpIfGe:
			if regs[in.B].Int >= regs[in.C].Int {
				npc = int(in.Imm)
			}
		case OpIfZ:
			b := regs[in.B]
			if (b.Kind == KindRef && b.Ref == nil) || (b.Kind != KindRef && b.Int == 0) {
				npc = int(in.Imm)
			}
		case OpIfNz:
			b := regs[in.B]
			if (b.Kind == KindRef && b.Ref != nil) || (b.Kind != KindRef && b.Int != 0) {
				npc = int(in.Imm)
			}
		case OpGoto:
			npc = int(in.Imm)

		case OpNew:
			c := v.ClassByName(in.Sym)
			if c == nil {
				return StopDone, errAt(f, "unknown class %s", in.Sym)
			}
			regs[in.A] = RefVal(v.Heap.Alloc(c))
			if v.trackS2S {
				tags[in.A] = taint.None
			}

		case OpNewArr:
			n := regs[in.B].Int
			if n < 0 || n > 1<<24 {
				return StopDone, errAt(f, "bad array length %d", n)
			}
			regs[in.A] = RefVal(v.Heap.AllocArray(v.arrayClass, int(n)))
			if v.trackS2S {
				tags[in.A] = taint.None
			}

		case OpArrLen:
			o := regs[in.B].Ref
			if o == nil {
				return StopDone, errAt(f, "arrlen of null")
			}
			regs[in.A] = IntVal(int64(len(o.Elems)))
			if v.trackS2S {
				tags[in.A] = taint.None
			}

		case OpAGet:
			o := regs[in.B].Ref
			if o == nil {
				return StopDone, errAt(f, "aget from null")
			}
			ix := regs[in.C].Int
			if ix < 0 || ix >= int64(len(o.Elems)) {
				return StopDone, errAt(f, "array index %d out of range [0,%d)", ix, len(o.Elems))
			}
			regs[in.A] = o.Elems[ix]
			if observe {
				tag := o.ElemTag(int(ix)).Union(o.Tag)
				if t.heapRead(tag) {
					return StopMigrateTaint, nil
				}
				if v.trackH2S {
					tags[in.A] = tag
				}
			}

		case OpAPut:
			o := regs[in.B].Ref
			if o == nil {
				return StopDone, errAt(f, "aput to null")
			}
			ix := regs[in.C].Int
			if ix < 0 || ix >= int64(len(o.Elems)) {
				return StopDone, errAt(f, "array index %d out of range [0,%d)", ix, len(o.Elems))
			}
			o.Elems[ix] = regs[in.A]
			if v.trackS2H {
				o.SetElemTag(int(ix), tags[in.A])
				if v.CollectStats {
					v.Counters.Add(taint.StackToHeap)
				}
			}
			v.Heap.MarkDirty(o)

		case OpIGet:
			o := regs[in.B].Ref
			if o == nil {
				return StopDone, errAt(f, "iget %s from null", in.Sym)
			}
			fi := o.Class.FieldIndex(in.Sym)
			if fi < 0 {
				return StopDone, errAt(f, "class %s has no field %s", o.Class.Name, in.Sym)
			}
			regs[in.A] = o.Fields[fi]
			if observe {
				tag := o.FieldTag(fi)
				if t.heapRead(tag) {
					return StopMigrateTaint, nil
				}
				if v.trackH2S {
					tags[in.A] = tag
				}
			}

		case OpIPut:
			o := regs[in.B].Ref
			if o == nil {
				return StopDone, errAt(f, "iput %s to null", in.Sym)
			}
			fi := o.Class.FieldIndex(in.Sym)
			if fi < 0 {
				return StopDone, errAt(f, "class %s has no field %s", o.Class.Name, in.Sym)
			}
			o.Fields[fi] = regs[in.A]
			if v.trackS2H {
				o.SetFieldTag(fi, tags[in.A])
				if v.CollectStats {
					v.Counters.Add(taint.StackToHeap)
				}
			}
			v.Heap.MarkDirty(o)

		case OpClone:
			src := regs[in.B].Ref
			if src == nil {
				return StopDone, errAt(f, "clone of null")
			}
			tag := src.Tag
			var dst *Object
			switch {
			case src.IsStr:
				dst = v.Heap.AllocString(src.Class, src.Str, taint.None)
			case src.IsArr:
				dst = v.Heap.AllocArray(src.Class, len(src.Elems))
				copy(dst.Elems, src.Elems)
				if v.trackH2H && src.ElemTags != nil {
					dst.ElemTags = append([]taint.Tag(nil), src.ElemTags...)
					for _, et := range src.ElemTags {
						tag = tag.Union(et)
					}
				}
			default:
				dst = v.Heap.Alloc(src.Class)
				copy(dst.Fields, src.Fields)
				if v.trackH2H && src.FieldTags != nil {
					dst.FieldTags = append([]taint.Tag(nil), src.FieldTags...)
					for _, ft := range src.FieldTags {
						tag = tag.Union(ft)
					}
				}
			}
			if observe && t.heapCombine(tag) {
				return StopMigrateTaint, nil
			}
			if v.trackH2H {
				dst.Tag = tag
				dst.CorID = src.CorID
			}
			regs[in.A] = RefVal(dst)
			if v.trackS2S {
				tags[in.A] = taint.None
			}

		case OpArrCopy:
			dst, src := regs[in.A].Ref, regs[in.B].Ref
			if dst == nil || src == nil {
				return StopDone, errAt(f, "arrcopy with null")
			}
			n := len(src.Elems)
			if len(dst.Elems) < n {
				n = len(dst.Elems)
			}
			tag := src.Tag
			copy(dst.Elems, src.Elems[:n])
			if v.trackH2H {
				for i := 0; i < n; i++ {
					et := src.ElemTag(i)
					dst.SetElemTag(i, et)
					tag = tag.Union(et)
				}
				if v.CollectStats {
					v.Counters.Add(taint.HeapToHeap)
				}
			}
			if observe && t.heapCombine(tag) {
				return StopMigrateTaint, nil
			}
			if v.trackH2H {
				dst.Tag = dst.Tag.Union(tag)
			}
			v.Heap.MarkDirty(dst)

		case OpStrCat:
			b, c := regs[in.B], regs[in.C]
			if b.Ref == nil || c.Ref == nil {
				return StopDone, errAt(f, "strcat with null")
			}
			var tag taint.Tag
			if observe {
				tag = b.Ref.Tag.Union(c.Ref.Tag).Union(f.Tag(in.B)).Union(f.Tag(in.C))
				if t.heapCombine(tag) {
					return StopMigrateTaint, nil
				}
			}
			if tracking {
				// Instrumented path: the string fast paths Dalvik enables
				// are off under tainting (§6.1); the instrumented concat
				// copies character by character through the slow path.
				bs, cs := b.Ref.Str, c.Ref.Str
				buf := make([]byte, len(bs)+len(cs))
				for i := 0; i < len(bs); i++ {
					buf[i] = bs[i]
				}
				for i := 0; i < len(cs); i++ {
					buf[len(bs)+i] = cs[i]
				}
				newTag := taint.None
				if v.trackH2H {
					newTag = tag
				}
				regs[in.A] = RefVal(v.Heap.AllocString(v.stringClass, string(buf), newTag))
				if v.trackS2S {
					tags[in.A] = taint.None
				}
			} else {
				regs[in.A] = RefVal(v.Heap.AllocString(v.stringClass, b.Ref.Str+c.Ref.Str, taint.None))
			}

		case OpStrLen:
			o := regs[in.B].Ref
			if o == nil {
				return StopDone, errAt(f, "strlen of null")
			}
			regs[in.A] = IntVal(int64(len(o.Str)))
			if observe {
				tag := f.Tag(in.B).Union(o.Tag)
				if t.heapRead(tag) {
					return StopMigrateTaint, nil
				}
				if v.trackH2S {
					tags[in.A] = tag
				}
			}

		case OpCharAt:
			o := regs[in.B].Ref
			if o == nil {
				return StopDone, errAt(f, "charat of null")
			}
			ix := regs[in.C].Int
			if ix < 0 || ix >= int64(len(o.Str)) {
				return StopDone, errAt(f, "string index %d out of range [0,%d)", ix, len(o.Str))
			}
			regs[in.A] = IntVal(int64(o.Str[ix]))
			if observe {
				tag := f.Tag(in.B).Union(o.Tag)
				if t.heapRead(tag) {
					return StopMigrateTaint, nil
				}
				if v.trackH2S {
					tags[in.A] = tag
				}
			}

		case OpStrEq:
			b, c := regs[in.B].Ref, regs[in.C].Ref
			if b == nil || c == nil {
				return StopDone, errAt(f, "streq with null")
			}
			var r int64
			if b.Str == c.Str {
				r = 1
			}
			regs[in.A] = IntVal(r)
			if observe {
				tag := b.Tag.Union(c.Tag)
				if t.heapRead(tag) {
					return StopMigrateTaint, nil
				}
				if v.trackH2S {
					tags[in.A] = tag
				}
			}

		case OpIndexOf:
			b, c := regs[in.B].Ref, regs[in.C].Ref
			if b == nil || c == nil {
				return StopDone, errAt(f, "indexof with null")
			}
			regs[in.A] = IntVal(int64(strings.Index(b.Str, c.Str)))
			if observe {
				tag := b.Tag.Union(c.Tag)
				if t.heapRead(tag) {
					return StopMigrateTaint, nil
				}
				if v.trackH2S {
					tags[in.A] = tag
				}
			}

		case OpSubstr:
			o := regs[in.B].Ref
			if o == nil {
				return StopDone, errAt(f, "substr of null")
			}
			start := regs[in.C].Int
			end := in.Imm
			if end < 0 || end > int64(len(o.Str)) {
				end = int64(len(o.Str))
			}
			if start < 0 || start > end {
				return StopDone, errAt(f, "substr bounds [%d,%d) of %d", start, end, len(o.Str))
			}
			var tag taint.Tag
			if observe {
				tag = f.Tag(in.B).Union(o.Tag)
				if t.heapCombine(tag) {
					return StopMigrateTaint, nil
				}
			}
			newTag := taint.None
			if v.trackH2H {
				newTag = tag
			}
			regs[in.A] = RefVal(v.Heap.AllocString(v.stringClass, o.Str[start:end], newTag))
			if v.trackS2S {
				tags[in.A] = taint.None
			}

		case OpIntToStr:
			b := regs[in.B]
			newTag := taint.None
			if v.trackS2H {
				newTag = tags[in.B]
				if v.CollectStats {
					v.Counters.Add(taint.StackToHeap)
				}
			}
			regs[in.A] = RefVal(v.Heap.AllocString(v.stringClass, strconv.FormatInt(b.Int, 10), newTag))
			if v.trackS2S {
				tags[in.A] = taint.None
			}

		case OpStrToInt:
			o := regs[in.B].Ref
			if o == nil {
				return StopDone, errAt(f, "strtoint of null")
			}
			n, err := strconv.ParseInt(strings.TrimSpace(o.Str), 10, 64)
			if err != nil {
				n = 0
			}
			regs[in.A] = IntVal(n)
			if observe {
				tag := f.Tag(in.B).Union(o.Tag)
				if t.heapRead(tag) {
					return StopMigrateTaint, nil
				}
				if v.trackH2S {
					tags[in.A] = tag
				}
			}

		case OpHash:
			o := regs[in.B].Ref
			if o == nil {
				return StopDone, errAt(f, "hash of null")
			}
			var tag taint.Tag
			if observe {
				tag = f.Tag(in.B).Union(o.Tag)
				if t.heapCombine(tag) {
					return StopMigrateTaint, nil
				}
			}
			sum := sha256.Sum256([]byte(o.Str))
			newTag := taint.None
			if v.trackH2H {
				newTag = tag
			}
			regs[in.A] = RefVal(v.Heap.AllocString(v.stringClass, hex.EncodeToString(sum[:]), newTag))
			if v.trackS2S {
				tags[in.A] = taint.None
			}

		case OpInvoke, OpInvokeV:
			var m *Method
			if in.Op == OpInvoke {
				m = v.Program.Method(in.Sym2, in.Sym)
				if m == nil {
					return StopDone, errAt(f, "unknown method %s.%s", in.Sym2, in.Sym)
				}
			} else {
				if len(in.Args) == 0 {
					return StopDone, errAt(f, "invokev with no receiver")
				}
				recv := regs[in.Args[0]].Ref
				if recv == nil {
					return StopDone, errAt(f, "invokev %s on null", in.Sym)
				}
				m = recv.Class.Methods[in.Sym]
				if m == nil {
					return StopDone, errAt(f, "class %s has no method %s", recv.Class.Name, in.Sym)
				}
			}
			if len(in.Args) != m.NArgs {
				return StopDone, errAt(f, "%s takes %d args, got %d", m.FullName(), m.NArgs, len(in.Args))
			}
			if len(t.Frames) >= maxFrames {
				return StopDone, errAt(f, "stack overflow (%d frames)", maxFrames)
			}
			v.Calls++
			if v.Hooks.OnInvoke != nil {
				v.Hooks.OnInvoke(m)
			}
			nf := newFrame(m, tracking)
			for i, r := range in.Args {
				nf.Regs[i] = regs[r]
			}
			if tracking {
				for i, r := range in.Args {
					nf.Tags[i] = tags[r]
				}
			}
			nf.RetReg = in.A
			f.PC = npc
			t.Frames = append(t.Frames, nf)
			continue

		case OpReturn, OpRetVoid:
			ret := NullVal()
			retTag := taint.None
			if in.Op == OpReturn {
				ret = regs[in.B]
				if v.trackS2S {
					retTag = f.Tag(in.B)
				}
			}
			t.Frames = t.Frames[:len(t.Frames)-1]
			if len(t.Frames) == 0 {
				ret.Tag = retTag // boundary: materialize the shadow tag
				t.Result = ret
				return StopDone, nil
			}
			caller := t.Frames[len(t.Frames)-1]
			caller.Regs[f.RetReg] = ret
			if tracking {
				caller.Tags[f.RetReg] = retTag
			}
			continue

		case OpMonEnter:
			o := regs[in.B].Ref
			if o == nil {
				return StopDone, errAt(f, "monenter on null")
			}
			if v.Hooks.OnMonitorEnter != nil && v.Hooks.OnMonitorEnter(o) {
				return StopMigrateLock, nil
			}
		case OpMonExit:
			o := regs[in.B].Ref
			if o == nil {
				return StopDone, errAt(f, "monexit on null")
			}
			if v.Hooks.OnMonitorExit != nil {
				v.Hooks.OnMonitorExit(o)
			}

		case OpNative:
			def := v.natives[in.Sym]
			if def == nil {
				return StopDone, errAt(f, "unknown native %s", in.Sym)
			}
			if v.Hooks.NativeGate != nil && v.Hooks.NativeGate(def) {
				return StopMigrateNative, nil
			}
			args := make([]Value, len(in.Args))
			for i, r := range in.Args {
				args[i] = regs[r]
				args[i].Tag = f.Tag(r) // boundary: natives see shadow tags
			}
			res, err := def.Fn(t, args)
			if err != nil {
				return StopDone, errAt(f, "native %s: %v", in.Sym, err)
			}
			regs[in.A] = res
			if tracking {
				tags[in.A] = res.Tag
			}

		case OpTaintSet:
			o := regs[in.B].Ref
			if o == nil {
				return StopDone, errAt(f, "taintset on null")
			}
			o.Tag = o.Tag.Union(taint.Bit(int(in.Imm)))
			v.Heap.MarkDirty(o)

		case OpTaintGet:
			o := regs[in.B].Ref
			if o == nil {
				return StopDone, errAt(f, "taintget on null")
			}
			regs[in.A] = IntVal(int64(o.Tag))
			if v.trackS2S {
				tags[in.A] = taint.None
			}

		case OpHalt:
			t.Frames = t.Frames[:0]
			t.Result = NullVal()
			return StopDone, nil

		default:
			return StopDone, errAt(f, "unimplemented opcode %v", in.Op)
		}

		f.PC = npc
	}
	return StopDone, nil
}

// heapRead handles the taint side of a heap→stack movement: stats, cor-idle
// reset and the offload trigger. It reports whether migration is requested.
func (t *Thread) heapRead(tag taint.Tag) bool {
	v := t.VM
	if v.CollectStats {
		v.Counters.Add(taint.HeapToStack)
	}
	if tag.Empty() {
		return false
	}
	v.sinceTainted = 0
	if v.Hooks.OnTaintedAccess != nil {
		if v.CollectStats {
			v.Counters.Triggered++
		}
		return v.Hooks.OnTaintedAccess(tag, taint.HeapToStack)
	}
	return false
}

// heapCombine handles the taint side of a heap→heap movement that creates a
// derived value (concat, hash, clone): on the device a tainted combination
// yields a new cor and triggers offloading (§3.5, fig 11 line 6).
func (t *Thread) heapCombine(tag taint.Tag) bool {
	v := t.VM
	if v.CollectStats {
		v.Counters.Add(taint.HeapToHeap)
	}
	if tag.Empty() {
		return false
	}
	v.sinceTainted = 0
	if v.Hooks.OnTaintedAccess != nil {
		if v.CollectStats {
			v.Counters.Triggered++
		}
		return v.Hooks.OnTaintedAccess(tag, taint.HeapToHeap)
	}
	return false
}
