package vm

import (
	"crypto/sha256"
	"encoding/hex"
	"strconv"
	"strings"

	"tinman/internal/taint"
)

// maxFrames bounds recursion depth.
const maxFrames = 1024

// defaultMaxInstrs bounds a single Run call.
const defaultMaxInstrs = 500_000_000

// Run executes the thread until it finishes, requests migration, or errors.
// On a migrate stop the PC of the top frame still points at the instruction
// that triggered the stop, so the peer endpoint re-executes it.
//
// Taint bookkeeping follows the TaintDroid design the paper builds on:
// every register has a shadow tag slot (Frame.Tags) and every heap slot a
// shadow tag (Object.FieldTags/ElemTags). A policy pays for exactly the
// propagation classes it tracks — the Off baseline touches no tag memory,
// the Asymmetric device skips the stack-involved classes, and the Full
// trusted node propagates everything. This is where Fig 13's measured
// overhead differences come from.
//
// The dispatch loop is organized for speed (the numbers behind Fig 13 are
// real interpreter time):
//
//   - frame state (pc, code, regs, tags) lives in locals that are reloaded
//     only on a frame switch and written back only when control leaves the
//     loop, instead of per instruction;
//   - policy checks are hoisted into booleans computed once per Run;
//   - symbol operands resolve through link-time pre-resolution and per-site
//     monomorphic inline caches (see link.go), falling back to the original
//     map lookups on a miss — or always, under Config.SlowPath;
//   - returned frames are recycled through a per-thread pool, and native
//     argument slices reuse one scratch buffer.
//
// VM.Instrs and the top frame's PC are therefore exact when Run returns and
// before any native call, but not observed mid-loop.
//
// When the program's taint pre-analysis is in effect (vm.fastEnabled), run
// alternates between two loops: runTracked below — the fully instrumented
// interpreter — and runFast (interp_fast.go), the uninstrumented loop for
// frames born taint-free in analysis-approved methods. Control switches at
// frame boundaries: pushing a fast-eligible frame with clean argument tags
// hands off to the fast loop; a deoptimization guard or a push of tracked
// code hands back. Both loops share the one instruction budget, so
// StopLimit lands on exactly the same instruction either way.
func (t *Thread) run() (StopReason, error) {
	v := t.VM
	max := t.MaxInstrs
	if max == 0 {
		max = defaultMaxInstrs
	}
	if len(t.Frames) == 0 {
		return StopDone, nil
	}
	if !v.fastEnabled {
		stop, _, _, err := t.runTracked(max)
		return stop, err
	}
	var used uint64
	for {
		f := t.Frames[len(t.Frames)-1]
		var stop StopReason
		var hand bool
		var n uint64
		var err error
		if f.fastOK && !f.deopted {
			stop, hand, n, err = t.runFast(max - used)
		} else {
			stop, hand, n, err = t.runTracked(max - used)
		}
		used += n
		if err != nil || !hand {
			return stop, err
		}
	}
}

// runTracked is the fully instrumented dispatch loop, bounded by budget
// instructions. It returns the consumed instruction count and, when the
// fast path is enabled, may return handoff=true with the thread's top
// frame positioned for the uninstrumented loop (see run above); every
// other return is final for this Run.
func (t *Thread) runTracked(budget uint64) (StopReason, bool, uint64, error) {
	v := t.VM
	max := budget
	if len(t.Frames) == 0 {
		return StopDone, false, 0, nil
	}

	// executed counts instructions this burst; flushed is the prefix
	// already folded into v.Instrs. The difference is flushed at every exit
	// and before native calls.
	var executed, flushed uint64
	fastHand := v.fastEnabled
	tracking := v.tracking
	// observe is false only for the untainted baseline with no hooks: then
	// heap reads skip taint observation entirely.
	observe := tracking || v.CollectStats || v.Hooks.OnTaintedAccess != nil
	s2s, s2h, h2s, h2h := v.trackS2S, v.trackS2H, v.trackH2S, v.trackH2H
	stats := v.CollectStats
	countS2S := s2s && stats
	countS2H := s2h && stats
	corIdle := v.corIdleWindow > 0
	idleWin := v.corIdleWindow
	slow := v.slowPath

	f := t.Frames[len(t.Frames)-1]
	pc := f.PC
	code := f.Method.Code
	regs := f.Regs
	tags := f.Tags

	for {
		if pc < 0 || pc >= len(code) {
			return t.failAt(f, pc, executed-flushed, "pc out of range (len=%d)", len(code))
		}
		if executed >= max {
			f.PC = pc
			v.Instrs += executed - flushed
			return StopLimit, false, executed, nil
		}
		in := &code[pc]
		executed++

		// cor-idle window (§3.1 migrate-back case 1), trusted node only.
		if corIdle {
			v.sinceTainted++
			if v.sinceTainted > idleWin {
				v.sinceTainted = 0
				f.PC = pc
				v.Instrs += executed - flushed
				return StopMigrateIdle, false, executed, nil
			}
		}

		npc := pc + 1

		switch in.Op {
		case OpNop:

		case OpConst:
			regs[in.A] = IntVal(in.Imm)
			if s2s {
				tags[in.A] = taint.None
			}
		case OpConstF:
			regs[in.A] = FloatVal(in.F)
			if s2s {
				tags[in.A] = taint.None
			}
		case OpConstStr:
			// Per-site interning: the literal's string object is allocated
			// once per VM and reused while it stays untainted. Anything
			// that taints or cor-binds the interned object (taintset, a
			// synced-back tag) forces a fresh untainted copy — the literal
			// semantics are copy-on-taint.
			var o *Object
			if !slow && in.icVM == v {
				if c := in.icStr; c != nil && c.Tag == taint.None && c.CorID == "" {
					o = c
				}
			}
			if o == nil {
				o = v.NewString(in.Sym)
				if !slow {
					in.icVM = v
					in.icStr = o
				}
			}
			regs[in.A] = RefVal(o)
			if s2s {
				tags[in.A] = taint.None
			}

		case OpMove:
			regs[in.A] = regs[in.B]
			if s2s {
				tags[in.A] = tags[in.B]
				if stats {
					v.Counters.Add(taint.StackToStack)
				}
			}

		case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr, OpCmp:
			b, c := regs[in.B].Int, regs[in.C].Int
			var r int64
			switch in.Op {
			case OpAdd:
				r = b + c
			case OpSub:
				r = b - c
			case OpMul:
				r = b * c
			case OpDiv:
				if c == 0 {
					return t.failAt(f, pc, executed-flushed, "division by zero")
				}
				r = b / c
			case OpRem:
				if c == 0 {
					return t.failAt(f, pc, executed-flushed, "division by zero")
				}
				r = b % c
			case OpAnd:
				r = b & c
			case OpOr:
				r = b | c
			case OpXor:
				r = b ^ c
			case OpShl:
				r = b << uint(c&63)
			case OpShr:
				r = b >> uint(c&63)
			case OpCmp:
				switch {
				case b < c:
					r = -1
				case b > c:
					r = 1
				}
			}
			regs[in.A] = IntVal(r)
			if s2s {
				tags[in.A] = tags[in.B].Union(tags[in.C])
				if countS2S {
					v.Counters.Add(taint.StackToStack)
				}
			}

		case OpNeg, OpNot:
			r := -regs[in.B].Int
			if in.Op == OpNot {
				r = ^regs[in.B].Int
			}
			regs[in.A] = IntVal(r)
			if s2s {
				tags[in.A] = tags[in.B]
				if countS2S {
					v.Counters.Add(taint.StackToStack)
				}
			}

		case OpAddF, OpSubF, OpMulF, OpDivF, OpCmpF:
			b, c := regs[in.B].Float, regs[in.C].Float
			var res Value
			switch in.Op {
			case OpAddF:
				res = FloatVal(b + c)
			case OpSubF:
				res = FloatVal(b - c)
			case OpMulF:
				res = FloatVal(b * c)
			case OpDivF:
				res = FloatVal(b / c)
			case OpCmpF:
				var r int64
				switch {
				case b < c:
					r = -1
				case b > c:
					r = 1
				}
				res = IntVal(r)
			}
			regs[in.A] = res
			if s2s {
				tags[in.A] = tags[in.B].Union(tags[in.C])
				if countS2S {
					v.Counters.Add(taint.StackToStack)
				}
			}

		case OpNegF:
			regs[in.A] = FloatVal(-regs[in.B].Float)
			if s2s {
				tags[in.A] = tags[in.B]
			}

		case OpI2F:
			regs[in.A] = FloatVal(float64(regs[in.B].Int))
			if s2s {
				tags[in.A] = tags[in.B]
			}
		case OpF2I:
			regs[in.A] = IntVal(int64(regs[in.B].Float))
			if s2s {
				tags[in.A] = tags[in.B]
			}

		case OpIfEq:
			if regs[in.B].Int == regs[in.C].Int {
				npc = int(in.Imm)
			}
		case OpIfNe:
			if regs[in.B].Int != regs[in.C].Int {
				npc = int(in.Imm)
			}
		case OpIfLt:
			if regs[in.B].Int < regs[in.C].Int {
				npc = int(in.Imm)
			}
		case OpIfLe:
			if regs[in.B].Int <= regs[in.C].Int {
				npc = int(in.Imm)
			}
		case OpIfGt:
			if regs[in.B].Int > regs[in.C].Int {
				npc = int(in.Imm)
			}
		case OpIfGe:
			if regs[in.B].Int >= regs[in.C].Int {
				npc = int(in.Imm)
			}
		case OpIfZ:
			b := regs[in.B]
			if (b.Kind == KindRef && b.Ref == nil) || (b.Kind != KindRef && b.Int == 0) {
				npc = int(in.Imm)
			}
		case OpIfNz:
			b := regs[in.B]
			if (b.Kind == KindRef && b.Ref != nil) || (b.Kind != KindRef && b.Int != 0) {
				npc = int(in.Imm)
			}
		case OpGoto:
			npc = int(in.Imm)

		case OpNew:
			var c *Class
			if !slow {
				c = in.icClass
			}
			if c == nil {
				c = v.ClassByName(in.Sym)
				if c == nil {
					return t.failAt(f, pc, executed-flushed, "unknown class %s", in.Sym)
				}
				// Cache only program classes: the string/array built-ins
				// are per-VM objects and must stay symbolic.
				if !slow && c != v.stringClass && c != v.arrayClass {
					in.icClass = c
				}
			}
			regs[in.A] = RefVal(v.Heap.Alloc(c))
			if s2s {
				tags[in.A] = taint.None
			}

		case OpNewArr:
			n := regs[in.B].Int
			if n < 0 || n > 1<<24 {
				return t.failAt(f, pc, executed-flushed, "bad array length %d", n)
			}
			regs[in.A] = RefVal(v.Heap.AllocArray(v.arrayClass, int(n)))
			if s2s {
				tags[in.A] = taint.None
			}

		case OpArrLen:
			o := regs[in.B].Ref
			if o == nil {
				return t.failAt(f, pc, executed-flushed, "arrlen of null")
			}
			regs[in.A] = IntVal(int64(len(o.Elems)))
			if s2s {
				tags[in.A] = taint.None
			}

		case OpAGet:
			o := regs[in.B].Ref
			if o == nil {
				return t.failAt(f, pc, executed-flushed, "aget from null")
			}
			ix := regs[in.C].Int
			if ix < 0 || ix >= int64(len(o.Elems)) {
				return t.failAt(f, pc, executed-flushed, "array index %d out of range [0,%d)", ix, len(o.Elems))
			}
			regs[in.A] = o.Elems[ix]
			if observe {
				tag := o.ElemTag(int(ix)).Union(o.Tag)
				if t.heapRead(tag) {
					f.PC = pc
					v.Instrs += executed - flushed
					return StopMigrateTaint, false, executed, nil
				}
				if h2s {
					tags[in.A] = tag
				}
			}

		case OpAPut:
			o := regs[in.B].Ref
			if o == nil {
				return t.failAt(f, pc, executed-flushed, "aput to null")
			}
			ix := regs[in.C].Int
			if ix < 0 || ix >= int64(len(o.Elems)) {
				return t.failAt(f, pc, executed-flushed, "array index %d out of range [0,%d)", ix, len(o.Elems))
			}
			o.Elems[ix] = regs[in.A]
			if s2h {
				o.SetElemTag(int(ix), tags[in.A])
				if countS2H {
					v.Counters.Add(taint.StackToHeap)
				}
			}
			v.Heap.MarkDirty(o)

		case OpIGet:
			o := regs[in.B].Ref
			if o == nil {
				return t.failAt(f, pc, executed-flushed, "iget %s from null", in.Sym)
			}
			// Monomorphic inline cache: field slot resolution keyed on the
			// receiver class, refilled from FieldIndex on a miss.
			var fi int
			if !slow && in.icClass == o.Class {
				fi = in.icSlot
			} else {
				fi = o.Class.FieldIndex(in.Sym)
				if fi < 0 {
					return t.failAt(f, pc, executed-flushed, "class %s has no field %s", o.Class.Name, in.Sym)
				}
				if !slow {
					in.icClass = o.Class
					in.icSlot = fi
				}
			}
			regs[in.A] = o.Fields[fi]
			if observe {
				tag := o.FieldTag(fi)
				if t.heapRead(tag) {
					f.PC = pc
					v.Instrs += executed - flushed
					return StopMigrateTaint, false, executed, nil
				}
				if h2s {
					tags[in.A] = tag
				}
			}

		case OpIPut:
			o := regs[in.B].Ref
			if o == nil {
				return t.failAt(f, pc, executed-flushed, "iput %s to null", in.Sym)
			}
			var fi int
			if !slow && in.icClass == o.Class {
				fi = in.icSlot
			} else {
				fi = o.Class.FieldIndex(in.Sym)
				if fi < 0 {
					return t.failAt(f, pc, executed-flushed, "class %s has no field %s", o.Class.Name, in.Sym)
				}
				if !slow {
					in.icClass = o.Class
					in.icSlot = fi
				}
			}
			o.Fields[fi] = regs[in.A]
			if s2h {
				o.SetFieldTag(fi, tags[in.A])
				if countS2H {
					v.Counters.Add(taint.StackToHeap)
				}
			}
			v.Heap.MarkDirty(o)

		case OpClone:
			src := regs[in.B].Ref
			if src == nil {
				return t.failAt(f, pc, executed-flushed, "clone of null")
			}
			tag := src.Tag
			var dst *Object
			switch {
			case src.IsStr:
				dst = v.Heap.AllocString(src.Class, src.Str, taint.None)
			case src.IsArr:
				dst = v.Heap.AllocArray(src.Class, len(src.Elems))
				copy(dst.Elems, src.Elems)
				if h2h && src.ElemTags != nil {
					dst.ElemTags = append([]taint.Tag(nil), src.ElemTags...)
					for _, et := range src.ElemTags {
						tag = tag.Union(et)
					}
				}
			default:
				dst = v.Heap.Alloc(src.Class)
				copy(dst.Fields, src.Fields)
				if h2h && src.FieldTags != nil {
					dst.FieldTags = append([]taint.Tag(nil), src.FieldTags...)
					for _, ft := range src.FieldTags {
						tag = tag.Union(ft)
					}
				}
			}
			if observe && t.heapCombine(tag) {
				f.PC = pc
				v.Instrs += executed - flushed
				return StopMigrateTaint, false, executed, nil
			}
			if h2h {
				dst.Tag = tag
				dst.CorID = src.CorID
			}
			regs[in.A] = RefVal(dst)
			if s2s {
				tags[in.A] = taint.None
			}

		case OpArrCopy:
			dst, src := regs[in.A].Ref, regs[in.B].Ref
			if dst == nil || src == nil {
				return t.failAt(f, pc, executed-flushed, "arrcopy with null")
			}
			n := len(src.Elems)
			if len(dst.Elems) < n {
				n = len(dst.Elems)
			}
			tag := src.Tag
			copy(dst.Elems, src.Elems[:n])
			if h2h {
				for i := 0; i < n; i++ {
					et := src.ElemTag(i)
					dst.SetElemTag(i, et)
					tag = tag.Union(et)
				}
				if stats {
					v.Counters.Add(taint.HeapToHeap)
				}
			}
			if observe && t.heapCombine(tag) {
				f.PC = pc
				v.Instrs += executed - flushed
				return StopMigrateTaint, false, executed, nil
			}
			if h2h {
				dst.Tag = dst.Tag.Union(tag)
			}
			v.Heap.MarkDirty(dst)

		case OpStrCat:
			b, c := regs[in.B], regs[in.C]
			if b.Ref == nil || c.Ref == nil {
				return t.failAt(f, pc, executed-flushed, "strcat with null")
			}
			var tag taint.Tag
			if observe {
				tag = b.Ref.Tag.Union(c.Ref.Tag).Union(f.Tag(in.B)).Union(f.Tag(in.C))
				if t.heapCombine(tag) {
					f.PC = pc
					v.Instrs += executed - flushed
					return StopMigrateTaint, false, executed, nil
				}
			}
			if tracking {
				// Instrumented path: the string fast paths Dalvik enables
				// are off under tainting (§6.1); the instrumented concat
				// copies character by character through the slow path.
				bs, cs := b.Ref.Str, c.Ref.Str
				buf := make([]byte, len(bs)+len(cs))
				for i := 0; i < len(bs); i++ {
					buf[i] = bs[i]
				}
				for i := 0; i < len(cs); i++ {
					buf[len(bs)+i] = cs[i]
				}
				newTag := taint.None
				if h2h {
					newTag = tag
				}
				regs[in.A] = RefVal(v.Heap.AllocString(v.stringClass, string(buf), newTag))
				if s2s {
					tags[in.A] = taint.None
				}
			} else {
				regs[in.A] = RefVal(v.Heap.AllocString(v.stringClass, b.Ref.Str+c.Ref.Str, taint.None))
			}

		case OpStrLen:
			o := regs[in.B].Ref
			if o == nil {
				return t.failAt(f, pc, executed-flushed, "strlen of null")
			}
			regs[in.A] = IntVal(int64(len(o.Str)))
			if observe {
				tag := f.Tag(in.B).Union(o.Tag)
				if t.heapRead(tag) {
					f.PC = pc
					v.Instrs += executed - flushed
					return StopMigrateTaint, false, executed, nil
				}
				if h2s {
					tags[in.A] = tag
				}
			}

		case OpCharAt:
			o := regs[in.B].Ref
			if o == nil {
				return t.failAt(f, pc, executed-flushed, "charat of null")
			}
			ix := regs[in.C].Int
			if ix < 0 || ix >= int64(len(o.Str)) {
				return t.failAt(f, pc, executed-flushed, "string index %d out of range [0,%d)", ix, len(o.Str))
			}
			regs[in.A] = IntVal(int64(o.Str[ix]))
			if observe {
				tag := f.Tag(in.B).Union(o.Tag)
				if t.heapRead(tag) {
					f.PC = pc
					v.Instrs += executed - flushed
					return StopMigrateTaint, false, executed, nil
				}
				if h2s {
					tags[in.A] = tag
				}
			}

		case OpStrEq:
			b, c := regs[in.B].Ref, regs[in.C].Ref
			if b == nil || c == nil {
				return t.failAt(f, pc, executed-flushed, "streq with null")
			}
			var r int64
			if b.Str == c.Str {
				r = 1
			}
			regs[in.A] = IntVal(r)
			if observe {
				tag := b.Tag.Union(c.Tag)
				if t.heapRead(tag) {
					f.PC = pc
					v.Instrs += executed - flushed
					return StopMigrateTaint, false, executed, nil
				}
				if h2s {
					tags[in.A] = tag
				}
			}

		case OpIndexOf:
			b, c := regs[in.B].Ref, regs[in.C].Ref
			if b == nil || c == nil {
				return t.failAt(f, pc, executed-flushed, "indexof with null")
			}
			regs[in.A] = IntVal(int64(strings.Index(b.Str, c.Str)))
			if observe {
				tag := b.Tag.Union(c.Tag)
				if t.heapRead(tag) {
					f.PC = pc
					v.Instrs += executed - flushed
					return StopMigrateTaint, false, executed, nil
				}
				if h2s {
					tags[in.A] = tag
				}
			}

		case OpSubstr:
			o := regs[in.B].Ref
			if o == nil {
				return t.failAt(f, pc, executed-flushed, "substr of null")
			}
			start := regs[in.C].Int
			end := in.Imm
			if end < 0 || end > int64(len(o.Str)) {
				end = int64(len(o.Str))
			}
			if start < 0 || start > end {
				return t.failAt(f, pc, executed-flushed, "substr bounds [%d,%d) of %d", start, end, len(o.Str))
			}
			var tag taint.Tag
			if observe {
				tag = f.Tag(in.B).Union(o.Tag)
				if t.heapCombine(tag) {
					f.PC = pc
					v.Instrs += executed - flushed
					return StopMigrateTaint, false, executed, nil
				}
			}
			newTag := taint.None
			if h2h {
				newTag = tag
			}
			regs[in.A] = RefVal(v.Heap.AllocString(v.stringClass, o.Str[start:end], newTag))
			if s2s {
				tags[in.A] = taint.None
			}

		case OpIntToStr:
			b := regs[in.B]
			newTag := taint.None
			if s2h {
				newTag = tags[in.B]
				if countS2H {
					v.Counters.Add(taint.StackToHeap)
				}
			}
			regs[in.A] = RefVal(v.Heap.AllocString(v.stringClass, strconv.FormatInt(b.Int, 10), newTag))
			if s2s {
				tags[in.A] = taint.None
			}

		case OpStrToInt:
			o := regs[in.B].Ref
			if o == nil {
				return t.failAt(f, pc, executed-flushed, "strtoint of null")
			}
			n, err := strconv.ParseInt(strings.TrimSpace(o.Str), 10, 64)
			if err != nil {
				n = 0
			}
			regs[in.A] = IntVal(n)
			if observe {
				tag := f.Tag(in.B).Union(o.Tag)
				if t.heapRead(tag) {
					f.PC = pc
					v.Instrs += executed - flushed
					return StopMigrateTaint, false, executed, nil
				}
				if h2s {
					tags[in.A] = tag
				}
			}

		case OpHash:
			o := regs[in.B].Ref
			if o == nil {
				return t.failAt(f, pc, executed-flushed, "hash of null")
			}
			var tag taint.Tag
			if observe {
				tag = f.Tag(in.B).Union(o.Tag)
				if t.heapCombine(tag) {
					f.PC = pc
					v.Instrs += executed - flushed
					return StopMigrateTaint, false, executed, nil
				}
			}
			sum := sha256.Sum256([]byte(o.Str))
			newTag := taint.None
			if h2h {
				newTag = tag
			}
			regs[in.A] = RefVal(v.Heap.AllocString(v.stringClass, hex.EncodeToString(sum[:]), newTag))
			if s2s {
				tags[in.A] = taint.None
			}

		case OpInvoke, OpInvokeV:
			var m *Method
			if in.Op == OpInvoke {
				// Link-time resolved target; symbolic fallback for
				// unlinked programs and the reference interpreter.
				if !slow {
					m = in.icMethod
				}
				if m == nil {
					m = v.Program.Method(in.Sym2, in.Sym)
					if m == nil {
						return t.failAt(f, pc, executed-flushed, "unknown method %s.%s", in.Sym2, in.Sym)
					}
					if !slow {
						in.icMethod = m
					}
				}
			} else {
				if len(in.Args) == 0 {
					return t.failAt(f, pc, executed-flushed, "invokev with no receiver")
				}
				recv := regs[in.Args[0]].Ref
				if recv == nil {
					return t.failAt(f, pc, executed-flushed, "invokev %s on null", in.Sym)
				}
				// Virtual dispatch through a monomorphic inline cache on
				// the receiver class.
				if !slow && in.icClass == recv.Class {
					m = in.icMethod
				} else {
					m = recv.Class.Methods[in.Sym]
					if m == nil {
						return t.failAt(f, pc, executed-flushed, "class %s has no method %s", recv.Class.Name, in.Sym)
					}
					if !slow {
						in.icClass = recv.Class
						in.icMethod = m
					}
				}
			}
			if len(in.Args) != m.NArgs {
				return t.failAt(f, pc, executed-flushed, "%s takes %d args, got %d", m.FullName(), m.NArgs, len(in.Args))
			}
			if len(t.Frames) >= maxFrames {
				return t.failAt(f, pc, executed-flushed, "stack overflow (%d frames)", maxFrames)
			}
			v.Calls++
			if v.Hooks.OnInvoke != nil {
				f.PC = pc
				v.Instrs += executed - flushed
				flushed = executed
				v.Hooks.OnInvoke(m)
			}
			nf := t.getFrame(m, tracking)
			for i, r := range in.Args {
				nf.Regs[i] = regs[r]
			}
			if tracking {
				for i, r := range in.Args {
					nf.Tags[i] = tags[r]
				}
			}
			nf.RetReg = in.A
			f.PC = npc
			t.Frames = append(t.Frames, nf)
			// Fast-path handoff: a frame born with clean argument tags in an
			// analysis-approved method runs on the uninstrumented loop.
			if fastHand && m.verdict.FastEligible() {
				clean := true
				if tracking {
					for i := 0; i < m.NArgs; i++ {
						if !nf.Tags[i].Empty() {
							clean = false
							break
						}
					}
				}
				if clean {
					nf.fastOK = true
					v.Instrs += executed - flushed
					return 0, true, executed, nil
				}
			}
			f = nf
			pc = 0
			code = m.Code
			regs = nf.Regs
			tags = nf.Tags
			continue

		case OpReturn, OpRetVoid:
			ret := NullVal()
			retTag := taint.None
			if in.Op == OpReturn {
				ret = regs[in.B]
				if s2s {
					retTag = f.Tag(in.B)
				}
			}
			t.Frames = t.Frames[:len(t.Frames)-1]
			if len(t.Frames) == 0 {
				ret.Tag = retTag // boundary: materialize the shadow tag
				t.Result = ret
				t.putFrame(f)
				v.Instrs += executed - flushed
				return StopDone, false, executed, nil
			}
			done := f
			f = t.Frames[len(t.Frames)-1]
			pc = f.PC
			code = f.Method.Code
			regs = f.Regs
			tags = f.Tags
			regs[done.RetReg] = ret
			if tracking {
				tags[done.RetReg] = retTag
			}
			t.putFrame(done)
			// Fast-path handoff: returning into a still-clean fast frame
			// resumes the uninstrumented loop — unless the tracked callee
			// returned taint, which deoptimizes the caller for good.
			if fastHand && f.fastOK && !f.deopted {
				if !retTag.Empty() {
					f.deopted = true
				} else {
					f.PC = pc
					v.Instrs += executed - flushed
					return 0, true, executed, nil
				}
			}
			continue

		case OpMonEnter:
			o := regs[in.B].Ref
			if o == nil {
				return t.failAt(f, pc, executed-flushed, "monenter on null")
			}
			if v.Hooks.OnMonitorEnter != nil {
				f.PC = pc
				v.Instrs += executed - flushed
				flushed = executed
				if v.Hooks.OnMonitorEnter(o) {
					return StopMigrateLock, false, executed, nil
				}
			}
		case OpMonExit:
			o := regs[in.B].Ref
			if o == nil {
				return t.failAt(f, pc, executed-flushed, "monexit on null")
			}
			if v.Hooks.OnMonitorExit != nil {
				f.PC = pc
				v.Instrs += executed - flushed
				flushed = executed
				v.Hooks.OnMonitorExit(o)
			}

		case OpNative:
			// Per-VM inline cache: natives are registered on the VM, not
			// the program, so the cache key is the VM itself.
			var def *NativeDef
			if !slow && in.icVM == v {
				def = in.icNative
			}
			if def == nil {
				def = v.natives[in.Sym]
				if def == nil {
					return t.failAt(f, pc, executed-flushed, "unknown native %s", in.Sym)
				}
				if !slow {
					in.icVM = v
					in.icNative = def
				}
			}
			// Natives and their gates can observe the VM (cost models,
			// profilers): present exact state.
			f.PC = pc
			v.Instrs += executed - flushed
			flushed = executed
			if v.Hooks.NativeGate != nil && v.Hooks.NativeGate(def) {
				return StopMigrateNative, false, executed, nil
			}
			var args []Value
			if n := len(in.Args); cap(t.nativeArgs) >= n {
				args = t.nativeArgs[:n]
			} else {
				args = make([]Value, n)
				t.nativeArgs = args
			}
			for i, r := range in.Args {
				args[i] = regs[r]
				args[i].Tag = f.Tag(r) // boundary: natives see shadow tags
			}
			res, err := def.Fn(t, args)
			if err != nil {
				return t.failAt(f, pc, 0, "native %s: %v", in.Sym, err)
			}
			regs[in.A] = res
			if tracking {
				tags[in.A] = res.Tag
			}

		case OpTaintSet:
			o := regs[in.B].Ref
			if o == nil {
				return t.failAt(f, pc, executed-flushed, "taintset on null")
			}
			o.Tag = o.Tag.Union(taint.Bit(int(in.Imm)))
			v.Heap.MarkDirty(o)

		case OpTaintGet:
			o := regs[in.B].Ref
			if o == nil {
				return t.failAt(f, pc, executed-flushed, "taintget on null")
			}
			regs[in.A] = IntVal(int64(o.Tag))
			if s2s {
				tags[in.A] = taint.None
			}

		case OpHalt:
			t.Frames = t.Frames[:0]
			t.Result = NullVal()
			f.PC = pc
			v.Instrs += executed - flushed
			return StopDone, false, executed, nil

		default:
			return t.failAt(f, pc, executed-flushed, "unimplemented opcode %v", in.Op)
		}

		pc = npc
	}
}

// failAt terminates Run with a positioned error, first writing back the
// cached interpreter state (frame PC, instruction tally) that the
// dispatch loops keep in locals.
func (t *Thread) failAt(f *Frame, pc int, pending uint64, format string, args ...any) (StopReason, bool, uint64, error) {
	f.PC = pc
	t.VM.Instrs += pending
	return StopDone, false, 0, errAt(f, format, args...)
}

// heapRead handles the taint side of a heap→stack movement: stats, cor-idle
// reset and the offload trigger. It reports whether migration is requested.
func (t *Thread) heapRead(tag taint.Tag) bool {
	v := t.VM
	if v.CollectStats {
		v.Counters.Add(taint.HeapToStack)
	}
	if tag.Empty() {
		return false
	}
	v.sinceTainted = 0
	if v.Hooks.OnTaintedAccess != nil {
		if v.CollectStats {
			v.Counters.Triggered++
		}
		return v.Hooks.OnTaintedAccess(tag, taint.HeapToStack)
	}
	return false
}

// heapCombine handles the taint side of a heap→heap movement that creates a
// derived value (concat, hash, clone): on the device a tainted combination
// yields a new cor and triggers offloading (§3.5, fig 11 line 6).
func (t *Thread) heapCombine(tag taint.Tag) bool {
	v := t.VM
	if v.CollectStats {
		v.Counters.Add(taint.HeapToHeap)
	}
	if tag.Empty() {
		return false
	}
	v.sinceTainted = 0
	if v.Hooks.OnTaintedAccess != nil {
		if v.CollectStats {
			v.Counters.Triggered++
		}
		return v.Hooks.OnTaintedAccess(tag, taint.HeapToHeap)
	}
	return false
}
