package vm

import (
	"strings"
	"testing"
)

// buildProgram assembles a program by hand (the asm package is not
// available here without an import cycle in tests, and hand-building also
// exercises paths the assembler's own validation would reject).
func buildProgram(t *testing.T, ms ...*Method) *Program {
	t.Helper()
	p := NewProgram("t")
	c := NewClass("C", "f")
	for _, m := range ms {
		c.AddMethod(m)
	}
	p.AddClass(c)
	p.Seal()
	return p
}

func TestVerifyAcceptsValidProgram(t *testing.T) {
	callee := &Method{Name: "callee", NArgs: 1, NRegs: 2, Code: []Instr{
		{Op: OpReturn, B: 0},
	}}
	main := &Method{Name: "main", NArgs: 0, NRegs: 4, Code: []Instr{
		{Op: OpConst, A: 0, Imm: 5},
		{Op: OpIfZ, B: 0, Imm: 3},
		{Op: OpInvoke, A: 1, Sym2: "C", Sym: "callee", Args: []int{0}},
		{Op: OpRetVoid},
	}}
	if err := buildProgram(t, callee, main).Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejections(t *testing.T) {
	cases := []struct {
		name string
		m    *Method
		want string
	}{
		{"empty", &Method{Name: "m", NRegs: 1}, "empty body"},
		{"args-exceed-regs", &Method{Name: "m", NArgs: 3, NRegs: 2, Code: []Instr{{Op: OpRetVoid}}}, "exceed"},
		{"reg-oob", &Method{Name: "m", NRegs: 2, Code: []Instr{
			{Op: OpConst, A: 5, Imm: 1}, {Op: OpRetVoid},
		}}, "out of range"},
		{"branch-oob", &Method{Name: "m", NRegs: 2, Code: []Instr{
			{Op: OpGoto, Imm: 99}, {Op: OpRetVoid},
		}}, "branch target"},
		{"negative-branch", &Method{Name: "m", NRegs: 2, Code: []Instr{
			{Op: OpGoto, Imm: -1}, {Op: OpRetVoid},
		}}, "branch target"},
		{"fall-off-end", &Method{Name: "m", NRegs: 2, Code: []Instr{
			{Op: OpConst, A: 0, Imm: 1},
		}}, "fall off"},
		{"new-no-class", &Method{Name: "m", NRegs: 2, Code: []Instr{
			{Op: OpNew, A: 0}, {Op: OpRetVoid},
		}}, "without class"},
		{"iget-no-field", &Method{Name: "m", NRegs: 2, Code: []Instr{
			{Op: OpIGet, A: 0, B: 1}, {Op: OpRetVoid},
		}}, "without field"},
		{"invoke-unknown", &Method{Name: "m", NRegs: 2, Code: []Instr{
			{Op: OpInvoke, A: 0, Sym2: "C", Sym: "nope"}, {Op: OpRetVoid},
		}}, "unknown method"},
		{"invoke-arity", &Method{Name: "m", NRegs: 2, Code: []Instr{
			{Op: OpInvoke, A: 0, Sym2: "C", Sym: "m", Args: []int{0, 1}}, {Op: OpRetVoid},
		}}, "takes"},
		{"invokev-no-receiver", &Method{Name: "m", NRegs: 2, Code: []Instr{
			{Op: OpInvokeV, A: 0, Sym: "x"}, {Op: OpRetVoid},
		}}, "without receiver"},
		{"native-no-symbol", &Method{Name: "m", NRegs: 2, Code: []Instr{
			{Op: OpNative, A: 0}, {Op: OpRetVoid},
		}}, "without symbol"},
		{"bad-opcode", &Method{Name: "m", NRegs: 2, Code: []Instr{
			{Op: Op(250)}, {Op: OpRetVoid},
		}}, "unknown opcode"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := buildProgram(t, tc.m).Verify()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want containing %q", err, tc.want)
			}
			var ve *VerifyError
			if !strings.HasPrefix(err.Error(), "vm: verify:") {
				t.Fatalf("error %v lacks verify prefix", err)
			}
			_ = ve
		})
	}
}

func TestVerifyArityAgainstArgsSelf(t *testing.T) {
	// A method may invoke itself recursively with correct arity.
	m := &Method{Name: "m", NArgs: 1, NRegs: 3, Code: []Instr{
		{Op: OpIfZ, B: 0, Imm: 2},
		{Op: OpInvoke, A: 1, Sym2: "C", Sym: "m", Args: []int{0}},
		{Op: OpReturn, B: 0},
	}}
	if err := buildProgram(t, m).Verify(); err != nil {
		t.Fatal(err)
	}
}
