package vm

import (
	"fmt"

	"tinman/internal/taint"
)

// ThreadState is a scheduled thread's lifecycle state.
type ThreadState uint8

const (
	// ThreadRunnable threads are eligible for the next quantum.
	ThreadRunnable ThreadState = iota
	// ThreadBlocked threads wait on a monitor held by another thread.
	ThreadBlocked
	// ThreadMigrated threads stopped for DSM reasons and await the
	// offloading engine.
	ThreadMigrated
	// ThreadFinished threads completed (result or error recorded).
	ThreadFinished
)

var threadStateNames = [...]string{
	ThreadRunnable: "runnable", ThreadBlocked: "blocked",
	ThreadMigrated: "migrated", ThreadFinished: "finished",
}

func (s ThreadState) String() string {
	if int(s) < len(threadStateNames) {
		return threadStateNames[s]
	}
	return fmt.Sprintf("ThreadState(%d)", uint8(s))
}

// SchedThread is one thread under scheduler management.
type SchedThread struct {
	*Thread
	ID    int
	State ThreadState
	// Result and Err are set once State is ThreadFinished.
	Result Value
	Err    error
	// MigrateReason is set when State is ThreadMigrated.
	MigrateReason StopReason
	// waitingOn is the monitor (object ID) the thread is blocked on.
	waitingOn uint64
}

// Scheduler multiplexes several logical threads over one VM, round-robin
// with an instruction quantum — the multi-threading COMET's DSM supports
// (§2.4). Monitors provide real mutual exclusion between local threads:
// entering a monitor held by another local thread blocks until release.
//
// The scheduler chains the VM's monitor hooks: local contention is handled
// here; anything else (e.g. the DSM's happens-before table) sees the events
// afterwards. Threads that stop for migration reasons are parked in
// ThreadMigrated for the offloading engine to collect.
type Scheduler struct {
	VM *VM
	// Quantum is the per-slice instruction budget (default 10000).
	Quantum uint64

	threads []*SchedThread
	nextID  int
	current *SchedThread

	// Local monitor table: object ID -> holding thread (nil = free).
	owners  map[uint64]*SchedThread
	waiters map[uint64][]*SchedThread

	prevEnter func(*Object) bool
	prevExit  func(*Object)

	// Slices counts scheduling slices for fairness diagnostics.
	Slices uint64
}

// NewScheduler wraps a VM.
func NewScheduler(machine *VM) *Scheduler {
	s := &Scheduler{
		VM:      machine,
		Quantum: 10000,
		owners:  make(map[uint64]*SchedThread),
		waiters: make(map[uint64][]*SchedThread),
	}
	s.prevEnter = machine.Hooks.OnMonitorEnter
	s.prevExit = machine.Hooks.OnMonitorExit
	machine.Hooks.OnMonitorEnter = s.onMonitorEnter
	machine.Hooks.OnMonitorExit = s.onMonitorExit
	return s
}

// Spawn creates and enqueues a thread.
func (s *Scheduler) Spawn(m *Method, args ...Value) (*SchedThread, error) {
	th, err := s.VM.NewThread(m, args...)
	if err != nil {
		return nil, err
	}
	s.nextID++
	st := &SchedThread{Thread: th, ID: s.nextID, State: ThreadRunnable}
	s.threads = append(s.threads, st)
	return st, nil
}

// Threads returns all managed threads.
func (s *Scheduler) Threads() []*SchedThread { return s.threads }

// onMonitorEnter implements local mutual exclusion; uncontended monitors
// fall through to the chained hook.
func (s *Scheduler) onMonitorEnter(o *Object) bool {
	holder := s.owners[o.ID]
	if holder != nil && holder != s.current {
		// Contended: block the current thread before the instruction
		// executes (the interpreter leaves PC on the monenter).
		if s.current != nil {
			s.current.State = ThreadBlocked
			s.current.waitingOn = o.ID
			s.waiters[o.ID] = append(s.waiters[o.ID], s.current)
		}
		return true
	}
	if s.prevEnter != nil && s.prevEnter(o) {
		return true
	}
	s.owners[o.ID] = s.current
	return false
}

// onMonitorExit releases the monitor and wakes waiters.
func (s *Scheduler) onMonitorExit(o *Object) {
	if s.owners[o.ID] == s.current {
		delete(s.owners, o.ID)
	}
	for _, w := range s.waiters[o.ID] {
		if w.State == ThreadBlocked && w.waitingOn == o.ID {
			w.State = ThreadRunnable
			w.waitingOn = 0
		}
	}
	delete(s.waiters, o.ID)
	if s.prevExit != nil {
		s.prevExit(o)
	}
}

// Step runs one quantum of the next runnable thread. It reports whether any
// thread is still unfinished.
func (s *Scheduler) Step() (bool, error) {
	var pick *SchedThread
	// Round-robin: rotate so each call starts after the last-run thread.
	for i := 0; i < len(s.threads); i++ {
		t := s.threads[(int(s.Slices)+i)%len(s.threads)]
		if t.State == ThreadRunnable {
			pick = t
			break
		}
	}
	if pick == nil {
		// Anything blocked with nothing runnable is a local deadlock.
		for _, t := range s.threads {
			if t.State == ThreadBlocked {
				return false, fmt.Errorf("vm: scheduler deadlock: thread %d blocked on monitor #%d with no runnable threads",
					t.ID, t.waitingOn)
			}
		}
		return s.unfinished(), nil
	}

	s.Slices++
	s.current = pick
	pick.MaxInstrs = s.Quantum
	stop, err := pick.Run()
	s.current = nil

	switch {
	case err != nil:
		pick.State = ThreadFinished
		pick.Err = err
	case stop == StopDone:
		pick.State = ThreadFinished
		pick.Result = pick.Thread.Result
	case stop == StopLimit:
		// Quantum expired: stay runnable.
	case stop == StopMigrateLock:
		// Either locally blocked (state already set by the hook) or the
		// chained hook requested a migration.
		if pick.State != ThreadBlocked {
			pick.State = ThreadMigrated
			pick.MigrateReason = stop
		}
	case stop.IsMigrate():
		pick.State = ThreadMigrated
		pick.MigrateReason = stop
	}
	return s.unfinished(), nil
}

func (s *Scheduler) unfinished() bool {
	for _, t := range s.threads {
		if t.State != ThreadFinished {
			return true
		}
	}
	return false
}

// RunAll drives the scheduler until every thread finishes. Migrated threads
// make it stop with an error (the caller should drive offloading itself).
func (s *Scheduler) RunAll() error {
	for {
		more, err := s.Step()
		if err != nil {
			return err
		}
		if !more {
			return nil
		}
		if s.allParked() {
			return fmt.Errorf("vm: scheduler stalled: threads parked for migration")
		}
	}
}

// allParked reports whether no thread can make local progress.
func (s *Scheduler) allParked() bool {
	for _, t := range s.threads {
		if t.State == ThreadRunnable {
			return false
		}
	}
	for _, t := range s.threads {
		if t.State == ThreadMigrated {
			return true
		}
	}
	return false
}

// Detach restores the VM's original monitor hooks.
func (s *Scheduler) Detach() {
	s.VM.Hooks.OnMonitorEnter = s.prevEnter
	s.VM.Hooks.OnMonitorExit = s.prevExit
}

var _ = taint.None // keep the import for doc references
