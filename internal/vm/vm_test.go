package vm_test

import (
	"strings"
	"testing"

	"tinman/internal/taint"
	"tinman/internal/vm"
	"tinman/internal/vm/asm"
)

// runProgram assembles src, runs Class.method with args under the policy,
// and returns the machine and result.
func runProgram(t *testing.T, policy taint.Policy, src, class, method string, args ...vm.Value) (*vm.VM, vm.Value) {
	t.Helper()
	prog, err := asm.Assemble("test", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	v := vm.New(vm.Config{Program: prog, Heap: vm.NewHeap(1, 2), Policy: policy, CollectStats: true})
	th, err := v.NewThread(prog.Method(class, method), args...)
	if err != nil {
		t.Fatal(err)
	}
	stop, err := th.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if stop != vm.StopDone {
		t.Fatalf("stop = %v, want done", stop)
	}
	return v, th.Result
}

func TestArithmetic(t *testing.T) {
	src := `
class Math
  method calc 2 6
    add r2, r0, r1
    mul r3, r2, r2
    const r4, 3
    sub r5, r3, r4
    return r5
  end
end`
	_, res := runProgram(t, taint.Off, src, "Math", "calc", vm.IntVal(2), vm.IntVal(3))
	if res.Int != 22 { // (2+3)^2 - 3
		t.Fatalf("result = %d, want 22", res.Int)
	}
}

func TestDivRemAndDivByZero(t *testing.T) {
	src := `
class Math
  method div 2 3
    div r2, r0, r1
    return r2
  end
  method rem 2 3
    rem r2, r0, r1
    return r2
  end
end`
	_, res := runProgram(t, taint.Off, src, "Math", "div", vm.IntVal(17), vm.IntVal(5))
	if res.Int != 3 {
		t.Fatalf("17/5 = %d, want 3", res.Int)
	}
	_, res = runProgram(t, taint.Off, src, "Math", "rem", vm.IntVal(17), vm.IntVal(5))
	if res.Int != 2 {
		t.Fatalf("17%%5 = %d, want 2", res.Int)
	}

	prog, _ := asm.Assemble("t", src)
	v := vm.New(vm.Config{Program: prog, Heap: vm.NewHeap(1, 2), Policy: taint.Off})
	th, _ := v.NewThread(prog.Method("Math", "div"), vm.IntVal(1), vm.IntVal(0))
	if _, err := th.Run(); err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("div by zero error = %v", err)
	}
}

func TestFloatOps(t *testing.T) {
	src := `
class Math
  method f 0 6
    constf r0, 1.5
    constf r1, 2.0
    mulf r2, r0, r1
    addf r3, r2, r1
    f2i r4, r3
    return r4
  end
end`
	_, res := runProgram(t, taint.Off, src, "Math", "f")
	if res.Int != 5 { // 1.5*2 + 2 = 5.0
		t.Fatalf("result = %d, want 5", res.Int)
	}
}

func TestLoopAndBranches(t *testing.T) {
	src := `
class Loop
  method sum 1 5   ; sum of 1..n
    const r1, 0
    const r2, 1
  head:
    ifgt r2, r0, done
    add r1, r1, r2
    const r3, 1
    add r2, r2, r3
    goto head
  done:
    return r1
  end
end`
	_, res := runProgram(t, taint.Off, src, "Loop", "sum", vm.IntVal(100))
	if res.Int != 5050 {
		t.Fatalf("sum(100) = %d, want 5050", res.Int)
	}
}

func TestObjectsFieldsAndArrays(t *testing.T) {
	src := `
class Point
  field x
  field y
  method make 2 4
    new r2, Point
    iput r0, r2, x
    iput r1, r2, y
    return r2
  end
  method dist2 1 6
    iget r1, r0, x
    iget r2, r0, y
    mul r3, r1, r1
    mul r4, r2, r2
    add r5, r3, r4
    return r5
  end
  method arrays 0 8
    const r0, 5
    newarr r1, r0
    const r2, 0
    const r3, 42
    aput r3, r1, r2
    aget r4, r1, r2
    arrlen r5, r1
    add r6, r4, r5
    return r6
  end
end`
	prog, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	v := vm.New(vm.Config{Program: prog, Heap: vm.NewHeap(1, 2), Policy: taint.Full})
	th, _ := v.NewThread(prog.Method("Point", "make"), vm.IntVal(3), vm.IntVal(4))
	if _, err := th.Run(); err != nil {
		t.Fatal(err)
	}
	pt := th.Result.Ref
	if pt == nil || pt.Class.Name != "Point" {
		t.Fatalf("make returned %v", th.Result)
	}
	th2, _ := v.NewThread(prog.Method("Point", "dist2"), vm.RefVal(pt))
	if _, err := th2.Run(); err != nil {
		t.Fatal(err)
	}
	if th2.Result.Int != 25 {
		t.Fatalf("dist2 = %d, want 25", th2.Result.Int)
	}

	_, res := runProgram(t, taint.Off, src, "Point", "arrays")
	if res.Int != 47 {
		t.Fatalf("arrays = %d, want 47", res.Int)
	}
}

func TestStringOps(t *testing.T) {
	src := `
class Str
  method build 0 8
    conststr r0, "user="
    conststr r1, "alice"
    strcat r2, r0, r1
    strlen r3, r2
    const r4, 0
    charat r5, r2, r4
    strcat r6, r2, r2
    return r2
  end
  method check 0 6
    conststr r0, "abc"
    conststr r1, "abc"
    streq r2, r0, r1
    return r2
  end
  method find 0 6
    conststr r0, "hello world"
    conststr r1, "world"
    indexof r2, r0, r1
    return r2
  end
  method cut 0 6
    conststr r0, "username=bob"
    const r1, 9
    substr r2, r0, r1, -1
    return r2
  end
  method nums 0 6
    const r0, 1234
    intostr r1, r0
    strtoint r2, r1
    return r2
  end
end`
	_, res := runProgram(t, taint.Off, src, "Str", "build")
	if res.Ref == nil || res.Ref.Str != "user=alice" {
		t.Fatalf("build = %v", res)
	}
	_, res = runProgram(t, taint.Off, src, "Str", "check")
	if res.Int != 1 {
		t.Fatalf("streq = %d, want 1", res.Int)
	}
	_, res = runProgram(t, taint.Off, src, "Str", "find")
	if res.Int != 6 {
		t.Fatalf("indexof = %d, want 6", res.Int)
	}
	_, res = runProgram(t, taint.Off, src, "Str", "cut")
	if res.Ref.Str != "bob" {
		t.Fatalf("substr = %q, want bob", res.Ref.Str)
	}
	_, res = runProgram(t, taint.Off, src, "Str", "nums")
	if res.Int != 1234 {
		t.Fatalf("roundtrip = %d, want 1234", res.Int)
	}
}

func TestMethodCallsAndRecursion(t *testing.T) {
	src := `
class Fib
  method fib 1 8
    const r1, 2
    ifge r0, r1, rec
    return r0
  rec:
    const r2, 1
    sub r3, r0, r2
    invoke r4, Fib.fib, r3
    const r2, 2
    sub r3, r0, r2
    invoke r5, Fib.fib, r3
    add r6, r4, r5
    return r6
  end
end`
	v, res := runProgram(t, taint.Off, src, "Fib", "fib", vm.IntVal(15))
	if res.Int != 610 {
		t.Fatalf("fib(15) = %d, want 610", res.Int)
	}
	if v.Calls == 0 {
		t.Fatal("method call counter not incremented")
	}
}

func TestVirtualDispatch(t *testing.T) {
	src := `
class Dog
  method speak 1 2
    conststr r1, "woof"
    return r1
  end
end
class Cat
  method speak 1 2
    conststr r1, "meow"
    return r1
  end
end
class Zoo
  method hear 1 3
    invokev r1, speak, r0
    return r1
  end
end`
	prog, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	v := vm.New(vm.Config{Program: prog, Heap: vm.NewHeap(1, 2), Policy: taint.Off})
	for class, want := range map[string]string{"Dog": "woof", "Cat": "meow"} {
		o := v.Heap.Alloc(prog.Class(class))
		th, _ := v.NewThread(prog.Method("Zoo", "hear"), vm.RefVal(o))
		if _, err := th.Run(); err != nil {
			t.Fatal(err)
		}
		if th.Result.Ref.Str != want {
			t.Fatalf("%s says %q, want %q", class, th.Result.Ref.Str, want)
		}
	}
}

func TestCloneAndArrCopy(t *testing.T) {
	src := `
class C
  field v
  method go 0 10
    new r0, C
    const r1, 7
    iput r1, r0, v
    clone r2, r0
    iget r3, r2, v
    const r4, 3
    newarr r5, r4
    const r6, 0
    aput r1, r5, r6
    newarr r7, r4
    arrcopy r7, r5
    aget r8, r7, r6
    add r9, r3, r8
    return r9
  end
end`
	_, res := runProgram(t, taint.Full, src, "C", "go")
	if res.Int != 14 {
		t.Fatalf("clone+arrcopy = %d, want 14", res.Int)
	}
}

func TestHashDeterministic(t *testing.T) {
	src := `
class H
  method go 1 3
    hash r1, r0
    return r1
  end
end`
	prog, _ := asm.Assemble("t", src)
	v := vm.New(vm.Config{Program: prog, Heap: vm.NewHeap(1, 2), Policy: taint.Off})
	run := func() string {
		th, _ := v.NewThread(prog.Method("H", "go"), vm.RefVal(v.NewString("secret")))
		if _, err := th.Run(); err != nil {
			t.Fatal(err)
		}
		return th.Result.Ref.Str
	}
	h1, h2 := run(), run()
	if h1 != h2 || len(h1) != 64 {
		t.Fatalf("hash not deterministic hex-64: %q vs %q", h1, h2)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"null-iget", `
class C
  field v
  method go 0 3
    iget r1, r0, v
    return r1
  end
end`, "from null"},
		{"bad-field", `
class C
  method go 0 3
    new r0, C
    iget r1, r0, nofield
    return r1
  end
end`, "no field"},
		{"oob-array", `
class C
  method go 0 4
    const r0, 2
    newarr r1, r0
    const r2, 9
    aget r3, r1, r2
    return r3
  end
end`, "out of range"},
		{"unknown-class", `
class C
  method go 0 2
    new r0, Nope
    return r0
  end
end`, "unknown class"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := asm.Assemble("t", tc.src)
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			v := vm.New(vm.Config{Program: prog, Heap: vm.NewHeap(1, 2), Policy: taint.Off})
			th, err := v.NewThread(prog.Method("C", "go"))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := th.Run(); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestUnknownMethodCaughtAtAssembly(t *testing.T) {
	// The verifier rejects unresolvable static invokes before execution.
	_, err := asm.Assemble("t", `
class C
  method go 0 2
    const r0, 0
    invoke r1, C.nope, r0
    return r1
  end
end`)
	if err == nil || !strings.Contains(err.Error(), "unknown method") {
		t.Fatalf("err = %v, want unknown-method verify failure", err)
	}
}

func TestStackOverflowGuard(t *testing.T) {
	src := `
class C
  method go 0 2
    invoke r0, C.go
    return r0
  end
end`
	prog, _ := asm.Assemble("t", src)
	v := vm.New(vm.Config{Program: prog, Heap: vm.NewHeap(1, 2), Policy: taint.Off})
	th, _ := v.NewThread(prog.Method("C", "go"))
	if _, err := th.Run(); err == nil || !strings.Contains(err.Error(), "stack overflow") {
		t.Fatalf("err = %v, want stack overflow", err)
	}
}

func TestInstructionBudget(t *testing.T) {
	src := `
class C
  method spin 0 1
  loop:
    goto loop
  end
end`
	prog, _ := asm.Assemble("t", src)
	v := vm.New(vm.Config{Program: prog, Heap: vm.NewHeap(1, 2), Policy: taint.Off})
	th, _ := v.NewThread(prog.Method("C", "spin"))
	th.MaxInstrs = 1000
	stop, err := th.Run()
	if err != nil || stop != vm.StopLimit {
		t.Fatalf("stop = %v err = %v, want limit", stop, err)
	}
}

func TestNativeCall(t *testing.T) {
	src := `
class C
  method go 1 3
    native r1, double, r0
    return r1
  end
end`
	prog, _ := asm.Assemble("t", src)
	v := vm.New(vm.Config{Program: prog, Heap: vm.NewHeap(1, 2), Policy: taint.Off})
	v.RegisterNative(&vm.NativeDef{
		Name: "double", Offloadable: true,
		Fn: func(t *vm.Thread, args []vm.Value) (vm.Value, error) {
			return vm.IntVal(args[0].Int * 2), nil
		},
	})
	th, _ := v.NewThread(prog.Method("C", "go"), vm.IntVal(21))
	if _, err := th.Run(); err != nil {
		t.Fatal(err)
	}
	if th.Result.Int != 42 {
		t.Fatalf("native double = %d, want 42", th.Result.Int)
	}
}

func TestNativeGateStopsBeforeExecution(t *testing.T) {
	src := `
class C
  method go 0 2
    native r0, io_read
    return r0
  end
end`
	prog, _ := asm.Assemble("t", src)
	v := vm.New(vm.Config{Program: prog, Heap: vm.NewHeap(1, 2), Policy: taint.Off})
	ran := false
	v.RegisterNative(&vm.NativeDef{
		Name: "io_read", Offloadable: false,
		Fn: func(t *vm.Thread, args []vm.Value) (vm.Value, error) {
			ran = true
			return vm.NullVal(), nil
		},
	})
	v.Hooks.NativeGate = func(def *vm.NativeDef) bool { return !def.Offloadable }
	th, _ := v.NewThread(prog.Method("C", "go"))
	stop, err := th.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stop != vm.StopMigrateNative {
		t.Fatalf("stop = %v, want migrate-native", stop)
	}
	if ran {
		t.Fatal("gated native must not execute")
	}
	if th.Top().PC != 0 {
		t.Fatalf("PC advanced to %d; must stay at the native for re-execution", th.Top().PC)
	}
	// Without the gate the same thread resumes and completes.
	v.Hooks.NativeGate = nil
	stop, err = th.Run()
	if err != nil || stop != vm.StopDone {
		t.Fatalf("resume: stop=%v err=%v", stop, err)
	}
	if !ran {
		t.Fatal("native should have run after gate removal")
	}
}

func TestMonitorHook(t *testing.T) {
	src := `
class C
  field lock
  method go 1 3
    monenter r0
    const r1, 1
    monexit r0
    return r1
  end
end`
	prog, _ := asm.Assemble("t", src)
	v := vm.New(vm.Config{Program: prog, Heap: vm.NewHeap(1, 2), Policy: taint.Off})
	obj := v.Heap.Alloc(prog.Class("C"))
	remote := true
	v.Hooks.OnMonitorEnter = func(o *vm.Object) bool { return remote }
	th, _ := v.NewThread(prog.Method("C", "go"), vm.RefVal(obj))
	stop, err := th.Run()
	if err != nil || stop != vm.StopMigrateLock {
		t.Fatalf("stop=%v err=%v, want migrate-lock", stop, err)
	}
	remote = false
	stop, err = th.Run()
	if err != nil || stop != vm.StopDone || th.Result.Int != 1 {
		t.Fatalf("resume: stop=%v err=%v res=%v", stop, err, th.Result)
	}
}

func TestHaltStopsThread(t *testing.T) {
	src := `
class C
  method go 0 1
    halt
  end
end`
	_, res := runProgram(t, taint.Off, src, "C", "go")
	if !res.IsNull() {
		t.Fatalf("halt result = %v, want null", res)
	}
}
