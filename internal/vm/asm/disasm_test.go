package asm

import (
	"testing"

	"tinman/internal/vm"
)

const roundTripSrc = `
class Acct
  field owner
  field balance
  method deposit 2 6
    iget r2, r0, balance
    add r2, r2, r1
    iput r2, r0, balance
    return r2
  end
  method busy 1 8
    const r1, 0
  loop:
    ifge r1, r0, done
    invoke r2, Acct.helper, r1
    const r3, 1
    add r1, r1, r3
    goto loop
  done:
    conststr r4, "done: \"quoted\""
    strcat r5, r4, r4
    substr r6, r5, r1, -1
    hash r7, r6
    native r2, toast, r7
    monenter r6
    monexit r6
    taintset r6, 5
    retvoid
  end
  method helper 1 3
    constf r1, 2.5
    f2i r2, r1
    return r2
  end
end`

// TestDisassembleRoundTrip verifies source -> program -> disassembly ->
// program yields an identical program hash (labels differ textually but
// resolve identically).
func TestDisassembleRoundTrip(t *testing.T) {
	p1, err := Assemble("rt", roundTripSrc)
	if err != nil {
		t.Fatal(err)
	}
	dis := p1.Disassemble()
	p2, err := Assemble("rt", dis)
	if err != nil {
		t.Fatalf("reassembling disassembly: %v\n%s", err, dis)
	}
	if p1.Hash() != p2.Hash() {
		t.Fatalf("round trip changed the program:\n%s", dis)
	}
}

// TestDisassembleAppsRoundTrip round-trips every instruction form the
// evaluation apps use.
func TestDisassembleLoops(t *testing.T) {
	src := `
class L
  method spin 1 6
    const r1, 0
  a:
    ifge r1, r0, b
    const r2, 1
    add r1, r1, r2
    goto a
  b:
    ifz r1, a
    return r1
  end
end`
	p1 := MustAssemble("l", src)
	p2, err := Assemble("l", p1.Disassemble())
	if err != nil {
		t.Fatal(err)
	}
	if p1.Hash() != p2.Hash() {
		t.Fatal("loop round trip diverged")
	}
	// Branch targets preserved exactly.
	m1, m2 := p1.Method("L", "spin"), p2.Method("L", "spin")
	for i := range m1.Code {
		if m1.Code[i].Op != m2.Code[i].Op || m1.Code[i].Imm != m2.Code[i].Imm {
			t.Fatalf("instr %d: %v vs %v", i, m1.Code[i], m2.Code[i])
		}
	}
}

func TestAssemblerRejectsUnverifiableCode(t *testing.T) {
	// The assembler's own checks catch registers; the verifier adds e.g.
	// fall-off-the-end and unknown static targets.
	_, err := Assemble("bad", `
class C
  method m 0 2
    const r0, 1
  end
end`)
	if err == nil {
		t.Fatal("fall-off-end method assembled")
	}
	_, err = Assemble("bad2", `
class C
  method m 0 2
    invoke r0, C.nothere
    retvoid
  end
end`)
	if err == nil {
		t.Fatal("unknown invoke target assembled")
	}
}

var _ = vm.OpNop // keep the vm import for doc references

// TestLinkedRoundTrip pins the assemble → link → disassemble cycle: every
// assembled program comes back linked (Verify links on success), linking is
// invisible in the disassembly, and a warmed program — one whose inline
// caches were populated by execution — still disassembles and reassembles
// to the identical program.
func TestLinkedRoundTrip(t *testing.T) {
	p1, err := Assemble("rt", roundTripSrc)
	if err != nil {
		t.Fatal(err)
	}
	if !p1.Linked() {
		t.Fatal("Assemble returned an unlinked program")
	}
	dis := p1.Disassemble()

	// Warm the runtime caches: execute a method touching field and invoke
	// sites, then disassemble again.
	machine := vm.New(vm.Config{Program: p1, Heap: vm.NewHeap(1, 2)})
	acct := machine.Heap.Alloc(p1.Class("Acct"))
	th, err := machine.NewThread(p1.Method("Acct", "deposit"), vm.RefVal(acct), vm.IntVal(7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := th.Run(); err != nil {
		t.Fatal(err)
	}
	if got := p1.Disassemble(); got != dis {
		t.Fatalf("warm caches leaked into the disassembly:\n%s", got)
	}
	p2, err := Assemble("rt", dis)
	if err != nil {
		t.Fatalf("reassembling linked disassembly: %v", err)
	}
	if p1.Hash() != p2.Hash() {
		t.Fatal("linked round trip changed the program hash")
	}
}
