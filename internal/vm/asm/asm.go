// Package asm assembles a small textual language into vm Programs. The
// sample applications and the Caffeinemark kernels in this repository are
// written in it, playing the role of the dex files in the paper's prototype.
//
// Syntax overview (see the programs under internal/apps for larger samples):
//
//	; line comment
//	class Account
//	  field name
//	  field balance
//
//	  method deposit 2 6      ; name, number of args, number of registers
//	    iget r2, r0, balance  ; r2 <- r0.balance
//	    add  r2, r2, r1
//	    iput r2, r0, balance  ; r0.balance <- r2
//	    return r2
//	  end
//	end
//
// Labels are written "name:" on their own line and referenced by bare name
// in branch instructions.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"tinman/internal/vm"
)

// Error is a positioned assembly error.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type parser struct {
	lines   []string
	lineNo  int
	program *vm.Program
}

// Assemble parses source into a sealed, verified Program.
func Assemble(name, source string) (*vm.Program, error) {
	p := &parser{lines: strings.Split(source, "\n"), program: vm.NewProgram(name)}
	if err := p.run(); err != nil {
		return nil, err
	}
	p.program.Seal()
	if err := p.program.Verify(); err != nil {
		return nil, err
	}
	return p.program, nil
}

// MustAssemble is Assemble that panics on error; the built-in apps use it at
// init time where a parse failure is a programming bug.
func MustAssemble(name, source string) *vm.Program {
	prog, err := Assemble(name, source)
	if err != nil {
		panic(err)
	}
	return prog
}

func (p *parser) errf(format string, args ...any) error {
	return &Error{Line: p.lineNo, Msg: fmt.Sprintf(format, args...)}
}

// next returns the next meaningful line's fields, or nil at EOF.
func (p *parser) next() []string {
	for p.lineNo < len(p.lines) {
		line := p.lines[p.lineNo]
		p.lineNo++
		if i := strings.IndexByte(line, ';'); i >= 0 && !insideQuote(line, i) {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		return tokenize(line)
	}
	return nil
}

// insideQuote reports whether position i falls inside a double-quoted token.
func insideQuote(s string, i int) bool {
	in := false
	for j := 0; j < i; j++ {
		if s[j] == '"' && (j == 0 || s[j-1] != '\\') {
			in = !in
		}
	}
	return in
}

// tokenize splits on spaces and commas, preserving quoted strings as single
// tokens (with quotes kept for later unquoting).
func tokenize(line string) []string {
	var toks []string
	var cur strings.Builder
	inStr := false
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(line); i++ {
		ch := line[i]
		switch {
		case inStr:
			cur.WriteByte(ch)
			if ch == '"' && line[i-1] != '\\' {
				inStr = false
			}
		case ch == '"':
			cur.WriteByte(ch)
			inStr = true
		case ch == ' ' || ch == '\t' || ch == ',':
			flush()
		default:
			cur.WriteByte(ch)
		}
	}
	flush()
	return toks
}

func (p *parser) run() error {
	for {
		toks := p.next()
		if toks == nil {
			return nil
		}
		if toks[0] != "class" || len(toks) != 2 {
			return p.errf("expected 'class Name', got %q", strings.Join(toks, " "))
		}
		if err := p.parseClass(toks[1]); err != nil {
			return err
		}
	}
}

func (p *parser) parseClass(name string) error {
	var fields []string
	var pendingMethods []func(*vm.Class) error
	for {
		toks := p.next()
		if toks == nil {
			return p.errf("class %s not closed with 'end'", name)
		}
		switch toks[0] {
		case "field":
			if len(toks) != 2 {
				return p.errf("expected 'field name'")
			}
			fields = append(fields, toks[1])
		case "method":
			if len(toks) != 4 {
				return p.errf("expected 'method name nargs nregs'")
			}
			mName := toks[1]
			nargs, err1 := strconv.Atoi(toks[2])
			nregs, err2 := strconv.Atoi(toks[3])
			if err1 != nil || err2 != nil || nargs < 0 || nregs <= 0 || nargs > nregs {
				return p.errf("bad method header %q", strings.Join(toks, " "))
			}
			code, err := p.parseBody(nregs)
			if err != nil {
				return err
			}
			pendingMethods = append(pendingMethods, func(c *vm.Class) error {
				c.AddMethod(&vm.Method{Name: mName, NArgs: nargs, NRegs: nregs, Code: code})
				return nil
			})
		case "end":
			c := vm.NewClass(name, fields...)
			for _, add := range pendingMethods {
				if err := add(c); err != nil {
					return err
				}
			}
			p.program.AddClass(c)
			return nil
		default:
			return p.errf("unexpected %q in class %s", toks[0], name)
		}
	}
}

// pendingBranch records a branch needing label resolution.
type pendingBranch struct {
	instr int
	label string
	line  int
}

func (p *parser) parseBody(nregs int) ([]vm.Instr, error) {
	var code []vm.Instr
	labels := make(map[string]int)
	var branches []pendingBranch

	for {
		toks := p.next()
		if toks == nil {
			return nil, p.errf("method not closed with 'end'")
		}
		if toks[0] == "end" {
			break
		}
		if len(toks) == 1 && strings.HasSuffix(toks[0], ":") {
			lbl := strings.TrimSuffix(toks[0], ":")
			if _, dup := labels[lbl]; dup {
				return nil, p.errf("duplicate label %q", lbl)
			}
			labels[lbl] = len(code)
			continue
		}
		in, lbl, err := p.parseInstr(toks, nregs)
		if err != nil {
			return nil, err
		}
		if lbl != "" {
			branches = append(branches, pendingBranch{instr: len(code), label: lbl, line: p.lineNo})
		}
		code = append(code, in)
	}

	for _, b := range branches {
		target, ok := labels[b.label]
		if !ok {
			return nil, &Error{Line: b.line, Msg: fmt.Sprintf("undefined label %q", b.label)}
		}
		code[b.instr].Imm = int64(target)
	}
	if len(code) == 0 {
		return nil, p.errf("empty method body")
	}
	return code, nil
}

// parseInstr decodes one instruction; it returns a pending label name for
// branches.
func (p *parser) parseInstr(toks []string, nregs int) (vm.Instr, string, error) {
	op, ok := vm.OpByName(toks[0])
	if !ok {
		return vm.Instr{}, "", p.errf("unknown opcode %q", toks[0])
	}
	args := toks[1:]
	in := vm.Instr{Op: op}

	reg := func(i int) (int, error) {
		if i >= len(args) {
			return 0, p.errf("%s: missing operand %d", op, i+1)
		}
		s := args[i]
		if !strings.HasPrefix(s, "r") {
			return 0, p.errf("%s: operand %q is not a register", op, s)
		}
		n, err := strconv.Atoi(s[1:])
		if err != nil || n < 0 || n >= nregs {
			return 0, p.errf("%s: register %q out of range [r0,r%d)", op, s, nregs)
		}
		return n, nil
	}
	imm := func(i int) (int64, error) {
		if i >= len(args) {
			return 0, p.errf("%s: missing immediate", op)
		}
		n, err := strconv.ParseInt(args[i], 0, 64)
		if err != nil {
			return 0, p.errf("%s: bad immediate %q", op, args[i])
		}
		return n, nil
	}
	want := func(n int) error {
		if len(args) != n {
			return p.errf("%s: want %d operands, got %d", op, n, len(args))
		}
		return nil
	}

	var err error
	var label string
	switch op {
	case vm.OpNop, vm.OpRetVoid, vm.OpHalt:
		err = want(0)

	case vm.OpConst:
		if err = want(2); err == nil {
			in.A, err = reg(0)
		}
		if err == nil {
			in.Imm, err = imm(1)
		}

	case vm.OpConstF:
		if err = want(2); err == nil {
			in.A, err = reg(0)
		}
		if err == nil {
			in.F, err = strconv.ParseFloat(args[1], 64)
			if err != nil {
				err = p.errf("constf: bad float %q", args[1])
			}
		}

	case vm.OpConstStr:
		if err = want(2); err == nil {
			in.A, err = reg(0)
		}
		if err == nil {
			in.Sym, err = unquote(args[1])
			if err != nil {
				err = p.errf("conststr: %v", err)
			}
		}

	case vm.OpMove, vm.OpNeg, vm.OpNot, vm.OpNegF, vm.OpI2F, vm.OpF2I,
		vm.OpNewArr, vm.OpArrLen, vm.OpClone, vm.OpArrCopy, vm.OpStrLen,
		vm.OpIntToStr, vm.OpStrToInt, vm.OpHash, vm.OpTaintGet:
		if err = want(2); err == nil {
			in.A, err = reg(0)
		}
		if err == nil {
			in.B, err = reg(1)
		}

	case vm.OpAdd, vm.OpSub, vm.OpMul, vm.OpDiv, vm.OpRem, vm.OpAnd, vm.OpOr,
		vm.OpXor, vm.OpShl, vm.OpShr, vm.OpAddF, vm.OpSubF, vm.OpMulF,
		vm.OpDivF, vm.OpCmp, vm.OpCmpF, vm.OpAGet, vm.OpAPut, vm.OpStrCat,
		vm.OpCharAt, vm.OpStrEq, vm.OpIndexOf:
		if err = want(3); err == nil {
			in.A, err = reg(0)
		}
		if err == nil {
			in.B, err = reg(1)
		}
		if err == nil {
			in.C, err = reg(2)
		}

	case vm.OpSubstr:
		if err = want(4); err == nil {
			in.A, err = reg(0)
		}
		if err == nil {
			in.B, err = reg(1)
		}
		if err == nil {
			in.C, err = reg(2)
		}
		if err == nil {
			in.Imm, err = imm(3)
		}

	case vm.OpIfEq, vm.OpIfNe, vm.OpIfLt, vm.OpIfLe, vm.OpIfGt, vm.OpIfGe:
		if err = want(3); err == nil {
			in.B, err = reg(0)
		}
		if err == nil {
			in.C, err = reg(1)
		}
		if err == nil {
			label = args[2]
		}

	case vm.OpIfZ, vm.OpIfNz:
		if err = want(2); err == nil {
			in.B, err = reg(0)
		}
		if err == nil {
			label = args[1]
		}

	case vm.OpGoto:
		if err = want(1); err == nil {
			label = args[0]
		}

	case vm.OpNew:
		if err = want(2); err == nil {
			in.A, err = reg(0)
		}
		if err == nil {
			in.Sym = args[1]
		}

	case vm.OpIGet, vm.OpIPut:
		// iget rDst, rObj, field / iput rSrc, rObj, field
		if err = want(3); err == nil {
			in.A, err = reg(0)
		}
		if err == nil {
			in.B, err = reg(1)
		}
		if err == nil {
			in.Sym = args[2]
		}

	case vm.OpInvoke:
		if len(args) < 2 {
			err = p.errf("invoke: want result reg and Class.method")
			break
		}
		if in.A, err = reg(0); err != nil {
			break
		}
		dot := strings.LastIndexByte(args[1], '.')
		if dot <= 0 || dot == len(args[1])-1 {
			err = p.errf("invoke: target %q is not Class.method", args[1])
			break
		}
		in.Sym2, in.Sym = args[1][:dot], args[1][dot+1:]
		for i := 2; i < len(args); i++ {
			var r int
			if r, err = reg(i); err != nil {
				break
			}
			in.Args = append(in.Args, r)
		}

	case vm.OpInvokeV, vm.OpNative:
		if len(args) < 2 {
			err = p.errf("%s: want result reg and name", op)
			break
		}
		if in.A, err = reg(0); err != nil {
			break
		}
		in.Sym = args[1]
		for i := 2; i < len(args); i++ {
			var r int
			if r, err = reg(i); err != nil {
				break
			}
			in.Args = append(in.Args, r)
		}
		if op == vm.OpInvokeV && len(in.Args) == 0 {
			err = p.errf("invokev: needs a receiver argument")
		}

	case vm.OpReturn:
		if err = want(1); err == nil {
			in.B, err = reg(0)
		}

	case vm.OpMonEnter, vm.OpMonExit:
		if err = want(1); err == nil {
			in.B, err = reg(0)
		}

	case vm.OpTaintSet:
		if err = want(2); err == nil {
			in.B, err = reg(0)
		}
		if err == nil {
			in.Imm, err = imm(1)
		}

	default:
		err = p.errf("opcode %q not supported by assembler", op)
	}
	if err != nil {
		return vm.Instr{}, "", err
	}
	return in, label, nil
}

func unquote(tok string) (string, error) {
	if len(tok) < 2 || tok[0] != '"' || tok[len(tok)-1] != '"' {
		return "", fmt.Errorf("string literal %q must be double-quoted", tok)
	}
	return strconv.Unquote(tok)
}
