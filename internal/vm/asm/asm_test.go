package asm

import (
	"strings"
	"testing"
	"testing/quick"

	"tinman/internal/vm"
)

func TestAssembleMinimal(t *testing.T) {
	prog, err := Assemble("p", `
class A
  method m 0 1
    retvoid
  end
end`)
	if err != nil {
		t.Fatal(err)
	}
	m := prog.Method("A", "m")
	if m == nil || len(m.Code) != 1 || m.Code[0].Op != vm.OpRetVoid {
		t.Fatalf("method = %+v", m)
	}
}

func TestAssembleFieldsAndLabels(t *testing.T) {
	prog, err := Assemble("p", `
; a comment
class Counter
  field n                      ; trailing comment
  method bump 1 4
    iget r1, r0, n
    const r2, 1
    add r3, r1, r2
    iput r3, r0, n
    return r3
  end
  method spin 1 3
    const r1, 0
  top:
    ifge r1, r0, out
    const r2, 1
    add r1, r1, r2
    goto top
  out:
    return r1
  end
end`)
	if err != nil {
		t.Fatal(err)
	}
	c := prog.Class("Counter")
	if c.FieldIndex("n") != 0 {
		t.Fatal("field n missing")
	}
	spin := c.Methods["spin"]
	// The ifge at index 1 must branch to the return (index 5).
	if spin.Code[1].Op != vm.OpIfGe || spin.Code[1].Imm != 5 {
		t.Fatalf("branch target = %+v", spin.Code[1])
	}
	if spin.Code[4].Op != vm.OpGoto || spin.Code[4].Imm != 1 {
		t.Fatalf("goto target = %+v", spin.Code[4])
	}
}

func TestAssembleStringsWithEscapesAndCommas(t *testing.T) {
	prog, err := Assemble("p", `
class S
  method m 0 2
    conststr r0, "a, b; still \"one\" token"
    return r0
  end
end`)
	if err != nil {
		t.Fatal(err)
	}
	in := prog.Method("S", "m").Code[0]
	if in.Sym != `a, b; still "one" token` {
		t.Fatalf("literal = %q", in.Sym)
	}
}

func TestAssembleInvokeForms(t *testing.T) {
	prog, err := Assemble("p", `
class A
  method callee 2 3
    add r2, r0, r1
    return r2
  end
  method caller 0 6
    const r0, 1
    const r1, 2
    invoke r2, A.callee, r0, r1
    invokev r3, callee, r2, r0
    native r4, sysop, r0
    return r2
  end
end`)
	if err != nil {
		t.Fatal(err)
	}
	code := prog.Method("A", "caller").Code
	iv := code[2]
	if iv.Op != vm.OpInvoke || iv.Sym2 != "A" || iv.Sym != "callee" || len(iv.Args) != 2 {
		t.Fatalf("invoke = %+v", iv)
	}
	if code[3].Op != vm.OpInvokeV || code[3].Sym != "callee" {
		t.Fatalf("invokev = %+v", code[3])
	}
	if code[4].Op != vm.OpNative || code[4].Sym != "sysop" {
		t.Fatalf("native = %+v", code[4])
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"bad-opcode", "class A\n method m 0 1\n frobnicate r0\n end\nend", "unknown opcode"},
		{"reg-oob", "class A\n method m 0 2\n const r5, 1\n return r5\n end\nend", "out of range"},
		{"missing-label", "class A\n method m 0 1\n goto nowhere\n end\nend", "undefined label"},
		{"dup-label", "class A\n method m 0 1\n x:\n x:\n retvoid\n end\nend", "duplicate label"},
		{"no-end-class", "class A\n field f", "not closed"},
		{"no-end-method", "class A\n method m 0 1\n retvoid", "not closed"},
		{"bad-header", "class A\n method m x 1\n retvoid\n end\nend", "bad method header"},
		{"args-gt-regs", "class A\n method m 3 2\n retvoid\n end\nend", "bad method header"},
		{"empty-body", "class A\n method m 0 1\n end\nend", "empty method body"},
		{"not-class", "method m 0 1", "expected 'class"},
		{"bad-invoke-target", "class A\n method m 0 2\n invoke r0, nodot, r1\n end\nend", "not Class.method"},
		{"bad-literal", "class A\n method m 0 1\n conststr r0, unquoted\n end\nend", "double-quoted"},
		{"operand-count", "class A\n method m 0 2\n add r0, r1\n end\nend", "want 3 operands"},
		{"non-register", "class A\n method m 0 2\n move r0, 17\n end\nend", "not a register"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Assemble("p", tc.src)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want containing %q", err, tc.want)
			}
			var perr *Error
			if !strings.HasPrefix(err.Error(), "asm: line ") {
				t.Fatalf("error %v lacks position prefix", err)
			}
			_ = perr
		})
	}
}

func TestMustAssemblePanicsOnBadSource(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAssemble should panic on bad source")
		}
	}()
	MustAssemble("p", "garbage")
}

func TestRoundTripThroughString(t *testing.T) {
	// Every assembled instruction renders without panicking and mentions
	// its mnemonic — a smoke check over the printer.
	prog, err := Assemble("p", `
class A
  field f
  method m 1 6
    nop
    const r1, -7
    constf r2, 2.5
    conststr r3, "s"
    move r4, r1
    add r5, r1, r1
    ifz r1, done
    new r2, A
    iget r3, r2, f
    iput r3, r2, f
    hash r4, r3
    substr r5, r3, r1, -1
    monenter r2
    monexit r2
    taintset r2, 3
    taintget r4, r2
  done:
    retvoid
  end
end`)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range prog.Method("A", "m").Code {
		s := in.String()
		if s == "" || !strings.Contains(s, in.Op.String()) {
			t.Fatalf("bad render %q for %v", s, in.Op)
		}
	}
}

// Property: assembling the same source twice yields identical program hashes
// (the dex-hash the trusted node's policy binds against must be stable).
func TestDeterministicHashProperty(t *testing.T) {
	prop := func(n uint8) bool {
		src := `
class A
  method m 0 3
    const r0, ` + itoa(int64(n)) + `
    const r1, 1
    add r2, r0, r1
    return r2
  end
end`
		p1, err1 := Assemble("p", src)
		p2, err2 := Assemble("p", src)
		if err1 != nil || err2 != nil {
			return false
		}
		return p1.Hash() == p2.Hash()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestHashChangesWithCode(t *testing.T) {
	p1 := MustAssemble("p", "class A\n method m 0 2\n const r0, 1\n return r0\n end\nend")
	p2 := MustAssemble("p", "class A\n method m 0 2\n const r0, 2\n return r0\n end\nend")
	if p1.Hash() == p2.Hash() {
		t.Fatal("different code must hash differently (phishing defense depends on it)")
	}
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var b [24]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
