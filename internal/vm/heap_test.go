package vm

import (
	"testing"
	"testing/quick"

	"tinman/internal/taint"
)

func TestHeapIDSpacesDisjoint(t *testing.T) {
	dev := NewHeap(1, 2)  // odd IDs
	node := NewHeap(2, 2) // even IDs
	c := NewClass("C")
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		a, b := dev.Alloc(c), node.Alloc(c)
		if a.ID%2 != 1 || b.ID%2 != 0 {
			t.Fatalf("ID parity wrong: dev=%d node=%d", a.ID, b.ID)
		}
		if seen[a.ID] || seen[b.ID] {
			t.Fatal("duplicate ID across endpoints")
		}
		seen[a.ID], seen[b.ID] = true, true
	}
}

func TestHeapDirtyTracking(t *testing.T) {
	h := NewHeap(1, 1)
	c := NewClass("C", "f")
	o := h.Alloc(c)
	if h.DirtyCount() != 1 {
		t.Fatalf("fresh alloc should be dirty, count=%d", h.DirtyCount())
	}
	h.ClearDirty()
	if h.DirtyCount() != 0 {
		t.Fatal("clear failed")
	}
	v0 := o.Version
	h.MarkDirty(o)
	if h.DirtyCount() != 1 || o.Version != v0+1 {
		t.Fatalf("mark dirty: count=%d version=%d", h.DirtyCount(), o.Version)
	}
	d := h.DirtyObjects()
	if len(d) != 1 || d[0] != o {
		t.Fatalf("dirty objects = %v", d)
	}
}

func TestHeapAdoptPreservesID(t *testing.T) {
	h := NewHeap(1, 2)
	c := NewClass("C")
	o := &Object{ID: 42, Class: c}
	h.Adopt(o)
	if h.Get(42) != o {
		t.Fatal("adopted object not retrievable")
	}
	// Adoption replaces an existing object with the same ID (DSM update).
	o2 := &Object{ID: 42, Class: c, Str: "new", IsStr: true}
	h.Adopt(o2)
	if h.Get(42) != o2 {
		t.Fatal("adoption did not replace")
	}
}

func TestHeapAdoptWithoutIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHeap(1, 1).Adopt(&Object{})
}

func TestObjectsSortedByID(t *testing.T) {
	h := NewHeap(1, 2)
	c := NewClass("C")
	for i := 0; i < 10; i++ {
		h.Alloc(c)
	}
	objs := h.Objects()
	for i := 1; i < len(objs); i++ {
		if objs[i-1].ID >= objs[i].ID {
			t.Fatal("objects not sorted by ID")
		}
	}
}

func TestWireSizeAccounting(t *testing.T) {
	h := NewHeap(1, 1)
	strC := NewClass("java/lang/String")
	o := h.AllocString(strC, "0123456789", taint.None)
	if o.WireSize() != 24+10 {
		t.Fatalf("string wire size = %d, want 34", o.WireSize())
	}
	arr := h.AllocArray(NewClass("java/lang/Array"), 4)
	if arr.WireSize() != 24+48 {
		t.Fatalf("array wire size = %d, want 72", arr.WireSize())
	}
	if h.WireSize() != o.WireSize()+arr.WireSize() {
		t.Fatal("heap wire size is not the sum of objects")
	}
}

func TestFieldByName(t *testing.T) {
	h := NewHeap(1, 1)
	c := NewClass("C", "a", "b")
	o := h.Alloc(c)
	o.Fields[1] = IntVal(9)
	if v, ok := o.FieldByName("b"); !ok || v.Int != 9 {
		t.Fatalf("FieldByName(b) = %v %v", v, ok)
	}
	if _, ok := o.FieldByName("zzz"); ok {
		t.Fatal("missing field reported present")
	}
}

func TestClassDuplicateFieldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewClass("C", "x", "x")
}

func TestProgramSealAndHash(t *testing.T) {
	p := NewProgram("app")
	c := NewClass("C")
	c.AddMethod(&Method{Name: "m", NArgs: 0, NRegs: 1, Code: []Instr{{Op: OpRetVoid}}})
	p.AddClass(c)
	p.Seal()
	if p.Hash() == "" || len(p.Hash()) != 64 {
		t.Fatalf("hash = %q", p.Hash())
	}
	p.Seal() // idempotent
	defer func() {
		if recover() == nil {
			t.Fatal("AddClass after seal should panic")
		}
	}()
	p.AddClass(NewClass("D"))
}

func TestHashBeforeSealPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewProgram("x").Hash()
}

func TestValueConstructorsAndString(t *testing.T) {
	if v := IntVal(5); v.Kind != KindInt || v.Int != 5 {
		t.Fatalf("IntVal = %v", v)
	}
	if v := FloatVal(2.5); v.Kind != KindFloat || v.Float != 2.5 {
		t.Fatalf("FloatVal = %v", v)
	}
	if !NullVal().IsNull() {
		t.Fatal("NullVal not null")
	}
	h := NewHeap(1, 1)
	o := h.AllocString(NewClass("S"), "x", taint.Bit(1))
	v := RefVal(o)
	if v.IsNull() || v.EffectiveTag() != taint.Bit(1) {
		t.Fatalf("RefVal = %v effTag=%v", v, v.EffectiveTag())
	}
	for _, val := range []Value{IntVal(1), FloatVal(1), NullVal(), v, {Kind: KindInvalid}} {
		if val.String() == "" {
			t.Fatal("empty String()")
		}
	}
	for _, k := range []Kind{KindInvalid, KindInt, KindFloat, KindRef, Kind(99)} {
		if k.String() == "" {
			t.Fatal("empty Kind.String()")
		}
	}
}

// Property: allocation IDs are strictly increasing and unique per heap.
func TestAllocIDsMonotoneProperty(t *testing.T) {
	prop := func(base uint8, count uint8) bool {
		h := NewHeap(uint64(base)+1, 2)
		c := NewClass("C")
		var last uint64
		for i := 0; i < int(count%64)+1; i++ {
			o := h.Alloc(c)
			if o.ID <= last {
				return false
			}
			last = o.ID
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
