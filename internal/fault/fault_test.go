package fault

import (
	"sync"
	"testing"
	"time"
)

func TestBackoffGrowthAndCap(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2}
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		time.Second,
		time.Second, // capped
	}
	for i, w := range want {
		if got := b.Delay(i); got != w {
			t.Fatalf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestBackoffJitterDeterministic(t *testing.T) {
	seq := []float64{0, 0.5, 0.999}
	i := 0
	b := Backoff{Base: time.Second, Max: time.Minute, Factor: 2, Jitter: 0.5,
		Rand: func() float64 { v := seq[i%len(seq)]; i++; return v }}
	// r=0: full delay; r=0.5: 1 - 0.25 of it; r≈1: about half.
	if got := b.Delay(0); got != time.Second {
		t.Fatalf("jitter r=0: %v", got)
	}
	if got := b.Delay(0); got != 750*time.Millisecond {
		t.Fatalf("jitter r=0.5: %v", got)
	}
	if got := b.Delay(0); got <= 500*time.Millisecond || got >= 510*time.Millisecond {
		t.Fatalf("jitter r≈1: %v", got)
	}
}

func TestBackoffZeroValueDefaults(t *testing.T) {
	var b Backoff
	if d := b.Delay(0); d != 100*time.Millisecond {
		t.Fatalf("zero-value Delay(0) = %v", d)
	}
	if d := b.Delay(100); d != 30*time.Second {
		t.Fatalf("zero-value Delay(100) = %v, want the 30s cap", d)
	}
}

// fakeClock is a manually-advanced monotonic clock for breaker tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Duration
}

func (c *fakeClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

func TestBreakerLifecycle(t *testing.T) {
	clk := &fakeClock{}
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: 10 * time.Second, Now: clk.Now})

	if b.State() != BreakerClosed {
		t.Fatal("new breaker not closed")
	}
	// Two failures stay closed; the third trips it.
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker refused")
		}
		b.Failure()
	}
	if b.State() != BreakerClosed {
		t.Fatal("tripped early")
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("did not open at threshold")
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request before cooldown")
	}

	// After the cooldown exactly one probe is admitted.
	clk.Advance(10 * time.Second)
	if !b.Allow() {
		t.Fatal("cooled-down breaker refused the probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second concurrent probe admitted")
	}

	// Probe failure re-opens and restarts the cooldown.
	b.Failure()
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatal("failed probe did not re-open")
	}
	clk.Advance(10 * time.Second)
	if !b.Allow() {
		t.Fatal("second probe refused")
	}
	b.Success()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("successful probe did not close the circuit")
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	clk := &fakeClock{}
	b := NewBreaker(BreakerConfig{Threshold: 2, Cooldown: time.Second, Now: clk.Now})
	b.Failure()
	b.Success()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("non-consecutive failures tripped the breaker")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("consecutive failures did not trip")
	}
}

func TestBreakerConcurrentProbes(t *testing.T) {
	clk := &fakeClock{}
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Second, Now: clk.Now})
	b.Failure()
	clk.Advance(time.Second)

	var wg sync.WaitGroup
	admitted := make(chan struct{}, 64)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if b.Allow() {
				admitted <- struct{}{}
			}
		}()
	}
	wg.Wait()
	close(admitted)
	n := 0
	for range admitted {
		n++
	}
	if n != 1 {
		t.Fatalf("half-open admitted %d probes, want exactly 1", n)
	}
}

func TestBreakerOnTransition(t *testing.T) {
	clk := &fakeClock{}
	type hop struct{ from, to BreakerState }
	var hops []hop
	b := NewBreaker(BreakerConfig{
		Threshold: 2, Cooldown: time.Second, Now: clk.Now,
		OnTransition: func(from, to BreakerState) { hops = append(hops, hop{from, to}) },
	})
	b.Success() // closed -> closed: no transition
	b.Failure()
	b.Failure() // trips
	clk.Advance(time.Second)
	if !b.Allow() { // open -> half-open probe
		t.Fatal("probe not admitted")
	}
	b.Success() // half-open -> closed

	want := []hop{
		{BreakerClosed, BreakerOpen},
		{BreakerOpen, BreakerHalfOpen},
		{BreakerHalfOpen, BreakerClosed},
	}
	if len(hops) != len(want) {
		t.Fatalf("got %d transitions %v, want %v", len(hops), hops, want)
	}
	for i := range want {
		if hops[i] != want[i] {
			t.Fatalf("transition %d = %v, want %v", i, hops[i], want[i])
		}
	}
}
