package fault

import (
	"errors"
	"fmt"
	"io"
	iofs "io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// This file adds the storage half of the fault toolkit: a minimal
// filesystem interface (FS) that the crash-safe storage engine
// (internal/store) and the audit persister write through, one
// implementation backed by the real OS, and one deterministic in-memory
// implementation (CrashFS) that models what a kill -9 leaves on disk —
// unsynced writes dropped, appended tails torn at an arbitrary byte, and
// renames that never happened because the directory was not fsynced.
//
// The model follows the strict POSIX crash contract (the one ALICE-style
// checkers test against): nothing written is durable until the file is
// fsynced, and no namespace change (create, rename, remove) is durable
// until the parent directory is fsynced. Real filesystems are often
// kinder; code that survives this model survives them all.

// ErrCrashed marks every operation attempted after the simulated process
// death and before Restart.
var ErrCrashed = errors.New("fault: filesystem crashed")

// File is the writable-file surface the storage engine needs. Reads go
// through FS.ReadFile — recovery slurps whole files, it never seeks.
type File interface {
	io.Writer
	io.Closer
	// Sync makes the file's current content durable.
	Sync() error
	// Truncate cuts the file to size (tail repair during recovery).
	Truncate(size int64) error
}

// FS is the filesystem surface shared by the OS and the crash simulator.
type FS interface {
	// OpenFile opens name with os-style flags (O_WRONLY|O_CREATE|O_APPEND…).
	OpenFile(name string, flag int, perm iofs.FileMode) (File, error)
	// ReadFile returns name's full content; iofs.ErrNotExist when missing.
	ReadFile(name string) ([]byte, error)
	// Rename moves oldpath to newpath (atomic replace).
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
	// MkdirAll creates dir and parents.
	MkdirAll(dir string, perm iofs.FileMode) error
	// ReadDirNames lists dir's entry names, sorted.
	ReadDirNames(dir string) ([]string, error)
	// SyncDir makes dir's namespace (creates, renames, removes) durable.
	SyncDir(dir string) error
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm iofs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) ReadFile(name string) ([]byte, error)          { return os.ReadFile(name) }
func (osFS) Rename(oldpath, newpath string) error          { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                      { return os.Remove(name) }
func (osFS) MkdirAll(dir string, perm iofs.FileMode) error { return os.MkdirAll(dir, perm) }

func (osFS) ReadDirNames(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name()
	}
	sort.Strings(names)
	return names, nil
}

// SyncDir fsyncs the directory fd so renames/creates/removes inside it are
// durable — the step the pre-fix audit.SaveFile skipped.
func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// --- deterministic crash simulator ---

// memFile is one simulated file: the content a reader sees now (cur) and
// the content that survives a crash (synced).
type memFile struct {
	cur    []byte
	synced []byte
	// dirty marks an in-place mutation below the synced length (overwrite
	// or truncate) since the last fsync. While clear, cur is synced plus a
	// pure appended tail, so Sync can extend synced by the delta instead of
	// copying the whole file — without this, fsyncing a growing log is
	// quadratic in its length and the simulator's cost swamps the cost of
	// the engine under test.
	dirty bool
}

// CrashFS is an in-memory FS with kill -9 semantics. Operations are
// counted; CrashAfter schedules the process death at an exact operation
// index, after which every call fails ErrCrashed. Restart then materializes
// the post-crash disk: per file, unsynced changes are dropped — except that
// a purely appended tail survives up to a torn byte count drawn from the
// seeded RNG — and per directory, namespace changes since the last SyncDir
// are rolled back. Sweeping CrashAfter over every index enumerates every
// crash boundary deterministically.
//
// Directory creation (MkdirAll) is treated as immediately durable — the
// engines under test create their directory once at setup, never near a
// crash boundary worth modeling.
type CrashFS struct {
	mu  sync.Mutex
	rng *rand.Rand

	files map[string]*memFile // live namespace
	dur   map[string]*memFile // namespace as of the last relevant SyncDir
	dirs  map[string]bool

	ops     int // mutating+reading operations performed
	crashAt int // operation index that dies; <0 = never
	crashed bool
	gen     int // bumped on Restart; stale handles fail

	syncs int // file fsyncs that completed (observability for tests)
}

// NewCrashFS builds a crash simulator; seed drives the torn-write RNG.
func NewCrashFS(seed int64) *CrashFS {
	return &CrashFS{
		rng:     rand.New(rand.NewSource(seed)),
		files:   make(map[string]*memFile),
		dur:     make(map[string]*memFile),
		dirs:    make(map[string]bool),
		crashAt: -1,
	}
}

// CrashAfter schedules the crash n counted operations from now (0 dies on
// the very next one). A negative n cancels the schedule.
func (c *CrashFS) CrashAfter(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n < 0 {
		c.crashAt = -1
		return
	}
	c.crashAt = c.ops + n
}

// CrashNow kills the process immediately.
func (c *CrashFS) CrashNow() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.crashed = true
}

// Crashed reports whether the simulated process is dead.
func (c *CrashFS) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// Ops returns the number of counted operations so far — the sweep bound for
// exhaustive crash-point enumeration.
func (c *CrashFS) Ops() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ops
}

// Syncs returns how many file fsyncs completed (group-commit accounting).
func (c *CrashFS) Syncs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.syncs
}

// Restart materializes the post-crash disk state and revives the
// filesystem: durable namespace only, synced content plus a torn prefix of
// any appended tail. Handles opened before the crash stay dead.
func (c *CrashFS) Restart() {
	c.mu.Lock()
	defer c.mu.Unlock()
	next := make(map[string]*memFile, len(c.dur))
	// Deterministic iteration: torn byte counts must not depend on map order.
	names := make([]string, 0, len(c.dur))
	for name := range c.dur {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := c.dur[name]
		content := append([]byte(nil), f.synced...)
		if len(f.cur) > len(f.synced) && prefixEqual(f.cur, f.synced) {
			// Pure append since the last fsync: a torn tail survives.
			keep := c.rng.Intn(len(f.cur) - len(f.synced) + 1)
			content = append(content, f.cur[len(f.synced):len(f.synced)+keep]...)
		}
		next[name] = &memFile{cur: content, synced: append([]byte(nil), content...)}
	}
	c.files = next
	c.dur = make(map[string]*memFile, len(next))
	for name, f := range next {
		c.dur[name] = f
	}
	c.crashed = false
	c.crashAt = -1
	c.gen++
}

func prefixEqual(longer, prefix []byte) bool {
	if len(longer) < len(prefix) {
		return false
	}
	return string(longer[:len(prefix)]) == string(prefix)
}

// step counts one operation and reports whether the process is still alive;
// callers hold c.mu.
func (c *CrashFS) step() error {
	if c.crashed {
		return ErrCrashed
	}
	if c.crashAt >= 0 && c.ops >= c.crashAt {
		c.crashed = true
		return ErrCrashed
	}
	c.ops++
	return nil
}

func clean(name string) string { return filepath.Clean(name) }

// OpenFile implements FS.
func (c *CrashFS) OpenFile(name string, flag int, perm iofs.FileMode) (File, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.step(); err != nil {
		return nil, err
	}
	name = clean(name)
	f := c.files[name]
	if f == nil {
		if flag&os.O_CREATE == 0 {
			return nil, &iofs.PathError{Op: "open", Path: name, Err: iofs.ErrNotExist}
		}
		f = &memFile{}
		c.files[name] = f
		// The create is a namespace change: durable only after SyncDir.
	} else if flag&(os.O_CREATE|os.O_EXCL) == os.O_CREATE|os.O_EXCL {
		return nil, &iofs.PathError{Op: "open", Path: name, Err: iofs.ErrExist}
	}
	if flag&os.O_TRUNC != 0 {
		f.cur = nil
		if len(f.synced) > 0 {
			f.dirty = true
		}
	}
	pos := int64(len(f.cur))
	if flag&os.O_APPEND == 0 {
		pos = 0
	}
	return &crashFile{fs: c, f: f, pos: pos, gen: c.gen, append_: flag&os.O_APPEND != 0}, nil
}

// ReadFile implements FS.
func (c *CrashFS) ReadFile(name string) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.step(); err != nil {
		return nil, err
	}
	f := c.files[clean(name)]
	if f == nil {
		return nil, &iofs.PathError{Op: "read", Path: clean(name), Err: iofs.ErrNotExist}
	}
	return append([]byte(nil), f.cur...), nil
}

// Rename implements FS; durable only after SyncDir on the parent.
func (c *CrashFS) Rename(oldpath, newpath string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.step(); err != nil {
		return err
	}
	oldpath, newpath = clean(oldpath), clean(newpath)
	f := c.files[oldpath]
	if f == nil {
		return &iofs.PathError{Op: "rename", Path: oldpath, Err: iofs.ErrNotExist}
	}
	delete(c.files, oldpath)
	c.files[newpath] = f
	return nil
}

// Remove implements FS; durable only after SyncDir on the parent.
func (c *CrashFS) Remove(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.step(); err != nil {
		return err
	}
	name = clean(name)
	if c.files[name] == nil {
		return &iofs.PathError{Op: "remove", Path: name, Err: iofs.ErrNotExist}
	}
	delete(c.files, name)
	return nil
}

// MkdirAll implements FS (immediately durable — see the type comment).
func (c *CrashFS) MkdirAll(dir string, perm iofs.FileMode) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.step(); err != nil {
		return err
	}
	c.dirs[clean(dir)] = true
	return nil
}

// ReadDirNames implements FS over the live namespace.
func (c *CrashFS) ReadDirNames(dir string) ([]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.step(); err != nil {
		return nil, err
	}
	dir = clean(dir)
	var names []string
	for name := range c.files {
		if filepath.Dir(name) == dir {
			names = append(names, filepath.Base(name))
		}
	}
	sort.Strings(names)
	return names, nil
}

// SyncDir makes dir's current namespace durable: every live entry under dir
// is recorded in the durable namespace, every durable entry no longer live
// is dropped from it.
func (c *CrashFS) SyncDir(dir string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.step(); err != nil {
		return err
	}
	dir = clean(dir)
	for name, f := range c.files {
		if filepath.Dir(name) == dir {
			c.dur[name] = f
		}
	}
	for name := range c.dur {
		if filepath.Dir(name) == dir && c.files[name] == nil {
			delete(c.dur, name)
		}
	}
	return nil
}

// DiskBytes returns every live file's current content keyed by path — the
// guardrail scanner's view of "what is on disk".
func (c *CrashFS) DiskBytes() map[string][]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string][]byte, len(c.files))
	for name, f := range c.files {
		out[name] = append([]byte(nil), f.cur...)
	}
	return out
}

// crashFile is a handle into a CrashFS file.
type crashFile struct {
	fs      *CrashFS
	f       *memFile
	pos     int64
	gen     int
	append_ bool
	closed  bool
}

// check validates the handle and counts the op; callers hold fs.mu.
func (h *crashFile) check() error {
	if err := h.fs.step(); err != nil {
		return err
	}
	if h.gen != h.fs.gen {
		return ErrCrashed // handle predates a restart
	}
	if h.closed {
		return fmt.Errorf("fault: file already closed")
	}
	return nil
}

func (h *crashFile) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	// A write interrupted by the crash still lands a torn prefix: the
	// kernel got some of it before the process died.
	if err := h.check(); err != nil {
		if errors.Is(err, ErrCrashed) && h.gen == h.fs.gen && !h.closed {
			keep := h.fs.rng.Intn(len(p) + 1)
			h.writeLocked(p[:keep])
		}
		return 0, err
	}
	h.writeLocked(p)
	return len(p), nil
}

func (h *crashFile) writeLocked(p []byte) {
	if h.append_ {
		h.pos = int64(len(h.f.cur))
	}
	if len(p) > 0 && h.pos < int64(len(h.f.synced)) {
		h.f.dirty = true
	}
	end := h.pos + int64(len(p))
	if h.pos == int64(len(h.f.cur)) {
		// Plain append — the WAL's whole write pattern.
		h.f.cur = append(h.f.cur, p...)
		h.pos = end
		return
	}
	if int64(len(h.f.cur)) < end {
		h.f.cur = append(h.f.cur, make([]byte, end-int64(len(h.f.cur)))...)
	}
	copy(h.f.cur[h.pos:end], p)
	h.pos = end
}

func (h *crashFile) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.check(); err != nil {
		return err
	}
	if h.f.dirty || len(h.f.cur) < len(h.f.synced) {
		h.f.synced = append([]byte(nil), h.f.cur...)
		h.f.dirty = false
	} else {
		h.f.synced = append(h.f.synced, h.f.cur[len(h.f.synced):]...)
	}
	h.fs.syncs++
	return nil
}

func (h *crashFile) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.check(); err != nil {
		return err
	}
	if size < 0 || size > int64(len(h.f.cur)) {
		return fmt.Errorf("fault: truncate %d out of range", size)
	}
	if size < int64(len(h.f.synced)) {
		h.f.dirty = true
	}
	h.f.cur = h.f.cur[:size]
	if h.pos > size {
		h.pos = size
	}
	return nil
}

func (h *crashFile) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	// Close is free (no fsync semantics) but still fails on a dead process.
	if h.fs.crashed {
		return ErrCrashed
	}
	h.closed = true
	return nil
}

// ScanForPlaintext reports every file in disk whose bytes contain any of
// the given secrets — the encryption-at-rest guardrail. It is FS-agnostic:
// pass CrashFS.DiskBytes() or a map built by walking a real directory.
func ScanForPlaintext(disk map[string][]byte, secrets []string) []string {
	var hits []string
	for name, data := range disk {
		for _, sec := range secrets {
			if sec != "" && strings.Contains(string(data), sec) {
				hits = append(hits, name+": "+sec)
			}
		}
	}
	sort.Strings(hits)
	return hits
}
