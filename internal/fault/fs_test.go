package fault

import (
	"bytes"
	"errors"
	"os"
	"reflect"
	"testing"
)

func TestFaultFSSyncSemantics(t *testing.T) {
	fs := NewCrashFS(1)
	f, err := fs.OpenFile("a.log", os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir("."); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("-tail-never-synced")); err != nil {
		t.Fatal(err)
	}
	fs.CrashNow()
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write after crash: %v", err)
	}
	fs.Restart()
	got, err := fs.ReadFile("a.log")
	if err != nil {
		t.Fatalf("read after restart: %v", err)
	}
	if !bytes.HasPrefix(got, []byte("durable")) {
		t.Fatalf("synced prefix lost: %q", got)
	}
	if !bytes.HasPrefix([]byte("durable-tail-never-synced"), got) {
		t.Fatalf("restart invented bytes: %q", got)
	}
	// The stale handle stays dead after restart.
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("stale handle after restart: %v", err)
	}
}

func TestFaultFSRenameNeedsDirSync(t *testing.T) {
	// Without SyncDir the rename rolls back on crash...
	fs := NewCrashFS(2)
	writeSynced := func(fs *CrashFS, name, content string) {
		f, err := fs.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte(content)); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	writeSynced(fs, "log", "old")
	if err := fs.SyncDir("."); err != nil {
		t.Fatal(err)
	}
	writeSynced(fs, "log.tmp", "new")
	if err := fs.Rename("log.tmp", "log"); err != nil {
		t.Fatal(err)
	}
	fs.CrashNow()
	fs.Restart()
	if got, _ := fs.ReadFile("log"); string(got) != "old" {
		t.Fatalf("rename survived crash without dir sync: %q", got)
	}

	// ...and with SyncDir it sticks.
	fs2 := NewCrashFS(2)
	writeSynced(fs2, "log", "old")
	fs2.SyncDir(".")
	writeSynced(fs2, "log.tmp", "new")
	if err := fs2.Rename("log.tmp", "log"); err != nil {
		t.Fatal(err)
	}
	if err := fs2.SyncDir("."); err != nil {
		t.Fatal(err)
	}
	fs2.CrashNow()
	fs2.Restart()
	if got, _ := fs2.ReadFile("log"); string(got) != "new" {
		t.Fatalf("dir-synced rename lost: %q", got)
	}
}

func TestFaultFSCrashAfterDeterminism(t *testing.T) {
	run := func() map[string][]byte {
		fs := NewCrashFS(7)
		fs.CrashAfter(9)
		f, _ := fs.OpenFile("a", os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o600)
		for i := 0; i < 20; i++ {
			if _, err := f.Write([]byte("0123456789")); err != nil {
				break
			}
			if err := f.Sync(); err != nil {
				break
			}
		}
		fs.SyncDir(".")
		fs.Restart()
		return fs.DiskBytes()
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Fatal("same seed + same ops produced different post-crash disks")
	}
}

func TestFaultFSScanForPlaintext(t *testing.T) {
	disk := map[string][]byte{
		"clean":  []byte("nothing to see"),
		"leaky":  []byte("prefix hunter2 suffix"),
		"binary": {0x00, 0x01, 'h', 'u', 'n', 't', 'e', 'r', '2'},
	}
	hits := ScanForPlaintext(disk, []string{"hunter2"})
	if len(hits) != 2 {
		t.Fatalf("hits = %v", hits)
	}
	if hits := ScanForPlaintext(disk, []string{"absent"}); len(hits) != 0 {
		t.Fatalf("false positives: %v", hits)
	}
}
