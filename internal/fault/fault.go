// Package fault holds the small fault-tolerance primitives shared by the
// device↔trusted-node channel implementations: capped exponential backoff
// with jitter, and a three-state circuit breaker.
//
// TinMan's availability story (§5.4) is that losing the trusted node must
// degrade only cor-touching work, never the app — which requires the
// channel to retry transient failures without storming, and to fail fast
// once the node is plainly gone. Both primitives here are clock- and
// randomness-abstracted so the in-process simulation (internal/core) drives
// them with deterministic virtual time while the TCP transport
// (internal/nodeproto) uses the wall clock.
package fault

import (
	"math/rand"
	"sync"
	"time"
)

// Backoff computes capped-exponential retry delays with jitter. The zero
// value is usable and yields the defaults noted on each field.
type Backoff struct {
	// Base is the delay before the first retry (default 100ms).
	Base time.Duration
	// Max caps the grown delay (default 30s).
	Max time.Duration
	// Factor multiplies the delay per attempt (default 2).
	Factor float64
	// Jitter in [0,1] is the fraction of each delay randomly shaved off,
	// de-synchronizing clients that failed together (default 0, no jitter).
	Jitter float64
	// Rand supplies the jitter randomness in [0,1); nil uses the global
	// math/rand source. Simulations inject their seeded source here so
	// retry schedules are reproducible.
	Rand func() float64
}

// Delay returns the wait before retry number attempt (0-based: attempt 0
// is the delay between the first failure and the first retry).
func (b Backoff) Delay(attempt int) time.Duration {
	base := b.Base
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := b.Max
	if max <= 0 {
		max = 30 * time.Second
	}
	factor := b.Factor
	if factor < 1 {
		factor = 2
	}
	d := float64(base)
	for i := 0; i < attempt; i++ {
		d *= factor
		if d >= float64(max) {
			break
		}
	}
	if d > float64(max) {
		d = float64(max)
	}
	if b.Jitter > 0 {
		r := b.Rand
		if r == nil {
			r = rand.Float64
		}
		d -= b.Jitter * d * r()
	}
	return time.Duration(d)
}

// BreakerState is a circuit breaker's current disposition.
type BreakerState uint8

const (
	// BreakerClosed passes requests through (healthy).
	BreakerClosed BreakerState = iota
	// BreakerOpen fails requests fast without touching the network.
	BreakerOpen
	// BreakerHalfOpen lets exactly one probe through after the cooldown;
	// its outcome closes or re-opens the circuit.
	BreakerHalfOpen
)

// String returns the conventional state name.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes a Breaker.
type BreakerConfig struct {
	// Threshold is the number of consecutive failures that opens the
	// circuit (default 3).
	Threshold int
	// Cooldown is how long the circuit stays open before a probe is
	// allowed (default 10s).
	Cooldown time.Duration
	// Now is the monotonic clock the cooldown is measured on; nil uses the
	// wall clock. Simulations pass their virtual clock's Now.
	Now func() time.Duration
	// OnTransition fires on every state change (metrics hook). It runs with
	// the breaker's lock held, so it must not call back into the breaker.
	OnTransition func(from, to BreakerState)
}

// Breaker is a consecutive-failure circuit breaker. Callers ask Allow
// before each logical request and report the outcome with Success or
// Failure; while the circuit is open, Allow returns false until the
// cooldown elapses, after which a single probe is admitted (half-open).
// It is safe for concurrent use.
//
// An admitted caller that never reports an outcome wedges a half-open
// probe; every caller in this repo reports on all paths.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Duration
	probing  bool
}

// NewBreaker builds a breaker, filling config defaults.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 3
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 10 * time.Second
	}
	if cfg.Now == nil {
		start := time.Now()
		cfg.Now = func() time.Duration { return time.Since(start) }
	}
	return &Breaker{cfg: cfg}
}

// Allow reports whether a request may proceed, transitioning open →
// half-open when the cooldown has elapsed.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.cfg.Now()-b.openedAt < b.cfg.Cooldown {
			return false
		}
		b.setStateLocked(BreakerHalfOpen)
		b.probing = true
		return true
	default: // half-open: one probe at a time
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success reports a successful request: the circuit closes and the failure
// count resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.setStateLocked(BreakerClosed)
	b.failures = 0
	b.probing = false
}

// Failure reports a failed request. In half-open it re-opens immediately;
// closed, it opens once Threshold consecutive failures accumulate.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.trip()
		return
	}
	b.failures++
	if b.failures >= b.cfg.Threshold {
		b.trip()
	}
}

// trip opens the circuit; callers hold b.mu.
func (b *Breaker) trip() {
	b.setStateLocked(BreakerOpen)
	b.openedAt = b.cfg.Now()
	b.failures = 0
	b.probing = false
}

// setStateLocked changes state and fires OnTransition on a real change;
// callers hold b.mu.
func (b *Breaker) setStateLocked(to BreakerState) {
	if b.state == to {
		return
	}
	from := b.state
	b.state = to
	if b.cfg.OnTransition != nil {
		b.cfg.OnTransition(from, to)
	}
}

// State returns the breaker's current state. An open circuit whose
// cooldown has elapsed still reads as open until an Allow converts it to a
// half-open probe.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
