package bench

import (
	"encoding/json"
	"strings"
	"testing"

	"tinman/internal/apps"
	"tinman/internal/netsim"
	"tinman/internal/obs"
)

// TestObsSmoke is the `make obs-smoke` gate: one fully traced Wi-Fi login
// must produce a span tree that attributes >= 90% of the end-to-end wall
// time, with every offload-lifecycle phase individually present, and both
// exporter formats must be valid JSON that never carries cor plaintext.
func TestObsSmoke(t *testing.T) {
	rep, err := TraceLogin(netsim.WiFi, 42, "paypal")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total <= 0 {
		t.Fatalf("traced login has zero duration")
	}
	if rep.Coverage < 0.90 {
		t.Errorf("span tree covers %.1f%% of the login, want >= 90%%", 100*rep.Coverage)
	}

	present := map[obs.Phase]bool{}
	for _, r := range rep.Records {
		present[r.Phase] = true
	}
	for _, ph := range []obs.Phase{
		obs.PhaseDSMMigrate, obs.PhaseNodeExec, obs.PhaseSyncBack,
		obs.PhaseTLSInject, obs.PhaseTCPReplace, obs.PhasePolicyCheck,
	} {
		if !present[ph] {
			t.Errorf("phase %s missing from the traced login", ph)
		}
	}

	var jsonl, chrome strings.Builder
	if err := obs.WriteJSONLines(&jsonl, rep.Records); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteChromeTrace(&chrome, rep.Records); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(jsonl.String()), "\n")
	if len(lines) != len(rep.Records) {
		t.Errorf("JSON-lines dump has %d lines for %d records", len(lines), len(rep.Records))
	}
	for i, line := range lines {
		var o map[string]any
		if err := json.Unmarshal([]byte(line), &o); err != nil {
			t.Fatalf("JSON-lines line %d invalid: %v\n%s", i, err, line)
		}
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(chrome.String()), &events); err != nil {
		t.Fatalf("Chrome trace is not a JSON array: %v", err)
	}
	if len(events) != len(rep.Records) {
		t.Errorf("Chrome trace has %d events for %d records", len(events), len(rep.Records))
	}

	// Redaction: no catalog password may appear in either export. The specs
	// are the ground truth for what plaintext exists in the simulated world.
	for _, spec := range apps.LoginApps {
		for name, out := range map[string]string{"jsonlines": jsonl.String(), "chrome": chrome.String()} {
			if strings.Contains(out, spec.Password) {
				t.Errorf("%s export contains the %s cor plaintext", name, spec.Name)
			}
		}
	}
}
