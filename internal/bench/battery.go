package bench

import (
	"fmt"
	"time"

	"tinman/internal/apps"
	"tinman/internal/netsim"
	"tinman/internal/power"
	"tinman/internal/taint"
	"tinman/internal/vm"
)

// BatterySample is one point of a Fig 16/17 curve.
type BatterySample struct {
	At      time.Duration
	Percent float64
}

// BatteryCurve is a labeled series.
type BatteryCurve struct {
	Label   string
	Samples []BatterySample
}

// Final returns the last sample's percentage.
func (c BatteryCurve) Final() float64 {
	if len(c.Samples) == 0 {
		return 100
	}
	return c.Samples[len(c.Samples)-1].Percent
}

// LoginStress reproduces Fig 16: PayPal login repeated for `total` of
// virtual time (the paper uses 30 minutes) on Android and on TinMan, with
// the display on and the battery sampled every `sample` (paper: 10 s).
// Returns the two curves (baseline first).
func LoginStress(total, sample time.Duration, seed int64) ([]BatteryCurve, error) {
	curves := make([]BatteryCurve, 0, 2)
	for _, tinman := range []bool{false, true} {
		label := "android"
		if tinman {
			label = "tinman"
		}
		env, err := apps.NewLoginEnv(apps.EnvConfig{Profile: netsim.WiFi, TinMan: tinman, Seed: seed})
		if err != nil {
			return nil, err
		}
		w := env.World
		// The screen stays on for the whole stress test.
		w.Display.NoteActive(0, total)

		curve := BatteryCurve{Label: label}
		record := func() {
			curve.Samples = append(curve.Samples, BatterySample{At: w.Net.Now(), Percent: w.Battery.PercentAt(w.Net.Now())})
		}
		record()
		lastSample := time.Duration(0)
		for w.Net.Now() < total {
			if _, err := env.Login("paypal"); err != nil {
				return nil, fmt.Errorf("bench: login stress (%s): %v", label, err)
			}
			// Catch up on the sampling grid.
			for lastSample+sample <= w.Net.Now() {
				lastSample += sample
				curve.Samples = append(curve.Samples, BatterySample{At: lastSample, Percent: w.Battery.PercentAt(lastSample)})
			}
		}
		record()
		curves = append(curves, curve)
	}
	return curves, nil
}

// Fig17Workload is one phase of the tainting-only battery test.
type Fig17Workload struct {
	Name string
	// CPUDuty is the fraction of time the CPU is busy running the app.
	CPUDuty float64
	// Kernel drives the actual VM work during busy time (so client-side
	// tainting has its real effect on how long the work takes).
	Kernel Kernel
	// NetEveryPage, when positive, models periodic radio transfers (web
	// browsing); the duration is per transfer.
	NetEvery    time.Duration
	NetDuration time.Duration
	// ExtraDraw adds a constant component (video decoder).
	ExtraDraw float64
}

// Fig17Workloads are the paper's three 10-minute phases: a game
// (CPU-bound), Wikipedia browsing (network + render), and local 720p video
// (decoder + display).
var Fig17Workloads = []Fig17Workload{
	{Name: "AngryBird", CPUDuty: 0.85, Kernel: Kernel{Name: "game", Method: "loop", Arg: 20000}},
	{Name: "Wikipedia", CPUDuty: 0.30, Kernel: Kernel{Name: "render", Method: "string", Arg: 1500},
		NetEvery: 8 * time.Second, NetDuration: 900 * time.Millisecond},
	{Name: "Video", CPUDuty: 0.10, Kernel: Kernel{Name: "decode", Method: "loop", Arg: 4000},
		ExtraDraw: power.VideoDecodeW},
}

// TaintingBattery reproduces Fig 17: three consecutive phases of `phase`
// each (paper: 10 minutes), with no cor access at all, on a plain device
// versus one with client-side (asymmetric) tainting always on. The only
// difference is the tainting slowdown of the CPU-bound work, so the curves
// should nearly coincide.
func TaintingBattery(phase, sample time.Duration, seed int64) ([]BatteryCurve, error) {
	curves := make([]BatteryCurve, 0, 2)
	for _, pol := range []taint.Policy{taint.Off, taint.Asymmetric} {
		label := "android"
		if pol.Name() != taint.Off.Name() {
			label = "tinman-tainting"
		}

		// Measure the tainting slowdown of each phase's kernel; the phase
		// then takes proportionally more CPU-busy time. The untainted
		// configuration is by definition the baseline (ratio 1); measuring
		// it against itself would only add timer noise.
		slow := make([]float64, len(Fig17Workloads))
		for i, wl := range Fig17Workloads {
			slow[i] = 1
			if pol.Name() == taint.Off.Name() {
				continue
			}
			base, err := kernelTime(taint.Off, wl.Kernel)
			if err != nil {
				return nil, err
			}
			mine, err := kernelTime(pol, wl.Kernel)
			if err != nil {
				return nil, err
			}
			slow[i] = float64(mine) / float64(base)
			if slow[i] < 1 {
				slow[i] = 1
			}
		}

		bat := power.NewBattery(power.GalaxyNexusCapacityJ)
		bat.Attach(power.NewConstant("base", power.BaseIdleW))
		cpu := power.NewActivity("cpu", power.CPUActiveW, 0)
		bat.Attach(cpu)
		radio := power.NewWiFiRadio()
		bat.Attach(radio)
		display := power.NewActivity("display", power.DisplayOnW, 0)
		bat.Attach(display)

		total := phase * time.Duration(len(Fig17Workloads))
		display.NoteActive(0, total)

		for i, wl := range Fig17Workloads {
			start := phase * time.Duration(i)
			busy := time.Duration(float64(phase) * wl.CPUDuty * slow[i])
			if busy > phase {
				busy = phase
			}
			cpu.NoteActive(start, busy)
			if wl.NetEvery > 0 {
				for at := start; at < start+phase; at += wl.NetEvery {
					radio.NoteTransfer(at, wl.NetDuration)
				}
			}
			if wl.ExtraDraw > 0 {
				extra := power.NewActivity("decoder-"+wl.Name, wl.ExtraDraw, 0)
				extra.NoteActive(start, phase)
				bat.Attach(extra)
			}
		}

		curve := BatteryCurve{Label: label}
		for at := time.Duration(0); at <= total; at += sample {
			curve.Samples = append(curve.Samples, BatterySample{At: at, Percent: bat.PercentAt(at)})
		}
		curves = append(curves, curve)
	}
	return curves, nil
}

// kernelTime measures one kernel run under a policy (median-free quick
// estimate: best of 3).
func kernelTime(pol taint.Policy, k Kernel) (time.Duration, error) {
	machine, err := NewCaffeineVM(pol)
	if err != nil {
		return 0, err
	}
	if _, err := RunKernel(machine, k); err != nil {
		return 0, err
	}
	best := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		if _, err := RunKernel(machine, k); err != nil {
			return 0, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best, nil
}

// ensure vm import is used even if kernels change.
var _ vm.Value
