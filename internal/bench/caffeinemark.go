package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"tinman/internal/taint"
	"tinman/internal/vm"
	"tinman/internal/vm/asm"
)

// caffeineSource holds the six Caffeinemark-style kernels. Each stresses a
// different instruction mix, which is what makes Fig 13 informative: the
// cost of a tainting configuration depends on which propagation classes the
// mix exercises.
const caffeineSource = `
class Caffeine
  ; Sieve of Eratosthenes: array get/put bound (heap<->stack traffic).
  method sieve 1 12
    newarr r1, r0
    const r2, 2
  outer:
    ifge r2, r0, count
    aget r3, r1, r2
    ifnz r3, next
    mul r4, r2, r2
  inner:
    ifge r4, r0, next
    const r5, 1
    aput r5, r1, r4
    add r4, r4, r2
    goto inner
  next:
    const r5, 1
    add r2, r2, r5
    goto outer
  count:
    const r6, 0
    const r7, 2
  tally:
    ifge r7, r0, done
    aget r3, r1, r7
    ifnz r3, skip
    const r5, 1
    add r6, r6, r5
  skip:
    const r5, 1
    add r7, r7, r5
    goto tally
  done:
    return r6
  end

  ; Loop: pure register arithmetic (stack-to-stack bound).
  method loop 1 10
    const r1, 0
    const r2, 0
  head:
    ifge r2, r0, done
    add r1, r1, r2
    mul r3, r2, r2
    sub r1, r1, r3
    add r1, r1, r3
    const r4, 1
    add r2, r2, r4
    goto head
  done:
    return r1
  end

  ; Logic: bitwise operations (stack-to-stack bound).
  method logic 1 10
    const r1, -1
    const r2, 0
  head:
    ifge r2, r0, done
    xor r1, r1, r2
    and r3, r1, r2
    or r1, r1, r3
    shl r3, r1, r2
    shr r3, r3, r2
    xor r1, r1, r3
    const r4, 1
    add r2, r2, r4
    goto head
  done:
    return r1
  end

  ; Method: invocation-bound (frame setup, arg copying).
  method callee 2 4
    add r2, r0, r1
    const r3, 7
    rem r2, r2, r3
    return r2
  end
  method methodcall 1 8
    const r1, 0
    const r2, 0
  head:
    ifge r2, r0, done
    invoke r3, Caffeine.callee, r1, r2
    add r1, r1, r3
    const r4, 1
    add r2, r2, r4
    goto head
  done:
    return r1
  end

  ; Float: floating-point arithmetic.
  method float 1 12
    constf r1, 1.000001
    constf r2, 0.0
    const r3, 0
  head:
    ifge r3, r0, done
    mulf r2, r1, r1
    addf r1, r1, r2
    constf r4, 2.0
    divf r1, r1, r4
    subf r2, r1, r2
    const r5, 1
    add r3, r3, r5
    goto head
  done:
    f2i r6, r1
    return r6
  end

  ; String: concatenation and charAt — the mix the paper reports as worst
  ; under tainting (string fast paths disabled, high heap-to-stack ratio).
  method string 1 14
    conststr r1, "caffeine"
    conststr r2, ""
    const r3, 0
  head:
    ifge r3, r0, done
    strcat r2, r2, r1
    strlen r4, r2
    const r9, 64
    iflt r4, r9, short
    const r5, 0
    substr r2, r2, r5, 32
  short:
    const r6, 0
    charat r7, r2, r6
    const r8, 1
    add r3, r3, r8
    goto head
  done:
    strlen r4, r2
    return r4
  end
end
`

// Kernel names the six Fig 13 workloads with their work parameters.
type Kernel struct {
	Name   string
	Method string
	Arg    int64
}

// Kernels lists the Caffeinemark suite.
var Kernels = []Kernel{
	{Name: "Sieve", Method: "sieve", Arg: 16384},
	{Name: "Loop", Method: "loop", Arg: 60000},
	{Name: "Logic", Method: "logic", Arg: 50000},
	{Name: "Method", Method: "methodcall", Arg: 40000},
	{Name: "Float", Method: "float", Arg: 50000},
	{Name: "String", Method: "string", Arg: 9000},
}

// Fig13Policies are the three configurations of Fig 13, in presentation
// order.
var Fig13Policies = []taint.Policy{taint.Off, taint.Full, taint.Asymmetric}

// caffeineProg caches the assembled suite; programs are immutable after
// sealing, so VMs can share one.
var (
	caffeineOnce sync.Once
	caffeineProg *vm.Program
	caffeineErr  error
)

// NewCaffeineVM builds a VM loaded with the kernel suite under the given
// policy, with the taint pre-analysis fast path disabled: every instruction
// runs fully instrumented, which is the configuration the paper's Fig 13
// overheads describe. A fresh heap keeps allocation effects comparable
// across runs.
func NewCaffeineVM(policy taint.Policy) (*vm.VM, error) {
	return newCaffeineVM(policy, false, false)
}

// NewAnalyzedCaffeineVM builds the same VM with the static taint
// pre-analysis enabled (vm/taintflow.go): provably taint-free regions run
// on the uninstrumented fast-path loop. Benchmarking it against
// NewCaffeineVM isolates what partial instrumentation buys.
func NewAnalyzedCaffeineVM(policy taint.Policy) (*vm.VM, error) {
	return newCaffeineVM(policy, false, true)
}

// NewReferenceCaffeineVM builds the same VM forced through the reference
// interpreter (vm.Config.SlowPath: no link-time resolution, no inline
// caches, no literal interning). Benchmarking it against NewCaffeineVM
// isolates what the linked fast paths buy.
func NewReferenceCaffeineVM(policy taint.Policy) (*vm.VM, error) {
	return newCaffeineVM(policy, true, false)
}

func newCaffeineVM(policy taint.Policy, slowPath, analyze bool) (*vm.VM, error) {
	caffeineOnce.Do(func() {
		caffeineProg, caffeineErr = asm.Assemble("caffeinemark", caffeineSource)
	})
	if caffeineErr != nil {
		return nil, caffeineErr
	}
	return vm.New(vm.Config{
		Program:    caffeineProg,
		Heap:       vm.NewHeap(1, 2),
		Policy:     policy,
		SlowPath:   slowPath,
		NoFastPath: !analyze,
	}), nil
}

// RunKernel executes one kernel once and returns its result value.
func RunKernel(machine *vm.VM, k Kernel) (int64, error) {
	th, err := machine.NewThread(machine.Program.Method("Caffeine", k.Method), vm.IntVal(k.Arg))
	if err != nil {
		return 0, err
	}
	stop, err := th.Run()
	if err != nil {
		return 0, err
	}
	if stop != vm.StopDone {
		return 0, fmt.Errorf("bench: kernel %s stopped with %v", k.Name, stop)
	}
	return th.Result.Int, nil
}

// CaffeineRow is one kernel's scores under the three policies. Scores are
// Caffeinemark-style: work units per second (higher is better).
type CaffeineRow struct {
	Kernel string
	// Score per policy name ("off", "full", "asymmetric").
	Score map[string]float64
}

// Overhead returns the slowdown of policy p relative to the untainted
// baseline, e.g. 0.10 for 10% slower.
func (r CaffeineRow) Overhead(p taint.Policy) float64 {
	base := r.Score["off"]
	s := r.Score[p.Name()]
	if base == 0 || s == 0 {
		return 0
	}
	return base/s - 1
}

// Caffeinemark reproduces Fig 13: each kernel under {original, full
// tainting, asymmetric tainting}, measured in real execution time of the
// interpreter (the taint instrumentation is real code, not a model).
// rounds > 1 reduces timer noise; the best round is scored, and every
// measurement runs on a fresh VM with a collected heap so allocator state
// cannot bleed between configurations. Analysis is off — this is the
// paper's fully instrumented configuration; see CaffeinemarkMode.
func Caffeinemark(rounds int) ([]CaffeineRow, error) {
	return CaffeinemarkMode(rounds, false)
}

// CaffeinemarkMode is Caffeinemark with the static taint pre-analysis
// switchable: analyze=true runs every configuration with the
// uninstrumented fast-path loop enabled (`tinman-bench -analyze=on`).
func CaffeinemarkMode(rounds int, analyze bool) ([]CaffeineRow, error) {
	if rounds <= 0 {
		rounds = 5
	}
	rows := make([]CaffeineRow, len(Kernels))
	for i, k := range Kernels {
		rows[i] = CaffeineRow{Kernel: k.Name, Score: make(map[string]float64, len(Fig13Policies))}
	}
	for i, k := range Kernels {
		best := make(map[string]time.Duration, len(Fig13Policies))
		// Interleave the configurations round-robin so that machine-level
		// noise (frequency scaling, noisy neighbours) hits all three alike,
		// and score the fastest round of each.
		for r := 0; r < rounds; r++ {
			for _, pol := range Fig13Policies {
				machine, err := newCaffeineVM(pol, false, analyze)
				if err != nil {
					return nil, err
				}
				// Short warm-up, then the timed run on a quiesced heap.
				warm := k
				warm.Arg = k.Arg / 16
				if _, err := RunKernel(machine, warm); err != nil {
					return nil, err
				}
				machine.Heap.ClearDirty()
				runtime.GC()
				start := time.Now()
				if _, err := RunKernel(machine, k); err != nil {
					return nil, err
				}
				d := time.Since(start)
				if cur, ok := best[pol.Name()]; !ok || d < cur {
					best[pol.Name()] = d
				}
			}
		}
		for name, d := range best {
			rows[i].Score[name] = float64(k.Arg) / d.Seconds()
		}
	}
	return rows, nil
}

// AverageOverheads summarizes Fig 13 the way the paper quotes it: the mean
// overhead of full and asymmetric tainting across kernels (paper: 20.1% and
// 9.6%).
func AverageOverheads(rows []CaffeineRow) (full, asym float64) {
	if len(rows) == 0 {
		return
	}
	for _, r := range rows {
		full += r.Overhead(taint.Full)
		asym += r.Overhead(taint.Asymmetric)
	}
	n := float64(len(rows))
	return full / n, asym / n
}
