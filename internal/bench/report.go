package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"tinman/internal/taint"
)

// seconds formats a duration like the paper's figures (one decimal).
func seconds(d time.Duration) string { return fmt.Sprintf("%.2fs", d.Seconds()) }

// PrintFig13 renders the Caffeinemark comparison.
func PrintFig13(w io.Writer, rows []CaffeineRow) {
	fmt.Fprintln(w, "Figure 13: Caffeinemark scores (higher is better) and overhead vs original")
	fmt.Fprintf(w, "%-8s  %12s  %12s %8s  %12s %8s\n", "kernel", "original", "full-taint", "ovh", "asym-taint", "ovh")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s  %12.0f  %12.0f %7.1f%%  %12.0f %7.1f%%\n",
			r.Kernel, r.Score["off"],
			r.Score["full"], 100*r.Overhead(taint.Full),
			r.Score["asymmetric"], 100*r.Overhead(taint.Asymmetric))
	}
	full, asym := AverageOverheads(rows)
	fmt.Fprintf(w, "average overhead: full tainting %.1f%% (paper: 20.1%%), asymmetric %.1f%% (paper: 9.6%%)\n",
		100*full, 100*asym)
}

// PrintLogin renders Fig 14 or Fig 15.
func PrintLogin(w io.Writer, figure string, rows []LoginRow) {
	fmt.Fprintf(w, "%s: application login latency, after warm-up\n", figure)
	fmt.Fprintf(w, "%-8s  %10s  %10s  %24s  %8s\n", "app", "original", "tinman", "breakdown (dsm/ssl+tcp/rest)", "overhead")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s  %10s  %10s  %8s %8s %8s  %7.2fx\n",
			r.App, seconds(r.Baseline), seconds(r.TinMan),
			seconds(r.DSM), seconds(r.SSLTCP), seconds(r.Rest), r.Overhead())
	}
	b, t, d, s := AverageLogin(rows)
	fmt.Fprintf(w, "average: %s -> %s (dsm %s, ssl/tcp %s)\n", seconds(b), seconds(t), seconds(d), seconds(s))
}

// PrintTable3 renders the offload-accounting table.
func PrintTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintln(w, "Table 3: offloaded code, synchronizations and network consumption per login")
	fmt.Fprintf(w, "%-8s  %18s  %6s  %12s  %12s\n", "app", "off. code", "syncs", "off. init", "off. dirty")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s  %10d (%4.1f%%)  %6d  %10.1fKB  %10.1fKB\n",
			r.App, r.OffCalls, 100*r.OffFraction, r.SyncTimes, r.InitKB, r.DirtyKB)
	}
}

// PrintBattery renders a Fig 16/17 curve set, sampling the printout to at
// most 16 points per curve.
func PrintBattery(w io.Writer, figure string, curves []BatteryCurve) {
	fmt.Fprintf(w, "%s: battery level over time\n", figure)
	for _, c := range curves {
		fmt.Fprintf(w, "%-16s", c.Label)
		step := len(c.Samples)/16 + 1
		for i := 0; i < len(c.Samples); i += step {
			fmt.Fprintf(w, " %5.1f", c.Samples[i].Percent)
		}
		fmt.Fprintf(w, "  (final %.1f%%)\n", c.Final())
	}
}

// Separator prints a section divider.
func Separator(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n%s\n", title, strings.Repeat("=", len(title)))
}
