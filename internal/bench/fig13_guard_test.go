package bench

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"tinman/internal/taint"
	"tinman/internal/vm"
)

// TestFig13TracingGuard pins the observability cost on the Fig 13 hot path.
// The tracing-disabled interpreter (Hooks zero) pays exactly one nil check
// per Thread.Run, so its regression versus the pre-obs interpreter is
// bounded by the cost of the whole Run wrapper. The guard measures that
// bound in-process — interleaved min-of-N per kernel, hook engaged (no-op
// OnRunStats) versus hook disabled — and asserts the geomean ratio stays
// under the ISSUE's 2% budget. An A/B in one process is immune to the
// machine-to-machine drift that makes asserting against recorded wall
// times flaky; the drift versus BENCH_vm.json's latest run is only logged.
func TestFig13TracingGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped in -short mode")
	}
	const rounds = 5
	logSum, disabledNs := 0.0, map[string]float64{}
	for _, k := range Kernels {
		minDisabled := time.Duration(math.MaxInt64)
		minEnabled := time.Duration(math.MaxInt64)
		// Round-robin the two arms so machine noise hits both alike.
		for r := 0; r < rounds; r++ {
			for _, hook := range []bool{false, true} {
				machine, err := NewCaffeineVM(taint.Off)
				if err != nil {
					t.Fatal(err)
				}
				var bursts uint64
				if hook {
					machine.Hooks.OnRunStats = func(instrs, calls uint64, _ vm.StopReason) {
						bursts++
					}
				}
				warm := k
				warm.Arg = k.Arg / 16
				if _, err := RunKernel(machine, warm); err != nil {
					t.Fatal(err)
				}
				machine.Heap.ClearDirty()
				runtime.GC()
				start := time.Now()
				if _, err := RunKernel(machine, k); err != nil {
					t.Fatal(err)
				}
				d := time.Since(start)
				if hook {
					if bursts == 0 {
						t.Fatalf("%s: OnRunStats never fired", k.Name)
					}
					if d < minEnabled {
						minEnabled = d
					}
				} else if d < minDisabled {
					minDisabled = d
				}
			}
		}
		ratio := float64(minEnabled) / float64(minDisabled)
		logSum += math.Log(ratio)
		disabledNs[k.Name] = float64(minDisabled.Nanoseconds())
		t.Logf("%-8s disabled %v, hook-engaged %v (ratio %.4f)", k.Name, minDisabled, minEnabled, ratio)
	}
	geomean := math.Exp(logSum / float64(len(Kernels)))
	t.Logf("geomean hook-engaged/disabled ratio: %.4f", geomean)
	if geomean >= 1.02 {
		t.Errorf("obs hook wrapper costs %.1f%% on the Fig 13 geomean, budget is 2%%", 100*(geomean-1))
	}

	logDriftVsRecorded(t, disabledNs)
}

// logDriftVsRecorded reports (without asserting — recorded numbers come
// from other machines and loads) how the tracing-disabled kernels compare
// to the newest run in BENCH_vm.json.
func logDriftVsRecorded(t *testing.T, disabledNs map[string]float64) {
	data, err := os.ReadFile(filepath.Join("..", "..", "BENCH_vm.json"))
	if err != nil {
		t.Logf("no BENCH_vm.json to compare against: %v", err)
		return
	}
	var file VMBenchFile
	if err := json.Unmarshal(data, &file); err != nil || len(file.Runs) == 0 {
		t.Logf("BENCH_vm.json unusable: %v", err)
		return
	}
	last := file.Runs[len(file.Runs)-1]
	logSum, n := 0.0, 0
	for _, e := range last.Entries {
		if e.Policy != "off" || e.NsPerOp <= 0 {
			continue
		}
		if cur, ok := disabledNs[e.Kernel]; ok {
			logSum += math.Log(cur / e.NsPerOp)
			n++
		}
	}
	if n == 0 {
		t.Logf("BENCH_vm.json run %q has no comparable entries", last.Label)
		return
	}
	drift := math.Exp(logSum / float64(n))
	t.Logf("geomean drift vs BENCH_vm.json run %q: %.3fx (informational)", last.Label, drift)
}
