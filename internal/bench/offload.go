package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"tinman/internal/apps"
	"tinman/internal/netsim"
)

// This file measures what the speculative DSM warm-up buys (the pipeline
// LoginLatency/Table3 deliberately disable): per app, the first login's
// trigger-to-first-node-instruction latency and trigger-time sync volume,
// cold (full snapshot ships at the trigger) versus warm (the snapshot
// streamed in the background, only the dirty delta ships). `tinman-bench
// -offload FILE` (and `make bench-offload`) append runs to
// BENCH_offload.json.

// OffloadRow is one app's cold-vs-warm comparison. All times are virtual
// clock, so rows are deterministic per seed.
type OffloadRow struct {
	App string
	// ColdTTE/WarmTTE are the first offload's trigger-to-first-node-
	// instruction latencies; the cold one includes serializing and shipping
	// the full framework heap.
	ColdTTE time.Duration
	WarmTTE time.Duration
	// ColdTriggerBytes/WarmTriggerBytes are the first trigger-time
	// migration's wire size: the full snapshot cold, the dirty delta warm.
	ColdTriggerBytes int
	WarmTriggerBytes int
	// WarmupBytes/WarmupChunks account the background stream that made the
	// warm trigger small; it overlaps device execution instead of blocking
	// the trigger.
	WarmupBytes  int
	WarmupChunks int
	// WarmHits/WarmMisses are the warm run's admission outcomes.
	WarmHits   int
	WarmMisses int
	// ColdTotal/WarmTotal are the end-to-end login times.
	ColdTotal time.Duration
	WarmTotal time.Duration
}

// Speedup returns ColdTTE/WarmTTE — how much faster the node resumes the
// thread when the snapshot was speculatively pre-shipped.
func (r OffloadRow) Speedup() float64 {
	if r.WarmTTE == 0 {
		return 0
	}
	return float64(r.ColdTTE) / float64(r.WarmTTE)
}

// Offload runs each login app twice — warm-up disabled, then enabled — and
// returns the per-app comparison.
func Offload(profile netsim.Profile, seed int64) ([]OffloadRow, error) {
	rows := make([]OffloadRow, 0, len(apps.LoginApps))
	for _, spec := range apps.LoginApps {
		row := OffloadRow{App: spec.Name}

		cold, err := apps.NewLoginEnv(apps.EnvConfig{Profile: profile, TinMan: true, Seed: seed, NoWarmup: true})
		if err != nil {
			return nil, err
		}
		rc, err := cold.Login(spec.Name)
		if err != nil {
			return nil, fmt.Errorf("bench: %s cold: %v", spec.Name, err)
		}
		row.ColdTTE = rc.FirstTriggerToExec
		row.ColdTriggerBytes = rc.FirstTriggerSyncBytes
		row.ColdTotal = rc.Total

		warm, err := apps.NewLoginEnv(apps.EnvConfig{Profile: profile, TinMan: true, Seed: seed})
		if err != nil {
			return nil, err
		}
		rw, err := warm.Login(spec.Name)
		if err != nil {
			return nil, fmt.Errorf("bench: %s warm: %v", spec.Name, err)
		}
		row.WarmTTE = rw.FirstTriggerToExec
		row.WarmTriggerBytes = rw.FirstTriggerSyncBytes
		row.WarmupBytes = rw.WarmupBytes
		row.WarmupChunks = rw.WarmupChunks
		row.WarmHits = rw.WarmHits
		row.WarmMisses = rw.WarmMisses
		row.WarmTotal = rw.Total
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintOffload renders the comparison table.
func PrintOffload(w io.Writer, rows []OffloadRow) {
	fmt.Fprintf(w, "%-8s %14s %14s %9s %12s %12s %11s %9s\n",
		"app", "cold trig-exec", "warm trig-exec", "speedup", "cold trig B", "warm trig B", "warmup B", "hit/miss")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %14v %14v %8.1fx %12d %12d %11d %5d/%d\n",
			r.App, r.ColdTTE.Round(10*time.Microsecond), r.WarmTTE.Round(10*time.Microsecond),
			r.Speedup(), r.ColdTriggerBytes, r.WarmTriggerBytes, r.WarmupBytes, r.WarmHits, r.WarmMisses)
	}
}

// OffloadEntry is one app in the machine-readable trajectory.
type OffloadEntry struct {
	App                 string  `json:"app"`
	ColdTriggerToExecNs int64   `json:"cold_trigger_to_exec_ns"`
	WarmTriggerToExecNs int64   `json:"warm_trigger_to_exec_ns"`
	Speedup             float64 `json:"speedup"`
	ColdTriggerBytes    int     `json:"cold_trigger_sync_bytes"`
	WarmTriggerBytes    int     `json:"warm_trigger_sync_bytes"`
	WarmupBytes         int     `json:"warmup_bytes"`
	WarmupChunks        int     `json:"warmup_chunks"`
	WarmHits            int     `json:"warm_hits"`
	WarmMisses          int     `json:"warm_misses"`
	ColdTotalNs         int64   `json:"cold_total_ns"`
	WarmTotalNs         int64   `json:"warm_total_ns"`
}

// OffloadRun is one invocation of the emitter.
type OffloadRun struct {
	Label     string         `json:"label"`
	Time      string         `json:"time"`
	GoVersion string         `json:"go_version"`
	Profile   string         `json:"profile"`
	Seed      int64          `json:"seed"`
	Entries   []OffloadEntry `json:"entries"`
}

// OffloadFile is the on-disk shape of BENCH_offload.json: a run
// trajectory, oldest first.
type OffloadFile struct {
	Runs []OffloadRun `json:"runs"`
}

// MeasureOffload runs the comparison and packages it for AppendOffload.
func MeasureOffload(label string, profile netsim.Profile, seed int64) (OffloadRun, error) {
	rows, err := Offload(profile, seed)
	if err != nil {
		return OffloadRun{}, err
	}
	return PackOffload(label, profile, seed, rows), nil
}

// PackOffload wraps already-measured rows as an appendable run, so callers
// that printed the rows need not measure twice.
func PackOffload(label string, profile netsim.Profile, seed int64, rows []OffloadRow) OffloadRun {
	run := OffloadRun{
		Label:     label,
		Time:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Profile:   profile.Name,
		Seed:      seed,
	}
	for _, r := range rows {
		run.Entries = append(run.Entries, OffloadEntry{
			App:                 r.App,
			ColdTriggerToExecNs: r.ColdTTE.Nanoseconds(),
			WarmTriggerToExecNs: r.WarmTTE.Nanoseconds(),
			Speedup:             r.Speedup(),
			ColdTriggerBytes:    r.ColdTriggerBytes,
			WarmTriggerBytes:    r.WarmTriggerBytes,
			WarmupBytes:         r.WarmupBytes,
			WarmupChunks:        r.WarmupChunks,
			WarmHits:            r.WarmHits,
			WarmMisses:          r.WarmMisses,
			ColdTotalNs:         r.ColdTotal.Nanoseconds(),
			WarmTotalNs:         r.WarmTotal.Nanoseconds(),
		})
	}
	return run
}

// AppendOffload appends run to the JSON trajectory at path, creating the
// file on first use.
func AppendOffload(path string, run OffloadRun) error {
	var file OffloadFile
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &file); err != nil {
			return fmt.Errorf("bench: %s exists but is not an offload trajectory: %v", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	file.Runs = append(file.Runs, run)
	data, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
