package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"tinman/internal/netsim"
	"tinman/internal/taint"
)

func TestKernelsComputeCorrectResults(t *testing.T) {
	// Fixed expectations keep the kernels honest across policies: every
	// configuration must compute the same answers.
	type want struct {
		kernel string
		result int64
	}
	machineOff, err := NewCaffeineVM(taint.Off)
	if err != nil {
		t.Fatal(err)
	}
	results := make(map[string]int64)
	for _, k := range Kernels {
		r, err := RunKernel(machineOff, k)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		results[k.Name] = r
	}
	// Sieve: number of primes below 16384 is 1900 (minus 0/1 handling:
	// count of primes in [2,16384) = 1900).
	if results["Sieve"] != 1900 {
		t.Fatalf("sieve counted %d primes below 16384, want 1900", results["Sieve"])
	}
	// All policies agree on every kernel.
	for _, pol := range []taint.Policy{taint.Full, taint.Asymmetric} {
		machine, err := NewCaffeineVM(pol)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range Kernels {
			r, err := RunKernel(machine, k)
			if err != nil {
				t.Fatalf("%s under %s: %v", k.Name, pol.Name(), err)
			}
			if r != results[k.Name] {
				t.Fatalf("%s under %s = %d, want %d (tainting must not change results)",
					k.Name, pol.Name(), r, results[k.Name])
			}
		}
	}
}

func TestCaffeinemarkShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	rows, err := Caffeinemark(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Kernels) {
		t.Fatalf("rows = %d", len(rows))
	}
	full, asym := AverageOverheads(rows)
	// The paper's qualitative claims: full tainting costs something on
	// average, and asymmetric costs less than full. Per-kernel numbers are
	// too noisy on shared CI hosts for tight single-kernel bounds.
	if full <= 0 {
		t.Errorf("full tainting average overhead %.1f%%, want positive", 100*full)
	}
	if asym >= full {
		t.Errorf("asymmetric overhead %.1f%% should be below full %.1f%%", 100*asym, 100*full)
	}
	// String is hit hard by full tainting (§6.1); asymmetric also pays
	// there, but allow generous noise headroom.
	for _, r := range rows {
		if r.Kernel == "String" {
			if r.Overhead(taint.Full) < 0.03 {
				t.Errorf("String full-tainting overhead %.1f%%, want noticeable", 100*r.Overhead(taint.Full))
			}
			if r.Overhead(taint.Asymmetric) < -0.10 {
				t.Errorf("String asymmetric overhead %.1f%%, implausibly negative", 100*r.Overhead(taint.Asymmetric))
			}
		}
	}
	var buf bytes.Buffer
	PrintFig13(&buf, rows)
	if !strings.Contains(buf.String(), "Figure 13") {
		t.Fatal("report did not render")
	}
}

func TestLoginLatencyShape(t *testing.T) {
	rows, err := LoginLatency(netsim.WiFi, 21)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.TinMan <= r.Baseline {
			t.Errorf("%s: tinman %v <= baseline %v", r.App, r.TinMan, r.Baseline)
		}
		if r.Overhead() > 2.5 {
			t.Errorf("%s: overhead %.2fx out of the paper's regime", r.App, r.Overhead())
		}
		if r.DSM <= 0 || r.SSLTCP <= 0 {
			t.Errorf("%s: missing breakdown %v/%v", r.App, r.DSM, r.SSLTCP)
		}
	}
	base, tinman, dsm, ssl := AverageLogin(rows)
	// Paper: 4.0s -> 5.95s, DSM 0.8s, SSL/TCP 1.2s. Accept the band.
	if base < 2*time.Second || base > 6*time.Second {
		t.Errorf("baseline average %v outside [2s,6s]", base)
	}
	if tinman-base < 1*time.Second || tinman-base > 3500*time.Millisecond {
		t.Errorf("tinman delta %v outside [1s,3.5s]", tinman-base)
	}
	if dsm < 300*time.Millisecond || dsm > 1500*time.Millisecond {
		t.Errorf("dsm average %v outside [0.3s,1.5s]", dsm)
	}
	if ssl < 500*time.Millisecond || ssl > 2*time.Second {
		t.Errorf("ssl/tcp average %v outside [0.5s,2s]", ssl)
	}
	var buf bytes.Buffer
	PrintLogin(&buf, "Figure 14", rows)
	if !strings.Contains(buf.String(), "paypal") {
		t.Fatal("report did not render")
	}
}

func TestThreeGLoginSlower(t *testing.T) {
	wifi, err := LoginLatency(netsim.WiFi, 22)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := LoginLatency(netsim.ThreeG, 22)
	if err != nil {
		t.Fatal(err)
	}
	_, wTin, _, _ := AverageLogin(wifi)
	bt, tTin, tDSM, _ := AverageLogin(tg)
	if tTin <= wTin {
		t.Errorf("3G tinman %v should exceed Wi-Fi %v", tTin, wTin)
	}
	if bt <= 0 || tDSM <= 0 {
		t.Error("3G rows incomplete")
	}
}

func TestTable3Shape(t *testing.T) {
	rows, err := Table3(23)
	if err != nil {
		t.Fatal(err)
	}
	byApp := map[string]Table3Row{}
	for _, r := range rows {
		byApp[r.App] = r
	}
	// Paper's headline claims: <5% of code offloaded, <=4 syncs (we allow
	// the lock case one extra), init in the hundreds of KB, dirty a few to
	// tens of KB (scratch strings are distinct heap objects; the VM interns
	// literals, so only genuinely new data lands in the dirty set).
	for app, r := range byApp {
		if r.OffFraction <= 0 || r.OffFraction > 0.05 {
			t.Errorf("%s: offloaded fraction %.3f outside (0,0.05]", app, r.OffFraction)
		}
		if r.SyncTimes < 2 || r.SyncTimes > 5 {
			t.Errorf("%s: %d syncs", app, r.SyncTimes)
		}
		if r.InitKB < 400 || r.InitKB > 900 {
			t.Errorf("%s: init %.1fKB outside [400,900]", app, r.InitKB)
		}
		if r.DirtyKB < 2 || r.DirtyKB > 40 {
			t.Errorf("%s: dirty %.1fKB outside [2,40]", app, r.DirtyKB)
		}
	}
	// paypal offloads the most code; its dirty volume is the largest.
	if byApp["paypal"].OffCalls < byApp["ebay"].OffCalls {
		t.Error("paypal should offload the most invocations")
	}
	var buf bytes.Buffer
	PrintTable3(&buf, rows)
	if !strings.Contains(buf.String(), "Table 3") {
		t.Fatal("report did not render")
	}
}

func TestLoginStressBattery(t *testing.T) {
	// A shortened Fig 16: 6 minutes of repeated logins.
	curves, err := LoginStress(6*time.Minute, 10*time.Second, 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 2 {
		t.Fatalf("curves = %d", len(curves))
	}
	android, tinman := curves[0], curves[1]
	if android.Label != "android" || tinman.Label != "tinman" {
		t.Fatalf("labels = %s/%s", android.Label, tinman.Label)
	}
	if android.Final() >= 100 || tinman.Final() >= 100 {
		t.Fatal("no battery drain recorded")
	}
	// TinMan drains more, but only slightly (paper: 93% vs 91% after 30min).
	if tinman.Final() >= android.Final() {
		t.Errorf("tinman final %.2f%% should be below android %.2f%%", tinman.Final(), android.Final())
	}
	if android.Final()-tinman.Final() > 5 {
		t.Errorf("tinman extra drain %.2f%% too large", android.Final()-tinman.Final())
	}
	// Curves are monotonically non-increasing.
	for _, c := range curves {
		for i := 1; i < len(c.Samples); i++ {
			if c.Samples[i].Percent > c.Samples[i-1].Percent+1e-9 {
				t.Fatalf("%s: battery went up at sample %d", c.Label, i)
			}
		}
	}
	var buf bytes.Buffer
	PrintBattery(&buf, "Figure 16", curves)
	if !strings.Contains(buf.String(), "tinman") {
		t.Fatal("report did not render")
	}
}

func TestTaintingBattery(t *testing.T) {
	// A shortened Fig 17: 3 phases of 2 minutes.
	curves, err := TaintingBattery(2*time.Minute, 10*time.Second, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 2 {
		t.Fatalf("curves = %d", len(curves))
	}
	android, tainted := curves[0], curves[1]
	if android.Final() >= 100 {
		t.Fatal("no drain")
	}
	// The tainting-only difference is small (the paper's curves nearly
	// coincide): within 2 percentage points over the run.
	diff := android.Final() - tainted.Final()
	if diff < -0.5 || diff > 2 {
		t.Errorf("tainting-only drain difference %.2f%% out of band", diff)
	}
}

func TestSeparatorAndSeconds(t *testing.T) {
	var buf bytes.Buffer
	Separator(&buf, "Title")
	if !strings.Contains(buf.String(), "=====") {
		t.Fatal("separator missing")
	}
	if seconds(1500*time.Millisecond) != "1.50s" {
		t.Fatalf("seconds = %q", seconds(1500*time.Millisecond))
	}
}
