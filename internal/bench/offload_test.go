package bench

import (
	"strings"
	"testing"

	"tinman/internal/netsim"
)

// TestOffloadShape pins the claim the warm-up pipeline makes: on every
// login app the warm path resumes the offloaded thread faster than the
// cold path, ships only a small dirty delta at the trigger, and never
// falls back (in a fault-free world the speculation always lands).
func TestOffloadShape(t *testing.T) {
	rows, err := Offload(netsim.WiFi, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("expected 4 apps, got %d", len(rows))
	}
	for _, r := range rows {
		if r.WarmTTE <= 0 || r.ColdTTE <= 0 {
			t.Fatalf("%s: missing trigger-to-exec latencies: %+v", r.App, r)
		}
		if r.WarmTTE >= r.ColdTTE {
			t.Fatalf("%s: warm trigger-to-exec %v not faster than cold %v", r.App, r.WarmTTE, r.ColdTTE)
		}
		if r.Speedup() < 2 {
			t.Fatalf("%s: speedup %.2fx under 2x — speculation bought almost nothing", r.App, r.Speedup())
		}
		if r.WarmHits != 1 || r.WarmMisses != 0 {
			t.Fatalf("%s: warm hit/miss = %d/%d, want 1/0", r.App, r.WarmHits, r.WarmMisses)
		}
		if r.WarmupBytes == 0 || r.WarmupChunks == 0 {
			t.Fatalf("%s: no background warm-up stream recorded: %+v", r.App, r)
		}
		// The trigger-time delta must be a small fraction of what the cold
		// path ships at the trigger ("init-bytes-at-trigger ≈ dirty bytes").
		if r.WarmTriggerBytes == 0 || r.WarmTriggerBytes > r.ColdTriggerBytes/10 {
			t.Fatalf("%s: warm trigger sync %dB not a small delta of the cold %dB snapshot",
				r.App, r.WarmTriggerBytes, r.ColdTriggerBytes)
		}
		// The warm stream carries what the cold trigger would have: same
		// order of magnitude, since both serialize the framework heap once.
		if r.WarmupBytes < r.ColdTriggerBytes/2 {
			t.Fatalf("%s: warm-up stream %dB implausibly small next to the cold %dB snapshot",
				r.App, r.WarmupBytes, r.ColdTriggerBytes)
		}
	}
}

// TestOffloadJSONRoundTrip checks the emitter produces entries that survive
// the append/decode cycle AppendOffload's readers depend on.
func TestOffloadJSONRoundTrip(t *testing.T) {
	run, err := MeasureOffload("test", netsim.WiFi, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Entries) != 4 || run.Profile != "wifi" {
		t.Fatalf("run = %+v", run)
	}
	for _, e := range run.Entries {
		if e.Speedup <= 1 || e.WarmTriggerToExecNs <= 0 {
			t.Fatalf("entry %+v", e)
		}
	}
	path := t.TempDir() + "/BENCH_offload.json"
	if err := AppendOffload(path, run); err != nil {
		t.Fatal(err)
	}
	if err := AppendOffload(path, run); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	rows, err := Offload(netsim.WiFi, 42)
	if err != nil {
		t.Fatal(err)
	}
	PrintOffload(&sb, rows)
	for _, app := range []string{"paypal", "ebay", "github", "askfm"} {
		if !strings.Contains(sb.String(), app) {
			t.Fatalf("printed table missing %s:\n%s", app, sb.String())
		}
	}
}

// BenchmarkOffload keeps the warm-vs-cold comparison inside the bench-smoke
// gate (one iteration via `make bench-smoke`); real runs go through `make
// bench-offload`.
func BenchmarkOffload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Offload(netsim.WiFi, 42); err != nil {
			b.Fatal(err)
		}
	}
}
