package bench

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"tinman/internal/apps"
	"tinman/internal/taint"
	"tinman/internal/vm"
	"tinman/internal/vm/asm"
)

// The differential harness pins the linked interpreter (inline caches,
// interned literals, pooled frames) against the reference interpreter
// (Config.SlowPath: every symbol resolved through the original map lookups
// on every instruction). For every workload and every policy the two must
// agree on results, shadow tags, propagation counters, instruction and call
// counts, and the exact sequence of offload-trigger points. Heap object
// identity is NOT compared: literal interning legitimately changes how many
// untainted string objects exist, which is unobservable to programs (the
// ISA has no reference equality on strings).

// diffOutcome is everything about a run that the optimization must preserve.
type diffOutcome struct {
	stop     vm.StopReason
	err      string
	result   vm.Value
	instrs   uint64
	calls    uint64
	counters taint.Counters
	// triggers is the ordered (tag, event) list of offload-trigger points.
	triggers []string
	// tainted is the sorted multiset of tainted-object descriptors.
	tainted []string
}

func (o diffOutcome) summary() string {
	return fmt.Sprintf("stop=%v err=%q result={kind=%d int=%d tag=%v} instrs=%d calls=%d counters=%v triggers=%v tainted=%v",
		o.stop, o.err, o.result.Kind, o.result.Int, o.result.Tag, o.instrs, o.calls, o.counters, o.triggers, o.tainted)
}

func (o diffOutcome) equal(p diffOutcome) bool { return o.summary() == p.summary() }

// taintedObjects renders every object carrying any taint as a descriptor
// that ignores heap IDs (allocation order differs under interning).
func taintedObjects(h *vm.Heap) []string {
	var out []string
	for _, o := range h.Objects() {
		dirty := o.Tag != taint.None
		for i := range o.FieldTags {
			if o.FieldTags[i] != taint.None {
				dirty = true
			}
		}
		for i := range o.ElemTags {
			if o.ElemTags[i] != taint.None {
				dirty = true
			}
		}
		if !dirty {
			continue
		}
		var b strings.Builder
		fmt.Fprintf(&b, "%s tag=%v", o.Class.Name, o.Tag)
		switch {
		case o.IsStr:
			fmt.Fprintf(&b, " str=%q", o.Str)
		case o.IsArr:
			fmt.Fprintf(&b, " elems=%d", len(o.Elems))
			for i, t := range o.ElemTags {
				if t != taint.None {
					fmt.Fprintf(&b, " e%d=%v", i, t)
				}
			}
		default:
			for i, t := range o.FieldTags {
				if t != taint.None {
					fmt.Fprintf(&b, " f%d(%s)=%v", i, o.Class.Fields[i], t)
				}
			}
		}
		out = append(out, b.String())
	}
	sort.Strings(out)
	return out
}

// diffRun executes main(args) to completion on a fresh VM and captures the
// outcome. migrate controls the OnTaintedAccess verdict: false records the
// trigger and continues (pure tracking), true stops at the first trigger
// the way the device-side offload engine does. analyze enables the static
// taint pre-analysis fast path (vm/taintflow.go).
func diffRun(t *testing.T, prog *vm.Program, policy taint.Policy, slowPath, analyze, migrate bool,
	setup func(*vm.VM) (*vm.Thread, error)) diffOutcome {
	t.Helper()
	machine := vm.New(vm.Config{
		Program:      prog,
		Heap:         vm.NewHeap(1, 2),
		Policy:       policy,
		CollectStats: true,
		SlowPath:     slowPath,
		NoFastPath:   !analyze,
	})
	var out diffOutcome
	machine.Hooks.OnTaintedAccess = func(tag taint.Tag, ev taint.Event) bool {
		out.triggers = append(out.triggers, fmt.Sprintf("%v/%v", tag, ev))
		return migrate
	}
	th, err := setup(machine)
	if err != nil {
		t.Fatalf("setup: %v", err)
	}
	stop, err := th.Run()
	out.stop = stop
	if err != nil {
		out.err = err.Error()
	}
	if stop == vm.StopMigrateTaint {
		// The migrate stop contract: the top frame's PC points at the
		// triggering instruction so the peer re-executes it. Fold the
		// resume point into the outcome so both interpreters must agree.
		top := th.Top()
		out.err += fmt.Sprintf("[stopped at %s@%d]", top.Method.FullName(), top.PC)
	}
	out.result = th.Result
	out.instrs = machine.Instrs
	out.calls = machine.Calls
	out.counters = machine.Counters
	out.tainted = taintedObjects(machine.Heap)
	return out
}

// diffCompare runs a setup under every Fig 13 policy in all three
// interpreter configurations — the analyzed interpreter (pre-analysis fast
// path on), the linked interpreter (fully instrumented), and the reference
// interpreter (SlowPath) — and fails on the first divergence. The
// analyzed-vs-linked comparison is the partial-instrumentation soundness
// proof: running provably taint-free regions uninstrumented must leave
// results, tags, counters, instruction counts and migration stops
// bit-identical.
func diffCompare(t *testing.T, name string, prog *vm.Program, migrate bool,
	setup func(*vm.VM) (*vm.Thread, error)) {
	t.Helper()
	for _, pol := range Fig13Policies {
		analyzed := diffRun(t, prog, pol, false, true, migrate, setup)
		fast := diffRun(t, prog, pol, false, false, migrate, setup)
		slow := diffRun(t, prog, pol, true, false, migrate, setup)
		if !analyzed.equal(fast) {
			t.Errorf("%s under %s diverges:\n  analyzed: %s\n  linked:   %s",
				name, pol.Name(), analyzed.summary(), fast.summary())
		}
		if !fast.equal(slow) {
			t.Errorf("%s under %s diverges:\n  linked: %s\n  slow:   %s",
				name, pol.Name(), fast.summary(), slow.summary())
		}
	}
}

// TestDifferentialKernels runs every Caffeinemark kernel — with clean and
// with tainted arguments — through both interpreters under all policies.
func TestDifferentialKernels(t *testing.T) {
	prog, err := asm.Assemble("caffeinemark", caffeineSource)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range Kernels {
		k := k
		// Kernels are heavy at benchmark size; differential runs shrink the
		// work parameter — equivalence is per instruction, not per volume.
		arg := k.Arg / 64
		t.Run(k.Name, func(t *testing.T) {
			diffCompare(t, k.Name, prog, false, func(machine *vm.VM) (*vm.Thread, error) {
				return machine.NewThread(machine.Program.Method("Caffeine", k.Method), vm.IntVal(arg))
			})
		})
		t.Run(k.Name+"/tainted-arg", func(t *testing.T) {
			diffCompare(t, k.Name, prog, false, func(machine *vm.VM) (*vm.Thread, error) {
				a := vm.IntVal(arg)
				a.Tag = taint.Bit(3)
				return machine.NewThread(machine.Program.Method("Caffeine", k.Method), a)
			})
		})
	}
}

// appThread prepares a login(account, passwd, host) thread with a tainted
// password, the way the framework materializes a cor placeholder.
func appThread(spec apps.Spec) func(*vm.VM) (*vm.Thread, error) {
	return func(machine *vm.VM) (*vm.Thread, error) {
		machine.RegisterNative(&vm.NativeDef{
			Name:        "https_request",
			Offloadable: true,
			Fn: func(th *vm.Thread, args []vm.Value) (vm.Value, error) {
				return vm.RefVal(th.VM.NewString("HTTP/1.1 200 OK\r\n\r\nwelcome")), nil
			},
		})
		account := vm.RefVal(machine.NewString(spec.Account))
		passwd := vm.RefVal(machine.NewTaintedString(spec.Password, taint.Bit(1)))
		passwd.Tag = taint.Bit(1)
		host := vm.RefVal(machine.NewString(spec.Domain))
		return machine.NewThread(machine.Program.Method(spec.ClassName, "login"), account, passwd, host)
	}
}

// TestDifferentialApps runs every sample login app through both
// interpreters: once tracking-only (full trigger sequence) and once in
// migrate mode (stop at the first trigger, compare the resume point).
func TestDifferentialApps(t *testing.T) {
	for _, spec := range apps.LoginApps {
		spec := spec
		prog, err := asm.Assemble(spec.Name, spec.Source())
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		t.Run(spec.Name, func(t *testing.T) {
			diffCompare(t, spec.Name, prog, false, appThread(spec))
		})
		t.Run(spec.Name+"/migrate", func(t *testing.T) {
			diffCompare(t, spec.Name, prog, true, appThread(spec))
		})
	}
}

// TestDifferentialRepeatedRuns pins a second property of the caches: a
// warmed program (caches populated by a prior run) must behave identically
// to a cold one, including when the warming VM was a different VM instance
// (the per-VM caches must miss cleanly, not leak the other VM's objects).
func TestDifferentialRepeatedRuns(t *testing.T) {
	prog, err := asm.Assemble("caffeinemark", caffeineSource)
	if err != nil {
		t.Fatal(err)
	}
	k := Kernels[5] // String: exercises conststr interning hardest
	run := func() diffOutcome {
		return diffRun(t, prog, taint.Full, false, true, false, func(machine *vm.VM) (*vm.Thread, error) {
			return machine.NewThread(machine.Program.Method("Caffeine", k.Method), vm.IntVal(k.Arg/64))
		})
	}
	first := run()
	for i := 0; i < 3; i++ {
		again := run()
		if !first.equal(again) {
			t.Fatalf("warmed run %d diverges:\n  first: %s\n  again: %s", i, first.summary(), again.summary())
		}
	}
}
