package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAppendVMBenchBuildsTrajectory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_vm.json")
	mk := func(label string, ns float64) VMBenchRun {
		return VMBenchRun{
			Label: label, Time: "2026-08-05T00:00:00Z", GoVersion: "go-test", Rounds: 1,
			Entries:      []VMBenchEntry{{Kernel: "Sieve", Policy: "off", NsPerOp: ns, AllocsPerOp: 7, Score: 1}},
			GeomeanOffNs: ns,
		}
	}
	if err := AppendVMBench(path, mk("before", 100)); err != nil {
		t.Fatal(err)
	}
	if err := AppendVMBench(path, mk("after", 50)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var file VMBenchFile
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatalf("trajectory is not valid JSON: %v", err)
	}
	if len(file.Runs) != 2 || file.Runs[0].Label != "before" || file.Runs[1].Label != "after" {
		t.Fatalf("trajectory = %+v", file.Runs)
	}
	var buf bytes.Buffer
	PrintVMBenchRun(&buf, file.Runs[1])
	if !strings.Contains(buf.String(), "Sieve") || !strings.Contains(buf.String(), "geomean") {
		t.Fatalf("render missing fields:\n%s", buf.String())
	}
	// A corrupt file must refuse to append rather than silently overwrite.
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AppendVMBench(path, mk("x", 1)); err == nil {
		t.Fatal("appended over a corrupt trajectory")
	}
}
