package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"time"

	"tinman/internal/taint"
)

// This file is the machine-readable side of Fig 13: `tinman-bench -json`
// (and `make bench-json`) append a run to BENCH_vm.json so interpreter
// performance can be tracked across commits. The schema is deliberately
// flat — one entry per kernel×policy with ns/op and allocs/op — so any
// plotting script can consume it without knowing the harness.

// VMBenchEntry is one kernel under one interpreter configuration.
type VMBenchEntry struct {
	Kernel string `json:"kernel"`
	// Policy is "off", "full" or "asymmetric"; the reference-interpreter
	// baseline (no linking, no inline caches) is recorded as
	// "off-reference".
	Policy      string  `json:"policy"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Score is the Caffeinemark-style work-units-per-second figure.
	Score float64 `json:"score"`
	// Analysis records whether the static taint pre-analysis fast path
	// (vm/taintflow.go) was enabled for this entry: "on" or "off". The
	// reference-interpreter baseline is always "off".
	Analysis string `json:"analysis"`
}

// VMBenchRun is one invocation of the emitter.
type VMBenchRun struct {
	Label     string         `json:"label"`
	Time      string         `json:"time"`
	GoVersion string         `json:"go_version"`
	Rounds    int            `json:"rounds"`
	Entries   []VMBenchEntry `json:"entries"`
	// GeomeanOffNs summarizes the untainted kernels: the geometric mean of
	// their ns/op (the number the linking optimization is gated on).
	GeomeanOffNs float64 `json:"geomean_off_ns"`
}

// VMBenchFile is the on-disk shape: a run trajectory, oldest first.
type VMBenchFile struct {
	Runs []VMBenchRun `json:"runs"`
}

// measureKernel times one kernel on one VM configuration: best wall time of
// `rounds` runs, and the allocation count of a single post-warm-up run.
func measureKernel(k Kernel, policy taint.Policy, reference, analyze bool, rounds int) (VMBenchEntry, error) {
	name := policy.Name()
	if reference {
		name += "-reference"
		analyze = false // the reference interpreter has no fast path
	}
	mode := "off"
	if analyze {
		mode = "on"
	}
	best := time.Duration(math.MaxInt64)
	var allocs uint64
	for r := 0; r < rounds; r++ {
		machine, err := newCaffeineVM(policy, reference, analyze)
		if err != nil {
			return VMBenchEntry{}, err
		}
		warm := k
		warm.Arg = k.Arg / 16
		if _, err := RunKernel(machine, warm); err != nil {
			return VMBenchEntry{}, err
		}
		machine.Heap.ClearDirty()
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		if _, err := RunKernel(machine, k); err != nil {
			return VMBenchEntry{}, err
		}
		d := time.Since(start)
		runtime.ReadMemStats(&after)
		if d < best {
			best = d
			allocs = after.Mallocs - before.Mallocs
		}
	}
	return VMBenchEntry{
		Kernel:      k.Name,
		Policy:      name,
		NsPerOp:     float64(best.Nanoseconds()),
		AllocsPerOp: float64(allocs),
		Score:       float64(k.Arg) / best.Seconds(),
		Analysis:    mode,
	}, nil
}

// MeasureVMBench runs the full kernel grid: every kernel under the three
// Fig 13 policies on the linked interpreter — with the static taint
// pre-analysis on or off per analyze — plus the untainted reference
// interpreter as the linking baseline.
func MeasureVMBench(label string, rounds int, analyze bool) (VMBenchRun, error) {
	if rounds <= 0 {
		rounds = 5
	}
	run := VMBenchRun{
		Label:     label,
		Time:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Rounds:    rounds,
	}
	logOff := 0.0
	for _, k := range Kernels {
		for _, pol := range Fig13Policies {
			e, err := measureKernel(k, pol, false, analyze, rounds)
			if err != nil {
				return run, err
			}
			run.Entries = append(run.Entries, e)
			if pol.Name() == "off" {
				logOff += math.Log(e.NsPerOp)
			}
		}
		ref, err := measureKernel(k, taint.Off, true, false, rounds)
		if err != nil {
			return run, err
		}
		run.Entries = append(run.Entries, ref)
	}
	run.GeomeanOffNs = math.Exp(logOff / float64(len(Kernels)))
	return run, nil
}

// AppendVMBench appends run to the JSON trajectory at path, creating the
// file on first use.
func AppendVMBench(path string, run VMBenchRun) error {
	var file VMBenchFile
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &file); err != nil {
			return fmt.Errorf("bench: %s exists but is not a bench trajectory: %v", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	file.Runs = append(file.Runs, run)
	data, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// PrintVMBenchRun renders a run the way `go test -bench` would, for the
// operator watching the emitter.
func PrintVMBenchRun(w io.Writer, run VMBenchRun) {
	fmt.Fprintf(w, "vm bench %q (%s, %s, best of %d):\n", run.Label, run.Time, run.GoVersion, run.Rounds)
	for _, e := range run.Entries {
		fmt.Fprintf(w, "  %-8s %-16s %12.0f ns/op %10.0f allocs/op %14.0f score\n",
			e.Kernel, e.Policy, e.NsPerOp, e.AllocsPerOp, e.Score)
	}
	fmt.Fprintf(w, "  geomean(off) %.0f ns/op\n", run.GeomeanOffNs)
}
