package bench

import (
	"fmt"
	"io"
	"time"

	"tinman/internal/apps"
	"tinman/internal/netsim"
	"tinman/internal/taint"
)

// AblationRow is one design-choice comparison.
type AblationRow struct {
	Name     string
	Variant  string
	Metric   string
	Value    float64
	Baseline float64
}

// Ablations runs the design-choice experiments DESIGN.md §5 calls out:
//
//  1. client policy: asymmetric vs full tainting end to end (login time);
//  2. selective tainting: a non-critical app with tainting off vs on
//     (device compute time);
//  3. dirty-vs-full DSM sync is covered by the dsm ablation test/benchmark
//     (wire bytes).
func Ablations(seed int64) ([]AblationRow, error) {
	var rows []AblationRow

	// 1. Client policy: end-to-end login time, asymmetric vs full.
	loginWith := func(pol taint.Policy) (time.Duration, error) {
		env, err := apps.NewLoginEnv(apps.EnvConfig{
			Profile: netsim.WiFi, TinMan: true, Seed: seed, DevicePolicy: pol,
		})
		if err != nil {
			return 0, err
		}
		rep, err := env.Login("paypal")
		if err != nil {
			return 0, err
		}
		return rep.Total, nil
	}
	asymT, err := loginWith(taint.Asymmetric)
	if err != nil {
		return nil, err
	}
	fullT, err := loginWith(taint.Full)
	if err != nil {
		return nil, err
	}
	rows = append(rows, AblationRow{
		Name: "client-policy", Variant: "full vs asymmetric",
		Metric: "login-seconds", Value: fullT.Seconds(), Baseline: asymT.Seconds(),
	})

	// 2. Selective tainting: device compute of a cor-free workload with the
	// client tainting on vs off (the §3.5 suggestion for non-critical
	// apps). The String kernel is the mix where even asymmetric tainting
	// costs (heap→stack instrumentation), so opting a non-critical app out
	// is measurable.
	kernel := Kernel{Name: "app", Method: "string", Arg: 6000}
	off, err := kernelTime(taint.Off, kernel)
	if err != nil {
		return nil, err
	}
	asym, err := kernelTime(taint.Asymmetric, kernel)
	if err != nil {
		return nil, err
	}
	rows = append(rows, AblationRow{
		Name: "selective-tainting", Variant: "always-on vs opted-out",
		Metric: "kernel-ms", Value: float64(asym.Microseconds()) / 1000, Baseline: float64(off.Microseconds()) / 1000,
	})
	return rows, nil
}

// PrintAblations renders the rows.
func PrintAblations(w io.Writer, rows []AblationRow) {
	fmt.Fprintln(w, "Ablations (design choices from DESIGN.md §5)")
	fmt.Fprintf(w, "%-20s %-26s %-14s %10s %10s %8s\n", "ablation", "variant", "metric", "value", "baseline", "ratio")
	for _, r := range rows {
		ratio := 0.0
		if r.Baseline != 0 {
			ratio = r.Value / r.Baseline
		}
		fmt.Fprintf(w, "%-20s %-26s %-14s %10.3f %10.3f %7.2fx\n",
			r.Name, r.Variant, r.Metric, r.Value, r.Baseline, ratio)
	}
}
