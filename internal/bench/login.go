// Package bench implements the paper's evaluation harness: one experiment
// per table and figure in §6, each returning printable rows so that
// cmd/tinman-bench and the Go benchmarks reproduce the published results.
package bench

import (
	"fmt"
	"time"

	"tinman/internal/apps"
	"tinman/internal/core"
	"tinman/internal/netsim"
)

// LoginRow is one bar group of Fig 14/15: an app's login latency under the
// original system and under TinMan, with TinMan's time broken down.
type LoginRow struct {
	App      string
	Baseline time.Duration
	TinMan   time.Duration
	// Breakdown of the TinMan run.
	DSM    time.Duration // DSM-based offloading (migrations + state sync)
	SSLTCP time.Duration // SSL session injection + TCP payload replacement
	Rest   time.Duration // app execution, network, server
	Err    error
}

// Overhead returns TinMan/Baseline.
func (r LoginRow) Overhead() float64 {
	if r.Baseline == 0 {
		return 0
	}
	return float64(r.TinMan) / float64(r.Baseline)
}

// LoginLatency reproduces Fig 14 (Wi-Fi) or Fig 15 (3G): per-app login
// latency, original Android vs TinMan, after warm-up (install is excluded
// from the measurement; the first post-install login, which includes the
// initial heap sync, is what the paper times). The speculative DSM warm-up
// is disabled: these figures characterize the paper's unoptimized
// pipeline — Offload in offload.go measures the speculation's effect.
func LoginLatency(profile netsim.Profile, seed int64) ([]LoginRow, error) {
	rows := make([]LoginRow, 0, len(apps.LoginApps))
	for _, spec := range apps.LoginApps {
		row := LoginRow{App: spec.Name}

		base, err := apps.NewLoginEnv(apps.EnvConfig{Profile: profile, TinMan: false, Seed: seed})
		if err != nil {
			return nil, err
		}
		rb, err := base.Login(spec.Name)
		if err != nil {
			return nil, fmt.Errorf("bench: %s baseline: %v", spec.Name, err)
		}
		row.Baseline = rb.Total

		tin, err := apps.NewLoginEnv(apps.EnvConfig{Profile: profile, TinMan: true, Seed: seed, NoWarmup: true})
		if err != nil {
			return nil, err
		}
		rt, err := tin.Login(spec.Name)
		if err != nil {
			return nil, fmt.Errorf("bench: %s tinman: %v", spec.Name, err)
		}
		row.TinMan = rt.Total
		row.DSM = rt.DSMTime
		row.SSLTCP = rt.SSLTime
		row.Rest = rt.Total - rt.DSMTime - rt.SSLTime
		rows = append(rows, row)
	}
	return rows, nil
}

// AverageLogin summarizes rows the way the paper quotes them ("the average
// latency increases from 4.0s to 5.95s, where offloading takes 0.8s and
// SSL/TCP related overhead is 1.2s").
func AverageLogin(rows []LoginRow) (baseline, tinman, dsm, ssltcp time.Duration) {
	if len(rows) == 0 {
		return
	}
	for _, r := range rows {
		baseline += r.Baseline
		tinman += r.TinMan
		dsm += r.DSM
		ssltcp += r.SSLTCP
	}
	n := time.Duration(len(rows))
	return baseline / n, tinman / n, dsm / n, ssltcp / n
}

// Table3Row is one row of Table 3.
type Table3Row struct {
	App string
	// OffCalls is the number of method invocations executed on the trusted
	// node; OffFraction its share of all invocations.
	OffCalls    uint64
	OffFraction float64
	// SyncTimes counts DSM synchronizations during the login.
	SyncTimes int
	// InitKB and DirtyKB are the initial and subsequent sync volumes.
	InitKB  float64
	DirtyKB float64
}

// Table3 reproduces the offload-accounting table over Wi-Fi. Warm-up is
// disabled so the Init column measures the paper's trigger-time full sync.
func Table3(seed int64) ([]Table3Row, error) {
	env, err := apps.NewLoginEnv(apps.EnvConfig{Profile: netsim.WiFi, TinMan: true, Seed: seed, NoWarmup: true})
	if err != nil {
		return nil, err
	}
	rows := make([]Table3Row, 0, len(apps.LoginApps))
	for _, spec := range apps.LoginApps {
		rep, err := env.Login(spec.Name)
		if err != nil {
			return nil, fmt.Errorf("bench: table3 %s: %v", spec.Name, err)
		}
		rows = append(rows, Table3Row{
			App:         spec.Name,
			OffCalls:    rep.NodeCalls,
			OffFraction: rep.OffloadedFraction(),
			SyncTimes:   rep.Syncs,
			InitKB:      float64(rep.InitBytes) / 1024,
			DirtyKB:     float64(rep.DirtyBytes) / 1024,
		})
	}
	return rows, nil
}

// suppress unused import when core types are referenced only in docs.
var _ = core.DeviceAddr
