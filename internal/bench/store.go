package bench

// Storage-engine benchmarks behind `tinman-bench -store`: WAL append
// throughput (serial acknowledge-every-record vs group commit) against the
// sharded in-memory audit log it replaced as the durability story, plus
// recovery time as a function of log size with and without snapshots. Both
// run on the deterministic in-memory crash FS, so the numbers isolate
// engine overhead (framing, CRC, sealing, commit scheduling) from disk
// hardware. `make bench-store` appends runs to BENCH_store.json.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"tinman/internal/audit"
	"tinman/internal/cor"
	"tinman/internal/fault"
	"tinman/internal/store"
)

// StoreAppendEntry is one append-throughput measurement.
type StoreAppendEntry struct {
	// Mode is "memlog" (sharded in-memory audit log, the no-durability
	// baseline), "wal-serial" (one appender waiting out every fsync — the
	// durability floor), "wal-grouped" (concurrent appenders each waiting
	// per record, sharing group commits — acknowledged-mutation latency) or
	// "wal-pipelined" (appenders keep a window of records in flight —
	// sustained throughput with durability still guaranteed per ticket).
	Mode      string `json:"mode"`
	Appenders int    `json:"appenders"`
	// Window is how many appends each appender keeps in flight before
	// waiting out the oldest ticket; 1 means acknowledge-every-record.
	Window    int     `json:"window,omitempty"`
	Records   int     `json:"records"`
	NsPerOp   float64 `json:"ns_per_op"`
	OpsPerSec float64 `json:"ops_per_sec"`
	// FsyncsPerOp is 0 for memlog; group commit amortizes it well below 1.
	FsyncsPerOp float64 `json:"fsyncs_per_op"`
}

// StoreRecoveryEntry is one recovery-time measurement.
type StoreRecoveryEntry struct {
	Records int `json:"records"`
	// SnapshotEvery is the auto-snapshot threshold during the build phase;
	// 0 means snapshots were disabled, so recovery replays the full WAL.
	SnapshotEvery int     `json:"snapshot_every"`
	RecoverMs     float64 `json:"recover_ms"`
	// ReplayedLSN is how much of the log recovery actually replayed
	// (LastLSN - SnapLSN) — the quantity recovery time should track.
	ReplayedLSN uint64 `json:"replayed_lsn"`
}

// StoreBenchRun is one invocation of `tinman-bench -store`.
type StoreBenchRun struct {
	Label     string               `json:"label"`
	Time      string               `json:"time"`
	GoVersion string               `json:"go_version"`
	Append    []StoreAppendEntry   `json:"append"`
	Recovery  []StoreRecoveryEntry `json:"recovery"`
}

// StoreBenchFile is the on-disk shape: a run trajectory, oldest first.
type StoreBenchFile struct {
	Runs []StoreBenchRun `json:"runs"`
}

// storeBenchSealer pays the vault KDF once per process.
var storeBenchSealer = func() *cor.Sealer {
	s, err := cor.NewSealer("bench-store-pass", bytes.Repeat([]byte{0x42}, cor.SaltLen))
	if err != nil {
		panic(err)
	}
	return s
}()

// benchEntry builds a representative audit entry.
func benchEntry(i int) audit.Entry {
	out := audit.OutcomeAllowed
	if i%7 == 0 {
		out = audit.OutcomeDenied
	}
	return audit.Entry{
		Seq: uint64(i), Time: time.Unix(0, int64(i)*int64(time.Millisecond)),
		AppHash: "sha256:aabbccddeeff0011", CorID: "bank-pw", DeviceID: "dev-bench",
		Domain: "bank.example.com", Outcome: out, Detail: "offloaded access",
		DeviceSeq: uint64(i),
	}
}

// measureMemlog appends records to the sharded in-memory audit log from
// `appenders` goroutines — the pre-storage-engine baseline.
func measureMemlog(appenders, records int) StoreAppendEntry {
	l := audit.NewLog(func() time.Time { return time.Unix(0, 0) })
	per := records / appenders
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < appenders; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dev := fmt.Sprintf("dev-%d", w)
			for i := 0; i < per; i++ {
				l.AppendDevice("sha256:aabbccddeeff0011", "bank-pw", dev,
					"bank.example.com", audit.OutcomeAllowed, "offloaded access", uint64(i+1))
			}
		}(w)
	}
	wg.Wait()
	d := time.Since(start)
	n := per * appenders
	return StoreAppendEntry{
		Mode: "memlog", Appenders: appenders, Records: n,
		NsPerOp:   float64(d.Nanoseconds()) / float64(n),
		OpsPerSec: float64(n) / d.Seconds(),
	}
}

// measureWAL appends records through the store and reports the fsync
// amortization. Each appender keeps up to window tickets in flight, waiting
// out the oldest before issuing the next; window 1 is the
// acknowledge-every-record discipline the node uses per mutation, larger
// windows measure what the engine sustains when the pipeline stays full.
func measureWAL(mode string, appenders, window, records int, interval time.Duration) (StoreAppendEntry, error) {
	fs := fault.NewCrashFS(1)
	s, err := store.Open(store.Options{
		Dir: "bench", FS: fs, Sealer: storeBenchSealer, CommitInterval: interval,
	})
	if err != nil {
		return StoreAppendEntry{}, err
	}
	defer s.Close()
	per := records / appenders
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, appenders)
	start := time.Now()
	for w := 0; w < appenders; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			inflight := make([]store.Ticket, 0, window)
			for i := 0; i < per; i++ {
				if len(inflight) == window {
					if err := inflight[0].Wait(ctx); err != nil {
						errs <- err
						return
					}
					inflight = inflight[1:]
				}
				inflight = append(inflight, s.AppendAudit(benchEntry(w*per+i+1)))
			}
			for _, tk := range inflight {
				if err := tk.Wait(ctx); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	d := time.Since(start)
	select {
	case err := <-errs:
		return StoreAppendEntry{}, err
	default:
	}
	st := s.Stats()
	n := per * appenders
	return StoreAppendEntry{
		Mode: mode, Appenders: appenders, Window: window, Records: n,
		NsPerOp:     float64(d.Nanoseconds()) / float64(n),
		OpsPerSec:   float64(n) / d.Seconds(),
		FsyncsPerOp: float64(st.Syncs) / float64(n),
	}, nil
}

// measureRecovery builds a store with `records` audit records (snapshots
// per snapEvery; 0 disables them), crashes it, and times Open's recovery.
func measureRecovery(records, snapEvery int) (StoreRecoveryEntry, error) {
	fs := fault.NewCrashFS(1)
	opts := store.Options{Dir: "bench", FS: fs, Sealer: storeBenchSealer, SnapshotEvery: snapEvery}
	s, err := store.Open(opts)
	if err != nil {
		return StoreRecoveryEntry{}, err
	}
	ctx := context.Background()
	var tk store.Ticket
	for i := 1; i <= records; i++ {
		tk = s.AppendAudit(benchEntry(i))
	}
	if err := tk.Wait(ctx); err != nil {
		return StoreRecoveryEntry{}, err
	}
	fs.CrashNow()
	fs.Restart()

	start := time.Now()
	r, err := store.Open(opts)
	if err != nil {
		return StoreRecoveryEntry{}, err
	}
	d := time.Since(start)
	st := r.Stats()
	if err := r.Close(); err != nil {
		return StoreRecoveryEntry{}, err
	}
	return StoreRecoveryEntry{
		Records:       records,
		SnapshotEvery: snapEvery,
		RecoverMs:     float64(d.Nanoseconds()) / 1e6,
		ReplayedLSN:   st.LastLSN - st.SnapLSN,
	}, nil
}

// MeasureStoreBench runs the full storage-engine grid.
func MeasureStoreBench(label string) (StoreBenchRun, error) {
	run := StoreBenchRun{
		Label:     label,
		Time:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
	}
	const records = 32_768
	// Throughput rows are best-of-3: scheduler and GC noise at these run
	// lengths is easily 30%, and the best run is the one that measures the
	// engine rather than the interference.
	const rounds = 3
	memlog := measureMemlog(8, records)
	for i := 1; i < rounds; i++ {
		if e := measureMemlog(8, records); e.OpsPerSec > memlog.OpsPerSec {
			memlog = e
		}
	}
	run.Append = append(run.Append, memlog)
	serial, err := measureWAL("wal-serial", 1, 1, records/4, 0)
	if err != nil {
		return run, err
	}
	run.Append = append(run.Append, serial)
	grouped, err := measureWAL("wal-grouped", 8, 1, records, 200*time.Microsecond)
	if err != nil {
		return run, err
	}
	run.Append = append(run.Append, grouped)
	var pipelined StoreAppendEntry
	for i := 0; i < rounds; i++ {
		e, err := measureWAL("wal-pipelined", 8, 512, records, 0)
		if err != nil {
			return run, err
		}
		if i == 0 || e.OpsPerSec > pipelined.OpsPerSec {
			pipelined = e
		}
	}
	run.Append = append(run.Append, pipelined)

	for _, size := range []int{2_048, 8_192, 32_768} {
		noSnap, err := measureRecovery(size, 0)
		if err != nil {
			return run, err
		}
		run.Recovery = append(run.Recovery, noSnap)
		snap, err := measureRecovery(size, 4_096)
		if err != nil {
			return run, err
		}
		run.Recovery = append(run.Recovery, snap)
	}
	return run, nil
}

// AppendStoreBench appends run to the JSON trajectory at path, creating the
// file on first use.
func AppendStoreBench(path string, run StoreBenchRun) error {
	var file StoreBenchFile
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &file); err != nil {
			return fmt.Errorf("bench: %s exists but is not a bench trajectory: %v", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	file.Runs = append(file.Runs, run)
	data, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// PrintStoreBenchRun renders a run for the operator.
func PrintStoreBenchRun(w io.Writer, run StoreBenchRun) {
	fmt.Fprintf(w, "store bench %q (%s, %s):\n", run.Label, run.Time, run.GoVersion)
	fmt.Fprintln(w, "  append throughput:")
	for _, e := range run.Append {
		fmt.Fprintf(w, "    %-13s %2d appenders (window %3d) %8d records %10.0f ns/op %12.0f ops/s %6.3f fsyncs/op\n",
			e.Mode, e.Appenders, max(e.Window, 1), e.Records, e.NsPerOp, e.OpsPerSec, e.FsyncsPerOp)
	}
	fmt.Fprintln(w, "  recovery time:")
	for _, e := range run.Recovery {
		snap := "no snapshots"
		if e.SnapshotEvery > 0 {
			snap = fmt.Sprintf("snapshot every %d", e.SnapshotEvery)
		}
		fmt.Fprintf(w, "    %8d records  %-20s %10.2f ms  (%d LSNs replayed)\n",
			e.Records, snap, e.RecoverMs, e.ReplayedLSN)
	}
}
