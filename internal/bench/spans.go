package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"tinman/internal/apps"
	"tinman/internal/netsim"
	"tinman/internal/obs"
)

// SpanReport is the Fig 14/15 per-phase attribution of one traced login:
// the flight-recorder dump of a TinMan run, reduced to a root duration,
// descendant coverage, and per-phase self times (which partition the wall
// time the way the paper's stacked bars do).
type SpanReport struct {
	App      string
	Total    time.Duration // duration of the root login span
	Coverage float64       // fraction of Total covered by descendants
	Phases   []PhaseSelf   // self time per phase, largest first
	Records  []obs.SpanRecord
}

// PhaseSelf is one phase's share of a traced login.
type PhaseSelf struct {
	Phase obs.Phase
	Self  time.Duration
}

// TraceLogin runs one app's TinMan login with the span tracer attached and
// reduces the recorded span tree. The environment is built untraced (install
// and catalog sync are outside the measurement, as in Fig 14), then the
// tracer is attached and a login root span wraps the run.
func TraceLogin(profile netsim.Profile, seed int64, appName string) (*SpanReport, error) {
	env, err := apps.NewLoginEnv(apps.EnvConfig{Profile: profile, TinMan: true, Seed: seed})
	if err != nil {
		return nil, err
	}
	tr := env.World.Observe(0)
	root := tr.StartSpan(obs.PhaseLogin, obs.App(appName))
	_, lerr := env.Login(appName)
	root.End()
	if lerr != nil {
		return nil, fmt.Errorf("bench: traced %s login: %v", appName, lerr)
	}

	recs := tr.Records()
	var rootRec obs.SpanRecord
	for _, r := range obs.Roots(recs) {
		if r.Phase == obs.PhaseLogin {
			rootRec = r
			break
		}
	}
	if rootRec.ID == 0 {
		return nil, fmt.Errorf("bench: traced %s login recorded no root span", appName)
	}
	rep := &SpanReport{
		App:      appName,
		Total:    rootRec.Duration(),
		Coverage: obs.Coverage(recs, rootRec),
		Records:  recs,
	}
	for ph, self := range obs.SelfTimes(recs) {
		if ph == obs.PhaseLogin || self <= 0 {
			continue
		}
		rep.Phases = append(rep.Phases, PhaseSelf{Phase: ph, Self: self})
	}
	sort.Slice(rep.Phases, func(i, j int) bool {
		if rep.Phases[i].Self != rep.Phases[j].Self {
			return rep.Phases[i].Self > rep.Phases[j].Self
		}
		return rep.Phases[i].Phase < rep.Phases[j].Phase
	})
	return rep, nil
}

// TraceLogins traces every catalog app's login.
func TraceLogins(profile netsim.Profile, seed int64) ([]*SpanReport, error) {
	reps := make([]*SpanReport, 0, len(apps.LoginApps))
	for _, spec := range apps.LoginApps {
		rep, err := TraceLogin(profile, seed, spec.Name)
		if err != nil {
			return nil, err
		}
		reps = append(reps, rep)
	}
	return reps, nil
}

// PrintSpanBreakdown renders traced-login reports: one line per phase with
// its self time and share of the login, plus the coverage the ISSUE's
// acceptance bar asserts (>= 90% of wall time attributed).
func PrintSpanBreakdown(w io.Writer, reps []*SpanReport) {
	fmt.Fprintln(w, "per-phase span breakdown (self time, share of login wall time)")
	for _, rep := range reps {
		fmt.Fprintf(w, "%-8s  total %s, %.1f%% attributed to sub-spans\n",
			rep.App, seconds(rep.Total), 100*rep.Coverage)
		for _, p := range rep.Phases {
			fmt.Fprintf(w, "  %-14s %12v  %5.1f%%\n",
				p.Phase.String(), p.Self, 100*float64(p.Self)/float64(rep.Total))
		}
	}
}
