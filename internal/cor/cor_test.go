package cor

import (
	"strings"
	"testing"
	"testing/quick"

	"tinman/internal/taint"
)

func TestRegisterBasics(t *testing.T) {
	s := NewStore()
	r, err := s.Register("citi-pw", "hunter2!", "My Citi password", "citibank.com")
	if err != nil {
		t.Fatal(err)
	}
	if r.Bit != 0 || r.Tag() != taint.Bit(0) {
		t.Fatalf("bit = %d", r.Bit)
	}
	if len(r.Placeholder) != len("hunter2!") {
		t.Fatalf("placeholder length %d != plaintext length %d", len(r.Placeholder), len("hunter2!"))
	}
	if r.Placeholder == r.Plaintext {
		t.Fatal("placeholder equals plaintext")
	}
	if got := s.Get("citi-pw"); got != r {
		t.Fatal("Get failed")
	}
	if got := s.ByBit(0); got != r {
		t.Fatal("ByBit failed")
	}
}

func TestRegisterErrors(t *testing.T) {
	s := NewStore()
	if _, err := s.Register("", "x", ""); err == nil {
		t.Fatal("empty ID accepted")
	}
	if _, err := s.Register("a", "", ""); err == nil {
		t.Fatal("empty plaintext accepted")
	}
	if _, err := s.Register("a", "x", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register("a", "y", ""); err == nil {
		t.Fatal("duplicate ID accepted")
	}
}

func TestBitExhaustion(t *testing.T) {
	s := NewStore()
	for i := 0; i < 64; i++ {
		if _, err := s.Register(strings.Repeat("x", i+1), "pw", ""); err != nil {
			t.Fatalf("register %d: %v", i, err)
		}
	}
	if _, err := s.Register("overflow", "pw", ""); err == nil {
		t.Fatal("expected taint-bit exhaustion error")
	}
}

func TestByTag(t *testing.T) {
	s := NewStore()
	a, _ := s.Register("a", "pw1", "")
	b, _ := s.Register("b", "pw2", "")
	got := s.ByTag(a.Tag().Union(b.Tag()))
	if len(got) != 2 {
		t.Fatalf("ByTag returned %d records", len(got))
	}
	if got := s.ByTag(taint.None); len(got) != 0 {
		t.Fatalf("ByTag(None) returned %d", len(got))
	}
}

func TestDeriveInheritsBitAndWhitelist(t *testing.T) {
	s := NewStore()
	parent, _ := s.Register("bank-pw", "secret99", "", "bank.example.com")
	d, err := s.Derive("bank-pw", "bank-pw-hash", "deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	if d.Bit != parent.Bit {
		t.Fatal("derived cor must share the parent's taint bit")
	}
	if len(d.Whitelist) != 1 || d.Whitelist[0] != "bank.example.com" {
		t.Fatalf("whitelist = %v", d.Whitelist)
	}
	if _, err := s.Derive("nope", "x", "y"); err == nil {
		t.Fatal("derive from unknown parent accepted")
	}
	if _, err := s.Derive("bank-pw", "bank-pw-hash", "z"); err == nil {
		t.Fatal("duplicate derived ID accepted")
	}
}

func TestGenerateNew(t *testing.T) {
	s := NewStore()
	r, err := s.GenerateNew("gen", "generated", 16, "site.com")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Plaintext) != 16 || len(r.Placeholder) != 16 {
		t.Fatalf("lengths: plaintext=%d placeholder=%d", len(r.Plaintext), len(r.Placeholder))
	}
	if _, err := s.GenerateNew("bad", "", 0); err == nil {
		t.Fatal("zero-length generation accepted")
	}
	// Two generations differ (overwhelmingly likely).
	r2, _ := s.GenerateNew("gen2", "", 16)
	if r.Plaintext == r2.Plaintext {
		t.Fatal("generated passwords identical")
	}
}

func TestDeviceViewsExcludePlaintext(t *testing.T) {
	s := NewStore()
	s.Register("a", "topsecret", "desc-a")
	s.Register("b", "alsosecret", "desc-b")
	views := s.DeviceViews()
	if len(views) != 2 {
		t.Fatalf("views = %d", len(views))
	}
	for _, v := range views {
		if v.Placeholder == "" || v.ID == "" {
			t.Fatalf("incomplete view %+v", v)
		}
		if strings.Contains(v.Placeholder, "secret") {
			t.Fatal("placeholder leaks plaintext")
		}
	}
	// Views are sorted by ID.
	if views[0].ID != "a" || views[1].ID != "b" {
		t.Fatalf("views unsorted: %v", views)
	}
}

func TestListAndLen(t *testing.T) {
	s := NewStore()
	if s.Len() != 0 {
		t.Fatal("new store not empty")
	}
	s.Register("z", "1", "")
	s.Register("a", "2", "")
	l := s.List()
	if s.Len() != 2 || len(l) != 2 || l[0].ID != "a" {
		t.Fatalf("list = %v", l)
	}
}

func TestByBitOutOfRange(t *testing.T) {
	s := NewStore()
	if s.ByBit(-1) != nil || s.ByBit(64) != nil {
		t.Fatal("out-of-range bit should return nil")
	}
}

// Properties: the placeholder always matches the plaintext length, differs
// from it, and is deterministic per (id, length) — both endpoints compute
// the same dummy bytes without sharing secrets.
func TestPlaceholderProperties(t *testing.T) {
	prop := func(idSeed uint32, n uint8) bool {
		id := "cor-" + string(rune('a'+idSeed%26))
		length := int(n%64) + 1
		p1 := makePlaceholder(id, length)
		p2 := makePlaceholder(id, length)
		return len(p1) == length && p1 == p2
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceholderLongerThanMarker(t *testing.T) {
	p := makePlaceholder("x", 200)
	if len(p) != 200 {
		t.Fatalf("len = %d", len(p))
	}
	if !strings.HasPrefix(p, "TINMAN-PLACEHOLDER-") {
		t.Fatal("long placeholder should start with the marker")
	}
}
