package cor

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// saveTestVault writes a vault with a few records and returns its path.
func saveTestVault(t *testing.T, passphrase string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "vault.bin")
	s := NewStore()
	s.Register("citi-pw", "hunter2!", "citi", "citi.com")
	s.Derive("citi-pw", "citi-pw-hash", "deadbeefcafe")
	if err := s.SaveVault(path, passphrase); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestOpenVaultFileTypedErrors(t *testing.T) {
	path := saveTestVault(t, "right")

	// Wrong passphrase.
	if _, err := OpenVaultFile(path, "wrong"); !errors.Is(err, ErrVaultCorrupt) {
		t.Fatalf("wrong passphrase: %v, want ErrVaultCorrupt", err)
	}

	// Short magic: a file shorter than the magic itself.
	short := filepath.Join(t.TempDir(), "short")
	os.WriteFile(short, []byte("TINMAN"), 0o600)
	if _, err := OpenVaultFile(short, "right"); !errors.Is(err, ErrVaultCorrupt) {
		t.Fatalf("short magic: %v, want ErrVaultCorrupt", err)
	}

	// Bad magic at full header length.
	bad := filepath.Join(t.TempDir(), "bad")
	os.WriteFile(bad, bytes.Repeat([]byte("x"), 64), 0o600)
	if _, err := OpenVaultFile(bad, "right"); !errors.Is(err, ErrVaultCorrupt) {
		t.Fatalf("bad magic: %v, want ErrVaultCorrupt", err)
	}

	// Mid-record truncation: cut the ciphertext in half.
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(t.TempDir(), "trunc")
	os.WriteFile(trunc, blob[:len(blob)/2], 0o600)
	if _, err := OpenVaultFile(trunc, "right"); !errors.Is(err, ErrVaultCorrupt) {
		t.Fatalf("mid-record truncation: %v, want ErrVaultCorrupt", err)
	}

	// Truncation inside the framing header (before the ciphertext).
	hdr := filepath.Join(t.TempDir(), "hdr")
	os.WriteFile(hdr, blob[:len(vaultMagic)+4], 0o600)
	if _, err := OpenVaultFile(hdr, "right"); !errors.Is(err, ErrVaultCorrupt) {
		t.Fatalf("header truncation: %v, want ErrVaultCorrupt", err)
	}

	// A missing file is NOT ErrVaultCorrupt — "no vault yet" stays
	// distinguishable from "vault destroyed".
	_, err = OpenVaultFile(filepath.Join(t.TempDir(), "absent"), "right")
	if err == nil || errors.Is(err, ErrVaultCorrupt) {
		t.Fatalf("missing file: %v, want plain os error", err)
	}
	if !os.IsNotExist(err) {
		t.Fatalf("missing file: %v, want IsNotExist", err)
	}

	// The happy path still returns records with recomputed placeholders.
	recs, err := OpenVaultFile(path, "right")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Placeholder == "" {
		t.Fatalf("records = %+v", recs)
	}
}

func TestLoadVaultWrapsErrVaultCorrupt(t *testing.T) {
	path := saveTestVault(t, "right")
	if err := NewStore().LoadVault(path, "wrong"); !errors.Is(err, ErrVaultCorrupt) {
		t.Fatalf("LoadVault wrong passphrase: %v, want ErrVaultCorrupt", err)
	}
}

func TestSealerRoundTrip(t *testing.T) {
	salt, err := NewSealerSalt()
	if err != nil {
		t.Fatal(err)
	}
	if len(salt) != SaltLen {
		t.Fatalf("salt length %d", len(salt))
	}
	s, err := NewSealer("pass", salt)
	if err != nil {
		t.Fatal(err)
	}
	ad := []byte("role")
	blob, err := s.Seal([]byte("payload"), ad)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(blob, []byte("payload")) {
		t.Fatal("sealed blob contains plaintext")
	}
	got, err := s.Open(blob, ad)
	if err != nil || string(got) != "payload" {
		t.Fatalf("open: %q %v", got, err)
	}

	// Wrong additional data, tampering, truncation, wrong key: all
	// ErrVaultCorrupt.
	if _, err := s.Open(blob, []byte("other-role")); !errors.Is(err, ErrVaultCorrupt) {
		t.Fatalf("wrong AD: %v", err)
	}
	mut := append([]byte(nil), blob...)
	mut[len(mut)-1] ^= 1
	if _, err := s.Open(mut, ad); !errors.Is(err, ErrVaultCorrupt) {
		t.Fatalf("tampered: %v", err)
	}
	if _, err := s.Open(blob[:4], ad); !errors.Is(err, ErrVaultCorrupt) {
		t.Fatalf("truncated: %v", err)
	}
	s2, _ := NewSealer("pass2", salt)
	if _, err := s2.Open(blob, ad); !errors.Is(err, ErrVaultCorrupt) {
		t.Fatalf("wrong key: %v", err)
	}

	// Config validation.
	if _, err := NewSealer("", salt); err == nil {
		t.Fatal("empty passphrase accepted")
	}
	if _, err := NewSealer("p", nil); err == nil {
		t.Fatal("empty salt accepted")
	}
}
