package cor

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestVaultRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "vault.bin")

	s := NewStore()
	s.Register("citi-pw", "hunter2!", "citi", "citi.com")
	s.Register("visa-cc", "4111111111111111", "visa", "shop.com")
	s.Derive("citi-pw", "citi-pw-hash", "deadbeefcafe")

	if err := s.SaveVault(path, "correct horse"); err != nil {
		t.Fatal(err)
	}

	s2 := NewStore()
	if err := s2.LoadVault(path, "correct horse"); err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 3 {
		t.Fatalf("restored %d records", s2.Len())
	}
	for _, id := range []string{"citi-pw", "visa-cc", "citi-pw-hash"} {
		a, b := s.Get(id), s2.Get(id)
		if b == nil {
			t.Fatalf("%s missing after restore", id)
		}
		if a.Plaintext != b.Plaintext || a.Bit != b.Bit || a.Placeholder != b.Placeholder {
			t.Fatalf("%s diverged: %+v vs %+v", id, a, b)
		}
		if len(a.Whitelist) != len(b.Whitelist) {
			t.Fatalf("%s whitelist diverged", id)
		}
	}
	// Derived record still shares its parent's bit.
	if s2.Get("citi-pw-hash").Bit != s2.Get("citi-pw").Bit {
		t.Fatal("derived bit lost")
	}
}

func TestVaultCiphertextHidesSecrets(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "vault.bin")
	s := NewStore()
	s.Register("pw", "super-secret-password", "")
	if err := s.SaveVault(path, "key"); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(blob, []byte("super-secret-password")) {
		t.Fatal("plaintext visible in vault file")
	}
	if bytes.Contains(blob, []byte(`"id"`)) {
		t.Fatal("JSON structure visible in vault file")
	}
}

func TestVaultWrongPassphrase(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "vault.bin")
	s := NewStore()
	s.Register("pw", "secret", "")
	if err := s.SaveVault(path, "right"); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore()
	err := s2.LoadVault(path, "wrong")
	if err == nil || !strings.Contains(err.Error(), "authentication failed") {
		t.Fatalf("err = %v", err)
	}
}

func TestVaultTamperDetected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "vault.bin")
	s := NewStore()
	s.Register("pw", "secret", "")
	s.SaveVault(path, "key")
	blob, _ := os.ReadFile(path)
	blob[len(blob)-1] ^= 0x01
	os.WriteFile(path, blob, 0o600)
	if err := NewStore().LoadVault(path, "key"); err == nil {
		t.Fatal("tampered vault accepted")
	}
}

func TestVaultValidation(t *testing.T) {
	s := NewStore()
	if err := s.SaveVault(filepath.Join(t.TempDir(), "v"), ""); err == nil {
		t.Fatal("empty passphrase accepted")
	}
	// Not-a-vault file.
	path := filepath.Join(t.TempDir(), "junk")
	os.WriteFile(path, []byte("junkjunkjunk"), 0o600)
	if err := NewStore().LoadVault(path, "k"); err == nil {
		t.Fatal("junk accepted")
	}
	// Non-empty store refuses to load.
	path2 := filepath.Join(t.TempDir(), "v2")
	s2 := NewStore()
	s2.Register("a", "b", "")
	s2.SaveVault(path2, "k")
	if err := s2.LoadVault(path2, "k"); err == nil {
		t.Fatal("load into non-empty store accepted")
	}
	// Missing file errors.
	if err := NewStore().LoadVault(filepath.Join(t.TempDir(), "absent"), "k"); err == nil {
		t.Fatal("missing vault accepted")
	}
}
