package cor

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
)

// ErrVaultCorrupt is the sentinel every unreadable-vault error wraps:
// truncated or torn files, bad magic, ciphertext tampering, and wrong
// passphrases all match it under errors.Is (AES-GCM cannot distinguish a
// wrong key from a flipped bit, so neither can we).
var ErrVaultCorrupt = errors.New("cor: vault corrupt or wrong passphrase")

// Sealer encrypts and decrypts blobs under a passphrase-derived AES-256-GCM
// key. Deriving the key runs the deliberately slow KDF once; the sealer
// then seals/opens individual records cheaply — the shape the storage
// engine needs, where every cor WAL record and snapshot section is
// encrypted at rest but appends must stay on a hot path.
//
// The salt must be stored alongside the sealed data (it is not secret) and
// fed back to NewSealer to open it again. A Sealer is safe for concurrent
// use.
type Sealer struct {
	aead cipher.AEAD
}

// SaltLen is the salt size NewSealerSalt mints.
const SaltLen = vaultSaltLen

// NewSealerSalt returns a fresh random salt for a new Sealer.
func NewSealerSalt() ([]byte, error) {
	salt := make([]byte, SaltLen)
	if _, err := io.ReadFull(rand.Reader, salt); err != nil {
		return nil, err
	}
	return salt, nil
}

// NewSealer derives the sealing key from the passphrase and salt (the same
// KDF the vault file format uses).
func NewSealer(passphrase string, salt []byte) (*Sealer, error) {
	if passphrase == "" {
		return nil, fmt.Errorf("cor: sealer passphrase must not be empty")
	}
	if len(salt) == 0 {
		return nil, fmt.Errorf("cor: sealer salt must not be empty")
	}
	block, err := aes.NewCipher(deriveKey(passphrase, salt))
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	return &Sealer{aead: aead}, nil
}

// Seal encrypts plaintext, binding it to the additional data; the result is
// nonce || ciphertext.
func (s *Sealer) Seal(plaintext, additional []byte) ([]byte, error) {
	nonce := make([]byte, vaultNonceLen)
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(nonce)+len(plaintext)+s.aead.Overhead())
	out = append(out, nonce...)
	return s.aead.Seal(out, nonce, plaintext, additional), nil
}

// Open decrypts a Seal output. Truncated or tampered blobs (and wrong
// passphrases) fail with an error wrapping ErrVaultCorrupt.
func (s *Sealer) Open(blob, additional []byte) ([]byte, error) {
	if len(blob) < vaultNonceLen {
		return nil, fmt.Errorf("cor: sealed blob truncated (%d bytes): %w", len(blob), ErrVaultCorrupt)
	}
	pt, err := s.aead.Open(nil, blob[:vaultNonceLen], blob[vaultNonceLen:], additional)
	if err != nil {
		return nil, fmt.Errorf("cor: opening sealed blob: %w", ErrVaultCorrupt)
	}
	return pt, nil
}
