package cor

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// The vault is the trusted node's at-rest cor storage: all records,
// plaintexts included, sealed with AES-256-GCM under a passphrase-derived
// key. The paper assumes the node's storage is professionally administered
// (§2.3); encrypting at rest narrows even that trust.

// vaultMagic identifies vault files.
var vaultMagic = []byte("TINMANVAULT1")

const (
	vaultSaltLen  = 16
	vaultNonceLen = 12
	// kdfIterations hardens the passphrase with iterated hashing. (A
	// stdlib-only stand-in for a memory-hard KDF; swap for argon2/scrypt
	// when external dependencies are acceptable.)
	kdfIterations = 64 * 1024
)

// vaultRecord is the serialized form of one cor.
type vaultRecord struct {
	ID          string   `json:"id"`
	Plaintext   string   `json:"plaintext"`
	Description string   `json:"description"`
	Whitelist   []string `json:"whitelist,omitempty"`
	Bit         int      `json:"bit"`
}

// deriveKey stretches a passphrase into an AES-256 key.
func deriveKey(passphrase string, salt []byte) []byte {
	key := sha256.Sum256(append([]byte(passphrase), salt...))
	for i := 0; i < kdfIterations; i++ {
		key = sha256.Sum256(append(key[:], salt...))
	}
	return key[:]
}

// sealVault encrypts the serialized records.
func sealVault(plaintext []byte, passphrase string) ([]byte, error) {
	salt := make([]byte, vaultSaltLen)
	if _, err := io.ReadFull(rand.Reader, salt); err != nil {
		return nil, err
	}
	block, err := aes.NewCipher(deriveKey(passphrase, salt))
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, vaultNonceLen)
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, err
	}
	out := append([]byte(nil), vaultMagic...)
	out = append(out, salt...)
	out = append(out, nonce...)
	out = append(out, gcm.Seal(nil, nonce, plaintext, vaultMagic)...)
	return out, nil
}

// openVault decrypts a vault blob. Every failure mode — short or missing
// magic, truncated framing, ciphertext truncation or tampering, wrong
// passphrase — wraps ErrVaultCorrupt so callers branch with errors.Is.
func openVault(blob []byte, passphrase string) ([]byte, error) {
	min := len(vaultMagic) + vaultSaltLen + vaultNonceLen
	if len(blob) < min {
		return nil, fmt.Errorf("cor: vault file truncated (%d bytes, want at least %d): %w", len(blob), min, ErrVaultCorrupt)
	}
	if string(blob[:len(vaultMagic)]) != string(vaultMagic) {
		return nil, fmt.Errorf("cor: not a vault file (bad magic): %w", ErrVaultCorrupt)
	}
	blob = blob[len(vaultMagic):]
	salt, blob := blob[:vaultSaltLen], blob[vaultSaltLen:]
	nonce, ct := blob[:vaultNonceLen], blob[vaultNonceLen:]
	block, err := aes.NewCipher(deriveKey(passphrase, salt))
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	pt, err := gcm.Open(nil, nonce, ct, vaultMagic)
	if err != nil {
		return nil, fmt.Errorf("cor: vault authentication failed (wrong passphrase or corrupted file): %w", ErrVaultCorrupt)
	}
	return pt, nil
}

// OpenVaultFile reads and decrypts a vault file, returning its records in
// stored order. Unreadable files — truncated before or inside the sealed
// region, bad magic, mid-record tampering, wrong passphrase, or a JSON body
// mangled some other way — fail with an error wrapping ErrVaultCorrupt;
// a missing file surfaces the os error unwrapped so callers can still
// distinguish "no vault yet" from "vault destroyed".
func OpenVaultFile(path, passphrase string) ([]Record, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	plain, err := openVault(blob, passphrase)
	if err != nil {
		return nil, err
	}
	var recs []vaultRecord
	if err := json.Unmarshal(plain, &recs); err != nil {
		return nil, fmt.Errorf("cor: vault contents unparsable: %v: %w", err, ErrVaultCorrupt)
	}
	out := make([]Record, len(recs))
	for i, r := range recs {
		out[i] = Record{
			ID: r.ID, Plaintext: r.Plaintext,
			Placeholder: makePlaceholder(r.ID, len(r.Plaintext)),
			Description: r.Description, Whitelist: r.Whitelist, Bit: r.Bit,
		}
	}
	return out, nil
}

// SaveVault persists every record — plaintexts included — encrypted under
// the passphrase, atomically.
func (s *Store) SaveVault(path, passphrase string) error {
	if passphrase == "" {
		return fmt.Errorf("cor: vault passphrase must not be empty")
	}
	recs := s.List()
	out := make([]vaultRecord, len(recs))
	for i, r := range recs {
		out[i] = vaultRecord{
			ID: r.ID, Plaintext: r.Plaintext, Description: r.Description,
			Whitelist: r.Whitelist, Bit: r.Bit,
		}
	}
	plain, err := json.Marshal(out)
	if err != nil {
		return err
	}
	blob, err := sealVault(plain, passphrase)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o600); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadVault restores records into an empty store. Bits are reassigned in
// record order; derived records (which share a parent's bit) are re-derived
// by registering parents first.
func (s *Store) LoadVault(path, passphrase string) error {
	recs, err := OpenVaultFile(path, passphrase)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if len(s.byID) != 0 {
		s.mu.Unlock()
		return fmt.Errorf("cor: LoadVault requires an empty store (have %d records)", len(s.byID))
	}
	s.mu.Unlock()

	// Primary records (unique bits) first, in ascending bit order so
	// sequential re-registration reproduces the original bit assignment —
	// device placeholders in the field are tainted with those bits.
	seen := map[int]bool{}
	var primaries []Record
	for _, r := range recs {
		if !seen[r.Bit] {
			seen[r.Bit] = true
			primaries = append(primaries, r)
		}
	}
	sort.Slice(primaries, func(i, j int) bool { return primaries[i].Bit < primaries[j].Bit })
	for _, r := range primaries {
		if _, err := s.Register(r.ID, r.Plaintext, r.Description, r.Whitelist...); err != nil {
			return fmt.Errorf("cor: restoring %s: %v", r.ID, err)
		}
	}
	for _, r := range recs {
		if s.Get(r.ID) != nil {
			continue // already registered as a primary
		}
		parent := s.ByBit(r.Bit)
		if parent == nil {
			return fmt.Errorf("cor: restoring derived %s: no parent with bit %d", r.ID, r.Bit)
		}
		if _, err := s.Derive(parent.ID, r.ID, r.Plaintext); err != nil {
			return fmt.Errorf("cor: restoring derived %s: %v", r.ID, err)
		}
	}
	return nil
}
