// Package cor implements TinMan's Confidential Record abstraction (Table 1
// of the paper). A cor is a secret — password, bank account, credit card
// number — whose plaintext exists exclusively on the trusted node. The
// device holds only a same-sized placeholder tainted with the cor's ID.
package cor

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"tinman/internal/taint"
)

// Record is one cor with the five metadata fields of Table 1. The Plaintext
// field is only ever populated inside the trusted node's Store; Registry
// entries shared with devices never carry it.
type Record struct {
	// ID uniquely names the cor ("citibank-password").
	ID string
	// Plaintext is the secret; stored exclusively on the trusted node.
	Plaintext string
	// Placeholder is the dummy value stored on devices; it has the same
	// length as the plaintext (the paper notes the length is therefore not
	// protected, §5.1).
	Placeholder string
	// Description is shown to the user in the selection widget ("My Citi
	// password").
	Description string
	// Whitelist is the set of domains the cor may be sent to; empty means
	// the cor may never leave the trusted node (e.g. a bitcoin private key,
	// §3.4).
	Whitelist []string
	// Bit is the taint bit assigned at registration.
	Bit int
	// Class is the sensitivity tier (public / sensitive / server-only).
	Class Class
}

// Tag returns the record's taint tag.
func (r *Record) Tag() taint.Tag { return taint.Bit(r.Bit) }

// Store is the trusted node's cor database: plaintexts, placeholders and
// taint-bit assignment. It is safe for concurrent use (the standalone
// tinman-node binary serves multiple device connections).
type Store struct {
	mu      sync.RWMutex
	byID    map[string]*Record
	byBit   [64]*Record
	nextBit int

	// views caches the device-visible catalog. Registrations are rare and
	// catalog fetches constant on a loaded node, so the sorted snapshot is
	// built once per mutation and served lock-free afterwards.
	views atomic.Pointer[[]DeviceView]
}

// NewStore creates an empty cor store.
func NewStore() *Store {
	return &Store{byID: make(map[string]*Record)}
}

// Register initializes a cor in a safe environment (§2.3: a one-time
// effort). The placeholder is generated automatically with the same length
// as the plaintext. Register fails on duplicate IDs, empty plaintext, or
// taint-bit exhaustion.
func (s *Store) Register(id, plaintext, description string, whitelist ...string) (*Record, error) {
	if id == "" {
		return nil, fmt.Errorf("cor: empty ID")
	}
	if plaintext == "" {
		return nil, fmt.Errorf("cor: %s: empty plaintext", id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.byID[id]; dup {
		return nil, fmt.Errorf("cor: %s already registered", id)
	}
	if s.nextBit >= 64 {
		return nil, fmt.Errorf("cor: taint bits exhausted (max 64 cors per store)")
	}
	r := &Record{
		ID:          id,
		Plaintext:   plaintext,
		Placeholder: makePlaceholder(id, len(plaintext)),
		Description: description,
		Whitelist:   append([]string(nil), whitelist...),
		Bit:         s.nextBit,
		Class:       DefaultClass,
	}
	s.nextBit++
	s.byID[id] = r
	s.byBit[r.Bit] = r
	s.views.Store(nil)
	return r, nil
}

// GenerateNew mints a fresh random password of length n and registers it —
// the "Generate New Password" menu entry of §5.4.
func (s *Store) GenerateNew(id, description string, n int, whitelist ...string) (*Record, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cor: generated password length must be positive")
	}
	const alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789!#%+:=?@"
	buf := make([]byte, n)
	if _, err := rand.Read(buf); err != nil {
		return nil, fmt.Errorf("cor: generating password: %v", err)
	}
	for i, b := range buf {
		buf[i] = alphabet[int(b)%len(alphabet)]
	}
	return s.Register(id, string(buf), description, whitelist...)
}

// Get returns the record by ID, or nil.
func (s *Store) Get(id string) *Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.byID[id]
}

// ByBit returns the record assigned the given taint bit, or nil.
func (s *Store) ByBit(bit int) *Record {
	if bit < 0 || bit > 63 {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.byBit[bit]
}

// ByTag returns every record whose bit is set in the tag.
func (s *Store) ByTag(tag taint.Tag) []*Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*Record
	for _, b := range tag.Bits() {
		if r := s.byBit[b]; r != nil {
			out = append(out, r)
		}
	}
	return out
}

// Derive registers a derived cor: a new secret computed on the trusted node
// from an existing one (e.g. the hash of account/password in §4.1). The
// derived record inherits the parent's whitelist and taint bit — it is the
// same secret lineage, observable under the same tag.
func (s *Store) Derive(parentID, newID, plaintext string) (*Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	parent := s.byID[parentID]
	if parent == nil {
		return nil, fmt.Errorf("cor: derive: unknown parent %s", parentID)
	}
	if _, dup := s.byID[newID]; dup {
		return nil, fmt.Errorf("cor: derive: %s already registered", newID)
	}
	r := &Record{
		ID:          newID,
		Plaintext:   plaintext,
		Placeholder: makePlaceholder(newID, len(plaintext)),
		Description: "derived from " + parent.ID,
		Whitelist:   append([]string(nil), parent.Whitelist...),
		Bit:         parent.Bit,
		Class:       parent.Class,
	}
	s.byID[newID] = r
	s.views.Store(nil)
	return r, nil
}

// List returns all records sorted by ID (descriptions feed the device's
// selection widget).
func (s *Store) List() []*Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Record, 0, len(s.byID))
	for _, r := range s.byID {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of registered cors.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byID)
}

// DeviceView is the metadata a device is allowed to see: everything except
// plaintext. The device uses it to materialize tainted placeholders and to
// show the selection list.
type DeviceView struct {
	ID          string
	Placeholder string
	Description string
	Bit         int
	Class       Class
}

// DeviceViews exports the device-visible catalog. The returned slice is a
// shared snapshot — callers must treat it as read-only. It is rebuilt only
// after a registration, so steady-state catalog serving is lock-free.
func (s *Store) DeviceViews() []DeviceView {
	if p := s.views.Load(); p != nil {
		return *p
	}
	// Rebuild while holding the read lock: writers (Register/Derive) hold
	// the write lock when they invalidate, so a snapshot stored here can
	// never miss a concurrent registration.
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]DeviceView, 0, len(s.byID))
	for _, r := range s.byID {
		out = append(out, DeviceView{ID: r.ID, Placeholder: r.Placeholder, Description: r.Description, Bit: r.Bit, Class: r.Class})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	s.views.Store(&out)
	return out
}

// Placeholder derives a deterministic dummy value of length n from the cor
// ID. Deterministic generation keeps device and node placeholder values
// identical without shipping secrets: both sides can compute it. Devices use
// it directly to materialize placeholders for derived cors minted on the
// trusted node.
func Placeholder(id string, n int) string { return makePlaceholder(id, n) }

// makePlaceholder is the implementation behind Placeholder.
func makePlaceholder(id string, n int) string {
	const marker = "TINMAN-PLACEHOLDER-"
	var b []byte
	b = append(b, marker...)
	seed := []byte(id)
	for len(b) < n {
		sum := sha256.Sum256(seed)
		b = append(b, hex.EncodeToString(sum[:])...)
		seed = sum[:]
	}
	return string(b[:n])
}
