// Sensitivity classes: every cor carries a tier that scales the policy
// applied to it, modeled on REP-style data classification. The class rides
// the catalog (devices see it), the vault records (it survives restarts)
// and the policy engine (class-specific rate budgets and denial metrics).
package cor

import (
	"fmt"

	"tinman/internal/taint"
)

// Class is a cor's sensitivity tier.
type Class string

const (
	// ClassPublic marks low-value records: no class rate budget, free to
	// ship in DSM payloads (still placeholder-masked like everything else).
	ClassPublic Class = "public"
	// ClassSensitive is the default tier: ordinary cors (passwords, account
	// numbers) subject to whatever class rate budget the policy sets.
	ClassSensitive Class = "sensitive"
	// ClassServerOnly marks records that must never ship in DSM warm-up or
	// migration payloads, even masked — private keys whose very object
	// identity should stay on the trusted node. Egress via injection is
	// still governed by the whitelist (usually empty for this tier).
	ClassServerOnly Class = "server-only"
)

// DefaultClass is applied when a registration names no class.
const DefaultClass = ClassSensitive

// Classes lists every valid class, in increasing sensitivity order.
func Classes() []Class { return []Class{ClassPublic, ClassSensitive, ClassServerOnly} }

// Valid reports whether c is one of the defined tiers.
func (c Class) Valid() bool {
	switch c {
	case ClassPublic, ClassSensitive, ClassServerOnly:
		return true
	}
	return false
}

// ParseClass maps the wire/JSON form to a Class. The empty string selects
// the default tier so pre-class records and payloads keep working.
func ParseClass(s string) (Class, error) {
	if s == "" {
		return DefaultClass, nil
	}
	c := Class(s)
	if !c.Valid() {
		return "", fmt.Errorf("cor: unknown sensitivity class %q", s)
	}
	return c, nil
}

// SetClass reassigns a cor's sensitivity tier. Derived records sharing the
// parent's taint bit are reclassified together: the restricted mask is
// per-bit, so one lineage cannot be half server-only.
func (s *Store) SetClass(id string, c Class) error {
	if !c.Valid() {
		return fmt.Errorf("cor: unknown sensitivity class %q", c)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.byID[id]
	if r == nil {
		return fmt.Errorf("cor: set class: unknown cor %s", id)
	}
	for _, rec := range s.byID {
		if rec.Bit == r.Bit {
			rec.Class = c
		}
	}
	s.views.Store(nil)
	return nil
}

// Class returns the cor's sensitivity tier (the default for unknown IDs, so
// policy checks on lazily-registered cors degrade safely).
func (s *Store) Class(id string) Class {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if r := s.byID[id]; r != nil {
		return r.Class
	}
	return DefaultClass
}

// RestrictedMask returns the taint tag covering every server-only cor: the
// DSM layer withholds any object or register carrying one of these bits
// from warm-up and migration payloads.
func (s *Store) RestrictedMask() taint.Tag {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var t taint.Tag
	for _, r := range s.byID {
		if r.Class == ClassServerOnly {
			t = t.Union(taint.Bit(r.Bit))
		}
	}
	return t
}
