package fastjson

import "testing"

// The Scanner's contract is fail-fast: ok=false means "fall back to the
// full decoder", never a wrong answer. These cases pin the edges where a
// sloppy tokenizer would instead return corrupt data.

func TestScannerStrEscapes(t *testing.T) {
	cases := []struct {
		in   string
		ok   bool
		want string
	}{
		{`"plain"`, true, "plain"},
		{`""`, true, ""},
		{`"with space"`, true, "with space"},
		// Any escape must punt to the full decoder, not half-decode.
		{`"esc\"aped"`, false, ""},
		{`"tab\there"`, false, ""},
		{`"\u0041BC"`, false, ""}, // unicode escape punts too
		{`"\\"`, false, ""},
		// Raw control bytes are invalid JSON inside a string.
		{"\"a\x00b\"", false, ""},
		{"\"a\nb\"", false, ""},
		// Unterminated.
		{`"open`, false, ""},
		{`notastring`, false, ""},
	}
	for _, c := range cases {
		s := &Scanner{Data: []byte(c.in)}
		got, ok := s.Str()
		if ok != c.ok || got != c.want {
			t.Errorf("Str(%q) = (%q, %v), want (%q, %v)", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestScannerSkipValueEdges(t *testing.T) {
	// in is followed by a comma so the test can verify the cursor lands
	// exactly on the first byte after the skipped value.
	cases := []struct {
		in string
		ok bool
	}{
		{`{}`, true},
		{`[]`, true},
		{`[[]]`, true},
		{`{"a":{}}`, true},
		{`[{},[],{"x":[]}]`, true},
		// Escaped quotes and brackets inside strings must not confuse the
		// depth tracking.
		{`{"k":"va\"l}ue"}`, true},
		{`["br]acket","}"]`, true},
		{`"esc\"aped"`, true},
		{`null`, true},
		{`-12.5e3`, true},
		// Truncated input fails rather than over-running.
		{`{"a":`, false},
		{`["x"`, false},
		{`"unterminated`, false},
		{``, false},
	}
	for _, c := range cases {
		s := &Scanner{Data: []byte(c.in + ",")}
		ok := s.SkipValue()
		if ok != c.ok {
			t.Errorf("SkipValue(%q) ok = %v, want %v", c.in, ok, c.ok)
			continue
		}
		if ok && s.Data[s.Pos] != ',' {
			t.Errorf("SkipValue(%q) stopped at %d (%q), want the trailing comma", c.in, s.Pos, s.Data[s.Pos:])
		}
	}
}

func TestScannerSkipStringTrailingBackslash(t *testing.T) {
	// A backslash as the final byte skips "two" bytes past the end; the
	// scanner must report failure, not panic or claim success.
	for _, in := range []string{`"abc\`, `"\`, `"a\"`} {
		s := &Scanner{Data: []byte(in)}
		if s.SkipValue() {
			t.Errorf("SkipValue(%q) = true, want false (unterminated escape)", in)
		}
	}
}

func TestScannerNumberEdges(t *testing.T) {
	uints := []struct {
		in string
		ok bool
		n  uint64
	}{
		{"0", true, 0},
		{" 42", true, 42},
		{"18446744073709551609", true, 18446744073709551609},
		// The overflow guard is conservative: it punts on the last few
		// representable values rather than risk wrapping, per the
		// fall-back contract.
		{"18446744073709551615", false, 0},
		{"18446744073709551616", false, 0}, // overflow
		{"1.5", false, 0},
		{"1e3", false, 0},
		{"", false, 0},
		{"-1", false, 0},
	}
	for _, c := range uints {
		s := &Scanner{Data: []byte(c.in)}
		n, ok := s.UInt()
		if ok != c.ok || n != c.n {
			t.Errorf("UInt(%q) = (%d, %v), want (%d, %v)", c.in, n, ok, c.n, c.ok)
		}
	}
	ints := []struct {
		in string
		ok bool
		n  int
	}{
		{"-7", true, -7},
		{"7", true, 7},
		{"-0", true, 0},
		{"--1", false, 0},
		{"-1.5", false, 0},
		{"9223372036854775807", false, 0}, // beyond the 1<<62 fast-path cap
	}
	for _, c := range ints {
		s := &Scanner{Data: []byte(c.in)}
		n, ok := s.Int()
		if ok != c.ok || n != c.n {
			t.Errorf("Int(%q) = (%d, %v), want (%d, %v)", c.in, n, ok, c.n, c.ok)
		}
	}
}
