package fastjson

// Scanner is a minimal JSON tokenizer for schema-specialized decoders.
// The contract is fail-fast rather than feature-complete: every method
// that returns ok=false means "this input needs the full decoder" — a
// caller is expected to discard partial results and fall back to
// Unmarshal. That keeps the fast path tiny (no escape decoding, no
// float parsing) while staying correct on arbitrary input.
type Scanner struct {
	Data []byte
	Pos  int
}

// WS advances past insignificant whitespace.
func (s *Scanner) WS() {
	for s.Pos < len(s.Data) {
		switch s.Data[s.Pos] {
		case ' ', '\t', '\r', '\n':
			s.Pos++
		default:
			return
		}
	}
}

// Consume reports whether the next non-space byte is c, advancing past it
// when it is.
func (s *Scanner) Consume(c byte) bool {
	s.WS()
	if s.Pos < len(s.Data) && s.Data[s.Pos] == c {
		s.Pos++
		return true
	}
	return false
}

// StrBytes parses a JSON string and returns its contents as a slice of
// the underlying buffer — the caller must copy before the buffer is
// reused. ok is false for strings that use escapes (they need the full
// decoder to unquote) or are malformed.
func (s *Scanner) StrBytes() ([]byte, bool) {
	if !s.Consume('"') {
		return nil, false
	}
	start := s.Pos
	for s.Pos < len(s.Data) {
		switch c := s.Data[s.Pos]; {
		case c == '"':
			b := s.Data[start:s.Pos]
			s.Pos++
			return b, true
		case c == '\\' || c < 0x20:
			return nil, false
		}
		s.Pos++
	}
	return nil, false
}

// Str is StrBytes with the copy made.
func (s *Scanner) Str() (string, bool) {
	b, ok := s.StrBytes()
	return string(b), ok
}

// UInt parses a non-negative integer. ok is false on overflow or
// float/exponent forms.
func (s *Scanner) UInt() (uint64, bool) {
	s.WS()
	start := s.Pos
	var n uint64
	for s.Pos < len(s.Data) {
		c := s.Data[s.Pos]
		if c < '0' || c > '9' {
			break
		}
		if n > (1<<64-1-9)/10 {
			return 0, false
		}
		n = n*10 + uint64(c-'0')
		s.Pos++
	}
	if s.Pos == start {
		return 0, false
	}
	if s.Pos < len(s.Data) {
		switch s.Data[s.Pos] {
		case '.', 'e', 'E':
			return 0, false
		}
	}
	return n, true
}

// Int parses a (possibly negative) integer.
func (s *Scanner) Int() (int, bool) {
	s.WS()
	neg := false
	if s.Pos < len(s.Data) && s.Data[s.Pos] == '-' {
		neg = true
		s.Pos++
	}
	n, ok := s.UInt()
	if !ok || n > 1<<62 {
		return 0, false
	}
	if neg {
		return -int(n), true
	}
	return int(n), true
}

// Bool parses true or false.
func (s *Scanner) Bool() (bool, bool) {
	if s.Lit("true") {
		return true, true
	}
	if s.Lit("false") {
		return false, true
	}
	return false, false
}

// Lit reports whether the next token is exactly lit, advancing past it.
func (s *Scanner) Lit(lit string) bool {
	s.WS()
	if len(s.Data)-s.Pos < len(lit) || string(s.Data[s.Pos:s.Pos+len(lit)]) != lit {
		return false
	}
	s.Pos += len(lit)
	return true
}

// SkipValue advances past one JSON value of any shape (used to capture
// raw sub-messages and to skip nulls). Unlike the typed methods it
// handles escapes and nesting, because it never interprets the bytes.
func (s *Scanner) SkipValue() bool {
	s.WS()
	if s.Pos >= len(s.Data) {
		return false
	}
	switch s.Data[s.Pos] {
	case '"':
		return s.skipString()
	case '{', '[':
		depth := 0
		for s.Pos < len(s.Data) {
			switch s.Data[s.Pos] {
			case '"':
				if !s.skipString() {
					return false
				}
				continue
			case '{', '[':
				depth++
			case '}', ']':
				depth--
				if depth == 0 {
					s.Pos++
					return true
				}
			}
			s.Pos++
		}
		return false
	default:
		start := s.Pos
		for s.Pos < len(s.Data) {
			switch s.Data[s.Pos] {
			case ',', '}', ']', ' ', '\t', '\r', '\n':
				return s.Pos > start
			}
			s.Pos++
		}
		return s.Pos > start
	}
}

// skipString advances past a string token, escapes included; the cursor
// must be on the opening quote.
func (s *Scanner) skipString() bool {
	s.Pos++
	for s.Pos < len(s.Data) {
		switch s.Data[s.Pos] {
		case '\\':
			s.Pos += 2
			continue
		case '"':
			s.Pos++
			return true
		}
		s.Pos++
	}
	return false
}

// End reports whether only whitespace remains.
func (s *Scanner) End() bool {
	s.WS()
	return s.Pos == len(s.Data)
}
