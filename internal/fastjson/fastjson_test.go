package fastjson

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
)

type msg struct {
	A string          `json:"a,omitempty"`
	N uint64          `json:"n,omitempty"`
	B bool            `json:"b,omitempty"`
	R json.RawMessage `json:"r,omitempty"`
	L []string        `json:"l,omitempty"`
}

func TestUnmarshalMatchesStdlib(t *testing.T) {
	cases := []string{
		`{}`,
		`{"a":"x","n":9,"b":true}`,
		`{"a":"esc\"aped\n","l":["p","q"]}`,
		`{"r":{"nested":[1,2,{"x":"y"}]}}`,
		"\n {\"a\":\"ws\"} \t\n",
		`{"n":18446744073709551615}`,
	}
	for _, c := range cases {
		var got, want msg
		gotErr := Unmarshal([]byte(c), &got)
		wantErr := json.Unmarshal([]byte(c), &want)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("%q: err %v, stdlib err %v", c, gotErr, wantErr)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%q:\n got %#v\nwant %#v", c, got, want)
		}
	}
}

func TestUnmarshalRejectsTrailing(t *testing.T) {
	for _, c := range []string{
		`{"a":"x"}{"a":"y"}`,
		`{"a":"x"} garbage`,
		`{}1`,
	} {
		var m msg
		if err := Unmarshal([]byte(c), &m); err == nil {
			t.Errorf("%q: expected error", c)
		}
	}
}

// TestPoolHygieneAfterTrailingGarbage is the security property behind the
// pool bookkeeping: input with bytes beyond the first value must never
// leak into a later decode (a poisoned pooled decoder would hand one
// caller's leftover to another).
func TestPoolHygieneAfterTrailingGarbage(t *testing.T) {
	for i := 0; i < 100; i++ {
		var bad msg
		if err := Unmarshal([]byte(`{"a":"victim"}{"a":"attacker"}`), &bad); err == nil {
			t.Fatal("trailing value accepted")
		}
		var m msg
		want := fmt.Sprintf("clean-%d", i)
		if err := Unmarshal([]byte(`{"a":"`+want+`"}`), &m); err != nil {
			t.Fatalf("clean decode %d: %v", i, err)
		}
		if m.A != want {
			t.Fatalf("decode %d corrupted: got %q, want %q", i, m.A, want)
		}
	}
}

func TestScanner(t *testing.T) {
	s := &Scanner{Data: []byte(`  {"k": [1, "two", {"x": true}], "n": -5}`)}
	if !s.Consume('{') {
		t.Fatal("expected {")
	}
	if k, ok := s.Str(); !ok || k != "k" {
		t.Fatalf("key: %q %v", k, ok)
	}
	if !s.Consume(':') || !s.SkipValue() {
		t.Fatal("skip array value")
	}
	if !s.Consume(',') {
		t.Fatal("expected ,")
	}
	if k, ok := s.Str(); !ok || k != "n" {
		t.Fatalf("key2: %q %v", k, ok)
	}
	if !s.Consume(':') {
		t.Fatal("expected :")
	}
	if n, ok := s.Int(); !ok || n != -5 {
		t.Fatalf("int: %d %v", n, ok)
	}
	if !s.Consume('}') || !s.End() {
		t.Fatal("expected } then end")
	}

	// Fail-fast cases: escapes and floats report !ok, never wrong values.
	if _, ok := (&Scanner{Data: []byte(`"a\nb"`)}).Str(); ok {
		t.Error("escaped string must fail fast")
	}
	if _, ok := (&Scanner{Data: []byte(`1.5`)}).UInt(); ok {
		t.Error("float must fail fast")
	}
	if _, ok := (&Scanner{Data: []byte(`99999999999999999999999`)}).UInt(); ok {
		t.Error("overflow must fail fast")
	}
}
