// Package fastjson is a drop-in replacement for json.Unmarshal on hot
// paths. json.Unmarshal scans its input twice — a validation pass
// (checkValid) and then the decode pass — and allocates decode state per
// call. A json.Decoder scans once, and pooling the Decoder with a
// resettable bytes.Reader amortizes its state across calls. At the
// trusted node's protocol rates the double scan of multi-kilobyte
// session-state blobs is measurable, which is the reason this package
// exists.
package fastjson

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
)

// decoder pairs a json.Decoder with its resettable source so the pair can
// be pooled across messages.
type decoder struct {
	rd  bytes.Reader
	dec *json.Decoder
}

var decoderPool = sync.Pool{New: func() any {
	d := new(decoder)
	d.dec = json.NewDecoder(&d.rd)
	return d
}}

// Unmarshal decodes one JSON value from data into v, rejecting trailing
// non-whitespace — the same contract json.Unmarshal has.
//
// A pooled Decoder carries its buffered leftover into the next call, so a
// decoder is only returned to the pool when everything past the decoded
// value is whitespace; an input with trailing garbage is both rejected
// and kept out of the pool.
func Unmarshal(data []byte, v any) error {
	d := decoderPool.Get().(*decoder)
	d.rd.Reset(data)
	if err := d.dec.Decode(v); err != nil {
		// The scanner may be mid-value; drop the decoder.
		return err
	}
	// Leftovers live in two places: the decoder's internal buffer (which
	// persists across pool reuse) and the unconsumed tail of rd (which the
	// next Reset discards). Both must be pure whitespace.
	var tmp [64]byte
	br := d.dec.Buffered()
	for {
		n, err := br.Read(tmp[:])
		if !allSpace(tmp[:n]) {
			return fmt.Errorf("trailing data after JSON value")
		}
		if err != nil || n == 0 {
			break
		}
	}
	if tail := data[len(data)-d.rd.Len():]; !allSpace(tail) {
		return fmt.Errorf("trailing data after JSON value")
	}
	decoderPool.Put(d)
	return nil
}

func allSpace(b []byte) bool {
	for _, c := range b {
		if c != ' ' && c != '\t' && c != '\r' && c != '\n' {
			return false
		}
	}
	return true
}
