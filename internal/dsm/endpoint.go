package dsm

import (
	"errors"
	"fmt"

	"tinman/internal/taint"
	"tinman/internal/vm"
)

// ErrRestricted reports that a DSM operation touched state tainted by a
// server-only cor (cor.ClassServerOnly): such state never ships in a warm-up
// or migration payload, in either direction. Captures fail with this error
// when live frame state carries a restricted bit; applies fail with it when
// a peer tries to push restricted state in (node admission / device defense
// in depth). Callers match with errors.Is.
var ErrRestricted = errors.New("server-only tainted state may not ship in DSM payloads")

// Side identifies an endpoint of the DSM pair.
type Side uint8

const (
	// DeviceSide is the mobile device: placeholders only.
	DeviceSide Side = iota
	// NodeSide is the trusted node: plaintexts, full tainting.
	NodeSide
)

func (s Side) String() string {
	if s == DeviceSide {
		return "device"
	}
	return "node"
}

// Other returns the opposite side.
func (s Side) Other() Side {
	if s == DeviceSide {
		return NodeSide
	}
	return DeviceSide
}

// Resolver supplies each side's representation of a cor. The device resolver
// returns placeholders; the trusted-node resolver returns plaintext and can
// mint derived cor IDs for freshly tainted strings (fig 11's concatenated
// request is "a new cor").
type Resolver interface {
	// Fill returns this side's content for the cor. length is the wire-
	// declared content length, letting the device synthesize placeholders
	// for derived cors it has never seen (the placeholder must have the
	// same size as the cor, Table 1).
	Fill(corID string, length int) (content string, tag taint.Tag, ok bool)
	// MaskID returns the cor ID to transmit for a tainted string object
	// that has none yet, registering a derived cor if this side may do so.
	// An empty return means the object cannot be masked (an error: tainted
	// content must never be serialized).
	MaskID(o *vm.Object) string
}

// SyncStats is the Table 3 accounting: number of DSM synchronizations and
// bytes moved in the initial full-heap sync versus later dirty syncs.
type SyncStats struct {
	Syncs      int
	InitBytes  int
	DirtyBytes int
	// ObjectsSent counts objects serialized across all syncs.
	ObjectsSent int
	// Withheld counts heap objects excluded from outbound payloads because
	// they carry server-only (Restricted) taint.
	Withheld int
	// WarmupChunks/WarmupBytes count the background warm-up traffic
	// (warmup.go): shipped off the critical path, so kept separate from the
	// trigger-time Init/Dirty accounting.
	WarmupChunks int
	WarmupBytes  int
}

// SyncMode selects what each synchronization ships.
type SyncMode uint8

const (
	// SyncDirty is COMET's (and TinMan's) mode: full heap once, then only
	// mutated objects.
	SyncDirty SyncMode = iota
	// SyncFull ships the entire heap on every migration — the naive
	// strawman the dirty tracking exists to avoid. Exposed for the
	// ablation benchmark.
	SyncFull
)

// Endpoint is one side of the DSM pair.
type Endpoint struct {
	Side     Side
	VM       *vm.VM
	Resolver Resolver
	Stats    SyncStats
	// Mode selects dirty-tracking (default) or the full-sync ablation.
	Mode SyncMode
	// Restricted is the union of taint bits belonging to server-only cors
	// (cor.Store.RestrictedMask on the node; derived from catalog classes on
	// the device). Heap objects carrying any of these bits are silently
	// withheld from every outbound payload — warm-up chunk, initial sync,
	// dirty delta — and inbound payloads carrying them are refused with
	// ErrRestricted. A live frame register (or result) carrying a restricted
	// bit fails the capture itself: execution over server-only data cannot
	// migrate off the node.
	Restricted taint.Tag

	seq         uint64
	initialSent bool

	// Speculative warm-up state (warmup.go): warm/warmSeq on the sending
	// side, warmRecv on the receiving side.
	warm     *warmupSend
	warmSeq  uint64
	warmRecv *warmupRecv
}

// NewEndpoint wraps a VM as a DSM endpoint.
func NewEndpoint(side Side, machine *vm.VM, res Resolver) *Endpoint {
	if machine == nil {
		panic("dsm: nil VM")
	}
	return &Endpoint{Side: side, VM: machine, Resolver: res}
}

// restricted reports whether the tag carries any server-only bit.
func (e *Endpoint) restricted(t taint.Tag) bool { return t.Overlaps(e.Restricted) }

// ResetWarmup clears the initial-sync marker, as when a new app is loaded
// (the dex warm-up in §6.2 happens per app), and discards any speculative
// warm-up attempt with it — the peer's heap can no longer be assumed warm.
func (e *Endpoint) ResetWarmup() {
	e.initialSent = false
	e.warm = nil
}

// InitialSent reports whether the full-heap sync has happened.
func (e *Endpoint) InitialSent() bool { return e.initialSent }

// CaptureMigration packages the thread's stack plus this side's heap delta
// for transfer. The first capture ships the entire heap (the warm-up sync);
// later captures ship only dirty objects. If the thread is nil (pure state
// sync after remote completion), only heap state is shipped.
func (e *Endpoint) CaptureMigration(t *vm.Thread, reason vm.StopReason) (*Migration, error) {
	e.seq++
	m := &Migration{Seq: e.seq, Reason: reason, Result: ValueState{Kind: uint8(vm.KindRef)}}

	var objs []*vm.Object
	switch {
	case !e.initialSent && e.Mode != SyncFull && e.WarmupReady():
		// Warm path: the full snapshot already shipped in background chunks.
		// Ship only objects whose Version moved past (or never entered) the
		// shipped record — mutated since their chunk was captured, or
		// allocated after the warm-up began. The heap never deletes, so this
		// delta is complete.
		m.WarmEpoch = e.warm.epoch
		for _, o := range e.VM.Heap.Objects() {
			if v, ok := e.warm.shipped[o.ID]; !ok || v != o.Version {
				objs = append(objs, o)
			}
		}
		e.initialSent = true
		e.warm = nil
	case !e.initialSent || e.Mode == SyncFull:
		m.Initial = !e.initialSent
		objs = e.VM.Heap.Objects()
		e.initialSent = true
	default:
		objs = e.VM.Heap.DirtyObjects()
	}
	m.Objects = make([]ObjectState, 0, len(objs))
	for _, o := range objs {
		if e.restricted(o.Tag) {
			// Server-only tainted objects stay home: not even the masked
			// shell ships. This runs after every selection path, so warm
			// deltas (where a withheld object looks "never shipped") are
			// filtered too.
			e.Stats.Withheld++
			continue
		}
		os, err := e.encodeObject(o)
		if err != nil {
			return nil, err
		}
		m.Objects = append(m.Objects, os)
	}
	e.VM.Heap.ClearDirty()

	if t != nil {
		if reason == vm.StopDone {
			if e.restricted(t.Result.Tag) {
				return nil, fmt.Errorf("dsm: %s: %w: result value carries restricted taint %v",
					e.Side, ErrRestricted, t.Result.Tag)
			}
			rs, err := e.encodeValue(t.Result, t.Result.Tag)
			if err != nil {
				return nil, err
			}
			m.Result = rs
		}
		m.Frames = make([]FrameState, len(t.Frames))
		for i, f := range t.Frames {
			fs := FrameState{
				Class:  f.Method.Class.Name,
				Method: f.Method.Name,
				PC:     f.PC,
				RetReg: f.RetReg,
				Regs:   make([]ValueState, len(f.Regs)),
			}
			for j, r := range f.Regs {
				// Unlike heap objects, live frame state cannot be silently
				// withheld — the frame would be torn — so a restricted bit in
				// a register (or in the object it references) fails the whole
				// capture. The node maps this to a server-only policy denial.
				if tg := f.Tag(j); e.restricted(tg) {
					return nil, fmt.Errorf("dsm: %s: %w: frame %d %s.%s reg %d carries restricted taint %v",
						e.Side, ErrRestricted, i, fs.Class, fs.Method, j, tg)
				}
				if r.Kind == vm.KindRef && r.Ref != nil && e.restricted(r.Ref.Tag) {
					return nil, fmt.Errorf("dsm: %s: %w: frame %d %s.%s reg %d references withheld object #%d",
						e.Side, ErrRestricted, i, fs.Class, fs.Method, j, r.Ref.ID)
				}
				vs, err := e.encodeValue(r, f.Tag(j))
				if err != nil {
					return nil, err
				}
				fs.Regs[j] = vs
			}
			m.Frames[i] = fs
		}
	}

	// Accounting. EncodedSize avoids allocating a throwaway encode: the real
	// wire bytes are produced by the transport's own Encode call.
	wire := m.EncodedSize()
	e.Stats.Syncs++
	e.Stats.ObjectsSent += len(m.Objects)
	if m.Initial {
		e.Stats.InitBytes += wire
	} else {
		e.Stats.DirtyBytes += wire
	}
	return m, nil
}

// encodeValue serializes a register or slot value with its shadow tag
// (register tags live in Frame.Tags, slot tags in the object's shadow
// stores). Tainted primitives are masked: the datum stays home, only the
// tag travels.
func (e *Endpoint) encodeValue(v vm.Value, tag taint.Tag) (ValueState, error) {
	vs := ValueState{Kind: uint8(v.Kind), Int: v.Int, Float: v.Float, Tag: uint64(tag)}
	if v.Kind == vm.KindRef {
		vs.Int, vs.Float = 0, 0
		if v.Ref != nil {
			vs.RefID = v.Ref.ID
		}
		return vs, nil
	}
	// Tainted primitives never travel by value: the trusted node masks them
	// to keep secrets home, and the device masks them because its copies
	// are dummies from an earlier masked sync — echoing them back would
	// clobber the node's authoritative datum.
	if !tag.Empty() {
		vs.Masked = true
		vs.Int, vs.Float = 0, 0
	}
	return vs, nil
}

// encodeObject serializes a heap object, replacing tainted string content
// with a cor ID.
func (e *Endpoint) encodeObject(o *vm.Object) (ObjectState, error) {
	os := ObjectState{
		ID:      o.ID,
		Class:   o.Class.Name,
		Tag:     uint64(o.Tag),
		Version: o.Version,
		IsArr:   o.IsArr,
		IsStr:   o.IsStr,
		CorID:   o.CorID,
	}
	switch {
	case o.IsStr:
		os.StrLen = len(o.Str)
		if o.CorID == "" && !o.Tag.Empty() {
			if e.Resolver == nil {
				return os, fmt.Errorf("dsm: %s: tainted string #%d has no cor ID and no resolver", e.Side, o.ID)
			}
			id := e.Resolver.MaskID(o)
			if id == "" {
				return os, fmt.Errorf("dsm: %s: tainted string #%d cannot be masked", e.Side, o.ID)
			}
			o.CorID = id
			os.CorID = id
		}
		if os.CorID == "" {
			os.Str = o.Str
		}
	case o.IsArr:
		os.Elems = make([]ValueState, len(o.Elems))
		for i, el := range o.Elems {
			vs, err := e.encodeValue(el, o.ElemTag(i))
			if err != nil {
				return os, err
			}
			os.Elems[i] = vs
		}
	default:
		os.Fields = make([]ValueState, len(o.Fields))
		for i, fv := range o.Fields {
			vs, err := e.encodeValue(fv, o.FieldTag(i))
			if err != nil {
				return os, err
			}
			os.Fields[i] = vs
		}
	}
	return os, nil
}

// ApplyMigration merges the peer's heap delta into the local heap and, if
// the migration carries frames, rebuilds the thread against the local VM.
// The returned thread is nil for pure state syncs.
func (e *Endpoint) ApplyMigration(m *Migration) (*vm.Thread, error) {
	if err := e.screenMigration(m); err != nil {
		return nil, err
	}
	// Pass 1: materialize or update objects so references resolve.
	for i := range m.Objects {
		if err := e.adoptObject(&m.Objects[i]); err != nil {
			return nil, err
		}
	}
	// Pass 2: fill slots (needs all objects present).
	for i := range m.Objects {
		if err := e.fillObject(&m.Objects[i]); err != nil {
			return nil, err
		}
	}
	// The peer's state is not "dirty" locally: syncing it back would echo.
	e.VM.Heap.ClearDirty()
	e.initialSent = true // receiving an initial sync also warms this side

	if len(m.Frames) == 0 {
		return nil, nil
	}
	th := &vm.Thread{VM: e.VM, Frames: make([]*vm.Frame, len(m.Frames))}
	for i := range m.Frames {
		fs := &m.Frames[i]
		method := e.VM.Program.Method(fs.Class, fs.Method)
		if method == nil {
			return nil, fmt.Errorf("dsm: %s: unknown method %s.%s in migration", e.Side, fs.Class, fs.Method)
		}
		if fs.PC < 0 || fs.PC > len(method.Code) {
			return nil, fmt.Errorf("dsm: %s: frame pc %d out of range for %s.%s", e.Side, fs.PC, fs.Class, fs.Method)
		}
		f := &vm.Frame{Method: method, PC: fs.PC, RetReg: fs.RetReg, Regs: make([]vm.Value, len(fs.Regs))}
		if e.VM.Tracking() {
			f.Tags = make([]taint.Tag, len(fs.Regs))
		}
		for j := range fs.Regs {
			val, err := e.decodeValue(&fs.Regs[j], vm.Value{})
			if err != nil {
				return nil, err
			}
			f.Regs[j] = val
			if f.Tags != nil {
				f.Tags[j] = val.Tag
			}
			f.Regs[j].Tag = 0 // tags live in the shadow store inside frames
		}
		th.Frames[i] = f
	}
	return th, nil
}

// screenMigration rejects an inbound migration carrying server-only taint
// anywhere — object tags, slot tags, frame register tags, or the result —
// before any of it is adopted into the local heap. The sender's own capture
// filter makes this unreachable for honest peers; keeping it on the apply
// side is the node-admission check (and protects devices from a compromised
// node pushing restricted state out).
func (e *Endpoint) screenMigration(m *Migration) error {
	if e.Restricted.Empty() {
		return nil
	}
	for i := range m.Objects {
		if err := e.screenObject(&m.Objects[i]); err != nil {
			return err
		}
	}
	for i := range m.Frames {
		for j := range m.Frames[i].Regs {
			if tg := taint.Tag(m.Frames[i].Regs[j].Tag); e.restricted(tg) {
				return fmt.Errorf("dsm: %s: %w: inbound frame %d reg %d carries restricted taint %v",
					e.Side, ErrRestricted, i, j, tg)
			}
		}
	}
	if tg := taint.Tag(m.Result.Tag); e.restricted(tg) {
		return fmt.Errorf("dsm: %s: %w: inbound result carries restricted taint %v", e.Side, ErrRestricted, tg)
	}
	return nil
}

// screenObject rejects one inbound object state carrying server-only taint
// on the object itself or any element/field slot.
func (e *Endpoint) screenObject(os *ObjectState) error {
	if tg := taint.Tag(os.Tag); e.restricted(tg) {
		return fmt.Errorf("dsm: %s: %w: inbound object #%d carries restricted taint %v",
			e.Side, ErrRestricted, os.ID, tg)
	}
	for i := range os.Elems {
		if tg := taint.Tag(os.Elems[i].Tag); e.restricted(tg) {
			return fmt.Errorf("dsm: %s: %w: inbound object #%d elem %d carries restricted taint %v",
				e.Side, ErrRestricted, os.ID, i, tg)
		}
	}
	for i := range os.Fields {
		if tg := taint.Tag(os.Fields[i].Tag); e.restricted(tg) {
			return fmt.Errorf("dsm: %s: %w: inbound object #%d field %d carries restricted taint %v",
				e.Side, ErrRestricted, os.ID, i, tg)
		}
	}
	return nil
}

// DecodeResult converts a migration's result slot to a local value.
func (e *Endpoint) DecodeResult(m *Migration) (vm.Value, error) {
	return e.decodeValue(&m.Result, vm.Value{})
}

// decodeValue converts a wire value; prev is the current local value, kept
// when the wire value is masked.
func (e *Endpoint) decodeValue(vs *ValueState, prev vm.Value) (vm.Value, error) {
	if vs.Masked {
		// The datum stayed on the trusted node; locally we keep whatever we
		// had (usually a stale placeholder or zero) but adopt the tag so
		// re-touching it re-triggers offload.
		prev.Tag = taint.Tag(vs.Tag)
		if prev.Kind == vm.KindInvalid {
			prev.Kind = vm.Kind(vs.Kind)
		}
		return prev, nil
	}
	v := vm.Value{Kind: vm.Kind(vs.Kind), Int: vs.Int, Float: vs.Float, Tag: taint.Tag(vs.Tag)}
	if v.Kind == vm.KindRef && vs.RefID != 0 {
		o := e.VM.Heap.Get(vs.RefID)
		if o == nil {
			return vm.Value{}, fmt.Errorf("dsm: %s: reference to unknown object #%d", e.Side, vs.RefID)
		}
		v.Ref = o
	}
	return v, nil
}

// adoptObject creates or refreshes the shell of an incoming object.
func (e *Endpoint) adoptObject(os *ObjectState) error {
	class := e.VM.ClassByName(os.Class)
	if class == nil {
		return fmt.Errorf("dsm: %s: migration references unknown class %s", e.Side, os.Class)
	}
	o := e.VM.Heap.Get(os.ID)
	if o == nil {
		o = &vm.Object{ID: os.ID, Class: class}
		e.VM.Heap.Adopt(o)
	}
	o.Class = class
	o.Tag = taint.Tag(os.Tag)
	o.Version = os.Version
	o.IsArr = os.IsArr
	o.IsStr = os.IsStr
	o.CorID = os.CorID
	return nil
}

// fillObject populates payloads once all referenced objects exist.
func (e *Endpoint) fillObject(os *ObjectState) error {
	o := e.VM.Heap.Get(os.ID)
	switch {
	case os.IsStr:
		if os.CorID != "" {
			if e.Resolver == nil {
				return fmt.Errorf("dsm: %s: cor %s arrived but no resolver is configured", e.Side, os.CorID)
			}
			content, tag, ok := e.Resolver.Fill(os.CorID, os.StrLen)
			if !ok {
				return fmt.Errorf("dsm: %s: unknown cor %s", e.Side, os.CorID)
			}
			o.Str = content
			o.Tag = o.Tag.Union(tag)
			if len(content) != os.StrLen {
				return fmt.Errorf("dsm: %s: cor %s length mismatch: local %d, wire %d",
					e.Side, os.CorID, len(content), os.StrLen)
			}
		} else {
			o.Str = os.Str
		}
	case os.IsArr:
		if len(o.Elems) != len(os.Elems) {
			o.Elems = make([]vm.Value, len(os.Elems))
		}
		for i := range os.Elems {
			prev := o.Elems[i]
			prev.Tag = o.ElemTag(i)
			val, err := e.decodeValue(&os.Elems[i], prev)
			if err != nil {
				return err
			}
			o.SetElemTag(i, val.Tag)
			val.Tag = 0
			o.Elems[i] = val
		}
	default:
		if len(o.Fields) != len(os.Fields) {
			o.Fields = make([]vm.Value, len(os.Fields))
		}
		for i := range os.Fields {
			prev := o.Fields[i]
			prev.Tag = o.FieldTag(i)
			val, err := e.decodeValue(&os.Fields[i], prev)
			if err != nil {
				return err
			}
			o.SetFieldTag(i, val.Tag)
			val.Tag = 0
			o.Fields[i] = val
		}
	}
	return nil
}

// LockTable tracks monitor ownership across the endpoint pair; the side
// holding a lock establishes the happens-before edge, and a monenter on the
// other side forces a migration (the github case in Table 3).
type LockTable struct {
	owner map[uint64]Side
	held  map[uint64]bool
}

// NewLockTable creates an empty table.
func NewLockTable() *LockTable {
	return &LockTable{owner: make(map[uint64]Side), held: make(map[uint64]bool)}
}

// Acquire attempts to take the object's monitor for side s. It returns
// false when the lock's home is the other side, which forces a migration
// there to establish the happens-before edge.
func (lt *LockTable) Acquire(objID uint64, s Side) bool {
	home, known := lt.owner[objID]
	if known && home != s {
		return false
	}
	lt.owner[objID] = s
	lt.held[objID] = true
	return true
}

// Release drops the monitor; ownership (the lock's home side) is retained
// until explicitly moved.
func (lt *LockTable) Release(objID uint64) { lt.held[objID] = false }

// MoveHome transfers a lock's home side (after a migration services it).
func (lt *LockTable) MoveHome(objID uint64, s Side) { lt.owner[objID] = s }

// Home returns the lock's home side and whether it is known.
func (lt *LockTable) Home(objID uint64) (Side, bool) {
	s, ok := lt.owner[objID]
	return s, ok
}
