package dsm

import (
	"fmt"
	"strings"
	"testing"

	"tinman/internal/vm"
)

// shipWarmup streams the device's whole warm-up through the wire codec into
// the node, chunk by chunk, and acknowledges the final chunk. maxObjs
// controls chunking so tests exercise multi-chunk epochs.
func shipWarmup(t *testing.T, p *pair, maxObjs int) uint64 {
	t.Helper()
	epoch := p.dev.BeginWarmup()
	if epoch == 0 {
		t.Fatal("warm-up refused: initial sync already sent")
	}
	for {
		c, err := p.dev.CaptureWarmup(maxObjs)
		if err != nil {
			t.Fatalf("capture warmup: %v", err)
		}
		if c == nil {
			break
		}
		decoded, err := DecodeWarmupChunk(c.Encode())
		if err != nil {
			t.Fatalf("warmup wire: %v", err)
		}
		if err := p.node.ApplyWarmupChunk(decoded); err != nil {
			t.Fatalf("apply warmup chunk %d: %v", decoded.Index, err)
		}
		if c.Final {
			break
		}
	}
	p.dev.WarmupAcked()
	if !p.dev.WarmupReady() {
		t.Fatal("warm-up not ready after final ack")
	}
	return epoch
}

// heapSummary renders a heap as a deterministic multiset of object states
// for bit-identical comparisons (IDs included: DSM adoption preserves them).
func heapSummary(h *vm.Heap) string {
	var b strings.Builder
	for _, o := range h.Objects() {
		fmt.Fprintf(&b, "#%d %s tag=%v v=%d arr=%v str=%v cor=%q %q",
			o.ID, o.Class.Name, o.Tag, o.Version, o.IsArr, o.IsStr, o.CorID, o.Str)
		for i, e := range o.Elems {
			fmt.Fprintf(&b, " e%d={%d %d %v}", i, e.Kind, e.Int, o.ElemTag(i))
		}
		for i, f := range o.Fields {
			fmt.Fprintf(&b, " f%d={%d %d %v}", i, f.Kind, f.Int, o.FieldTag(i))
		}
		b.WriteString("\n")
	}
	return b.String()
}

func TestWarmupStreamThenDirtyDeltaAtTrigger(t *testing.T) {
	p := newPair(t, bankSrc)
	// Framework heap: many objects the warm-up should move off the
	// critical path.
	for i := 0; i < 40; i++ {
		p.devVM.NewString(strings.Repeat("f", 64))
	}
	mutated := p.devVM.NewString("before")
	shipWarmup(t, p, 8)
	if p.dev.Stats.WarmupChunks < 5 {
		t.Fatalf("chunks = %d, want a multi-chunk stream", p.dev.Stats.WarmupChunks)
	}

	// Execution continues: one object mutates, one is allocated fresh.
	mutated.Str = "after"
	p.devVM.Heap.MarkDirty(mutated)
	fresh := p.devVM.NewString("born-after-warmup")

	m, err := p.dev.CaptureMigration(nil, vm.StopMigrateTaint)
	if err != nil {
		t.Fatal(err)
	}
	if m.WarmEpoch == 0 {
		t.Fatal("trigger migration did not take the warm path")
	}
	if m.Initial {
		t.Fatal("warm migration must not claim to be the initial sync")
	}
	// The delta is exactly the touched objects, not the whole heap.
	if len(m.Objects) != 2 {
		ids := make([]uint64, 0, len(m.Objects))
		for _, o := range m.Objects {
			ids = append(ids, o.ID)
		}
		t.Fatalf("delta carries %d objects (%v), want {mutated, fresh}", len(m.Objects), ids)
	}

	decoded, err := DecodeMigration(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !p.node.ConsumeWarmup(decoded.WarmEpoch) {
		t.Fatal("node did not hold the warm epoch ready")
	}
	if _, err := p.node.ApplyMigration(decoded); err != nil {
		t.Fatal(err)
	}
	if got := p.nodeVM.Heap.Get(mutated.ID); got == nil || got.Str != "after" {
		t.Fatalf("mutated object on node = %+v, want post-warm-up content", got)
	}
	if got := p.nodeVM.Heap.Get(fresh.ID); got == nil || got.Str != "born-after-warmup" {
		t.Fatalf("fresh object missing on node: %+v", got)
	}
}

// TestWarmVsColdBitIdentical is the differential guarantee: a warm offload
// must leave the node heap bit-identical to a cold full-snapshot offload of
// the same device state — speculation is semantically invisible.
func TestWarmVsColdBitIdentical(t *testing.T) {
	run := func(warm bool) string {
		p := newPair(t, bankSrc)
		for i := 0; i < 30; i++ {
			p.devVM.NewString(fmt.Sprintf("framework-%03d", i))
		}
		mutated := p.devVM.NewString("v1")
		if warm {
			shipWarmup(t, p, 7)
		}
		// Post-warm-up (or pre-capture) device activity, identical in both
		// runs.
		mutated.Str = "v2"
		p.devVM.Heap.MarkDirty(mutated)
		p.devVM.NewString("late-arrival")

		m, err := p.dev.CaptureMigration(nil, vm.StopMigrateTaint)
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := DecodeMigration(m.Encode())
		if err != nil {
			t.Fatal(err)
		}
		if warm != (decoded.WarmEpoch != 0) {
			t.Fatalf("warm=%v but wire epoch=%d", warm, decoded.WarmEpoch)
		}
		if decoded.WarmEpoch != 0 && !p.node.ConsumeWarmup(decoded.WarmEpoch) {
			t.Fatal("warm epoch not ready")
		}
		if _, err := p.node.ApplyMigration(decoded); err != nil {
			t.Fatal(err)
		}
		return heapSummary(p.nodeVM.Heap)
	}
	cold, warm := run(false), run(true)
	if cold != warm {
		t.Fatalf("node heaps diverge:\n--- cold ---\n%s--- warm ---\n%s", cold, warm)
	}
}

func TestWarmupOutOfOrderRejected(t *testing.T) {
	p := newPair(t, bankSrc)
	for i := 0; i < 20; i++ {
		p.devVM.NewString("x")
	}
	p.dev.BeginWarmup()
	c0, _ := p.dev.CaptureWarmup(5)
	c1, _ := p.dev.CaptureWarmup(5)
	c2, _ := p.dev.CaptureWarmup(5)

	// Index gap: 0 then 2.
	if err := p.node.ApplyWarmupChunk(c0); err != nil {
		t.Fatal(err)
	}
	if err := p.node.ApplyWarmupChunk(c2); err == nil {
		t.Fatal("index gap accepted")
	}
	if p.node.WarmupPending() {
		t.Fatal("violation must drop the buffered epoch")
	}

	// Epoch mix: chunk 0 of epoch A, then chunk 1 of a different epoch.
	if err := p.node.ApplyWarmupChunk(c0); err != nil {
		t.Fatal(err)
	}
	alien := *c1
	alien.Epoch = c1.Epoch + 9
	if err := p.node.ApplyWarmupChunk(&alien); err == nil {
		t.Fatal("epoch mix accepted")
	}

	// Zero epoch is never valid.
	zero := *c0
	zero.Epoch = 0
	if err := p.node.ApplyWarmupChunk(&zero); err == nil {
		t.Fatal("zero epoch accepted")
	}
}

func TestTornWarmupLeavesHeapUntouched(t *testing.T) {
	p := newPair(t, bankSrc)
	for i := 0; i < 20; i++ {
		p.devVM.NewString("torn")
	}
	before := p.nodeVM.Heap.Len()
	p.dev.BeginWarmup()
	c0, _ := p.dev.CaptureWarmup(5)
	if err := p.node.ApplyWarmupChunk(c0); err != nil {
		t.Fatal(err)
	}
	// The final chunk never arrives (crash mid-warm-up): nothing may have
	// been adopted, and the trigger must be refused.
	if p.nodeVM.Heap.Len() != before {
		t.Fatalf("torn warm-up adopted objects: heap %d -> %d", before, p.nodeVM.Heap.Len())
	}
	if p.node.ConsumeWarmup(c0.Epoch) {
		t.Fatal("torn epoch consumed as ready")
	}
	if p.node.WarmupPending() {
		t.Fatal("consume must clear the torn state")
	}
}

func TestConsumeWarmupEpochMismatch(t *testing.T) {
	p := newPair(t, bankSrc)
	p.devVM.NewString("solo")
	epoch := shipWarmup(t, p, 0)
	if p.node.ConsumeWarmup(epoch + 1) {
		t.Fatal("wrong epoch consumed")
	}
	// The mismatch cleared the state: the right epoch is now gone too.
	if p.node.ConsumeWarmup(epoch) {
		t.Fatal("state survived a mismatched consume")
	}
}

func TestNewWarmupEpochSupersedesOld(t *testing.T) {
	p := newPair(t, bankSrc)
	for i := 0; i < 8; i++ {
		p.devVM.NewString("gen1")
	}
	first := shipWarmup(t, p, 0)

	// The device resets (reconnect) and warms again: the new epoch's chunk 0
	// must supersede the completed old epoch on the node.
	p.dev.ResetWarmup()
	second := shipWarmup(t, p, 0)
	if second <= first {
		t.Fatalf("epochs must be monotonic: %d then %d", first, second)
	}
	if p.node.ConsumeWarmup(first) {
		t.Fatal("superseded epoch still consumable")
	}
}

func TestResetWarmupDiscardsSendState(t *testing.T) {
	p := newPair(t, bankSrc)
	p.devVM.NewString("x")
	shipWarmup(t, p, 0)
	p.dev.ResetWarmup()
	if p.dev.WarmupReady() || p.dev.WarmupEpoch() != 0 {
		t.Fatal("reset kept warm send state")
	}
	m, err := p.dev.CaptureMigration(nil, vm.StopMigrateTaint)
	if err != nil {
		t.Fatal(err)
	}
	if m.WarmEpoch != 0 || !m.Initial {
		t.Fatalf("post-reset capture must be the cold initial sync: %+v", m)
	}
}

func TestBeginWarmupRefusedAfterInitialSync(t *testing.T) {
	p := newPair(t, bankSrc)
	p.devVM.NewString("x")
	if _, err := p.dev.CaptureMigration(nil, vm.StopMigrateTaint); err != nil {
		t.Fatal(err)
	}
	if epoch := p.dev.BeginWarmup(); epoch != 0 {
		t.Fatalf("warm-up started (%d) after the initial sync already shipped", epoch)
	}
}

func TestWarmupChunkWireRejectsGarbage(t *testing.T) {
	valid := (&WarmupChunk{
		Epoch: 5, Index: 0, Final: true,
		Objects: []ObjectState{{ID: 3, Class: "C", IsStr: true, Str: "ok", StrLen: 2}},
	}).Encode()
	cases := [][]byte{
		nil,
		{},
		{99},                      // wrong version
		valid[:len(valid)/2],      // truncated
		append(valid, 0xAB),       // trailing bytes
		(&WarmupChunk{}).Encode(), // zero epoch
	}
	for i, buf := range cases {
		if _, err := DecodeWarmupChunk(buf); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
	got, err := DecodeWarmupChunk(valid)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 5 || !got.Final || len(got.Objects) != 1 || got.Objects[0].Str != "ok" {
		t.Fatalf("round trip mangled the chunk: %+v", got)
	}
}

// TestEncoderPoolAllocs is the regression guard for the pooled encode path:
// EncodedSize must not allocate at all, and Encode exactly once (the
// returned exact-size buffer).
func TestEncoderPoolAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates sync.Pool allocation counts")
	}
	m := &Migration{Seq: 9, Result: ValueState{Kind: uint8(vm.KindRef)}}
	for i := 0; i < 32; i++ {
		m.Objects = append(m.Objects, ObjectState{
			ID: uint64(i + 1), Class: "C", IsStr: true,
			Str: strings.Repeat("y", 100), StrLen: 100,
		})
	}
	c := &WarmupChunk{Epoch: 1, Final: true, Objects: m.Objects}
	m.Encode() // prime the pool
	if n := testing.AllocsPerRun(50, func() { m.EncodedSize() }); n != 0 {
		t.Errorf("Migration.EncodedSize allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() { m.Encode() }); n > 1 {
		t.Errorf("Migration.Encode allocates %.1f/op, want <=1", n)
	}
	if n := testing.AllocsPerRun(50, func() { c.EncodedSize() }); n != 0 {
		t.Errorf("WarmupChunk.EncodedSize allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() { c.Encode() }); n > 1 {
		t.Errorf("WarmupChunk.Encode allocates %.1f/op, want <=1", n)
	}
}

// The taint invariant holds on the warm path too: chunked warm-up traffic
// carries cor IDs, never tainted content.
func TestWarmupChunkNeverCarriesTaintedContent(t *testing.T) {
	p := newPair(t, bankSrc)
	rec := p.store.Get("pw")
	ph := p.devVM.NewTaintedString(rec.Placeholder, rec.Tag())
	ph.CorID = rec.ID
	p.dev.BeginWarmup()
	for {
		c, err := p.dev.CaptureWarmup(4)
		if err != nil {
			t.Fatal(err)
		}
		if c == nil {
			break
		}
		for _, o := range c.Objects {
			if o.Tag != 0 && o.Str != "" {
				t.Fatalf("SECURITY: tainted content %q in warm-up chunk", o.Str)
			}
			if o.ID == ph.ID && o.CorID != "pw" {
				t.Fatalf("placeholder shipped without cor ID: %+v", o)
			}
		}
		if c.Final {
			break
		}
	}
}
