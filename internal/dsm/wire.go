// Package dsm implements the distributed-shared-memory offloading engine
// TinMan builds on COMET (§2.4, §3.1). A pair of Endpoints — one on the
// device, one on the trusted node — keep their VM heaps synchronized and
// migrate threads between them.
//
// The security-oriented twist over plain COMET: objects carrying cor taint
// are never serialized by content. Only the cor ID crosses the wire, and
// each side re-materializes its own representation — placeholder on the
// device, plaintext on the trusted node (§3.1).
package dsm

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"tinman/internal/obs"
	"tinman/internal/vm"
)

// wire format version, bumped on incompatible codec changes.
// v2 added Migration.WarmEpoch (speculative warm-up protocol).
const wireVersion = 2

// ValueState is the serialized form of a vm.Value. Masked values carry only
// their taint: the receiver keeps (or zeroes) the datum locally.
type ValueState struct {
	Kind   uint8
	Int    int64
	Float  float64
	RefID  uint64 // 0 = null
	Tag    uint64
	Masked bool
}

// ObjectState is the serialized form of a heap object.
type ObjectState struct {
	ID      uint64
	Class   string
	Tag     uint64
	Version uint64
	IsArr   bool
	IsStr   bool
	// CorID, when set, replaces the string content entirely (§3.1: "the
	// offloading engine will only transfer its ID").
	CorID  string
	StrLen int
	Str    string
	Fields []ValueState
	Elems  []ValueState
}

// FrameState is the serialized form of an activation record.
type FrameState struct {
	Class  string
	Method string
	PC     int
	RetReg int
	Regs   []ValueState
}

// Migration is a thread hand-off plus the sender's heap delta.
type Migration struct {
	Seq     uint64
	Reason  vm.StopReason
	Initial bool // carries the full heap (warm-up first sync)
	// TriggerTag is the taint tag that fired the offload (Reason ==
	// StopMigrateTaint); the trusted node runs its per-cor policy checks
	// against it before resuming the thread.
	TriggerTag uint64
	// WarmEpoch, when non-zero, declares that this migration is a warm-path
	// delta: the receiver must already hold a completed warm-up session with
	// the same epoch (warmup.go) or reject the migration so the sender can
	// fall back to a full snapshot. Zero means the cold path.
	WarmEpoch uint64
	Frames    []FrameState
	Objects   []ObjectState
	// Result carries the thread result when Reason == StopDone (the thread
	// finished remotely and only state flows back).
	Result ValueState
}

// ObsFields summarizes a migration for span attribution: the stop reason,
// the shipped frame/object counts, the trigger tag bits and whether this is
// the warm-up full-heap sync. Deliberately shallow — ObjectState content can
// embed app heap data, so object payloads and strings never become fields.
func (m *Migration) ObsFields() []obs.Field {
	fs := []obs.Field{
		obs.Msg(uint8(m.Reason)),
		obs.Count(int64(len(m.Frames) + len(m.Objects))),
	}
	if m.TriggerTag != 0 {
		fs = append(fs, obs.TagBits(m.TriggerTag))
	}
	if m.Initial {
		fs = append(fs, obs.Note("initial"))
	}
	if m.WarmEpoch != 0 {
		fs = append(fs, obs.Note("warm"))
	}
	return fs
}

// --- encoder ---

type encoder struct{ buf []byte }

func (e *encoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *encoder) b(v bool)     { e.u8(map[bool]uint8{false: 0, true: 1}[v]) }
func (e *encoder) u64(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *encoder) i64(v int64)  { e.buf = binary.AppendVarint(e.buf, v) }
func (e *encoder) f64(v float64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
	e.buf = append(e.buf, tmp[:]...)
}
func (e *encoder) str(s string) {
	e.u64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *encoder) value(v *ValueState) {
	e.u8(v.Kind)
	e.b(v.Masked)
	e.u64(v.Tag)
	if v.Masked {
		return
	}
	switch vm.Kind(v.Kind) {
	case vm.KindInt:
		e.i64(v.Int)
	case vm.KindFloat:
		e.f64(v.Float)
	case vm.KindRef:
		e.u64(v.RefID)
	}
}

func (e *encoder) object(o *ObjectState) {
	e.u64(o.ID)
	e.str(o.Class)
	e.u64(o.Tag)
	e.u64(o.Version)
	e.b(o.IsArr)
	e.b(o.IsStr)
	e.str(o.CorID)
	if o.IsStr {
		e.u64(uint64(o.StrLen))
		if o.CorID == "" {
			e.str(o.Str)
		}
		return
	}
	if o.IsArr {
		e.u64(uint64(len(o.Elems)))
		for i := range o.Elems {
			e.value(&o.Elems[i])
		}
		return
	}
	e.u64(uint64(len(o.Fields)))
	for i := range o.Fields {
		e.value(&o.Fields[i])
	}
}

func (e *encoder) frame(f *FrameState) {
	e.str(f.Class)
	e.str(f.Method)
	e.u64(uint64(f.PC))
	e.u64(uint64(f.RetReg))
	e.u64(uint64(len(f.Regs)))
	for i := range f.Regs {
		e.value(&f.Regs[i])
	}
}

// encPool recycles encoders across Encode/EncodedSize calls. A migration is
// encoded twice on the hot path (once for accounting, once for the wire), so
// the capacity an encoder grew to on one sync is exactly what the next one
// needs — pooling turns the per-sync slice growth into a single exact-size
// copy for Encode and zero allocations for EncodedSize.
var encPool = sync.Pool{New: func() any { return &encoder{buf: make([]byte, 0, 512)} }}

func (m *Migration) encodeInto(e *encoder) {
	e.u8(wireVersion)
	e.u64(m.Seq)
	e.u8(uint8(m.Reason))
	e.b(m.Initial)
	e.u64(m.TriggerTag)
	e.u64(m.WarmEpoch)
	e.value(&m.Result)
	e.u64(uint64(len(m.Frames)))
	for i := range m.Frames {
		e.frame(&m.Frames[i])
	}
	e.u64(uint64(len(m.Objects)))
	for i := range m.Objects {
		e.object(&m.Objects[i])
	}
}

// Encode serializes the migration to its wire form. The returned slice is
// freshly allocated at exact size; the working buffer is pooled.
func (m *Migration) Encode() []byte {
	e := encPool.Get().(*encoder)
	e.buf = e.buf[:0]
	m.encodeInto(e)
	out := make([]byte, len(e.buf))
	copy(out, e.buf)
	encPool.Put(e)
	return out
}

// EncodedSize returns len(m.Encode()) without allocating the result: the
// byte-accounting path (SyncStats) only needs the size.
func (m *Migration) EncodedSize() int {
	e := encPool.Get().(*encoder)
	e.buf = e.buf[:0]
	m.encodeInto(e)
	n := len(e.buf)
	encPool.Put(e)
	return n
}

// --- decoder ---

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("dsm: decode: "+format, args...)
	}
}

func (d *decoder) u8() uint8 {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail("truncated at byte %d", d.off)
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *decoder) b() bool { return d.u8() != 0 }

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad uvarint at byte %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) i64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad varint at byte %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) f64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail("truncated float at byte %d", d.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}

func (d *decoder) str() string {
	n := d.u64()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail("string length %d exceeds remaining %d", n, len(d.buf)-d.off)
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *decoder) value(v *ValueState) {
	v.Kind = d.u8()
	v.Masked = d.b()
	v.Tag = d.u64()
	if v.Masked {
		return
	}
	switch vm.Kind(v.Kind) {
	case vm.KindInt:
		v.Int = d.i64()
	case vm.KindFloat:
		v.Float = d.f64()
	case vm.KindRef:
		v.RefID = d.u64()
	}
}

func (d *decoder) object(o *ObjectState) {
	o.ID = d.u64()
	o.Class = d.str()
	o.Tag = d.u64()
	o.Version = d.u64()
	o.IsArr = d.b()
	o.IsStr = d.b()
	o.CorID = d.str()
	if o.IsStr {
		o.StrLen = int(d.u64())
		if o.CorID == "" {
			o.Str = d.str()
		}
		return
	}
	n := d.u64()
	if d.err != nil {
		return
	}
	if n > uint64(len(d.buf)) {
		d.fail("slot count %d implausible", n)
		return
	}
	slots := make([]ValueState, n)
	for i := range slots {
		d.value(&slots[i])
	}
	if o.IsArr {
		o.Elems = slots
	} else {
		o.Fields = slots
	}
}

func (d *decoder) frame(f *FrameState) {
	f.Class = d.str()
	f.Method = d.str()
	f.PC = int(d.u64())
	f.RetReg = int(d.u64())
	n := d.u64()
	if d.err != nil {
		return
	}
	if n > uint64(len(d.buf)) {
		d.fail("register count %d implausible", n)
		return
	}
	f.Regs = make([]ValueState, n)
	for i := range f.Regs {
		d.value(&f.Regs[i])
	}
}

// DecodeMigration parses a wire-form migration.
func DecodeMigration(buf []byte) (*Migration, error) {
	d := &decoder{buf: buf}
	if v := d.u8(); v != wireVersion && d.err == nil {
		return nil, fmt.Errorf("dsm: wire version %d, want %d", v, wireVersion)
	}
	m := &Migration{}
	m.Seq = d.u64()
	m.Reason = vm.StopReason(d.u8())
	m.Initial = d.b()
	m.TriggerTag = d.u64()
	m.WarmEpoch = d.u64()
	d.value(&m.Result)
	nf := d.u64()
	if d.err == nil && nf > uint64(len(buf)) {
		d.fail("frame count %d implausible", nf)
	}
	if d.err == nil {
		m.Frames = make([]FrameState, nf)
		for i := range m.Frames {
			d.frame(&m.Frames[i])
		}
	}
	no := d.u64()
	if d.err == nil && no > uint64(len(buf)) {
		d.fail("object count %d implausible", no)
	}
	if d.err == nil {
		m.Objects = make([]ObjectState, no)
		for i := range m.Objects {
			d.object(&m.Objects[i])
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(buf) {
		return nil, fmt.Errorf("dsm: decode: %d trailing bytes", len(buf)-d.off)
	}
	return m, nil
}
