//go:build race

package dsm

// raceEnabled lets allocation-count guards skip under the race detector,
// whose instrumentation inflates sync.Pool allocations.
const raceEnabled = true
