package dsm

import (
	"bytes"
	"errors"
	"testing"

	"tinman/internal/taint"
	"tinman/internal/vm"
)

// collectCorIDs gathers every object ID and cor ID present in a payload's
// object list.
func collectCorIDs(objs []ObjectState) (ids map[uint64]bool, cors map[string]bool) {
	ids, cors = map[uint64]bool{}, map[string]bool{}
	for i := range objs {
		ids[objs[i].ID] = true
		if objs[i].CorID != "" {
			cors[objs[i].CorID] = true
		}
	}
	return ids, cors
}

// TestServerOnlyNeverShipsDifferential is the differential guarantee for
// sensitivity classes: the same device state captured twice — once with the
// cor's bit unrestricted, once with it in the server-only mask — must ship
// the cor object in the first run and provably never ship it (structurally
// or as wire bytes) in the second, across BOTH the warm-up stream and the
// trigger-time migration.
func TestServerOnlyNeverShipsDifferential(t *testing.T) {
	run := func(restricted bool) (wire []byte, ids map[uint64]bool, cors map[string]bool, withheld int) {
		p := newPair(t, bankSrc)
		obj := p.devVM.NewTaintedString("PLACEHOLDER", taint.Bit(0))
		obj.CorID = "pw"
		for i := 0; i < 10; i++ {
			p.devVM.NewString("framework")
		}
		if restricted {
			p.dev.Restricted = taint.Bit(0)
		}
		if p.dev.BeginWarmup() == 0 {
			t.Fatal("warm-up refused")
		}
		var objs []ObjectState
		for {
			c, err := p.dev.CaptureWarmup(4)
			if err != nil {
				t.Fatalf("capture warmup: %v", err)
			}
			if c == nil {
				break
			}
			wire = append(wire, c.Encode()...)
			objs = append(objs, c.Objects...)
			if c.Final {
				break
			}
		}
		p.dev.WarmupAcked()
		// Mutate the cor object after its chunk would have shipped: on the
		// warm delta path a restricted object always looks "never shipped",
		// so this exercises the second filter too.
		obj.Str = "PLACEHOLDER2"
		p.devVM.Heap.MarkDirty(obj)
		m, err := p.dev.CaptureMigration(nil, vm.StopMigrateTaint)
		if err != nil {
			t.Fatalf("capture migration: %v", err)
		}
		if m.WarmEpoch == 0 {
			t.Fatal("trigger migration did not take the warm path")
		}
		wire = append(wire, m.Encode()...)
		objs = append(objs, m.Objects...)
		ids, cors = collectCorIDs(objs)
		return wire, ids, cors, p.dev.Stats.Withheld
	}

	wire, ids, cors, withheld := run(false)
	if !cors["pw"] {
		t.Fatalf("unrestricted run must ship the cor object (cors=%v)", cors)
	}
	if !bytes.Contains(wire, []byte("pw")) {
		t.Fatal("unrestricted run: cor ID missing from wire bytes")
	}
	if withheld != 0 {
		t.Fatalf("unrestricted run withheld %d objects", withheld)
	}
	sensIDs := ids

	wire, ids, cors, withheld = run(true)
	if cors["pw"] {
		t.Fatal("server-only cor object shipped in a DSM payload")
	}
	if bytes.Contains(wire, []byte("pw")) {
		t.Fatal("server-only cor ID appears in DSM wire bytes")
	}
	if withheld < 2 {
		t.Fatalf("withheld = %d, want >= 2 (warm-up pass + trigger delta)", withheld)
	}
	// Everything else still ships: the runs differ by exactly the cor object.
	if len(ids) != len(sensIDs)-1 {
		t.Fatalf("restricted run shipped %d objects, unrestricted %d; want a difference of exactly 1",
			len(ids), len(sensIDs))
	}
}

// TestRestrictedFrameFailsCapture pins the live-state rule: a frame register
// carrying (or referencing) server-only taint cannot be silently withheld —
// the whole capture fails with ErrRestricted so the node can map it to a
// policy denial.
func TestRestrictedFrameFailsCapture(t *testing.T) {
	p := newPair(t, bankSrc)
	obj := p.devVM.NewTaintedString("PLACEHOLDER", taint.Bit(0))
	obj.CorID = "pw"
	p.dev.Restricted = taint.Bit(0)
	m := p.prog.Method("Bank", "login")
	if m == nil {
		t.Fatal("no Bank.login")
	}

	// A register referencing the restricted object.
	th := &vm.Thread{VM: p.devVM, Frames: []*vm.Frame{{
		Method: m, Regs: make([]vm.Value, 8),
	}}}
	th.Frames[0].Regs[0] = vm.RefVal(obj)
	if _, err := p.dev.CaptureMigration(th, vm.StopMigrateTaint); !errors.Is(err, ErrRestricted) {
		t.Fatalf("capture with restricted ref = %v, want ErrRestricted", err)
	}

	// A register tag carrying the restricted bit directly.
	p.dev.initialSent = false
	th = &vm.Thread{VM: p.devVM, Frames: []*vm.Frame{{
		Method: m, Regs: make([]vm.Value, 8), Tags: make([]taint.Tag, 8),
	}}}
	th.Frames[0].Tags[1] = taint.Bit(0)
	if _, err := p.dev.CaptureMigration(th, vm.StopMigrateTaint); !errors.Is(err, ErrRestricted) {
		t.Fatalf("capture with restricted reg tag = %v, want ErrRestricted", err)
	}
}

// TestRestrictedInboundRefused pins the admission half: an endpoint with a
// restricted mask refuses inbound migrations and warm-up chunks carrying the
// bit, whether on the object tag, a slot tag, a frame register, or the
// result.
func TestRestrictedInboundRefused(t *testing.T) {
	newNode := func() *Endpoint {
		p := newPair(t, bankSrc)
		p.node.Restricted = taint.Bit(0)
		return p.node
	}

	obj := ObjectState{ID: 1, Class: "java/lang/String", IsStr: true, CorID: "pw", StrLen: 11, Tag: 1}
	if _, err := newNode().ApplyMigration(&Migration{Seq: 1, Objects: []ObjectState{obj}}); !errors.Is(err, ErrRestricted) {
		t.Fatalf("inbound restricted object = %v, want ErrRestricted", err)
	}

	arr := ObjectState{ID: 3, Class: "java/lang/Array", IsArr: true,
		Elems: []ValueState{{Kind: uint8(vm.KindInt), Masked: true, Tag: 1}}}
	if _, err := newNode().ApplyMigration(&Migration{Seq: 1, Objects: []ObjectState{arr}}); !errors.Is(err, ErrRestricted) {
		t.Fatalf("inbound restricted elem tag = %v, want ErrRestricted", err)
	}

	mig := &Migration{Seq: 1, Frames: []FrameState{{Class: "Bank", Method: "login",
		Regs: []ValueState{{Kind: uint8(vm.KindInt), Masked: true, Tag: 1}}}}}
	if _, err := newNode().ApplyMigration(mig); !errors.Is(err, ErrRestricted) {
		t.Fatalf("inbound restricted frame reg = %v, want ErrRestricted", err)
	}

	mig = &Migration{Seq: 1, Result: ValueState{Kind: uint8(vm.KindInt), Masked: true, Tag: 1}}
	if _, err := newNode().ApplyMigration(mig); !errors.Is(err, ErrRestricted) {
		t.Fatalf("inbound restricted result = %v, want ErrRestricted", err)
	}

	n := newNode()
	chunk := &WarmupChunk{Epoch: 5, Index: 0, Final: true, Objects: []ObjectState{obj}}
	if err := n.ApplyWarmupChunk(chunk); !errors.Is(err, ErrRestricted) {
		t.Fatalf("inbound restricted warmup chunk = %v, want ErrRestricted", err)
	}
	if n.WarmupPending() {
		t.Fatal("refused chunk left buffered warm state behind")
	}

	// An unrelated bit passes: the screen is per-bit, not per-taint.
	okObj := ObjectState{ID: 5, Class: "java/lang/String", IsStr: true, Str: "plain", StrLen: 5, Tag: 2}
	if _, err := newNode().ApplyMigration(&Migration{Seq: 1, Objects: []ObjectState{okObj}}); err != nil {
		t.Fatalf("unrestricted bit refused: %v", err)
	}
}
