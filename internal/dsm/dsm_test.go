package dsm

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"tinman/internal/cor"
	"tinman/internal/taint"
	"tinman/internal/vm"
	"tinman/internal/vm/asm"
)

// --- test resolvers ---

// nodeResolver serves plaintext from a cor store and mints derived cors for
// freshly tainted strings.
type nodeResolver struct {
	store   *cor.Store
	derived int
}

func (r *nodeResolver) Fill(id string, length int) (string, taint.Tag, bool) {
	if rec := r.store.Get(id); rec != nil {
		return rec.Plaintext, rec.Tag(), true
	}
	return "", taint.None, false
}

func (r *nodeResolver) MaskID(o *vm.Object) string {
	parents := r.store.ByTag(o.Tag)
	if len(parents) == 0 {
		return ""
	}
	r.derived++
	id := fmt.Sprintf("derived-%s-%d", parents[0].ID, r.derived)
	if _, err := r.store.Derive(parents[0].ID, id, o.Str); err != nil {
		return ""
	}
	return id
}

// deviceResolver serves placeholders only; it can synthesize placeholders
// for derived cors it has never seen, but can never mint cor IDs itself.
type deviceResolver struct {
	views map[string]cor.DeviceView
}

func newDeviceResolver(store *cor.Store) *deviceResolver {
	d := &deviceResolver{views: make(map[string]cor.DeviceView)}
	for _, v := range store.DeviceViews() {
		d.views[v.ID] = v
	}
	return d
}

func (r *deviceResolver) Fill(id string, length int) (string, taint.Tag, bool) {
	if v, ok := r.views[id]; ok {
		return v.Placeholder, taint.Bit(v.Bit), true
	}
	// A derived cor minted on the node: same-length deterministic dummy.
	return cor.Placeholder(id, length), taint.None, true
}

func (r *deviceResolver) MaskID(o *vm.Object) string { return "" }

// --- wire codec tests ---

func TestMigrationEncodeDecodeRoundTrip(t *testing.T) {
	m := &Migration{
		Seq:     7,
		Reason:  vm.StopMigrateTaint,
		Initial: true,
		Result:  ValueState{Kind: uint8(vm.KindInt), Int: -42, Tag: 3},
		Frames: []FrameState{{
			Class: "Bank", Method: "login", PC: 12, RetReg: 3,
			Regs: []ValueState{
				{Kind: uint8(vm.KindInt), Int: 99},
				{Kind: uint8(vm.KindFloat), Float: 2.5},
				{Kind: uint8(vm.KindRef), RefID: 41},
				{Kind: uint8(vm.KindInt), Masked: true, Tag: 1},
			},
		}},
		Objects: []ObjectState{
			{ID: 41, Class: "java/lang/String", IsStr: true, Str: "hello", StrLen: 5, Version: 2},
			{ID: 43, Class: "java/lang/String", IsStr: true, CorID: "pw", StrLen: 8, Tag: 1, Version: 1},
			{ID: 45, Class: "Acct", Fields: []ValueState{{Kind: uint8(vm.KindInt), Int: 5}}},
			{ID: 47, Class: "java/lang/Array", IsArr: true, Elems: []ValueState{{Kind: uint8(vm.KindRef), RefID: 41}}},
		},
	}
	buf := m.Encode()
	got, err := DecodeMigration(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 7 || got.Reason != vm.StopMigrateTaint || !got.Initial {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Frames) != 1 || got.Frames[0].PC != 12 || len(got.Frames[0].Regs) != 4 {
		t.Fatalf("frames mismatch: %+v", got.Frames)
	}
	if !got.Frames[0].Regs[3].Masked || got.Frames[0].Regs[3].Tag != 1 {
		t.Fatalf("masked reg lost: %+v", got.Frames[0].Regs[3])
	}
	if len(got.Objects) != 4 {
		t.Fatalf("objects = %d", len(got.Objects))
	}
	if got.Objects[0].Str != "hello" {
		t.Fatalf("plain string content lost")
	}
	if got.Objects[1].Str != "" || got.Objects[1].CorID != "pw" || got.Objects[1].StrLen != 8 {
		t.Fatalf("cor object must carry no content: %+v", got.Objects[1])
	}
	if got.Result.Int != -42 {
		t.Fatalf("result = %+v", got.Result)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{99},                                  // wrong version
		{1, 1, 0, 0},                          // truncated
		append((&Migration{}).Encode(), 0xFF), // trailing bytes
	}
	for i, buf := range cases {
		if _, err := DecodeMigration(buf); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

// Property: encode/decode is the identity on headers and object counts for
// arbitrary small migrations.
func TestCodecRoundTripProperty(t *testing.T) {
	prop := func(seq uint16, nObjs uint8, strContent string) bool {
		m := &Migration{Seq: uint64(seq), Result: ValueState{Kind: uint8(vm.KindRef)}}
		for i := 0; i < int(nObjs%8); i++ {
			m.Objects = append(m.Objects, ObjectState{
				ID: uint64(i + 1), Class: "C", IsStr: true,
				Str: strContent, StrLen: len(strContent),
			})
		}
		got, err := DecodeMigration(m.Encode())
		if err != nil {
			return false
		}
		if got.Seq != uint64(seq) || len(got.Objects) != len(m.Objects) {
			return false
		}
		for i := range got.Objects {
			if got.Objects[i].Str != strContent {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// --- endpoint pair tests ---

// bankSrc: the paper's running example — hash the password, build the
// request string (fig 5 / fig 11).
const bankSrc = `
class Bank
  method login 2 8          ; r0 = account, r1 = passwd
    hash r2, r1             ; tainted heap->heap: offload trigger on device
    conststr r3, "user="
    strcat r4, r3, r0
    conststr r5, "&hash="
    strcat r6, r4, r5
    strcat r7, r6, r2
    return r7
  end
end`

type pair struct {
	store    *cor.Store
	devVM    *vm.VM
	nodeVM   *vm.VM
	dev      *Endpoint
	node     *Endpoint
	prog     *vm.Program
	nodeProg *vm.Program
}

func newPair(t *testing.T, src string) *pair {
	t.Helper()
	devProg, err := asm.Assemble("bank", src)
	if err != nil {
		t.Fatal(err)
	}
	nodeProg, err := asm.Assemble("bank", src)
	if err != nil {
		t.Fatal(err)
	}
	store := cor.NewStore()
	if _, err := store.Register("pw", "hunter2!", "bank password", "bank.com"); err != nil {
		t.Fatal(err)
	}
	devVM := vm.New(vm.Config{Program: devProg, Heap: vm.NewHeap(1, 2), Policy: taint.Asymmetric})
	nodeVM := vm.New(vm.Config{Program: nodeProg, Heap: vm.NewHeap(2, 2), Policy: taint.Full})
	p := &pair{
		store:  store,
		devVM:  devVM,
		nodeVM: nodeVM,
		dev:    NewEndpoint(DeviceSide, devVM, newDeviceResolver(store)),
		node:   NewEndpoint(NodeSide, nodeVM, &nodeResolver{store: store}),
		prog:   devProg, nodeProg: nodeProg,
	}
	return p
}

// ship encodes on one side and applies on the other, mimicking the network.
func ship(t *testing.T, from, to *Endpoint, th *vm.Thread, reason vm.StopReason) (*vm.Thread, *Migration) {
	t.Helper()
	m, err := from.CaptureMigration(th, reason)
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	decoded, err := DecodeMigration(m.Encode())
	if err != nil {
		t.Fatalf("wire: %v", err)
	}
	out, err := to.ApplyMigration(decoded)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	return out, decoded
}

func TestFullOffloadRoundTrip(t *testing.T) {
	p := newPair(t, bankSrc)
	rec := p.store.Get("pw")

	// Device materializes the tainted placeholder (widget selection, §4.1).
	placeholder := p.devVM.NewTaintedString(rec.Placeholder, rec.Tag())
	placeholder.CorID = rec.ID
	account := p.devVM.NewString("alice")

	p.devVM.Hooks.OnTaintedAccess = func(tag taint.Tag, ev taint.Event) bool { return true }
	th, err := p.devVM.NewThread(p.prog.Method("Bank", "login"), vm.RefVal(account), vm.RefVal(placeholder))
	if err != nil {
		t.Fatal(err)
	}

	// 1. Device runs until the hash touches the placeholder.
	stop, err := th.Run()
	if err != nil || stop != vm.StopMigrateTaint {
		t.Fatalf("device run: stop=%v err=%v", stop, err)
	}

	// 2. Migrate device -> node; node resumes with real plaintext.
	nodeTh, _ := ship(t, p.dev, p.node, th, stop)
	if nodeTh == nil {
		t.Fatal("no thread arrived at node")
	}
	// The node heap must hold the plaintext where the device held the
	// placeholder.
	nodePw := p.nodeVM.Heap.Get(placeholder.ID)
	if nodePw == nil || nodePw.Str != "hunter2!" {
		t.Fatalf("node sees %q, want plaintext", nodePw.Str)
	}

	stop, err = nodeTh.Run()
	if err != nil || stop != vm.StopDone {
		t.Fatalf("node run: stop=%v err=%v", stop, err)
	}
	request := nodeTh.Result.Ref
	if !strings.Contains(request.Str, "user=alice&hash=") {
		t.Fatalf("request = %q", request.Str)
	}
	if request.Tag.Empty() {
		t.Fatal("request must be tainted on the node (derived cor)")
	}

	// 3. Migrate result back; the device receives a placeholder, never the
	// tainted content.
	_, back := ship(t, p.node, p.dev, nodeTh, vm.StopDone)
	devReq := p.devVM.Heap.Get(request.ID)
	if devReq == nil {
		t.Fatal("request object did not sync back")
	}
	if devReq.Str == request.Str {
		t.Fatal("SECURITY: tainted request content leaked to the device")
	}
	if len(devReq.Str) != len(request.Str) {
		t.Fatalf("placeholder length %d != content length %d", len(devReq.Str), len(request.Str))
	}
	if devReq.CorID == "" || !strings.HasPrefix(devReq.CorID, "derived-pw") {
		t.Fatalf("derived cor id = %q", devReq.CorID)
	}
	res, err := p.dev.DecodeResult(back)
	if err != nil || res.Ref != devReq {
		t.Fatalf("result decode: %v %v", res, err)
	}

	// No plaintext anywhere on the device heap (the paper's §5.1 claim).
	for _, o := range p.devVM.Heap.Objects() {
		if o.IsStr && strings.Contains(o.Str, "hunter2") {
			t.Fatalf("SECURITY: plaintext found on device heap in object #%d", o.ID)
		}
	}
}

func TestInitialSyncThenDirtyOnly(t *testing.T) {
	p := newPair(t, bankSrc)
	// Fill the device heap with framework objects.
	for i := 0; i < 50; i++ {
		p.devVM.NewString(strings.Repeat("x", 100))
	}
	m1, err := p.dev.CaptureMigration(nil, vm.StopMigrateTaint)
	if err != nil {
		t.Fatal(err)
	}
	if !m1.Initial || len(m1.Objects) != 50 {
		t.Fatalf("first sync: initial=%v objects=%d", m1.Initial, len(m1.Objects))
	}
	if _, err := p.node.ApplyMigration(m1); err != nil {
		t.Fatal(err)
	}

	// Touch one object; the next sync ships only it.
	objs := p.devVM.Heap.Objects()
	objs[3].Str = "changed"
	p.devVM.Heap.MarkDirty(objs[3])
	m2, err := p.dev.CaptureMigration(nil, vm.StopMigrateTaint)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Initial || len(m2.Objects) != 1 {
		t.Fatalf("second sync: initial=%v objects=%d, want dirty-only", m2.Initial, len(m2.Objects))
	}
	if p.dev.Stats.Syncs != 2 || p.dev.Stats.InitBytes == 0 || p.dev.Stats.DirtyBytes == 0 {
		t.Fatalf("stats = %+v", p.dev.Stats)
	}
	if p.dev.Stats.InitBytes < 50*p.dev.Stats.DirtyBytes/2 {
		t.Fatalf("init sync (%dB) should dwarf dirty sync (%dB)", p.dev.Stats.InitBytes, p.dev.Stats.DirtyBytes)
	}
}

func TestApplyDoesNotEchoDirty(t *testing.T) {
	p := newPair(t, bankSrc)
	p.devVM.NewString("hello")
	m, _ := p.dev.CaptureMigration(nil, vm.StopMigrateTaint)
	if _, err := p.node.ApplyMigration(m); err != nil {
		t.Fatal(err)
	}
	if p.nodeVM.Heap.DirtyCount() != 0 {
		t.Fatal("applied objects must not be considered locally dirty (echo loop)")
	}
}

func TestMaskedPrimitiveKeepsNodeValue(t *testing.T) {
	p := newPair(t, bankSrc)
	// Warm both sides.
	m, _ := p.dev.CaptureMigration(nil, vm.StopMigrateTaint)
	p.node.ApplyMigration(m)
	m, _ = p.node.CaptureMigration(nil, vm.StopMigrateTaint)
	p.dev.ApplyMigration(m)

	// The node holds an object with a tainted primitive field (e.g. a char
	// of the password read into a field).
	cls := p.nodeVM.Program.Class("Bank")
	_ = cls
	holder := p.nodeVM.Heap.AllocArray(p.nodeVM.ArrayClass(), 1)
	holder.Elems[0] = vm.IntVal(0x68) // 'h'
	holder.SetElemTag(0, taint.Bit(0))
	p.nodeVM.Heap.MarkDirty(holder)

	m, err := p.node.CaptureMigration(nil, vm.StopMigrateIdle)
	if err != nil {
		t.Fatal(err)
	}
	decoded, _ := DecodeMigration(m.Encode())
	if _, err := p.dev.ApplyMigration(decoded); err != nil {
		t.Fatal(err)
	}
	devHolder := p.devVM.Heap.Get(holder.ID)
	if devHolder.Elems[0].Int == 0x68 {
		t.Fatal("SECURITY: tainted primitive datum leaked to the device")
	}
	if devHolder.ElemTag(0).Empty() {
		t.Fatal("masked primitive must keep its tag on the device")
	}

	// Round-trip back: the masked (zero) device copy must not clobber the
	// node's authoritative value.
	p.devVM.Heap.MarkDirty(devHolder)
	m2, _ := p.dev.CaptureMigration(nil, vm.StopMigrateTaint)
	decoded2, _ := DecodeMigration(m2.Encode())
	if _, err := p.node.ApplyMigration(decoded2); err != nil {
		t.Fatal(err)
	}
	if got := p.nodeVM.Heap.Get(holder.ID).Elems[0].Int; got != 0x68 {
		t.Fatalf("node value clobbered by device echo: %#x", got)
	}
}

func TestDeviceCannotMaskUnknownTaintedString(t *testing.T) {
	p := newPair(t, bankSrc)
	// A tainted string with no cor ID on the *device* is a protocol
	// violation (it can only arise if the asymmetric policy was bypassed).
	s := p.devVM.NewTaintedString("mystery", taint.Bit(9))
	_ = s
	if _, err := p.dev.CaptureMigration(nil, vm.StopMigrateTaint); err == nil {
		t.Fatal("expected masking error for tainted string with no cor ID on device")
	}
}

func TestUnknownCorRejectedOnApply(t *testing.T) {
	p := newPair(t, bankSrc)
	m := &Migration{
		Seq: 1, Reason: vm.StopMigrateTaint, Initial: true,
		Result: ValueState{Kind: uint8(vm.KindRef)},
		Objects: []ObjectState{{
			ID: 1, Class: "java/lang/String", IsStr: true, CorID: "no-such-cor", StrLen: 5, Tag: 1,
		}},
	}
	if _, err := p.node.ApplyMigration(m); err == nil || !strings.Contains(err.Error(), "unknown cor") {
		t.Fatalf("err = %v, want unknown cor", err)
	}
}

func TestUnknownMethodRejected(t *testing.T) {
	p := newPair(t, bankSrc)
	m := &Migration{
		Seq: 1, Reason: vm.StopMigrateTaint,
		Result: ValueState{Kind: uint8(vm.KindRef)},
		Frames: []FrameState{{Class: "Nope", Method: "x", PC: 0}},
	}
	if _, err := p.node.ApplyMigration(m); err == nil || !strings.Contains(err.Error(), "unknown method") {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownReferenceRejected(t *testing.T) {
	p := newPair(t, bankSrc)
	m := &Migration{
		Seq: 1, Reason: vm.StopMigrateTaint,
		Result: ValueState{Kind: uint8(vm.KindRef)},
		Frames: []FrameState{{
			Class: "Bank", Method: "login", PC: 0,
			Regs: []ValueState{{Kind: uint8(vm.KindRef), RefID: 9999}},
		}},
	}
	if _, err := p.node.ApplyMigration(m); err == nil || !strings.Contains(err.Error(), "unknown object") {
		t.Fatalf("err = %v", err)
	}
}

func TestCorLengthMismatchRejected(t *testing.T) {
	p := newPair(t, bankSrc)
	m := &Migration{
		Seq: 1, Reason: vm.StopMigrateTaint, Initial: true,
		Result: ValueState{Kind: uint8(vm.KindRef)},
		Objects: []ObjectState{{
			ID: 1, Class: "java/lang/String", IsStr: true, CorID: "pw", StrLen: 3, Tag: 1,
		}},
	}
	if _, err := p.node.ApplyMigration(m); err == nil || !strings.Contains(err.Error(), "length mismatch") {
		t.Fatalf("err = %v", err)
	}
}

func TestLockTable(t *testing.T) {
	lt := NewLockTable()
	if !lt.Acquire(1, DeviceSide) {
		t.Fatal("first acquire should succeed")
	}
	if lt.Acquire(1, NodeSide) {
		t.Fatal("acquire from other side should fail (forces migration)")
	}
	lt.Release(1)
	if lt.Acquire(1, NodeSide) {
		t.Fatal("home side persists across release")
	}
	lt.MoveHome(1, NodeSide)
	if !lt.Acquire(1, NodeSide) {
		t.Fatal("acquire after home move should succeed")
	}
	if s, ok := lt.Home(1); !ok || s != NodeSide {
		t.Fatalf("home = %v %v", s, ok)
	}
	if _, ok := lt.Home(99); ok {
		t.Fatal("unknown lock should have no home")
	}
}

func TestSideString(t *testing.T) {
	if DeviceSide.String() != "device" || NodeSide.String() != "node" {
		t.Fatal("side names wrong")
	}
	if DeviceSide.Other() != NodeSide || NodeSide.Other() != DeviceSide {
		t.Fatal("Other() wrong")
	}
}
