//go:build !race

package dsm

const raceEnabled = false
