// Speculative warm-up (the pre-migration pipeline): the device ships its
// initial heap snapshot in background chunks while execution continues, so
// the trigger-time migration carries only the delta of objects mutated (or
// created) since each chunk was captured.
//
// Protocol sketch:
//
//   - The device mints a fresh warm-up *epoch* per attempt (BeginWarmup) and
//     snapshots the heap's object list. CaptureWarmup then emits ordered
//     WarmupChunks (index 0..n, last one flagged Final), recording the
//     Version each object was shipped at.
//   - The node buffers chunks per epoch and only materializes them into its
//     heap when the Final chunk arrives — a torn warm-up (crash, reconnect,
//     handoff) leaves the node heap untouched. Index or epoch mismatch drops
//     the whole buffered epoch.
//   - At the taint trigger, CaptureMigration stamps the migration with the
//     completed epoch (Migration.WarmEpoch) and ships only objects whose
//     Version differs from the shipped record. The node admits the delta
//     only if ConsumeWarmup matches a ready epoch; otherwise the sender
//     falls back to the cold full-snapshot path.
//
// Correctness never depends on the speculation: every failure mode ends in
// "drop warm state, run the cold path".
package dsm

import (
	"fmt"

	"tinman/internal/vm"
)

// WarmupChunk is one ordered slice of the background initial snapshot.
type WarmupChunk struct {
	// Epoch identifies the warm-up attempt; chunks from different epochs
	// never mix. Zero is invalid (it is the cold-path sentinel).
	Epoch uint64
	// Index orders chunks within the epoch, starting at 0.
	Index int
	// Final marks the last chunk of the snapshot.
	Final bool
	// Objects uses the same serialized form as Migration — tainted content
	// still never travels by value, only cor IDs.
	Objects []ObjectState
}

// Encode serializes the chunk to its wire form (pooled working buffer,
// exact-size result, like Migration.Encode).
func (c *WarmupChunk) Encode() []byte {
	e := encPool.Get().(*encoder)
	e.buf = e.buf[:0]
	c.encodeInto(e)
	out := make([]byte, len(e.buf))
	copy(out, e.buf)
	encPool.Put(e)
	return out
}

// EncodedSize returns len(c.Encode()) without allocating the result.
func (c *WarmupChunk) EncodedSize() int {
	e := encPool.Get().(*encoder)
	e.buf = e.buf[:0]
	c.encodeInto(e)
	n := len(e.buf)
	encPool.Put(e)
	return n
}

func (c *WarmupChunk) encodeInto(e *encoder) {
	e.u8(wireVersion)
	e.u64(c.Epoch)
	e.u64(uint64(c.Index))
	e.b(c.Final)
	e.u64(uint64(len(c.Objects)))
	for i := range c.Objects {
		e.object(&c.Objects[i])
	}
}

// DecodeWarmupChunk parses a wire-form warm-up chunk with the same guards as
// DecodeMigration: truncation, implausible counts, trailing bytes.
func DecodeWarmupChunk(buf []byte) (*WarmupChunk, error) {
	d := &decoder{buf: buf}
	if v := d.u8(); v != wireVersion && d.err == nil {
		return nil, fmt.Errorf("dsm: warmup chunk wire version %d, want %d", v, wireVersion)
	}
	c := &WarmupChunk{}
	c.Epoch = d.u64()
	c.Index = int(d.u64())
	c.Final = d.b()
	no := d.u64()
	if d.err == nil && no > uint64(len(buf)) {
		d.fail("warmup object count %d implausible", no)
	}
	if d.err == nil {
		c.Objects = make([]ObjectState, no)
		for i := range c.Objects {
			d.object(&c.Objects[i])
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(buf) {
		return nil, fmt.Errorf("dsm: decode: %d trailing bytes after warmup chunk", len(buf)-d.off)
	}
	if c.Epoch == 0 {
		return nil, fmt.Errorf("dsm: warmup chunk with zero epoch")
	}
	return c, nil
}

// warmupSend is the sender-side (device) state of one warm-up attempt.
type warmupSend struct {
	epoch   uint64
	pending []*vm.Object
	next    int // next chunk index to emit
	// shipped records the Version each object had when its chunk was
	// captured: the trigger-time delta is every object whose Version moved
	// (the heap never deletes, so version compare is complete).
	shipped map[uint64]uint64
	sent    bool // all chunks emitted
	acked   bool // final chunk acknowledged by the node
}

// warmupRecv is the receiver-side (node) state of one warm-up epoch. Chunks
// are buffered and only applied when Final arrives, so objects may freely
// reference objects in later chunks and a torn warm-up leaves the heap
// untouched.
type warmupRecv struct {
	epoch uint64
	next  int // expected next chunk index
	objs  []ObjectState
	ready bool
}

// BeginWarmup starts a speculative warm-up attempt on the sending side,
// snapshotting the current object list, and returns the minted epoch. It
// replaces any previous attempt. Returns 0 if the initial sync already
// happened (nothing to warm).
func (e *Endpoint) BeginWarmup() uint64 {
	if e.initialSent {
		return 0
	}
	e.warmSeq++
	e.warm = &warmupSend{
		epoch:   e.warmSeq,
		pending: e.VM.Heap.Objects(),
		shipped: make(map[uint64]uint64),
	}
	return e.warm.epoch
}

// CaptureWarmup emits the next chunk of the active warm-up, covering at most
// maxObjs objects, or nil when every chunk has been emitted. The chunk
// captures each object's state as of this call; later mutations surface in
// the trigger-time delta via the Version record.
func (e *Endpoint) CaptureWarmup(maxObjs int) (*WarmupChunk, error) {
	w := e.warm
	if w == nil || w.sent {
		return nil, nil
	}
	if maxObjs <= 0 {
		maxObjs = 64
	}
	n := maxObjs
	if n > len(w.pending) {
		n = len(w.pending)
	}
	c := &WarmupChunk{Epoch: w.epoch, Index: w.next, Objects: make([]ObjectState, 0, n)}
	for _, o := range w.pending[:n] {
		if e.restricted(o.Tag) {
			// Server-only tainted objects never ship. Deliberately not
			// recorded in shipped either, so the trigger-time delta sees
			// them again and CaptureMigration's own filter withholds them —
			// the two filters stay consistent without coordination.
			e.Stats.Withheld++
			continue
		}
		os, err := e.encodeObject(o)
		if err != nil {
			e.AbortWarmup()
			return nil, err
		}
		c.Objects = append(c.Objects, os)
		w.shipped[o.ID] = o.Version
	}
	w.pending = w.pending[n:]
	w.next++
	if len(w.pending) == 0 {
		c.Final = true
		w.sent = true
	}
	e.Stats.WarmupChunks++
	e.Stats.WarmupBytes += c.EncodedSize()
	return c, nil
}

// WarmupAcked records the node's acknowledgement of the Final chunk: only
// then may CaptureMigration take the warm delta path.
func (e *Endpoint) WarmupAcked() {
	if e.warm != nil && e.warm.sent {
		e.warm.acked = true
	}
}

// AbortWarmup discards the sending-side warm-up attempt; the next capture
// takes the cold path (and a new attempt may be started later).
func (e *Endpoint) AbortWarmup() { e.warm = nil }

// WarmupEpoch returns the active attempt's epoch, or 0 when none.
func (e *Endpoint) WarmupEpoch() uint64 {
	if e.warm == nil {
		return 0
	}
	return e.warm.epoch
}

// WarmupReady reports whether the warm delta path is armed: every chunk
// shipped and the final one acknowledged.
func (e *Endpoint) WarmupReady() bool {
	return e.warm != nil && e.warm.acked
}

// ApplyWarmupChunk buffers an incoming chunk on the receiving side and, on
// the Final chunk, materializes the whole epoch into the heap. Any ordering
// violation (index gap, epoch mix, chunk after Final) or apply failure drops
// the buffered epoch entirely and returns an error so the sender falls back
// to the cold path.
func (e *Endpoint) ApplyWarmupChunk(c *WarmupChunk) error {
	if c.Epoch == 0 {
		return fmt.Errorf("dsm: %s: warmup chunk with zero epoch", e.Side)
	}
	if c.Index == 0 {
		// A new epoch always supersedes whatever was buffered or ready.
		e.warmRecv = &warmupRecv{epoch: c.Epoch}
	}
	r := e.warmRecv
	if r == nil || r.epoch != c.Epoch || r.ready || r.next != c.Index {
		e.warmRecv = nil
		return fmt.Errorf("dsm: %s: warmup chunk epoch %d index %d out of order", e.Side, c.Epoch, c.Index)
	}
	if !e.Restricted.Empty() {
		for i := range c.Objects {
			if err := e.screenObject(&c.Objects[i]); err != nil {
				e.warmRecv = nil
				return err
			}
		}
	}
	r.objs = append(r.objs, c.Objects...)
	r.next++
	if !c.Final {
		return nil
	}
	// Final chunk: adopt shells first so references resolve, then fill.
	for i := range r.objs {
		if err := e.adoptObject(&r.objs[i]); err != nil {
			e.warmRecv = nil
			return err
		}
	}
	for i := range r.objs {
		if err := e.fillObject(&r.objs[i]); err != nil {
			e.warmRecv = nil
			return err
		}
	}
	// Adopted peer state is not locally dirty (same rule as ApplyMigration).
	e.VM.Heap.ClearDirty()
	r.objs = nil
	r.ready = true
	return nil
}

// ConsumeWarmup admits a warm-path migration: it returns true only when a
// ready warm-up with exactly the given epoch is held, and clears the warm
// state either way (a mismatch means the state is stale for this trigger).
func (e *Endpoint) ConsumeWarmup(epoch uint64) bool {
	r := e.warmRecv
	e.warmRecv = nil
	return r != nil && r.ready && r.epoch == epoch
}

// DropWarmup discards any receiving-side warm state (shard handoff, device
// teardown). Safe when none is held.
func (e *Endpoint) DropWarmup() { e.warmRecv = nil }

// WarmupPending reports whether the receiving side holds buffered or ready
// warm state (exposed for tests and shard bookkeeping).
func (e *Endpoint) WarmupPending() bool { return e.warmRecv != nil }
