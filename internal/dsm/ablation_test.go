package dsm

import (
	"strings"
	"testing"

	"tinman/internal/vm"
)

// TestDirtySyncBeatsFullSync quantifies the design choice DESIGN.md calls
// out: after the initial sync, dirty tracking ships orders of magnitude
// fewer bytes than naive full-heap synchronization.
func TestDirtySyncBeatsFullSync(t *testing.T) {
	run := func(mode SyncMode) SyncStats {
		p := newPair(t, bankSrc)
		p.dev.Mode = mode
		// A sizeable framework heap.
		for i := 0; i < 200; i++ {
			p.devVM.NewString(strings.Repeat("x", 200))
		}
		// Initial sync.
		m, err := p.dev.CaptureMigration(nil, vm.StopMigrateTaint)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.node.ApplyMigration(m); err != nil {
			t.Fatal(err)
		}
		// Five later syncs, each after touching one object.
		objs := p.devVM.Heap.Objects()
		for i := 0; i < 5; i++ {
			objs[i].Str = "touched"
			p.devVM.Heap.MarkDirty(objs[i])
			m, err := p.dev.CaptureMigration(nil, vm.StopMigrateTaint)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := p.node.ApplyMigration(m); err != nil {
				t.Fatal(err)
			}
		}
		return p.dev.Stats
	}

	dirty := run(SyncDirty)
	full := run(SyncFull)

	if dirty.Syncs != full.Syncs {
		t.Fatalf("sync counts differ: %d vs %d", dirty.Syncs, full.Syncs)
	}
	// Same initial cost...
	if dirty.InitBytes == 0 || full.InitBytes == 0 {
		t.Fatal("missing initial sync")
	}
	// ...but the steady-state cost differs by orders of magnitude. (In
	// SyncFull mode, post-initial syncs are counted as dirty bytes since
	// Initial is only true once.)
	if full.DirtyBytes < 20*dirty.DirtyBytes {
		t.Fatalf("full sync %dB should dwarf dirty sync %dB", full.DirtyBytes, dirty.DirtyBytes)
	}
}
