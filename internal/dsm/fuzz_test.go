package dsm

import (
	"testing"

	"tinman/internal/vm"
)

// FuzzDecodeMigration hardens the wire decoder against hostile input: the
// trusted node decodes migrations sent by (possibly compromised) devices,
// so a crash here is a denial-of-service on the vault. Run with
// `go test -fuzz=FuzzDecodeMigration ./internal/dsm` to explore; the seeds
// run as ordinary tests.
func FuzzDecodeMigration(f *testing.F) {
	// Seeds: a valid migration, a truncation, and mutations.
	valid := (&Migration{
		Seq: 3, Reason: vm.StopMigrateTaint, Initial: true, TriggerTag: 1,
		Result: ValueState{Kind: uint8(vm.KindInt), Int: 9},
		Frames: []FrameState{{Class: "C", Method: "m", PC: 1, Regs: []ValueState{{Kind: uint8(vm.KindRef), RefID: 7}}}},
		Objects: []ObjectState{
			{ID: 7, Class: "java/lang/String", IsStr: true, Str: "x", StrLen: 1},
			{ID: 9, Class: "A", Fields: []ValueState{{Kind: uint8(vm.KindInt), Int: 1, Tag: 2, Masked: true}}},
		},
	}).Encode()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{1, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMigration(data)
		if err != nil {
			return
		}
		// Whatever decodes must re-encode and decode to the same header.
		m2, err := DecodeMigration(m.Encode())
		if err != nil {
			t.Fatalf("re-decode of re-encode failed: %v", err)
		}
		if m2.Seq != m.Seq || m2.Reason != m.Reason || len(m2.Objects) != len(m.Objects) {
			t.Fatal("re-encode not stable")
		}
	})
}
