package dsm

import (
	"testing"

	"tinman/internal/vm"
)

// FuzzDecodeMigration hardens the wire decoder against hostile input: the
// trusted node decodes migrations sent by (possibly compromised) devices,
// so a crash here is a denial-of-service on the vault. Run with
// `go test -fuzz=FuzzDecodeMigration ./internal/dsm` to explore; the seeds
// run as ordinary tests.
func FuzzDecodeMigration(f *testing.F) {
	// Seeds: a valid migration, a truncation, and mutations.
	valid := (&Migration{
		Seq: 3, Reason: vm.StopMigrateTaint, Initial: true, TriggerTag: 1,
		Result: ValueState{Kind: uint8(vm.KindInt), Int: 9},
		Frames: []FrameState{{Class: "C", Method: "m", PC: 1, Regs: []ValueState{{Kind: uint8(vm.KindRef), RefID: 7}}}},
		Objects: []ObjectState{
			{ID: 7, Class: "java/lang/String", IsStr: true, Str: "x", StrLen: 1},
			{ID: 9, Class: "A", Fields: []ValueState{{Kind: uint8(vm.KindInt), Int: 1, Tag: 2, Masked: true}}},
		},
	}).Encode()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{1, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMigration(data)
		if err != nil {
			return
		}
		// Whatever decodes must re-encode and decode to the same header.
		m2, err := DecodeMigration(m.Encode())
		if err != nil {
			t.Fatalf("re-decode of re-encode failed: %v", err)
		}
		if m2.Seq != m.Seq || m2.Reason != m.Reason || len(m2.Objects) != len(m.Objects) || m2.WarmEpoch != m.WarmEpoch {
			t.Fatal("re-encode not stable")
		}
	})
}

// FuzzDecodeWarmupChunk hardens the warm-up chunk framing the same way: the
// node decodes background chunks from possibly compromised devices, and any
// accepted chunk feeds the ordered-epoch apply path, so both the decoder
// and the ordering guards must hold under arbitrary bytes.
func FuzzDecodeWarmupChunk(f *testing.F) {
	valid := (&WarmupChunk{
		Epoch: 2, Index: 1, Final: true,
		Objects: []ObjectState{
			{ID: 5, Class: "java/lang/String", IsStr: true, Str: "w", StrLen: 1},
			{ID: 9, Class: "B", Elems: []ValueState{{Kind: uint8(vm.KindRef), RefID: 5}}},
		},
	}).Encode()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])                        // truncated mid-object
	f.Add(append(valid, 0x00, 0x01))                   // trailing bytes
	f.Add((&WarmupChunk{Epoch: 7, Index: 3}).Encode()) // out-of-order index
	f.Add((&WarmupChunk{Epoch: 1}).Encode())
	f.Add([]byte{})
	f.Add([]byte{2})
	f.Add([]byte{2, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeWarmupChunk(data)
		if err != nil {
			return
		}
		if c.Epoch == 0 {
			t.Fatal("decoder accepted the cold-path sentinel epoch")
		}
		c2, err := DecodeWarmupChunk(c.Encode())
		if err != nil {
			t.Fatalf("re-decode of re-encode failed: %v", err)
		}
		if c2.Epoch != c.Epoch || c2.Index != c.Index || c2.Final != c.Final || len(c2.Objects) != len(c.Objects) {
			t.Fatal("re-encode not stable")
		}
	})
}
