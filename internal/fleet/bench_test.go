package fleet

import (
	"context"
	"fmt"
	"testing"

	"tinman/internal/policy"
)

// BenchmarkPolicyPush measures one fleet-wide policy install: first
// healthy member assigns the version, the re-stamped snapshot fans out to
// the rest, per-member applied versions update. In-process members, so
// this is the propagation machinery's cost floor (the wire adds one
// OpPolicyInstall round trip per remote member on top).
func BenchmarkPolicyPush(b *testing.B) {
	for _, n := range []int{3, 9} {
		b.Run(fmt.Sprintf("members=%d", n), func(b *testing.B) {
			ids := make([]string, n)
			for i := range ids {
				ids[i] = fmt.Sprintf("node-%d", i)
			}
			f := newTestFleet(b, ids...)
			snap := &policy.Snapshot{
				Whitelist: map[string][]string{"pw": {"bank.com"}},
				Revoked:   []string{"stolen-1"},
			}
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.InstallPolicy(ctx, snap); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRevocationPush measures the fleet-wide revoke+restore pair —
// the "my phone was stolen" path's admin-log propagation.
func BenchmarkRevocationPush(b *testing.B) {
	f := newTestFleet(b, "node-a", "node-b", "node-c")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Revoke("stolen-dev"); err != nil {
			b.Fatal(err)
		}
		if err := f.Restore("stolen-dev"); err != nil {
			b.Fatal(err)
		}
	}
}
