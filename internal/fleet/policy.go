package fleet

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"tinman/internal/cor"
	"tinman/internal/node"
	"tinman/internal/policy"
)

// Fleet-wide policy propagation: a snapshot pushed at any member reaches
// every member, and members that were unreachable during the push are
// brought up to date later (RetryPolicy for transient unreachability,
// Recover's admin-log replay for crashes). Unlike applyAdmin — which aborts
// on the first error because cor registrations must not half-exist — a
// policy push keeps going past failed members: the fleet converging on the
// new policy everywhere it can reach beats blocking the whole push on one
// straggler, and the stale-version guard makes the eventual top-up safe.

// InstallPolicy pushes one validated snapshot fleet-wide and returns the
// stamp every member converges on. The first healthy member installs the
// snapshot and assigns the fleet version (its engine picks
// max(local next, snapshot.Version)); the same snapshot re-stamped with that
// exact version then goes to every other member, so all members agree on
// (version, hash). Per-member applied versions are tracked for
// PolicyVersions/RetryPolicy, and an idempotent install lands in the admin
// log so a recovered member replays it.
func (f *Fleet) InstallPolicy(ctx context.Context, snap *policy.Snapshot) (policy.Stamp, error) {
	if err := snap.Validate(); err != nil {
		return policy.Stamp{}, err
	}
	f.polMu.Lock()
	defer f.polMu.Unlock()

	type target struct {
		id      string
		svc     *node.Service
		healthy bool
	}
	f.mu.RLock()
	targets := make([]target, 0, len(f.order))
	for _, id := range f.order {
		targets = append(targets, target{id, f.members[id].svc, f.healthyLocked(id)})
	}
	f.mu.RUnlock()

	// First healthy member assigns the fleet version.
	var stamp policy.Stamp
	first := ""
	for _, t := range targets {
		if !t.healthy {
			continue
		}
		st, err := t.svc.InstallPolicy(ctx, snap)
		if err != nil {
			// The assigning member rejecting (stale version, validation) means
			// the push as a whole is rejected — nothing has changed anywhere.
			return policy.Stamp{}, err
		}
		stamp, first = st, t.id
		break
	}
	if first == "" {
		return policy.Stamp{}, ErrNoHealthyMembers
	}

	// Push the version-stamped snapshot to everyone else, collecting
	// failures instead of aborting.
	versioned := *snap
	versioned.Version = stamp.Version
	applied := map[string]bool{first: true}
	var errs []string
	for _, t := range targets {
		if t.id == first {
			continue
		}
		if !t.healthy {
			errs = append(errs, fmt.Sprintf("%s: %v", t.id, ErrMemberDown))
			continue
		}
		if _, err := t.svc.InstallPolicy(ctx, &versioned); err != nil && !errors.Is(err, policy.ErrStaleSnapshot) {
			errs = append(errs, fmt.Sprintf("%s: %v", t.id, err))
			continue
		}
		applied[t.id] = true
	}

	if f.policyVers == nil {
		f.policyVers = make(map[string]uint64)
	}
	for id := range applied {
		if stamp.Version > f.policyVers[id] {
			f.policyVers[id] = stamp.Version
		}
	}
	f.lastSnap = &versioned

	// Admin-log entry for future recoveries. A durable member restarting
	// with this version (or newer) already in its store replays this as a
	// stale no-op — that is exactly what ErrStaleSnapshot is for.
	push := versioned
	f.mu.Lock()
	f.adminLog = append(f.adminLog, func(svc *node.Service) error {
		if _, err := svc.InstallPolicy(context.Background(), &push); err != nil && !errors.Is(err, policy.ErrStaleSnapshot) {
			return err
		}
		return nil
	})
	f.mu.Unlock()

	if len(errs) > 0 {
		return stamp, fmt.Errorf("fleet: policy v%d applied to %d/%d members: %s",
			stamp.Version, len(applied), len(targets), strings.Join(errs, "; "))
	}
	return stamp, nil
}

// RetryPolicy re-pushes the last accepted snapshot to every healthy member
// whose applied version is behind it — the top-up pass after a partial
// push. Returns the IDs of members brought up to date this call.
func (f *Fleet) RetryPolicy(ctx context.Context) ([]string, error) {
	f.polMu.Lock()
	defer f.polMu.Unlock()
	if f.lastSnap == nil {
		return nil, nil
	}
	want := f.lastSnap.Version

	f.mu.RLock()
	type target struct {
		id  string
		svc *node.Service
	}
	var behind []target
	for _, id := range f.order {
		if f.policyVers[id] >= want || !f.healthyLocked(id) {
			continue
		}
		behind = append(behind, target{id, f.members[id].svc})
	}
	f.mu.RUnlock()

	var caught []string
	var errs []string
	for _, t := range behind {
		if _, err := t.svc.InstallPolicy(ctx, f.lastSnap); err != nil && !errors.Is(err, policy.ErrStaleSnapshot) {
			errs = append(errs, fmt.Sprintf("%s: %v", t.id, err))
			continue
		}
		f.policyVers[t.id] = want
		caught = append(caught, t.id)
	}
	sort.Strings(caught)
	if len(errs) > 0 {
		return caught, fmt.Errorf("fleet: policy retry: %s", strings.Join(errs, "; "))
	}
	return caught, nil
}

// PolicyVersions reports the last policy snapshot version each member is
// known to have applied (0 for a member that has never applied one).
func (f *Fleet) PolicyVersions() map[string]uint64 {
	f.polMu.Lock()
	defer f.polMu.Unlock()
	out := make(map[string]uint64, len(f.policyVers))
	for id, v := range f.policyVers {
		out[id] = v
	}
	return out
}

// PolicySnapshot returns a copy of the last accepted snapshot (nil if no
// push has happened) — what an admin GET serves fleet-wide.
func (f *Fleet) PolicySnapshot() *policy.Snapshot {
	f.polMu.Lock()
	defer f.polMu.Unlock()
	if f.lastSnap == nil {
		return nil
	}
	snap := *f.lastSnap
	return &snap
}

// SetCorClass replicates a sensitivity reclassification fleet-wide, so
// class-gated sync rules and rate budgets agree on every member.
func (f *Fleet) SetCorClass(ctx context.Context, corID string, class cor.Class) error {
	return f.applyAdmin(func(svc *node.Service) error {
		return svc.SetCorClass(ctx, corID, class)
	})
}
