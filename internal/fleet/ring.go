// Package fleet runs N trusted-node Services behind a consistent-hash
// router: devices are placed on a health-gated member ring, their shards
// move between members via the node package's export/import handoff, and a
// crashed member's devices fail over with gap-free per-device audit
// ordering (see DESIGN.md §fleet).
package fleet

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// defaultVnodes is how many ring points each member contributes. 64 keeps
// the placement spread within a few percent of uniform for small fleets
// while the ring stays tiny (3 members × 64 points = 192 entries).
const defaultVnodes = 64

// ringPoint is one virtual node on the hash circle.
type ringPoint struct {
	hash   uint64
	member string
}

// ring is an immutable consistent-hash circle; the fleet rebuilds it on
// membership change and swaps it atomically under its lock. Health is not
// baked into the ring — lookup walks past unhealthy members — so a crash
// needs no rebuild and recovery restores the original placement.
type ring struct {
	points []ringPoint
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return fmix64(h.Sum64())
}

// fmix64 is MurmurHash3's 64-bit finalizer. Raw FNV-1a of short, similar
// strings ("node-a#0", "node-a#1", …) clusters badly — without this mixing
// every virtual node lands in one tiny arc of the circle and the ring
// degenerates to a single member.
func fmix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// buildRing lays members' virtual nodes on the circle.
func buildRing(members []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	r := &ring{points: make([]ringPoint, 0, len(members)*vnodes)}
	for _, m := range members {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{
				hash:   hash64(m + "#" + strconv.Itoa(i)),
				member: m,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r
}

// lookup walks clockwise from the key's position to the first point whose
// member passes the health gate. ok is false when no member is eligible.
func (r *ring) lookup(key string, eligible func(string) bool) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if eligible(p.member) {
			return p.member, true
		}
	}
	return "", false
}
