package fleet

// Durable-fleet interop: each member owns a crash-safe store
// (internal/store) attached through Config.NewService. A member crash then
// loses nothing — not even its per-device audit history, which pre-store
// fleets could only approximate with watermarks — and recovery brings the
// member back from its own disk, with the admin-log replay topping up
// idempotently.

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"tinman/internal/audit"
	"tinman/internal/cor"
	"tinman/internal/fault"
	"tinman/internal/node"
	"tinman/internal/store"
)

var fleetTestSealer = func() *cor.Sealer {
	s, err := cor.NewSealer("fleet-store-pass", bytes.Repeat([]byte{0x6b}, cor.SaltLen))
	if err != nil {
		panic(err)
	}
	return s
}()

func TestDurableFleetCrashFailoverRecover(t *testing.T) {
	ctx := context.Background()
	var tick atomic.Int64
	clock := func() time.Time { return time.Unix(0, tick.Add(int64(time.Millisecond))) }

	// One simulated disk per member; the factory recovers a Service from it.
	disks := map[string]*fault.CrashFS{}
	for _, id := range []string{"node-a", "node-b", "node-c"} {
		disks[id] = fault.NewCrashFS(23)
	}
	newService := func(memberID string) (*node.Service, error) {
		st, err := store.Open(store.Options{Dir: "store", FS: disks[memberID], Sealer: fleetTestSealer})
		if err != nil {
			return nil, fmt.Errorf("opening %s store: %w", memberID, err)
		}
		svc := node.New(node.Options{Clock: clock, MalwareSeed: -1})
		if err := svc.AttachStore(context.Background(), st); err != nil {
			return nil, err
		}
		return svc, nil
	}

	f, err := New(Config{
		MemberIDs:   []string{"node-a", "node-b", "node-c"},
		NodeOptions: node.Options{Clock: clock, MalwareSeed: -1},
		NewService:  newService,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.RegisterCor(ctx, "pw", "hunter2!", "bank password", "bank.com"); err != nil {
		t.Fatal(err)
	}

	const dev = "dev-durable"
	svc1, owner1, err := f.ServiceFor(dev)
	if err != nil {
		t.Fatal(err)
	}
	d := newDevHalf(t, svc1, dev)
	hash := d.install(t, svc1)
	if err := f.BindApp("pw", hash); err != nil {
		t.Fatal(err)
	}
	req1, err := d.login(t, svc1, "pw")
	if err != nil {
		t.Fatal(err)
	}
	derived1 := svc1.Cors.Get(req1.CorID)
	if derived1 == nil {
		t.Fatalf("derived cor %q missing on owner", req1.CorID)
	}
	preCrashAudit := len(svc1.Audit.Find(audit.Query{DeviceID: dev}))
	if preCrashAudit == 0 {
		t.Fatal("owner has no device audit entries before the crash")
	}

	// Kill the owner: fleet-level crash plus its disk losing the un-synced
	// tail. Everything acknowledged above was fsynced first.
	if err := f.Crash(owner1); err != nil {
		t.Fatal(err)
	}
	disks[owner1].CrashNow()
	disks[owner1].Restart()

	// Failover: the device's next request lands on a survivor.
	svc2, owner2, err := f.ServiceFor(dev)
	if err != nil {
		t.Fatal(err)
	}
	if owner2 == owner1 {
		t.Fatalf("device still routed to crashed member %s", owner1)
	}
	d2 := newDevHalf(t, svc2, dev)
	d2.install(t, svc2)
	req2, err := d2.login(t, svc2, "pw")
	if err != nil {
		t.Fatalf("offload after failover: %v", err)
	}
	if req2.CorID == req1.CorID {
		t.Fatalf("derived cor ID %q reused across crash failover", req2.CorID)
	}

	// Recover the crashed member: the factory reopens its store, so the
	// member rejoins with its own durable state — pre-crash derived cor,
	// plaintext intact, and its full share of the device's audit history —
	// and the admin-log replay tops up without tripping on what recovery
	// already restored.
	if err := f.Recover(owner1); err != nil {
		t.Fatal(err)
	}
	rsvc, err := f.MemberService(owner1)
	if err != nil {
		t.Fatalf("recovered member %s: %v", owner1, err)
	}
	if rsvc.Cors.Get("pw") == nil {
		t.Fatalf("recovered member %s lost the registered cor", owner1)
	}
	rec := rsvc.Cors.Get(req1.CorID)
	if rec == nil {
		t.Fatalf("recovered member %s lost derived cor %q", owner1, req1.CorID)
	}
	if rec.Plaintext != derived1.Plaintext {
		t.Fatalf("derived cor plaintext diverged after recovery")
	}
	if got := len(rsvc.Audit.Find(audit.Query{DeviceID: dev})); got != preCrashAudit {
		t.Fatalf("recovered member has %d device audit entries, want %d", got, preCrashAudit)
	}

	// The merged per-device audit stream — recovered durable history plus
	// the failover member's live log — is gap-free and duplicate-free.
	var seqs []uint64
	for _, id := range f.Members() {
		svc, _ := f.MemberService(id)
		for _, e := range svc.Audit.Find(audit.Query{DeviceID: dev}) {
			seqs = append(seqs, e.DeviceSeq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("merged audit DeviceSeq not gap-free: %v", seqs)
		}
	}

	// The recovered member keeps serving durable mutations, and no member's
	// disk holds cor plaintext.
	if err := f.Restore("dev-none"); err != nil {
		t.Fatalf("post-recovery admin op: %v", err)
	}
	secrets := []string{"hunter2!", derived1.Plaintext, svc2.Cors.Get(req2.CorID).Plaintext}
	for id, disk := range disks {
		if hits := fault.ScanForPlaintext(disk.DiskBytes(), secrets); len(hits) != 0 {
			t.Fatalf("member %s has cor plaintext on disk: %v", id, hits)
		}
	}
}
