package fleet

// Test scaffolding: a minimal device half (own VM, odd heap IDs, DSM
// endpoint resolving cors to placeholders) driving real offloads against
// whichever member the fleet routes it to. Mirrors internal/node's test
// device.

import (
	"context"
	"crypto/rand"
	"crypto/rsa"
	"encoding/json"
	"testing"

	"tinman/internal/cor"
	"tinman/internal/dsm"
	"tinman/internal/node"
	"tinman/internal/taint"
	"tinman/internal/tlssim"
	"tinman/internal/vm"
	"tinman/internal/vm/asm"
)

// loginSrc is the paper's running example (fig 5 / fig 11): hashing the
// password and concatenating the request mints a derived cor on the node.
const loginSrc = `
class Bank
  method login 2 8          ; r0 = account, r1 = passwd
    hash r2, r1
    conststr r3, "user="
    strcat r4, r3, r0
    conststr r5, "&hash="
    strcat r6, r4, r5
    strcat r7, r6, r2
    return r7
  end
end`

type devHalf struct {
	id          string
	prog        *vm.Program
	vm          *vm.VM
	ep          *dsm.Endpoint
	lastTrigger taint.Tag
}

type placeholderResolver struct{ store *cor.Store }

func (r *placeholderResolver) Fill(id string, length int) (string, taint.Tag, bool) {
	for _, v := range r.store.DeviceViews() {
		if v.ID == id {
			return v.Placeholder, taint.Bit(v.Bit), true
		}
	}
	return cor.Placeholder(id, length), taint.None, true
}

func (r *placeholderResolver) MaskID(o *vm.Object) string { return "" }

// newDevHalf builds a fresh device half against svc — also the re-warm
// path after a failover, where the device's DSM state restarts from scratch
// exactly like PR 4's failed-offload reset.
func newDevHalf(t testing.TB, svc *node.Service, deviceID string) *devHalf {
	t.Helper()
	prog, err := asm.Assemble("login", loginSrc)
	if err != nil {
		t.Fatal(err)
	}
	machine := vm.New(vm.Config{Program: prog, Heap: vm.NewHeap(1, 2), Policy: taint.Asymmetric})
	d := &devHalf{
		id:   deviceID,
		prog: prog,
		vm:   machine,
		ep:   dsm.NewEndpoint(dsm.DeviceSide, machine, &placeholderResolver{store: svc.Cors}),
	}
	machine.Hooks.OnTaintedAccess = func(tag taint.Tag, ev taint.Event) bool {
		d.lastTrigger = tag
		return true
	}
	return d
}

// install registers the device's app on svc and returns the binary hash.
func (d *devHalf) install(t testing.TB, svc *node.Service) string {
	t.Helper()
	res, err := svc.Install(context.Background(), node.InstallRequest{
		DeviceID: d.id, Name: "login", Source: loginSrc,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Hash
}

// warmup streams the device's framework heap to svc as background warm-up
// chunks and acks the epoch, leaving the device ready to ship only the
// dirty delta at trigger time (the speculative pre-migration pipeline).
func (d *devHalf) warmup(t testing.TB, svc *node.Service) uint64 {
	t.Helper()
	epoch := d.ep.BeginWarmup()
	if epoch == 0 {
		t.Fatal("BeginWarmup refused on a fresh endpoint")
	}
	for {
		c, err := d.ep.CaptureWarmup(4)
		if err != nil {
			t.Fatalf("CaptureWarmup: %v", err)
		}
		if err := svc.WarmupChunk(context.Background(), d.id, "login", c.Encode()); err != nil {
			t.Fatalf("WarmupChunk: %v", err)
		}
		if c.Final {
			break
		}
	}
	d.ep.WarmupAcked()
	return epoch
}

// runToTrigger executes the login method until the tainted access stops it
// and captures the trigger-time migration; the thread is returned so a
// warm-miss fallback can recapture from it.
func (d *devHalf) runToTrigger(t testing.TB, svc *node.Service, corID string) (*vm.Thread, vm.StopReason, *dsm.Migration) {
	t.Helper()
	var view cor.DeviceView
	for _, v := range svc.Cors.DeviceViews() {
		if v.ID == corID {
			view = v
		}
	}
	if view.ID == "" {
		t.Fatalf("cor %s not in catalog", corID)
	}
	placeholder := d.vm.NewTaintedString(view.Placeholder, taint.Bit(view.Bit))
	placeholder.CorID = view.ID
	account := d.vm.NewString("alice")
	th, err := d.vm.NewThread(d.prog.Method("Bank", "login"), vm.RefVal(account), vm.RefVal(placeholder))
	if err != nil {
		t.Fatal(err)
	}
	stop, err := th.Run()
	if err != nil || stop != vm.StopMigrateTaint {
		t.Fatalf("device run: stop=%v err=%v", stop, err)
	}
	mig, err := d.ep.CaptureMigration(th, stop)
	if err != nil {
		t.Fatal(err)
	}
	mig.TriggerTag = uint64(d.lastTrigger)
	return th, stop, mig
}

// finish ships mig to svc and applies the reply, returning the device's
// masked view of the result.
func (d *devHalf) finish(t testing.TB, svc *node.Service, mig *dsm.Migration) (*vm.Object, error) {
	t.Helper()
	res, err := svc.Offload(context.Background(), d.id, "login", mig.Encode())
	if err != nil {
		return nil, err
	}
	back, err := dsm.DecodeMigration(res.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.ep.ApplyMigration(back); err != nil {
		t.Fatal(err)
	}
	out, err := d.ep.DecodeResult(back)
	if err != nil {
		t.Fatal(err)
	}
	if out.Ref == nil {
		t.Fatal("no result object")
	}
	return out.Ref, nil
}

// login runs one offload round against svc and returns the device's masked
// view of the request string.
func (d *devHalf) login(t testing.TB, svc *node.Service, corID string) (*vm.Object, error) {
	t.Helper()
	var view cor.DeviceView
	for _, v := range svc.Cors.DeviceViews() {
		if v.ID == corID {
			view = v
		}
	}
	if view.ID == "" {
		t.Fatalf("cor %s not in catalog", corID)
	}
	placeholder := d.vm.NewTaintedString(view.Placeholder, taint.Bit(view.Bit))
	placeholder.CorID = view.ID
	account := d.vm.NewString("alice")
	th, err := d.vm.NewThread(d.prog.Method("Bank", "login"), vm.RefVal(account), vm.RefVal(placeholder))
	if err != nil {
		t.Fatal(err)
	}
	stop, err := th.Run()
	if err != nil || stop != vm.StopMigrateTaint {
		t.Fatalf("device run: stop=%v err=%v", stop, err)
	}
	mig, err := d.ep.CaptureMigration(th, stop)
	if err != nil {
		t.Fatal(err)
	}
	mig.TriggerTag = uint64(d.lastTrigger)
	res, err := svc.Offload(context.Background(), d.id, "login", mig.Encode())
	if err != nil {
		return nil, err
	}
	back, err := dsm.DecodeMigration(res.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.ep.ApplyMigration(back); err != nil {
		t.Fatal(err)
	}
	out, err := d.ep.DecodeResult(back)
	if err != nil {
		t.Fatal(err)
	}
	if out.Ref == nil {
		t.Fatal("no result object")
	}
	return out.Ref, nil
}

// sessionState returns one marshaled TLS ≥1.1 session state; tests share it
// across devices (it is device-supplied input, not node state).
func sessionState(t testing.TB) json.RawMessage {
	t.Helper()
	key, err := rsa.GenerateKey(rand.Reader, 1024)
	if err != nil {
		t.Fatal(err)
	}
	cs, _, _, err := tlssim.Handshake(tlssim.ClientConfig{MinVersion: tlssim.TLS11}, tlssim.ServerConfig{Key: key})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(cs.Export())
	if err != nil {
		t.Fatal(err)
	}
	return raw
}
