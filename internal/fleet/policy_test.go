package fleet

import (
	"context"
	"errors"
	"testing"

	"tinman/internal/policy"
)

// TestPolicyPushPropagation pushes a snapshot at the fleet and checks every
// member converges on the identical (version, hash) stamp, with per-member
// applied versions tracked.
func TestPolicyPushPropagation(t *testing.T) {
	ctx := context.Background()
	f := newTestFleet(t, "node-a", "node-b", "node-c")
	snap := &policy.Snapshot{
		Whitelist: map[string][]string{"pw": {"bank.com"}},
		Revoked:   []string{"dev-stolen"},
	}
	stamp, err := f.InstallPolicy(ctx, snap)
	if err != nil {
		t.Fatal(err)
	}
	if stamp.Version == 0 || stamp.Hash == "" {
		t.Fatalf("empty stamp: %+v", stamp)
	}
	for _, id := range f.Members() {
		svc, _ := f.MemberService(id)
		if got := svc.Policy.Stamp(); got != stamp {
			t.Fatalf("member %s runs %+v, push assigned %+v", id, got, stamp)
		}
		// The snapshot's revocation is live on this member.
		err := svc.Policy.Check(policy.Access{CorID: "pw", DeviceID: "dev-stolen"})
		if d, ok := policy.IsDenial(err); !ok || d.Reason != policy.ReasonRevoked {
			t.Fatalf("member %s: revoked device not denied: %v", id, err)
		}
	}
	vers := f.PolicyVersions()
	for _, id := range f.Members() {
		if vers[id] != stamp.Version {
			t.Fatalf("applied versions %v, want all at %d", vers, stamp.Version)
		}
	}
}

// TestPolicyPushPartialAndRecover crashes a member, pushes a snapshot (the
// push reports the straggler but still lands everywhere reachable), then
// recovers the member and checks the admin-log replay brings it to the
// fleet version.
func TestPolicyPushPartialAndRecover(t *testing.T) {
	ctx := context.Background()
	f := newTestFleet(t, "node-a", "node-b", "node-c")
	if err := f.Crash("node-b"); err != nil {
		t.Fatal(err)
	}
	snap := &policy.Snapshot{Revoked: []string{"dev-stolen"}}
	stamp, err := f.InstallPolicy(ctx, snap)
	if err == nil {
		t.Fatal("partial push reported no error")
	}
	if stamp.Version == 0 {
		t.Fatal("partial push must still return the stamp the fleet converged on")
	}
	for _, id := range []string{"node-a", "node-c"} {
		svc, _ := f.MemberService(id)
		if got := svc.Policy.Stamp(); got != stamp {
			t.Fatalf("healthy member %s at %+v, want %+v", id, got, stamp)
		}
	}
	if vers := f.PolicyVersions(); vers["node-b"] == stamp.Version {
		t.Fatalf("down member recorded as applied: %v", vers)
	}

	if err := f.Recover("node-b"); err != nil {
		t.Fatal(err)
	}
	svc, _ := f.MemberService("node-b")
	if got := svc.Policy.Stamp(); got.Hash != stamp.Hash {
		t.Fatalf("recovered member runs hash %s, fleet pushed %s", got.Hash, stamp.Hash)
	}
	if vers := f.PolicyVersions(); vers["node-b"] != stamp.Version {
		t.Fatalf("recovered member not tracked as applied: %v", vers)
	}
}

// TestRetryPolicy covers transient unreachability: a member whose health
// probe is down misses the push (its process — and engine — stays alive),
// then RetryPolicy tops it up once the probe recovers.
func TestRetryPolicy(t *testing.T) {
	ctx := context.Background()
	f := newTestFleet(t, "node-a", "node-b", "node-c")
	up := false
	if err := f.SetHealthProbe("node-b", func() bool { return up }); err != nil {
		t.Fatal(err)
	}
	stamp, err := f.InstallPolicy(ctx, &policy.Snapshot{Revoked: []string{"dev-x"}})
	if err == nil {
		t.Fatal("push past an unreachable member reported no error")
	}

	// Nothing to retry while the member stays unreachable.
	if caught, _ := f.RetryPolicy(ctx); len(caught) != 0 {
		t.Fatalf("retry reached an unreachable member: %v", caught)
	}

	up = true
	caught, err := f.RetryPolicy(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(caught) != 1 || caught[0] != "node-b" {
		t.Fatalf("retry caught %v, want [node-b]", caught)
	}
	svc, _ := f.MemberService("node-b")
	if got := svc.Policy.Stamp(); got != stamp {
		t.Fatalf("retried member at %+v, want %+v", got, stamp)
	}
	if vers := f.PolicyVersions(); vers["node-b"] != stamp.Version {
		t.Fatalf("retried member not tracked: %v", vers)
	}
	// A second retry has nothing left to do.
	if caught, err := f.RetryPolicy(ctx); err != nil || len(caught) != 0 {
		t.Fatalf("idempotent retry: caught=%v err=%v", caught, err)
	}
}

// TestStalePushRejected pins the reordering guard: pushing an explicit
// version at or below the fleet's last accepted one is rejected by the
// assigning member before anything changes anywhere.
func TestStalePushRejected(t *testing.T) {
	ctx := context.Background()
	f := newTestFleet(t, "node-a", "node-b")
	stamp, err := f.InstallPolicy(ctx, &policy.Snapshot{Revoked: []string{"dev-1"}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = f.InstallPolicy(ctx, &policy.Snapshot{Version: stamp.Version, Revoked: []string{"dev-2"}})
	if !errors.Is(err, policy.ErrStaleSnapshot) {
		t.Fatalf("stale push = %v, want ErrStaleSnapshot", err)
	}
	for _, id := range f.Members() {
		svc, _ := f.MemberService(id)
		if err := svc.Policy.Check(policy.Access{CorID: "x", DeviceID: "dev-2"}); err != nil {
			t.Fatalf("member %s applied a rejected stale push: %v", id, err)
		}
	}
}

// TestFleetSetCorClass replicates a reclassification fleet-wide, including
// onto a member that recovers afterwards via the admin log.
func TestFleetSetCorClass(t *testing.T) {
	ctx := context.Background()
	f := newTestFleet(t, "node-a", "node-b")
	if err := f.RegisterCor(ctx, "pw", "hunter2!", "pw", "bank.com"); err != nil {
		t.Fatal(err)
	}
	if err := f.SetCorClass(ctx, "pw", "server-only"); err != nil {
		t.Fatal(err)
	}
	for _, id := range f.Members() {
		svc, _ := f.MemberService(id)
		if got := svc.Cors.Get("pw").Class; got != "server-only" {
			t.Fatalf("member %s: class = %q", id, got)
		}
		if svc.Cors.RestrictedMask().Empty() {
			t.Fatalf("member %s: restricted mask empty after reclassification", id)
		}
	}
	if err := f.Crash("node-b"); err != nil {
		t.Fatal(err)
	}
	if err := f.Recover("node-b"); err != nil {
		t.Fatal(err)
	}
	svc, _ := f.MemberService("node-b")
	if got := svc.Cors.Get("pw").Class; got != "server-only" {
		t.Fatalf("recovered member lost the class: %q", got)
	}
}

// TestRevocationPushedAtOneMemberDeniesOnAll is the fleet half of the
// revocation-propagation guarantee: a revocation applied through the fleet
// entry point is live on every member's policy engine, so the stolen device
// is cut off no matter which member its traffic reaches.
func TestRevocationPushedAtOneMemberDeniesOnAll(t *testing.T) {
	f := newTestFleet(t, "node-a", "node-b", "node-c")
	if err := f.RegisterCor(context.Background(), "pw", "hunter2!", "pw", "bank.com"); err != nil {
		t.Fatal(err)
	}
	if err := f.Revoke("dev-stolen"); err != nil {
		t.Fatal(err)
	}
	for _, id := range f.Members() {
		svc, _ := f.MemberService(id)
		err := svc.Policy.Check(policy.Access{CorID: "pw", DeviceID: "dev-stolen"})
		if d, ok := policy.IsDenial(err); !ok || d.Reason != policy.ReasonRevoked {
			t.Fatalf("member %s did not deny the revoked device: %v", id, err)
		}
	}
	if err := f.Restore("dev-stolen"); err != nil {
		t.Fatal(err)
	}
	for _, id := range f.Members() {
		svc, _ := f.MemberService(id)
		if err := svc.Policy.Check(policy.Access{CorID: "pw", DeviceID: "dev-stolen"}); err != nil {
			t.Fatalf("member %s still denies after restore: %v", id, err)
		}
	}
}
