package fleet

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"

	"tinman/internal/audit"
	"tinman/internal/cor"
	"tinman/internal/node"
	"tinman/internal/obs"
	"tinman/internal/policy"
)

// Fleet-level error taxonomy.
var (
	// ErrNoHealthyMembers means every member is down or cordoned.
	ErrNoHealthyMembers = errors.New("fleet: no healthy members")
	// ErrUnknownMember marks references to a member ID the fleet has never
	// heard of.
	ErrUnknownMember = errors.New("fleet: unknown member")
	// ErrMemberDown marks operations against a crashed member.
	ErrMemberDown = errors.New("fleet: member is down")
)

// Config assembles a Fleet.
type Config struct {
	// MemberIDs names the trusted nodes; each gets its own node.Service.
	MemberIDs []string
	// NodeOptions configures every member's Service (clock, malware seed…).
	// Options.Metrics is ignored here — pass Metrics below instead, and the
	// fleet derives per-member collectors from it.
	NodeOptions node.Options
	// Vnodes is the virtual-node count per member (default 64).
	Vnodes int
	// NewService, when set, constructs each member's Service — the hook for
	// durable deployments, where the factory opens the member's crash-safe
	// store and attaches it (node.Service.AttachStore) before the fleet
	// replays the admin log. Recover calls it again for the restarted
	// member, so a member rejoins with its own durable state instead of an
	// empty Service. Nil falls back to node.New(NodeOptions).
	NewService func(memberID string) (*node.Service, error)
	// Metrics, when set, receives the fleet-level collectors (handoffs,
	// failovers, per-member device gauges and request counters).
	Metrics *obs.Metrics
}

// member is one trusted node plus its fleet-side bookkeeping.
type member struct {
	id  string
	svc *node.Service
	// down marks a crashed member: its Service state is considered lost and
	// its devices fail over lazily on their next request.
	down bool
	// cordoned excludes the member from new placements (set by Drain) while
	// existing traffic finishes moving.
	cordoned bool
	// probe, when set, gates health externally — e.g. on a netsim Host's
	// up/down state — so a simulated network can kill a node.
	probe func() bool

	devices  *obs.Gauge
	requests *obs.Counter
}

// adminOp is one replicated control-plane mutation. The fleet applies it to
// every healthy member when issued and replays the full log onto a member
// that joins or recovers, so registered cors, bindings and revocations are
// identical fleet-wide — this is what makes a crash lose no registered cor.
type adminOp func(*node.Service) error

// Fleet routes devices across trusted-node members by consistent hash.
//
// Placement is sticky: the ring decides where a device lands on first touch
// and after failover/drain, but a healthy member keeps its shards until an
// explicit Drain or Rebalance — routing never silently moves live state.
type Fleet struct {
	nodeOpts   node.Options
	vnodes     int
	newService func(memberID string) (*node.Service, error)

	mu      sync.RWMutex
	members map[string]*member
	order   []string // MemberIDs order, for deterministic iteration
	ring    *ring
	// owners maps each device to the member hosting its shard.
	owners   map[string]string
	adminLog []adminOp

	// watermarks tracks the highest per-device audit sequence seen anywhere
	// in the fleet (fed by each member's audit subscription). On crash
	// failover the new owner's shard starts above the watermark, keeping
	// the merged per-device audit stream gap-free even though the dead
	// node's shard (and its counter) is gone.
	wmMu       sync.Mutex
	watermarks map[string]uint64

	// Policy push state (policy.go): the latest accepted snapshot, its
	// fleet-assigned version, and the version each member has applied.
	// Guarded by polMu, never f.mu — pushes run member installs without
	// blocking routing.
	polMu      sync.Mutex
	lastSnap   *policy.Snapshot
	policyVers map[string]uint64

	handoffs  *obs.Counter
	failovers *obs.Counter
}

// New builds the fleet and its members.
func New(cfg Config) (*Fleet, error) {
	if len(cfg.MemberIDs) == 0 {
		return nil, errors.New("fleet: need at least one member")
	}
	opts := cfg.NodeOptions
	opts.Metrics = nil
	f := &Fleet{
		nodeOpts:   opts,
		vnodes:     cfg.Vnodes,
		newService: cfg.NewService,
		members:    make(map[string]*member),
		owners:     make(map[string]string),
		watermarks: make(map[string]uint64),
	}
	if f.newService == nil {
		f.newService = func(string) (*node.Service, error) { return node.New(opts), nil }
	}
	if m := cfg.Metrics; m != nil {
		f.handoffs = m.Counter("tinman_fleet_handoffs_total")
		f.failovers = m.Counter("tinman_fleet_failovers_total")
	}
	for _, id := range cfg.MemberIDs {
		if _, dup := f.members[id]; dup {
			return nil, fmt.Errorf("fleet: duplicate member %q", id)
		}
		svc, err := f.newService(id)
		if err != nil {
			return nil, fmt.Errorf("fleet: building member %q: %w", id, err)
		}
		mem := &member{id: id, svc: svc}
		if m := cfg.Metrics; m != nil {
			mem.devices = m.Gauge("tinman_fleet_member_" + metricName(id) + "_devices")
			mem.requests = m.Counter("tinman_fleet_member_" + metricName(id) + "_requests_total")
		}
		f.subscribeWatermarks(mem.svc)
		f.members[id] = mem
		f.order = append(f.order, id)
	}
	f.ring = buildRing(f.order, f.vnodes)
	return f, nil
}

// metricName maps a member ID into the metric-name charset.
func metricName(id string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, id)
}

// subscribeWatermarks feeds the fleet watermark table from a member's log.
func (f *Fleet) subscribeWatermarks(svc *node.Service) {
	svc.Audit.Subscribe(func(e audit.Entry) {
		if e.DeviceID == "" || e.DeviceSeq == 0 {
			return
		}
		f.wmMu.Lock()
		if e.DeviceSeq > f.watermarks[e.DeviceID] {
			f.watermarks[e.DeviceID] = e.DeviceSeq
		}
		f.wmMu.Unlock()
	})
}

// watermark returns the fleet-wide audit floor for a device.
func (f *Fleet) watermark(deviceID string) uint64 {
	f.wmMu.Lock()
	defer f.wmMu.Unlock()
	return f.watermarks[deviceID]
}

// healthyLocked reports whether a member can serve; callers hold f.mu.
func (f *Fleet) healthyLocked(id string) bool {
	m := f.members[id]
	if m == nil || m.down {
		return false
	}
	if m.probe != nil && !m.probe() {
		return false
	}
	return true
}

// placeableLocked additionally excludes cordoned members from new placement.
func (f *Fleet) placeableLocked(id string) bool {
	return f.healthyLocked(id) && !f.members[id].cordoned
}

// Members lists member IDs in configuration order.
func (f *Fleet) Members() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return append([]string(nil), f.order...)
}

// MemberService exposes a member's Service (tests, loadgen, audit export).
// It is available even for a down member — the caller is the simulation's
// god view — but routing never sends traffic there.
func (f *Fleet) MemberService(id string) (*node.Service, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	m := f.members[id]
	if m == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownMember, id)
	}
	return m.svc, nil
}

// SetHealthProbe gates a member's health on fn (e.g. a netsim host's
// up/down state). A nil fn removes the gate.
func (f *Fleet) SetHealthProbe(id string, fn func() bool) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	m := f.members[id]
	if m == nil {
		return fmt.Errorf("%w: %q", ErrUnknownMember, id)
	}
	m.probe = fn
	return nil
}

// Owner reports which member the fleet routes the device to right now,
// without attaching anything.
func (f *Fleet) Owner(deviceID string) (string, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.ownerLocked(deviceID)
}

func (f *Fleet) ownerLocked(deviceID string) (string, error) {
	if cur, ok := f.owners[deviceID]; ok && f.healthyLocked(cur) {
		return cur, nil
	}
	id, ok := f.ring.lookup(deviceID, f.placeableLocked)
	if !ok {
		return "", ErrNoHealthyMembers
	}
	return id, nil
}

// ServiceFor resolves the device's owning member, failing the device over
// (with the audit watermark as sequence floor) if its previous owner is
// down. It returns the member's Service and ID; every device-keyed request
// path goes through here.
func (f *Fleet) ServiceFor(deviceID string) (*node.Service, string, error) {
	f.mu.Lock()
	cur, had := f.owners[deviceID]
	if had && f.healthyLocked(cur) {
		m := f.members[cur]
		m.requests.Inc()
		f.mu.Unlock()
		return m.svc, cur, nil
	}
	id, ok := f.ring.lookup(deviceID, f.placeableLocked)
	if !ok {
		f.mu.Unlock()
		return nil, "", ErrNoHealthyMembers
	}
	m := f.members[id]
	f.owners[deviceID] = id
	failedOver := had && cur != id
	m.requests.Inc()
	m.devices.Inc()
	if had {
		if old := f.members[cur]; old != nil && cur != id {
			old.devices.Dec()
		}
	}
	f.mu.Unlock()
	if failedOver {
		f.failovers.Inc()
	}
	// Attach above the fleet-wide audit watermark (outside the fleet lock —
	// the floor raise touches only the shard). Every assignment uses the
	// floor, not just observed failovers: a device whose owner crashed and
	// recovered re-places through here with no prior owners entry, and its
	// fresh shard must still continue the audit sequence.
	m.svc.AttachShard(deviceID, f.watermark(deviceID))
	return m.svc, id, nil
}

// Accept resolves ownership for a device-keyed request arriving at member
// selfID, with full assignment semantics: the device is (re)assigned
// through the same path as ServiceFor, so a failover applies the audit
// watermark floor to the new owner's shard no matter which member the
// request physically reached. It reports whether selfID is the owner;
// when false, owner names the member to redirect to. The wire servers
// (nodeproto) gate every device-keyed request through this.
func (f *Fleet) Accept(deviceID, selfID string) (accept bool, owner string, err error) {
	_, owner, err = f.ServiceFor(deviceID)
	if err != nil {
		return false, "", err
	}
	return owner == selfID, owner, nil
}

// Crash marks a member down; its in-memory state is treated as lost.
// Devices it hosted fail over lazily: their next ServiceFor lands on the
// ring's next healthy member with the audit watermark as floor.
func (f *Fleet) Crash(id string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	m := f.members[id]
	if m == nil {
		return fmt.Errorf("%w: %q", ErrUnknownMember, id)
	}
	m.down = true
	return nil
}

// Recover brings a crashed member back with a fresh Service — a restarted
// process has none of its pre-crash memory — and replays the admin log so
// it carries the fleet-wide registered cors, bindings and revocations. It
// owns no devices until Rebalance (or new placements) route some to it.
func (f *Fleet) Recover(id string) error {
	f.mu.Lock()
	m := f.members[id]
	if m == nil {
		f.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownMember, id)
	}
	log := append([]adminOp(nil), f.adminLog...)
	f.mu.Unlock()

	// A durable member restarts from its own store (cfg.NewService recovers
	// and attaches it); the admin-log replay below then tops up whatever the
	// member missed while down. Replay must therefore be idempotent against
	// already-recovered state.
	svc, err := f.newService(id)
	if err != nil {
		return fmt.Errorf("fleet: rebuilding member %q: %w", id, err)
	}

	for _, op := range log {
		if err := op(svc); err != nil {
			return fmt.Errorf("fleet: replaying admin log onto %q: %w", id, err)
		}
	}
	f.subscribeWatermarks(svc)

	// The replay just installed the last accepted policy (or the member's
	// durable store already held it and the replay was a stale no-op), so
	// the member is up to date — record that.
	f.polMu.Lock()
	if f.lastSnap != nil {
		if f.policyVers == nil {
			f.policyVers = make(map[string]uint64)
		}
		f.policyVers[id] = f.lastSnap.Version
	}
	f.polMu.Unlock()

	f.mu.Lock()
	m.svc = svc
	m.down = false
	m.cordoned = false
	m.devices.Set(0)
	// Drop stale ownership: devices last seen on the pre-crash incarnation
	// re-place through ServiceFor, which applies the audit watermark floor
	// to the fresh shard.
	for dev, cur := range f.owners {
		if cur == id {
			delete(f.owners, dev)
		}
	}
	f.mu.Unlock()
	return nil
}

// Handoff moves one device's shard to the target member via detach/export →
// import. On import failure the export is restored onto the source, so the
// device is never left ownerless.
func (f *Fleet) Handoff(ctx context.Context, deviceID, toID string) error {
	f.mu.Lock()
	cur, ok := f.owners[deviceID]
	if !ok {
		f.mu.Unlock()
		return fmt.Errorf("fleet: device %q has no shard to hand off", deviceID)
	}
	src := f.members[cur]
	dst := f.members[toID]
	if dst == nil {
		f.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownMember, toID)
	}
	if !f.healthyLocked(cur) {
		f.mu.Unlock()
		return fmt.Errorf("%w: %q (use failover, not handoff)", ErrMemberDown, cur)
	}
	if !f.healthyLocked(toID) {
		f.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrMemberDown, toID)
	}
	f.mu.Unlock()
	if cur == toID {
		return nil
	}

	exp, err := src.svc.DetachShard(deviceID)
	if err != nil {
		return fmt.Errorf("fleet: detaching %q from %q: %w", deviceID, cur, err)
	}
	if err := dst.svc.ImportShard(ctx, exp); err != nil {
		// Roll back: the source re-imports its own export.
		if rerr := src.svc.ImportShard(ctx, exp); rerr != nil {
			return fmt.Errorf("fleet: import into %q failed (%v) and rollback failed: %w", toID, err, rerr)
		}
		return fmt.Errorf("fleet: importing %q into %q: %w", deviceID, toID, err)
	}

	f.mu.Lock()
	f.owners[deviceID] = toID
	src.devices.Dec()
	dst.devices.Inc()
	f.mu.Unlock()
	f.handoffs.Inc()
	return nil
}

// Drain cordons a member and moves every device it hosts to its new ring
// owner. The member stays healthy throughout — this is the planned-
// maintenance path, with at-most-once preserved by the exported replay
// windows. Returns how many devices moved.
func (f *Fleet) Drain(ctx context.Context, id string) (int, error) {
	f.mu.Lock()
	m := f.members[id]
	if m == nil {
		f.mu.Unlock()
		return 0, fmt.Errorf("%w: %q", ErrUnknownMember, id)
	}
	if !f.healthyLocked(id) {
		f.mu.Unlock()
		return 0, fmt.Errorf("%w: %q", ErrMemberDown, id)
	}
	m.cordoned = true
	f.mu.Unlock()

	moved := 0
	for _, dev := range m.svc.Devices() {
		f.mu.RLock()
		target, ok := f.ring.lookup(dev, f.placeableLocked)
		f.mu.RUnlock()
		if !ok {
			return moved, ErrNoHealthyMembers
		}
		if err := f.Handoff(ctx, dev, target); err != nil {
			return moved, err
		}
		moved++
	}
	return moved, nil
}

// Uncordon re-admits a drained member for new placements.
func (f *Fleet) Uncordon(id string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	m := f.members[id]
	if m == nil {
		return fmt.Errorf("%w: %q", ErrUnknownMember, id)
	}
	m.cordoned = false
	return nil
}

// Rebalance moves every device whose current (healthy) host differs from
// its ring owner — the cleanup pass after membership changes. Returns how
// many devices moved.
func (f *Fleet) Rebalance(ctx context.Context) (int, error) {
	f.mu.RLock()
	type move struct{ dev, to string }
	var moves []move
	for dev, cur := range f.owners {
		if !f.healthyLocked(cur) {
			continue // failover handles these lazily
		}
		want, ok := f.ring.lookup(dev, f.placeableLocked)
		if ok && want != cur {
			moves = append(moves, move{dev, want})
		}
	}
	f.mu.RUnlock()
	for _, mv := range moves {
		if err := f.Handoff(ctx, mv.dev, mv.to); err != nil {
			return 0, err
		}
	}
	return len(moves), nil
}

// DeviceCount reports how many devices each healthy member currently hosts.
func (f *Fleet) DeviceCount() map[string]int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make(map[string]int, len(f.members))
	for _, cur := range f.owners {
		out[cur]++
	}
	return out
}

// --- replicated control plane ---

// applyAdmin runs the op on every healthy member and appends it to the
// admin log for future joins/recoveries. The first error aborts.
func (f *Fleet) applyAdmin(op adminOp) error {
	f.mu.Lock()
	f.adminLog = append(f.adminLog, op)
	var svcs []*node.Service
	for _, id := range f.order {
		if f.healthyLocked(id) {
			svcs = append(svcs, f.members[id].svc)
		}
	}
	f.mu.Unlock()
	if len(svcs) == 0 {
		return ErrNoHealthyMembers
	}
	for _, svc := range svcs {
		if err := op(svc); err != nil {
			return err
		}
	}
	return nil
}

// RegisterCor registers a cor on every member (§2.3's safe-environment
// setup, replicated): a single member crash therefore loses no registered
// cor.
func (f *Fleet) RegisterCor(ctx context.Context, id, plaintext, description string, whitelist ...string) error {
	return f.applyAdmin(func(svc *node.Service) error {
		if svc.Cors.Get(id) != nil {
			return nil // already present: durable recovery beat the replay
		}
		_, err := svc.RegisterCor(ctx, id, plaintext, description, whitelist...)
		return err
	})
}

// GenerateCor mints a fresh random cor on one member, then replicates the
// resulting plaintext to the rest — generating independently per member
// would mint N different secrets under one ID.
func (f *Fleet) GenerateCor(ctx context.Context, id, description string, n int, whitelist ...string) (*cor.Record, error) {
	f.mu.RLock()
	var first *node.Service
	for _, mid := range f.order {
		if f.healthyLocked(mid) {
			first = f.members[mid].svc
			break
		}
	}
	f.mu.RUnlock()
	if first == nil {
		return nil, ErrNoHealthyMembers
	}
	rec, err := first.GenerateCor(ctx, id, description, n, whitelist...)
	if err != nil {
		return nil, err
	}
	err = f.applyAdmin(func(svc *node.Service) error {
		if svc == first || svc.Cors.Get(id) != nil {
			return nil
		}
		_, rerr := svc.RegisterCor(ctx, id, rec.Plaintext, description, whitelist...)
		return rerr
	})
	if err != nil {
		return nil, err
	}
	return rec, nil
}

// BindApp replicates an app binding fleet-wide.
func (f *Fleet) BindApp(corID, appHash string) error {
	return f.applyAdmin(func(svc *node.Service) error {
		return svc.BindApp(corID, appHash)
	})
}

// Revoke replicates a device revocation fleet-wide — a stolen phone must be
// cut off no matter which member its requests reach.
func (f *Fleet) Revoke(deviceID string) error {
	return f.applyAdmin(func(svc *node.Service) error {
		return svc.Revoke(deviceID)
	})
}

// Restore replicates re-enabling a device.
func (f *Fleet) Restore(deviceID string) error {
	return f.applyAdmin(func(svc *node.Service) error {
		return svc.Restore(deviceID)
	})
}
