package fleet

// Chaos test for the crash-mid-offload failover path: the deterministic
// network simulator kills the host of the member that owns a device while
// the device is mid-session. The device's next request must fail over to a
// surviving member with zero cor loss and a gap-free merged per-device
// audit sequence.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"

	"tinman/internal/audit"
	"tinman/internal/netsim"
	"tinman/internal/node"
)

func TestChaosCrashMidSessionFailover(t *testing.T) {
	ctx := context.Background()
	net := netsim.New(7)
	clock := func() time.Time { return time.Unix(0, 0).Add(net.Now()) }

	f, err := New(Config{
		MemberIDs:   []string{"node-a", "node-b", "node-c"},
		NodeOptions: node.Options{Clock: clock, MalwareSeed: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each member's health is gated on its simulated host being up, so the
	// network simulator — not the test body — decides who is alive.
	hosts := map[string]*netsim.Host{}
	for _, id := range f.Members() {
		h := net.AddHost(id)
		hosts[id] = h
		id := id
		if err := f.SetHealthProbe(id, func() bool { return !hosts[id].Down() }); err != nil {
			t.Fatal(err)
		}
	}

	if err := f.RegisterCor(ctx, "pw", "hunter2!", "bank password", "bank.com"); err != nil {
		t.Fatal(err)
	}

	const dev = "dev-chaos"
	svc1, owner1, err := f.ServiceFor(dev)
	if err != nil {
		t.Fatal(err)
	}
	d := newDevHalf(t, svc1, dev)
	hash := d.install(t, svc1)
	if err := f.BindApp("pw", hash); err != nil {
		t.Fatal(err)
	}

	// The device completes one offload (minting a derived cor) and executes
	// one non-idempotent replay-tracked op on the doomed owner.
	req1, err := d.login(t, svc1, "pw")
	if err != nil {
		t.Fatal(err)
	}
	executions := 0
	svc1.ReplayDo(dev, "req-chaos-1", func() any { executions++; return "minted" })

	// netsim kills the owning node at t=50ms, mid-session from the device's
	// point of view.
	net.ScheduleAt(50*time.Millisecond, func() {
		hosts[owner1].SetDown(true)
		if err := f.Crash(owner1); err != nil {
			t.Errorf("crash %s: %v", owner1, err)
		}
	})
	net.RunFor(100 * time.Millisecond)

	// The device's next request routes to a surviving member; the device
	// re-warms its DSM state against the new node (PR 4's reset path) and
	// re-installs through the normal warm-up transfer.
	svc2, owner2, err := f.ServiceFor(dev)
	if err != nil {
		t.Fatal(err)
	}
	if owner2 == owner1 {
		t.Fatalf("device still routed to crashed member %s", owner1)
	}
	d2 := newDevHalf(t, svc2, dev)
	d2.install(t, svc2)
	req2, err := d2.login(t, svc2, "pw")
	if err != nil {
		t.Fatalf("offload after failover: %v", err)
	}

	// Zero cor loss: the registered cor serves on every surviving member,
	// and the post-failover derived mint cannot collide with a pre-crash
	// ID (the audit-watermark floor also bounds the derived counter).
	for _, id := range f.Members() {
		if id == owner1 {
			continue
		}
		svc, _ := f.MemberService(id)
		if svc.Cors.Get("pw") == nil {
			t.Fatalf("member %s lost the registered cor after the crash", id)
		}
	}
	if req2.CorID == req1.CorID {
		t.Fatalf("derived cor ID %q reused across crash failover", req2.CorID)
	}

	// The ambiguous in-flight op replays against the new owner. The crashed
	// node's window died with it, so the operation executes here — exactly
	// once with respect to surviving state, since everything the first
	// execution touched was discarded with the dead node.
	val, _ := svc2.ReplayDo(dev, "req-chaos-1", func() any { executions++; return "re-minted" })
	if executions != 2 || val != "re-minted" {
		t.Fatalf("post-crash replay: executions=%d val=%v", executions, val)
	}
	// ...and a second retry dedups against the new owner's window.
	if _, replayed := svc2.ReplayDo(dev, "req-chaos-1", func() any { executions++; return "thrice" }); !replayed || executions != 2 {
		t.Fatalf("retry against new owner re-executed: executions=%d", executions)
	}

	// Gap-free per-device audit ordering: merging every member's log —
	// including the dead node's, standing in for its persisted JSONL file —
	// by DeviceSeq yields consecutive numbering with no gaps or duplicates.
	var seqs []uint64
	for _, id := range f.Members() {
		svc, _ := f.MemberService(id)
		for _, e := range svc.Audit.Find(audit.Query{DeviceID: dev}) {
			if e.DeviceSeq == 0 {
				t.Fatalf("device entry without DeviceSeq: %v", e)
			}
			seqs = append(seqs, e.DeviceSeq)
		}
	}
	if len(seqs) < 2 {
		t.Fatalf("expected audit history on both sides of the crash, got %d entries", len(seqs))
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("audit DeviceSeq not gap-free after crash: %v", seqs)
		}
	}
}

// TestChaosCascadingCrash drives repeated crash/recover cycles under load
// from many devices, checking routing never lands on a down member and the
// fleet converges back to full placement after recovery.
func TestChaosCascadingCrash(t *testing.T) {
	ctx := context.Background()
	net := netsim.New(11)
	clock := func() time.Time { return time.Unix(0, 0).Add(net.Now()) }
	f, err := New(Config{
		MemberIDs:   []string{"node-a", "node-b", "node-c"},
		NodeOptions: node.Options{Clock: clock, MalwareSeed: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.RegisterCor(ctx, "pw", "hunter2!", "pw", "bank.com"); err != nil {
		t.Fatal(err)
	}
	state := sessionState(t)
	reseal := func(dev string) error {
		svc, owner, err := f.ServiceFor(dev)
		if err != nil {
			return err
		}
		if _, rerr := svc.Reseal(ctx, node.ResealRequest{
			CorID: "pw", AppHash: "apphash-1", DeviceID: dev,
			Domain: "bank.com", State: state,
		}); rerr != nil {
			return fmt.Errorf("reseal on %s: %w", owner, rerr)
		}
		return nil
	}
	if err := f.BindApp("pw", "apphash-1"); err != nil {
		t.Fatal(err)
	}

	const devices = 200
	drive := func() {
		for i := 0; i < devices; i++ {
			if err := reseal(fmt.Sprintf("dev-%03d", i)); err != nil {
				t.Fatalf("reseal: %v", err)
			}
		}
	}
	drive()
	// Crash each member in turn (never two at once), driving traffic
	// through every failover.
	for _, victim := range f.Members() {
		if err := f.Crash(victim); err != nil {
			t.Fatal(err)
		}
		drive()
		if err := f.Recover(victim); err != nil {
			t.Fatal(err)
		}
		drive()
	}
	if _, err := f.Rebalance(ctx); err != nil {
		t.Fatal(err)
	}
	counts := f.DeviceCount()
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != devices {
		t.Fatalf("ownership accounting drifted: %v (total %d)", counts, total)
	}
	for _, id := range f.Members() {
		if counts[id] == 0 {
			t.Fatalf("member %s hosts nothing after recovery+rebalance: %v", id, counts)
		}
	}
}

// TestChaosCrashMidWarmup crashes the member that received a device's
// speculative warm-up stream before the trigger fires. The failover member
// holds no warm state, so the warm-path migration chasing the crash must be
// rejected ErrWarmStale — never mis-admitted against a different node's
// buffers — and the device's reset-and-resend-full fallback completes the
// login on the survivor with a gap-free merged audit sequence.
func TestChaosCrashMidWarmup(t *testing.T) {
	ctx := context.Background()
	net := netsim.New(9)
	clock := func() time.Time { return time.Unix(0, 0).Add(net.Now()) }

	f, err := New(Config{
		MemberIDs:   []string{"node-a", "node-b", "node-c"},
		NodeOptions: node.Options{Clock: clock, MalwareSeed: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	hosts := map[string]*netsim.Host{}
	for _, id := range f.Members() {
		h := net.AddHost(id)
		hosts[id] = h
		id := id
		if err := f.SetHealthProbe(id, func() bool { return !hosts[id].Down() }); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.RegisterCor(ctx, "pw", "hunter2!", "bank password", "bank.com"); err != nil {
		t.Fatal(err)
	}

	const dev = "dev-warm"
	svc1, owner1, err := f.ServiceFor(dev)
	if err != nil {
		t.Fatal(err)
	}
	d := newDevHalf(t, svc1, dev)
	hash := d.install(t, svc1)
	if err := f.BindApp("pw", hash); err != nil {
		t.Fatal(err)
	}

	// A framework heap worth streaming, then the full warm-up round.
	for i := 0; i < 12; i++ {
		d.vm.NewString("framework-object-padding-padding")
	}
	epoch := d.warmup(t, svc1)
	if svc1.WarmStats().Chunks == 0 {
		t.Fatal("owner counted no warm chunks")
	}

	// The owner dies between the warm-up and the trigger.
	net.ScheduleAt(50*time.Millisecond, func() {
		hosts[owner1].SetDown(true)
		if err := f.Crash(owner1); err != nil {
			t.Errorf("crash %s: %v", owner1, err)
		}
	})
	net.RunFor(100 * time.Millisecond)

	svc2, owner2, err := f.ServiceFor(dev)
	if err != nil {
		t.Fatal(err)
	}
	if owner2 == owner1 {
		t.Fatalf("device still routed to crashed member %s", owner1)
	}
	d.install(t, svc2)

	// The device has no idea its warm-up died with the owner: the trigger
	// migration still declares the epoch it streamed to the dead node.
	th, stop, mig := d.runToTrigger(t, svc2, "pw")
	if mig.WarmEpoch != epoch {
		t.Fatalf("trigger migration epoch %d, want %d", mig.WarmEpoch, epoch)
	}
	if _, err := svc2.Offload(ctx, dev, "login", mig.Encode()); !errors.Is(err, node.ErrWarmStale) {
		t.Fatalf("warm offload on failover member: %v, want ErrWarmStale", err)
	}
	if ws := svc2.WarmStats(); ws.Misses != 1 || ws.Hits != 0 {
		t.Fatalf("failover member warm stats = %+v", ws)
	}

	// Cold fallback: reset the send state, recapture the full snapshot from
	// the same stopped thread, and complete on the survivor.
	d.ep.ResetWarmup()
	mig2, err := d.ep.CaptureMigration(th, stop)
	if err != nil {
		t.Fatal(err)
	}
	mig2.TriggerTag = mig.TriggerTag
	if !mig2.Initial || mig2.WarmEpoch != 0 {
		t.Fatalf("fallback migration Initial=%v WarmEpoch=%d, want full cold snapshot", mig2.Initial, mig2.WarmEpoch)
	}
	req, err := d.finish(t, svc2, mig2)
	if err != nil {
		t.Fatalf("cold fallback offload after crash: %v", err)
	}
	if req.CorID == "" {
		t.Fatal("fallback result not a masked derived cor")
	}

	// Merged per-device audit ordering stays gap-free across the crash.
	var seqs []uint64
	for _, id := range f.Members() {
		svc, _ := f.MemberService(id)
		for _, e := range svc.Audit.Find(audit.Query{DeviceID: dev}) {
			seqs = append(seqs, e.DeviceSeq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("audit DeviceSeq not gap-free after crash: %v", seqs)
		}
	}
}
