package fleet

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"tinman/internal/audit"
	"tinman/internal/node"
)

func newTestFleet(t testing.TB, ids ...string) *Fleet {
	t.Helper()
	f, err := New(Config{
		MemberIDs:   ids,
		NodeOptions: node.Options{MalwareSeed: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestPlacementDeterministic checks the ring: a device always routes to the
// same healthy member, and placement spreads across the fleet.
func TestPlacementDeterministic(t *testing.T) {
	f := newTestFleet(t, "node-a", "node-b", "node-c")
	counts := map[string]int{}
	for i := 0; i < 3000; i++ {
		dev := fmt.Sprintf("dev-%d", i)
		o1, err := f.Owner(dev)
		if err != nil {
			t.Fatal(err)
		}
		o2, _ := f.Owner(dev)
		if o1 != o2 {
			t.Fatalf("placement of %s flapped: %s then %s", dev, o1, o2)
		}
		counts[o1]++
	}
	for _, id := range f.Members() {
		if counts[id] < 3000*15/100 {
			t.Fatalf("placement skew: %v", counts)
		}
	}
}

// TestAdminReplication registers cors/bindings/revocations fleet-wide and
// checks every member agrees, including one that recovers from a crash.
func TestAdminReplication(t *testing.T) {
	ctx := context.Background()
	f := newTestFleet(t, "node-a", "node-b", "node-c")
	if err := f.RegisterCor(ctx, "pw", "hunter2!", "pw", "bank.com"); err != nil {
		t.Fatal(err)
	}
	rec, err := f.GenerateCor(ctx, "token", "api token", 16, "api.bank.com")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Revoke("dev-stolen"); err != nil {
		t.Fatal(err)
	}
	for _, id := range f.Members() {
		svc, _ := f.MemberService(id)
		if svc.Cors.Get("pw") == nil {
			t.Fatalf("member %s missing registered cor", id)
		}
		got := svc.Cors.Get("token")
		if got == nil || got.Plaintext != rec.Plaintext {
			t.Fatalf("member %s: generated cor not replicated verbatim", id)
		}
	}

	// A recovered member replays the admin log into its fresh Service.
	if err := f.Crash("node-b"); err != nil {
		t.Fatal(err)
	}
	if err := f.Recover("node-b"); err != nil {
		t.Fatal(err)
	}
	svc, _ := f.MemberService("node-b")
	if svc.Cors.Get("pw") == nil || svc.Cors.Get("token") == nil {
		t.Fatal("recovered member missing replicated cors")
	}
	if got := svc.Cors.Get("token"); got.Plaintext != rec.Plaintext {
		t.Fatal("recovered member has a different generated secret")
	}
}

// TestDrainMovesShards drains a member and checks its devices' shards (and
// their replay windows) land on other members with at-most-once intact.
func TestDrainMovesShards(t *testing.T) {
	ctx := context.Background()
	f := newTestFleet(t, "node-a", "node-b", "node-c")
	if err := f.RegisterCor(ctx, "pw", "hunter2!", "pw", "bank.com"); err != nil {
		t.Fatal(err)
	}

	// Touch enough devices that every member hosts some.
	var onA []string
	for i := 0; i < 60; i++ {
		dev := fmt.Sprintf("dev-%d", i)
		_, owner, err := f.ServiceFor(dev)
		if err != nil {
			t.Fatal(err)
		}
		if owner == "node-a" {
			onA = append(onA, dev)
		}
	}
	if len(onA) == 0 {
		t.Fatal("no devices landed on node-a")
	}

	// A non-idempotent op executes on node-a before the drain.
	marked := onA[0]
	svcA, _ := f.MemberService("node-a")
	executions := 0
	svcA.ReplayDo(marked, "req-drain-1", func() any { executions++; return "ok" })

	moved, err := f.Drain(ctx, "node-a")
	if err != nil {
		t.Fatal(err)
	}
	if moved < len(onA) {
		t.Fatalf("drained %d devices, expected at least %d", moved, len(onA))
	}
	if n := len(svcA.Devices()); n != 0 {
		t.Fatalf("node-a still hosts %d shards after drain", n)
	}
	for _, dev := range onA {
		_, owner, err := f.ServiceFor(dev)
		if err != nil {
			t.Fatal(err)
		}
		if owner == "node-a" {
			t.Fatalf("device %s still routed to drained member", dev)
		}
	}

	// The replayed request dedups on the new owner instead of re-executing.
	svcNew, _, err := f.ServiceFor(marked)
	if err != nil {
		t.Fatal(err)
	}
	_, replayed := svcNew.ReplayDo(marked, "req-drain-1", func() any { executions++; return "twice" })
	if !replayed || executions != 1 {
		t.Fatalf("at-most-once across drain: replayed=%v executions=%d", replayed, executions)
	}

	// Uncordon + rebalance restores ring placement.
	if err := f.Uncordon("node-a"); err != nil {
		t.Fatal(err)
	}
	back, err := f.Rebalance(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if back == 0 {
		t.Fatal("rebalance moved nothing back to the uncordoned member")
	}
}

// TestFleetSmoke is the make fleet-smoke acceptance gate: a 3-member fleet
// hosting 10k simulated devices survives one member crash and one explicit
// drain/rebalance with zero registered-cor loss, at-most-once replay across
// the drain, and a gap-free merged per-device audit sequence.
func TestFleetSmoke(t *testing.T) {
	ctx := context.Background()
	f := newTestFleet(t, "node-a", "node-b", "node-c")
	if err := f.RegisterCor(ctx, "pw", "hunter2!", "bank password", "bank.com"); err != nil {
		t.Fatal(err)
	}
	if err := f.BindApp("pw", "apphash-1"); err != nil {
		t.Fatal(err)
	}
	state := sessionState(t)

	const devices = 10_000
	reseal := func(dev string) error {
		svc, _, err := f.ServiceFor(dev)
		if err != nil {
			return err
		}
		_, err = svc.Reseal(ctx, node.ResealRequest{
			CorID: "pw", AppHash: "apphash-1", DeviceID: dev,
			Domain: "bank.com", State: state,
		})
		return err
	}
	owners := make(map[string]string, devices)
	for i := 0; i < devices; i++ {
		dev := fmt.Sprintf("dev-%05d", i)
		if err := reseal(dev); err != nil {
			t.Fatalf("warm-up reseal %s: %v", dev, err)
		}
		owners[dev], _ = f.Owner(dev)
	}
	for id, n := range f.DeviceCount() {
		if n < devices*15/100 {
			t.Fatalf("member %s hosts only %d/%d devices", id, n, devices)
		}
	}

	// --- crash one member; its devices fail over lazily ---
	if err := f.Crash("node-b"); err != nil {
		t.Fatal(err)
	}
	failedOver := 0
	for dev, owner := range owners {
		if owner != "node-b" {
			continue
		}
		failedOver++
		if err := reseal(dev); err != nil {
			t.Fatalf("reseal after failover %s: %v", dev, err)
		}
		if newOwner, _ := f.Owner(dev); newOwner == "node-b" {
			t.Fatalf("device %s still routed to crashed member", dev)
		}
	}
	if failedOver == 0 {
		t.Fatal("crash test vacuous: node-b hosted nothing")
	}

	// Zero cor loss: every surviving member still serves the vault.
	for _, id := range []string{"node-a", "node-c"} {
		svc, _ := f.MemberService(id)
		if svc.Cors.Get("pw") == nil {
			t.Fatalf("member %s lost the registered cor", id)
		}
	}

	// --- explicit drain/rebalance on a healthy member ---
	marked := ""
	for dev, owner := range owners {
		if owner == "node-c" {
			marked = dev
			break
		}
	}
	if marked == "" {
		t.Fatal("no device on node-c")
	}
	svcC, _ := f.MemberService("node-c")
	executions := 0
	svcC.ReplayDo(marked, "req-smoke-1", func() any { executions++; return "minted" })

	moved, err := f.Drain(ctx, "node-c")
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("drain moved nothing")
	}
	svcNew, _, err := f.ServiceFor(marked)
	if err != nil {
		t.Fatal(err)
	}
	if _, replayed := svcNew.ReplayDo(marked, "req-smoke-1", func() any { executions++; return "again" }); !replayed || executions != 1 {
		t.Fatalf("at-most-once across drain: replayed=%v executions=%d", replayed, executions)
	}
	if err := reseal(marked); err != nil {
		t.Fatalf("reseal after drain: %v", err)
	}
	if err := f.Uncordon("node-c"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Rebalance(ctx); err != nil {
		t.Fatal(err)
	}

	// Gap-free merged per-device audit sequence, across every member's log
	// (including the crashed one — its persisted log survives the process).
	sample := []string{marked}
	for dev, owner := range owners {
		if owner == "node-b" {
			sample = append(sample, dev)
			break
		}
	}
	for _, dev := range sample {
		var seqs []uint64
		for _, id := range f.Members() {
			svc, _ := f.MemberService(id)
			for _, e := range svc.Audit.Find(audit.Query{DeviceID: dev}) {
				if e.DeviceSeq == 0 {
					t.Fatalf("device entry without DeviceSeq: %v", e)
				}
				seqs = append(seqs, e.DeviceSeq)
			}
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		if len(seqs) < 2 {
			t.Fatalf("device %s: expected history on multiple members, got %d entries", dev, len(seqs))
		}
		for i, s := range seqs {
			if s != uint64(i+1) {
				t.Fatalf("device %s: audit seq gap in merged stream %v", dev, seqs)
			}
		}
	}
}
