package apps

import (
	"testing"

	"tinman/internal/core"
	"tinman/internal/netsim"
	"tinman/internal/taint"
	"tinman/internal/vm"
)

// gameSource is a non-critical app that never touches a cor.
const gameSource = `
class Game
  method frame 1 6
    const r1, 0
    const r2, 0
  loop:
    ifge r2, r0, done
    add r1, r1, r2
    const r3, 1
    add r2, r2, r3
    goto loop
  done:
    return r1
  end
end`

// TestSelectiveTaintingPerApp exercises §3.5's selective tainting at the
// per-app granularity: the security-critical app runs under asymmetric
// tainting (and can use cors), the game opts out (and pays nothing), both
// on the same device.
func TestSelectiveTaintingPerApp(t *testing.T) {
	env, err := NewLoginEnv(EnvConfig{Profile: netsim.WiFi, TinMan: true, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	d := env.World.Device

	off := taint.Off
	game, err := d.InstallAppOpts("game", gameSource, core.InstallOpts{FrameworkHeapKB: 8, Policy: &off})
	if err != nil {
		t.Fatal(err)
	}
	if game.VM().Tracking() {
		t.Fatal("opted-out app is tracking")
	}
	res, err := game.Run("Game", "frame", vm.IntVal(1000))
	if err != nil || res.Int != 499500 {
		t.Fatalf("game: %v %v", res, err)
	}
	if game.Report.Migrations != 0 {
		t.Fatal("game migrated")
	}

	// The critical app on the same device still protects its cor.
	if _, err := env.Login("paypal"); err != nil {
		t.Fatal(err)
	}
	if !env.Apps["paypal"].VM().Tracking() {
		t.Fatal("critical app lost tracking")
	}
}
