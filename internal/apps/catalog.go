package apps

import (
	"fmt"
	"strings"

	"tinman/internal/core"
	"tinman/internal/netsim"
	"tinman/internal/taint"
	"tinman/internal/vm"
)

// Spec parameterizes one evaluation app. The knobs reproduce the per-app
// differences in Table 3: how much code runs where, how large the initial
// DSM sync is, and how many synchronizations a login needs.
type Spec struct {
	// Name is the app name; ClassName the main class in its program.
	Name      string
	ClassName string
	// Domain/Addr locate its origin server.
	Domain string
	Addr   string
	// Account and Password are the test credentials; CorID names the stored
	// password cor.
	Account  string
	Password string
	CorID    string
	// DeviceCalls and NodeCalls size the device-resident UI work and the
	// offloaded work (method invocations ≈ these counts).
	DeviceCalls int
	NodeCalls   int
	// HeapKB sizes the framework heap (Table 3 "Off. Init").
	HeapKB int
	// NodeScratch is the number of temporary strings the offloaded code
	// allocates (Table 3 "Off. Dirty").
	NodeScratch int
	// TwoPhase logins authenticate twice (a session fetch then the login),
	// doubling the DSM round trips.
	TwoPhase bool
	// UseLock guards the request build with a monitor whose home is the
	// device, forcing an extra happens-before migration (the github case).
	UseLock bool
}

// LoginApps are the four Table 3 workloads. Call counts are scaled to the
// paper's offloaded-fraction column (4.7%, 2.4%, 2.0%, 1.7%).
var LoginApps = []Spec{
	{
		// Paper: 10274 offloaded invocations = 4.7%, 2 syncs, 768.5 KB
		// init, 24.3 KB dirty.
		Name: "paypal", ClassName: "PayPalApp",
		Domain: "paypal.com", Addr: "64.4.250.36",
		Account: "alice", Password: "correct horse battery", CorID: "paypal-pw",
		DeviceCalls: 208000, NodeCalls: 10200,
		HeapKB: 756, NodeScratch: 94,
	},
	{
		// Paper: 2835 = 2.4%, 4 syncs, 759.8 KB init, 16.6 KB dirty.
		Name: "ebay", ClassName: "EbayApp",
		Domain: "ebay.com", Addr: "66.135.195.175",
		Account: "bob", Password: "tr0ub4dor&3", CorID: "ebay-pw",
		DeviceCalls: 115000, NodeCalls: 1400,
		HeapKB: 748, NodeScratch: 31, TwoPhase: true,
	},
	{
		// Paper: 1672 = 2.0%, 3 syncs, 603.0 KB init, 4.9 KB dirty.
		Name: "github", ClassName: "GithubApp",
		Domain: "github.com", Addr: "140.82.112.3",
		Account: "carol", Password: "octocat-hunter2", CorID: "github-pw",
		DeviceCalls: 82000, NodeCalls: 1650,
		HeapKB: 594, NodeScratch: 16, UseLock: true,
	},
	{
		// Paper: 1791 = 1.7%, 4 syncs, 716.6 KB init, 18.7 KB dirty.
		Name: "askfm", ClassName: "AskfmApp",
		Domain: "ask.fm", Addr: "104.16.124.96",
		Account: "dave", Password: "whyask-9137", CorID: "askfm-pw",
		DeviceCalls: 103000, NodeCalls: 880,
		HeapKB: 706, NodeScratch: 35, TwoPhase: true,
	},
}

// SpecByName finds a login app spec.
func SpecByName(name string) (Spec, bool) {
	for _, s := range LoginApps {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// dirtyFiller is a 232-byte literal; with object headers each allocation
// costs ~256 wire bytes. scratchLoop copies it (substr) once per iteration
// so every scratch string is a distinct heap object — the VM interns the
// literal itself, and interned literals never inflate the dirty set.
var dirtyFiller = strings.Repeat("tinman-scratch-", 15) + "pad4567"

// Source generates the app's program in VM assembly.
func (s Spec) Source() string {
	var b strings.Builder

	// Work: the shared busy-loop helpers standing in for UI rendering,
	// JSON parsing and the rest of an app's non-cor logic.
	b.WriteString(`
class Work
  method tiny 1 5
    const r1, 3
    add r2, r0, r1
    mul r3, r2, r2
    xor r4, r3, r1
    return r4
  end
  method workLoop 1 6
    const r1, 0
  loop:
    ifge r1, r0, done
    invoke r2, Work.tiny, r1
    const r3, 1
    add r1, r1, r3
    goto loop
  done:
    return r1
  end
  method scratchLoop 1 6
    conststr r2, "` + dirtyFiller + `"
    const r3, 0
    const r1, 0
  loop:
    ifge r1, r0, done
    substr r4, r2, r3, -1
    const r5, 1
    add r1, r1, r5
    goto loop
  done:
    return r1
  end
end
`)

	fmt.Fprintf(&b, "\nclass %s\n", s.ClassName)

	// login(account, passwd, host) -> 1 on success.
	fmt.Fprintf(&b, "  method login 3 16\n")
	fmt.Fprintf(&b, "    new r3, %s\n", s.ClassName)   // lock object
	b.WriteString("    monenter r3\n    monexit r3\n") // lock home: device
	fmt.Fprintf(&b, "    const r4, %d\n", s.DeviceCalls)
	b.WriteString("    invoke r5, Work.workLoop, r4\n")
	fmt.Fprintf(&b, "    invoke r6, %s.buildRequest, r0, r1, r3\n", s.ClassName)
	b.WriteString("    native r7, https_request, r2, r6\n")
	if s.TwoPhase {
		fmt.Fprintf(&b, "    invoke r8, %s.buildRequest, r0, r1, r3\n", s.ClassName)
		b.WriteString("    native r9, https_request, r2, r8\n")
		b.WriteString("    move r7, r9\n")
	}
	fmt.Fprintf(&b, "    invoke r10, %s.parse, r7\n", s.ClassName)
	b.WriteString("    return r10\n  end\n")

	// buildRequest(account, passwd, lock) -> derived-cor request string.
	// The hash of the tainted placeholder is the offload trigger (fig 5).
	fmt.Fprintf(&b, "  method buildRequest 3 16\n")
	b.WriteString("    hash r3, r1\n") // OFFLOAD TRIGGER
	fmt.Fprintf(&b, "    const r4, %d\n", s.NodeCalls)
	b.WriteString("    invoke r5, Work.workLoop, r4\n")
	fmt.Fprintf(&b, "    const r6, %d\n", s.NodeScratch)
	b.WriteString("    invoke r7, Work.scratchLoop, r6\n")
	if s.UseLock {
		// Entering a device-homed monitor on the node forces a
		// happens-before migration (the github row of Table 3).
		b.WriteString("    monenter r2\n")
	}
	fmt.Fprintf(&b, "    conststr r8, \"POST /login HTTP/1.1\\nhost=%s\\nuser=\"\n", s.Domain)
	b.WriteString("    strcat r9, r8, r0\n")
	b.WriteString("    conststr r10, \"&hash=\"\n")
	b.WriteString("    strcat r11, r9, r10\n")
	b.WriteString("    strcat r12, r11, r3\n") // tainted concat: derived cor
	if s.UseLock {
		b.WriteString("    monexit r2\n")
	}
	b.WriteString("    return r12\n  end\n")

	// parse(resp) -> 1 if the response is a 200.
	b.WriteString(`  method parse 1 8
    conststr r1, "200 OK"
    indexof r2, r0, r1
    const r3, 0
    iflt r2, r3, fail
    const r4, 1
    return r4
  fail:
    const r4, 0
    return r4
  end
`)
	b.WriteString("end\n")
	return b.String()
}

// Env is a ready-to-measure world: servers up, cors registered, apps
// installed and bound.
type Env struct {
	World   *core.World
	Servers map[string]*OriginServer
	Apps    map[string]*core.App
	Specs   []Spec
}

// EnvConfig configures NewLoginEnv.
type EnvConfig struct {
	Profile netsim.Profile
	TinMan  bool
	Seed    int64
	// DevicePolicy overrides the device taint policy (defaults to
	// Asymmetric when TinMan is on, Off when off).
	DevicePolicy taint.Policy
	// NoWarmup disables the speculative DSM warm-up pipeline — the cold
	// column of the warm-vs-cold offload benchmark.
	NoWarmup bool
	// Specs defaults to LoginApps.
	Specs []Spec
}

// NewLoginEnv builds the standard evaluation environment.
func NewLoginEnv(cfg EnvConfig) (*Env, error) {
	specs := cfg.Specs
	if specs == nil {
		specs = LoginApps
	}
	pol := cfg.DevicePolicy
	if pol.Name() == "" {
		if cfg.TinMan {
			pol = taint.Asymmetric
		} else {
			pol = taint.Off
		}
	}
	baseline := make(map[string]string, len(specs))
	for _, s := range specs {
		baseline[s.CorID] = s.Password
	}
	w, err := core.NewWorld(core.Config{
		Seed:               cfg.Seed,
		Profile:            cfg.Profile,
		DevicePolicy:       pol,
		TinManEnabled:      cfg.TinMan,
		BaselinePlaintexts: baseline,
		NoWarmup:           cfg.NoWarmup,
	})
	if err != nil {
		return nil, err
	}
	env := &Env{
		World:   w,
		Servers: make(map[string]*OriginServer, len(specs)),
		Apps:    make(map[string]*core.App, len(specs)),
		Specs:   specs,
	}
	for _, s := range specs {
		srv, err := NewOriginServer(w, s.Domain, s.Addr, map[string]string{s.Account: s.Password})
		if err != nil {
			return nil, fmt.Errorf("apps: server %s: %v", s.Name, err)
		}
		env.Servers[s.Name] = srv
		if cfg.TinMan {
			if _, err := w.Node.RegisterCor(s.CorID, s.Password, s.Name+" password", s.Domain); err != nil {
				return nil, err
			}
		}
	}
	if cfg.TinMan {
		if err := w.Device.RefreshCatalog(); err != nil {
			return nil, err
		}
	}
	for _, s := range specs {
		app, err := w.Device.InstallApp(s.Name, s.Source(), s.HeapKB)
		if err != nil {
			return nil, fmt.Errorf("apps: installing %s: %v", s.Name, err)
		}
		env.Apps[s.Name] = app
		if cfg.TinMan {
			w.Node.BindApp(s.CorID, app.Hash())
		}
	}
	return env, nil
}

// Login runs one app's login flow end to end and verifies it succeeded
// against the origin server.
func (e *Env) Login(name string) (*core.Report, error) {
	spec, ok := SpecByName(name)
	if !ok {
		for _, s := range e.Specs {
			if s.Name == name {
				spec, ok = s, true
				break
			}
		}
	}
	if !ok {
		return nil, fmt.Errorf("apps: unknown app %q", name)
	}
	app := e.Apps[name]
	if app == nil {
		return nil, fmt.Errorf("apps: app %q not installed", name)
	}
	d := e.World.Device
	pw, err := d.CorArg(app, spec.CorID)
	if err != nil {
		return nil, err
	}
	res, err := app.Run(spec.ClassName, "login",
		d.StringArg(app, spec.Account), pw, d.StringArg(app, spec.Domain))
	if err != nil {
		return nil, err
	}
	if res.Kind != vm.KindInt || res.Int != 1 {
		return nil, fmt.Errorf("apps: %s login failed (result %v); server saw %d requests",
			name, res, len(e.Servers[name].Requests))
	}
	return &app.Report, nil
}
