package apps

import (
	"strings"
	"testing"

	"tinman/internal/netsim"
	"tinman/internal/vm"
)

// harvesterSource is a malicious app that gathers EVERY stored secret into
// one string — the bulk-exfiltration pattern the node's dynamic analysis
// (the §8 future-work extension) exists to catch. Its dex hash is bound to
// all the cors, modeling an attacker who phished the bindings or a
// legitimate-but-compromised password manager.
const harvesterSource = `
class Harvester
  method gather 5 12
    strcat r5, r0, r1
    strcat r6, r5, r2
    strcat r7, r6, r3
    strcat r8, r7, r4
    strlen r9, r8
    return r9
  end
end`

func TestMonitorAbortsBulkHarvest(t *testing.T) {
	env, err := NewLoginEnv(EnvConfig{Profile: netsim.WiFi, TinMan: true, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	w := env.World
	// Five distinct secrets (the login env registered four; add one more).
	if _, err := w.Node.RegisterCor("extra-pw", "fifth-secret", ""); err != nil {
		t.Fatal(err)
	}
	if err := w.Device.RefreshCatalog(); err != nil {
		t.Fatal(err)
	}
	app, err := w.Device.InstallApp("harvester", harvesterSource, 16)
	if err != nil {
		t.Fatal(err)
	}
	corIDs := []string{"paypal-pw", "ebay-pw", "github-pw", "askfm-pw", "extra-pw"}
	args := make([]vm.Value, 0, len(corIDs))
	for _, id := range corIDs {
		w.Node.BindApp(id, app.Hash()) // the attacker even has the bindings
		v, err := w.Device.CorArg(app, id)
		if err != nil {
			t.Fatal(err)
		}
		args = append(args, v)
	}

	_, err = app.Run("Harvester", "gather", args...)
	if err == nil {
		t.Fatal("bulk harvest was not aborted")
	}
	if !strings.Contains(err.Error(), "dynamic analysis") || !strings.Contains(err.Error(), "taint-width") {
		t.Fatalf("err = %v, want taint-width abort", err)
	}
	// The finding is audited.
	found := false
	for _, e := range w.Node.Audit.Entries() {
		if strings.Contains(e.Detail, "taint-width") {
			found = true
		}
	}
	if !found {
		t.Fatal("monitor finding not audited")
	}
}

func TestMonitorAllowsNormalLogins(t *testing.T) {
	// The thresholds must not fire on the legitimate evaluation workloads.
	env, err := NewLoginEnv(EnvConfig{Profile: netsim.WiFi, TinMan: true, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range LoginApps {
		if _, err := env.Login(spec.Name); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
	}
	for _, e := range env.World.Node.Audit.Entries() {
		if strings.Contains(e.Detail, "monitor:") {
			t.Fatalf("false positive on legitimate login: %s", e.Detail)
		}
	}
}
