package apps

import (
	"strings"
	"testing"

	"tinman/internal/core"
	"tinman/internal/netsim"
)

// TestMarkedRecordTakesTheDetour uses the network tracer to verify fig 8's
// routing: during a TinMan login, the cor-bearing record reaches the origin
// server from the trusted node's forwarding (spoofed device source), having
// been redirected device -> node first.
func TestMarkedRecordTakesTheDetour(t *testing.T) {
	env, err := NewLoginEnv(EnvConfig{Profile: netsim.WiFi, TinMan: true, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	tr := &netsim.Tracer{}
	env.World.Net.Trace(tr)

	if _, err := env.Login("paypal"); err != nil {
		t.Fatal(err)
	}

	spec, _ := SpecByName("paypal")
	// Traffic device -> node exists (control plane + the redirected packet).
	if tr.CountBetween(core.DeviceAddr, core.NodeAddr) == 0 {
		t.Fatal("no device->node traffic recorded")
	}
	// Traffic node -> server exists: the reframed packet left the node for
	// the origin (its Src is spoofed to the device, but the link it crossed
	// is the node-server link; the tracer records the packet's addresses,
	// so look for device-addressed packets arriving at the server in excess
	// of the direct path by checking the node-server link was used at all).
	nodeServer := env.World.Net.Host(core.NodeAddr).Link(spec.Addr)
	if nodeServer == nil {
		t.Fatal("no node-server link")
	}
	if nodeServer.Delivered[0]+nodeServer.Delivered[1] == 0 {
		t.Fatal("the node-server link carried no packets: payload replacement did not take the detour")
	}
	// And the server received packets bearing the device's source address.
	if tr.CountBetween(core.DeviceAddr, spec.Addr) == 0 {
		t.Fatal("no device-sourced packets reached the server")
	}
}

// TestBaselineNeverTalksToNode: with TinMan disabled there is no
// device->node traffic at all.
func TestBaselineNeverTalksToNode(t *testing.T) {
	env, err := NewLoginEnv(EnvConfig{Profile: netsim.WiFi, TinMan: false, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	tr := &netsim.Tracer{}
	env.World.Net.Trace(tr)
	if _, err := env.Login("github"); err != nil {
		t.Fatal(err)
	}
	if n := tr.CountBetween(core.DeviceAddr, core.NodeAddr); n != 0 {
		t.Fatalf("baseline sent %d packets to the trusted node", n)
	}
}

// tokenAppSource models the §5.4 "attack time window" discussion: after the
// first cor-protected login, the app holds a plain session token and reuses
// it without touching the cor again.
const tokenAppSource = `
class TokenApp
  ; login(account, passwd, host) -> token string (from the response)
  method login 3 14
    invoke r3, TokenApp.buildRequest, r0, r1
    native r4, https_request, r2, r3
    conststr r5, "token="
    indexof r6, r4, r5
    const r7, 0
    iflt r6, r7, fail
    const r8, 6
    add r9, r6, r8
    substr r10, r4, r9, -1
    return r10
  fail:
    conststr r10, ""
    return r10
  end
  method buildRequest 2 10
    hash r2, r1
    conststr r3, "POST /login HTTP/1.1\nuser="
    strcat r4, r3, r0
    conststr r5, "&hash="
    strcat r6, r4, r5
    strcat r7, r6, r2
    return r7
  end
  ; reuse(token, host) -> response using only the token (no cor access)
  method reuse 2 10
    conststr r2, "GET /feed HTTP/1.1\ntoken="
    strcat r3, r2, r0
    native r4, https_request, r1, r3
    return r4
  end
end`

func TestTokenReuseAttackWindow(t *testing.T) {
	env, err := NewLoginEnv(EnvConfig{Profile: netsim.WiFi, TinMan: true, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	w := env.World
	srv, err := NewOriginServer(w, "token.example", "203.0.113.77", map[string]string{"erin": "tok-secret-1"})
	if err != nil {
		t.Fatal(err)
	}
	// The server hands out a token at login and accepts it afterwards.
	issued := ""
	srv.Handler = func(req string) string {
		if strings.Contains(req, "hash="+PasswordHash("tok-secret-1")) {
			issued = "TKN123456"
			return "HTTP/1.1 200 OK\ntoken=" + issued
		}
		if issued != "" && strings.Contains(req, "token="+issued) {
			return "HTTP/1.1 200 OK\nfeed=cat pictures"
		}
		return "HTTP/1.1 403 Forbidden"
	}
	if _, err := w.Node.RegisterCor("tok-pw", "tok-secret-1", "", "token.example"); err != nil {
		t.Fatal(err)
	}
	if err := w.Device.RefreshCatalog(); err != nil {
		t.Fatal(err)
	}
	app, err := w.Device.InstallApp("tokenapp", tokenAppSource, 16)
	if err != nil {
		t.Fatal(err)
	}
	w.Node.BindApp("tok-pw", app.Hash())

	pw, _ := w.Device.CorArg(app, "tok-pw")
	tok, err := app.Run("TokenApp", "login",
		w.Device.StringArg(app, "erin"), pw, w.Device.StringArg(app, "token.example"))
	if err != nil {
		t.Fatal(err)
	}
	if tok.Ref == nil || tok.Ref.Str == "" {
		t.Fatal("no token returned")
	}
	// The token is NOT tainted: it came from the server, not from the cor
	// (§5.4: "since the token is not visible to the trusted node, it is not
	// tainted or tracked").
	if !tok.Ref.Tag.Empty() {
		t.Fatal("token unexpectedly tainted")
	}
	migrationsAfterLogin := app.Report.Migrations

	// Token reuse runs entirely on the device: the attack time window the
	// paper discusses — but the cor itself stays protected throughout.
	resp, err := app.Run("TokenApp", "reuse", tok, w.Device.StringArg(app, "token.example"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Ref.Str, "cat pictures") {
		t.Fatalf("token reuse failed: %q", resp.Ref.Str)
	}
	if app.Report.Migrations != migrationsAfterLogin {
		t.Fatal("token reuse should not offload")
	}
	// The password still never touched the device.
	for _, o := range app.VM().Heap.Objects() {
		if o.IsStr && strings.Contains(o.Str, "tok-secret-1") {
			t.Fatal("SECURITY: password on device heap")
		}
	}
}
