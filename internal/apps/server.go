// Package apps provides the evaluation workloads: simulated origin servers
// (banks, web services) and the mobile applications — written in the VM's
// assembly — whose login and payment flows the paper measures (BankDroid,
// PayPal, eBay, GitHub, Ask.fm, the browser).
package apps

import (
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"tinman/internal/core"
	"tinman/internal/httpsim"
	"tinman/internal/netsim"
	"tinman/internal/tcpsim"
	"tinman/internal/tlssim"
)

// serverKey is shared by all simulated servers: key generation is expensive
// and not part of any measured path.
var (
	serverKeyOnce sync.Once
	serverKeyVal  *rsa.PrivateKey
	serverKeyErr  error
)

func serverKey() (*rsa.PrivateKey, error) {
	serverKeyOnce.Do(func() {
		serverKeyVal, serverKeyErr = rsa.GenerateKey(rand.Reader, 1024)
	})
	return serverKeyVal, serverKeyErr
}

// OriginServer is a simulated HTTPS service: a TCP listener speaking the
// tlssim handshake-then-records convention, with a pluggable request
// handler. The default handler implements hash-based login (§2.1's "many
// bank web sites require the client to hash the plaintext ... and use the
// hash value for login").
type OriginServer struct {
	Domain string
	Addr   string
	Host   *netsim.Host
	Stack  *tcpsim.Stack

	// MaxVersion caps the TLS version (set TLS10 to model a legacy server
	// that TinMan must refuse).
	MaxVersion tlssim.Version
	// Users maps account -> password plaintext.
	Users map[string]string
	// Processing is per-request service time.
	Processing time.Duration
	// Handler overrides the default login handler.
	Handler func(req string) string

	// Requests records every decrypted request (test oracle: the server
	// must see real secrets, never placeholders).
	Requests []string

	w   *core.World
	key *rsa.PrivateKey
}

// NewOriginServer creates a server, links its host into the world and
// starts listening on :443.
func NewOriginServer(w *core.World, domain, addr string, users map[string]string) (*OriginServer, error) {
	key, err := serverKey()
	if err != nil {
		return nil, err
	}
	host := w.AddServerHost(domain, addr)
	s := &OriginServer{
		Domain:     domain,
		Addr:       addr,
		Host:       host,
		Stack:      tcpsim.NewStack(w.Net, host),
		MaxVersion: tlssim.TLS12,
		Users:      users,
		Processing: w.Cost.ServerProcessing,
		w:          w,
		key:        key,
	}
	l, err := s.Stack.Listen(443)
	if err != nil {
		return nil, err
	}
	l.OnAccept = s.onConn
	return s, nil
}

// serverConn is one client connection's state machine.
type serverConn struct {
	srv  *OriginServer
	tcp  *tcpsim.Conn
	buf  []byte
	hs   *tlssim.ServerState
	sess *tlssim.Session
}

func (s *OriginServer) onConn(c *tcpsim.Conn) {
	sc := &serverConn{srv: s, tcp: c}
	c.OnReadable = sc.onReadable
}

func (sc *serverConn) onReadable() {
	sc.buf = append(sc.buf, sc.tcp.Read(0)...)
	for {
		if sc.sess == nil {
			if !sc.stepHandshake() {
				return
			}
			continue
		}
		if !sc.stepRecord() {
			return
		}
	}
}

// stepHandshake consumes handshake frames; it reports whether progress was
// made.
func (sc *serverConn) stepHandshake() bool {
	var r core.FrameReader
	r = core.FrameReader{}
	r.Feed(sc.buf)
	f, ok, err := r.Next()
	if err != nil {
		sc.tcp.Abort()
		return false
	}
	if !ok {
		return false
	}
	sc.buf = r.Rest()

	switch f.Type {
	case core.HSClientHello:
		var ch tlssim.ClientHello
		if err := json.Unmarshal(f.Payload, &ch); err != nil {
			sc.tcp.Abort()
			return false
		}
		sh, st, err := tlssim.ServerRespond(tlssim.ServerConfig{MaxVersion: sc.srv.MaxVersion, Key: sc.srv.key}, &ch)
		if err != nil {
			sc.tcp.Abort()
			return false
		}
		sc.hs = st
		shJSON, _ := json.Marshal(sh)
		sc.tcp.Write(core.EncodeFrame(core.HSServerHello, shJSON))
	case core.HSKeyExchange:
		if sc.hs == nil {
			sc.tcp.Abort()
			return false
		}
		var cke tlssim.ClientKeyExchange
		if err := json.Unmarshal(f.Payload, &cke); err != nil {
			sc.tcp.Abort()
			return false
		}
		sess, err := tlssim.ServerFinish(sc.hs, &cke)
		if err != nil {
			sc.tcp.Abort()
			return false
		}
		sc.sess = sess
	default:
		sc.tcp.Abort()
		return false
	}
	return true
}

// stepRecord consumes one complete TLS record; it reports whether progress
// was made.
func (sc *serverConn) stepRecord() bool {
	if len(sc.buf) < 5 {
		return false
	}
	need := 5 + int(uint16(sc.buf[3])<<8|uint16(sc.buf[4]))
	if len(sc.buf) < need {
		return false
	}
	_, plaintext, _, err := sc.sess.Open(sc.buf[:need])
	sc.buf = append([]byte(nil), sc.buf[need:]...)
	if err != nil {
		sc.tcp.Abort()
		return false
	}
	req := string(plaintext)
	sc.srv.Requests = append(sc.srv.Requests, req)

	handler := sc.srv.Handler
	if handler == nil {
		handler = sc.srv.loginHandler
	}
	resp := handler(req)
	// Service time is modeled by scheduling the response.
	sc.srv.w.Net.Schedule(sc.srv.Processing, func() {
		rec, err := sc.sess.Seal(tlssim.TypeApplicationData, []byte(resp))
		if err != nil {
			sc.tcp.Abort()
			return
		}
		sc.tcp.Write(rec)
	})
	return true
}

// loginHandler implements hash-based login: a POST whose form carries
// "user=<account>&hash=<sha256-hex of password>" (§2.1's hash-for-login
// sites). Requests are routed through the httpsim layer like a web stack
// would.
func (s *OriginServer) loginHandler(raw string) string {
	req, err := httpsim.ParseRequest(raw)
	if err != nil {
		return httpsim.NewResponse(400, "error=malformed-request").Format()
	}
	if req.Method != "POST" {
		return httpsim.NewResponse(404, "error=unknown-endpoint").Format()
	}
	user, hash := req.FormValue("user"), req.FormValue("hash")
	pw, ok := s.Users[user]
	if !ok {
		return httpsim.NewResponse(403, "error=unknown-user").Format()
	}
	want := sha256.Sum256([]byte(pw))
	if hash != hex.EncodeToString(want[:]) {
		return httpsim.NewResponse(403, "error=bad-credentials").Format()
	}
	token := sha256.Sum256([]byte(user + pw + "session"))
	return httpsim.NewResponse(200, "token="+hex.EncodeToString(token[:8])).Format()
}

// SawSubstring reports whether any decrypted request contained the given
// string — the oracle for "the server received the real secret" and "no
// placeholder reached the server".
func (s *OriginServer) SawSubstring(sub string) bool {
	for _, r := range s.Requests {
		if strings.Contains(r, sub) {
			return true
		}
	}
	return false
}

// PasswordHash returns the hex sha256 of a password — what the login
// handler expects in the hash field.
func PasswordHash(pw string) string {
	h := sha256.Sum256([]byte(pw))
	return hex.EncodeToString(h[:])
}

var _ = fmt.Sprintf // keep fmt for future handlers
