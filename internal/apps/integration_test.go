package apps

import (
	"strings"
	"testing"

	"tinman/internal/netsim"
	"tinman/internal/vm"
)

func TestBaselineLoginSucceeds(t *testing.T) {
	// The unmodified-Android baseline: plaintext on the device, direct send.
	env, err := NewLoginEnv(EnvConfig{Profile: netsim.WiFi, TinMan: false, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := env.Login("paypal")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Migrations != 0 {
		t.Fatalf("baseline migrated %d times", rep.Migrations)
	}
	srv := env.Servers["paypal"]
	if !srv.SawSubstring(PasswordHash("correct horse battery")) {
		t.Fatal("server did not receive the password hash")
	}
}

func TestTinManLoginEndToEnd(t *testing.T) {
	env, err := NewLoginEnv(EnvConfig{Profile: netsim.WiFi, TinMan: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := env.Login("paypal")
	if err != nil {
		t.Fatal(err)
	}

	// The login must actually authenticate: the origin server saw the real
	// password hash, sent by the trusted node.
	srv := env.Servers["paypal"]
	wantHash := PasswordHash("correct horse battery")
	if !srv.SawSubstring(wantHash) {
		t.Fatalf("server never saw the real hash; requests: %v", srv.Requests)
	}
	// And never a placeholder.
	if srv.SawSubstring("TINMAN-PLACEHOLDER") {
		t.Fatal("SECURITY: placeholder reached the origin server")
	}

	// Offloading happened.
	if rep.Migrations == 0 || rep.Syncs == 0 {
		t.Fatalf("no offloading recorded: %+v", rep)
	}
	if rep.NodeCalls == 0 || rep.DeviceCalls == 0 {
		t.Fatalf("call split missing: %+v", rep)
	}
	// The offloaded fraction is small (<10%), per the paper's observation.
	if f := rep.OffloadedFraction(); f <= 0 || f > 0.10 {
		t.Fatalf("offloaded fraction = %.3f, want (0, 0.10]", f)
	}
	// The initial heap still reaches the node, but via the speculative
	// warm-up stream: background chunks carry the full snapshot, the
	// trigger-time migration ships only the dirty delta, and the node
	// admits it as a warm hit.
	if rep.WarmHits != 1 || rep.WarmMisses != 0 {
		t.Fatalf("warm hit/miss = %d/%d, want 1/0: %+v", rep.WarmHits, rep.WarmMisses, rep)
	}
	if rep.WarmupBytes == 0 || rep.WarmupChunks == 0 {
		t.Fatal("no warm-up stream recorded")
	}
	if rep.InitBytes != 0 {
		t.Fatalf("warm-path login still shipped a %dB initial sync", rep.InitBytes)
	}
	if rep.TriggerSyncBytes == 0 || rep.TriggerSyncBytes > rep.WarmupBytes/10 {
		t.Fatalf("trigger sync %dB should be a small delta of the %dB warm stream",
			rep.TriggerSyncBytes, rep.WarmupBytes)
	}

	// SECURITY: no plaintext of the password (or its hash) anywhere on the
	// device heap — the paper's core guarantee (§5.1).
	app := env.Apps["paypal"]
	for _, o := range app.VM().Heap.Objects() {
		if o.IsStr && (strings.Contains(o.Str, "correct horse battery") || strings.Contains(o.Str, wantHash)) {
			t.Fatalf("SECURITY: secret residue on device heap in object #%d", o.ID)
		}
	}
	// The audit log recorded the accesses.
	if env.World.Node.Audit.Len() == 0 {
		t.Fatal("no audit entries")
	}
}

func TestAllLoginAppsBothConfigs(t *testing.T) {
	for _, tinman := range []bool{false, true} {
		for _, spec := range LoginApps {
			name := spec.Name
			env, err := NewLoginEnv(EnvConfig{Profile: netsim.WiFi, TinMan: tinman, Seed: 2})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := env.Login(name)
			if err != nil {
				t.Fatalf("%s (tinman=%v): %v", name, tinman, err)
			}
			if tinman {
				if rep.Migrations == 0 {
					t.Fatalf("%s: no migrations under TinMan", name)
				}
				if rep.Syncs < 2 || rep.Syncs > 6 {
					t.Fatalf("%s: %d syncs, want the paper's 2-4ish range", name, rep.Syncs)
				}
			}
		}
	}
}

func TestTwoPhaseAppsSyncMoreThanSimple(t *testing.T) {
	env, err := NewLoginEnv(EnvConfig{Profile: netsim.WiFi, TinMan: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rp, err := env.Login("paypal")
	if err != nil {
		t.Fatal(err)
	}
	re, err := env.Login("ebay")
	if err != nil {
		t.Fatal(err)
	}
	if re.Syncs <= rp.Syncs {
		t.Fatalf("two-phase ebay synced %d <= simple paypal %d", re.Syncs, rp.Syncs)
	}
}

func TestTinManSlowerThanBaselineButBounded(t *testing.T) {
	base, err := NewLoginEnv(EnvConfig{Profile: netsim.WiFi, TinMan: false, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := base.Login("paypal")
	if err != nil {
		t.Fatal(err)
	}
	tin, err := NewLoginEnv(EnvConfig{Profile: netsim.WiFi, TinMan: true, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := tin.Login("paypal")
	if err != nil {
		t.Fatal(err)
	}
	if rt.Total <= rb.Total {
		t.Fatalf("TinMan login (%v) should cost more than baseline (%v)", rt.Total, rb.Total)
	}
	if rt.Total > 4*rb.Total {
		t.Fatalf("TinMan login (%v) over 4x baseline (%v): overhead out of the paper's regime", rt.Total, rb.Total)
	}
	if rt.DSMTime == 0 || rt.SSLTime == 0 {
		t.Fatalf("missing breakdown: %+v", rt)
	}
}

func TestPhishingAppDenied(t *testing.T) {
	// §5.2: a repackaged app (different dex hash) cannot use the cor.
	env, err := NewLoginEnv(EnvConfig{Profile: netsim.WiFi, TinMan: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := SpecByName("paypal")
	evil := spec
	evil.Name = "paypal-phish"
	evil.ClassName = "PhishApp" // different code => different hash
	app, err := env.World.Device.InstallApp(evil.Name, evil.Source(), 64)
	if err != nil {
		t.Fatal(err)
	}
	// Note: NOT bound to the cor.
	d := env.World.Device
	pw, err := d.CorArg(app, spec.CorID)
	if err != nil {
		t.Fatal(err)
	}
	_, err = app.Run(evil.ClassName, "login",
		d.StringArg(app, spec.Account), pw, d.StringArg(app, spec.Domain))
	if err == nil || !strings.Contains(err.Error(), "app not bound") {
		t.Fatalf("phishing app err = %v, want app-binding denial", err)
	}
	// The denial is in the audit log.
	found := false
	for _, e := range env.World.Node.Audit.Entries() {
		if e.Outcome == 1 && strings.Contains(e.Detail, "app not bound") {
			found = true
		}
	}
	if !found {
		t.Fatal("denial not audited")
	}
}

func TestRogueDomainDenied(t *testing.T) {
	// §3.4 second binding: the password cannot be sent to a non-whitelisted
	// domain even by the legitimate app code.
	env, err := NewLoginEnv(EnvConfig{Profile: netsim.WiFi, TinMan: true, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	// An attacker-controlled server, reachable but not whitelisted.
	if _, err := NewOriginServer(env.World, "evil.example", "198.51.100.66", nil); err != nil {
		t.Fatal(err)
	}
	spec, _ := SpecByName("paypal")
	app := env.Apps["paypal"]
	d := env.World.Device
	pw, err := d.CorArg(app, spec.CorID)
	if err != nil {
		t.Fatal(err)
	}
	_, err = app.Run(spec.ClassName, "login",
		d.StringArg(app, spec.Account), pw, d.StringArg(app, "evil.example"))
	if err == nil || !strings.Contains(err.Error(), "domain not in whitelist") {
		t.Fatalf("rogue domain err = %v, want whitelist denial", err)
	}
}

func TestRevokedDeviceDenied(t *testing.T) {
	env, err := NewLoginEnv(EnvConfig{Profile: netsim.WiFi, TinMan: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	env.World.Node.Policy.Revoke(env.World.Device.ID)
	_, err = env.Login("paypal")
	if err == nil || !strings.Contains(err.Error(), "revoked") {
		t.Fatalf("revoked device err = %v", err)
	}
}

func TestLegacyTLS10ServerRefused(t *testing.T) {
	// §3.2: the modified SSL library refuses TLS 1.0 servers outright.
	env, err := NewLoginEnv(EnvConfig{Profile: netsim.WiFi, TinMan: true, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	env.Servers["paypal"].MaxVersion = 0x0301 // TLS 1.0
	_, err = env.Login("paypal")
	if err == nil || !strings.Contains(err.Error(), "below required minimum") {
		t.Fatalf("TLS1.0 server err = %v, want min-version refusal", err)
	}
}

func TestThreeGSlowerThanWiFi(t *testing.T) {
	run := func(p netsim.Profile) int64 {
		env, err := NewLoginEnv(EnvConfig{Profile: p, TinMan: true, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := env.Login("paypal")
		if err != nil {
			t.Fatal(err)
		}
		return int64(rep.Total)
	}
	wifi := run(netsim.WiFi)
	tg := run(netsim.ThreeG)
	if tg <= wifi {
		t.Fatalf("3G login (%d) should be slower than Wi-Fi (%d)", tg, wifi)
	}
}

func TestSpecSourcesAssemble(t *testing.T) {
	for _, s := range LoginApps {
		if _, ok := SpecByName(s.Name); !ok {
			t.Fatalf("SpecByName(%s) failed", s.Name)
		}
		src := s.Source()
		if !strings.Contains(src, "hash r3, r1") {
			t.Fatalf("%s: missing offload trigger", s.Name)
		}
	}
	if _, ok := SpecByName("nope"); ok {
		t.Fatal("unknown spec resolved")
	}
}

func TestLoginResultIsInt(t *testing.T) {
	env, err := NewLoginEnv(EnvConfig{Profile: netsim.WiFi, TinMan: true, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	app := env.Apps["github"]
	spec, _ := SpecByName("github")
	d := env.World.Device
	pw, _ := d.CorArg(app, spec.CorID)
	res, err := app.Run(spec.ClassName, "login",
		d.StringArg(app, spec.Account), pw, d.StringArg(app, spec.Domain))
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != vm.KindInt || res.Int != 1 {
		t.Fatalf("github login result = %v", res)
	}
	// The lock dance produced at least 2 round trips.
	if app.Report.Migrations < 2 {
		t.Fatalf("github migrations = %d, want >= 2 (lock bounce)", app.Report.Migrations)
	}
}
