package tlssim

import (
	"crypto/rand"
	"encoding/json"
	"fmt"
	"io"

	"tinman/internal/fastjson"
	"tinman/internal/obs"
)

// Session is an established TLS session: two directional half-connections.
// Records sealed by Seal travel in the local party's write direction; Open
// consumes records from the peer.
type Session struct {
	version  Version
	suite    Suite
	isClient bool
	out, in  *halfConn
}

// Version returns the negotiated protocol version.
func (s *Session) Version() Version { return s.version }

// Suite returns the negotiated cipher suite.
func (s *Session) Suite() Suite { return s.suite }

// IsClient reports whether this side played the client role.
func (s *Session) IsClient() bool { return s.isClient }

// Seal encrypts one record for the peer.
func (s *Session) Seal(typ RecordType, plaintext []byte) ([]byte, error) {
	return s.out.seal(typ, plaintext)
}

// Open decrypts one record from the peer; rest is any trailing data after
// the record (records are often coalesced in one TCP segment).
func (s *Session) Open(wire []byte) (RecordType, []byte, []byte, error) {
	return s.in.open(wire)
}

// WriteSeq and ReadSeq expose sequence numbers for tests and accounting.
func (s *Session) WriteSeq() uint64 { return s.out.seq }

// ReadSeq is the receive-direction sequence number.
func (s *Session) ReadSeq() uint64 { return s.in.seq }

// HalfState is the exportable state of one direction.
type HalfState struct {
	Seq     uint64 `json:"seq"`
	MACKey  []byte `json:"mac_key"`
	Key     []byte `json:"key"`
	RC4S    []byte `json:"rc4_s,omitempty"`
	RC4I    uint8  `json:"rc4_i,omitempty"`
	RC4J    uint8  `json:"rc4_j,omitempty"`
	CBCLast []byte `json:"cbc_last,omitempty"`
}

// State is a full session snapshot: everything another party needs to
// continue the session. This is precisely what SSL session injection ships
// to the trusted node (§3.2) — and, when the suite is CBC with implicit IVs,
// CBCLast is the ciphertext block whose round trip leaks plaintext (fig 7).
type State struct {
	Version  Version   `json:"version"`
	Suite    Suite     `json:"suite"`
	IsClient bool      `json:"is_client"`
	Out      HalfState `json:"out"`
	In       HalfState `json:"in"`
}

// ObsFields summarizes a session state for span attribution: negotiated
// version, cipher suite and the write-direction sequence number. The method
// is the only sanctioned bridge from State to the observability layer —
// key material (MACKey, Key, RC4S, CBCLast) has no Field constructor, so a
// span structurally cannot carry it.
func (st *State) ObsFields() []obs.Field {
	// One combined note: JSON-object exporters key fields by kind, so two
	// Note fields on the same span would collide.
	return []obs.Field{
		obs.Note(st.Version.String() + " " + st.Suite.String()),
		obs.Count(int64(st.Out.Seq)),
	}
}

// Export snapshots the session. The session remains usable; the snapshot is
// independent.
func (s *Session) Export() *State {
	return &State{
		Version:  s.version,
		Suite:    s.suite,
		IsClient: s.isClient,
		Out:      exportHalf(s.out),
		In:       exportHalf(s.in),
	}
}

func exportHalf(hc *halfConn) HalfState {
	h := HalfState{
		Seq:    hc.seq,
		MACKey: append([]byte(nil), hc.macKey...),
		Key:    append([]byte(nil), hc.key...),
	}
	if hc.rc4 != nil {
		h.RC4S = append([]byte(nil), hc.rc4.S[:]...)
		h.RC4I, h.RC4J = hc.rc4.I, hc.rc4.J
	}
	if hc.cbcLast != nil {
		h.CBCLast = append([]byte(nil), hc.cbcLast...)
	}
	return h
}

// Resume reconstructs a live session from a snapshot. rnd supplies explicit
// IVs; nil means crypto/rand.
func Resume(st *State, rnd io.Reader) (*Session, error) {
	if rnd == nil {
		rnd = rand.Reader
	}
	out, err := resumeHalf(st, &st.Out, rnd)
	if err != nil {
		return nil, err
	}
	in, err := resumeHalf(st, &st.In, rnd)
	if err != nil {
		return nil, err
	}
	return &Session{version: st.Version, suite: st.Suite, isClient: st.IsClient, out: out, in: in}, nil
}

func resumeHalf(st *State, h *HalfState, rnd io.Reader) (*halfConn, error) {
	hc := &halfConn{
		version: st.Version,
		suite:   st.Suite,
		macKey:  append([]byte(nil), h.MACKey...),
		key:     append([]byte(nil), h.Key...),
		seq:     h.Seq,
		rand:    rnd,
	}
	switch st.Suite {
	case SuiteRC4SHA256:
		if len(h.RC4S) != 256 {
			return nil, fmt.Errorf("tlssim: resume: RC4 state has %d bytes, want 256", len(h.RC4S))
		}
		rc := &rc4State{I: h.RC4I, J: h.RC4J}
		copy(rc.S[:], h.RC4S)
		hc.rc4 = rc
	case SuiteAESCBCSHA256:
		hc.cbcLast = append([]byte(nil), h.CBCLast...)
		if st.Version == TLS10 && len(hc.cbcLast) == 0 {
			return nil, fmt.Errorf("tlssim: resume: TLS1.0 CBC state missing chained IV")
		}
	default:
		return nil, fmt.Errorf("tlssim: resume: unknown suite %v", st.Suite)
	}
	return hc, nil
}

// Marshal serializes the state for transport to the trusted node.
func (st *State) Marshal() ([]byte, error) { return json.Marshal(st) }

// UnmarshalState parses a serialized session state. The node parses one
// state per reseal, so this sits on the offload hot path and uses the
// single-scan decoder.
func UnmarshalState(b []byte) (*State, error) {
	var st State
	if err := fastjson.Unmarshal(b, &st); err != nil {
		return nil, fmt.Errorf("tlssim: unmarshal session state: %v", err)
	}
	return &st, nil
}
