// Package tlssim implements a simplified TLS: a record layer with
// MAC-then-encrypt, RC4 and AES-CBC cipher suites, version negotiation with
// an RSA key exchange, and — the part TinMan needs — fully exportable
// session state so the trusted node can transparently join an established
// session (SSL session injection, §3.2).
//
// The package deliberately implements both the implicit-IV CBC of TLS 1.0
// and the explicit-IV CBC of TLS 1.1+, because the paper's security argument
// (fig 7) hinges on the difference: syncing implicit-IV state leaks cor
// plaintext back to the device, so TinMan's client library refuses versions
// at or below TLS 1.0.
//
// This is a research simulator, not a production TLS stack: do not use it to
// protect real traffic.
package tlssim

// rc4State is an RC4 keystream generator with copyable state. The standard
// library's crypto/rc4 hides its state, but session injection requires
// shipping the exact keystream position to the trusted node and back, so we
// carry our own implementation.
type rc4State struct {
	S    [256]byte
	I, J uint8
}

// newRC4 runs the key-scheduling algorithm.
func newRC4(key []byte) *rc4State {
	var st rc4State
	for i := 0; i < 256; i++ {
		st.S[i] = byte(i)
	}
	var j uint8
	for i := 0; i < 256; i++ {
		j += st.S[i] + key[i%len(key)]
		st.S[i], st.S[j] = st.S[j], st.S[i]
	}
	return &st
}

// XORKeyStream encrypts/decrypts src into dst (they may alias).
func (st *rc4State) XORKeyStream(dst, src []byte) {
	i, j := st.I, st.J
	for k, b := range src {
		i++
		j += st.S[i]
		st.S[i], st.S[j] = st.S[j], st.S[i]
		dst[k] = b ^ st.S[st.S[i]+st.S[j]]
	}
	st.I, st.J = i, j
}

// clone copies the generator at its current keystream position.
func (st *rc4State) clone() *rc4State {
	cp := *st
	return &cp
}
