package tlssim

import (
	"crypto/hmac"
	"crypto/sha256"
)

// prf is a TLS-1.2-style pseudo-random function (P_SHA256) used to expand
// the pre-master secret into the master secret and key block.
func prf(secret []byte, label string, seed []byte, n int) []byte {
	labeled := append([]byte(label), seed...)
	out := make([]byte, 0, n)
	a := hmacSHA256(secret, labeled) // A(1)
	for len(out) < n {
		out = append(out, hmacSHA256(secret, append(a, labeled...))...)
		a = hmacSHA256(secret, a)
	}
	return out[:n]
}

func hmacSHA256(key, data []byte) []byte {
	m := hmac.New(sha256.New, key)
	m.Write(data)
	return m.Sum(nil)
}

// key sizes for both suites.
const (
	macKeyLen = 32 // HMAC-SHA256
	encKeyLen = 16 // RC4-128 / AES-128
	ivLen     = 16 // AES block size (initial CBC IV for TLS 1.0)
	macLen    = 32
)

// keyBlock derives directional keys from the master secret and the two
// hello randoms, mirroring TLS's key expansion.
type keyBlock struct {
	ClientMAC []byte
	ServerMAC []byte
	ClientKey []byte
	ServerKey []byte
	ClientIV  []byte
	ServerIV  []byte
}

func deriveKeys(master, clientRandom, serverRandom []byte) *keyBlock {
	seed := append(append([]byte(nil), serverRandom...), clientRandom...)
	raw := prf(master, "key expansion", seed, 2*macKeyLen+2*encKeyLen+2*ivLen)
	kb := &keyBlock{}
	take := func(n int) []byte {
		part := raw[:n]
		raw = raw[n:]
		return part
	}
	kb.ClientMAC = take(macKeyLen)
	kb.ServerMAC = take(macKeyLen)
	kb.ClientKey = take(encKeyLen)
	kb.ServerKey = take(encKeyLen)
	kb.ClientIV = take(ivLen)
	kb.ServerIV = take(ivLen)
	return kb
}

// masterSecret derives the 48-byte master secret.
func masterSecret(preMaster, clientRandom, serverRandom []byte) []byte {
	seed := append(append([]byte(nil), clientRandom...), serverRandom...)
	return prf(preMaster, "master secret", seed, 48)
}
