package tlssim

import (
	"bytes"
	"crypto/aes"
	"crypto/rand"
	"crypto/rsa"
	"encoding/hex"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

// testKey is a process-wide RSA key; generating one per test would dominate
// test time without adding coverage.
var (
	testKeyOnce sync.Once
	testKey     *rsa.PrivateKey
)

func serverKey(t testing.TB) *rsa.PrivateKey {
	testKeyOnce.Do(func() {
		k, err := rsa.GenerateKey(rand.Reader, 1024)
		if err != nil {
			t.Fatalf("generating test key: %v", err)
		}
		testKey = k
	})
	return testKey
}

func handshake(t testing.TB, ccfg ClientConfig, scfg ServerConfig) (*Session, *Session) {
	t.Helper()
	scfg.Key = serverKey(t)
	c, s, wire, err := Handshake(ccfg, scfg)
	if err != nil {
		t.Fatalf("handshake: %v", err)
	}
	if wire <= 0 {
		t.Fatal("handshake reported no wire bytes")
	}
	return c, s
}

func TestRC4KnownVector(t *testing.T) {
	// Classic test vector: key "Key", plaintext "Plaintext".
	st := newRC4([]byte("Key"))
	got := make([]byte, 9)
	st.XORKeyStream(got, []byte("Plaintext"))
	want, _ := hex.DecodeString("bbf316e8d940af0ad3")
	if !bytes.Equal(got, want) {
		t.Fatalf("rc4 = %x, want %x", got, want)
	}
}

func TestRC4CloneContinuesIdentically(t *testing.T) {
	a := newRC4([]byte("sessionkey"))
	buf := make([]byte, 100)
	a.XORKeyStream(buf, buf) // advance 100 bytes
	b := a.clone()
	x, y := make([]byte, 64), make([]byte, 64)
	a.XORKeyStream(x, make([]byte, 64))
	b.XORKeyStream(y, make([]byte, 64))
	if !bytes.Equal(x, y) {
		t.Fatal("cloned RC4 state diverged")
	}
}

func TestPRFDeterministicAndLengths(t *testing.T) {
	a := prf([]byte("secret"), "label", []byte("seed"), 100)
	b := prf([]byte("secret"), "label", []byte("seed"), 100)
	if !bytes.Equal(a, b) || len(a) != 100 {
		t.Fatal("prf not deterministic or wrong length")
	}
	c := prf([]byte("secret"), "label2", []byte("seed"), 100)
	if bytes.Equal(a, c) {
		t.Fatal("prf ignores label")
	}
}

func TestHandshakeNegotiation(t *testing.T) {
	cases := []struct {
		name        string
		clientMax   Version
		serverMax   Version
		wantVersion Version
	}{
		{"both-12", TLS12, TLS12, TLS12},
		{"old-server", TLS12, TLS10, TLS10},
		{"old-client", TLS10, TLS12, TLS10},
		{"both-11", TLS11, TLS11, TLS11},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, s := handshake(t,
				ClientConfig{MaxVersion: tc.clientMax},
				ServerConfig{MaxVersion: tc.serverMax})
			if c.Version() != tc.wantVersion || s.Version() != tc.wantVersion {
				t.Fatalf("negotiated %v/%v, want %v", c.Version(), s.Version(), tc.wantVersion)
			}
		})
	}
}

func TestTinManMinVersionRefusesTLS10(t *testing.T) {
	// §3.2: the modified client SSL library ensures the version is newer
	// than TLS 1.0; a legacy server must be refused.
	ch, cst, err := NewClientHello(ClientConfig{MinVersion: TLS11})
	if err != nil {
		t.Fatal(err)
	}
	sh, _, err := ServerRespond(ServerConfig{MaxVersion: TLS10, Key: serverKey(t)}, ch)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ClientFinish(cst, sh); err == nil || !strings.Contains(err.Error(), "below required minimum") {
		t.Fatalf("err = %v, want min-version refusal", err)
	}
}

func TestServerCannotChooseUnofferedSuite(t *testing.T) {
	ch, cst, _ := NewClientHello(ClientConfig{Suites: []Suite{SuiteAESCBCSHA256}})
	sh, _, err := ServerRespond(ServerConfig{Key: serverKey(t)}, ch)
	if err != nil {
		t.Fatal(err)
	}
	sh.Suite = SuiteRC4SHA256 // tampered
	if _, _, err := ClientFinish(cst, sh); err == nil || !strings.Contains(err.Error(), "unoffered suite") {
		t.Fatalf("err = %v", err)
	}
}

func TestNoCommonSuite(t *testing.T) {
	ch, _, _ := NewClientHello(ClientConfig{Suites: []Suite{SuiteRC4SHA256}})
	_, _, err := ServerRespond(ServerConfig{Suites: []Suite{SuiteAESCBCSHA256}, Key: serverKey(t)}, ch)
	if err == nil || !strings.Contains(err.Error(), "no common cipher suite") {
		t.Fatalf("err = %v", err)
	}
}

func TestRecordRoundTripAllConfigs(t *testing.T) {
	for _, suite := range []Suite{SuiteRC4SHA256, SuiteAESCBCSHA256} {
		for _, ver := range []Version{TLS10, TLS11, TLS12} {
			c, s := handshake(t,
				ClientConfig{MaxVersion: ver, Suites: []Suite{suite}},
				ServerConfig{MaxVersion: ver, Suites: []Suite{suite}})
			for i := 0; i < 5; i++ {
				msg := []byte(strings.Repeat("hello tinman ", i+1))
				rec, err := c.Seal(TypeApplicationData, msg)
				if err != nil {
					t.Fatalf("%v/%v seal: %v", suite, ver, err)
				}
				typ, got, rest, err := s.Open(rec)
				if err != nil {
					t.Fatalf("%v/%v open: %v", suite, ver, err)
				}
				if typ != TypeApplicationData || !bytes.Equal(got, msg) || len(rest) != 0 {
					t.Fatalf("%v/%v round trip mismatch", suite, ver)
				}
				// And the reverse direction.
				rec, _ = s.Seal(TypeApplicationData, []byte("reply"))
				if _, got, _, err = c.Open(rec); err != nil || string(got) != "reply" {
					t.Fatalf("%v/%v reverse: %v %q", suite, ver, err, got)
				}
			}
		}
	}
}

func TestRecordCiphertextHidesPlaintext(t *testing.T) {
	c, _ := handshake(t, ClientConfig{}, ServerConfig{})
	secret := []byte("credit-card=4111111111111111")
	rec, _ := c.Seal(TypeApplicationData, secret)
	if bytes.Contains(rec, []byte("4111111111111111")) {
		t.Fatal("plaintext visible in sealed record")
	}
}

func TestTamperedRecordRejected(t *testing.T) {
	c, s := handshake(t, ClientConfig{}, ServerConfig{})
	rec, _ := c.Seal(TypeApplicationData, []byte("payload"))
	rec[len(rec)-1] ^= 0x01
	if _, _, _, err := s.Open(rec); err == nil {
		t.Fatal("tampered record accepted")
	}
}

func TestReplayRejected(t *testing.T) {
	c, s := handshake(t, ClientConfig{Suites: []Suite{SuiteRC4SHA256}}, ServerConfig{})
	rec, _ := c.Seal(TypeApplicationData, []byte("once"))
	if _, _, _, err := s.Open(rec); err != nil {
		t.Fatal(err)
	}
	// Replaying the identical record must fail: the MAC covers the
	// sequence number.
	if _, _, _, err := s.Open(rec); err == nil {
		t.Fatal("replayed record accepted")
	}
}

func TestCoalescedRecords(t *testing.T) {
	c, s := handshake(t, ClientConfig{}, ServerConfig{})
	r1, _ := c.Seal(TypeApplicationData, []byte("first"))
	r2, _ := c.Seal(TypeApplicationData, []byte("second"))
	wire := append(append([]byte(nil), r1...), r2...)
	_, got1, rest, err := s.Open(wire)
	if err != nil || string(got1) != "first" || len(rest) != len(r2) {
		t.Fatalf("first open: %v %q rest=%d", err, got1, len(rest))
	}
	_, got2, rest, err := s.Open(rest)
	if err != nil || string(got2) != "second" || len(rest) != 0 {
		t.Fatalf("second open: %v %q", err, got2)
	}
}

func TestTruncatedRecordRejected(t *testing.T) {
	c, s := handshake(t, ClientConfig{}, ServerConfig{})
	rec, _ := c.Seal(TypeApplicationData, []byte("payload"))
	for _, cut := range []int{1, 4, len(rec) - 1} {
		if _, _, _, err := s.Open(rec[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestMarkedCorRecordType(t *testing.T) {
	c, s := handshake(t, ClientConfig{}, ServerConfig{})
	rec, err := c.Seal(TypeMarkedCor, []byte("placeholder-bearing request"))
	if err != nil {
		t.Fatal(err)
	}
	// The mark is visible in the clear (first byte) — that is the point:
	// the packet filter matches on it without decrypting (§3.6).
	if RecordType(rec[0]) != TypeMarkedCor {
		t.Fatalf("record type byte = %d", rec[0])
	}
	typ, got, _, err := s.Open(rec)
	if err != nil || typ != TypeMarkedCor || string(got) != "placeholder-bearing request" {
		t.Fatalf("open marked: %v %v %q", err, typ, got)
	}
}

func TestOversizeRecordRefused(t *testing.T) {
	c, _ := handshake(t, ClientConfig{}, ServerConfig{})
	if _, err := c.Seal(TypeApplicationData, make([]byte, maxRecordPayload+1)); err == nil {
		t.Fatal("oversize payload accepted")
	}
}

// --- session injection ---

func TestSessionInjectionRC4(t *testing.T) {
	testSessionInjection(t, SuiteRC4SHA256, TLS12)
}

func TestSessionInjectionCBCExplicitIV(t *testing.T) {
	testSessionInjection(t, SuiteAESCBCSHA256, TLS12)
}

func testSessionInjection(t *testing.T, suite Suite, ver Version) {
	t.Helper()
	device, server := handshake(t,
		ClientConfig{MaxVersion: ver, Suites: []Suite{suite}},
		ServerConfig{MaxVersion: ver, Suites: []Suite{suite}})

	// Device exchanges some traffic first (the non-cor part of the app).
	rec, _ := device.Seal(TypeApplicationData, []byte("GET /login"))
	if _, _, _, err := server.Open(rec); err != nil {
		t.Fatal(err)
	}
	rec, _ = server.Seal(TypeApplicationData, []byte("form"))
	if _, _, _, err := device.Open(rec); err != nil {
		t.Fatal(err)
	}

	// 1. Device exports its session state and ships it to the trusted node.
	blob, err := device.Export().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	st, err := UnmarshalState(blob)
	if err != nil {
		t.Fatal(err)
	}
	node, err := Resume(st, nil)
	if err != nil {
		t.Fatal(err)
	}

	// 2. The node seals the cor-bearing record; the server must accept it
	// exactly as if the device had sent it.
	rec, err = node.Seal(TypeApplicationData, []byte("password=hunter2!"))
	if err != nil {
		t.Fatal(err)
	}
	typ, got, _, err := server.Open(rec)
	if err != nil || typ != TypeApplicationData || string(got) != "password=hunter2!" {
		t.Fatalf("server after injection: %v %q", err, got)
	}
	// Server replies; the node reads it.
	rec, _ = server.Seal(TypeApplicationData, []byte("200 OK"))
	if _, got, _, err = node.Open(rec); err != nil || string(got) != "200 OK" {
		t.Fatalf("node read: %v %q", err, got)
	}

	// 3. State returns to the device, which resumes seamlessly.
	st2, err := UnmarshalState(mustMarshal(t, node.Export()))
	if err != nil {
		t.Fatal(err)
	}
	device2, err := Resume(st2, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec, _ = device2.Seal(TypeApplicationData, []byte("GET /account"))
	if _, got, _, err = server.Open(rec); err != nil || string(got) != "GET /account" {
		t.Fatalf("device after return: %v %q", err, got)
	}
	rec, _ = server.Seal(TypeApplicationData, []byte("balance: 100"))
	if _, got, _, err = device2.Open(rec); err != nil || string(got) != "balance: 100" {
		t.Fatalf("device read after return: %v %q", err, got)
	}
}

func TestStaleSessionStateFailsAfterInjection(t *testing.T) {
	// If the device kept using its *pre-injection* session while the node
	// advanced it, sequence numbers desynchronize and the server rejects —
	// the reason TinMan serializes the hand-off.
	device, server := handshake(t, ClientConfig{Suites: []Suite{SuiteRC4SHA256}}, ServerConfig{})
	node, err := Resume(device.Export(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := node.Seal(TypeApplicationData, []byte("cor"))
	if _, _, _, err := server.Open(rec); err != nil {
		t.Fatal(err)
	}
	// Stale device seal now fails at the server.
	rec, _ = device.Seal(TypeApplicationData, []byte("stale"))
	if _, _, _, err := server.Open(rec); err == nil {
		t.Fatal("server accepted a record from the stale session state")
	}
}

func TestResumeValidation(t *testing.T) {
	if _, err := Resume(&State{Suite: SuiteRC4SHA256}, nil); err == nil {
		t.Fatal("resume with empty RC4 state accepted")
	}
	if _, err := Resume(&State{Suite: Suite(0x9999)}, nil); err == nil {
		t.Fatal("resume with unknown suite accepted")
	}
	if _, err := Resume(&State{Version: TLS10, Suite: SuiteAESCBCSHA256}, nil); err == nil {
		t.Fatal("resume TLS1.0 CBC without chain state accepted")
	}
	if _, err := UnmarshalState([]byte("{")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

// --- the Figure 7 leak ---

func TestImplicitIVLeak(t *testing.T) {
	// Fig 7, faithfully: a TLS 1.0 CBC session is synced to the node, which
	// CBC-encrypts one cor block chained onto the device's last ciphertext
	// block. Syncing the chain state back hands the device everything it
	// needs: key (it ran the handshake), C11 (its own last block), C12 (the
	// returned chain state).
	device, _ := handshake(t,
		ClientConfig{MaxVersion: TLS10, Suites: []Suite{SuiteAESCBCSHA256}},
		ServerConfig{MaxVersion: TLS10})
	if device.Version() != TLS10 {
		t.Fatal("setup: want TLS1.0")
	}
	// Device sends a record; its chain state is now C11.
	if _, err := device.Seal(TypeApplicationData, []byte("innocent request")); err != nil {
		t.Fatal(err)
	}
	c11 := device.ChainState()
	key := device.WriteKey()

	// The node (resumed from the synced state) encrypts the cor block.
	node, err := Resume(device.Export(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cor := []byte("pin=9137;ok=yes!") // exactly one AES block
	block, _ := aes.NewCipher(key)
	c12 := make([]byte, 16)
	encryptCBC(block, c11, c12, cor)
	_ = node

	// The device applies P12 = D(C12) XOR C11 and recovers the cor.
	recovered, err := RecoverImplicitIVBlock(key, c11, c12)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(recovered, cor) {
		t.Fatalf("leak demo failed: got %q want %q", recovered, cor)
	}
}

func TestLeakImpossibleWithExplicitIV(t *testing.T) {
	// With TLS 1.1+ the chain-state attack surface does not exist: there is
	// no implicit chain to sync.
	device, _ := handshake(t,
		ClientConfig{MaxVersion: TLS12, Suites: []Suite{SuiteAESCBCSHA256}},
		ServerConfig{})
	if device.ChainState() != nil {
		t.Fatal("explicit-IV session must expose no chain state")
	}
	st := device.Export()
	if len(st.Out.CBCLast) != 0 {
		// The exported state for TLS 1.2 CBC has no chained IV to leak.
		t.Fatal("TLS1.2 CBC export carries chain state")
	}
}

func TestRecoverImplicitIVBlockValidation(t *testing.T) {
	if _, err := RecoverImplicitIVBlock([]byte("short"), make([]byte, 16), make([]byte, 16)); err == nil {
		t.Fatal("bad key accepted")
	}
	if _, err := RecoverImplicitIVBlock(make([]byte, 16), make([]byte, 3), make([]byte, 16)); err == nil {
		t.Fatal("bad block size accepted")
	}
}

// --- properties ---

func TestSealOpenRoundTripProperty(t *testing.T) {
	c, s := handshake(t, ClientConfig{}, ServerConfig{})
	prop := func(payload []byte) bool {
		if len(payload) > maxRecordPayload {
			payload = payload[:maxRecordPayload]
		}
		rec, err := c.Seal(TypeApplicationData, payload)
		if err != nil {
			return false
		}
		_, got, rest, err := s.Open(rec)
		return err == nil && bytes.Equal(got, payload) && len(rest) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPaddingRoundTripProperty(t *testing.T) {
	prop := func(b []byte) bool {
		padded := padCBC(b, 16)
		if len(padded)%16 != 0 {
			return false
		}
		out, err := unpadCBC(padded)
		return err == nil && bytes.Equal(out, b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestVersionAndSuiteStrings(t *testing.T) {
	for _, v := range []Version{TLS10, TLS11, TLS12, Version(0x9999)} {
		if v.String() == "" {
			t.Fatal("empty version string")
		}
	}
	for _, s := range []Suite{SuiteRC4SHA256, SuiteAESCBCSHA256, Suite(0x9999)} {
		if s.String() == "" {
			t.Fatal("empty suite string")
		}
	}
}

func mustMarshal(t *testing.T, st *State) []byte {
	t.Helper()
	b, err := st.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return b
}
