package tlssim

import (
	"crypto/aes"
	"fmt"
)

// RecoverImplicitIVBlock reproduces the paper's Figure 7 attack arithmetic.
//
// Under TLS 1.0's implicit-IV CBC, each record chains off the last
// ciphertext block of the previous record. If TinMan synchronized such a
// session across the device/node boundary, the device would hold the
// session key (it established the session) plus the chain block before the
// hand-off (c11, its own last ciphertext block) and after (c12, returned by
// the trusted node so the device can continue the session). For a
// single-block cor record that is enough to recover the plaintext:
//
//	P12 = Decrypt(key, C12) XOR C11
//
// This helper exists so tests and the phishing-defense example can
// demonstrate the leak; TinMan's client library prevents it by refusing to
// negotiate anything below TLS 1.1 (§3.2).
func RecoverImplicitIVBlock(key, c11, c12 []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("tlssim: leak demo: %v", err)
	}
	bs := block.BlockSize()
	if len(c11) != bs || len(c12) != bs {
		return nil, fmt.Errorf("tlssim: leak demo: blocks must be %d bytes, got %d and %d", bs, len(c11), len(c12))
	}
	p := make([]byte, bs)
	block.Decrypt(p, c12)
	for i := range p {
		p[i] ^= c11[i]
	}
	return p, nil
}

// ChainState returns the session's current outbound implicit-IV chain block
// (TLS 1.0 CBC only) — the value a session sync necessarily reveals.
func (s *Session) ChainState() []byte {
	if s.version != TLS10 || s.suite != SuiteAESCBCSHA256 {
		return nil
	}
	return append([]byte(nil), s.out.cbcLast...)
}

// WriteKey exposes the outbound encryption key. The device legitimately
// holds it (it ran the handshake); the leak demo uses it to show why that,
// plus implicit-IV chaining, breaks cor confidentiality.
func (s *Session) WriteKey() []byte { return append([]byte(nil), s.out.key...) }
