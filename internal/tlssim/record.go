package tlssim

import (
	"crypto/aes"
	"crypto/hmac"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Version is a TLS protocol version.
type Version uint16

// Supported versions. The BEAST-era boundary between TLS10 (implicit CBC
// IVs) and TLS11 (explicit IVs) is what TinMan's client-side enforcement is
// about (§3.2).
const (
	TLS10 Version = 0x0301
	TLS11 Version = 0x0302
	TLS12 Version = 0x0303
)

func (v Version) String() string {
	switch v {
	case TLS10:
		return "TLS1.0"
	case TLS11:
		return "TLS1.1"
	case TLS12:
		return "TLS1.2"
	}
	return fmt.Sprintf("TLS(%#04x)", uint16(v))
}

// Suite is a cipher suite.
type Suite uint16

const (
	// SuiteRC4SHA256 is the stream suite: record-independent, so session
	// injection only needs the keystream position (§3.2).
	SuiteRC4SHA256 Suite = 0x0005
	// SuiteAESCBCSHA256 is the block suite; its IV handling depends on the
	// negotiated version.
	SuiteAESCBCSHA256 Suite = 0x003C
)

func (s Suite) String() string {
	switch s {
	case SuiteRC4SHA256:
		return "RC4-SHA256"
	case SuiteAESCBCSHA256:
		return "AES128-CBC-SHA256"
	}
	return fmt.Sprintf("Suite(%#04x)", uint16(s))
}

// RecordType is the content-type byte of a record.
type RecordType uint8

const (
	TypeAlert           RecordType = 21
	TypeHandshake       RecordType = 22
	TypeApplicationData RecordType = 23
	// TypeMarkedCor is TinMan's mark. The paper notes only 4 record types
	// exist while the field has 8 bits (§3.6); the modified SSL library
	// writes this reserved value so the device's packet filter can capture
	// cor-bearing records and redirect them to the trusted node.
	TypeMarkedCor RecordType = 0x7F
)

const recordHeaderLen = 5

// maxRecordPayload bounds a single record's plaintext.
const maxRecordPayload = 16 * 1024

var (
	// ErrBadMAC is returned when record authentication fails.
	ErrBadMAC = errors.New("tlssim: record MAC verification failed")
	// ErrBadPadding is returned on malformed CBC padding.
	ErrBadPadding = errors.New("tlssim: bad CBC padding")
)

// halfConn is one direction of a session: key material, sequence number and
// cipher state. It is the unit of state that session injection ships.
type halfConn struct {
	version Version
	suite   Suite
	macKey  []byte
	key     []byte
	seq     uint64
	// rc4 is the stream state (RC4 suite).
	rc4 *rc4State
	// cbcLast is the implicit-IV chain: the last ciphertext block of the
	// previous record (TLS 1.0 semantics). For TLS 1.1+ it is unused.
	cbcLast []byte
	// rand supplies explicit IVs (TLS 1.1+).
	rand io.Reader
}

func newHalfConn(version Version, suite Suite, macKey, key, iv []byte, rnd io.Reader) *halfConn {
	hc := &halfConn{
		version: version,
		suite:   suite,
		macKey:  append([]byte(nil), macKey...),
		key:     append([]byte(nil), key...),
		rand:    rnd,
	}
	switch suite {
	case SuiteRC4SHA256:
		hc.rc4 = newRC4(key)
	case SuiteAESCBCSHA256:
		// Only TLS 1.0 chains records; 1.1+ uses per-record explicit IVs
		// and carries no chain state (nothing to leak on session sync).
		if version == TLS10 {
			hc.cbcLast = append([]byte(nil), iv...)
		}
	}
	return hc
}

// computeMAC authenticates seq || type || version || len || plaintext.
func (hc *halfConn) computeMAC(typ RecordType, plaintext []byte) []byte {
	hdr := make([]byte, 8+recordHeaderLen)
	binary.BigEndian.PutUint64(hdr, hc.seq)
	hdr[8] = byte(typ)
	binary.BigEndian.PutUint16(hdr[9:], uint16(hc.version))
	binary.BigEndian.PutUint16(hdr[11:], uint16(len(plaintext)))
	return hmacSHA256(hc.macKey, append(hdr, plaintext...))
}

// seal produces a full wire record for the plaintext.
func (hc *halfConn) seal(typ RecordType, plaintext []byte) ([]byte, error) {
	if len(plaintext) > maxRecordPayload {
		return nil, fmt.Errorf("tlssim: record payload %d exceeds max %d", len(plaintext), maxRecordPayload)
	}
	mac := hc.computeMAC(typ, plaintext)
	content := append(append([]byte(nil), plaintext...), mac...)

	var payload []byte
	switch hc.suite {
	case SuiteRC4SHA256:
		payload = make([]byte, len(content))
		hc.rc4.XORKeyStream(payload, content)

	case SuiteAESCBCSHA256:
		block, err := aes.NewCipher(hc.key)
		if err != nil {
			return nil, err
		}
		padded := padCBC(content, block.BlockSize())
		var iv []byte
		explicit := hc.version >= TLS11
		if explicit {
			iv = make([]byte, block.BlockSize())
			if _, err := io.ReadFull(hc.rand, iv); err != nil {
				return nil, fmt.Errorf("tlssim: generating explicit IV: %v", err)
			}
		} else {
			// TLS 1.0: the IV is the last ciphertext block of the previous
			// record — the insecure chaining the BEAST attack exploits and
			// the reason TinMan forbids TLS 1.0 (§3.2).
			iv = hc.cbcLast
		}
		ct := make([]byte, len(padded))
		encryptCBC(block, iv, ct, padded)
		if explicit {
			payload = append(append([]byte(nil), iv...), ct...)
		} else {
			payload = ct
			hc.cbcLast = append([]byte(nil), ct[len(ct)-block.BlockSize():]...)
		}

	default:
		return nil, fmt.Errorf("tlssim: unknown suite %v", hc.suite)
	}

	hc.seq++
	rec := make([]byte, recordHeaderLen+len(payload))
	rec[0] = byte(typ)
	binary.BigEndian.PutUint16(rec[1:], uint16(hc.version))
	binary.BigEndian.PutUint16(rec[3:], uint16(len(payload)))
	copy(rec[recordHeaderLen:], payload)
	return rec, nil
}

// open decrypts and authenticates one wire record, returning its type,
// plaintext, and any trailing bytes beyond this record.
func (hc *halfConn) open(wire []byte) (RecordType, []byte, []byte, error) {
	if len(wire) < recordHeaderLen {
		return 0, nil, nil, fmt.Errorf("tlssim: record too short (%d bytes)", len(wire))
	}
	typ := RecordType(wire[0])
	ver := Version(binary.BigEndian.Uint16(wire[1:]))
	n := int(binary.BigEndian.Uint16(wire[3:]))
	if ver != hc.version {
		return 0, nil, nil, fmt.Errorf("tlssim: record version %v, session is %v", ver, hc.version)
	}
	if len(wire) < recordHeaderLen+n {
		return 0, nil, nil, fmt.Errorf("tlssim: truncated record: have %d, need %d", len(wire)-recordHeaderLen, n)
	}
	payload := wire[recordHeaderLen : recordHeaderLen+n]
	rest := wire[recordHeaderLen+n:]

	var content []byte
	switch hc.suite {
	case SuiteRC4SHA256:
		content = make([]byte, len(payload))
		hc.rc4.XORKeyStream(content, payload)

	case SuiteAESCBCSHA256:
		block, err := aes.NewCipher(hc.key)
		if err != nil {
			return 0, nil, nil, err
		}
		bs := block.BlockSize()
		var iv, ct []byte
		if hc.version >= TLS11 {
			if len(payload) < bs {
				return 0, nil, nil, fmt.Errorf("tlssim: payload shorter than explicit IV")
			}
			iv, ct = payload[:bs], payload[bs:]
		} else {
			iv, ct = hc.cbcLast, payload
		}
		if len(ct) == 0 || len(ct)%bs != 0 {
			return 0, nil, nil, fmt.Errorf("tlssim: ciphertext length %d not a block multiple", len(ct))
		}
		pt := make([]byte, len(ct))
		decryptCBC(block, iv, pt, ct)
		if hc.version < TLS11 {
			hc.cbcLast = append([]byte(nil), ct[len(ct)-bs:]...)
		}
		content, err = unpadCBC(pt)
		if err != nil {
			return 0, nil, nil, err
		}

	default:
		return 0, nil, nil, fmt.Errorf("tlssim: unknown suite %v", hc.suite)
	}

	if len(content) < macLen {
		return 0, nil, nil, ErrBadMAC
	}
	plaintext, mac := content[:len(content)-macLen], content[len(content)-macLen:]
	want := hc.computeMAC(typ, plaintext)
	if !hmac.Equal(mac, want) {
		return 0, nil, nil, ErrBadMAC
	}
	hc.seq++
	return typ, plaintext, rest, nil
}

// padCBC applies TLS-style padding: each pad byte equals padLen-1.
func padCBC(b []byte, blockSize int) []byte {
	padLen := blockSize - len(b)%blockSize
	out := append([]byte(nil), b...)
	for i := 0; i < padLen; i++ {
		out = append(out, byte(padLen-1))
	}
	return out
}

func unpadCBC(b []byte) ([]byte, error) {
	if len(b) == 0 {
		return nil, ErrBadPadding
	}
	padLen := int(b[len(b)-1]) + 1
	if padLen > len(b) {
		return nil, ErrBadPadding
	}
	for _, p := range b[len(b)-padLen:] {
		if int(p) != padLen-1 {
			return nil, ErrBadPadding
		}
	}
	return b[:len(b)-padLen], nil
}

func encryptCBC(block interface {
	BlockSize() int
	Encrypt(dst, src []byte)
}, iv, dst, src []byte) {
	bs := block.BlockSize()
	prev := iv
	for i := 0; i < len(src); i += bs {
		for j := 0; j < bs; j++ {
			dst[i+j] = src[i+j] ^ prev[j]
		}
		block.Encrypt(dst[i:i+bs], dst[i:i+bs])
		prev = dst[i : i+bs]
	}
}

func decryptCBC(block interface {
	BlockSize() int
	Decrypt(dst, src []byte)
}, iv, dst, src []byte) {
	bs := block.BlockSize()
	prev := append([]byte(nil), iv...)
	for i := 0; i < len(src); i += bs {
		cur := append([]byte(nil), src[i:i+bs]...)
		block.Decrypt(dst[i:i+bs], src[i:i+bs])
		for j := 0; j < bs; j++ {
			dst[i+j] ^= prev[j]
		}
		prev = cur
	}
}
