package tlssim

import (
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"math/big"
)

// The handshake is a deliberately compact three-message exchange —
// ClientHello, ServerHello, ClientKeyExchange — with an RSA-encrypted
// pre-master secret. Version negotiation follows the paper's description
// (§3.2): the client announces the highest version it supports and the
// server picks the most recent version both sides share. TinMan's modified
// client library additionally enforces a floor of TLS 1.1.

// ClientHello opens the handshake.
type ClientHello struct {
	MaxVersion Version  `json:"max_version"`
	Suites     []Suite  `json:"suites"`
	Random     [32]byte `json:"random"`
}

// ServerHello answers with the chosen parameters and the server's RSA
// public key (standing in for the certificate).
type ServerHello struct {
	Version Version  `json:"version"`
	Suite   Suite    `json:"suite"`
	Random  [32]byte `json:"random"`
	PubN    *big.Int `json:"pub_n"`
	PubE    int      `json:"pub_e"`
}

// ClientKeyExchange carries the RSA-encrypted pre-master secret.
type ClientKeyExchange struct {
	EncryptedPreMaster []byte `json:"epm"`
}

// ClientConfig configures the initiating side.
type ClientConfig struct {
	// MinVersion is the lowest acceptable version. TinMan devices set
	// TLS11: accepting TLS 1.0 would let implicit-IV state sync leak cor
	// plaintext (fig 7).
	MinVersion Version
	// MaxVersion is announced in the ClientHello; zero means TLS12.
	MaxVersion Version
	// Suites lists acceptable suites in preference order; empty means both
	// built-ins with AES-CBC preferred.
	Suites []Suite
	// Rand supplies randoms and the pre-master secret; nil means
	// crypto/rand.
	Rand io.Reader
}

// ServerConfig configures the accepting side.
type ServerConfig struct {
	// MaxVersion caps what the server accepts; zero means TLS12. A legacy
	// server is modeled with MaxVersion: TLS10.
	MaxVersion Version
	// Suites lists supported suites; empty means both built-ins.
	Suites []Suite
	// Key is the server's RSA key (its "certificate").
	Key *rsa.PrivateKey
	// Rand supplies the server random; nil means crypto/rand.
	Rand io.Reader
}

func (c *ClientConfig) fill() {
	if c.MaxVersion == 0 {
		c.MaxVersion = TLS12
	}
	if c.MinVersion == 0 {
		c.MinVersion = TLS10
	}
	if len(c.Suites) == 0 {
		c.Suites = []Suite{SuiteAESCBCSHA256, SuiteRC4SHA256}
	}
	if c.Rand == nil {
		c.Rand = rand.Reader
	}
}

func (c *ServerConfig) fill() {
	if c.MaxVersion == 0 {
		c.MaxVersion = TLS12
	}
	if len(c.Suites) == 0 {
		c.Suites = []Suite{SuiteAESCBCSHA256, SuiteRC4SHA256}
	}
	if c.Rand == nil {
		c.Rand = rand.Reader
	}
}

// ClientState is the client's in-flight handshake state between hello and
// finish.
type ClientState struct {
	cfg   ClientConfig
	hello ClientHello
}

// NewClientHello begins a handshake.
func NewClientHello(cfg ClientConfig) (*ClientHello, *ClientState, error) {
	cfg.fill()
	ch := ClientHello{MaxVersion: cfg.MaxVersion, Suites: append([]Suite(nil), cfg.Suites...)}
	if _, err := io.ReadFull(cfg.Rand, ch.Random[:]); err != nil {
		return nil, nil, fmt.Errorf("tlssim: client random: %v", err)
	}
	return &ch, &ClientState{cfg: cfg, hello: ch}, nil
}

// ServerState is the server's in-flight handshake state.
type ServerState struct {
	cfg         ServerConfig
	hello       ServerHello
	clientHello ClientHello
}

// ServerRespond picks the protocol parameters: the most recent version both
// support, and the client's most preferred mutually supported suite.
func ServerRespond(cfg ServerConfig, ch *ClientHello) (*ServerHello, *ServerState, error) {
	cfg.fill()
	if cfg.Key == nil {
		return nil, nil, fmt.Errorf("tlssim: server has no key")
	}
	version := cfg.MaxVersion
	if ch.MaxVersion < version {
		version = ch.MaxVersion
	}
	if version < TLS10 {
		return nil, nil, fmt.Errorf("tlssim: no common version (client max %v, server max %v)", ch.MaxVersion, cfg.MaxVersion)
	}
	var suite Suite
	found := false
clientSuites:
	for _, cs := range ch.Suites {
		for _, ss := range cfg.Suites {
			if cs == ss {
				suite, found = cs, true
				break clientSuites
			}
		}
	}
	if !found {
		return nil, nil, fmt.Errorf("tlssim: no common cipher suite")
	}
	sh := ServerHello{Version: version, Suite: suite, PubN: cfg.Key.N, PubE: cfg.Key.E}
	if _, err := io.ReadFull(cfg.Rand, sh.Random[:]); err != nil {
		return nil, nil, fmt.Errorf("tlssim: server random: %v", err)
	}
	return &sh, &ServerState{cfg: cfg, hello: sh, clientHello: *ch}, nil
}

// ClientFinish validates the server's choice (enforcing MinVersion — the
// TinMan modification), generates and encrypts the pre-master secret, and
// derives the client's session.
func ClientFinish(st *ClientState, sh *ServerHello) (*ClientKeyExchange, *Session, error) {
	if sh.Version > st.hello.MaxVersion {
		return nil, nil, fmt.Errorf("tlssim: server chose %v above our max %v", sh.Version, st.hello.MaxVersion)
	}
	if sh.Version < st.cfg.MinVersion {
		return nil, nil, fmt.Errorf("tlssim: server chose %v below required minimum %v (TinMan forbids implicit-IV TLS)", sh.Version, st.cfg.MinVersion)
	}
	okSuite := false
	for _, s := range st.hello.Suites {
		if s == sh.Suite {
			okSuite = true
			break
		}
	}
	if !okSuite {
		return nil, nil, fmt.Errorf("tlssim: server chose unoffered suite %v", sh.Suite)
	}

	preMaster := make([]byte, 48)
	if _, err := io.ReadFull(st.cfg.Rand, preMaster); err != nil {
		return nil, nil, fmt.Errorf("tlssim: pre-master: %v", err)
	}
	pub := &rsa.PublicKey{N: sh.PubN, E: sh.PubE}
	epm, err := rsa.EncryptOAEP(sha256.New(), st.cfg.Rand, pub, preMaster, []byte("tinman-premaster"))
	if err != nil {
		return nil, nil, fmt.Errorf("tlssim: encrypting pre-master: %v", err)
	}

	sess, err := buildSession(true, sh.Version, sh.Suite, preMaster, st.hello.Random[:], sh.Random[:], st.cfg.Rand)
	if err != nil {
		return nil, nil, err
	}
	return &ClientKeyExchange{EncryptedPreMaster: epm}, sess, nil
}

// ServerFinish decrypts the pre-master and derives the server's session.
func ServerFinish(st *ServerState, cke *ClientKeyExchange) (*Session, error) {
	preMaster, err := rsa.DecryptOAEP(sha256.New(), nil, st.cfg.Key, cke.EncryptedPreMaster, []byte("tinman-premaster"))
	if err != nil {
		return nil, fmt.Errorf("tlssim: decrypting pre-master: %v", err)
	}
	return buildSession(false, st.hello.Version, st.hello.Suite, preMaster, st.clientHello.Random[:], st.hello.Random[:], st.cfg.Rand)
}

// buildSession derives directional keys and assembles a Session for one
// role.
func buildSession(isClient bool, version Version, suite Suite, preMaster, clientRandom, serverRandom []byte, rnd io.Reader) (*Session, error) {
	master := masterSecret(preMaster, clientRandom, serverRandom)
	kb := deriveKeys(master, clientRandom, serverRandom)
	clientHalf := func() *halfConn {
		return newHalfConn(version, suite, kb.ClientMAC, kb.ClientKey, kb.ClientIV, rnd)
	}
	serverHalf := func() *halfConn {
		return newHalfConn(version, suite, kb.ServerMAC, kb.ServerKey, kb.ServerIV, rnd)
	}
	s := &Session{version: version, suite: suite, isClient: isClient}
	if isClient {
		s.out, s.in = clientHalf(), serverHalf()
	} else {
		s.out, s.in = serverHalf(), clientHalf()
	}
	return s, nil
}

// Handshake runs the whole exchange in-process and returns both sessions —
// a convenience for tests and for simulated origin servers whose handshake
// latency is modeled at the network layer rather than by shipping the
// individual messages.
func Handshake(ccfg ClientConfig, scfg ServerConfig) (client, server *Session, wireBytes int, err error) {
	ch, cst, err := NewClientHello(ccfg)
	if err != nil {
		return nil, nil, 0, err
	}
	sh, sst, err := ServerRespond(scfg, ch)
	if err != nil {
		return nil, nil, 0, err
	}
	cke, client, err := ClientFinish(cst, sh)
	if err != nil {
		return nil, nil, 0, err
	}
	server, err = ServerFinish(sst, cke)
	if err != nil {
		return nil, nil, 0, err
	}
	for _, m := range []any{ch, sh, cke} {
		b, err := json.Marshal(m)
		if err != nil {
			return nil, nil, 0, err
		}
		wireBytes += len(b)
	}
	return client, server, wireBytes, nil
}
