// Package profile implements the measurement instrument behind Table 3's
// "Off. Code" column: "we log every function invocation in the trusted
// node, and count the overall function invocations during the login phase"
// (§6.3). A Profiler attaches to a VM and tallies per-method invocation
// counts; two profilers (device + node) produce the offloaded-fraction
// breakdown per method.
package profile

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"tinman/internal/vm"
)

// Profiler tallies method invocations on one VM.
type Profiler struct {
	mu     sync.Mutex
	counts map[string]uint64
	total  uint64
}

// New creates an empty profiler.
func New() *Profiler {
	return &Profiler{counts: make(map[string]uint64)}
}

// Attach installs the profiler on a VM's invocation hook, chaining any
// existing hook.
func (p *Profiler) Attach(machine *vm.VM) {
	prev := machine.Hooks.OnInvoke
	machine.Hooks.OnInvoke = func(m *vm.Method) {
		p.Note(m.FullName())
		if prev != nil {
			prev(m)
		}
	}
}

// Note records one invocation of the named method.
func (p *Profiler) Note(method string) {
	p.mu.Lock()
	p.counts[method]++
	p.total++
	p.mu.Unlock()
}

// Total returns the number of recorded invocations.
func (p *Profiler) Total() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.total
}

// Count returns one method's invocation count.
func (p *Profiler) Count(method string) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.counts[method]
}

// Reset clears all counts.
func (p *Profiler) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.counts = make(map[string]uint64)
	p.total = 0
}

// Row is one method's share of the invocations.
type Row struct {
	Method   string
	Count    uint64
	Fraction float64
}

// Top returns the n most-invoked methods (all of them if n <= 0).
func (p *Profiler) Top(n int) []Row {
	p.mu.Lock()
	defer p.mu.Unlock()
	rows := make([]Row, 0, len(p.counts))
	for m, c := range p.counts {
		f := 0.0
		if p.total > 0 {
			f = float64(c) / float64(p.total)
		}
		rows = append(rows, Row{Method: m, Count: c, Fraction: f})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Count != rows[j].Count {
			return rows[i].Count > rows[j].Count
		}
		return rows[i].Method < rows[j].Method
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	return rows
}

// Split compares a device profiler and a node profiler the way Table 3
// does: per-method counts on each side plus the offloaded fraction.
type Split struct {
	Device *Profiler
	Node   *Profiler
}

// OffloadedFraction is node invocations over the combined total.
func (s Split) OffloadedFraction() float64 {
	d, n := s.Device.Total(), s.Node.Total()
	if d+n == 0 {
		return 0
	}
	return float64(n) / float64(d+n)
}

// WriteReport renders the split as a table.
func (s Split) WriteReport(w io.Writer, topN int) {
	fmt.Fprintf(w, "invocations: device %d, node %d (%.1f%% offloaded)\n",
		s.Device.Total(), s.Node.Total(), 100*s.OffloadedFraction())
	fmt.Fprintf(w, "%-40s %12s %12s\n", "method", "device", "node")
	seen := map[string]bool{}
	emit := func(rows []Row) {
		for _, r := range rows {
			if seen[r.Method] {
				continue
			}
			seen[r.Method] = true
			fmt.Fprintf(w, "%-40s %12d %12d\n", r.Method, s.Device.Count(r.Method), s.Node.Count(r.Method))
		}
	}
	emit(s.Device.Top(topN))
	emit(s.Node.Top(topN))
}
