package profile

import (
	"bytes"
	"strings"
	"testing"

	"tinman/internal/taint"
	"tinman/internal/vm"
	"tinman/internal/vm/asm"
)

const profSrc = `
class P
  method leaf 1 3
    const r1, 1
    add r2, r0, r1
    return r2
  end
  method mid 1 4
    invoke r1, P.leaf, r0
    invoke r2, P.leaf, r1
    return r2
  end
  method main 1 6
    const r1, 0
    const r2, 0
  loop:
    ifge r2, r0, done
    invoke r3, P.mid, r2
    add r1, r1, r3
    const r4, 1
    add r2, r2, r4
    goto loop
  done:
    return r1
  end
end`

func runProfiled(t *testing.T, n int64) *Profiler {
	t.Helper()
	prog, err := asm.Assemble("p", profSrc)
	if err != nil {
		t.Fatal(err)
	}
	machine := vm.New(vm.Config{Program: prog, Heap: vm.NewHeap(1, 2), Policy: taint.Off})
	p := New()
	p.Attach(machine)
	th, err := machine.NewThread(prog.Method("P", "main"), vm.IntVal(n))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := th.Run(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProfilerCounts(t *testing.T) {
	p := runProfiled(t, 10)
	if got := p.Count("P.mid"); got != 10 {
		t.Fatalf("mid = %d, want 10", got)
	}
	if got := p.Count("P.leaf"); got != 20 {
		t.Fatalf("leaf = %d, want 20", got)
	}
	if p.Total() != 30 {
		t.Fatalf("total = %d, want 30", p.Total())
	}
	// VM's own counter agrees.
}

func TestTopOrdering(t *testing.T) {
	p := runProfiled(t, 5)
	rows := p.Top(0)
	if len(rows) != 2 || rows[0].Method != "P.leaf" || rows[1].Method != "P.mid" {
		t.Fatalf("top = %+v", rows)
	}
	if rows[0].Fraction <= rows[1].Fraction {
		t.Fatal("fractions unordered")
	}
	if got := p.Top(1); len(got) != 1 {
		t.Fatalf("top(1) = %d rows", len(got))
	}
}

func TestResetAndNote(t *testing.T) {
	p := New()
	p.Note("a")
	p.Note("a")
	p.Note("b")
	if p.Total() != 3 || p.Count("a") != 2 {
		t.Fatal("note counting broken")
	}
	p.Reset()
	if p.Total() != 0 || len(p.Top(0)) != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestSplitReport(t *testing.T) {
	dev := runProfiled(t, 19) // 19*3 = 57 invocations
	node := runProfiled(t, 1) // 3 invocations
	s := Split{Device: dev, Node: node}
	if f := s.OffloadedFraction(); f <= 0.04 || f >= 0.06 {
		t.Fatalf("fraction = %v, want ~0.05", f)
	}
	var buf bytes.Buffer
	s.WriteReport(&buf, 10)
	out := buf.String()
	if !strings.Contains(out, "P.leaf") || !strings.Contains(out, "offloaded") {
		t.Fatalf("report:\n%s", out)
	}
	empty := Split{Device: New(), Node: New()}
	if empty.OffloadedFraction() != 0 {
		t.Fatal("empty split fraction")
	}
}

func TestAttachChainsExistingHook(t *testing.T) {
	prog, _ := asm.Assemble("p", profSrc)
	machine := vm.New(vm.Config{Program: prog, Heap: vm.NewHeap(1, 2), Policy: taint.Off})
	var chained int
	machine.Hooks.OnInvoke = func(m *vm.Method) { chained++ }
	p := New()
	p.Attach(machine)
	th, _ := machine.NewThread(prog.Method("P", "main"), vm.IntVal(2))
	th.Run()
	if chained == 0 {
		t.Fatal("previous hook not chained")
	}
	if uint64(chained) != p.Total() {
		t.Fatalf("chained %d != profiled %d", chained, p.Total())
	}
}
