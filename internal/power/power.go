// Package power models the device battery for the paper's energy
// experiments (Figs 16 and 17). Components integrate their draw over
// virtual time; the battery converts accumulated joules into the "remaining
// battery %" curves the paper plots.
//
// Constants approximate a 2012 Samsung Galaxy Nexus (1750 mAh battery,
// OMAP4460) with radio behavior from the 3G/Wi-Fi power literature of the
// era: cellular radios burn a high-power tail after each transfer, Wi-Fi
// returns to idle almost immediately.
package power

import (
	"fmt"
	"time"
)

// Draw is anything that can report energy consumed up to a point in time.
type Draw interface {
	// EnergyUpTo returns total joules consumed from time zero to t.
	EnergyUpTo(t time.Duration) float64
	// Name identifies the component in reports.
	Name() string
}

// GalaxyNexusCapacityJ is 1750 mAh at 3.7 V nominal.
const GalaxyNexusCapacityJ = 1.750 * 3.7 * 3600 // ≈ 23310 J

// Typical component draws in watts.
const (
	BaseIdleW    = 0.20 // SoC + RAM + background
	DisplayOnW   = 0.50 // 720p AMOLED at medium brightness
	CPUActiveW   = 1.10 // one OMAP4460 core busy
	WiFiActiveW  = 0.75
	WiFiTailW    = 0.12
	WiFiIdleW    = 0.01
	ThreeGDCHW   = 1.25 // connected/active state
	ThreeGFACHW  = 0.60 // tail state
	ThreeGIdleW  = 0.02
	VideoDecodeW = 0.55 // HW decoder for local 720p playback
)

// Tail durations.
const (
	WiFiTail   = 220 * time.Millisecond
	ThreeGTail = 5 * time.Second
)

// Constant is an always-on draw (base system, display while pinned on).
type Constant struct {
	name  string
	watts float64
}

// NewConstant creates a fixed draw.
func NewConstant(name string, watts float64) *Constant {
	return &Constant{name: name, watts: watts}
}

// Name implements Draw.
func (c *Constant) Name() string { return c.name }

// EnergyUpTo implements Draw.
func (c *Constant) EnergyUpTo(t time.Duration) float64 { return c.watts * t.Seconds() }

// interval is a closed-open busy span.
type interval struct {
	start, end time.Duration
}

// intervalSet accumulates busy spans registered in nondecreasing start
// order; overlapping or queued spans merge. Queries never mutate, so a
// battery can be sampled at any instant in any order.
type intervalSet struct {
	spans []interval
}

// add registers a span of length d starting at `at`; if the component is
// still busy at `at`, the new work queues behind it.
func (s *intervalSet) add(at, d time.Duration) {
	if d <= 0 {
		return
	}
	if n := len(s.spans); n > 0 && s.spans[n-1].end >= at {
		// Queue behind / merge with the running span.
		s.spans[n-1].end += d
		return
	}
	s.spans = append(s.spans, interval{start: at, end: at + d})
}

// busyBefore returns total busy time in [0, t).
func (s *intervalSet) busyBefore(t time.Duration) time.Duration {
	var sum time.Duration
	for _, iv := range s.spans {
		if iv.start >= t {
			break
		}
		end := iv.end
		if end > t {
			end = t
		}
		sum += end - iv.start
	}
	return sum
}

// Activity is a duty-cycled draw: bursts of activity at ActiveW over an
// IdleW floor (CPU, display toggling, video decode). Bursts must be
// registered in nondecreasing start order; energy queries are pure and may
// happen at any instant.
type Activity struct {
	name    string
	ActiveW float64
	IdleW   float64
	busy    intervalSet
}

// NewActivity creates a duty-cycled component.
func NewActivity(name string, activeW, idleW float64) *Activity {
	return &Activity{name: name, ActiveW: activeW, IdleW: idleW}
}

// Name implements Draw.
func (a *Activity) Name() string { return a.name }

// NoteActive records a burst of activity of length d starting at time at
// (bursts queue behind each other if they overlap).
func (a *Activity) NoteActive(at, d time.Duration) { a.busy.add(at, d) }

// EnergyUpTo implements Draw.
func (a *Activity) EnergyUpTo(t time.Duration) float64 {
	busy := a.busy.busyBefore(t)
	return a.ActiveW*busy.Seconds() + a.IdleW*(t-busy).Seconds()
}

// Radio models a wireless interface with active, tail and idle states. 3G
// radios hold a multi-second high-power tail after each transfer (the FACH
// state) — the dominant energy cost of chatty offloading protocols.
type Radio struct {
	name    string
	ActiveW float64
	TailW   float64
	IdleW   float64
	Tail    time.Duration

	busy intervalSet
	// Transfers counts NoteTransfer calls.
	Transfers uint64
}

// NewWiFiRadio creates a Wi-Fi interface model.
func NewWiFiRadio() *Radio {
	return &Radio{name: "wifi", ActiveW: WiFiActiveW, TailW: WiFiTailW, IdleW: WiFiIdleW, Tail: WiFiTail}
}

// NewThreeGRadio creates a 3G interface model.
func NewThreeGRadio() *Radio {
	return &Radio{name: "3g", ActiveW: ThreeGDCHW, TailW: ThreeGFACHW, IdleW: ThreeGIdleW, Tail: ThreeGTail}
}

// Name implements Draw.
func (r *Radio) Name() string { return r.name }

// NoteTransfer records a transfer of duration d starting at time at.
// Transfers must arrive in nondecreasing start order; a transfer that
// begins while the radio is busy queues behind it.
func (r *Radio) NoteTransfer(at, d time.Duration) {
	r.Transfers++
	r.busy.add(at, d)
}

// EnergyUpTo implements Draw.
func (r *Radio) EnergyUpTo(t time.Duration) float64 {
	// Active time plus tail time: a tail of r.Tail follows each busy span,
	// truncated by the next span's start (which restarts the radio's
	// high-power state) and by the horizon t.
	var active, tail time.Duration
	spans := r.busy.spans
	for i, iv := range spans {
		if iv.start >= t {
			break
		}
		end := iv.end
		if end > t {
			end = t
		}
		active += end - iv.start
		if iv.end >= t {
			continue
		}
		tailEnd := iv.end + r.Tail
		if i+1 < len(spans) && spans[i+1].start < tailEnd {
			tailEnd = spans[i+1].start
		}
		if tailEnd > t {
			tailEnd = t
		}
		if tailEnd > iv.end {
			tail += tailEnd - iv.end
		}
	}
	idle := t - active - tail
	return r.ActiveW*active.Seconds() + r.TailW*tail.Seconds() + r.IdleW*idle.Seconds()
}

// Battery aggregates component draws against a capacity.
type Battery struct {
	CapacityJ float64
	draws     []Draw
}

// NewBattery creates a battery with the given capacity in joules.
func NewBattery(capacityJ float64) *Battery {
	return &Battery{CapacityJ: capacityJ}
}

// Attach adds a component to the battery's load.
func (b *Battery) Attach(d Draw) { b.draws = append(b.draws, d) }

// EnergyUsedAt returns total joules drawn by time t.
func (b *Battery) EnergyUsedAt(t time.Duration) float64 {
	var sum float64
	for _, d := range b.draws {
		sum += d.EnergyUpTo(t)
	}
	return sum
}

// PercentAt returns the remaining battery percentage at time t, clamped to
// [0, 100].
func (b *Battery) PercentAt(t time.Duration) float64 {
	p := 100 * (1 - b.EnergyUsedAt(t)/b.CapacityJ)
	if p < 0 {
		return 0
	}
	return p
}

// Breakdown reports per-component consumption at time t.
func (b *Battery) Breakdown(t time.Duration) map[string]float64 {
	out := make(map[string]float64, len(b.draws))
	for _, d := range b.draws {
		out[d.Name()] += d.EnergyUpTo(t)
	}
	return out
}

// String summarizes the battery.
func (b *Battery) String() string {
	return fmt.Sprintf("battery %.0f J, %d components", b.CapacityJ, len(b.draws))
}
