package power

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestConstantDraw(t *testing.T) {
	c := NewConstant("base", 0.5)
	if !approx(c.EnergyUpTo(10*time.Second), 5.0, 1e-9) {
		t.Fatalf("energy = %v", c.EnergyUpTo(10*time.Second))
	}
	if c.Name() != "base" {
		t.Fatal("name")
	}
}

func TestActivityDutyCycle(t *testing.T) {
	a := NewActivity("cpu", 1.0, 0.1)
	// 2s active burst at t=1s, query at t=5s: 1s idle + 2s active + 2s idle.
	a.NoteActive(1*time.Second, 2*time.Second)
	got := a.EnergyUpTo(5 * time.Second)
	want := 0.1*1 + 1.0*2 + 0.1*2
	if !approx(got, want, 1e-9) {
		t.Fatalf("energy = %v, want %v", got, want)
	}
}

func TestActivityOverlappingBurstsQueue(t *testing.T) {
	a := NewActivity("cpu", 1.0, 0.0)
	a.NoteActive(0, time.Second)
	a.NoteActive(500*time.Millisecond, time.Second) // queues: busy until 2s
	got := a.EnergyUpTo(3 * time.Second)
	if !approx(got, 2.0, 1e-9) {
		t.Fatalf("energy = %v, want 2.0", got)
	}
}

func TestRadioStates(t *testing.T) {
	r := &Radio{name: "r", ActiveW: 1.0, TailW: 0.5, IdleW: 0.1, Tail: 2 * time.Second}
	// Transfer of 1s at t=0: active [0,1), tail [1,3), idle [3,5).
	r.NoteTransfer(0, time.Second)
	got := r.EnergyUpTo(5 * time.Second)
	want := 1.0*1 + 0.5*2 + 0.1*2
	if !approx(got, want, 1e-9) {
		t.Fatalf("energy = %v, want %v", got, want)
	}
	if r.Transfers != 1 {
		t.Fatal("transfer count")
	}
}

func TestRadioTailRefreshed(t *testing.T) {
	r := &Radio{name: "r", ActiveW: 1.0, TailW: 0.5, IdleW: 0.0, Tail: 2 * time.Second}
	r.NoteTransfer(0, time.Second)
	// Second transfer during the tail restarts it.
	r.NoteTransfer(2*time.Second, time.Second)
	got := r.EnergyUpTo(10 * time.Second)
	// active [0,1): 1J; tail [1,2): 0.5J; active [2,3): 1J; tail [3,5): 1J.
	want := 1.0 + 0.5 + 1.0 + 1.0
	if !approx(got, want, 1e-9) {
		t.Fatalf("energy = %v, want %v", got, want)
	}
}

func TestThreeGTailDominatesChattyWorkload(t *testing.T) {
	// The design-for-mobiles point: the same payload sent as many small
	// transfers costs far more on 3G than batched, because of tail energy.
	chatty := NewThreeGRadio()
	for i := 0; i < 60; i++ {
		chatty.NoteTransfer(time.Duration(i)*10*time.Second, 100*time.Millisecond)
	}
	batched := NewThreeGRadio()
	batched.NoteTransfer(0, 6*time.Second) // same total active time

	horizon := 10 * time.Minute
	if chatty.EnergyUpTo(horizon) < 3*batched.EnergyUpTo(horizon) {
		t.Fatalf("chatty=%v batched=%v: tail energy should dominate",
			chatty.EnergyUpTo(horizon), batched.EnergyUpTo(horizon))
	}
}

func TestWiFiCheaperThanThreeG(t *testing.T) {
	wifi, tg := NewWiFiRadio(), NewThreeGRadio()
	for i := 0; i < 10; i++ {
		at := time.Duration(i) * 30 * time.Second
		wifi.NoteTransfer(at, time.Second)
		tg.NoteTransfer(at, time.Second)
	}
	horizon := 5 * time.Minute
	if wifi.EnergyUpTo(horizon) >= tg.EnergyUpTo(horizon) {
		t.Fatal("Wi-Fi should cost less than 3G for the same transfer pattern")
	}
}

func TestBatteryPercent(t *testing.T) {
	b := NewBattery(1000) // 1 kJ
	b.Attach(NewConstant("base", 1.0))
	if got := b.PercentAt(0); got != 100 {
		t.Fatalf("at 0: %v", got)
	}
	if got := b.PercentAt(500 * time.Second); !approx(got, 50, 1e-9) {
		t.Fatalf("at 500s: %v", got)
	}
	if got := b.PercentAt(2000 * time.Second); got != 0 {
		t.Fatalf("clamping: %v", got)
	}
}

func TestBatteryBreakdown(t *testing.T) {
	b := NewBattery(GalaxyNexusCapacityJ)
	b.Attach(NewConstant("base", BaseIdleW))
	cpu := NewActivity("cpu", CPUActiveW, 0)
	cpu.NoteActive(0, time.Minute)
	b.Attach(cpu)
	bd := b.Breakdown(time.Minute)
	if len(bd) != 2 || bd["cpu"] <= 0 || bd["base"] <= 0 {
		t.Fatalf("breakdown = %v", bd)
	}
	if b.String() == "" {
		t.Fatal("empty battery summary")
	}
}

// Property: energy is monotone nondecreasing in time for every component
// type, regardless of event pattern.
func TestEnergyMonotoneProperty(t *testing.T) {
	prop := func(bursts []uint16) bool {
		a := NewActivity("cpu", 1.2, 0.1)
		r := NewThreeGRadio()
		var at time.Duration
		for _, b := range bursts {
			at += time.Duration(b) * time.Millisecond
			a.NoteActive(at, time.Duration(b%100)*time.Millisecond)
			r.NoteTransfer(at, time.Duration(b%50)*time.Millisecond)
		}
		var lastA, lastR float64
		for q := time.Duration(0); q <= at+10*time.Second; q += 500 * time.Millisecond {
			ea, er := a.EnergyUpTo(q), r.EnergyUpTo(q)
			if ea < lastA || er < lastR {
				return false
			}
			lastA, lastR = ea, er
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: querying energy at the same instant twice is idempotent.
func TestEnergyIdempotentProperty(t *testing.T) {
	prop := func(d uint16) bool {
		r := NewWiFiRadio()
		r.NoteTransfer(0, time.Duration(d)*time.Millisecond)
		q := time.Duration(d) * 2 * time.Millisecond
		return r.EnergyUpTo(q) == r.EnergyUpTo(q)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGalaxyNexusConstants(t *testing.T) {
	// Sanity: the modeled phone idles for over a day but far less than a
	// month on its battery.
	idleLife := time.Duration(GalaxyNexusCapacityJ/BaseIdleW) * time.Second
	if idleLife < 24*time.Hour || idleLife > 30*24*time.Hour {
		t.Fatalf("idle life = %v, implausible", idleLife)
	}
}
