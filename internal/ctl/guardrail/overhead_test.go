package guardrail_test

import (
	"net"
	"os"
	"testing"
	"time"

	"tinman/internal/ctl/guardrail"
	"tinman/internal/nodeproto"
	"tinman/internal/obs"
)

// TestGuardrailThroughputOverhead measures loadgen req/s with and without
// the background sweeper — the number EXPERIMENTS.md reports for
// "guardrail sweep overhead under -throughput load". The sweeper runs at
// 10× the production cadence (500ms vs tinman-node's 5s interval), so the
// reported overhead is a conservative upper bound. A back-to-back sweep
// loop is deliberately NOT measured as "the" overhead: each sweep copies
// and renders the whole flight recorder under the tracer mutex, so a
// zero-gap loop serializes against every span on the request path and
// says nothing about the paced production sweeper. Skipped unless
// TINMAN_MEASURE is set: it is a measurement, not a correctness gate.
func TestGuardrailThroughputOverhead(t *testing.T) {
	if os.Getenv("TINMAN_MEASURE") == "" {
		t.Skip("set TINMAN_MEASURE=1 to run the overhead measurement")
	}
	run := func(sweep bool) float64 {
		tr := obs.New(obs.Options{})
		met := obs.NewMetrics()
		srv := nodeproto.NewServer()
		srv.SetObs(tr, met)
		state, err := nodeproto.PrepareThroughputServer(srv)
		if err != nil {
			t.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(l)
		defer srv.Close()

		stop := make(chan struct{})
		done := make(chan struct{})
		if sweep {
			sc := guardrail.New()
			sc.AddSecret("bench-pw-plaintext", []byte("hunter2-benchmark!"))
			sw := &guardrail.Sweeper{Scanner: sc, Tracer: tr, Metrics: met, Audit: srv.Audit}
			go func() {
				defer close(done)
				tick := time.NewTicker(500 * time.Millisecond)
				defer tick.Stop()
				for {
					select {
					case <-stop:
						return
					case <-tick.C:
					}
					if _, err := sw.SweepOnce(); err != nil {
						t.Error(err)
						return
					}
				}
			}()
		} else {
			close(done)
		}
		res, err := nodeproto.RunThroughput(l.Addr().String(), state, nodeproto.ThroughputOptions{
			Workers:  8,
			Conns:    2,
			Duration: 3 * time.Second,
		})
		close(stop)
		<-done
		if err != nil {
			t.Fatal(err)
		}
		if res.Errors > 0 {
			t.Fatalf("errors under load: %v", res.FirstErr)
		}
		return res.ReqPerSec
	}
	base := run(false)
	swept := run(true)
	t.Logf("baseline: %.0f req/s", base)
	t.Logf("sweeping continuously: %.0f req/s (%.1f%% overhead)", swept, 100*(base-swept)/base)
}
