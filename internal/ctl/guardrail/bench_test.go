package guardrail

import (
	"fmt"
	"testing"

	"tinman/internal/audit"
	"tinman/internal/obs"
)

// BenchmarkSweep measures one full guardrail pass over a worst-case-busy
// node: a full flight recorder (default cap 16384 spans, rendered through
// both exporters), a populated metrics registry, and 2000 audit entries,
// with 8 secrets fingerprinted (5 spellings each). This is the cost the
// background sweeper pays per interval.
func BenchmarkSweep(b *testing.B) {
	tr := obs.New(obs.Options{})
	met := obs.NewMetrics()
	log := audit.NewLog(nil)
	for i := 0; i < 16384; i++ {
		sp := tr.StartSpan(obs.PhasePolicyCheck, obs.Cor("pw"), obs.Device(fmt.Sprintf("dev-%d", i%64)), obs.Outcome(true))
		sp.End()
	}
	met.Counter("reseals_total").Add(12345)
	met.Counter("denials_total").Add(17)
	for i := 0; i < 2000; i++ {
		log.Append("app", "pw", fmt.Sprintf("dev-%d", i%64), "bank.com", audit.OutcomeAllowed, "record resealed")
	}
	sc := New()
	for i := 0; i < 8; i++ {
		sc.AddSecret(fmt.Sprintf("cor-%d", i), []byte(fmt.Sprintf("secret-value-%d-abcdef", i)))
	}
	sw := &Sweeper{Scanner: sc, Tracer: tr, Metrics: met, Audit: log}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		findings, err := sw.SweepOnce()
		if err != nil {
			b.Fatal(err)
		}
		if len(findings) != 0 {
			b.Fatal("unexpected findings")
		}
	}
}
