// Package guardrail is TinMan's leak scanner: the last line of defense
// verifying, continuously, that no secret the trusted node holds ever
// appears in a byte stream that leaves the process. The redaction gates in
// obs and the masking rules in dsm are the mechanisms; the guardrail is
// the check that they worked.
//
// Every vault plaintext and TLS session key registers as a fingerprint
// set — the raw bytes plus their hex and base64 spellings, so a leak is
// caught even after one layer of re-encoding — and the sweeper scans each
// exporter surface (flight-recorder JSONL, Chrome trace, Prometheus text),
// the audit log and any persistence directory for a hit. Findings name
// the secret and where it surfaced, never its value.
package guardrail

import (
	"bytes"
	"encoding/base64"
	"encoding/hex"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"tinman/internal/audit"
	"tinman/internal/obs"
)

// minSecretLen guards against useless fingerprints: a 1–3 byte "secret"
// matches everywhere and means the registration, not the export, is wrong.
const minSecretLen = 4

// Finding is one leak hit. It deliberately carries no secret bytes — a
// finding travels through logs and CI output, exactly the channels the
// guardrail polices.
type Finding struct {
	// Source names the swept surface: "spans", "trace", "metrics",
	// "audit", or a file path.
	Source string
	// Secret is the registered name of the leaked secret.
	Secret string
	// Encoding says which spelling matched: "raw", "hex" or "base64".
	Encoding string
	// Offset is the byte offset of the first match in the surface.
	Offset int
}

func (f Finding) String() string {
	return fmt.Sprintf("guardrail: secret %q leaked into %s (%s encoding, offset %d)",
		f.Secret, f.Source, f.Encoding, f.Offset)
}

// needle is one searchable spelling of a registered secret.
type needle struct {
	secret   string
	encoding string
	pat      []byte
}

// Scanner holds the fingerprint set. Safe for concurrent use: sweeps run
// in the background while new cors register.
type Scanner struct {
	mu      sync.RWMutex
	needles []needle
	names   map[string]bool
}

// New builds an empty scanner.
func New() *Scanner {
	return &Scanner{names: make(map[string]bool)}
}

// AddSecret registers value under name with its raw, hex (both cases) and
// base64 (std and raw-URL) spellings. Values shorter than 4 bytes are
// ignored — they would match everything and drown real findings.
func (s *Scanner) AddSecret(name string, value []byte) {
	if len(value) < minSecretLen {
		return
	}
	lower := hex.EncodeToString(value)
	pats := []needle{
		{name, "raw", append([]byte(nil), value...)},
		{name, "hex", []byte(lower)},
		{name, "hex", []byte(strings.ToUpper(lower))},
		{name, "base64", []byte(base64.StdEncoding.EncodeToString(value))},
		{name, "base64", []byte(base64.RawURLEncoding.EncodeToString(value))},
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.names[name] {
		// Re-registration replaces: a regenerated cor must not leave stale
		// fingerprints that fire on unrelated data.
		kept := s.needles[:0]
		for _, n := range s.needles {
			if n.secret != name {
				kept = append(kept, n)
			}
		}
		s.needles = kept
	}
	s.names[name] = true
	s.needles = append(s.needles, pats...)
}

// Secrets reports how many distinct secrets are registered.
func (s *Scanner) Secrets() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.names)
}

// Scan searches one surface for every registered fingerprint, reporting at
// most one finding per (secret, encoding) — the sweep wants "what leaked
// where", not every occurrence.
func (s *Scanner) Scan(source string, data []byte) []Finding {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Finding
	for _, n := range s.needles {
		if i := bytes.Index(data, n.pat); i >= 0 {
			out = append(out, Finding{Source: source, Secret: n.secret, Encoding: n.encoding, Offset: i})
		}
	}
	return dedupe(out)
}

// dedupe keeps the first finding per (source, secret, encoding).
func dedupe(fs []Finding) []Finding {
	if len(fs) < 2 {
		return fs
	}
	seen := make(map[string]bool, len(fs))
	kept := fs[:0]
	for _, f := range fs {
		k := f.Source + "\x00" + f.Secret + "\x00" + f.Encoding
		if seen[k] {
			continue
		}
		seen[k] = true
		kept = append(kept, f)
	}
	return kept
}

// Sweeper drives the scanner over every surface a secret could leak
// through. Wire the surfaces that exist in the deployment; nil fields are
// skipped.
type Sweeper struct {
	Scanner *Scanner
	// Tracer's flight recorder is rendered through BOTH exporters (JSONL
	// and Chrome trace) and swept — the render is what leaves the process,
	// so the render is what is scanned.
	Tracer *obs.Tracer
	// Metrics is swept as the Prometheus text a scrape would receive.
	Metrics *obs.Metrics
	// Audit sweeps every entry's detail text (the free-form field; the
	// structured fields carry IDs, not plaintext).
	Audit *audit.Log
	// Dirs are persistence directories (the crash-safe store) swept
	// file-by-file; their content is sealed, so a hit means sealing broke.
	Dirs []string

	// Findings, when set, counts total findings across sweeps (a metric
	// the operator alerts on: it must stay 0).
	Findings *obs.Counter
}

// SweepOnce scans every wired surface and returns all findings, sorted by
// source for stable output.
func (sw *Sweeper) SweepOnce() ([]Finding, error) {
	var out []Finding
	if sw.Tracer != nil {
		recs := sw.Tracer.Records()
		var buf bytes.Buffer
		if err := obs.WriteJSONLines(&buf, recs); err != nil {
			return nil, fmt.Errorf("guardrail: rendering spans: %w", err)
		}
		out = append(out, sw.Scanner.Scan("spans", buf.Bytes())...)
		buf.Reset()
		if err := obs.WriteChromeTrace(&buf, recs); err != nil {
			return nil, fmt.Errorf("guardrail: rendering trace: %w", err)
		}
		out = append(out, sw.Scanner.Scan("trace", buf.Bytes())...)
	}
	if sw.Metrics != nil {
		var buf bytes.Buffer
		if err := sw.Metrics.WritePrometheus(&buf); err != nil {
			return nil, fmt.Errorf("guardrail: rendering metrics: %w", err)
		}
		out = append(out, sw.Scanner.Scan("metrics", buf.Bytes())...)
	}
	if sw.Audit != nil {
		var buf bytes.Buffer
		for _, e := range sw.Audit.Entries() {
			buf.WriteString(e.Detail)
			buf.WriteByte('\n')
		}
		out = append(out, sw.Scanner.Scan("audit", buf.Bytes())...)
	}
	for _, dir := range sw.Dirs {
		if err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return err
			}
			data, rerr := os.ReadFile(path)
			if rerr != nil {
				return rerr
			}
			out = append(out, sw.Scanner.Scan(path, data)...)
			return nil
		}); err != nil {
			return nil, fmt.Errorf("guardrail: sweeping %s: %w", dir, err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Source != out[j].Source {
			return out[i].Source < out[j].Source
		}
		return out[i].Secret < out[j].Secret
	})
	if sw.Findings != nil {
		sw.Findings.Add(uint64(len(out)))
	}
	return out, nil
}
