package guardrail_test

import (
	"encoding/json"
	"net"
	"testing"

	"tinman/internal/ctl/guardrail"
	"tinman/internal/nodeproto"
	"tinman/internal/obs"
	"tinman/internal/tlssim"
)

// TestGuardrailLoadgen is the CI guardrail run (`make guardrail`): a full
// loadgen drive against an instrumented node with every secret the node
// holds fingerprinted — the benchmark cor's plaintext and all four TLS
// session keys — must produce ZERO findings across spans, trace, metrics
// and audit output. Then a deliberately seeded leak proves the scanner
// actually fires: a zero-finding report from a broken scanner would be
// indistinguishable from a clean system.
func TestGuardrailLoadgen(t *testing.T) {
	tr := obs.New(obs.Options{})
	met := obs.NewMetrics()
	srv := nodeproto.NewServer()
	srv.SetObs(tr, met)
	state, err := nodeproto.PrepareThroughputServer(srv)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	// Fingerprint everything secret the run touches: the cor plaintext the
	// node unseals on every reseal, and the TLS key material inside the
	// session state shipped over the wire.
	sc := guardrail.New()
	sc.AddSecret("bench-pw-plaintext", []byte("hunter2-benchmark!"))
	var sess tlssim.State
	if err := json.Unmarshal(state, &sess); err != nil {
		t.Fatal(err)
	}
	sc.AddSecret("tls-out-key", sess.Out.Key)
	sc.AddSecret("tls-out-mac", sess.Out.MACKey)
	sc.AddSecret("tls-in-key", sess.In.Key)
	sc.AddSecret("tls-in-mac", sess.In.MACKey)
	if sc.Secrets() != 5 {
		t.Fatalf("registered %d secrets, want 5", sc.Secrets())
	}
	sw := &guardrail.Sweeper{Scanner: sc, Tracer: tr, Metrics: met, Audit: srv.Audit}

	res, err := nodeproto.RunThroughput(l.Addr().String(), state, nodeproto.ThroughputOptions{
		Workers:  4,
		Conns:    2,
		Requests: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors > 0 {
		t.Fatalf("loadgen errors: %v", res.FirstErr)
	}

	// The clean run: every exporter surface swept, nothing found.
	findings, err := sw.SweepOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("clean loadgen run leaked: %v", findings)
	}

	// The canary: seed the flight recorder with a span note carrying the
	// plaintext (modeling a redaction-gate bug) and demand the scanner
	// catches it — and names only that secret.
	leak := tr.StartSpan(obs.PhaseVaultOpen, obs.Note("hunter2-benchmark!"))
	leak.End()
	findings, err = sw.SweepOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatal("seeded canary not found: the guardrail is blind")
	}
	for _, f := range findings {
		if f.Secret != "bench-pw-plaintext" {
			t.Fatalf("unexpected secret %q in finding %v", f.Secret, f)
		}
	}
}
