package guardrail

import (
	"encoding/base64"
	"encoding/hex"
	"os"
	"path/filepath"
	"testing"

	"tinman/internal/audit"
	"tinman/internal/obs"
)

const secret = "hunter2-super-secret"

// TestScannerEncodings checks every registered spelling of a secret is
// found, each tagged with the encoding that matched.
func TestScannerEncodings(t *testing.T) {
	s := New()
	s.AddSecret("pw", []byte(secret))
	cases := []struct {
		data     string
		encoding string
	}{
		{"prefix " + secret + " suffix", "raw"},
		{"blob=" + hex.EncodeToString([]byte(secret)), "hex"},
		{"BLOB=" + "48554E544552322D53555045522D534543524554", "hex"}, // upper-case hex of upper... see below
		{"b64=" + base64.StdEncoding.EncodeToString([]byte(secret)), "base64"},
		{"url=" + base64.RawURLEncoding.EncodeToString([]byte(secret)), "base64"},
	}
	// Case 2's literal is the upper hex of the upper-cased secret, which is
	// NOT registered — rebuild it as the upper hex of the secret itself.
	cases[2].data = "BLOB=" + func() string {
		h := hex.EncodeToString([]byte(secret))
		b := []byte(h)
		for i, c := range b {
			if c >= 'a' && c <= 'f' {
				b[i] = c - 'a' + 'A'
			}
		}
		return string(b)
	}()
	for _, c := range cases {
		got := s.Scan("test", []byte(c.data))
		if len(got) != 1 {
			t.Fatalf("scan %q: %d findings, want 1", c.data, len(got))
		}
		if got[0].Secret != "pw" || got[0].Encoding != c.encoding {
			t.Fatalf("scan %q: got %+v, want secret pw encoding %s", c.data, got[0], c.encoding)
		}
	}
	if got := s.Scan("test", []byte("nothing to see here")); len(got) != 0 {
		t.Fatalf("clean data produced findings: %v", got)
	}
}

// TestScannerShortSecretIgnored: sub-4-byte values would match everything.
func TestScannerShortSecretIgnored(t *testing.T) {
	s := New()
	s.AddSecret("tiny", []byte("abc"))
	if s.Secrets() != 0 {
		t.Fatalf("short secret registered")
	}
	if got := s.Scan("test", []byte("abcabcabc")); len(got) != 0 {
		t.Fatalf("short secret matched: %v", got)
	}
}

// TestScannerReRegisterReplaces: a regenerated secret must not leave stale
// fingerprints behind.
func TestScannerReRegisterReplaces(t *testing.T) {
	s := New()
	s.AddSecret("pw", []byte("old-value-1234"))
	s.AddSecret("pw", []byte("new-value-5678"))
	if s.Secrets() != 1 {
		t.Fatalf("Secrets() = %d, want 1", s.Secrets())
	}
	if got := s.Scan("test", []byte("old-value-1234")); len(got) != 0 {
		t.Fatalf("stale fingerprint still fires: %v", got)
	}
	if got := s.Scan("test", []byte("new-value-5678")); len(got) != 1 {
		t.Fatalf("new fingerprint missing: %v", got)
	}
}

// TestSweeperCanary builds every surface clean, verifies a zero-finding
// sweep, then seeds one leak per surface and checks each fires.
func TestSweeperCanary(t *testing.T) {
	tr := obs.New(obs.Options{})
	met := obs.NewMetrics()
	log := audit.NewLog(nil)
	dir := t.TempDir()

	sc := New()
	sc.AddSecret("pw", []byte(secret))
	findings := met.Counter("guardrail_findings_total")
	sw := &Sweeper{Scanner: sc, Tracer: tr, Metrics: met, Audit: log, Dirs: []string{dir}, Findings: findings}

	// Clean state: spans with ordinary fields, an audit entry with an
	// ordinary detail, a file of sealed-looking bytes.
	sp := tr.StartSpan(obs.PhasePolicyCheck, obs.Cor("pw"), obs.Device("phone-1"))
	sp.End()
	log.Append("app", "pw", "phone-1", "x.example", audit.OutcomeAllowed, "record resealed")
	if err := os.WriteFile(filepath.Join(dir, "vault.wal"), []byte("ciphertext-here"), 0o600); err != nil {
		t.Fatal(err)
	}
	got, err := sw.SweepOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("clean sweep found: %v", got)
	}

	// Seed the tracer: a span note carrying the plaintext models a
	// redaction-gate bypass. Both renders (spans + trace) must fire.
	leak := tr.StartSpan(obs.PhaseVaultOpen, obs.Note(secret))
	leak.End()
	// Seed the audit log and the persistence dir too.
	log.Append("app", "pw", "phone-1", "x.example", audit.OutcomeAllowed, "oops: "+secret)
	leakFile := filepath.Join(dir, "snapshot.json")
	if err := os.WriteFile(leakFile, []byte(`{"v":"`+hex.EncodeToString([]byte(secret))+`"}`), 0o600); err != nil {
		t.Fatal(err)
	}

	got, err = sw.SweepOnce()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"spans": "raw", "trace": "raw", "audit": "raw", leakFile: "hex"}
	if len(got) != len(want) {
		t.Fatalf("sweep found %d findings %v, want %d", len(got), got, len(want))
	}
	for _, f := range got {
		enc, ok := want[f.Source]
		if !ok {
			t.Fatalf("unexpected source %q: %v", f.Source, f)
		}
		if f.Secret != "pw" || f.Encoding != enc {
			t.Fatalf("source %s: got %+v, want secret pw encoding %s", f.Source, f, enc)
		}
		delete(want, f.Source)
	}
	if findings.Value() != uint64(len(got)) {
		t.Fatalf("findings counter = %d, want %d", findings.Value(), len(got))
	}
}
