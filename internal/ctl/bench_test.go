package ctl_test

import (
	"context"
	"fmt"
	"testing"

	"tinman/internal/ctl"
	"tinman/internal/node"
	"tinman/internal/policy"
)

// BenchmarkHotSwap measures one validate-then-swap policy install through
// the control plane against a standalone node: the latency an operator's
// POST /policy pays excluding HTTP. The snapshot carries a realistic rule
// surface (8 cors' whitelists, a revocation set, rate limits).
func BenchmarkHotSwap(b *testing.B) {
	svc := node.New(node.Options{MalwareSeed: -1})
	p, err := ctl.New(ctl.Config{Target: svc, Stamp: svc.Policy.Stamp})
	if err != nil {
		b.Fatal(err)
	}
	snap := benchSnapshot()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.InstallPolicy(ctx, snap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotSwapUnderChecks is the same install racing 4 goroutines of
// continuous policy checks — the production shape: a reload lands while
// devices hammer the engine.
func BenchmarkHotSwapUnderChecks(b *testing.B) {
	svc := node.New(node.Options{MalwareSeed: -1})
	p, err := ctl.New(ctl.Config{Target: svc, Stamp: svc.Policy.Stamp})
	if err != nil {
		b.Fatal(err)
	}
	snap := benchSnapshot()
	ctx := context.Background()
	stop := make(chan struct{})
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(dev int) {
			defer func() { done <- struct{}{} }()
			a := policy.Access{CorID: "cor-0", DeviceID: fmt.Sprintf("dev-%d", dev), Domain: "host-0.example", Send: true}
			for {
				select {
				case <-stop:
					return
				default:
					svc.Policy.Check(a)
				}
			}
		}(g)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.InstallPolicy(ctx, snap); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	for g := 0; g < 4; g++ {
		<-done
	}
}

// benchSnapshot builds a reload-sized rule surface.
func benchSnapshot() *policy.Snapshot {
	snap := &policy.Snapshot{
		Whitelist: map[string][]string{},
		Revoked:   []string{"stolen-1", "stolen-2", "stolen-3"},
		Rates:     map[string]policy.RateSpec{},
	}
	for i := 0; i < 8; i++ {
		id := fmt.Sprintf("cor-%d", i)
		snap.Whitelist[id] = []string{fmt.Sprintf("host-%d.example", i), "backup.example"}
		snap.Rates[id] = policy.RateSpec{Max: 100, Per: 1e9}
	}
	return snap
}
