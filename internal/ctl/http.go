package ctl

import (
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"tinman/internal/audit"
	"tinman/internal/cor"
	"tinman/internal/obs"
	"tinman/internal/policy"
)

// The admin HTTP surface is split in two halves registered separately, so
// a deployment can serve them on one mux (the common case: one -admin
// address, mutation gated per request) or bind the mutating half to a
// stricter interface. Read-only endpoints never require the token —
// metrics scrapes must not carry credentials — and mutating endpoints
// always do, failing closed when no token is configured.

// ReadOnlyRoutes registers the observability and policy-read endpoints:
//
//	GET /metrics        Prometheus text format
//	GET /spans          flight-recorder dump, JSON lines
//	GET /trace          Chrome trace_event JSON
//	GET /policy/version current policy stamp (+ per-member versions)
//	GET /policy         current policy document (when Export is wired)
//
// tr and m may be nil; their endpoints then serve empty output.
func (p *Plane) ReadOnlyRoutes(mux *http.ServeMux, tr *obs.Tracer, m *obs.Metrics) {
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if m != nil {
			m.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/jsonlines")
		if tr != nil {
			obs.WriteJSONLines(w, tr.Records())
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if tr != nil {
			obs.WriteChromeTrace(w, tr.Records())
		}
	})
	mux.HandleFunc("/policy/version", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		stamp := p.Stamp()
		out := struct {
			Version uint64            `json:"version"`
			Hash    string            `json:"hash"`
			Members map[string]uint64 `json:"members,omitempty"`
		}{Version: stamp.Version, Hash: stamp.Hash}
		if p.cfg.Versions != nil {
			out.Members = p.cfg.Versions()
		}
		writeJSON(w, out)
	})
	if p.cfg.Export != nil {
		mux.HandleFunc("/policy", func(w http.ResponseWriter, r *http.Request) {
			switch r.Method {
			case http.MethodGet:
				writeJSON(w, p.cfg.Export())
			case http.MethodPost:
				// The mutating half owns POST /policy; when both halves share
				// one mux its handler is registered under the same pattern via
				// the method check in MutatingRoutes' dispatcher below.
				p.handlePolicyInstall(w, r)
			default:
				http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			}
		})
	}
}

// MutatingRoutes registers the token-gated mutation endpoints:
//
//	POST /policy   install a policy snapshot (body: policy.Snapshot JSON)
//	POST /revoke   revoke a device (body: {"device_id": "..."})
//	POST /restore  restore a device (body: {"device_id": "..."})
//	POST /class    reclassify a cor (body: {"cor_id": "...", "class": "..."})
//
// Every handler checks the bearer token first; a missing or wrong token is
// answered 403 and recorded in the audit log. When Export is also wired
// (ReadOnlyRoutes registered GET+POST /policy on this mux already), the
// /policy pattern is skipped here to avoid a duplicate registration.
func (p *Plane) MutatingRoutes(mux *http.ServeMux) {
	if p.cfg.Export == nil {
		mux.HandleFunc("/policy", func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
				return
			}
			p.handlePolicyInstall(w, r)
		})
	}
	mux.HandleFunc("/revoke", p.deviceHandler("revoke", p.Revoke))
	mux.HandleFunc("/restore", p.deviceHandler("restore", p.Restore))
	mux.HandleFunc("/class", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if !p.authorize(w, r) {
			return
		}
		var body struct {
			CorID string `json:"cor_id"`
			Class string `json:"class"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil || body.CorID == "" {
			http.Error(w, "body must be {\"cor_id\": ..., \"class\": ...}", http.StatusBadRequest)
			return
		}
		class, err := cor.ParseClass(body.Class)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := p.SetCorClass(r.Context(), body.CorID, class); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, map[string]string{"cor_id": body.CorID, "class": string(class)})
	})
}

// Routes registers both halves on one mux — the single -admin address
// shape cmd/tinman-node serves.
func (p *Plane) Routes(mux *http.ServeMux, tr *obs.Tracer, m *obs.Metrics) {
	p.ReadOnlyRoutes(mux, tr, m)
	p.MutatingRoutes(mux)
}

// authorize checks the request's bearer token against the configured one,
// constant-time. A failure is answered 403 and audited: an unauthorized
// mutation attempt against the control plane is a security event, not
// noise. An empty configured token refuses everything (fail closed).
func (p *Plane) authorize(w http.ResponseWriter, r *http.Request) bool {
	got := strings.TrimPrefix(r.Header.Get("Authorization"), "Bearer ")
	if p.cfg.Token != "" &&
		subtle.ConstantTimeCompare([]byte(got), []byte(p.cfg.Token)) == 1 {
		return true
	}
	p.auditf(audit.OutcomeDenied, "admin: unauthorized %s %s from %s",
		r.Method, r.URL.Path, r.RemoteAddr)
	p.logf("ctl: unauthorized %s %s from %s", r.Method, r.URL.Path, r.RemoteAddr)
	http.Error(w, "forbidden", http.StatusForbidden)
	return false
}

// handlePolicyInstall decodes, validates and pushes a snapshot. A partial
// fleet push (stamp assigned, some members unreachable) answers 207 with
// the stamp and the straggler detail, so the operator knows to retry.
func (p *Plane) handlePolicyInstall(w http.ResponseWriter, r *http.Request) {
	if !p.authorize(w, r) {
		return
	}
	snap := new(policy.Snapshot)
	if err := json.NewDecoder(r.Body).Decode(snap); err != nil {
		http.Error(w, fmt.Sprintf("undecodable snapshot: %v", err), http.StatusBadRequest)
		return
	}
	stamp, err := p.InstallPolicy(r.Context(), snap)
	if err != nil && stamp.Version == 0 {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	out := struct {
		Version uint64 `json:"version"`
		Hash    string `json:"hash"`
		Partial string `json:"partial,omitempty"`
	}{Version: stamp.Version, Hash: stamp.Hash}
	if err != nil {
		out.Partial = err.Error()
		w.WriteHeader(http.StatusMultiStatus)
	}
	writeJSON(w, out)
}

// deviceHandler builds the POST handler shared by /revoke and /restore.
func (p *Plane) deviceHandler(what string, apply func(string) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if !p.authorize(w, r) {
			return
		}
		var body struct {
			DeviceID string `json:"device_id"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil || body.DeviceID == "" {
			http.Error(w, "body must be {\"device_id\": ...}", http.StatusBadRequest)
			return
		}
		if err := apply(body.DeviceID); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, map[string]string{"device_id": body.DeviceID, "action": what})
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
