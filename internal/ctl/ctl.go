// Package ctl is TinMan's live control plane: the operator-facing
// coordination layer over versioned policy snapshots (internal/policy),
// cor sensitivity classes (internal/cor) and fleet-wide revocation push
// (internal/fleet).
//
// The package deliberately owns no policy state of its own — the policy
// engine's atomic snapshot swap is the single source of truth — and
// coordinates through a narrow Target interface that both a standalone
// node.Service and a fleet.Fleet satisfy. What ctl adds on top:
//
//   - HTTP admin surface, split into a read-only half (metrics, spans,
//     traces, policy version) and a mutating half (policy install, device
//     revocation, class changes) gated by a bearer token. Unauthorized
//     mutation attempts are refused with 403 AND recorded in the audit
//     log — probing the control plane is itself an auditable event.
//   - The leak guardrail (ctl/guardrail): a scanner that fingerprints
//     every secret the node holds and sweeps every byte stream that
//     leaves the process for them.
package ctl

import (
	"context"
	"errors"
	"fmt"

	"tinman/internal/audit"
	"tinman/internal/cor"
	"tinman/internal/policy"
)

// Target applies control-plane mutations. node.Service satisfies it for a
// standalone node; fleet.Fleet satisfies it with fleet-wide propagation.
// (nodeproto.ControlPlane is the same contract on the wire side.)
type Target interface {
	InstallPolicy(ctx context.Context, snap *policy.Snapshot) (policy.Stamp, error)
	Revoke(deviceID string) error
	Restore(deviceID string) error
	SetCorClass(ctx context.Context, corID string, class cor.Class) error
}

// Config assembles a Plane.
type Config struct {
	// Target receives every mutation. Required.
	Target Target
	// Stamp reports the policy stamp currently running (on a fleet: the
	// stamp of any member, they converge). Required.
	Stamp func() policy.Stamp
	// Export returns the current policy document for GET /policy; nil
	// hides that endpoint.
	Export func() *policy.Snapshot
	// Versions reports per-member applied snapshot versions (fleet
	// deployments); nil omits the member map from GET /policy/version.
	Versions func() map[string]uint64
	// Audit receives control-plane audit entries: accepted mutations and
	// unauthorized attempts. Nil skips auditing (tests only — production
	// callers always pass the node's log).
	Audit *audit.Log
	// Token is the bearer token mutating endpoints require. Empty fails
	// closed: every mutation is refused. (The operator opts into mutation
	// by exporting TINMAN_ADMIN_TOKEN; there is no insecure default.)
	Token string
	// Logf receives operational messages; nil silences them.
	Logf func(format string, args ...any)
}

// Plane is the control-plane coordinator behind the admin HTTP surface.
type Plane struct {
	cfg Config
}

// New validates the config and builds a Plane.
func New(cfg Config) (*Plane, error) {
	if cfg.Target == nil {
		return nil, errors.New("ctl: Config.Target is required")
	}
	if cfg.Stamp == nil {
		return nil, errors.New("ctl: Config.Stamp is required")
	}
	return &Plane{cfg: cfg}, nil
}

func (p *Plane) logf(format string, args ...any) {
	if p.cfg.Logf != nil {
		p.cfg.Logf(format, args...)
	}
}

// auditf appends a control-plane entry to the audit log, if one is wired.
func (p *Plane) auditf(outcome audit.Outcome, format string, args ...any) {
	if p.cfg.Audit == nil {
		return
	}
	p.cfg.Audit.Append("", "", "", "", outcome, fmt.Sprintf(format, args...))
}

// InstallPolicy validates and pushes a snapshot through the target,
// auditing the accepted stamp. The stamp is returned even when the push
// was partial (some fleet members unreachable) — err says which.
func (p *Plane) InstallPolicy(ctx context.Context, snap *policy.Snapshot) (policy.Stamp, error) {
	if err := snap.Validate(); err != nil {
		return policy.Stamp{}, err
	}
	stamp, err := p.cfg.Target.InstallPolicy(ctx, snap)
	if stamp.Version != 0 {
		p.auditf(audit.OutcomeAllowed, "admin: policy v%d (%s) installed", stamp.Version, stamp.Hash)
		p.logf("ctl: policy v%d (%s) installed", stamp.Version, stamp.Hash)
	}
	return stamp, err
}

// Revoke cuts off a device everywhere the target reaches.
func (p *Plane) Revoke(deviceID string) error {
	if err := p.cfg.Target.Revoke(deviceID); err != nil {
		return err
	}
	p.auditf(audit.OutcomeAllowed, "admin: device %s revoked", deviceID)
	return nil
}

// Restore re-enables a device.
func (p *Plane) Restore(deviceID string) error {
	if err := p.cfg.Target.Restore(deviceID); err != nil {
		return err
	}
	p.auditf(audit.OutcomeAllowed, "admin: device %s restored", deviceID)
	return nil
}

// SetCorClass reclassifies a cor's sensitivity.
func (p *Plane) SetCorClass(ctx context.Context, corID string, class cor.Class) error {
	if err := p.cfg.Target.SetCorClass(ctx, corID, class); err != nil {
		return err
	}
	p.auditf(audit.OutcomeAllowed, "admin: cor %s reclassified as %s", corID, class)
	return nil
}

// Stamp reports the policy stamp currently running.
func (p *Plane) Stamp() policy.Stamp { return p.cfg.Stamp() }
