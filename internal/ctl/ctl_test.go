package ctl_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"

	"tinman/internal/audit"
	"tinman/internal/cor"
	"tinman/internal/ctl"
	"tinman/internal/node"
	"tinman/internal/policy"
	"tinman/internal/store"
)

const adminToken = "test-admin-token"

// newPlane builds a Plane over a fresh standalone node.Service with the
// benchmark cor registered, served through httptest.
func newPlane(t *testing.T) (*node.Service, *httptest.Server) {
	t.Helper()
	svc := node.New(node.Options{MalwareSeed: -1})
	if _, err := svc.RegisterCor(context.Background(), "pw", "hunter2!", "password", "bank.com"); err != nil {
		t.Fatal(err)
	}
	p, err := ctl.New(ctl.Config{
		Target: svc,
		Stamp:  svc.Policy.Stamp,
		Export: svc.Policy.Export,
		Audit:  svc.Audit,
		Token:  adminToken,
	})
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	p.Routes(mux, nil, nil)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return svc, ts
}

func post(t *testing.T, url, token, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestAdminAuth: mutations without the bearer token are refused with 403
// AND recorded in the audit log; the right token goes through.
func TestAdminAuth(t *testing.T) {
	svc, ts := newPlane(t)

	for _, token := range []string{"", "wrong-token"} {
		resp := post(t, ts.URL+"/revoke", token, `{"device_id":"phone-1"}`)
		if resp.StatusCode != http.StatusForbidden {
			t.Fatalf("token %q: status %d, want 403", token, resp.StatusCode)
		}
	}
	// The revocation must NOT have happened.
	if err := svc.Policy.Check(policy.Access{CorID: "pw", DeviceID: "phone-1"}); err != nil {
		t.Fatalf("unauthorized revoke took effect: %v", err)
	}
	// Both attempts are audit entries with a denied outcome.
	denied := 0
	for _, e := range svc.Audit.Entries() {
		if e.Outcome == audit.OutcomeDenied && strings.Contains(e.Detail, "unauthorized") {
			denied++
		}
	}
	if denied != 2 {
		t.Fatalf("unauthorized attempts audited %d times, want 2", denied)
	}

	// The real token works and is audited as allowed.
	resp := post(t, ts.URL+"/revoke", adminToken, `{"device_id":"phone-1"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authorized revoke: status %d", resp.StatusCode)
	}
	if err := svc.Policy.Check(policy.Access{CorID: "pw", DeviceID: "phone-1"}); err == nil {
		t.Fatal("device not revoked after authorized call")
	}
	resp = post(t, ts.URL+"/restore", adminToken, `{"device_id":"phone-1"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restore: status %d", resp.StatusCode)
	}
}

// TestFailClosedWithoutToken: a Plane configured with an empty token
// refuses every mutation, even with an empty bearer header.
func TestFailClosedWithoutToken(t *testing.T) {
	svc := node.New(node.Options{MalwareSeed: -1})
	p, err := ctl.New(ctl.Config{Target: svc, Stamp: svc.Policy.Stamp})
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	p.Routes(mux, nil, nil)
	ts := httptest.NewServer(mux)
	defer ts.Close()
	resp := post(t, ts.URL+"/revoke", "", `{"device_id":"d"}`)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("no-token plane accepted a mutation: %d", resp.StatusCode)
	}
}

// TestPolicyHotSwapHTTP installs a snapshot over HTTP and checks the
// engine, the version endpoint and the exported document all agree.
func TestPolicyHotSwapHTTP(t *testing.T) {
	svc, ts := newPlane(t)

	snap := `{"whitelist":{"pw":["bank.com"]},"revoked":["stolen-1"]}`
	resp := post(t, ts.URL+"/policy", adminToken, snap)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("install: status %d", resp.StatusCode)
	}
	var out struct {
		Version uint64 `json:"version"`
		Hash    string `json:"hash"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Version == 0 || out.Hash == "" {
		t.Fatalf("empty stamp: %+v", out)
	}
	if got := svc.Policy.Stamp(); got.Version != out.Version || got.Hash != out.Hash {
		t.Fatalf("engine at %+v, HTTP reported %+v", got, out)
	}
	if err := svc.Policy.Check(policy.Access{CorID: "pw", DeviceID: "stolen-1"}); err == nil {
		t.Fatal("installed revocation not enforced")
	}

	// GET /policy/version agrees.
	vresp, err := http.Get(ts.URL + "/policy/version")
	if err != nil {
		t.Fatal(err)
	}
	defer vresp.Body.Close()
	var ver struct {
		Version uint64 `json:"version"`
		Hash    string `json:"hash"`
	}
	if err := json.NewDecoder(vresp.Body).Decode(&ver); err != nil {
		t.Fatal(err)
	}
	if ver.Version != out.Version || ver.Hash != out.Hash {
		t.Fatalf("/policy/version = %+v, want %+v", ver, out)
	}

	// GET /policy returns the document (read-only, no token needed).
	dresp, err := http.Get(ts.URL + "/policy")
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	var doc policy.Snapshot
	if err := json.NewDecoder(dresp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Revoked) != 1 || doc.Revoked[0] != "stolen-1" {
		t.Fatalf("exported document missing revocation: %+v", doc)
	}

	// An invalid snapshot is rejected wholesale.
	bad := post(t, ts.URL+"/policy", adminToken, `{"rates":{"pw":{"max":-3,"per":0}}}`)
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid snapshot: status %d, want 400", bad.StatusCode)
	}
}

// TestConsecutiveSwapsNoDrops is the acceptance criterion: 120 consecutive
// hot swaps over HTTP while concurrent devices hammer policy checks; every
// check must succeed (the whitelisted access stays allowed in every
// version) and the observed stamp versions must be monotonic per checker.
func TestConsecutiveSwapsNoDrops(t *testing.T) {
	svc, ts := newPlane(t)

	const checkers = 8
	stop := make(chan struct{})
	errs := make(chan error, checkers)
	var wg sync.WaitGroup
	for i := 0; i < checkers; i++ {
		wg.Add(1)
		go func(dev int) {
			defer wg.Done()
			var lastVer uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				stamp, err := svc.Policy.CheckStamped(policy.Access{
					CorID: "pw", DeviceID: fmt.Sprintf("dev-%d", dev), Domain: "bank.com", Send: true,
				})
				if err != nil {
					errs <- fmt.Errorf("dev-%d: dropped check: %w", dev, err)
					return
				}
				if stamp.Version < lastVer {
					errs <- fmt.Errorf("dev-%d: stamp went backwards %d -> %d", dev, lastVer, stamp.Version)
					return
				}
				lastVer = stamp.Version
				// Yield so the spinning checkers don't starve the HTTP
				// server of run queue slots on small GOMAXPROCS.
				runtime.Gosched()
			}
		}(i)
	}

	var lastVersion uint64
	for i := 0; i < 120; i++ {
		// Every version keeps pw->bank.com allowed; the revoked set churns.
		snap := fmt.Sprintf(`{"whitelist":{"pw":["bank.com"]},"revoked":["swap-dev-%d"]}`, i)
		resp := post(t, ts.URL+"/policy", adminToken, snap)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("swap %d: status %d", i, resp.StatusCode)
		}
		var out struct {
			Version uint64 `json:"version"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if out.Version <= lastVersion {
			t.Fatalf("swap %d: version %d not monotonic after %d", i, out.Version, lastVersion)
		}
		lastVersion = out.Version
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPolicyRecoveredFromStore: a node restarted from its durable store
// comes back with the last accepted policy version and hash.
func TestPolicyRecoveredFromStore(t *testing.T) {
	dir := t.TempDir()
	sealer, err := cor.NewSealer("ctl-test-pass", bytes.Repeat([]byte{0x5a}, cor.SaltLen))
	if err != nil {
		t.Fatal(err)
	}
	open := func() (*node.Service, *store.Store) {
		st, err := store.Open(store.Options{Dir: dir, Sealer: sealer})
		if err != nil {
			t.Fatal(err)
		}
		svc := node.New(node.Options{MalwareSeed: -1})
		if err := svc.AttachStore(context.Background(), st); err != nil {
			t.Fatal(err)
		}
		return svc, st
	}

	svc, st := open()
	if _, err := svc.RegisterCor(context.Background(), "pw", "hunter2!", "password", "bank.com"); err != nil {
		t.Fatal(err)
	}
	p, err := ctl.New(ctl.Config{Target: svc, Stamp: svc.Policy.Stamp, Token: adminToken})
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	p.Routes(mux, nil, nil)
	ts := httptest.NewServer(mux)
	resp := post(t, ts.URL+"/policy", adminToken, `{"whitelist":{"pw":["bank.com"]},"revoked":["gone-1"]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("install: status %d", resp.StatusCode)
	}
	want := svc.Policy.Stamp()
	ts.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	svc2, st2 := open()
	defer st2.Close()
	got := svc2.Policy.Stamp()
	if got.Version != want.Version || got.Hash != want.Hash {
		t.Fatalf("recovered stamp %+v, want %+v", got, want)
	}
	if err := svc2.Policy.Check(policy.Access{CorID: "pw", DeviceID: "gone-1"}); err == nil {
		t.Fatal("recovered policy does not enforce the revocation")
	}
}
