package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"tinman/internal/fault"
	"tinman/internal/netsim"
	"tinman/internal/node"
	"tinman/internal/vm"
)

// Chaos suite: deterministic fault-injection scenarios for the §5.4
// availability story. Every scenario is a scripted event schedule on the
// virtual clock, so a failing run replays bit for bit from its seed.
//
// The invariants under test:
//   - no hangs: every control round trip is deadline-bounded;
//   - at-most-once: a retried request never re-executes on the node, so
//     the audit log of a faulty run equals that of a fault-free run;
//   - degraded mode: with the node gone, untainted work is untouched,
//     cor-touching work fails fast with node.ErrNodeUnavailable, and
//     service resumes by itself once the node returns.

// chaosFaults is the suite's aggressive-retry tuning: short deadlines so
// scenarios stay small, a high breaker threshold so retry scenarios are
// not cut short by degraded mode (the degraded-mode test lowers it).
func chaosFaults() FaultOptions {
	return FaultOptions{
		RequestTimeout:   time.Second,
		ConnectTimeout:   2 * time.Second,
		MaxAttempts:      6,
		RetryBackoffBase: 250 * time.Millisecond,
		RetryBackoffMax:  2 * time.Second,
		BreakerThreshold: 10,
		BreakerCooldown:  5 * time.Second,
	}
}

// newChaosWorld builds a TinMan world with one registered+bound cor and
// the tiny app installed, ready to offload.
func newChaosWorld(t *testing.T, cfg Config) (*World, *App, vm.Value) {
	t.Helper()
	if cfg.Profile.Name == "" {
		cfg.Profile = netsim.WiFi
	}
	cfg.TinManEnabled = true
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Node.RegisterCor("pw", "secret12", "test pw"); err != nil {
		t.Fatal(err)
	}
	if err := w.Device.RefreshCatalog(); err != nil {
		t.Fatal(err)
	}
	app, err := w.Device.InstallApp("tiny", tinyApp, 8)
	if err != nil {
		t.Fatal(err)
	}
	w.Node.BindApp("pw", app.Hash())
	pw, err := w.Device.CorArg(app, "pw")
	if err != nil {
		t.Fatal(err)
	}
	return w, app, pw
}

// auditTuples projects the audit log onto its order- and
// content-significant fields (Seq/Time vary with retry timing; the
// executed operations must not).
func auditTuples(w *World) []string {
	entries := w.Node.Audit.Entries()
	out := make([]string, 0, len(entries))
	for _, e := range entries {
		out = append(out, fmt.Sprintf("%s|%s|%s|%s|%s|%s",
			e.AppHash, e.CorID, e.DeviceID, e.Domain, e.Outcome, e.Detail))
	}
	return out
}

// requireGapFreeSeq asserts the audit sequence numbers are 1..n with no
// holes — a duplicated or dropped entry would show up here.
func requireGapFreeSeq(t *testing.T, w *World) {
	t.Helper()
	for i, e := range w.Node.Audit.Entries() {
		if e.Seq != uint64(i+1) {
			t.Fatalf("audit Seq gap: entry %d has Seq %d", i, e.Seq)
		}
	}
}

// requireSameAudit asserts a faulty run executed exactly the operations a
// fault-free control run did — the at-most-once guarantee made observable.
func requireSameAudit(t *testing.T, faulty, control *World) {
	t.Helper()
	got, want := auditTuples(faulty), auditTuples(control)
	if len(got) != len(want) {
		t.Fatalf("audit length %d under faults, %d in control:\nfaulty: %v\ncontrol: %v",
			len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("audit entry %d differs:\nfaulty:  %s\ncontrol: %s", i, got[i], want[i])
		}
	}
	requireGapFreeSeq(t, faulty)
}

// runTouch runs the cor-touching method once and checks the standard
// success conditions.
func runTouch(t *testing.T, w *World, app *App, pw vm.Value) {
	t.Helper()
	res, err := app.Run("Tiny", "touch", pw)
	if err != nil {
		t.Fatalf("touch under faults: %v", err)
	}
	if res.Int == int64('s') && res.Tag.Empty() {
		t.Fatal("plaintext first byte returned to device untainted")
	}
	if app.Report.Migrations == 0 {
		t.Fatal("no offload happened")
	}
	// The device must still hold only the placeholder.
	if pw.Ref != nil && pw.Ref.Str == "secret12" {
		t.Fatal("device holds the plaintext cor")
	}
}

// TestChaosPartitionDuringOffload cuts the device↔node link just as an
// offload starts and heals it 1.5 s later: the app must ride the retry
// path to completion with no hang, no duplicate execution, and no
// placeholder leakage.
func TestChaosPartitionDuringOffload(t *testing.T) {
	control, capp, cpw := newChaosWorld(t, Config{Seed: 7, Fault: chaosFaults()})
	runTouch(t, control, capp, cpw)

	w, app, pw := newChaosWorld(t, Config{Seed: 7, Fault: chaosFaults()})
	now := w.Net.Now()
	w.DeviceNodeLink().PartitionBetween(now, now+1500*time.Millisecond)
	runTouch(t, w, app, pw)

	if w.Device.ControlRetries() == 0 {
		t.Fatal("the partition never bit: no control retries recorded")
	}
	if w.Device.Degraded() {
		t.Fatal("device stuck in degraded mode after a successful run")
	}
	requireSameAudit(t, w, control)
}

// TestChaosPartitionDeterminism replays the partition scenario twice from
// the same seed and demands identical histories: same audit log, same
// retry count, same final virtual clock.
func TestChaosPartitionDeterminism(t *testing.T) {
	run := func() (*World, uint64) {
		w, app, pw := newChaosWorld(t, Config{Seed: 11, Fault: chaosFaults()})
		now := w.Net.Now()
		w.DeviceNodeLink().PartitionBetween(now, now+1500*time.Millisecond)
		runTouch(t, w, app, pw)
		return w, w.Device.ControlRetries()
	}
	w1, r1 := run()
	w2, r2 := run()
	if r1 != r2 {
		t.Fatalf("retry counts diverged: %d vs %d", r1, r2)
	}
	if w1.Net.Now() != w2.Net.Now() {
		t.Fatalf("final clocks diverged: %v vs %v", w1.Net.Now(), w2.Net.Now())
	}
	requireSameAudit(t, w1, w2)
}

// TestChaosSlowNodeReplaysNotReexecutes forces every first attempt to time
// out (the node's reply takes longer than the request deadline) and checks
// the retry binds to the already-running execution instead of starting a
// second one: exactly one offload, an audit log identical to an unhurried
// control run.
func TestChaosSlowNodeReplaysNotReexecutes(t *testing.T) {
	// Inflate serialization cost so the node's migration reply (~10 bytes
	// of dirty state → ≈60 ms compute) is scheduled past the 40 ms request
	// deadline; retries (reconnect + tagged replay) must pick up the
	// original execution's reply. 40 ms still clears the catalog/install
	// round trips (~12 ms on Wi-Fi).
	cost := DefaultCostModel()
	cost.SerializeNsPerByte = 6_000_000
	slow := chaosFaults()
	slow.RequestTimeout = 40 * time.Millisecond
	slow.RetryBackoffBase = 50 * time.Millisecond

	patient := chaosFaults()
	patient.RequestTimeout = time.Minute
	control, capp, cpw := newChaosWorld(t, Config{Seed: 13, Cost: cost, Fault: patient})
	runTouch(t, control, capp, cpw)

	w, app, pw := newChaosWorld(t, Config{Seed: 13, Cost: cost, Fault: slow})
	runTouch(t, w, app, pw)

	if w.Device.ControlRetries() == 0 {
		t.Fatal("deadline never expired: the scenario tested nothing")
	}
	if app.Report.Migrations != capp.Report.Migrations {
		t.Fatalf("faulty run migrated %d times, control %d", app.Report.Migrations, capp.Report.Migrations)
	}
	requireSameAudit(t, w, control)
}

// TestChaosNodeRestartMidOffload reboots the trusted node while an offload
// is in flight: host down at the offload's start, back 1.2 s later with
// all TCP state gone. The device must reconnect and complete.
func TestChaosNodeRestartMidOffload(t *testing.T) {
	control, capp, cpw := newChaosWorld(t, Config{Seed: 17, Fault: chaosFaults()})
	runTouch(t, control, capp, cpw)

	w, app, pw := newChaosWorld(t, Config{Seed: 17, Fault: chaosFaults()})
	now := w.Net.Now()
	w.Net.ScheduleAt(now, w.CrashNode)
	w.Net.ScheduleAt(now+1200*time.Millisecond, w.RestartNode)
	runTouch(t, w, app, pw)

	if w.Device.ControlRetries() == 0 {
		t.Fatal("the restart never bit: no control retries recorded")
	}
	requireSameAudit(t, w, control)
}

// TestChaosFlappingThreeG runs the cor-touching app over a 3G link that
// flaps down/up repeatedly from the start of the run — the paper's
// worst-case mobile environment. The run must complete without hanging
// and without duplicate executions.
func TestChaosFlappingThreeG(t *testing.T) {
	cfg := func() Config {
		return Config{Seed: 19, Profile: netsim.ThreeG, Fault: chaosFaults()}
	}
	control, capp, cpw := newChaosWorld(t, cfg())
	runTouch(t, control, capp, cpw)

	w, app, pw := newChaosWorld(t, cfg())
	now := w.Net.Now()
	// 3 cycles: 700 ms down, 900 ms up.
	w.DeviceNodeLink().Flap(now, 700*time.Millisecond, 900*time.Millisecond, 3)
	runTouch(t, w, app, pw)

	if w.Device.ControlRetries() == 0 {
		t.Fatal("the flapping link never bit: no control retries recorded")
	}
	requireSameAudit(t, w, control)
}

// TestChaosDegradedMode is the §5.4 acceptance scenario: with the node
// gone, untainted work runs exactly as before, cor-touching work fails
// fast with node.ErrNodeUnavailable once the breaker opens (no retry
// storm, no packets, no burned time), and the device resumes on its own
// after the node returns and the cooldown elapses.
func TestChaosDegradedMode(t *testing.T) {
	f := chaosFaults()
	f.RequestTimeout = 200 * time.Millisecond
	f.ConnectTimeout = 200 * time.Millisecond
	f.MaxAttempts = 2
	f.BreakerThreshold = 2
	f.BreakerCooldown = 5 * time.Second
	w, app, pw := newChaosWorld(t, Config{Seed: 23, Fault: f})

	w.CrashNode()

	// Untainted execution proceeds normally with zero node involvement.
	res, err := app.Run("Tiny", "double", vm.IntVal(21))
	if err != nil || res.Int != 42 {
		t.Fatalf("untainted run with node down: res=%v err=%v", res, err)
	}
	if app.Report.Migrations != 0 {
		t.Fatal("untainted run migrated")
	}

	// The first cor access eats the retry budget, opens the breaker, and
	// surfaces the typed error.
	if _, err := app.Run("Tiny", "touch", pw); !errors.Is(err, node.ErrNodeUnavailable) {
		t.Fatalf("cor access with node down: %v, want node.ErrNodeUnavailable", err)
	}
	if !w.Device.Degraded() {
		t.Fatal("device not in degraded mode after breaker-opening failures")
	}

	// Open breaker: cor accesses fail fast — no packets toward the node, no
	// retry-storm time burned, error still typed.
	sentBefore := w.Device.Host.Sent
	timeBefore := w.Net.Now()
	for i := 0; i < 5; i++ {
		if _, err := app.Run("Tiny", "touch", pw); !errors.Is(err, node.ErrNodeUnavailable) {
			t.Fatalf("fast-fail cor access %d: %v, want node.ErrNodeUnavailable", i, err)
		}
	}
	if d := w.Device.Host.Sent - sentBefore; d != 0 {
		t.Fatalf("open breaker still sent %d packets", d)
	}
	// Each run still does its local work (VM instructions, migration
	// serialization ≈ 2 ms) before hitting the breaker, but nothing on the
	// scale of a timeout or backoff wait may occur.
	if d := w.Net.Now() - timeBefore; d > f.RequestTimeout {
		t.Fatalf("open breaker burned %v of virtual time on 5 failed accesses", d)
	}
	// Untainted work is still fine mid-degradation.
	if res, err := app.Run("Tiny", "double", vm.IntVal(4)); err != nil || res.Int != 8 {
		t.Fatalf("untainted run while degraded: res=%v err=%v", res, err)
	}

	// Node returns; after the cooldown the next cor access probes, succeeds
	// and closes the breaker — resumption needs no manual reset.
	w.RestartNode()
	w.Net.RunFor(f.BreakerCooldown + time.Second)
	runTouch(t, w, app, pw)
	if w.Device.Degraded() {
		t.Fatal("device still degraded after successful resumption")
	}
	requireGapFreeSeq(t, w)

	// The placeholder never left: degraded mode must not have leaked
	// anything the device did not already have.
	if pw.Ref == nil || pw.Ref.Str == "secret12" {
		t.Fatal("device holds plaintext after the chaos run")
	}
}

// TestChaosDropWindowHeals drops a burst of packets mid-offload via the
// drop-N-then-heal fault and relies on TCP retransmission (not the
// device-level retry path) to carry the request through.
func TestChaosDropWindowHeals(t *testing.T) {
	control, capp, cpw := newChaosWorld(t, Config{Seed: 29, Fault: chaosFaults()})
	runTouch(t, control, capp, cpw)

	w, app, pw := newChaosWorld(t, Config{Seed: 29, Fault: chaosFaults()})
	w.DeviceNodeLink().DropNext(3)
	runTouch(t, w, app, pw)
	requireSameAudit(t, w, control)
}

// TestChaosBreakerStateExposed pins Degraded()'s mapping onto breaker
// states so monitoring callers can rely on it.
func TestChaosBreakerStateExposed(t *testing.T) {
	w, _, _ := newChaosWorld(t, Config{Seed: 31, Fault: chaosFaults()})
	if w.Device.Degraded() {
		t.Fatal("fresh device reports degraded")
	}
	if w.Device.breaker.State() != fault.BreakerClosed {
		t.Fatalf("fresh breaker state = %v", w.Device.breaker.State())
	}
}

// slowTouchApp burns a caller-chosen amount of device compute before its
// first tainted access, opening a wide window between the speculative
// warm-up stream (done within a few RTTs of Run) and the offload trigger.
const slowTouchApp = `
class Slow
  method work 1 6
    const r1, 0
  loop:
    ifge r1, r0, done
    const r3, 1
    add r1, r1, r3
    goto loop
  done:
    return r1
  end
  method slowTouch 2 6
    invoke r2, Slow.work, r1
    const r3, 0
    charat r4, r0, r3
    return r4
  end
end`

// TestChaosNodeRestartMidWarmup reboots the node while the warm-up stream
// is in flight. The stream dies unacked, so the device must abandon the
// speculation and complete the login over the cold full-snapshot path —
// with an audit log identical to an unfaulted (warm) control run, since
// speculation may never change which operations execute.
func TestChaosNodeRestartMidWarmup(t *testing.T) {
	control, capp, cpw := newChaosWorld(t, Config{Seed: 37, Fault: chaosFaults()})
	runTouch(t, control, capp, cpw)
	// Sanity: the control run really rode the warm path, so the faulty run
	// below exercises a genuinely different data path.
	if capp.Report.WarmHits != 1 || capp.Report.InitBytes != 0 {
		t.Fatalf("control run not warm: %+v", capp.Report)
	}

	w, app, pw := newChaosWorld(t, Config{Seed: 37, Fault: chaosFaults()})
	now := w.Net.Now()
	w.Net.ScheduleAt(now, w.CrashNode)
	w.Net.ScheduleAt(now+1200*time.Millisecond, w.RestartNode)
	runTouch(t, w, app, pw)

	if w.Device.ControlRetries() == 0 {
		t.Fatal("the restart never bit: no control retries recorded")
	}
	if app.Report.WarmHits != 0 {
		t.Fatalf("warm hit through a crashed node: %+v", app.Report)
	}
	if app.Report.InitBytes == 0 {
		t.Fatal("cold fallback shipped no full snapshot")
	}
	requireSameAudit(t, w, control)
}

// TestChaosWarmMissFallsBackToFullResend forces the node to lose its warm
// state after the device's stream completed but before the trigger (a
// shard detach/import round trip — the fleet drain path — drops warm
// epochs by design). The trigger-time warm migration must come back as a
// warm miss and the device's in-protocol fallback — reset, recapture the
// full snapshot, resend under a fresh request — must complete the run.
func TestChaosWarmMissFallsBackToFullResend(t *testing.T) {
	w, _, _ := newChaosWorld(t, Config{Seed: 41, Fault: chaosFaults()})
	app, err := w.Device.InstallApp("slow", slowTouchApp, 8)
	if err != nil {
		t.Fatal(err)
	}
	w.Node.BindApp("pw", app.Hash())
	pw, err := w.Device.CorArg(app, "pw")
	if err != nil {
		t.Fatal(err)
	}

	// 50k loop iterations ≈ 200k instructions ≈ 160 ms of device compute
	// before the trigger; the warm-up stream settles within ~10 ms. Drop
	// the node's warm state squarely between the two.
	now := w.Net.Now()
	w.Net.ScheduleAt(now+80*time.Millisecond, func() {
		exp, derr := w.Node.Svc.DetachShard(w.Device.ID)
		if derr != nil {
			t.Errorf("detach mid-run: %v", derr)
			return
		}
		if ierr := w.Node.Svc.ImportShard(context.Background(), exp); ierr != nil {
			t.Errorf("re-import mid-run: %v", ierr)
		}
	})

	res, err := app.Run("Slow", "slowTouch", pw, vm.IntVal(50000))
	if err != nil {
		t.Fatalf("slowTouch across a warm miss: %v", err)
	}
	if res.Int == int64('s') && res.Tag.Empty() {
		t.Fatal("plaintext first byte returned to device untainted")
	}
	if app.Report.WarmMisses != 1 || app.Report.WarmHits != 0 {
		t.Fatalf("warm miss not taken: %+v", app.Report)
	}
	if app.Report.WarmupBytes == 0 {
		t.Fatal("no warm-up stream recorded; the scenario tested nothing")
	}
	if app.Report.InitBytes == 0 {
		t.Fatal("fallback shipped no full snapshot")
	}
	requireGapFreeSeq(t, w)
}
