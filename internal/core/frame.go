// Package core is TinMan's orchestration layer: it wires the VM, the taint
// policies, the DSM offloading engine, the cor store, the policy engine, the
// simplified TLS stack and the simulated TCP/network substrate into a
// working device + trusted-node pair, and drives the on-demand
// security-oriented offloading loop of §3.
package core

import (
	"encoding/binary"
	"fmt"

	"tinman/internal/obs"
	"tinman/internal/tcpsim"
)

// Control-plane message types exchanged between the device and the trusted
// node over their TCP control connection.
const (
	// msgInstall ships an app's source (the dex transfer at warm-up, §6.2).
	msgInstall uint8 = iota + 1
	// msgInstallOK acknowledges installation (carrying the node-computed
	// hash for cross-checking).
	msgInstallOK
	// msgMigration carries a dsm.Migration in either direction.
	msgMigration
	// msgDenied reports a policy denial for an attempted migration or
	// injection; payload is the denial text.
	msgDenied
	// msgCatalog requests the device-visible cor catalog.
	msgCatalog
	// msgCatalogReply returns the catalog JSON.
	msgCatalogReply
	// msgSSLInject ships an SSL session state + target for session
	// injection (§3.2); the node replies msgSSLInjectOK or msgDenied.
	msgSSLInject
	// msgSSLInjectOK confirms the node is armed for payload replacement.
	msgSSLInjectOK
	// msgTagged wraps any request message with a device-minted request ID
	// so retries after an ambiguous failure (request sent, reply lost)
	// execute at most once on the node. Payload: u8 idLen | id | u8 inner
	// type | inner payload.
	msgTagged
	// msgTaggedTrace is msgTagged plus the requesting span's identity, so
	// node-side spans join the device-minted trace. Payload: u8 idLen | id |
	// 8B trace ID | 8B span ID | u8 inner type | inner payload. Devices emit
	// it only while tracing is active — untraced runs keep the msgTagged
	// wire bytes unchanged.
	msgTaggedTrace
	// msgWarmupChunk ships one background dsm.WarmupChunk (the speculative
	// pre-migration pipeline). Fire-and-forget from the device's
	// perspective: it is never wrapped in msgTagged and never retried —
	// losing a chunk just degrades to the cold path. Payload: u8 appLen |
	// app name | encoded chunk.
	msgWarmupChunk
	// msgWarmupAck acknowledges one warm-up chunk out of band (it is not a
	// reply to any pending tagged request; the device routes it to the
	// warm-up driver, not the request queue). Payload: u8 appLen | app name
	// | u64 epoch | u64 index | u8 ok.
	msgWarmupAck
	// msgWarmMiss rejects a warm-path migration whose epoch the node does
	// not hold ready; the device resets its DSM warm state and resends the
	// full snapshot. Payload: the refusal text.
	msgWarmMiss
)

// Frame is one length-prefixed control or handshake message: u32 length |
// u8 type | payload. The same framing carries the TLS handshake between
// clients and origin servers, so the apps package shares it.
type Frame struct {
	Type    uint8
	Payload []byte
}

// frame is the package-internal shorthand.
type frame = Frame

// EncodeFrame produces the wire form of a frame.
func EncodeFrame(t uint8, payload []byte) []byte {
	return encodeFrame(frame{Type: t, Payload: payload})
}

func encodeFrame(f frame) []byte {
	buf := make([]byte, 5+len(f.Payload))
	binary.BigEndian.PutUint32(buf, uint32(1+len(f.Payload)))
	buf[4] = f.Type
	copy(buf[5:], f.Payload)
	return buf
}

// FrameReader incrementally splits frames out of a TCP byte stream.
type FrameReader struct {
	buf []byte
}

// Feed appends newly received bytes.
func (r *FrameReader) Feed(b []byte) { r.buf = append(r.buf, b...) }

// Rest returns the unconsumed buffered bytes (used when a stream switches
// from framed handshake messages to self-delimiting TLS records).
func (r *FrameReader) Rest() []byte { return append([]byte(nil), r.buf...) }

// Next extracts one complete frame, or returns false.
func (r *FrameReader) Next() (Frame, bool, error) {
	if len(r.buf) < 4 {
		return Frame{}, false, nil
	}
	n := binary.BigEndian.Uint32(r.buf)
	if n == 0 || n > 64<<20 {
		return Frame{}, false, fmt.Errorf("core: implausible frame length %d", n)
	}
	if len(r.buf) < 4+int(n) {
		return Frame{}, false, nil
	}
	f := Frame{Type: r.buf[4], Payload: append([]byte(nil), r.buf[5:4+n]...)}
	r.buf = append([]byte(nil), r.buf[4+n:]...)
	return f, true, nil
}

// lower-case aliases used by the package internals.
type frameReader = FrameReader

func (r *frameReader) feed(b []byte)              { r.Feed(b) }
func (r *frameReader) next() (frame, bool, error) { return r.Next() }

// sendFrame writes a frame to a connection.
func sendFrame(c *tcpsim.Conn, f frame) error {
	return c.Write(encodeFrame(f))
}

// encodeTagged wraps an inner request frame with a request ID for
// at-most-once delivery. IDs are device-minted and at most 255 bytes.
func encodeTagged(id string, f frame) (frame, error) {
	if len(id) == 0 || len(id) > 255 {
		return frame{}, fmt.Errorf("core: tagged request ID length %d out of range", len(id))
	}
	p := make([]byte, 0, 2+len(id)+len(f.Payload))
	p = append(p, byte(len(id)))
	p = append(p, id...)
	p = append(p, f.Type)
	p = append(p, f.Payload...)
	return frame{Type: msgTagged, Payload: p}, nil
}

// encodeTaggedTrace is encodeTagged carrying the requesting span's identity.
func encodeTaggedTrace(id string, trace obs.TraceID, span obs.SpanID, f frame) (frame, error) {
	if len(id) == 0 || len(id) > 255 {
		return frame{}, fmt.Errorf("core: tagged request ID length %d out of range", len(id))
	}
	p := make([]byte, 0, 18+len(id)+len(f.Payload))
	p = append(p, byte(len(id)))
	p = append(p, id...)
	var ids [16]byte
	binary.BigEndian.PutUint64(ids[:8], uint64(trace))
	binary.BigEndian.PutUint64(ids[8:], uint64(span))
	p = append(p, ids[:]...)
	p = append(p, f.Type)
	p = append(p, f.Payload...)
	return frame{Type: msgTaggedTrace, Payload: p}, nil
}

// decodeTaggedTrace unwraps a msgTaggedTrace payload into the request ID,
// the propagated trace context, and the inner frame.
func decodeTaggedTrace(payload []byte) (string, obs.TraceID, obs.SpanID, frame, error) {
	if len(payload) < 18 {
		return "", 0, 0, frame{}, fmt.Errorf("core: short traced tagged frame")
	}
	n := int(payload[0])
	if len(payload) < 18+n {
		return "", 0, 0, frame{}, fmt.Errorf("core: truncated traced tagged frame")
	}
	id := string(payload[1 : 1+n])
	trace := obs.TraceID(binary.BigEndian.Uint64(payload[1+n:]))
	span := obs.SpanID(binary.BigEndian.Uint64(payload[9+n:]))
	inner := frame{Type: payload[17+n], Payload: append([]byte(nil), payload[18+n:]...)}
	return id, trace, span, inner, nil
}

// encodeWarmupChunk builds a msgWarmupChunk frame: u8 appLen | app | chunk.
func encodeWarmupChunk(app string, chunk []byte) (frame, error) {
	if len(app) == 0 || len(app) > 255 {
		return frame{}, fmt.Errorf("core: warmup app name length %d out of range", len(app))
	}
	p := make([]byte, 0, 1+len(app)+len(chunk))
	p = append(p, byte(len(app)))
	p = append(p, app...)
	p = append(p, chunk...)
	return frame{Type: msgWarmupChunk, Payload: p}, nil
}

// decodeWarmupChunk splits a msgWarmupChunk payload.
func decodeWarmupChunk(payload []byte) (string, []byte, error) {
	if len(payload) < 2 {
		return "", nil, fmt.Errorf("core: short warmup chunk frame")
	}
	n := int(payload[0])
	if n == 0 || len(payload) < 1+n {
		return "", nil, fmt.Errorf("core: truncated warmup chunk app name")
	}
	app := string(payload[1 : 1+n])
	return app, append([]byte(nil), payload[1+n:]...), nil
}

// encodeWarmupAck builds a msgWarmupAck frame: u8 appLen | app | u64 epoch |
// u64 index | u8 ok.
func encodeWarmupAck(app string, epoch uint64, index int, ok bool) frame {
	p := make([]byte, 0, 18+len(app))
	p = append(p, byte(len(app)))
	p = append(p, app...)
	var u [16]byte
	binary.BigEndian.PutUint64(u[:8], epoch)
	binary.BigEndian.PutUint64(u[8:], uint64(index))
	p = append(p, u[:]...)
	if ok {
		p = append(p, 1)
	} else {
		p = append(p, 0)
	}
	return frame{Type: msgWarmupAck, Payload: p}
}

// decodeWarmupAck splits a msgWarmupAck payload.
func decodeWarmupAck(payload []byte) (app string, epoch uint64, index int, ok bool, err error) {
	if len(payload) < 18 {
		return "", 0, 0, false, fmt.Errorf("core: short warmup ack frame")
	}
	n := int(payload[0])
	if len(payload) != 18+n {
		return "", 0, 0, false, fmt.Errorf("core: malformed warmup ack frame")
	}
	app = string(payload[1 : 1+n])
	epoch = binary.BigEndian.Uint64(payload[1+n:])
	index = int(binary.BigEndian.Uint64(payload[9+n:]))
	ok = payload[17+n] != 0
	return app, epoch, index, ok, nil
}

// decodeTagged unwraps a msgTagged payload into its request ID and inner
// frame.
func decodeTagged(payload []byte) (string, frame, error) {
	if len(payload) < 2 {
		return "", frame{}, fmt.Errorf("core: short tagged frame")
	}
	n := int(payload[0])
	if len(payload) < 2+n {
		return "", frame{}, fmt.Errorf("core: truncated tagged frame ID")
	}
	id := string(payload[1 : 1+n])
	inner := frame{Type: payload[1+n], Payload: append([]byte(nil), payload[2+n:]...)}
	return id, inner, nil
}
