package core

import (
	"testing"
)

// TestHandoffToStandbyNode moves the device's shard from the primary
// trusted node to a standby via the export/import path: hosted apps, the
// per-device audit sequence and the adapter's app routing all follow the
// shard, and the primary retains nothing.
func TestHandoffToStandbyNode(t *testing.T) {
	w := newTestWorld(t, true)
	if _, err := w.Node.RegisterCor("pw", "secret12", "test pw"); err != nil {
		t.Fatal(err)
	}
	if err := w.Device.RefreshCatalog(); err != nil {
		t.Fatal(err)
	}
	app, err := w.Device.InstallApp("tiny", tinyApp, 8)
	if err != nil {
		t.Fatal(err)
	}
	w.Node.BindApp("pw", app.Hash())
	pw, err := w.Device.CorArg(app, "pw")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Run("Tiny", "touch", pw); err != nil {
		t.Fatal(err)
	}
	if app.Report.Migrations == 0 {
		t.Fatal("no offload happened; nothing to hand off")
	}

	dev := w.Device.ID
	before, ok := w.Node.Svc.Shard(dev)
	if !ok {
		t.Fatal("no shard on primary after the session")
	}
	if before.Apps == 0 {
		t.Fatal("shard hosts no apps")
	}

	standby := w.AddStandbyNode("standby-node")
	// Control-plane replication: the standby carries the registered cor, as
	// every fleet member would.
	if _, err := standby.RegisterCor("pw", "secret12", "test pw"); err != nil {
		t.Fatal(err)
	}
	standby.BindApp("pw", app.Hash())

	if err := w.Node.HandoffTo(standby, dev); err != nil {
		t.Fatal(err)
	}
	if _, still := w.Node.Svc.Shard(dev); still {
		t.Fatal("shard still attached on primary after handoff")
	}
	after, ok := standby.Svc.Shard(dev)
	if !ok {
		t.Fatal("shard not attached on standby")
	}
	if after.Apps != before.Apps {
		t.Fatalf("apps did not follow the shard: %d on standby, %d before", after.Apps, before.Apps)
	}
	if after.AuditSeq != before.AuditSeq {
		t.Fatalf("audit sequence reset across handoff: %d -> %d", before.AuditSeq, after.AuditSeq)
	}
	if standby.appDevice["tiny"] != dev {
		t.Fatalf("app routing did not follow: standby maps tiny to %q", standby.appDevice["tiny"])
	}
	if _, still := w.Node.appDevice["tiny"]; still {
		t.Fatal("primary still routes the handed-off app")
	}

	// A second handoff of the same device has nothing to move.
	if err := w.Node.HandoffTo(standby, dev); err == nil {
		t.Fatal("handing off a device with no shard succeeded")
	}
}
