package core

import (
	"encoding/json"
	"fmt"

	"tinman/internal/cor"
	"tinman/internal/netsim"
	"tinman/internal/taint"
	"tinman/internal/tcpsim"
	"tinman/internal/tlssim"
)

// Handshake frame types for TLS-over-TCP between the device (or any client)
// and origin servers. Exported so the apps package speaks the same
// conventions.
const (
	HSClientHello uint8 = 0x21
	HSServerHello uint8 = 0x22
	HSKeyExchange uint8 = 0x23
)

// Device is the mobile side: per-app VMs with asymmetric tainting,
// placeholder materialization, the control-plane client, the modified SSL
// library (TLS ≥ 1.1 enforced) and the marked-record egress filter.
type Device struct {
	w      *World
	ID     string
	Host   *netsim.Host
	Stack  *tcpsim.Stack
	policy taint.Policy

	ctrl       *tcpsim.Conn
	ctrlReader frameReader
	ctrlQueue  []frame

	catalog  map[string]cor.DeviceView
	https    map[string]*httpsConn
	baseline map[string]string
	apps     map[string]*App

	filterInstalled bool
}

func newDevice(w *World, host *netsim.Host, id string, pol taint.Policy, baseline map[string]string) *Device {
	return &Device{
		w:        w,
		ID:       id,
		Host:     host,
		Stack:    tcpsim.NewStack(w.Net, host),
		policy:   pol,
		catalog:  make(map[string]cor.DeviceView),
		https:    make(map[string]*httpsConn),
		baseline: baseline,
		apps:     make(map[string]*App),
	}
}

// connectControl dials the trusted node's control port and fetches the cor
// catalog.
func (d *Device) connectControl() error {
	c, err := d.Stack.Dial(NodeAddr, ControlPort)
	if err != nil {
		return err
	}
	if !d.w.Net.RunUntil(c.Established) {
		return fmt.Errorf("core: device: control connection never established")
	}
	d.ctrl = c
	return d.RefreshCatalog()
}

// RefreshCatalog re-fetches the device-visible cor views; call after
// registering new cors on the node.
func (d *Device) RefreshCatalog() error {
	reply, err := d.request(frame{Type: msgCatalog})
	if err != nil {
		return err
	}
	if reply.Type != msgCatalogReply {
		return fmt.Errorf("core: device: unexpected catalog reply type %d", reply.Type)
	}
	var views []cor.DeviceView
	if err := json.Unmarshal(reply.Payload, &views); err != nil {
		return err
	}
	for _, v := range views {
		d.catalog[v.ID] = v
	}
	return nil
}

// Catalog lists the cor descriptions the selection widget shows (§4.1).
func (d *Device) Catalog() []cor.DeviceView {
	out := make([]cor.DeviceView, 0, len(d.catalog))
	for _, v := range d.catalog {
		out = append(out, v)
	}
	return out
}

// pump drains control-connection bytes into parsed frames.
func (d *Device) pump() error {
	if d.ctrl == nil || d.ctrl.Readable() == 0 {
		return nil
	}
	d.ctrlReader.feed(d.ctrl.Read(0))
	for {
		f, ok, err := d.ctrlReader.next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		d.ctrlQueue = append(d.ctrlQueue, f)
	}
}

// request performs a synchronous control round trip, stepping the
// simulation until the node's reply arrives.
func (d *Device) request(f frame) (frame, error) {
	if d.ctrl == nil {
		return frame{}, fmt.Errorf("core: device: control plane not connected (TinMan disabled?)")
	}
	wire := encodeFrame(f)
	if err := d.ctrl.Write(wire); err != nil {
		return frame{}, err
	}
	d.w.noteDeviceTransfer(len(wire))
	waitStart := d.w.Net.Now()
	var pumpErr error
	ok := d.w.Net.RunUntil(func() bool {
		if err := d.pump(); err != nil {
			pumpErr = err
			return true
		}
		return len(d.ctrlQueue) > 0
	})
	if pumpErr != nil {
		return frame{}, pumpErr
	}
	if !ok || len(d.ctrlQueue) == 0 {
		return frame{}, fmt.Errorf("core: device: control request timed out (message %d)", f.Type)
	}
	reply := d.ctrlQueue[0]
	d.ctrlQueue = d.ctrlQueue[1:]
	d.w.noteDeviceTransfer(len(reply.Payload) + 5)
	// The COMET client does not sleep while the node works: the DSM thread
	// polls the socket and services GC/bookkeeping, keeping the CPU at
	// partial duty for the whole wait.
	if wait := d.w.Net.Now() - waitStart; wait > 0 {
		d.w.CPU.NoteActive(waitStart, wait/2)
	}
	return reply, nil
}

// --- HTTPS client (the "modified SSL library") ---

// httpsConn is an established TLS session to an origin server.
type httpsConn struct {
	domain string
	addr   string
	port   uint16
	tcp    *tcpsim.Conn
	sess   *tlssim.Session
	buf    []byte
}

// httpsDial returns a cached TLS connection to the domain, establishing TCP
// and the TLS handshake on first use. The client config enforces TLS ≥ 1.1
// when TinMan is enabled (§3.2).
func (d *Device) httpsDial(domain string) (*httpsConn, error) {
	if hc, ok := d.https[domain]; ok && hc.tcp.Established() {
		return hc, nil
	}
	addr, err := d.w.Resolve(domain)
	if err != nil {
		return nil, err
	}
	const port = 443
	tcp, err := d.Stack.Dial(addr, port)
	if err != nil {
		return nil, err
	}
	if !d.w.Net.RunUntil(tcp.Established) {
		return nil, fmt.Errorf("core: device: TCP to %s never established", domain)
	}

	minVer := tlssim.Version(0)
	if d.w.enabled {
		minVer = tlssim.TLS11
	}
	ch, cst, err := tlssim.NewClientHello(tlssim.ClientConfig{MinVersion: minVer})
	if err != nil {
		return nil, err
	}
	hc := &httpsConn{domain: domain, addr: addr, port: port, tcp: tcp}
	chJSON, _ := json.Marshal(ch)
	if err := tcp.Write(EncodeFrame(HSClientHello, chJSON)); err != nil {
		return nil, err
	}
	d.w.noteDeviceTransfer(len(chJSON))

	shFrame, err := hc.awaitFrame(d.w.Net)
	if err != nil {
		return nil, fmt.Errorf("core: device: handshake with %s: %v", domain, err)
	}
	if shFrame.Type != HSServerHello {
		return nil, fmt.Errorf("core: device: %s sent %d, want ServerHello", domain, shFrame.Type)
	}
	var sh tlssim.ServerHello
	if err := json.Unmarshal(shFrame.Payload, &sh); err != nil {
		return nil, err
	}
	cke, sess, err := tlssim.ClientFinish(cst, &sh)
	if err != nil {
		return nil, fmt.Errorf("core: device: handshake with %s: %v", domain, err)
	}
	ckeJSON, _ := json.Marshal(cke)
	if err := tcp.Write(EncodeFrame(HSKeyExchange, ckeJSON)); err != nil {
		return nil, err
	}
	d.w.noteDeviceTransfer(len(ckeJSON))
	hc.sess = sess
	d.https[domain] = hc
	return hc, nil
}

// awaitFrame steps the simulation until one handshake frame arrives.
func (hc *httpsConn) awaitFrame(n *netsim.Net) (frame, error) {
	var r frameReader
	r.buf = hc.buf
	var got frame
	var ferr error
	ok := n.RunUntil(func() bool {
		if hc.tcp.Readable() > 0 {
			r.feed(hc.tcp.Read(0))
		}
		f, ok, err := r.next()
		if err != nil {
			ferr = err
			return true
		}
		if ok {
			got = f
			return true
		}
		return hc.tcp.Closed()
	})
	hc.buf = r.buf
	if ferr != nil {
		return frame{}, ferr
	}
	if !ok || got.Type == 0 {
		return frame{}, fmt.Errorf("handshake frame never arrived")
	}
	return got, nil
}

// awaitRecord steps the simulation until a complete TLS record arrives, and
// opens it.
func (hc *httpsConn) awaitRecord(n *netsim.Net) ([]byte, error) {
	complete := func() bool {
		if len(hc.buf) < 5 {
			return false
		}
		need := 5 + int(uint16(hc.buf[3])<<8|uint16(hc.buf[4]))
		return len(hc.buf) >= need
	}
	ok := n.RunUntil(func() bool {
		if hc.tcp.Readable() > 0 {
			hc.buf = append(hc.buf, hc.tcp.Read(0)...)
		}
		return complete() || hc.tcp.Closed()
	})
	if !ok && !complete() {
		return nil, fmt.Errorf("core: device: response from %s never arrived", hc.domain)
	}
	if !complete() {
		return nil, fmt.Errorf("core: device: connection to %s closed mid-record", hc.domain)
	}
	_, plaintext, rest, err := hc.sess.Open(hc.buf)
	if err != nil {
		return nil, fmt.Errorf("core: device: opening record from %s: %v", hc.domain, err)
	}
	hc.buf = append([]byte(nil), rest...)
	return plaintext, nil
}

// ensureFilter installs the marked-record redirect rule (the iptables rule
// of §3.6).
func (d *Device) ensureFilter() error {
	if d.filterInstalled {
		return nil
	}
	if err := d.Stack.AddEgressRule(tcpsim.MarkedRecordRule(byte(tlssim.TypeMarkedCor), NodeAddr)); err != nil {
		return err
	}
	d.filterInstalled = true
	return nil
}
