package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"tinman/internal/cor"
	"tinman/internal/fault"
	"tinman/internal/netsim"
	"tinman/internal/node"
	"tinman/internal/obs"
	"tinman/internal/taint"
	"tinman/internal/tcpsim"
	"tinman/internal/tlssim"
)

// ErrControlTimeout marks a control round trip (or control connect) that
// exceeded its deadline. Match with errors.Is.
var ErrControlTimeout = errors.New("core: control request timed out")

// ControlTimeoutError carries the detail of one control-plane deadline
// expiry; it unwraps to ErrControlTimeout.
type ControlTimeoutError struct {
	// Msg is the control message type that timed out (0 for a connect).
	Msg uint8
	// Wait is how long the device waited.
	Wait time.Duration
}

func (e *ControlTimeoutError) Error() string {
	if e.Msg == 0 {
		return fmt.Sprintf("core: device: control connect timed out after %v", e.Wait)
	}
	return fmt.Sprintf("core: device: control request (message %d) timed out after %v", e.Msg, e.Wait)
}

func (e *ControlTimeoutError) Unwrap() error { return ErrControlTimeout }

// Handshake frame types for TLS-over-TCP between the device (or any client)
// and origin servers. Exported so the apps package speaks the same
// conventions.
const (
	HSClientHello uint8 = 0x21
	HSServerHello uint8 = 0x22
	HSKeyExchange uint8 = 0x23
)

// Device is the mobile side: per-app VMs with asymmetric tainting,
// placeholder materialization, the control-plane client, the modified SSL
// library (TLS ≥ 1.1 enforced) and the marked-record egress filter.
type Device struct {
	w      *World
	ID     string
	Host   *netsim.Host
	Stack  *tcpsim.Stack
	policy taint.Policy

	ctrl       *tcpsim.Conn
	ctrlReader frameReader
	ctrlQueue  []frame

	// Fault-tolerance machinery for the control channel (§5.4): requests
	// carry device-minted IDs so retries after ambiguous failures execute
	// at most once on the node; the breaker flips the device into
	// cor-degraded mode when the node is plainly gone.
	reqSeq  uint64
	retries uint64
	breaker *fault.Breaker
	backoff fault.Backoff

	catalog  map[string]cor.DeviceView
	https    map[string]*httpsConn
	baseline map[string]string
	apps     map[string]*App

	filterInstalled bool
}

func newDevice(w *World, host *netsim.Host, id string, pol taint.Policy, baseline map[string]string) *Device {
	return &Device{
		w:        w,
		ID:       id,
		Host:     host,
		Stack:    tcpsim.NewStack(w.Net, host),
		policy:   pol,
		catalog:  make(map[string]cor.DeviceView),
		https:    make(map[string]*httpsConn),
		baseline: baseline,
		apps:     make(map[string]*App),
		breaker: fault.NewBreaker(fault.BreakerConfig{
			Threshold: w.Fault.BreakerThreshold,
			Cooldown:  w.Fault.BreakerCooldown,
			Now:       w.Net.Now, // breaker cooldowns run on virtual time
		}),
		backoff: fault.Backoff{
			Base:   w.Fault.RetryBackoffBase,
			Max:    w.Fault.RetryBackoffMax,
			Jitter: 0.2,
			Rand:   w.Net.Rand().Float64, // seeded: retry schedules reproduce
		},
	}
}

// connectControl dials the trusted node's control port and fetches the cor
// catalog.
func (d *Device) connectControl() error {
	if err := d.dialControl(); err != nil {
		return err
	}
	return d.RefreshCatalog()
}

// dialControl establishes a fresh control connection, bounded by the
// configured connect timeout. RunUntil only evaluates its condition at
// event boundaries, so a no-op wake event is parked at the deadline to
// guarantee the timeout is observed even on a silent network.
func (d *Device) dialControl() error {
	c, err := d.Stack.Dial(NodeAddr, ControlPort)
	if err != nil {
		return err
	}
	deadline := d.w.Net.Now() + d.w.Fault.ConnectTimeout
	d.w.Net.Schedule(d.w.Fault.ConnectTimeout, func() {})
	d.w.Net.RunUntil(func() bool {
		return c.Established() || c.Closed() || d.w.Net.Now() >= deadline
	})
	if !c.Established() {
		c.Abort() // stop the handshake retransmit timer for good
		return &ControlTimeoutError{Msg: 0, Wait: d.w.Fault.ConnectTimeout}
	}
	d.ctrl = c
	return nil
}

// reconnectControl replaces a dead control connection with a fresh one.
// The old connection is aborted first: an abandoned simulated TCP
// connection would otherwise re-arm its retransmission timer forever.
// Buffered frames from the old connection are discarded — any reply they
// carried belongs to a request the caller already gave up on, and the
// node's replay table answers its retry instead.
func (d *Device) reconnectControl() error {
	if d.ctrl != nil && !d.ctrl.Closed() {
		d.ctrl.Abort()
	}
	d.ctrl = nil
	d.ctrlReader = frameReader{}
	d.ctrlQueue = nil
	return d.dialControl()
}

// ControlRetries counts control-plane request attempts beyond each
// request's first (diagnostics; chaos tests use it to prove a fault
// actually bit).
func (d *Device) ControlRetries() uint64 { return d.retries }

// Degraded reports cor-degraded mode (§5.4): the circuit breaker is
// refusing node traffic, so cor-touching operations fail fast with
// node.ErrNodeUnavailable while untainted work proceeds normally. The
// device leaves the mode automatically once a post-cooldown probe reaches
// the node.
func (d *Device) Degraded() bool {
	return d.breaker.State() != fault.BreakerClosed
}

// RefreshCatalog re-fetches the device-visible cor views; call after
// registering new cors on the node.
func (d *Device) RefreshCatalog() error {
	reply, err := d.request(frame{Type: msgCatalog})
	if err != nil {
		return err
	}
	if reply.Type != msgCatalogReply {
		return fmt.Errorf("core: device: unexpected catalog reply type %d", reply.Type)
	}
	var views []cor.DeviceView
	if err := json.Unmarshal(reply.Payload, &views); err != nil {
		return err
	}
	for _, v := range views {
		d.catalog[v.ID] = v
	}
	// Class changes ride the catalog: refresh every app endpoint's
	// server-only mask so the next capture honors them.
	mask := d.restrictedMask()
	for _, a := range d.apps {
		a.ep.Restricted = mask
	}
	return nil
}

// restrictedMask mirrors cor.Store.RestrictedMask from the device's view of
// the catalog: the union of taint bits whose cors are server-only. Objects
// carrying these bits never ship in DSM payloads from this side either —
// the placeholder is worthless to an attacker, but a symmetric filter keeps
// the wire invariant simple: restricted state does not travel, period.
func (d *Device) restrictedMask() taint.Tag {
	var t taint.Tag
	for _, v := range d.catalog {
		if v.Class == cor.ClassServerOnly {
			t = t.Union(taint.Bit(v.Bit))
		}
	}
	return t
}

// Catalog lists the cor descriptions the selection widget shows (§4.1).
func (d *Device) Catalog() []cor.DeviceView {
	out := make([]cor.DeviceView, 0, len(d.catalog))
	for _, v := range d.catalog {
		out = append(out, v)
	}
	return out
}

// pump drains control-connection bytes into parsed frames. Warm-up
// acknowledgements are routed straight to the owning app's driver rather
// than queued: roundTrip treats the head of ctrlQueue as THE reply to the
// in-flight request, and an out-of-band ack must never be mistaken for one.
func (d *Device) pump() error {
	if d.ctrl == nil || d.ctrl.Readable() == 0 {
		return nil
	}
	d.ctrlReader.feed(d.ctrl.Read(0))
	for {
		f, ok, err := d.ctrlReader.next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if f.Type == msgWarmupAck {
			d.handleWarmupAck(f)
			continue
		}
		d.ctrlQueue = append(d.ctrlQueue, f)
	}
}

// handleWarmupAck delivers one out-of-band warm-up acknowledgement to the
// app it names. Unknown apps, stale epochs, and malformed frames are
// silently dropped — losing an ack only costs the speculation, never
// correctness.
func (d *Device) handleWarmupAck(f frame) {
	app, epoch, index, ok, err := decodeWarmupAck(f.Payload)
	if err != nil {
		return
	}
	a := d.apps[app]
	if a == nil {
		return
	}
	d.w.noteDeviceTransfer(len(f.Payload) + 5)
	a.warmupAck(epoch, index, ok)
}

// request performs a synchronous control round trip with the full §5.4
// fault-tolerance stack: a device-minted request ID makes retries safe
// (the node executes each ID at most once), each attempt runs under a
// deadline, failed attempts back off and reconnect, and the circuit
// breaker fails cor-touching work fast once the node is plainly gone.
func (d *Device) request(f frame) (frame, error) {
	if d.ctrl == nil && d.breaker.State() == fault.BreakerClosed {
		return frame{}, fmt.Errorf("core: device: control plane not connected (TinMan disabled?)")
	}
	if !d.breaker.Allow() {
		return frame{}, fmt.Errorf("core: device: %w (circuit breaker open)", node.ErrNodeUnavailable)
	}
	// The control round trip is one span; the node joins the trace via the
	// IDs stamped into the tagged frame (msgTaggedTrace).
	var rpc *obs.Span
	if tr := d.w.Obs; tr.Enabled() {
		rpc = tr.StartSpan(obs.PhaseControlRPC, obs.Msg(f.Type))
	}
	d.reqSeq++
	reqID := fmt.Sprintf("%s#%d", d.ID, d.reqSeq)
	var (
		tagged frame
		err    error
	)
	if rpc != nil {
		tagged, err = encodeTaggedTrace(reqID, rpc.Trace(), rpc.ID(), f)
	} else {
		tagged, err = encodeTagged(reqID, f)
	}
	if err != nil {
		d.breaker.Success() // local encoding error, not a node failure
		rpc.End()
		return frame{}, err
	}
	var lastErr error
	attempts := 0
	for attempt := 0; attempt < d.w.Fault.MaxAttempts; attempt++ {
		attempts = attempt
		if attempt > 0 {
			d.retries++
			d.w.Net.RunFor(d.backoff.Delay(attempt - 1))
			if err := d.reconnectControl(); err != nil {
				lastErr = err
				d.breaker.Failure()
				if d.breaker.State() == fault.BreakerOpen {
					break
				}
				continue
			}
		} else if d.ctrl == nil {
			// Re-entry from degraded mode: the breaker admitted a probe but
			// the previous failure tore the connection down.
			if err := d.reconnectControl(); err != nil {
				lastErr = err
				d.breaker.Failure()
				d.endRequestSpan(rpc, 0, err)
				return frame{}, fmt.Errorf("core: device: %w: %w", node.ErrNodeUnavailable, lastErr)
			}
		}
		reply, err := d.roundTrip(tagged, f.Type)
		if err == nil {
			d.breaker.Success()
			d.endRequestSpan(rpc, attempt, nil)
			return reply, nil
		}
		lastErr = err
		d.breaker.Failure()
		if d.breaker.State() == fault.BreakerOpen {
			break
		}
	}
	d.endRequestSpan(rpc, attempts, lastErr)
	return frame{}, fmt.Errorf("core: device: %w: %w", node.ErrNodeUnavailable, lastErr)
}

// endRequestSpan closes a control_rpc span, recording retries beyond the
// first attempt and the outcome's error class.
func (d *Device) endRequestSpan(rpc *obs.Span, retries int, err error) {
	if rpc == nil {
		return
	}
	if retries > 0 {
		rpc.Add(obs.Retries(retries))
	}
	if err != nil {
		class := obs.ErrUnavailable
		if errors.Is(err, ErrControlTimeout) {
			class = obs.ErrTimeout
		}
		rpc.Add(obs.Err(class))
	}
	rpc.End()
}

// roundTrip writes one (tagged) request frame and steps the simulation
// until the reply, a transport failure, or the per-attempt deadline — a
// no-op wake event parked at the deadline guarantees RunUntil observes it
// even when the network has gone completely silent.
func (d *Device) roundTrip(wire frame, inner uint8) (frame, error) {
	enc := encodeFrame(wire)
	if err := d.ctrl.Write(enc); err != nil {
		return frame{}, err
	}
	d.w.noteDeviceTransfer(len(enc))
	ctrl := d.ctrl
	waitStart := d.w.Net.Now()
	deadline := waitStart + d.w.Fault.RequestTimeout
	d.w.Net.Schedule(d.w.Fault.RequestTimeout, func() {})
	var pumpErr error
	d.w.Net.RunUntil(func() bool {
		if err := d.pump(); err != nil {
			pumpErr = err
			return true
		}
		return len(d.ctrlQueue) > 0 || ctrl.Closed() || d.w.Net.Now() >= deadline
	})
	// The COMET client does not sleep while the node works: the DSM thread
	// polls the socket and services GC/bookkeeping, keeping the CPU at
	// partial duty for the whole wait — including waits that end in failure.
	if wait := d.w.Net.Now() - waitStart; wait > 0 {
		d.w.CPU.NoteActive(waitStart, wait/2)
	}
	if pumpErr != nil {
		return frame{}, pumpErr
	}
	if len(d.ctrlQueue) > 0 {
		reply := d.ctrlQueue[0]
		d.ctrlQueue = d.ctrlQueue[1:]
		d.w.noteDeviceTransfer(len(reply.Payload) + 5)
		return reply, nil
	}
	if ctrl.Closed() {
		return frame{}, fmt.Errorf("core: device: control connection reset")
	}
	return frame{}, &ControlTimeoutError{Msg: inner, Wait: d.w.Net.Now() - waitStart}
}

// --- HTTPS client (the "modified SSL library") ---

// httpsConn is an established TLS session to an origin server.
type httpsConn struct {
	domain string
	addr   string
	port   uint16
	tcp    *tcpsim.Conn
	sess   *tlssim.Session
	buf    []byte
}

// httpsDial returns a cached TLS connection to the domain, establishing TCP
// and the TLS handshake on first use. The client config enforces TLS ≥ 1.1
// when TinMan is enabled (§3.2).
func (d *Device) httpsDial(domain string) (*httpsConn, error) {
	if hc, ok := d.https[domain]; ok && hc.tcp.Established() {
		return hc, nil
	}
	addr, err := d.w.Resolve(domain)
	if err != nil {
		return nil, err
	}
	const port = 443
	tcp, err := d.Stack.Dial(addr, port)
	if err != nil {
		return nil, err
	}
	if !d.w.Net.RunUntil(tcp.Established) {
		return nil, fmt.Errorf("core: device: TCP to %s never established", domain)
	}

	minVer := tlssim.Version(0)
	if d.w.enabled {
		minVer = tlssim.TLS11
	}
	ch, cst, err := tlssim.NewClientHello(tlssim.ClientConfig{MinVersion: minVer})
	if err != nil {
		return nil, err
	}
	hc := &httpsConn{domain: domain, addr: addr, port: port, tcp: tcp}
	chJSON, _ := json.Marshal(ch)
	if err := tcp.Write(EncodeFrame(HSClientHello, chJSON)); err != nil {
		return nil, err
	}
	d.w.noteDeviceTransfer(len(chJSON))

	shFrame, err := hc.awaitFrame(d.w.Net)
	if err != nil {
		return nil, fmt.Errorf("core: device: handshake with %s: %v", domain, err)
	}
	if shFrame.Type != HSServerHello {
		return nil, fmt.Errorf("core: device: %s sent %d, want ServerHello", domain, shFrame.Type)
	}
	var sh tlssim.ServerHello
	if err := json.Unmarshal(shFrame.Payload, &sh); err != nil {
		return nil, err
	}
	cke, sess, err := tlssim.ClientFinish(cst, &sh)
	if err != nil {
		return nil, fmt.Errorf("core: device: handshake with %s: %v", domain, err)
	}
	ckeJSON, _ := json.Marshal(cke)
	if err := tcp.Write(EncodeFrame(HSKeyExchange, ckeJSON)); err != nil {
		return nil, err
	}
	d.w.noteDeviceTransfer(len(ckeJSON))
	hc.sess = sess
	d.https[domain] = hc
	return hc, nil
}

// awaitFrame steps the simulation until one handshake frame arrives.
func (hc *httpsConn) awaitFrame(n *netsim.Net) (frame, error) {
	var r frameReader
	r.buf = hc.buf
	var got frame
	var ferr error
	ok := n.RunUntil(func() bool {
		if hc.tcp.Readable() > 0 {
			r.feed(hc.tcp.Read(0))
		}
		f, ok, err := r.next()
		if err != nil {
			ferr = err
			return true
		}
		if ok {
			got = f
			return true
		}
		return hc.tcp.Closed()
	})
	hc.buf = r.buf
	if ferr != nil {
		return frame{}, ferr
	}
	if !ok || got.Type == 0 {
		return frame{}, fmt.Errorf("handshake frame never arrived")
	}
	return got, nil
}

// awaitRecord steps the simulation until a complete TLS record arrives, and
// opens it.
func (hc *httpsConn) awaitRecord(n *netsim.Net) ([]byte, error) {
	complete := func() bool {
		if len(hc.buf) < 5 {
			return false
		}
		need := 5 + int(uint16(hc.buf[3])<<8|uint16(hc.buf[4]))
		return len(hc.buf) >= need
	}
	ok := n.RunUntil(func() bool {
		if hc.tcp.Readable() > 0 {
			hc.buf = append(hc.buf, hc.tcp.Read(0)...)
		}
		return complete() || hc.tcp.Closed()
	})
	if !ok && !complete() {
		return nil, fmt.Errorf("core: device: response from %s never arrived", hc.domain)
	}
	if !complete() {
		return nil, fmt.Errorf("core: device: connection to %s closed mid-record", hc.domain)
	}
	_, plaintext, rest, err := hc.sess.Open(hc.buf)
	if err != nil {
		return nil, fmt.Errorf("core: device: opening record from %s: %v", hc.domain, err)
	}
	hc.buf = append([]byte(nil), rest...)
	return plaintext, nil
}

// ensureFilter installs the marked-record redirect rule (the iptables rule
// of §3.6).
func (d *Device) ensureFilter() error {
	if d.filterInstalled {
		return nil
	}
	if err := d.Stack.AddEgressRule(tcpsim.MarkedRecordRule(byte(tlssim.TypeMarkedCor), NodeAddr)); err != nil {
		return err
	}
	d.filterInstalled = true
	return nil
}
