package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"tinman/internal/audit"
	"tinman/internal/cor"
	"tinman/internal/dsm"
	"tinman/internal/malware"
	"tinman/internal/netsim"
	"tinman/internal/node"
	"tinman/internal/obs"
	"tinman/internal/policy"
	"tinman/internal/store"
	"tinman/internal/tcpsim"
)

// TrustedNode is the simulation's adapter over the transport-agnostic
// node.Service (§2.5): the service owns the cor vault, policy engine,
// audit log, offload hosting and injection state; this type translates the
// virtual-time control-plane frames into service calls and schedules the
// replies with the modeled compute delays.
type TrustedNode struct {
	w     *World
	Host  *netsim.Host
	Stack *tcpsim.Stack

	// Svc is the shared trusted-node service; the component fields below
	// alias its state so existing callers (tests, examples) keep working.
	Svc     *node.Service
	Cors    *cor.Store
	Policy  *policy.Engine
	Audit   *audit.Log
	Malware *malware.DB

	Replacer *tcpsim.Replacer

	// appDevice maps an installed app name to the installing device ID —
	// the simulated control plane identifies offloads by app name only,
	// while the service keys apps by (device, name). The simulation event
	// loop is single-threaded, so this adapter-local map is unguarded.
	appDevice map[string]string

	// replays is the at-most-once table for tagged requests: a retried
	// request whose original executed (reply lost in a partition) rebinds
	// to the retry's connection instead of re-executing — no duplicate
	// offloads, injections or audit entries. replayOrder keeps insertion
	// order for pruning.
	replays     map[string]*taggedEntry
	replayOrder []string
}

// taggedEntry tracks one tagged request's lifecycle on the node.
type taggedEntry struct {
	// conn is where the reply should go; a retry after a reconnect rebinds
	// it, so the (possibly still pending) reply follows the device to its
	// new connection.
	conn *tcpsim.Conn
	// done flips when the reply frames have been produced; reply caches
	// them so a late retry can be answered without re-execution.
	done  bool
	reply []frame
	// at is the virtual arrival time, for window-based pruning.
	at time.Duration
}

// Replay-table bounds: entries older than the window (or beyond the cap)
// are dropped oldest-first once their replies have been produced.
const (
	replayWindow = 10 * time.Minute
	replayMax    = 512
)

// injectRequest is the msgSSLInject payload.
type injectRequest struct {
	App        string          `json:"app"`
	CorID      string          `json:"cor_id"`
	Domain     string          `json:"domain"`
	ServerAddr string          `json:"server_addr"`
	ServerPort uint16          `json:"server_port"`
	ClientPort uint16          `json:"client_port"`
	State      json.RawMessage `json:"state"`
}

// installRequest is the msgInstall payload.
type installRequest struct {
	Name     string `json:"name"`
	Source   string `json:"source"`
	DeviceID string `json:"device_id"`
}

// statsReply is the msgCatalogReply stats trailer; the device merges it into
// Table 3 reports.
type nodeStats struct {
	Instrs     uint64 `json:"instrs"`
	Calls      uint64 `json:"calls"`
	Syncs      int    `json:"syncs"`
	InitBytes  int    `json:"init_bytes"`
	DirtyBytes int    `json:"dirty_bytes"`
	// ExecStartNs is the virtual instant the node began executing this
	// episode's thread; the device subtracts its trigger time from it to get
	// the trigger-to-first-node-instruction latency the warm-up shortens.
	ExecStartNs int64 `json:"exec_start_ns,omitempty"`
}

func newTrustedNode(w *World, host *netsim.Host, corIdleWindow uint64) *TrustedNode {
	svc := node.New(node.Options{
		Clock:         func() time.Time { return time.Unix(0, 0).Add(w.Net.Now()) },
		CorIdleWindow: corIdleWindow,
	})
	n := &TrustedNode{
		w:         w,
		Host:      host,
		Stack:     tcpsim.NewStack(w.Net, host),
		Svc:       svc,
		Cors:      svc.Cors,
		Policy:    svc.Policy,
		Audit:     svc.Audit,
		Malware:   svc.Malware,
		appDevice: make(map[string]string),
		replays:   make(map[string]*taggedEntry),
	}

	l, err := n.Stack.Listen(ControlPort)
	if err != nil {
		panic(err) // fresh stack; cannot happen
	}
	l.OnAccept = n.onControlConn
	// The replacement engine chains in front of the control stack.
	n.Replacer = tcpsim.NewReplacer(host, n.rewritePayload)
	return n
}

// RegisterCor initializes a cor on the trusted node (the safe-environment
// one-time setup of §2.3), wiring its whitelist into the policy engine.
func (n *TrustedNode) RegisterCor(id, plaintext, description string, whitelist ...string) (*cor.Record, error) {
	return n.Svc.RegisterCor(context.Background(), id, plaintext, description, whitelist...)
}

// AttachStore wires a recovered crash-safe store under the node (see
// node.Service.AttachStore): state is restored into the fresh Service, and
// every subsequent vault/audit/policy mutation is fsynced before being
// acknowledged. Call it right after NewWorld, before registering cors.
func (n *TrustedNode) AttachStore(st *store.Store) error {
	return n.Svc.AttachStore(context.Background(), st)
}

// BindApp restricts a cor to an app hash (§3.4 first binding).
func (n *TrustedNode) BindApp(corID, appHash string) error { return n.Svc.BindApp(corID, appHash) }

// SetAppLocks shares the endpoint-pair lock table with the node side (the
// in-process World wires both halves to one table).
func (n *TrustedNode) SetAppLocks(appName string, lt *dsm.LockTable) {
	n.Svc.SetAppLocks(n.appDevice[appName], appName, lt)
}

// HandoffTo moves one device's hosted state — apps, armed injections,
// derived cors, replay window and per-device audit sequence — onto another
// trusted node via the shard export/import path (planned maintenance; crash
// failover is the fleet's job). Registered cors are control-plane state and
// must already be present on dst, as fleet replication guarantees. The
// adapter-level app routing on both nodes follows the shard; on import
// failure the export is restored onto this node.
func (n *TrustedNode) HandoffTo(dst *TrustedNode, deviceID string) error {
	exp, err := n.Svc.DetachShard(deviceID)
	if err != nil {
		return fmt.Errorf("core: detaching %s: %w", deviceID, err)
	}
	if err := dst.Svc.ImportShard(context.Background(), exp); err != nil {
		if rerr := n.Svc.ImportShard(context.Background(), exp); rerr != nil {
			return fmt.Errorf("core: importing %s failed (%v) and rollback failed: %w", deviceID, err, rerr)
		}
		return fmt.Errorf("core: importing %s: %w", deviceID, err)
	}
	for _, a := range exp.Apps {
		if n.appDevice[a.Name] == deviceID {
			delete(n.appDevice, a.Name)
		}
		dst.appDevice[a.Name] = deviceID
	}
	return nil
}

// --- control plane ---

func (n *TrustedNode) onControlConn(c *tcpsim.Conn) {
	reader := &frameReader{}
	c.OnReadable = func() {
		reader.feed(c.Read(0))
		for {
			f, ok, err := reader.next()
			if err != nil {
				c.Abort()
				return
			}
			if !ok {
				return
			}
			n.handleFrame(c, f)
		}
	}
}

// replyRoute addresses a handler's reply. For plain requests it is the
// connection the request arrived on; for tagged requests the reply reads
// the entry's connection at send time, so a retry that rebound the entry
// after a reconnect receives the (possibly still pending) reply on the new
// connection instead of a dead one.
type replyRoute struct {
	n     *TrustedNode
	conn  *tcpsim.Conn
	entry *taggedEntry
	// span is the node_op span the request runs under (nil when untraced);
	// it ends when the reply is scheduled, at the modeled completion time.
	span *obs.Span
}

// send schedules a reply frame after the given compute delay, modeling node
// processing time without re-entering the event loop.
func (r replyRoute) send(delay time.Duration, f frame) {
	// The node's work is modeled as a scheduled delay, so the span ends at
	// the future completion instant rather than "now".
	r.span.EndAt(r.n.w.Net.Now() + delay)
	r.n.w.Net.Schedule(delay, func() {
		c := r.conn
		if r.entry != nil {
			r.entry.done = true
			r.entry.reply = append(r.entry.reply, f)
			c = r.entry.conn
		}
		if err := sendFrame(c, f); err != nil && c.Established() {
			// Connection races are surfaced by aborting; callers time out.
			c.Abort()
		}
	})
}

// reply keeps the historical handler idiom.
func (n *TrustedNode) reply(r replyRoute, delay time.Duration, f frame) { r.send(delay, f) }

func (n *TrustedNode) denied(r replyRoute, err error) {
	r.span.Add(obs.Err(obs.ErrDenied))
	n.reply(r, time.Millisecond, frame{Type: msgDenied, Payload: []byte(err.Error())})
}

func (n *TrustedNode) handleFrame(c *tcpsim.Conn, f frame) {
	switch f.Type {
	case msgTagged:
		id, inner, err := decodeTagged(f.Payload)
		n.handleTagged(c, id, inner, 0, 0, err)
	case msgTaggedTrace:
		id, trace, parent, inner, err := decodeTaggedTrace(f.Payload)
		n.handleTagged(c, id, inner, trace, parent, err)
	default:
		n.dispatch(replyRoute{n: n, conn: c}, f)
	}
}

// handleTagged gives an unwrapped tagged frame at-most-once semantics: a
// fresh ID dispatches normally (with the reply routed through the replay
// entry), a known ID rebinds the entry to the arrival connection and — if
// the reply was already produced — re-sends it without touching the service
// again. trace/parent carry the device's span identity when the request
// arrived as msgTaggedTrace; the node joins the trace via StartRemote, which
// never touches the tracer's (device-owned) span stack.
func (n *TrustedNode) handleTagged(c *tcpsim.Conn, id string, inner frame, trace obs.TraceID, parent obs.SpanID, derr error) {
	if derr != nil {
		n.denied(replyRoute{n: n, conn: c}, derr)
		return
	}
	if e, ok := n.replays[id]; ok {
		e.conn = c
		if e.done {
			for _, f := range e.reply {
				n.reply(replyRoute{n: n, conn: c}, time.Millisecond, f)
			}
		}
		// Not done: the original's reply is still pending in the event
		// queue; rebinding conn above is all the retry needs.
		return
	}
	e := &taggedEntry{conn: c, at: n.w.Net.Now()}
	n.replays[id] = e
	n.replayOrder = append(n.replayOrder, id)
	n.pruneReplays()
	r := replyRoute{n: n, conn: c, entry: e}
	if tr := n.w.Obs; tr.Enabled() {
		r.span = tr.StartRemote(obs.PhaseNodeOp, trace, parent, obs.Msg(inner.Type))
	}
	n.dispatch(r, inner)
}

// pruneReplays drops completed entries that have aged out of the replay
// window, then completed entries beyond the size cap, oldest first. An
// in-progress entry blocks pruning behind it: its reply closure still
// writes through the pointer.
func (n *TrustedNode) pruneReplays() {
	cutoff := n.w.Net.Now() - replayWindow
	for len(n.replayOrder) > 0 {
		e := n.replays[n.replayOrder[0]]
		if !e.done || e.at >= cutoff {
			break
		}
		delete(n.replays, n.replayOrder[0])
		n.replayOrder = n.replayOrder[1:]
	}
	for len(n.replayOrder) > replayMax {
		e := n.replays[n.replayOrder[0]]
		if !e.done {
			break
		}
		delete(n.replays, n.replayOrder[0])
		n.replayOrder = n.replayOrder[1:]
	}
}

func (n *TrustedNode) dispatch(r replyRoute, f frame) {
	switch f.Type {
	case msgInstall:
		n.handleInstall(r, f.Payload)
	case msgMigration:
		n.handleMigration(r, f.Payload)
	case msgCatalog:
		n.handleCatalog(r)
	case msgSSLInject:
		n.handleInject(r, f.Payload)
	case msgWarmupChunk:
		n.handleWarmupChunk(r, f.Payload)
	default:
		n.denied(r, fmt.Errorf("core: node: unknown control message %d", f.Type))
	}
}

// handleWarmupChunk applies one background warm-up chunk and acknowledges it
// out of band (msgWarmupAck is routed to the device's warm-up driver, never
// into the request/reply queue). The chunk is fire-and-forget on the device
// side, so a malformed frame is simply dropped — the warm-up degrades to the
// cold path on its own.
func (n *TrustedNode) handleWarmupChunk(r replyRoute, payload []byte) {
	app, chunkBytes, err := decodeWarmupChunk(payload)
	if err != nil {
		return
	}
	c, err := dsm.DecodeWarmupChunk(chunkBytes)
	if err != nil {
		return
	}
	var span *obs.Span
	if tr := n.w.Obs; tr.Enabled() {
		trace, parent, _ := tr.Current()
		span = tr.StartRemote(obs.PhaseDSMWarmup, trace, parent, obs.Bytes(len(chunkBytes)))
	}
	serr := n.Svc.WarmupChunk(obs.ContextWithSpan(context.Background(), span), n.appDevice[app], app, chunkBytes)
	// Applying the chunk costs node-side deserialization time; it delays only
	// the ack, never a foreground request (the event loop interleaves).
	delay := time.Duration(int64(len(chunkBytes)) * n.w.Cost.SerializeNsPerByte)
	if span != nil {
		span.Add(obs.Outcome(serr == nil))
		span.EndAt(n.w.Net.Now() + delay)
	}
	n.w.Net.Schedule(delay, func() {
		if err := sendFrame(r.conn, encodeWarmupAck(app, c.Epoch, c.Index, serr == nil)); err != nil && r.conn.Established() {
			r.conn.Abort()
		}
	})
}

// handleInstall forwards the warm-up dex transfer (§6.2) to the service and
// models the assembly cost as proportional to code size.
func (n *TrustedNode) handleInstall(r replyRoute, payload []byte) {
	var req installRequest
	if err := json.Unmarshal(payload, &req); err != nil {
		n.denied(r, fmt.Errorf("core: node: bad install: %v", err))
		return
	}
	res, err := n.Svc.Install(context.Background(), node.InstallRequest{
		DeviceID:              req.DeviceID,
		Name:                  req.Name,
		Source:                req.Source,
		NonOffloadableNatives: deviceNativeNames,
	})
	if err != nil {
		n.denied(r, err)
		return
	}
	n.appDevice[req.Name] = req.DeviceID

	delay := time.Duration(int64(res.CodeSize) * n.w.Cost.NodeNsPerInstr * 10)
	n.reply(r, delay, frame{Type: msgInstallOK, Payload: []byte(res.Hash)})
}

// migrationEnvelope wraps a migration with its app name.
type migrationEnvelope struct {
	App   string `json:"app"`
	Bytes []byte `json:"bytes"`
	// Stats carries node-side counters on node->device envelopes.
	Stats *nodeStats `json:"stats,omitempty"`
}

// handleMigration is the offload entry point: the service policy-checks,
// applies, runs and captures; the adapter schedules the reply after the
// modeled compute delay.
func (n *TrustedNode) handleMigration(r replyRoute, payload []byte) {
	var env migrationEnvelope
	if err := json.Unmarshal(payload, &env); err != nil {
		n.denied(r, fmt.Errorf("core: node: bad migration envelope: %v", err))
		return
	}
	res, err := n.Svc.Offload(obs.ContextWithSpan(context.Background(), r.span),
		n.appDevice[env.App], env.App, env.Bytes)
	if err != nil {
		if errors.Is(err, node.ErrWarmStale) {
			// Stale speculation is not a denial: tell the device to resend
			// the full snapshot (the cold path) under a fresh request.
			n.reply(r, time.Millisecond, frame{Type: msgWarmMiss, Payload: []byte(err.Error())})
			return
		}
		n.denied(r, err)
		return
	}
	reply := migrationEnvelope{
		App:   env.App,
		Bytes: res.Bytes,
		Stats: &nodeStats{
			Instrs: res.Stats.Instrs, Calls: res.Stats.Calls,
			Syncs: res.Stats.Syncs, InitBytes: res.Stats.InitBytes, DirtyBytes: res.Stats.DirtyBytes,
			ExecStartNs: int64(n.w.Net.Now()),
		},
	}
	out, err := json.Marshal(reply)
	if err != nil {
		n.denied(r, err)
		return
	}
	execD := time.Duration(int64(res.Executed) * n.w.Cost.NodeNsPerInstr)
	serD := time.Duration(int64(len(res.Bytes)) * n.w.Cost.SerializeNsPerByte)
	if r.span != nil {
		// The episode's compute and the reply serialization are modeled
		// (scheduled) rather than elapsed, so both children are recorded over
		// their future intervals.
		now := n.w.Net.Now()
		r.span.ChildAt(obs.PhaseNodeExec, now, now+execD, obs.Count(int64(res.Executed)))
		r.span.ChildAt(obs.PhaseSyncBack, now+execD, now+execD+serD, obs.Bytes(len(res.Bytes)))
	}
	n.reply(r, execD+serD, frame{Type: msgMigration, Payload: out})
}

// handleCatalog serves the device-visible cor catalog (the selection-widget
// content, §4.1).
func (n *TrustedNode) handleCatalog(r replyRoute) {
	views, err := n.Svc.Catalog(context.Background())
	if err != nil {
		n.denied(r, err)
		return
	}
	payload, err := json.Marshal(views)
	if err != nil {
		n.denied(r, err)
		return
	}
	n.reply(r, time.Millisecond, frame{Type: msgCatalogReply, Payload: payload})
}

// handleInject arms payload replacement for an imminent marked record
// (fig 8 steps 1–2); policy enforcement lives in the service.
func (n *TrustedNode) handleInject(r replyRoute, payload []byte) {
	var req injectRequest
	if err := json.Unmarshal(payload, &req); err != nil {
		n.denied(r, fmt.Errorf("core: node: bad inject request: %v", err))
		return
	}
	err := n.Svc.ArmInjection(obs.ContextWithSpan(context.Background(), r.span), node.InjectRequest{
		DeviceID: n.appDevice[req.App],
		App:      req.App,
		CorID:    req.CorID,
		Domain:   req.Domain,
		Key: node.InjectionKey{
			ClientAddr: DeviceAddr,
			ClientPort: req.ClientPort,
			ServerAddr: req.ServerAddr,
			ServerPort: req.ServerPort,
		},
		State: req.State,
	})
	if err != nil {
		n.denied(r, err)
		return
	}
	n.reply(r, n.w.Cost.NodeInjectSetup, frame{Type: msgSSLInjectOK})
}

// rewritePayload is the payload-replacement hook (fig 8 step 4): swap the
// placeholder-bearing marked record for the cor-bearing one.
func (n *TrustedNode) rewritePayload(origSrc, origDst string, seg *tcpsim.Segment) ([]byte, error) {
	// Replacement fires from packet delivery, not a control request; attach
	// it under whatever span the (single-threaded) simulation is currently
	// inside — during a login that is the device's http_wait span.
	var span *obs.Span
	if tr := n.w.Obs; tr.Enabled() {
		trace, parent, _ := tr.Current()
		span = tr.StartRemote(obs.PhaseTCPReplace, trace, parent, obs.Dst(origDst))
	}
	key := node.InjectionKey{
		ClientAddr: origSrc, ClientPort: seg.SrcPort,
		ServerAddr: origDst, ServerPort: seg.DstPort,
	}
	out, err := n.Svc.ReplacePayload(obs.ContextWithSpan(context.Background(), span), key, len(seg.Payload))
	if span != nil {
		if err != nil {
			span.Add(obs.Err(obs.ErrInternal))
		} else {
			span.Add(obs.Bytes(len(out)))
		}
		span.End()
	}
	return out, err
}
