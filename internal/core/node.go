package core

import (
	"encoding/json"
	"fmt"
	"time"

	"tinman/internal/audit"
	"tinman/internal/cor"
	"tinman/internal/dsm"
	"tinman/internal/malware"
	"tinman/internal/monitor"
	"tinman/internal/netsim"
	"tinman/internal/policy"
	"tinman/internal/taint"
	"tinman/internal/tcpsim"
	"tinman/internal/tlssim"
	"tinman/internal/vm"
	"tinman/internal/vm/asm"
)

// TrustedNode is the cor vault and offload target (§2.5): it stores cor
// plaintexts, runs offloaded code under full tainting, enforces policy,
// audits every access, and performs SSL session injection plus TCP payload
// replacement on the device's behalf.
type TrustedNode struct {
	w     *World
	Host  *netsim.Host
	Stack *tcpsim.Stack

	Cors    *cor.Store
	Policy  *policy.Engine
	Audit   *audit.Log
	Malware *malware.DB

	corIdleWindow uint64
	apps          map[string]*nodeApp
	injections    map[injectionKey]*pendingInjection
	Replacer      *tcpsim.Replacer
	derivedSeq    int
}

// nodeApp is the trusted node's half of an installed application.
type nodeApp struct {
	name    string
	prog    *vm.Program
	hash    string
	machine *vm.VM
	ep      *dsm.Endpoint
	locks   *dsm.LockTable
	// deviceID is the device that installed the app.
	deviceID string
	// mon is the per-app dynamic-analysis monitor (§3.4/§8 extension).
	mon *monitor.Monitor
}

type injectionKey struct {
	clientAddr string
	clientPort uint16
	serverAddr string
	serverPort uint16
}

type pendingInjection struct {
	app    *nodeApp
	corID  string
	domain string
	state  *tlssim.State
}

// injectRequest is the msgSSLInject payload.
type injectRequest struct {
	App        string          `json:"app"`
	CorID      string          `json:"cor_id"`
	Domain     string          `json:"domain"`
	ServerAddr string          `json:"server_addr"`
	ServerPort uint16          `json:"server_port"`
	ClientPort uint16          `json:"client_port"`
	State      json.RawMessage `json:"state"`
}

// installRequest is the msgInstall payload.
type installRequest struct {
	Name     string `json:"name"`
	Source   string `json:"source"`
	DeviceID string `json:"device_id"`
}

// statsReply is the msgCatalogReply stats trailer; the device merges it into
// Table 3 reports.
type nodeStats struct {
	Instrs     uint64 `json:"instrs"`
	Calls      uint64 `json:"calls"`
	Syncs      int    `json:"syncs"`
	InitBytes  int    `json:"init_bytes"`
	DirtyBytes int    `json:"dirty_bytes"`
}

func newTrustedNode(w *World, host *netsim.Host, corIdleWindow uint64) *TrustedNode {
	n := &TrustedNode{
		w:             w,
		Host:          host,
		Stack:         tcpsim.NewStack(w.Net, host),
		Cors:          cor.NewStore(),
		Policy:        policy.NewEngine(func() time.Time { return time.Unix(0, 0).Add(w.Net.Now()) }),
		Audit:         audit.NewLog(func() time.Time { return time.Unix(0, 0).Add(w.Net.Now()) }),
		Malware:       malware.NewDB(),
		corIdleWindow: corIdleWindow,
		apps:          make(map[string]*nodeApp),
		injections:    make(map[injectionKey]*pendingInjection),
	}
	n.Malware.SeedSynthetic(1000)
	n.Policy.SetMalwareCheck(n.Malware.Contains)

	l, err := n.Stack.Listen(ControlPort)
	if err != nil {
		panic(err) // fresh stack; cannot happen
	}
	l.OnAccept = n.onControlConn
	// The replacement engine chains in front of the control stack.
	n.Replacer = tcpsim.NewReplacer(host, n.rewritePayload)
	return n
}

// RegisterCor initializes a cor on the trusted node (the safe-environment
// one-time setup of §2.3), wiring its whitelist into the policy engine.
func (n *TrustedNode) RegisterCor(id, plaintext, description string, whitelist ...string) (*cor.Record, error) {
	rec, err := n.Cors.Register(id, plaintext, description, whitelist...)
	if err != nil {
		return nil, err
	}
	if whitelist != nil {
		n.Policy.SetWhitelist(id, whitelist)
	}
	return rec, nil
}

// BindApp restricts a cor to an app hash (§3.4 first binding).
func (n *TrustedNode) BindApp(corID, appHash string) { n.Policy.BindApp(corID, appHash) }

// --- control plane ---

func (n *TrustedNode) onControlConn(c *tcpsim.Conn) {
	reader := &frameReader{}
	c.OnReadable = func() {
		reader.feed(c.Read(0))
		for {
			f, ok, err := reader.next()
			if err != nil {
				c.Abort()
				return
			}
			if !ok {
				return
			}
			n.handleFrame(c, f)
		}
	}
}

// reply schedules a response after the given compute delay, modeling node
// processing time without re-entering the event loop.
func (n *TrustedNode) reply(c *tcpsim.Conn, delay time.Duration, f frame) {
	n.w.Net.Schedule(delay, func() {
		if err := sendFrame(c, f); err != nil && c.Established() {
			// Connection races are surfaced by aborting; callers time out.
			c.Abort()
		}
	})
}

func (n *TrustedNode) denied(c *tcpsim.Conn, err error) {
	n.reply(c, time.Millisecond, frame{Type: msgDenied, Payload: []byte(err.Error())})
}

func (n *TrustedNode) handleFrame(c *tcpsim.Conn, f frame) {
	switch f.Type {
	case msgInstall:
		n.handleInstall(c, f.Payload)
	case msgMigration:
		n.handleMigration(c, f.Payload)
	case msgCatalog:
		n.handleCatalog(c)
	case msgSSLInject:
		n.handleInject(c, f.Payload)
	default:
		n.denied(c, fmt.Errorf("core: node: unknown control message %d", f.Type))
	}
}

// handleInstall assembles the app on the node (the warm-up dex transfer,
// §6.2) and runs the malware check.
func (n *TrustedNode) handleInstall(c *tcpsim.Conn, payload []byte) {
	var req installRequest
	if err := json.Unmarshal(payload, &req); err != nil {
		n.denied(c, fmt.Errorf("core: node: bad install: %v", err))
		return
	}
	prog, err := asm.Assemble(req.Name, req.Source)
	if err != nil {
		n.denied(c, fmt.Errorf("core: node: assembling %s: %v", req.Name, err))
		return
	}
	// Defense in depth: the node re-verifies the bytecode it is about to
	// host, independent of the device's assembler.
	if err := prog.Verify(); err != nil {
		n.denied(c, fmt.Errorf("core: node: %s failed verification: %v", req.Name, err))
		return
	}
	hash := prog.Hash()
	if n.Malware.Contains(hash) {
		n.Audit.Append(hash, "", req.DeviceID, "", audit.OutcomeDenied, "malware: "+n.Malware.Family(hash))
		n.denied(c, &policy.Denial{Reason: policy.ReasonMalware, CorID: "", Detail: n.Malware.Family(hash)})
		return
	}

	machine := vm.New(vm.Config{
		Program:       prog,
		Heap:          vm.NewHeap(2, 2), // even IDs: the node's ID space
		Policy:        taint.Full,
		CorIdleWindow: n.corIdleWindow,
	})
	registerNodeNatives(machine)
	app := &nodeApp{
		name:     req.Name,
		prog:     prog,
		hash:     hash,
		machine:  machine,
		deviceID: req.DeviceID,
	}
	app.mon = monitor.New(monitor.Config{
		OnFinding: func(f monitor.Finding) {
			n.Audit.Append(hash, "", req.DeviceID, "", audit.OutcomeDenied, "monitor: "+f.String())
		},
	})
	app.mon.Attach(machine)
	app.ep = dsm.NewEndpoint(dsm.NodeSide, machine, &nodeResolver{node: n})
	n.apps[req.Name] = app

	// Model the dex-assembly cost as proportional to code size.
	delay := time.Duration(int64(prog.CodeSize()) * n.w.Cost.NodeNsPerInstr * 10)
	n.reply(c, delay, frame{Type: msgInstallOK, Payload: []byte(hash)})
}

// SetAppLocks shares the endpoint-pair lock table with the node side (the
// in-process World wires both halves to one table).
func (n *TrustedNode) SetAppLocks(appName string, lt *dsm.LockTable) {
	app := n.apps[appName]
	if app == nil {
		return
	}
	app.locks = lt
	app.machine.Hooks.OnMonitorEnter = func(o *vm.Object) bool {
		return !lt.Acquire(o.ID, dsm.NodeSide)
	}
	app.machine.Hooks.OnMonitorExit = func(o *vm.Object) { lt.Release(o.ID) }
}

// migrationEnvelope wraps a migration with its app name.
type migrationEnvelope struct {
	App   string `json:"app"`
	Bytes []byte `json:"bytes"`
	// Stats carries node-side counters on node->device envelopes.
	Stats *nodeStats `json:"stats,omitempty"`
}

// handleMigration is the offload entry point: policy-check, apply, run,
// reply with the thread's next hop.
func (n *TrustedNode) handleMigration(c *tcpsim.Conn, payload []byte) {
	var env migrationEnvelope
	if err := json.Unmarshal(payload, &env); err != nil {
		n.denied(c, fmt.Errorf("core: node: bad migration envelope: %v", err))
		return
	}
	app := n.apps[env.App]
	if app == nil {
		n.denied(c, fmt.Errorf("core: node: app %q not installed", env.App))
		return
	}
	mig, err := dsm.DecodeMigration(env.Bytes)
	if err != nil {
		n.denied(c, err)
		return
	}

	// §3.4: every cor access is checked against the app binding and logged.
	trigger := taint.Tag(mig.TriggerTag)
	for _, rec := range n.Cors.ByTag(trigger) {
		acc := policy.Access{CorID: rec.ID, AppHash: app.hash, DeviceID: app.deviceID}
		if err := n.Policy.Check(acc); err != nil {
			n.Audit.Append(app.hash, rec.ID, app.deviceID, "", audit.OutcomeDenied, err.Error())
			n.denied(c, err)
			return
		}
		n.Audit.Append(app.hash, rec.ID, app.deviceID, "", audit.OutcomeAllowed, "offloaded access")
	}

	th, err := app.ep.ApplyMigration(mig)
	if err != nil {
		n.denied(c, err)
		return
	}
	if th == nil {
		// Pure state sync: ack with an empty node sync.
		n.replyMigration(c, app, nil, vm.StopDone, 0)
		return
	}

	// Run the offloaded thread under full tainting, with the behavioral
	// monitor watching the episode.
	app.machine.ResetIdle()
	app.mon.BeginEpisode()
	before := app.machine.Instrs
	stop, runErr := th.Run()
	executed := app.machine.Instrs - before
	if runErr != nil {
		n.denied(c, fmt.Errorf("core: node: offloaded thread: %v", runErr))
		return
	}
	if app.mon.CriticalRaised() {
		n.denied(c, fmt.Errorf("core: node: dynamic analysis aborted the episode: %v", app.mon.Findings()[len(app.mon.Findings())-1]))
		return
	}
	n.replyMigration(c, app, th, stop, executed)
}

// replyMigration captures the node's state (and thread, unless it completed
// purely server-side) and schedules the response after the modeled compute
// delay.
func (n *TrustedNode) replyMigration(c *tcpsim.Conn, app *nodeApp, th *vm.Thread, stop vm.StopReason, executed uint64) {
	var capTh *vm.Thread
	if th != nil {
		capTh = th
	}
	mig, err := app.ep.CaptureMigration(capTh, stop)
	if err != nil {
		n.denied(c, err)
		return
	}
	env := migrationEnvelope{
		App:   app.name,
		Stats: &nodeStats{Instrs: app.machine.Instrs, Calls: app.machine.Calls, Syncs: app.ep.Stats.Syncs, InitBytes: app.ep.Stats.InitBytes, DirtyBytes: app.ep.Stats.DirtyBytes},
	}
	env.Bytes = mig.Encode()
	payload, err := json.Marshal(env)
	if err != nil {
		n.denied(c, err)
		return
	}
	delay := time.Duration(int64(executed)*n.w.Cost.NodeNsPerInstr +
		int64(len(env.Bytes))*n.w.Cost.SerializeNsPerByte)
	n.reply(c, delay, frame{Type: msgMigration, Payload: payload})
}

// handleCatalog serves the device-visible cor catalog (the selection-widget
// content, §4.1).
func (n *TrustedNode) handleCatalog(c *tcpsim.Conn) {
	views := n.Cors.DeviceViews()
	payload, err := json.Marshal(views)
	if err != nil {
		n.denied(c, err)
		return
	}
	n.reply(c, time.Millisecond, frame{Type: msgCatalogReply, Payload: payload})
}

// handleInject arms payload replacement for an imminent marked record
// (fig 8 steps 1–2), enforcing the send-time policy (§3.4 second binding).
func (n *TrustedNode) handleInject(c *tcpsim.Conn, payload []byte) {
	var req injectRequest
	if err := json.Unmarshal(payload, &req); err != nil {
		n.denied(c, fmt.Errorf("core: node: bad inject request: %v", err))
		return
	}
	app := n.apps[req.App]
	if app == nil {
		n.denied(c, fmt.Errorf("core: node: app %q not installed", req.App))
		return
	}
	rec := n.Cors.Get(req.CorID)
	if rec == nil {
		n.denied(c, fmt.Errorf("core: node: unknown cor %q", req.CorID))
		return
	}
	// Policy applies to the cor lineage: a derived cor (the concatenated
	// request) carries its parent's bit; the binding and whitelist rules
	// are registered under the parent ID.
	parent := n.Cors.ByBit(rec.Bit)
	checkID := rec.ID
	if parent != nil {
		checkID = parent.ID
	}
	acc := policy.Access{
		CorID:    checkID,
		AppHash:  app.hash,
		DeviceID: app.deviceID,
		Send:     true,
		Domain:   req.Domain,
		IP:       req.ServerAddr,
	}
	if err := n.Policy.Check(acc); err != nil {
		n.Audit.Append(app.hash, checkID, app.deviceID, req.Domain, audit.OutcomeDenied, err.Error())
		n.denied(c, err)
		return
	}
	st, err := tlssim.UnmarshalState(req.State)
	if err != nil {
		n.denied(c, err)
		return
	}
	// The modified client library refuses TLS 1.0 before ever reaching
	// this point; the node double-checks (defense in depth, §3.2).
	if st.Version <= tlssim.TLS10 {
		err := fmt.Errorf("core: node: refusing session injection for %v (implicit-IV leak, fig 7)", st.Version)
		n.Audit.Append(app.hash, checkID, app.deviceID, req.Domain, audit.OutcomeDenied, err.Error())
		n.denied(c, err)
		return
	}
	key := injectionKey{
		clientAddr: DeviceAddr,
		clientPort: req.ClientPort,
		serverAddr: req.ServerAddr,
		serverPort: req.ServerPort,
	}
	n.injections[key] = &pendingInjection{app: app, corID: req.CorID, domain: req.Domain, state: st}
	n.Audit.Append(app.hash, checkID, app.deviceID, req.Domain, audit.OutcomeAllowed, "ssl session injected")
	n.reply(c, n.w.Cost.NodeInjectSetup, frame{Type: msgSSLInjectOK})
}

// rewritePayload is the payload-replacement hook (fig 8 step 4): swap the
// placeholder-bearing marked record for the cor-bearing one.
func (n *TrustedNode) rewritePayload(origSrc, origDst string, seg *tcpsim.Segment) ([]byte, error) {
	key := injectionKey{clientAddr: origSrc, clientPort: seg.SrcPort, serverAddr: origDst, serverPort: seg.DstPort}
	inj := n.injections[key]
	if inj == nil {
		return nil, fmt.Errorf("core: node: no armed injection for %s:%d -> %s:%d", origSrc, seg.SrcPort, origDst, seg.DstPort)
	}
	delete(n.injections, key) // one-shot
	rec := n.Cors.Get(inj.corID)
	if rec == nil {
		return nil, fmt.Errorf("core: node: cor %q vanished", inj.corID)
	}
	sess, err := tlssim.Resume(inj.state, nil)
	if err != nil {
		return nil, err
	}
	out, err := sess.Seal(tlssim.TypeApplicationData, []byte(rec.Plaintext))
	if err != nil {
		return nil, err
	}
	if len(out) != len(seg.Payload) {
		return nil, fmt.Errorf("core: node: resealed record %dB != placeholder record %dB", len(out), len(seg.Payload))
	}
	n.Audit.Append(inj.app.hash, inj.corID, inj.app.deviceID, inj.domain, audit.OutcomeAllowed, "payload replaced")
	return out, nil
}

// nodeResolver adapts the cor store to the DSM resolver interface.
type nodeResolver struct {
	node *TrustedNode
}

// Fill returns plaintext for the cor.
func (r *nodeResolver) Fill(id string, length int) (string, taint.Tag, bool) {
	rec := r.node.Cors.Get(id)
	if rec == nil {
		return "", taint.None, false
	}
	return rec.Plaintext, rec.Tag(), true
}

// MaskID mints a derived cor for a freshly tainted string (the concatenated
// request of fig 11 is "a new cor").
func (r *nodeResolver) MaskID(o *vm.Object) string {
	parents := r.node.Cors.ByTag(o.Tag)
	if len(parents) == 0 {
		return ""
	}
	r.node.derivedSeq++
	id := fmt.Sprintf("derived-%s-%d", parents[0].ID, r.node.derivedSeq)
	if _, err := r.node.Cors.Derive(parents[0].ID, id, o.Str); err != nil {
		return ""
	}
	return id
}

// registerNodeNatives installs non-offloadable stubs: the gate stops the
// thread before any of these would execute on the node, forcing a migration
// back to the device (§3.1 case 2).
func registerNodeNatives(machine *vm.VM) {
	for _, name := range deviceNativeNames {
		name := name
		machine.RegisterNative(&vm.NativeDef{
			Name:        name,
			Offloadable: false,
			Fn: func(t *vm.Thread, args []vm.Value) (vm.Value, error) {
				return vm.Value{}, fmt.Errorf("core: native %s must not execute on the trusted node", name)
			},
		})
	}
	machine.Hooks.NativeGate = func(def *vm.NativeDef) bool { return !def.Offloadable }
}
